// Package locsched is a simulation framework reproducing "Locality-Aware
// Process Scheduling for Embedded MPSoCs" (Kandemir & Chen, DATE 2005).
//
// It provides:
//
//   - a Presburger-style model of array-intensive processes (iteration
//     spaces, affine references) and their inter-process data sharing;
//   - the paper's locality-aware scheduler (LS), its data-mapping variant
//     (LSM), and the RS/RRS baselines, plus SJF and critical-path list
//     scheduling as extension baselines;
//   - a trace-driven MPSoC simulator with private per-core set-associative
//     L1 caches and conflict-miss classification;
//   - the six applications of the paper's Table 1 as parameterized
//     synthetic task graphs, and the harness regenerating every table and
//     figure of the paper's evaluation.
//
// Quick start:
//
//	cfg := locsched.DefaultConfig()
//	apps, _ := locsched.BuildApps(cfg.Workload)
//	res, _ := locsched.Run(apps[0], locsched.LS, cfg)
//	fmt.Printf("%s under LS: %.3f ms\n", apps[0].Name, res.Seconds*1e3)
//
// The cmd/locsched binary regenerates the paper's figures; see
// EXPERIMENTS.md for the measured-vs-paper comparison.
package locsched

import (
	"io"

	"locsched/internal/cache"
	"locsched/internal/experiment"
	"locsched/internal/mpsoc"
	"locsched/internal/presburger"
	"locsched/internal/prog"
	"locsched/internal/sched"
	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
	"locsched/internal/workload"
)

// Core configuration and result types.
type (
	// Config bundles machine, workload, and policy parameters for a run.
	Config = experiment.Config
	// MachineConfig describes the simulated MPSoC (Table 2).
	MachineConfig = mpsoc.Config
	// Machine is the heterogeneity/topology extension of MachineConfig:
	// per-core speed classes and an interconnect whose hop distance feeds
	// the miss penalty. Its zero value is the paper's homogeneous machine.
	Machine = mpsoc.Machine
	// Topology names an on-chip interconnect shape (bus, mesh, ring).
	Topology = mpsoc.Topology
	// CacheGeometry describes one per-core L1 cache.
	CacheGeometry = cache.Geometry
	// Policy names a scheduling strategy.
	Policy = experiment.Policy
	// RunResult is the outcome of one simulation.
	RunResult = experiment.RunResult
	// Table is a reproduced figure (rows × policies).
	Table = experiment.Table
	// Row is one line of a Table.
	Row = experiment.Row
	// Sweep is a parameter-sensitivity experiment.
	Sweep = experiment.Sweep
	// WorkloadParams tunes the synthetic applications.
	WorkloadParams = workload.Params
	// App is one of the paper's six applications.
	App = workload.App
)

// Workload-construction types, for building custom task sets against the
// same scheduler and simulator.
type (
	// Graph is a process graph (the paper's PG/EPG).
	Graph = taskgraph.Graph
	// Process is one schedulable node of a Graph.
	Process = taskgraph.Process
	// ProcID identifies a process (task, index).
	ProcID = taskgraph.ProcID
	// ProcessSpec describes a process's iteration space and references.
	ProcessSpec = prog.ProcessSpec
	// Array is a program array descriptor.
	Array = prog.Array
	// Ref is an affine array reference.
	Ref = prog.Ref
	// IterSpace is a bounded integer iteration space.
	IterSpace = presburger.BasicSet
	// SharingMatrix holds pairwise shared bytes between processes.
	SharingMatrix = sharing.Matrix
	// Assignment is a static per-core schedule produced by LS.
	Assignment = sched.Assignment
)

// The paper's four scheduling strategies plus two extension baselines.
const (
	// RS is random scheduling (paper baseline 1).
	RS = experiment.RS
	// RRS is preemptive round-robin over a common queue (baseline 2).
	RRS = experiment.RRS
	// ARR is cache-affinity-aware round-robin: RRS plus warm-resume
	// placement and quantum batching (this repo's dynamic-policy
	// extension; see Config.Affinity, Config.QBatch).
	ARR = experiment.ARR
	// LS is the locality-aware scheduler of Figure 3.
	LS = experiment.LS
	// LSM is LS plus the data-mapping phase of Figures 4–5.
	LSM = experiment.LSM
	// SJF is shortest-job-first (extension baseline).
	SJF = experiment.SJF
	// CPL is critical-path list scheduling (extension baseline).
	CPL = experiment.CPL
)

// The supported interconnect topologies of the Machine extension.
const (
	// TopoBus is the paper's shared bus (zero hop distance everywhere).
	TopoBus = mpsoc.TopoBus
	// TopoMesh is a square mesh with the memory controller at a corner.
	TopoMesh = mpsoc.TopoMesh
	// TopoRing is a ring with the memory controller at position 0.
	TopoRing = mpsoc.TopoRing
)

// ParseTopology resolves a case-insensitive topology name ("", "bus",
// "mesh", "ring").
func ParseTopology(s string) (Topology, error) { return mpsoc.ParseTopology(s) }

// ParseSpeedClasses parses a comma-separated speed-class spec into its
// cycle-multiplier list (see Machine.SpeedClasses).
func ParseSpeedClasses(spec string) ([]int64, error) { return mpsoc.ParseSpeedClasses(spec) }

// AccessKind values for building custom references.
const (
	// ReadAccess marks a load reference.
	ReadAccess = prog.Read
	// WriteAccess marks a store reference.
	WriteAccess = prog.Write
)

// DefaultConfig returns the paper's Table 2 machine with default workload
// parameters.
func DefaultConfig() Config { return experiment.DefaultConfig() }

// Policies returns the paper's four strategies in presentation order.
func Policies() []Policy { return experiment.Policies() }

// ExtendedPolicies additionally includes ARR, SJF, and CPL.
func ExtendedPolicies() []Policy { return experiment.ExtendedPolicies() }

// ParsePolicy resolves a case-insensitive policy name.
func ParsePolicy(s string) (Policy, error) { return experiment.ParsePolicy(s) }

// AppNames returns the six application names in Table 1 order.
func AppNames() []string { return workload.Names() }

// DescribeApp returns the paper's one-line description of an application.
func DescribeApp(name string) string { return workload.Describe(name) }

// BuildApp constructs one of the six applications as the given task.
func BuildApp(name string, task int, p WorkloadParams) (*App, error) {
	return workload.Build(name, task, p)
}

// BuildApps constructs all six applications with task IDs 0..5.
func BuildApps(p WorkloadParams) ([]*App, error) { return workload.BuildAll(p) }

// LoadApps reads a JSON task-set description (see internal/workload's
// format documentation) and returns one App per task — custom workloads
// without writing Go.
func LoadApps(r io.Reader) ([]*App, error) { return workload.FromJSON(r) }

// Run simulates one application in isolation under a policy.
func Run(app *App, policy Policy, cfg Config) (*RunResult, error) {
	return experiment.RunApp(app, policy, cfg)
}

// RunConcurrent simulates several applications concurrently (the setting
// of the paper's Figure 7).
func RunConcurrent(apps []*App, policy Policy, cfg Config) (*RunResult, error) {
	return experiment.RunMix(apps, policy, cfg)
}

// RunGraph simulates a custom EPG with its arrays under a policy.
func RunGraph(name string, g *Graph, arrays []*Array, policy Policy, cfg Config) (*RunResult, error) {
	return experiment.RunGraph(name, g, arrays, policy, cfg)
}

// NewGraph returns an empty process graph.
func NewGraph() *Graph { return taskgraph.New() }

// NewArray builds a program array with the given element size (bytes)
// and dimension extents.
func NewArray(name string, elemBytes int64, dims ...int64) (*Array, error) {
	return prog.NewArray(name, elemBytes, dims...)
}

// Seg returns the 1-D iteration space {[v] : lo <= v < hi}.
func Seg(varName string, lo, hi int64) *IterSpace { return prog.Seg(varName, lo, hi) }

// StreamRef builds a reference touching a rank-1 array at stride*i +
// offset over a 1-D iteration space.
func StreamRef(arr *Array, kind prog.AccessKind, iter *IterSpace, stride, offset int64) Ref {
	return prog.StreamRef(arr, kind, iter, stride, offset)
}

// NewProcessSpec describes a process: an iteration space, per-iteration
// compute cycles, and its array references.
func NewProcessSpec(name string, iter *IterSpace, computePerIter int64, refs ...Ref) (*ProcessSpec, error) {
	return prog.NewProcessSpec(name, iter, computePerIter, refs...)
}

// ComputeSharing builds the paper's sharing matrix (Figure 2a) for a
// graph: shared bytes between every pair of processes.
func ComputeSharing(g *Graph) (*SharingMatrix, error) {
	return sharing.ComputeMatrix(g)
}

// ComputeSharingParallel builds the sharing matrix with the blocked,
// parallel construction (tiled pair space, footprint-interval early
// rejection, `workers` goroutines; ≤ 0 means GOMAXPROCS). The result is
// bit-identical to ComputeSharing for every worker count.
func ComputeSharingParallel(g *Graph, workers int) (*SharingMatrix, error) {
	return sharing.ComputeMatrixParallel(g, workers)
}

// LocalitySchedule runs the Figure 3 greedy heuristic, returning the
// static per-core order LS replays.
func LocalitySchedule(g *Graph, m *SharingMatrix, cores int) (*Assignment, error) {
	return sched.LocalitySchedule(g, m, cores)
}

// OptimalSchedule computes the exact maximum-sharing balanced schedule
// for small instances (≤ sched.MaxOptimalProcs processes), used to
// measure the greedy's quality. Returns the schedule and its total
// successive-pair sharing in bytes.
func OptimalSchedule(g *Graph, m *SharingMatrix, cores int) (*Assignment, int64, error) {
	return sched.OptimalSchedule(g, m, cores)
}

// ScheduleSharing returns an assignment's total successive-pair sharing
// in bytes (the static objective of the Figure 3 greedy).
func ScheduleSharing(asg *Assignment, m *SharingMatrix) int64 {
	return sched.SharingOf(asg, m)
}

// Figure6 regenerates the paper's Figure 6 (isolated execution times).
// Pass nil policies for the paper's four.
func Figure6(cfg Config, policies []Policy) (*Table, error) {
	return experiment.Figure6(cfg, policies)
}

// Figure7 regenerates the paper's Figure 7 (concurrent workloads).
func Figure7(cfg Config, policies []Policy) (*Table, error) {
	return experiment.Figure7(cfg, policies)
}

// XLPoint is one (core count, task count) scale of the large-scale
// evaluation ladder.
type XLPoint = experiment.XLPoint

// DefaultXLPoints returns the standard 32/64/128-core scenario ladder
// with proportionally growing generated mixes.
func DefaultXLPoints() []XLPoint { return experiment.DefaultXLPoints() }

// XLLadder returns the doubling 32..maxCores scenario ladder with
// proportionally growing generated mixes (tasks = cores/4) — the
// 256/512/1024-core extension of DefaultXLPoints.
func XLLadder(maxCores int) ([]XLPoint, error) { return experiment.XLLadder(maxCores) }

// Figure7XL scales Figure 7 to large machines: generated multi-program
// mixes on 32–1024-core MPSoCs (see DefaultXLPoints and XLLadder). Pass
// nil points for the default 32/64/128 ladder.
func Figure7XL(cfg Config, points []XLPoint, policies []Policy) (*Table, error) {
	return experiment.Figure7XL(cfg, points, policies)
}

// SweepXL runs the dense (cache size × associativity × miss penalty)
// grid over the full six-application mix.
func SweepXL(cfg Config, sizes []int64, assocs []int, penalties []int64, policies []Policy) (*Sweep, error) {
	return experiment.SweepXL(cfg, sizes, assocs, penalties, policies)
}

// BuildMixApps constructs a generated multi-program mix of n tasks by
// cycling through the Table 1 suite with distinct task IDs.
func BuildMixApps(n int, p WorkloadParams) ([]*App, error) { return workload.BuildMany(n, p) }

// FormatTable renders a figure as an ASCII table (milliseconds).
func FormatTable(t *Table) string { return experiment.FormatTable(t) }

// WriteTableJSON serializes a reproduced figure as JSON for external
// plotting tools.
func WriteTableJSON(w io.Writer, t *Table) error { return experiment.WriteJSON(w, t) }

// FormatMissRates renders a figure's miss rates and conflict misses.
func FormatMissRates(t *Table) string { return experiment.FormatTableMissRates(t) }

// FormatSweep renders a sensitivity sweep with savings annotations.
func FormatSweep(s *Sweep) string { return experiment.FormatSweep(s) }

// FormatTable1 renders the paper's Table 1 (application suite).
func FormatTable1(p WorkloadParams) (string, error) { return experiment.FormatTable1(p) }

// FormatTable2 renders the paper's Table 2 (simulation parameters).
func FormatTable2(cfg Config) string { return experiment.FormatTable2(cfg) }

// SweepCacheSize, SweepAssociativity, SweepCores, SweepQuantum and
// SweepMissPenalty rerun the full six-application mix while varying one
// machine parameter — the paper's "savings are consistent across several
// simulation parameters" claim.
func SweepCacheSize(cfg Config, sizes []int64, policies []Policy) (*Sweep, error) {
	return experiment.SweepCacheSize(cfg, sizes, policies)
}

// SweepAssociativity varies the L1 associativity.
func SweepAssociativity(cfg Config, ways []int, policies []Policy) (*Sweep, error) {
	return experiment.SweepAssociativity(cfg, ways, policies)
}

// SweepCores varies the core count.
func SweepCores(cfg Config, cores []int, policies []Policy) (*Sweep, error) {
	return experiment.SweepCores(cfg, cores, policies)
}

// SweepQuantum varies the RRS time slice.
func SweepQuantum(cfg Config, quanta []int64) (*Sweep, error) {
	return experiment.SweepQuantum(cfg, quanta)
}

// SweepMissPenalty varies the off-chip access latency.
func SweepMissPenalty(cfg Config, penalties []int64, policies []Policy) (*Sweep, error) {
	return experiment.SweepMissPenalty(cfg, penalties, policies)
}

// AblationStaticMode compares the three runtime interpretations of the
// static LS schedule (strict in-order, skip-blocked, steal-when-idle) on
// a concurrent mix of the first mixSize applications (DESIGN.md §7.1).
func AblationStaticMode(cfg Config, mixSize int) (*Sweep, error) {
	return experiment.AblationStaticMode(cfg, mixSize)
}

// AblationReplacement compares cache replacement policies under LS.
func AblationReplacement(cfg Config) (*Sweep, error) {
	return experiment.AblationReplacement(cfg)
}

// AblationIndexing compares conflict-avoidance approaches: LSM's
// software re-layout versus the hardware prime-hash cache indexing of
// the paper's related work.
func AblationIndexing(cfg Config) (*Sweep, error) {
	return experiment.AblationIndexing(cfg)
}

// AblationAffinity sweeps ARR's affinity window × quantum batch grid on
// the full six-application mix against the RRS baseline. Nil slices use
// the default grid.
func AblationAffinity(cfg Config, windows []int, batches []int) (*Sweep, error) {
	return experiment.AblationAffinity(cfg, windows, batches)
}

// TopoGrid parameterizes AblationTopo: speed-class mixes × interconnect
// topologies × per-hop miss penalties.
type TopoGrid = experiment.TopoGrid

// DefaultTopoGrid returns the standard machine-model ablation grid
// (uniform and big.LITTLE mixes, bus and mesh, hop penalties 0 and 16).
func DefaultTopoGrid() TopoGrid { return experiment.DefaultTopoGrid() }

// AblationTopo sweeps the machine-model axis — speed mix × topology ×
// hop penalty — over the full concurrent mix against the homogeneous
// baseline (point 0). Nil policies run RRS, ARR, LS, LSM.
func AblationTopo(cfg Config, grid TopoGrid, policies []Policy) (*Sweep, error) {
	return experiment.AblationTopo(cfg, grid, policies)
}

// GreedyQualityRow compares the Figure 3 greedy against the exact
// maximum-sharing schedule on one application.
type GreedyQualityRow = experiment.GreedyQualityRow

// GreedyQuality measures the greedy's optimality gap on every Table 1
// application small enough for the exact solver.
func GreedyQuality(cfg Config, cores int) ([]GreedyQualityRow, error) {
	return experiment.GreedyQuality(cfg, cores)
}

// FormatGreedyQuality renders the greedy-vs-optimal comparison.
func FormatGreedyQuality(rows []GreedyQualityRow, cores int) string {
	return experiment.FormatGreedyQuality(rows, cores)
}

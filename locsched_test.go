package locsched_test

import (
	"fmt"
	"strings"
	"testing"

	"locsched"
)

func TestFacadeBuildAndRun(t *testing.T) {
	cfg := locsched.DefaultConfig()
	cfg.Workload.Scale = 1
	names := locsched.AppNames()
	if len(names) != 6 {
		t.Fatalf("AppNames = %v", names)
	}
	if locsched.DescribeApp("MxM") == "" {
		t.Error("DescribeApp should describe MxM")
	}
	app, err := locsched.BuildApp("Shape", 0, cfg.Workload)
	if err != nil {
		t.Fatalf("BuildApp: %v", err)
	}
	if app.Procs() != 9 {
		t.Errorf("Shape has %d processes, want 9", app.Procs())
	}
	for _, p := range locsched.Policies() {
		res, err := locsched.Run(app, p, cfg)
		if err != nil {
			t.Fatalf("Run(%s): %v", p, err)
		}
		if res.Cycles <= 0 {
			t.Errorf("Run(%s): no cycles", p)
		}
	}
}

func TestFacadeConcurrent(t *testing.T) {
	cfg := locsched.DefaultConfig()
	cfg.Workload.Scale = 1
	apps, err := locsched.BuildApps(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	res, err := locsched.RunConcurrent(apps[:3], locsched.LSM, cfg)
	if err != nil {
		t.Fatalf("RunConcurrent: %v", err)
	}
	if res.Workload != "|T|=3" {
		t.Errorf("Workload label = %q", res.Workload)
	}
}

func TestFacadeCustomGraph(t *testing.T) {
	// Build the paper's Figure 1 Prog1 via the public API and check its
	// sharing matrix and schedule.
	cfg := locsched.DefaultConfig()
	arr, err := locsched.NewArray("A", 1, 16000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Rank() != 2 {
		t.Errorf("Rank = %d", arr.Rank())
	}
	flat, err := locsched.NewArray("F", 4, 16000)
	if err != nil {
		t.Fatal(err)
	}
	g := locsched.NewGraph()
	var arrays []*locsched.Array
	arrays = append(arrays, flat)
	for k := int64(0); k < 8; k++ {
		iter := locsched.Seg("i", 0, 3000)
		spec, err := locsched.NewProcessSpec(
			fmt.Sprintf("P%d", k), iter, 1,
			locsched.StreamRef(flat, locsched.ReadAccess, iter, 1, k*1000),
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.AddProcess(&locsched.Process{
			ID:   locsched.ProcID{Task: 0, Idx: int(k)},
			Spec: spec,
		}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := locsched.ComputeSharing(g)
	if err != nil {
		t.Fatalf("ComputeSharing: %v", err)
	}
	p0 := locsched.ProcID{Task: 0, Idx: 0}
	p1 := locsched.ProcID{Task: 0, Idx: 1}
	if got := m.Shared(p0, p1); got != 2000*4 {
		t.Errorf("Shared(P0,P1) = %d bytes, want 8000", got)
	}
	asg, err := locsched.LocalitySchedule(g, m, 4)
	if err != nil {
		t.Fatalf("LocalitySchedule: %v", err)
	}
	if asg.Len() != 8 {
		t.Errorf("assignment covers %d, want 8", asg.Len())
	}
	res, err := locsched.RunGraph("fig1", g, arrays, locsched.LS, cfg)
	if err != nil {
		t.Fatalf("RunGraph: %v", err)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles")
	}
}

func TestFacadeFormatting(t *testing.T) {
	cfg := locsched.DefaultConfig()
	t1, err := locsched.FormatTable1(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t1, "Usonic") {
		t.Error("Table 1 missing Usonic")
	}
	if !strings.Contains(locsched.FormatTable2(cfg), "200 MHz") {
		t.Error("Table 2 missing clock")
	}
}

func TestFacadeExtendedPolicies(t *testing.T) {
	ext := locsched.ExtendedPolicies()
	if len(ext) != 7 {
		t.Error("expected 7 extended policies")
	}
	found := false
	for _, p := range ext {
		if p == locsched.ARR {
			found = true
		}
	}
	if !found {
		t.Error("extended policies missing ARR")
	}
}

func TestFacadeLoadApps(t *testing.T) {
	spec := `{"tasks": [{
		"name": "mini",
		"arrays": [{"name": "a", "elems": 512}],
		"procs": [
			{"iter_lo": 0, "iter_hi": 256, "refs": [{"array": "a", "kind": "w", "stride": 1}]},
			{"iter_lo": 0, "iter_hi": 256, "refs": [{"array": "a", "stride": 1}], "deps": [0]}
		]
	}]}`
	apps, err := locsched.LoadApps(strings.NewReader(spec))
	if err != nil {
		t.Fatalf("LoadApps: %v", err)
	}
	if len(apps) != 1 || apps[0].Procs() != 2 {
		t.Fatalf("loaded %+v", apps)
	}
	res, err := locsched.RunConcurrent(apps, locsched.LS, locsched.DefaultConfig())
	if err != nil {
		t.Fatalf("RunConcurrent: %v", err)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles")
	}
}

func TestFacadeOptimalSchedule(t *testing.T) {
	arr, err := locsched.NewArray("A", 4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	g := locsched.NewGraph()
	for k := int64(0); k < 4; k++ {
		iter := locsched.Seg("i", k*500, k*500+1000)
		spec, err := locsched.NewProcessSpec(fmt.Sprintf("p%d", k), iter, 0,
			locsched.StreamRef(arr, locsched.ReadAccess, iter, 1, 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.AddProcess(&locsched.Process{ID: locsched.ProcID{Task: 0, Idx: int(k)}, Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := locsched.ComputeSharing(g)
	if err != nil {
		t.Fatal(err)
	}
	optAsg, optTotal, err := locsched.OptimalSchedule(g, m, 2)
	if err != nil {
		t.Fatalf("OptimalSchedule: %v", err)
	}
	lsAsg, err := locsched.LocalitySchedule(g, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if locsched.ScheduleSharing(lsAsg, m) > optTotal {
		t.Error("greedy cannot beat the optimum")
	}
	if locsched.ScheduleSharing(optAsg, m) != optTotal {
		t.Error("optimal assignment objective mismatch")
	}
}

func TestFacadeAblations(t *testing.T) {
	cfg := locsched.DefaultConfig()
	cfg.Workload.Scale = 1
	s, err := locsched.AblationStaticMode(cfg, 2)
	if err != nil {
		t.Fatalf("AblationStaticMode: %v", err)
	}
	if len(s.Points) != 3 {
		t.Errorf("points = %d, want 3", len(s.Points))
	}
	if locsched.FormatSweep(s) == "" {
		t.Error("empty sweep rendering")
	}
}

func TestFacadeFiguresAndSweeps(t *testing.T) {
	cfg := locsched.DefaultConfig()
	cfg.Workload.Scale = 1
	pols := []locsched.Policy{locsched.RS, locsched.LS}

	f6, err := locsched.Figure6(cfg, pols)
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if len(f6.Rows) != 6 {
		t.Errorf("Figure6 rows = %d", len(f6.Rows))
	}
	if locsched.FormatTable(f6) == "" || locsched.FormatMissRates(f6) == "" {
		t.Error("figure rendering empty")
	}
	var buf strings.Builder
	if err := locsched.WriteTableJSON(&buf, f6); err != nil {
		t.Fatalf("WriteTableJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "Med-Im04") {
		t.Error("JSON missing workload names")
	}

	f7, err := locsched.Figure7(cfg, pols)
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	if len(f7.Rows) != 6 {
		t.Errorf("Figure7 rows = %d", len(f7.Rows))
	}

	for name, run := range map[string]func() (*locsched.Sweep, error){
		"cache": func() (*locsched.Sweep, error) {
			return locsched.SweepCacheSize(cfg, []int64{8 << 10}, pols)
		},
		"assoc": func() (*locsched.Sweep, error) {
			return locsched.SweepAssociativity(cfg, []int{2}, pols)
		},
		"cores": func() (*locsched.Sweep, error) {
			return locsched.SweepCores(cfg, []int{4}, pols)
		},
		"quantum": func() (*locsched.Sweep, error) {
			return locsched.SweepQuantum(cfg, []int64{2048})
		},
		"penalty": func() (*locsched.Sweep, error) {
			return locsched.SweepMissPenalty(cfg, []int64{75}, pols)
		},
		"replacement": func() (*locsched.Sweep, error) {
			return locsched.AblationReplacement(cfg)
		},
		"indexing": func() (*locsched.Sweep, error) {
			return locsched.AblationIndexing(cfg)
		},
	} {
		s, err := run()
		if err != nil {
			t.Fatalf("sweep %s: %v", name, err)
		}
		if len(s.Points) == 0 {
			t.Errorf("sweep %s has no points", name)
		}
	}
}

func ExampleRun() {
	cfg := locsched.DefaultConfig()
	cfg.Workload.Scale = 1
	app, _ := locsched.BuildApp("Shape", 0, cfg.Workload)
	rs, _ := locsched.Run(app, locsched.RS, cfg)
	ls, _ := locsched.Run(app, locsched.LS, cfg)
	fmt.Println(ls.Cycles < rs.Cycles)
	// Output: true
}

package locsched_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// TestGodocGate enforces the documentation contract on the hot-path
// files the architecture docs lean on: every exported identifier —
// types, functions, methods, and exported struct fields — carries a doc
// comment. The list is deliberately explicit rather than repo-wide so
// the gate stays cheap and additions are a reviewed decision.
var godocGatedFiles = []string{
	"internal/cache/runs.go",
	"internal/mpsoc/machine.go",
	"internal/mpsoc/parallel_engine.go",
	"internal/experiment/topo.go",
	"internal/trace/rle.go",
	"internal/experiment/runnerpool.go",
	"internal/experiment/fingerprint.go",
	"internal/experiment/serve.go",
	"internal/sched/affinity.go",
	"internal/sched/locality.go",
	"internal/sharing/parallel.go",
	"internal/taskgraph/content.go",
	"internal/obs/metrics.go",
	"internal/obs/histogram.go",
	"internal/obs/expfmt.go",
	"internal/obs/trace.go",
	"internal/obs/log.go",
	"internal/server/server.go",
	"internal/server/planner.go",
	"internal/server/metrics.go",
	"internal/experiment/metrics.go",
	"internal/server/cache.go",
	"internal/server/coalesce.go",
	"internal/server/config.go",
	"internal/server/stats.go",
	"internal/server/loadgen.go",
	"internal/server/loadgen_fleet.go",
	"internal/server/cli.go",
	"internal/store/store.go",
	"internal/store/fs.go",
	"internal/store/faultfs.go",
	"internal/store/breaker.go",
	"internal/store/manifest.go",
	"internal/fleet/fleet.go",
	"internal/fleet/client.go",
}

func TestGodocGate(t *testing.T) {
	for _, path := range godocGatedFiles {
		t.Run(path, func(t *testing.T) {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			report := func(pos token.Pos, kind, name string) {
				t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), kind, name)
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "function/method", d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
							if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
								for _, fld := range st.Fields.List {
									for _, n := range fld.Names {
										if n.IsExported() && fld.Doc == nil && fld.Comment == nil {
											report(n.Pos(), "field", s.Name.Name+"."+n.Name)
										}
									}
								}
							}
						case *ast.ValueSpec:
							for _, n := range s.Names {
								if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(n.Pos(), "value", n.Name)
								}
							}
						}
					}
				}
			}
		})
	}
}

package locsched_test

import (
	"os"
	"path/filepath"
	"testing"

	"locsched"
)

// TestGoldenFigures is the output-drift gate: the default `locsched
// fig6` and `locsched fig7` tables (the paper's four policies, default
// machine and workload) must stay byte-identical to the goldens captured
// at PR 2. New policies, engines, and refactors ride along only if they
// leave the baseline reproduction untouched; a deliberate change to the
// defaults must regenerate testdata/fig6.golden and fig7.golden (e.g.
// `go run ./cmd/locsched fig6 > testdata/fig6.golden`) and say why.
func TestGoldenFigures(t *testing.T) {
	cfg := locsched.DefaultConfig()
	for _, tc := range []struct {
		golden string
		run    func() (*locsched.Table, error)
	}{
		{"fig6.golden", func() (*locsched.Table, error) { return locsched.Figure6(cfg, nil) }},
		{"fig7.golden", func() (*locsched.Table, error) { return locsched.Figure7(cfg, nil) }},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatalf("reading golden: %v", err)
			}
			tab, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			// The CLI prints the table via fmt.Println: formatted bytes
			// plus one trailing newline.
			got := locsched.FormatTable(tab) + "\n"
			if got != string(want) {
				t.Errorf("output drifted from %s:\n--- golden ---\n%s--- got ---\n%s", tc.golden, want, got)
			}
		})
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
// Each benchmark simulates one experiment cell and reports the measured
// makespan (ms/run at the simulated 200 MHz clock) and miss rate
// alongside the usual Go timings, so `go test -bench . -benchmem`
// reproduces the paper's series:
//
//	BenchmarkFigure6/<app>/<policy>   — paper Figure 6 cells
//	BenchmarkFigure7/T=<n>/<policy>   — paper Figure 7 cells
//	BenchmarkTable1Build              — constructing the Table 1 suite
//	BenchmarkAblation*                — design-choice ablations
package locsched_test

import (
	"fmt"
	"testing"

	"locsched"
	"locsched/internal/cache"
	"locsched/internal/eset"
	"locsched/internal/layout"
	"locsched/internal/mpsoc"
	"locsched/internal/presburger"
	"locsched/internal/prog"
	"locsched/internal/sched"
	"locsched/internal/sharing"
	"locsched/internal/trace"
	"locsched/internal/workload"
)

func benchConfig() locsched.Config { return locsched.DefaultConfig() }

func reportRun(b *testing.B, res *locsched.RunResult) {
	b.Helper()
	b.ReportMetric(res.Seconds*1e3, "simms/run")
	b.ReportMetric(res.MissRate()*100, "miss%")
	b.ReportMetric(float64(res.Conflicts), "conflicts")
}

// BenchmarkFigure6 regenerates the paper's Figure 6: each Table 1
// application in isolation under each of the four policies.
func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfig()
	for _, name := range locsched.AppNames() {
		for _, pol := range locsched.Policies() {
			b.Run(fmt.Sprintf("%s/%s", name, pol), func(b *testing.B) {
				app, err := locsched.BuildApp(name, 0, cfg.Workload)
				if err != nil {
					b.Fatal(err)
				}
				var last *locsched.RunResult
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					last, err = locsched.Run(app, pol, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				reportRun(b, last)
			})
		}
	}
}

// BenchmarkFigure7 regenerates the paper's Figure 7: cumulative
// concurrent mixes |T| = 1..6 under each policy.
func BenchmarkFigure7(b *testing.B) {
	cfg := benchConfig()
	for n := 1; n <= 6; n++ {
		for _, pol := range locsched.Policies() {
			b.Run(fmt.Sprintf("T=%d/%s", n, pol), func(b *testing.B) {
				apps, err := locsched.BuildApps(cfg.Workload)
				if err != nil {
					b.Fatal(err)
				}
				var last *locsched.RunResult
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					last, err = locsched.RunConcurrent(apps[:n], pol, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				reportRun(b, last)
			})
		}
	}
}

// BenchmarkFigure6Table regenerates the whole of Figure 6 (24 cells)
// through the parallel fan-out harness — the end-to-end cost of the
// paper's first evaluation figure.
func BenchmarkFigure6Table(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := locsched.Figure6(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Table regenerates the whole of Figure 7 (24 cells)
// through the parallel fan-out harness.
func BenchmarkFigure7Table(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := locsched.Figure7(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7XL measures the cells of the large-scale scenario
// ladder — generated multi-program mixes at 32, 64, and 128 cores —
// under both the strided-RLE engine (default) and the flat-stream
// engine (the PR 1 baseline), so `-bench Figure7XL` directly measures
// the coalescing speedup on the suite it was built for. Apps are built
// and a warm-up run performed outside the timer: what is measured is
// the steady-state simulation cost of a cell (scheduling analyses and
// compiled streams are memoized across runs in both engines alike).
func BenchmarkFigure7XL(b *testing.B) {
	for _, pt := range locsched.DefaultXLPoints() {
		// ARR rides along with the paper's four: its cells quantify how
		// much of the RRS preemption penalty (the weakest coalescing
		// cells) affinity-aware dispatch recovers.
		for _, pol := range append(locsched.Policies(), locsched.ARR) {
			for _, engine := range []string{"rle", "flat"} {
				b.Run(fmt.Sprintf("%dc-T%d/%s/%s", pt.Cores, pt.Tasks, pol, engine), func(b *testing.B) {
					cfg := benchConfig()
					cfg.Machine.Cores = pt.Cores
					cfg.Machine.FlatStreams = engine == "flat"
					apps, err := locsched.BuildMixApps(pt.Tasks, cfg.Workload)
					if err != nil {
						b.Fatal(err)
					}
					var last *locsched.RunResult
					if last, err = locsched.RunConcurrent(apps, pol, cfg); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						last, err = locsched.RunConcurrent(apps, pol, cfg)
						if err != nil {
							b.Fatal(err)
						}
					}
					reportRun(b, last)
				})
			}
		}
	}
}

// BenchmarkXLLadderByPolicy measures one cell of the extended 128–1024
// core ladder per policy SKU under both execution engines: seq is the
// sequential oracle, par4 the parallel epoch-barrier engine at 4 workers
// (clamped to GOMAXPROCS, so on a single-CPU host it degenerates to the
// async machinery with one worker — the overhead bound, not a speedup).
// The two report identical simms/run and miss% by construction; the
// wall-clock ratio per RS/RRS/LS/LSM/ARR cell is the per-policy speedup
// table of PERFORMANCE.md. CI's bench smoke runs the 128c rung (the
// 512/1024c rungs match its XL skip filter); the multicore job times the
// 512c point end to end.
func BenchmarkXLLadderByPolicy(b *testing.B) {
	points := []locsched.XLPoint{
		{Cores: 128, Tasks: 32}, {Cores: 512, Tasks: 128}, {Cores: 1024, Tasks: 256},
	}
	for _, pt := range points {
		for _, pol := range append(locsched.Policies(), locsched.ARR) {
			for _, engine := range []string{"seq", "par4"} {
				b.Run(fmt.Sprintf("%dc-T%d/%s/%s", pt.Cores, pt.Tasks, pol, engine), func(b *testing.B) {
					cfg := benchConfig()
					cfg.Machine.Cores = pt.Cores
					cfg.Workers = 1
					if engine == "par4" {
						cfg.SimWorkers = 4
					}
					apps, err := locsched.BuildMixApps(pt.Tasks, cfg.Workload)
					if err != nil {
						b.Fatal(err)
					}
					var last *locsched.RunResult
					if last, err = locsched.RunConcurrent(apps, pol, cfg); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						last, err = locsched.RunConcurrent(apps, pol, cfg)
						if err != nil {
							b.Fatal(err)
						}
					}
					reportRun(b, last)
				})
			}
		}
	}
}

// BenchmarkFigure7XLTable regenerates the whole default XL ladder end to
// end — workload generation, analyses, and simulation — through the
// parallel fan-out harness (the `locsched fig7xl` wall-clock).
func BenchmarkFigure7XLTable(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := locsched.Figure7XL(cfg, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepXLGrid regenerates a dense 2×2×2 corner of the XL
// parameter grid (size × assoc × miss penalty) end to end.
func BenchmarkSweepXLGrid(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, err := locsched.SweepXL(cfg,
			[]int64{4 << 10, 16 << 10}, []int{1, 4}, []int64{25, 150},
			[]locsched.Policy{locsched.RS, locsched.LS, locsched.LSM})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamMemory reports the resident compiled-stream bytes of
// the whole Table 1 suite in both encodings (flat vs strided RLE) under
// the packed base layout — the ≥4× reduction criterion, measured.
func BenchmarkStreamMemory(b *testing.B) {
	cfg := benchConfig()
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		b.Fatal(err)
	}
	var flatBytes, rleBytes int64
	for i := 0; i < b.N; i++ {
		flatBytes, rleBytes = 0, 0
		for _, app := range apps {
			base, err := layout.Pack(cfg.Align, app.Arrays...)
			if err != nil {
				b.Fatal(err)
			}
			gen := trace.NewGenerator(base)
			for _, p := range app.Graph.Processes() {
				flat, err := gen.Stream(p.Spec)
				if err != nil {
					b.Fatal(err)
				}
				rle, err := gen.RLE(p.Spec)
				if err != nil {
					b.Fatal(err)
				}
				flatBytes += flat.MemBytes()
				rleBytes += rle.MemBytes()
			}
		}
	}
	b.ReportMetric(float64(flatBytes), "flat_bytes")
	b.ReportMetric(float64(rleBytes), "rle_bytes")
	b.ReportMetric(float64(flatBytes)/float64(rleBytes), "reduction×")
}

// BenchmarkTable1Build measures constructing the whole application suite
// (Table 1): graphs, arrays, and dependences.
func BenchmarkTable1Build(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		apps, err := locsched.BuildApps(cfg.Workload)
		if err != nil {
			b.Fatal(err)
		}
		if len(apps) != 6 {
			b.Fatal("wrong suite size")
		}
	}
}

// BenchmarkSharingMatrix measures the Section 2 analysis (data spaces +
// pairwise intersections) on the largest application.
func BenchmarkSharingMatrix(b *testing.B) {
	app, err := locsched.BuildApp("Usonic", 0, benchConfig().Workload)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locsched.ComputeSharing(app.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalitySchedule measures the Figure 3 greedy on the full
// six-application EPG.
func BenchmarkLocalitySchedule(b *testing.B) {
	cfg := benchConfig()
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		b.Fatal(err)
	}
	epg, _, err := workload.Combine(apps...)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sharing.ComputeMatrix(epg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.LocalitySchedule(epg, m, cfg.Machine.Cores); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataMapping measures the Figures 4–5 pipeline (conflict matrix,
// verified greedy selection, re-layout) on the full mix.
func BenchmarkDataMapping(b *testing.B) {
	cfg := benchConfig()
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		b.Fatal(err)
	}
	epg, arrays, err := workload.Combine(apps...)
	if err != nil {
		b.Fatal(err)
	}
	base, err := layout.Pack(cfg.Align, arrays...)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sharing.ComputeMatrix(epg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.NewLSM(epg, m, nil, cfg.Machine.Cores, base, cfg.Machine.Cache, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStaticMode compares the three runtime modes of the
// static LS dispatcher (strict in-order, skip-blocked, steal-when-idle)
// on the |T|=4 mix: the work-conservation ablation of DESIGN.md.
func BenchmarkAblationStaticMode(b *testing.B) {
	cfg := benchConfig()
	for _, mode := range []sched.StaticMode{sched.StrictOrder, sched.SkipBlocked, sched.StealWhenIdle} {
		b.Run(mode.String(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				apps, err := workload.BuildAll(cfg.Workload)
				if err != nil {
					b.Fatal(err)
				}
				epg, arrays, err := workload.Combine(apps[:4]...)
				if err != nil {
					b.Fatal(err)
				}
				m, err := sharing.ComputeMatrix(epg)
				if err != nil {
					b.Fatal(err)
				}
				asg, err := sched.LocalitySchedule(epg, m, cfg.Machine.Cores)
				if err != nil {
					b.Fatal(err)
				}
				disp := sched.NewStaticMode("LS", asg, mode)
				base, err := layout.Pack(cfg.Align, arrays...)
				if err != nil {
					b.Fatal(err)
				}
				res, err := mpsoc.Run(epg, disp, base, cfg.Machine)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// BenchmarkAblationReplacement compares cache replacement policies under
// the LS schedule on the |T|=2 mix.
func BenchmarkAblationReplacement(b *testing.B) {
	for _, repl := range []cache.Replacement{cache.LRU, cache.FIFO, cache.RandomRepl} {
		b.Run(repl.String(), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Machine.Replacement = repl
			var last *locsched.RunResult
			for i := 0; i < b.N; i++ {
				apps, err := locsched.BuildApps(cfg.Workload)
				if err != nil {
					b.Fatal(err)
				}
				last, err = locsched.RunConcurrent(apps[:2], locsched.LS, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkAblationBusFactor compares off-chip bus contention levels (the
// shared-bus extension) under RS on the full mix.
func BenchmarkAblationBusFactor(b *testing.B) {
	for _, factor := range []float64{0, 0.25, 0.5} {
		b.Run(fmt.Sprintf("bus=%.2f", factor), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Machine.BusFactor = factor
			var last *locsched.RunResult
			for i := 0; i < b.N; i++ {
				apps, err := locsched.BuildApps(cfg.Workload)
				if err != nil {
					b.Fatal(err)
				}
				last, err = locsched.RunConcurrent(apps, locsched.RS, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkAblationQuantum compares RRS time slices on the full mix (the
// preemption-granularity sensitivity of Section 4's RRS baseline).
func BenchmarkAblationQuantum(b *testing.B) {
	for _, q := range []int64{512, 2048, 8192, 32768} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Quantum = q
			var last *locsched.RunResult
			for i := 0; i < b.N; i++ {
				apps, err := locsched.BuildApps(cfg.Workload)
				if err != nil {
					b.Fatal(err)
				}
				last, err = locsched.RunConcurrent(apps, locsched.RRS, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkCacheAccess measures the raw per-access cost of the L1 model.
func BenchmarkCacheAccess(b *testing.B) {
	c := cache.MustNew(cache.Geometry{Size: 8 << 10, BlockSize: 32, Assoc: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i) * 32 % (64 << 10))
	}
}

// BenchmarkCacheAccessClassified measures the classification overhead.
func BenchmarkCacheAccessClassified(b *testing.B) {
	c := cache.MustNew(cache.Geometry{Size: 8 << 10, BlockSize: 32, Assoc: 2},
		cache.WithClassification())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(int64(i) * 32 % (64 << 10))
	}
}

// BenchmarkTraceCursor measures lazy trace generation throughput.
func BenchmarkTraceCursor(b *testing.B) {
	arr := prog.MustArray("A", 4, 1<<20)
	iter := prog.Seg("i", 0, 4096)
	spec := prog.MustProcessSpec("p", iter, 1,
		prog.StreamRef(arr, prog.Read, iter, 1, 0),
		prog.StreamRef(arr, prog.Write, iter, 2, 64),
	)
	gen := trace.NewGenerator(layout.MustPack(32, arr))
	cur, err := gen.NewCursor(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cur.Next(); !ok {
			cur.Reset()
		}
	}
}

// BenchmarkPresburgerCard measures exact counting of the paper's Figure 1
// iteration space.
func BenchmarkPresburgerCard(b *testing.B) {
	sp := presburger.MustSpace("i1", "i2")
	set := presburger.MustRect(sp, []int64{0, 0}, []int64{8, 3000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := set.Card(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEsetIntersect measures run-list intersection, the inner loop
// of the sharing analysis.
func BenchmarkEsetIntersect(b *testing.B) {
	ba := eset.NewBuilder()
	bb := eset.NewBuilder()
	for i := int64(0); i < 1000; i++ {
		ba.AddRange(i*10, i*10+6)
		bb.AddRange(i*10+3, i*10+8)
	}
	sa, sb := ba.Build(), bb.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa.IntersectCard(sb)
	}
}

// xlAnalysisGraph builds the generated-mix EPG of one XL ladder point
// (tasks = cores/4) for the analysis-phase benchmarks.
func xlAnalysisGraph(b *testing.B, cores int) *locsched.Graph {
	b.Helper()
	apps, err := workload.BuildMany(cores/4, workload.Params{Scale: 1})
	if err != nil {
		b.Fatal(err)
	}
	g, _, err := workload.Combine(apps...)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkComputeMatrixXL measures sharing-matrix construction on the
// XL ladder's generated mixes: the sequential pairwise path against the
// blocked parallel construction at 1 and 4 workers (the two are
// bit-identical; see the sharing differential tests).
func BenchmarkComputeMatrixXL(b *testing.B) {
	for _, cores := range []int{128, 512, 1024} {
		// The graph builds inside the cores-level Run so filtered
		// invocations (CI smokes select 128c only) skip the other rungs'
		// multi-thousand-process setup entirely.
		b.Run(fmt.Sprintf("%dc", cores), func(b *testing.B) {
			g := xlAnalysisGraph(b, cores)
			// Each path builds a fresh Analyzer per iteration (exactly what
			// a cachedMatrix miss does), so the numbers cover the full
			// analysis phase — data spaces plus the pair sweep. The
			// parallel path's data-space phase additionally benefits from
			// content dedup of repeated app templates; that is part of its
			// design, not benchmark noise (see PERFORMANCE.md).
			b.Run("seq", func(b *testing.B) {
				b.ReportMetric(float64(g.Len()), "procs")
				for i := 0; i < b.N; i++ {
					if _, err := locsched.ComputeSharing(g); err != nil {
						b.Fatal(err)
					}
				}
			})
			for _, workers := range []int{1, 4} {
				b.Run(fmt.Sprintf("par%d", workers), func(b *testing.B) {
					b.ReportMetric(float64(g.Len()), "procs")
					for i := 0; i < b.N; i++ {
						if _, err := locsched.ComputeSharingParallel(g, workers); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		})
	}
}

// BenchmarkLocalityScheduleXL measures the Figure 3 greedy on the XL
// ladder's generated mixes: the retained full-rescan reference against
// the incremental formulation (bit-identical; see the sched differential
// tests).
func BenchmarkLocalityScheduleXL(b *testing.B) {
	for _, cores := range []int{128, 512, 1024} {
		cores := cores
		// Graph and matrix build inside the cores-level Run so filtered
		// invocations skip the other rungs' setup (the 1024c matrix alone
		// costs hundreds of milliseconds).
		b.Run(fmt.Sprintf("%dc", cores), func(b *testing.B) {
			g := xlAnalysisGraph(b, cores)
			m, err := locsched.ComputeSharingParallel(g, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.Run("rescan", func(b *testing.B) {
				b.ReportMetric(float64(g.Len()), "procs")
				for i := 0; i < b.N; i++ {
					if _, err := sched.LocalityScheduleRescan(g, m, cores); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("incremental", func(b *testing.B) {
				b.ReportMetric(float64(g.Len()), "procs")
				for i := 0; i < b.N; i++ {
					if _, err := locsched.LocalitySchedule(g, m, cores); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// Multiprogram demonstrates the paper's Figure 7 setting: several of the
// Table 1 applications run concurrently on one MPSoC. Because different
// applications never share data, processes co-located on a core conflict
// in the cache instead of cooperating — which is exactly what the
// data-mapping phase (LSM) eliminates. Watch the conflict-miss column.
package main

import (
	"fmt"
	"log"

	"locsched"
)

func main() {
	cfg := locsched.DefaultConfig()
	apps, err := locsched.BuildApps(cfg.Workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("concurrent workloads (cumulative Table 1 mixes), 8 cores:")
	fmt.Printf("%-7s %-6s %12s %12s %12s\n", "mix", "policy", "time (ms)", "miss rate", "conflicts")
	for _, n := range []int{2, 4, 6} {
		for _, policy := range []locsched.Policy{locsched.RS, locsched.LS, locsched.LSM} {
			res, err := locsched.RunConcurrent(apps[:n], policy, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("|T|=%-3d %-6s %12.3f %11.1f%% %12d\n",
				n, policy, res.Seconds*1e3, res.MissRate()*100, res.Conflicts)
		}
		fmt.Println()
	}
	fmt.Println("As |T| grows, cross-application cache conflicts mount; LSM's")
	fmt.Println("interleaved half-page re-layout removes them (the paper's main")
	fmt.Println("Figure 7 observation).")
}

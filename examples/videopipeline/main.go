// Videopipeline builds a realistic frame-processing pipeline with the
// public API — deinterlace, denoise, scale, and encode stages over four
// image stripes — and compares all four of the paper's schedulers on it.
// Each stage re-reads the stripe its predecessor produced, so the
// locality-aware schedulers keep whole chains on one core.
package main

import (
	"fmt"
	"log"

	"locsched"
)

const (
	stripes    = 6   // deliberately not a multiple of the core count
	stripeElem = 512 // 2KB per stripe, 4-byte elements
)

func main() {
	cfg := locsched.DefaultConfig()
	cfg.Machine.Cores = 4
	cfg.Quantum = 512 // fine-grained slicing shows RRS's cache churn

	frame, err := locsched.NewArray("frame", 4, stripes*stripeElem)
	if err != nil {
		log.Fatal(err)
	}
	work, err := locsched.NewArray("work", 4, stripes*stripeElem)
	if err != nil {
		log.Fatal(err)
	}
	out, err := locsched.NewArray("out", 4, stripes*stripeElem)
	if err != nil {
		log.Fatal(err)
	}
	arrays := []*locsched.Array{frame, work, out}

	g := locsched.NewGraph()
	idx := 0
	addProc := func(name string, spec *locsched.ProcessSpec) locsched.ProcID {
		id := locsched.ProcID{Task: 0, Idx: idx}
		idx++
		if err := g.AddProcess(&locsched.Process{ID: id, Spec: spec}); err != nil {
			log.Fatal(err)
		}
		return id
	}
	mustSpec := func(name string, iter *locsched.IterSpace, refs ...locsched.Ref) *locsched.ProcessSpec {
		spec, err := locsched.NewProcessSpec(name, iter, 2, refs...)
		if err != nil {
			log.Fatal(err)
		}
		return spec
	}

	// Four stages per stripe: deinterlace -> denoise -> scale -> encode.
	for s := int64(0); s < stripes; s++ {
		base := s * stripeElem
		it1 := locsched.Seg("i", 0, stripeElem)
		deint := addProc("deint", mustSpec(fmt.Sprintf("deint%d", s), it1,
			locsched.StreamRef(frame, locsched.ReadAccess, it1, 1, base),
			locsched.StreamRef(work, locsched.WriteAccess, it1, 1, base),
		))
		it2 := locsched.Seg("i", 0, stripeElem)
		denoise := addProc("denoise", mustSpec(fmt.Sprintf("denoise%d", s), it2,
			locsched.StreamRef(work, locsched.ReadAccess, it2, 1, base),
			locsched.StreamRef(work, locsched.ReadAccess, it2, 1, base+stripeElem/8),
			locsched.StreamRef(work, locsched.WriteAccess, it2, 1, base),
		))
		it3 := locsched.Seg("i", 0, stripeElem)
		scale := addProc("scale", mustSpec(fmt.Sprintf("scale%d", s), it3,
			locsched.StreamRef(work, locsched.ReadAccess, it3, 1, base),
			locsched.StreamRef(out, locsched.WriteAccess, it3, 1, base),
		))
		it4 := locsched.Seg("i", 0, stripeElem)
		encode := addProc("encode", mustSpec(fmt.Sprintf("encode%d", s), it4,
			locsched.StreamRef(out, locsched.ReadAccess, it4, 1, base),
			locsched.StreamRef(out, locsched.ReadAccess, it4, 1, base+stripeElem/8),
		))
		for _, dep := range [][2]locsched.ProcID{{deint, denoise}, {denoise, scale}, {scale, encode}} {
			if err := g.AddDep(dep[0], dep[1]); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("video pipeline: %d processes over %d stripes on %d cores\n\n",
		g.Len(), stripes, cfg.Machine.Cores)
	fmt.Printf("%-5s %10s %12s %10s\n", "", "cycles", "miss rate", "conflicts")
	for _, policy := range locsched.Policies() {
		res, err := locsched.RunGraph("videopipeline", g, arrays, policy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %10d %11.1f%% %10d\n",
			policy, res.Cycles, res.MissRate()*100, res.Conflicts)
	}
	fmt.Println("\nLS/LSM keep each stripe's four stages on one core: every stage")
	fmt.Println("after the first reads its input from the warm cache.")
}

// Figure2 reproduces the paper's running example (Figures 1 and 2):
// Prog1's eight processes, each executing
//
//	for (i2 = 0; i2 < 3000; i2++)  B[i1] += A[i1*1000 + i2][5]
//
// with i1 fixed per process. The sharing between processes k and p is
// 2000 elements for |k−p| = 1 and 1000 for |k−p| = 2 — the banded matrix
// of Figure 2(a) — and the locality-aware scheduler maps them to four
// cores so that consecutive processes on one core share data
// (Figure 2(b)'s good mapping rather than Figure 2(c)'s poor one).
package main

import (
	"fmt"
	"log"

	"locsched"
)

func main() {
	// A[16000][10] with 1-byte elements so the matrix prints the paper's
	// element counts directly.
	a, err := locsched.NewArray("A", 1, 16000)
	if err != nil {
		log.Fatal(err)
	}

	g := locsched.NewGraph()
	var ids []locsched.ProcID
	for k := int64(0); k < 8; k++ {
		iter := locsched.Seg("i2", 0, 3000)
		// Column 5 of row i1*1000+i2 linearizes to a contiguous window
		// of 3000 elements starting at k*1000.
		spec, err := locsched.NewProcessSpec(
			fmt.Sprintf("Prog1.P%d", k), iter, 1,
			locsched.StreamRef(a, locsched.ReadAccess, iter, 1, k*1000),
		)
		if err != nil {
			log.Fatal(err)
		}
		id := locsched.ProcID{Task: 0, Idx: int(k)}
		if err := g.AddProcess(&locsched.Process{ID: id, Spec: spec}); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}

	m, err := locsched.ComputeSharing(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 2(a): data sharing between processes (elements):")
	fmt.Println(m)
	fmt.Println()

	asg, err := locsched.LocalitySchedule(g, m, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 2(b)-style mapping from the Figure 3 scheduler (4 cores):")
	fmt.Println(asg)
	fmt.Println()

	var total int64
	for _, pair := range asg.SuccessivePairs() {
		shared := m.Shared(pair[0], pair[1])
		fmt.Printf("  %v -> %v on one core: %d shared elements\n", pair[0], pair[1], shared)
		total += shared
	}
	fmt.Printf("greedy same-core reuse: %d elements\n\n", total)

	// The exact scheduler recovers the paper's Figure 2(b) pairing
	// ((P0,P1),(P2,P3),(P4,P5),(P6,P7): 4 × 2000 = 8000 elements),
	// quantifying the paper's remark that the greedy "does not generate
	// the best results in all cases".
	optAsg, optTotal, err := locsched.OptimalSchedule(g, m, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exact maximum-sharing mapping (the paper's Figure 2(b)):")
	fmt.Println(optAsg)
	fmt.Printf("optimal same-core reuse: %d elements (greedy reached %d%%)\n",
		optTotal, total*100/optTotal)
	_ = ids
}

// Quickstart: build a tiny custom task (two dependent processes sharing a
// band of one array), analyse its sharing, and run it under the paper's
// locality-aware scheduler versus random scheduling.
package main

import (
	"fmt"
	"log"

	"locsched"
)

func main() {
	cfg := locsched.DefaultConfig()
	cfg.Machine.Cores = 4

	// Eight 2KB bands of one array; each band has a producer process and
	// a dependent consumer that re-reads exactly what was written.
	const bands = 8
	const bandElems = 512
	data, err := locsched.NewArray("data", 4, bands*bandElems)
	if err != nil {
		log.Fatal(err)
	}

	g := locsched.NewGraph()
	for b := int64(0); b < bands; b++ {
		prodIter := locsched.Seg("i", 0, bandElems)
		producer, err := locsched.NewProcessSpec(fmt.Sprintf("producer%d", b), prodIter, 2,
			locsched.StreamRef(data, locsched.WriteAccess, prodIter, 1, b*bandElems))
		if err != nil {
			log.Fatal(err)
		}
		consIter := locsched.Seg("i", 0, bandElems)
		consumer, err := locsched.NewProcessSpec(fmt.Sprintf("consumer%d", b), consIter, 2,
			locsched.StreamRef(data, locsched.ReadAccess, consIter, 1, b*bandElems))
		if err != nil {
			log.Fatal(err)
		}
		pid := locsched.ProcID{Task: 0, Idx: int(2 * b)}
		cid := locsched.ProcID{Task: 0, Idx: int(2*b + 1)}
		if err := g.AddProcess(&locsched.Process{ID: pid, Spec: producer}); err != nil {
			log.Fatal(err)
		}
		if err := g.AddProcess(&locsched.Process{ID: cid, Spec: consumer}); err != nil {
			log.Fatal(err)
		}
		if err := g.AddDep(pid, cid); err != nil {
			log.Fatal(err)
		}
	}

	m, err := locsched.ComputeSharing(g)
	if err != nil {
		log.Fatal(err)
	}
	p0 := locsched.ProcID{Task: 0, Idx: 0}
	c0 := locsched.ProcID{Task: 0, Idx: 1}
	fmt.Printf("each producer/consumer pair shares %d bytes\n", m.Shared(p0, c0))

	arrays := []*locsched.Array{data}
	for _, policy := range []locsched.Policy{locsched.RS, locsched.LS} {
		res, err := locsched.RunGraph("quickstart", g, arrays, policy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s: %6d cycles, %4.1f%% miss rate\n",
			policy, res.Cycles, res.MissRate()*100)
	}
	fmt.Println("LS places each consumer on its producer's core: the reads hit the warm cache.")
}

// Relayout demonstrates the paper's Figure 4 data-mapping transform in
// isolation. Two arrays, K1 and K2, are laid out so that they alias
// cache-set-for-cache-set in a direct-mapped L1; a process that touches
// both per iteration thrashes on every access. The LSM pipeline detects
// the conflict (Figure 5's greedy over the conflict matrix) and re-lays
// the arrays out in interleaved half-cache-page chunks:
//
//	addr'(e) = 2·addr(e) − addr(e) mod (C/2) + b,   b ∈ {0, C/2}
//
// after which K1 and K2 occupy disjoint cache sets and the thrash
// disappears.
package main

import (
	"fmt"
	"log"

	"locsched"
)

func main() {
	cfg := locsched.DefaultConfig()
	cfg.Machine.Cores = 1
	cfg.Machine.Cache.Assoc = 1 // direct-mapped, as in the paper's example

	// Two 8KB (page-sized) arrays plus a small scratch array (the conflict-matrix
	// threshold is an average, so a third array gives the heavy pair
	// something to stand out against).
	k1, err := locsched.NewArray("K1", 4, 2048)
	if err != nil {
		log.Fatal(err)
	}
	k2, err := locsched.NewArray("K2", 4, 2048)
	if err != nil {
		log.Fatal(err)
	}
	scratch, err := locsched.NewArray("scratch", 4, 16)
	if err != nil {
		log.Fatal(err)
	}
	arrays := []*locsched.Array{k1, k2, scratch}

	// p1 reads K1[i] and K2[i] each iteration (the paper's example);
	// p2 then re-reads K2 — warm only if p1 didn't thrash it away.
	g := locsched.NewGraph()
	it1 := locsched.Seg("i", 0, 2048)
	p1, err := locsched.NewProcessSpec("p1", it1, 2,
		locsched.StreamRef(k1, locsched.ReadAccess, it1, 1, 0),
		locsched.StreamRef(k2, locsched.ReadAccess, it1, 1, 0),
		locsched.StreamRef(scratch, locsched.WriteAccess, it1, 0, 0),
	)
	if err != nil {
		log.Fatal(err)
	}
	it2 := locsched.Seg("i", 0, 2048)
	p2, err := locsched.NewProcessSpec("p2", it2, 2,
		locsched.StreamRef(k2, locsched.ReadAccess, it2, 1, 0),
		locsched.StreamRef(scratch, locsched.ReadAccess, it2, 0, 0),
	)
	if err != nil {
		log.Fatal(err)
	}
	id1 := locsched.ProcID{Task: 0, Idx: 0}
	id2 := locsched.ProcID{Task: 0, Idx: 1}
	if err := g.AddProcess(&locsched.Process{ID: id1, Spec: p1}); err != nil {
		log.Fatal(err)
	}
	if err := g.AddProcess(&locsched.Process{ID: id2, Spec: p2}); err != nil {
		log.Fatal(err)
	}
	if err := g.AddDep(id1, id2); err != nil {
		log.Fatal(err)
	}

	fmt.Println("direct-mapped 8KB L1; K1 and K2 alias set-for-set")
	fmt.Printf("%-28s %10s %12s %10s\n", "", "cycles", "miss rate", "conflicts")
	for _, policy := range []locsched.Policy{locsched.LS, locsched.LSM} {
		res, err := locsched.RunGraph("relayout", g, arrays, policy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		label := "original layout (LS)"
		if policy == locsched.LSM {
			label = fmt.Sprintf("after re-layout (LSM, %d arrays)", res.Relaid)
		}
		fmt.Printf("%-28s %10d %11.1f%% %10d\n",
			label, res.Cycles, res.MissRate()*100, res.Conflicts)
	}
	fmt.Println("\nThe transform places K1 in the first half of every cache page and")
	fmt.Println("K2 in the second half: they can never map to the same cache set.")
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlagValidation is the usage-error table: every nonsensical flag
// value must fail at parse time with exit code 2 and a message naming
// the flag, before any simulation starts.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of stderr
	}{
		{"negative scale", []string{"-scale", "-1"}, "-scale"},
		{"negative cores", []string{"-cores", "-8"}, "-cores"},
		{"negative mix", []string{"-mix", "-3"}, "-mix"},
		{"negative quantum", []string{"-quantum", "-2048"}, "-quantum"},
		{"negative hop", []string{"-hop", "-4"}, "-hop"},
		{"bad speeds", []string{"-speeds", "1,fast"}, "-speeds"},
		{"zero speed class", []string{"-speeds", "0,2"}, "-speeds"},
		{"bad topo", []string{"-topo", "torus"}, "-topo"},
		{"unknown policy", []string{"-policy", "bogus"}, "unknown policy"},
		{"stray argument", []string{"extra"}, "unexpected arguments"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(c.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("run(%q) = %d, want usage error (2); stderr: %s", c.args, code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.wantErr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), c.wantErr)
			}
			if stdout.Len() != 0 {
				t.Errorf("usage error still produced output: %q", stdout.String())
			}
		})
	}
}

// TestMissingSpecFile: a runtime failure (not a usage error) must exit 1.
func TestMissingSpecFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spec", "/nonexistent/tasks.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run with missing spec = %d, want 1; stderr: %s", code, stderr.String())
	}
}

// TestSingleAppRun pins the output shape of a default homogeneous run:
// the banner must carry the workload, policy, machine, and the new
// speed-class and interconnect lines.
func TestSingleAppRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-app", "MxM", "-policy", "LS"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run failed (%d): %s", code, stderr.String())
	}
	for _, want := range []string{
		"workload:", "MxM", "policy:          LS",
		"machine:", "speed classes:   uniform", "interconnect:    bus, 0 cycles/hop",
		"makespan:", "accesses:", "conflict misses:", "preemptions:",
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestHeterogeneousBanner: -speeds/-topo/-hop must be echoed in the
// machine banner and the run must still complete.
func TestHeterogeneousBanner(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-app", "MxM", "-policy", "LSM", "-speeds", "1,4", "-topo", "mesh", "-hop", "16"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("heterogeneous run failed (%d): %s", code, stderr.String())
	}
	for _, want := range []string{"speed classes:   1,4", "interconnect:    mesh, 16 cycles/hop"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q:\n%s", want, stdout.String())
		}
	}
}

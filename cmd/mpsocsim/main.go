// Command mpsocsim runs one workload under one scheduling policy on the
// simulated MPSoC and prints detailed statistics: makespan, per-policy
// cache behaviour, and the conflict-miss breakdown the paper's
// data-mapping phase targets.
//
// Usage:
//
//	mpsocsim -app Med-Im04 -policy LSM [-scale 2] [-cores 8] [-mix 3]
//
// With -mix N the first N applications of Table 1 run concurrently
// (the paper's Figure 7 setting) and -app is ignored. With -spec FILE a
// JSON task-set file overrides both -app and -mix.
//
// The machine model can be made heterogeneous with the same flags the
// locsched harness takes: -speeds assigns per-core speed classes (cycled
// across cores), -topo selects the interconnect (bus, mesh, or ring),
// and -hop charges extra miss cycles per interconnect hop. The machine
// banner echoes all three so a run's cost model is always visible in its
// output.
//
// Every flag is validated at parse time; bad values fail with a usage
// error (exit code 2) before any simulation starts. Runtime failures
// (unreadable spec files, simulation errors) exit 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"locsched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses and validates flags, then
// builds the workload and runs the single simulation. Exit codes:
// 0 success, 1 runtime failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpsocsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "Med-Im04", "application (Table 1 name)")
	policy := fs.String("policy", "LS", "policy: RS RRS LS LSM ARR SJF CPL")
	scale := fs.Int("scale", 0, "workload scale factor (0 = default)")
	cores := fs.Int("cores", 0, "number of cores (0 = default 8)")
	mix := fs.Int("mix", 0, "run the first N applications concurrently")
	quantum := fs.Int64("quantum", 0, "RRS quantum in cycles (0 = default)")
	timeline := fs.Bool("timeline", false, "print a per-core execution timeline")
	specFile := fs.String("spec", "", "JSON task-set file (overrides -app/-mix)")
	speeds := fs.String("speeds", "", "per-core speed-class mix, comma-separated cycle multipliers cycled across cores (\"\" = uniform)")
	topo := fs.String("topo", "", "interconnect topology: bus (default), mesh, or ring")
	hop := fs.Int64("hop", 0, "extra miss cycles per interconnect hop")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0 // -h/-help: usage on request is not an error
		}
		return 2
	}

	usageErr := func(err error) int {
		fmt.Fprintln(stderr, "mpsocsim:", err)
		fmt.Fprintln(stderr, "run 'mpsocsim -h' for usage")
		return 2
	}

	if fs.NArg() != 0 {
		return usageErr(fmt.Errorf("unexpected arguments: %v", fs.Args()))
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"-scale", int64(*scale)},
		{"-cores", int64(*cores)},
		{"-mix", int64(*mix)},
		{"-quantum", *quantum},
	} {
		if c.v < 0 {
			return usageErr(fmt.Errorf("%s %d: must be non-negative (0 = default)", c.name, c.v))
		}
	}
	if *hop < 0 {
		return usageErr(fmt.Errorf("-hop %d: must be non-negative", *hop))
	}
	if _, err := locsched.ParseSpeedClasses(*speeds); err != nil {
		return usageErr(fmt.Errorf("-speeds: %w", err))
	}
	machTopo, err := locsched.ParseTopology(*topo)
	if err != nil {
		return usageErr(fmt.Errorf("-topo: %w", err))
	}

	pol := locsched.Policy(strings.ToUpper(*policy))
	valid := false
	for _, p := range locsched.ExtendedPolicies() {
		if p == pol {
			valid = true
			break
		}
	}
	if !valid {
		return usageErr(fmt.Errorf("unknown policy %q (want one of %v)",
			*policy, locsched.ExtendedPolicies()))
	}

	cfg := locsched.DefaultConfig()
	cfg.Machine.RecordTimeline = *timeline
	if *scale > 0 {
		cfg.Workload.Scale = *scale
	}
	if *cores > 0 {
		cfg.Machine.Cores = *cores
	}
	if *quantum > 0 {
		cfg.Quantum = *quantum
	}
	cfg.Machine.Machine = locsched.Machine{
		SpeedClasses: *speeds,
		Topology:     machTopo,
		HopPenalty:   *hop,
	}

	var res *locsched.RunResult
	var label string
	switch {
	case *specFile != "":
		f, oerr := os.Open(*specFile)
		if oerr != nil {
			return fatal(stderr, oerr)
		}
		apps, lerr := locsched.LoadApps(f)
		f.Close()
		if lerr != nil {
			return fatal(stderr, lerr)
		}
		label = fmt.Sprintf("%d user-defined tasks from %s", len(apps), *specFile)
		res, err = locsched.RunConcurrent(apps, pol, cfg)
	case *mix > 0:
		apps, berr := locsched.BuildApps(cfg.Workload)
		if berr != nil {
			return fatal(stderr, berr)
		}
		n := *mix
		if n > len(apps) {
			n = len(apps)
		}
		label = fmt.Sprintf("%d concurrent applications", n)
		res, err = locsched.RunConcurrent(apps[:n], pol, cfg)
	default:
		app, berr := locsched.BuildApp(*appName, 0, cfg.Workload)
		if berr != nil {
			return fatal(stderr, berr)
		}
		label = fmt.Sprintf("%s (%s, %d processes)", app.Name, app.Desc, app.Procs())
		res, err = locsched.Run(app, pol, cfg)
	}
	if err != nil {
		return fatal(stderr, err)
	}

	speedsLabel := cfg.Machine.Machine.SpeedClasses
	if speedsLabel == "" {
		speedsLabel = "uniform"
	}
	fmt.Fprintf(stdout, "workload:        %s\n", label)
	fmt.Fprintf(stdout, "policy:          %s\n", res.Policy)
	fmt.Fprintf(stdout, "machine:         %d cores, %s L1, %d/%d cycle hit/miss, %d MHz\n",
		cfg.Machine.Cores, cfg.Machine.Cache, cfg.Machine.HitLatency,
		cfg.Machine.MissPenalty, cfg.Machine.ClockMHz)
	fmt.Fprintf(stdout, "speed classes:   %s\n", speedsLabel)
	fmt.Fprintf(stdout, "interconnect:    %s, %d cycles/hop\n",
		cfg.Machine.Machine.Topology, cfg.Machine.Machine.HopPenalty)
	fmt.Fprintf(stdout, "makespan:        %d cycles = %.3f ms\n", res.Cycles, res.Seconds*1e3)
	total := res.Hits + res.Misses
	fmt.Fprintf(stdout, "accesses:        %d (%d hits, %d misses, %.1f%% miss rate)\n",
		total, res.Hits, res.Misses, res.MissRate()*100)
	fmt.Fprintf(stdout, "conflict misses: %d\n", res.Conflicts)
	fmt.Fprintf(stdout, "preemptions:     %d\n", res.Preemptions)
	if res.Relaid > 0 {
		fmt.Fprintf(stdout, "re-laid arrays:  %d (data-mapping phase)\n", res.Relaid)
	}
	if *timeline {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, res.TimelineText)
	}
	return 0
}

// fatal reports a runtime (post-validation) failure on stderr and
// returns the conventional exit code 1.
func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "mpsocsim:", err)
	return 1
}

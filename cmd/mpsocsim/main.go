// Command mpsocsim runs one workload under one scheduling policy on the
// simulated MPSoC and prints detailed statistics: makespan, per-policy
// cache behaviour, and the conflict-miss breakdown the paper's
// data-mapping phase targets.
//
// Usage:
//
//	mpsocsim -app Med-Im04 -policy LSM [-scale 2] [-cores 8] [-mix 3]
//
// With -mix N the first N applications of Table 1 run concurrently
// (the paper's Figure 7 setting) and -app is ignored.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"locsched"
)

func main() {
	appName := flag.String("app", "Med-Im04", "application (Table 1 name)")
	policy := flag.String("policy", "LS", "policy: RS RRS LS LSM SJF CPL")
	scale := flag.Int("scale", 0, "workload scale factor (0 = default)")
	cores := flag.Int("cores", 0, "number of cores (0 = default 8)")
	mix := flag.Int("mix", 0, "run the first N applications concurrently")
	quantum := flag.Int64("quantum", 0, "RRS quantum in cycles (0 = default)")
	timeline := flag.Bool("timeline", false, "print a per-core execution timeline")
	specFile := flag.String("spec", "", "JSON task-set file (overrides -app/-mix)")
	flag.Parse()

	cfg := locsched.DefaultConfig()
	cfg.Machine.RecordTimeline = *timeline
	if *scale > 0 {
		cfg.Workload.Scale = *scale
	}
	if *cores > 0 {
		cfg.Machine.Cores = *cores
	}
	if *quantum > 0 {
		cfg.Quantum = *quantum
	}

	pol := locsched.Policy(strings.ToUpper(*policy))
	valid := false
	for _, p := range locsched.ExtendedPolicies() {
		if p == pol {
			valid = true
			break
		}
	}
	if !valid {
		fmt.Fprintf(os.Stderr, "mpsocsim: unknown policy %q (want one of %v)\n",
			*policy, locsched.ExtendedPolicies())
		os.Exit(2)
	}

	var res *locsched.RunResult
	var err error
	var label string
	if *specFile != "" {
		f, oerr := os.Open(*specFile)
		if oerr != nil {
			fatal(oerr)
		}
		apps, lerr := locsched.LoadApps(f)
		f.Close()
		if lerr != nil {
			fatal(lerr)
		}
		label = fmt.Sprintf("%d user-defined tasks from %s", len(apps), *specFile)
		res, err = locsched.RunConcurrent(apps, pol, cfg)
	} else if *mix > 0 {
		apps, berr := locsched.BuildApps(cfg.Workload)
		if berr != nil {
			fatal(berr)
		}
		if *mix > len(apps) {
			*mix = len(apps)
		}
		label = fmt.Sprintf("%d concurrent applications", *mix)
		res, err = locsched.RunConcurrent(apps[:*mix], pol, cfg)
	} else {
		app, berr := locsched.BuildApp(*appName, 0, cfg.Workload)
		if berr != nil {
			fatal(berr)
		}
		label = fmt.Sprintf("%s (%s, %d processes)", app.Name, app.Desc, app.Procs())
		res, err = locsched.Run(app, pol, cfg)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload:        %s\n", label)
	fmt.Printf("policy:          %s\n", res.Policy)
	fmt.Printf("machine:         %d cores, %s L1, %d/%d cycle hit/miss, %d MHz\n",
		cfg.Machine.Cores, cfg.Machine.Cache, cfg.Machine.HitLatency,
		cfg.Machine.MissPenalty, cfg.Machine.ClockMHz)
	fmt.Printf("makespan:        %d cycles = %.3f ms\n", res.Cycles, res.Seconds*1e3)
	total := res.Hits + res.Misses
	fmt.Printf("accesses:        %d (%d hits, %d misses, %.1f%% miss rate)\n",
		total, res.Hits, res.Misses, res.MissRate()*100)
	fmt.Printf("conflict misses: %d\n", res.Conflicts)
	fmt.Printf("preemptions:     %d\n", res.Preemptions)
	if res.Relaid > 0 {
		fmt.Printf("re-laid arrays:  %d (data-mapping phase)\n", res.Relaid)
	}
	if *timeline {
		fmt.Println()
		fmt.Print(res.TimelineText)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpsocsim:", err)
	os.Exit(1)
}

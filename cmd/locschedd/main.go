// Command locschedd is the locality-aware scheduling experiment daemon:
// a long-lived HTTP/JSON server wrapping the locsched experiment harness
// behind a content-addressed result cache, a singleflight request
// coalescer, and a bounded job queue with admission control.
//
// Endpoints:
//
//	POST /v1/run      one workload × policy simulation cell
//	POST /v1/figure   a whole reproduced figure (fig6, fig7, fig7xl);
//	                  byte-identical to `locsched -json <figure>`
//	POST /v1/analysis scheduling analysis only (sharing matrix + LS)
//	GET  /healthz     liveness (503 while draining; 200 with status
//	                  "degraded" when the persistent store is down)
//	GET  /statsz      request, cache, disk, coalesce, and queue counters
//
// Identical in-flight requests execute once; repeats are served from the
// result cache byte-for-byte. A full queue answers 429 with Retry-After
// rather than buffering without bound, and SIGTERM drains gracefully.
//
// With -store-dir the daemon keeps a crash-safe disk-backed result store
// (append-only CRC-verified segments) under the memory cache: a
// restarted daemon warm-starts from the surviving entries, corrupt
// records are quarantined and recomputed rather than served, and a
// failing disk trips a circuit breaker into degraded memory-only
// serving instead of failing requests. Both cache tiers evict by
// measured cost-per-byte, and shutdown persists an advisory cache
// manifest that seeds the next lifetime's eviction ranking and lets
// `locsched bench -warm-manifest` replay a realistic warm set.
//
// With -fleet-self (plus -fleet-peers) N daemons form one
// cache-coherent fleet: a rendezvous-hash ring gives every content key
// exactly one owner replica, non-owners fetch CRC-verified bytes from
// the owner (bounded by -peer-timeout, one retry) before recomputing,
// and locally computed entries replicate back to their owner — one
// execution per key fleet-wide. Every peer failure mode degrades to
// local recompute, never an error; `locsched bench -fleet` proves the
// contract against an in-process 3-replica fleet.
//
// Usage:
//
//	locschedd [-addr HOST:PORT] [-queue N] [-workers N] [-expworkers N]
//	          [-cache-entries N] [-cache-mb N] [-timeout D] [-drain D]
//	          [-scale N] [-store-dir DIR] [-store-mb N]
//	          [-fleet-self URL] [-fleet-peers URL,URL] [-peer-timeout D]
//
// See `locsched bench -serve URL` for the matching load generator.
package main

import (
	"os"

	"locsched/internal/server"
)

func main() {
	os.Exit(server.Main(os.Args[1:], os.Stdout, os.Stderr))
}

// Command tracegen inspects a workload's static structure: its sharing
// matrix (paper Figure 2a), the LS per-core schedule (Figure 3's output),
// the process graph in Graphviz DOT, or a prefix of a process's address
// trace. It is the debugging companion to mpsocsim.
//
// Usage:
//
//	tracegen -app MxM -show sharing
//	tracegen -app MxM -show schedule -cores 4
//	tracegen -app MxM -show dot > mxm.dot
//	tracegen -app MxM -show trace -proc 0 -n 16
package main

import (
	"flag"
	"fmt"
	"os"

	"locsched"
	"locsched/internal/layout"
	"locsched/internal/trace"
)

func main() {
	appName := flag.String("app", "Med-Im04", "application (Table 1 name)")
	show := flag.String("show", "sharing", "what to print: sharing, schedule, dot, critical, trace")
	cores := flag.Int("cores", 8, "cores for -show schedule")
	procIdx := flag.Int("proc", 0, "process index for -show trace")
	n := flag.Int("n", 32, "number of accesses for -show trace")
	scale := flag.Int("scale", 0, "workload scale factor (0 = default)")
	flag.Parse()

	params := locsched.DefaultConfig().Workload
	if *scale > 0 {
		params.Scale = *scale
	}
	app, err := locsched.BuildApp(*appName, 0, params)
	if err != nil {
		fatal(err)
	}

	switch *show {
	case "sharing":
		m, err := locsched.ComputeSharing(app.Graph)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sharing matrix for %s (bytes; diagonal = footprint):\n%s\n", app.Name, m)
	case "schedule":
		m, err := locsched.ComputeSharing(app.Graph)
		if err != nil {
			fatal(err)
		}
		asg, err := locsched.LocalitySchedule(app.Graph, m, *cores)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("LS schedule for %s on %d cores:\n%s\n", app.Name, *cores, asg)
	case "dot":
		if err := app.Graph.WriteDOT(os.Stdout, app.Name); err != nil {
			fatal(err)
		}
	case "critical":
		path, err := app.Graph.CriticalPath()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("critical path of %s (%d of %d processes):\n", app.Name, len(path), app.Procs())
		for _, id := range path {
			fmt.Printf("  %v  %s\n", id, app.Graph.Process(id).Spec.Name)
		}
	case "trace":
		ids := app.Graph.ProcIDs()
		if *procIdx < 0 || *procIdx >= len(ids) {
			fatal(fmt.Errorf("process index %d out of range [0,%d)", *procIdx, len(ids)))
		}
		proc := app.Graph.Process(ids[*procIdx])
		am := layout.MustPack(32, app.Arrays...)
		gen := trace.NewGenerator(am)
		cur, err := gen.NewCursor(proc.Spec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("first %d accesses of %s (%s):\n", *n, ids[*procIdx], proc.Spec.Name)
		for i := 0; i < *n; i++ {
			acc, ok := cur.Next()
			if !ok {
				break
			}
			kind := "R"
			if acc.Write {
				kind = "W"
			}
			marker := ""
			if acc.NewIter {
				marker = " <- new iteration"
			}
			fmt.Printf("  %s 0x%06x%s\n", kind, acc.Addr, marker)
		}
	default:
		fatal(fmt.Errorf("unknown -show %q (want sharing, schedule, dot, critical, or trace)", *show))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

// Command locsched regenerates the tables and figures of the paper's
// evaluation (Kandemir & Chen, DATE 2005, Section 4).
//
// Usage:
//
//	locsched [flags] <command>
//
// Commands:
//
//	table1   the application suite (paper Table 1)
//	table2   the default simulation parameters (paper Table 2)
//	fig6     isolated execution times per application (paper Figure 6)
//	fig7     concurrent workloads |T|=1..6 (paper Figure 7)
//	sweep    parameter-sensitivity sweeps (the "consistent savings" claim)
//	all      everything above, in order
//	fig7xl   large-scale concurrent mixes on 32–1024-core machines
//	sweepxl  dense cache-size × associativity × miss-penalty grid
//	affinity ARR window × quantum-batch ablation grid against RRS
//	topo     machine-model ablation: speed mix × topology × hop penalty
//	         against the homogeneous baseline
//
// The XL, affinity, and topo commands go beyond the paper (which stops
// at 8 homogeneous cores and four policies): they are the evaluations
// the compiled-trace engines, the blocked scheduling analysis, and the
// heterogeneous machine model were built to afford, and are deliberately
// not part of `all`.
//
// Two serving subcommands take their own flags after the command word
// (unlike the figure commands above):
//
//	locsched serve [flags]               start the locschedd daemon in-process
//	                                     (same flags as cmd/locschedd)
//	locsched bench -serve URL [flags]    replay the mixed scenario stream
//	                                     against a running daemon and report
//	                                     req/s, cache-hit and coalesce rates
//	locsched bench -restart-warm -store-dir DIR
//	                                     replay the stream, restart an
//	                                     in-process daemon on the same store
//	                                     directory, and assert it warm-starts
//	                                     from disk
//	locsched bench -fleet [-replicas N]  replay the stream against a single
//	                                     in-process instance and then an
//	                                     in-process replica fleet, asserting
//	                                     byte-identical responses, no worse
//	                                     hit rate, and below-N× executions
//
// Flags:
//
//	-scale N       workload scale factor (default 2)
//	-cores N       number of cores (default 8)
//	-quantum N     RRS/ARR time slice in cycles (default 2048)
//	-policy S      comma-separated policy columns for fig6/fig7/fig7xl/sweepxl
//	               (rs,rrs,arr,sjf,cpl,ls,lsm; default: the paper's four)
//	-extended      include the ARR, SJF, and CPL extension policies
//	-affinity N    ARR affinity window; 0 degenerates to RRS (default 256)
//	-qbatch N      ARR quanta per warm resume (default 8)
//	-adecay N      ARR affinity staleness bound in cycles; 0 = never (default 0)
//	-awindows S    affinity-grid windows (default "0,1,4,8,16,64")
//	-abatches S    affinity-grid quantum batches (default "1,4")
//	-missrates     also print miss-rate/conflict tables for fig6, fig7, fig7xl
//	-json          emit fig6/fig7/fig7xl as JSON instead of tables
//	-par N         worker pool size for figure/sweep cells (default GOMAXPROCS)
//	-simpar N      intra-run engine workers per cell (default 0 = sequential
//	               engine; any value yields bit-identical results, and the
//	               par×simpar product is clamped to the GOMAXPROCS budget)
//	-flat          use the flat-stream engine instead of strided-RLE (A/B timing)
//	-xlpoints S    fig7xl ladder as cores:tasks pairs (default "32:8,64:16,128:32")
//	-xlmax N       fig7xl doubling ladder 32..N cores (overrides -xlpoints; try 512 or 1024)
//	-xlsizes S     sweepxl cache sizes in KB (default "4,8,16,32")
//	-xlassoc S     sweepxl associativities (default "1,2,4,8")
//	-xlmiss S      sweepxl miss penalties in cycles (default "25,75,150,300")
//	-speeds S      per-core speed-class mix, comma-separated cycle multipliers
//	               cycled across cores ("" = uniform speed 1)
//	-topo S        interconnect topology: bus (default), mesh, or ring
//	-hop N         extra miss cycles per interconnect hop (default 0)
//	-tspeeds S     topo-grid speed mixes, semicolon-separated specs
//	               (default "1;1,4" — specs themselves contain commas)
//	-ttopos S      topo-grid topologies (default "bus,mesh")
//	-thops S       topo-grid hop penalties in cycles (default "0,16")
//
// Every flag is validated at parse time: negative scales, core counts,
// worker pools, affinity settings (beyond the -1 "use the default"
// sentinel), non-positive XL ladder points, and empty lists fail with a
// usage error before any experiment starts, instead of propagating
// silently into configurations.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"locsched"
	"locsched/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// cliOptions is everything the command handlers need, parsed and
// validated.
type cliOptions struct {
	cfg       locsched.Config
	policies  []locsched.Policy
	missrates bool
	jsonOut   bool
	xlPoints  []locsched.XLPoint
	xlSizes   []int64
	xlAssoc   []int
	xlMiss    []int64
	aWindows  []int
	aBatches  []int
	topoGrid  locsched.TopoGrid
}

// run is the testable entry point: it parses and validates flags, then
// dispatches the command. Exit codes: 0 success, 1 runtime failure,
// 2 usage error.
//
// The serving subcommands are dispatched before figure-flag parsing:
// they follow the conventional `command -flags` shape because their flag
// sets (daemon tuning, load-generator tuning) share nothing with the
// figure harness flags.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "serve":
			return server.Main(args[1:], stdout, stderr)
		case "bench":
			return benchMain(args[1:], stdout, stderr)
		}
	}
	fs := flag.NewFlagSet("locsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 0, "workload scale factor (0 = default)")
	cores := fs.Int("cores", 0, "number of cores (0 = default 8)")
	quantum := fs.Int64("quantum", 0, "RRS/ARR quantum in cycles (0 = default)")
	extended := fs.Bool("extended", false, "include ARR, SJF, and CPL extension policies")
	policyList := fs.String("policy", "", "comma-separated policy columns (rs,rrs,arr,sjf,cpl,ls,lsm); empty = the paper's four")
	affinity := fs.Int("affinity", -1, "ARR affinity window; 0 degenerates to RRS (-1 = default 256)")
	qbatch := fs.Int("qbatch", -1, "ARR quanta per warm resume; 0 and 1 both mean a single quantum (-1 = default 8)")
	adecay := fs.Int64("adecay", -1, "ARR affinity staleness bound in cycles; 0 = never stale (-1 = default)")
	aWindows := fs.String("awindows", "0,1,4,8,16,64", "affinity-grid windows, comma-separated")
	aBatches := fs.String("abatches", "1,4", "affinity-grid quantum batches, comma-separated")
	missrates := fs.Bool("missrates", false, "also print miss-rate tables")
	jsonOut := fs.Bool("json", false, "emit fig6/fig7/fig7xl as JSON instead of tables")
	par := fs.Int("par", 0, "worker pool size for figure/sweep cells (0 = GOMAXPROCS, 1 = sequential)")
	simpar := fs.Int("simpar", 0, "intra-run engine workers per cell (0 = sequential engine; results identical at any value; clamped so par*simpar fits GOMAXPROCS)")
	flat := fs.Bool("flat", false, "use the flat-stream engine instead of strided-RLE (for A/B timing; results are identical)")
	xlPoints := fs.String("xlpoints", "32:8,64:16,128:32", "fig7xl ladder as comma-separated cores:tasks pairs")
	xlMax := fs.Int("xlmax", 0, "fig7xl doubling ladder 32..N cores (overrides -xlpoints; 0 = use -xlpoints)")
	xlSizes := fs.String("xlsizes", "4,8,16,32", "sweepxl cache sizes in KB, comma-separated")
	xlAssoc := fs.String("xlassoc", "1,2,4,8", "sweepxl associativities, comma-separated")
	xlMiss := fs.String("xlmiss", "25,75,150,300", "sweepxl miss penalties in cycles, comma-separated")
	speeds := fs.String("speeds", "", "per-core speed-class mix, comma-separated cycle multipliers cycled across cores (\"\" = uniform)")
	topo := fs.String("topo", "", "interconnect topology: bus (default), mesh, or ring")
	hop := fs.Int64("hop", 0, "extra miss cycles per interconnect hop")
	tSpeeds := fs.String("tspeeds", "1;1,4", "topo-grid speed mixes, semicolon-separated specs")
	tTopos := fs.String("ttopos", "bus,mesh", "topo-grid topologies, comma-separated")
	tHops := fs.String("thops", "0,16", "topo-grid hop penalties in cycles, comma-separated")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -h/-help: usage on request is not an error
		}
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	usageErr := func(err error) int {
		fmt.Fprintln(stderr, "locsched:", err)
		fmt.Fprintln(stderr, "run 'locsched -h' for usage")
		return 2
	}

	// Validate every plain numeric flag before building the config.
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"-scale", int64(*scale)},
		{"-cores", int64(*cores)},
		{"-quantum", *quantum},
		{"-par", int64(*par)},
		{"-simpar", int64(*simpar)},
	} {
		if c.v < 0 {
			return usageErr(fmt.Errorf("%s %d: must be non-negative (0 = default)", c.name, c.v))
		}
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"-affinity", int64(*affinity)},
		{"-qbatch", int64(*qbatch)},
		{"-adecay", *adecay},
	} {
		if c.v < -1 {
			return usageErr(fmt.Errorf("%s %d: must be non-negative (or -1 for the default)", c.name, c.v))
		}
	}
	if *xlMax < 0 {
		return usageErr(fmt.Errorf("-xlmax %d: must be non-negative (0 = use -xlpoints)", *xlMax))
	}
	if *hop < 0 {
		return usageErr(fmt.Errorf("-hop %d: must be non-negative", *hop))
	}
	if _, spErr := locsched.ParseSpeedClasses(*speeds); spErr != nil {
		return usageErr(fmt.Errorf("-speeds: %w", spErr))
	}
	machTopo, topoErr := locsched.ParseTopology(*topo)
	if topoErr != nil {
		return usageErr(fmt.Errorf("-topo: %w", topoErr))
	}

	opts := cliOptions{missrates: *missrates, jsonOut: *jsonOut}
	opts.cfg = locsched.DefaultConfig()
	if *scale > 0 {
		opts.cfg.Workload.Scale = *scale
	}
	if *cores > 0 {
		opts.cfg.Machine.Cores = *cores
	}
	if *quantum > 0 {
		opts.cfg.Quantum = *quantum
	}
	if *par > 0 {
		opts.cfg.Workers = *par
	}
	if *simpar > 0 {
		opts.cfg.SimWorkers = *simpar
	}
	if *affinity >= 0 {
		opts.cfg.Affinity = *affinity
	}
	if *qbatch >= 0 {
		opts.cfg.QBatch = *qbatch
	}
	if *adecay >= 0 {
		opts.cfg.AffinityDecay = *adecay
	}
	opts.cfg.Machine.FlatStreams = *flat
	opts.cfg.Machine.Machine = locsched.Machine{
		SpeedClasses: *speeds,
		Topology:     machTopo,
		HopPenalty:   *hop,
	}

	if *extended {
		opts.policies = locsched.ExtendedPolicies()
	}
	if *policyList != "" {
		opts.policies = nil
		for _, part := range strings.Split(*policyList, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			p, err := locsched.ParsePolicy(part)
			if err != nil {
				return usageErr(err)
			}
			opts.policies = append(opts.policies, p)
		}
	}

	// Parse the list flags eagerly — all have static defaults, so any
	// error is necessarily the user's value.
	var err error
	if *xlMax > 0 {
		if opts.xlPoints, err = locsched.XLLadder(*xlMax); err != nil {
			return usageErr(fmt.Errorf("-xlmax: %w", err))
		}
	} else if opts.xlPoints, err = parseXLPoints(*xlPoints); err != nil {
		return usageErr(err)
	}
	if opts.xlSizes, err = parseInt64List(*xlSizes, 1); err != nil {
		return usageErr(fmt.Errorf("-xlsizes: %w", err))
	}
	for i := range opts.xlSizes {
		opts.xlSizes[i] *= 1024
	}
	if opts.xlAssoc, err = parseIntList(*xlAssoc, 1); err != nil {
		return usageErr(fmt.Errorf("-xlassoc: %w", err))
	}
	if opts.xlMiss, err = parseInt64List(*xlMiss, 1); err != nil {
		return usageErr(fmt.Errorf("-xlmiss: %w", err))
	}
	if opts.aWindows, err = parseIntList(*aWindows, 0); err != nil {
		return usageErr(fmt.Errorf("-awindows: %w", err))
	}
	if opts.aBatches, err = parseIntList(*aBatches, 0); err != nil {
		return usageErr(fmt.Errorf("-abatches: %w", err))
	}
	// The topo grid's speed specs contain commas, so the spec list is
	// semicolon-separated; each spec and topology name is validated here.
	for _, part := range strings.Split(*tSpeeds, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, err = locsched.ParseSpeedClasses(part); err != nil {
			return usageErr(fmt.Errorf("-tspeeds: %w", err))
		}
		opts.topoGrid.Speeds = append(opts.topoGrid.Speeds, part)
	}
	if len(opts.topoGrid.Speeds) == 0 {
		return usageErr(fmt.Errorf("-tspeeds: empty list"))
	}
	for _, part := range strings.Split(*tTopos, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tp, err := locsched.ParseTopology(part)
		if err != nil {
			return usageErr(fmt.Errorf("-ttopos: %w", err))
		}
		opts.topoGrid.Topos = append(opts.topoGrid.Topos, tp)
	}
	if len(opts.topoGrid.Topos) == 0 {
		return usageErr(fmt.Errorf("-ttopos: empty list"))
	}
	if opts.topoGrid.Hops, err = parseInt64List(*tHops, 0); err != nil {
		return usageErr(fmt.Errorf("-thops: %w", err))
	}

	cmd := fs.Arg(0)
	if !knownCommand(cmd) {
		fs.Usage()
		return 2
	}
	if err := dispatch(cmd, opts, stdout); err != nil {
		fmt.Fprintln(stderr, "locsched:", err)
		return 1
	}
	return 0
}

// knownCommand reports whether cmd names a locsched subcommand.
func knownCommand(cmd string) bool {
	switch cmd {
	case "table1", "table2", "fig6", "fig7", "fig7xl", "sweepxl", "affinity", "topo", "sweep", "ablate", "all":
		return true
	}
	return false
}

// dispatch runs one (validated) command against stdout.
func dispatch(cmd string, opts cliOptions, stdout io.Writer) error {
	cfg := opts.cfg
	printTable := func(t *locsched.Table) error {
		if opts.jsonOut {
			return locsched.WriteTableJSON(stdout, t)
		}
		fmt.Fprintln(stdout, locsched.FormatTable(t))
		if opts.missrates {
			fmt.Fprintln(stdout, locsched.FormatMissRates(t))
		}
		return nil
	}
	switch cmd {
	case "table1":
		out, err := locsched.FormatTable1(cfg.Workload)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, out)
	case "table2":
		fmt.Fprintln(stdout, locsched.FormatTable2(cfg))
	case "fig6":
		t, err := locsched.Figure6(cfg, opts.policies)
		if err != nil {
			return err
		}
		return printTable(t)
	case "fig7":
		t, err := locsched.Figure7(cfg, opts.policies)
		if err != nil {
			return err
		}
		return printTable(t)
	case "fig7xl":
		t, err := locsched.Figure7XL(cfg, opts.xlPoints, opts.policies)
		if err != nil {
			return err
		}
		return printTable(t)
	case "sweepxl":
		s, err := locsched.SweepXL(cfg, opts.xlSizes, opts.xlAssoc, opts.xlMiss, opts.policies)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, locsched.FormatSweep(s))
	case "affinity":
		s, err := locsched.AblationAffinity(cfg, opts.aWindows, opts.aBatches)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, locsched.FormatSweep(s))
	case "topo":
		s, err := locsched.AblationTopo(cfg, opts.topoGrid, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, locsched.FormatSweep(s))
	case "sweep":
		return sweeps(cfg, stdout)
	case "ablate":
		return ablations(cfg, stdout)
	case "all":
		for _, n := range []string{"table1", "table2", "fig6", "fig7", "sweep", "ablate"} {
			if err := dispatch(n, opts, stdout); err != nil {
				return err
			}
		}
	}
	return nil
}

func sweeps(cfg locsched.Config, stdout io.Writer) error {
	pols := []locsched.Policy{locsched.RS, locsched.LS, locsched.LSM}
	cs, err := locsched.SweepCacheSize(cfg, []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10}, pols)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, locsched.FormatSweep(cs))
	as, err := locsched.SweepAssociativity(cfg, []int{1, 2, 4, 8}, pols)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, locsched.FormatSweep(as))
	co, err := locsched.SweepCores(cfg, []int{2, 4, 8, 16}, pols)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, locsched.FormatSweep(co))
	qs, err := locsched.SweepQuantum(cfg, []int64{512, 2048, 8192, 32768})
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, locsched.FormatSweep(qs))
	mp, err := locsched.SweepMissPenalty(cfg, []int64{25, 75, 150, 300}, pols)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, locsched.FormatSweep(mp))
	return nil
}

func ablations(cfg locsched.Config, stdout io.Writer) error {
	sm, err := locsched.AblationStaticMode(cfg, 4)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, locsched.FormatSweep(sm))
	rp, err := locsched.AblationReplacement(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, locsched.FormatSweep(rp))
	ix, err := locsched.AblationIndexing(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, locsched.FormatSweep(ix))
	rows, err := locsched.GreedyQuality(cfg, cfg.Machine.Cores)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, locsched.FormatGreedyQuality(rows, cfg.Machine.Cores))
	return nil
}

// parseIntList parses a comma-separated list of integers, each at least
// floor.
func parseIntList(s string, floor int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		if v < floor {
			return nil, fmt.Errorf("value %d must be at least %d", v, floor)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseInt64List parses a comma-separated list of 64-bit integers, each
// at least floor.
func parseInt64List(s string, floor int) ([]int64, error) {
	vs, err := parseIntList(s, floor)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out, nil
}

// parseXLPoints parses "cores:tasks,cores:tasks,..." ladders; every
// cores and tasks count must be positive.
func parseXLPoints(s string) ([]locsched.XLPoint, error) {
	var out []locsched.XLPoint
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		cs, ts, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("-xlpoints: %q is not cores:tasks", part)
		}
		cores, err := strconv.Atoi(cs)
		if err != nil {
			return nil, fmt.Errorf("-xlpoints: bad core count %q", cs)
		}
		tasks, err := strconv.Atoi(ts)
		if err != nil {
			return nil, fmt.Errorf("-xlpoints: bad task count %q", ts)
		}
		if cores <= 0 || tasks <= 0 {
			return nil, fmt.Errorf("-xlpoints: point %q: cores and tasks must be positive", part)
		}
		out = append(out, locsched.XLPoint{Cores: cores, Tasks: tasks})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-xlpoints: empty ladder")
	}
	return out, nil
}

// benchMain is the `locsched bench` subcommand: the load generator that
// replays the mixed scenario stream against a running locschedd, or —
// with -restart-warm — against two successive in-process daemon
// lifetimes over one store directory to prove the warm-start contract,
// or — with -fleet — against a single instance and then an in-process
// replica fleet to prove the fleet differential contract.
func benchMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("locsched bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	serveURL := fs.String("serve", "", "base URL of the target locschedd (required unless -restart-warm)")
	conc := fs.Int("conc", 8, "concurrent client goroutines")
	requests := fs.Int("requests", 200, "total stream requests to send")
	scale := fs.Int("scale", 0, "workload scale the stream requests (0 = daemon default)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request HTTP timeout")
	expectCache := fs.Bool("expect-cache", false, "exit nonzero unless cache hits AND coalesces were observed (CI assertion)")
	restartWarm := fs.Bool("restart-warm", false, "run the stream against an in-process daemon, restart it on the same store dir, and assert the warm start")
	storeDir := fs.String("store-dir", "", "store directory for -restart-warm / -fleet (optional with -fleet)")
	fleetMode := fs.Bool("fleet", false, "run the fleet differential bench: the stream against one in-process instance, then an in-process replica fleet, asserting byte-identical bodies and no worse hit rate")
	replicas := fs.Int("replicas", 3, "fleet size for -fleet")
	warmManifest := fs.String("warm-manifest", "", "cache manifest to replay as a warm set before the stream (with -serve)")
	metricsURL := fs.String("metrics-url", "", "daemon /metricsz URL to scrape before and after the run, reporting server-side queue/coalesce/request latency quantiles (with -serve)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *fleetMode {
		if *serveURL != "" || *restartWarm || fs.NArg() != 0 || *conc <= 0 || *requests <= 0 || *scale < 0 || *replicas < 2 {
			fmt.Fprintln(stderr, "locsched bench: usage: locsched bench -fleet [-replicas N] [-store-dir DIR] [-conc N] [-requests N] [-scale N] [-timeout D]")
			return 2
		}
		srvCfg := server.DefaultConfig()
		srvCfg.StoreDir = *storeDir
		srvCfg.Scale = *scale
		rep, err := server.RunFleetBench(srvCfg, server.LoadConfig{
			Concurrency: *conc,
			Requests:    *requests,
			Scale:       *scale,
			Timeout:     *timeout,
		}, *replicas)
		if err != nil {
			fmt.Fprintln(stderr, "locsched bench:", err)
			return 1
		}
		fmt.Fprint(stdout, rep.Format())
		if err := rep.Verify(); err != nil {
			fmt.Fprintln(stderr, "locsched bench:", err)
			return 1
		}
		fmt.Fprintln(stdout, "fleet: OK")
		return 0
	}
	if *restartWarm {
		if *storeDir == "" || *serveURL != "" || fs.NArg() != 0 || *conc <= 0 || *requests <= 0 || *scale < 0 {
			fmt.Fprintln(stderr, "locsched bench: usage: locsched bench -restart-warm -store-dir DIR [-conc N] [-requests N] [-scale N] [-timeout D]")
			return 2
		}
		srvCfg := server.DefaultConfig()
		srvCfg.StoreDir = *storeDir
		srvCfg.Scale = *scale
		rep, err := server.RunRestartWarm(srvCfg, server.LoadConfig{
			Concurrency: *conc,
			Requests:    *requests,
			Scale:       *scale,
			Timeout:     *timeout,
		})
		if err != nil {
			fmt.Fprintln(stderr, "locsched bench:", err)
			return 1
		}
		fmt.Fprint(stdout, rep.Format())
		if err := rep.Verify(); err != nil {
			fmt.Fprintln(stderr, "locsched bench:", err)
			return 1
		}
		fmt.Fprintln(stdout, "restart-warm: OK")
		return 0
	}
	if *serveURL == "" || fs.NArg() != 0 || *conc <= 0 || *requests <= 0 || *scale < 0 || *storeDir != "" {
		fmt.Fprintln(stderr, "locsched bench: usage: locsched bench -serve URL [-conc N] [-requests N] [-scale N] [-timeout D] [-expect-cache] [-warm-manifest FILE] [-metrics-url URL]")
		return 2
	}
	rep, err := server.RunLoad(server.LoadConfig{
		BaseURL:      *serveURL,
		Concurrency:  *conc,
		Requests:     *requests,
		Scale:        *scale,
		Timeout:      *timeout,
		WarmManifest: *warmManifest,
		MetricsURL:   *metricsURL,
	})
	if err != nil {
		fmt.Fprintln(stderr, "locsched bench:", err)
		return 1
	}
	fmt.Fprint(stdout, rep.Format())
	if rep.Errors > 0 {
		fmt.Fprintf(stderr, "locsched bench: %d requests failed\n", rep.Errors)
		return 1
	}
	if *expectCache && (rep.Stats.CacheHits == 0 || rep.Stats.Coalesced == 0) {
		fmt.Fprintf(stderr, "locsched bench: expected nonzero cache hits and coalesces, got hits=%d coalesced=%d\n",
			rep.Stats.CacheHits, rep.Stats.Coalesced)
		return 1
	}
	return 0
}

func usage(fs *flag.FlagSet, stderr io.Writer) {
	fmt.Fprintf(stderr, `usage: locsched [flags] <command>
       locsched serve [flags]
       locsched bench -serve URL [flags]

commands: table1 table2 fig6 fig7 sweep ablate all fig7xl sweepxl affinity topo

flags:
`)
	fs.PrintDefaults()
}

// Command locsched regenerates the tables and figures of the paper's
// evaluation (Kandemir & Chen, DATE 2005, Section 4).
//
// Usage:
//
//	locsched [flags] <command>
//
// Commands:
//
//	table1   the application suite (paper Table 1)
//	table2   the default simulation parameters (paper Table 2)
//	fig6     isolated execution times per application (paper Figure 6)
//	fig7     concurrent workloads |T|=1..6 (paper Figure 7)
//	sweep    parameter-sensitivity sweeps (the "consistent savings" claim)
//	all      everything above, in order
//	fig7xl   large-scale concurrent mixes on 32–128-core machines
//	sweepxl  dense cache-size × associativity × miss-penalty grid
//	affinity ARR window × quantum-batch ablation grid against RRS
//
// The XL and affinity commands go beyond the paper (which stops at 8
// cores and four policies): they are the evaluations the compiled-trace
// engines were built to afford, and are deliberately not part of `all`.
//
// Flags:
//
//	-scale N       workload scale factor (default 2)
//	-cores N       number of cores (default 8)
//	-quantum N     RRS/ARR time slice in cycles (default 2048)
//	-policy S      comma-separated policy columns for fig6/fig7/fig7xl/sweepxl
//	               (rs,rrs,arr,sjf,cpl,ls,lsm; default: the paper's four)
//	-extended      include the ARR, SJF, and CPL extension policies
//	-affinity N    ARR affinity window; 0 degenerates to RRS (default 256)
//	-qbatch N      ARR quanta per warm resume (default 8)
//	-adecay N      ARR affinity staleness bound in cycles; 0 = never (default 0)
//	-awindows S    affinity-grid windows (default "0,1,4,8,16,64")
//	-abatches S    affinity-grid quantum batches (default "1,4")
//	-missrates     also print miss-rate/conflict tables for fig6, fig7, fig7xl
//	-json          emit fig6/fig7/fig7xl as JSON instead of tables
//	-par N         worker pool size for figure/sweep cells (default GOMAXPROCS)
//	-flat          use the flat-stream engine instead of strided-RLE (A/B timing)
//	-xlpoints S    fig7xl ladder as cores:tasks pairs (default "32:8,64:16,128:32")
//	-xlsizes S     sweepxl cache sizes in KB (default "4,8,16,32")
//	-xlassoc S     sweepxl associativities (default "1,2,4,8")
//	-xlmiss S      sweepxl miss penalties in cycles (default "25,75,150,300")
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"locsched"
)

func main() {
	scale := flag.Int("scale", 0, "workload scale factor (0 = default)")
	cores := flag.Int("cores", 0, "number of cores (0 = default 8)")
	quantum := flag.Int64("quantum", 0, "RRS/ARR quantum in cycles (0 = default)")
	extended := flag.Bool("extended", false, "include ARR, SJF, and CPL extension policies")
	policyList := flag.String("policy", "", "comma-separated policy columns (rs,rrs,arr,sjf,cpl,ls,lsm); empty = the paper's four")
	affinity := flag.Int("affinity", -1, "ARR affinity window; 0 degenerates to RRS (-1 = default 256)")
	qbatch := flag.Int("qbatch", -1, "ARR quanta per warm resume; 0 and 1 both mean a single quantum (-1 = default 8)")
	adecay := flag.Int64("adecay", -1, "ARR affinity staleness bound in cycles; 0 = never stale (-1 = default)")
	aWindows := flag.String("awindows", "0,1,4,8,16,64", "affinity-grid windows, comma-separated")
	aBatches := flag.String("abatches", "1,4", "affinity-grid quantum batches, comma-separated")
	missrates := flag.Bool("missrates", false, "also print miss-rate tables")
	jsonOut := flag.Bool("json", false, "emit fig6/fig7/fig7xl as JSON instead of tables")
	par := flag.Int("par", 0, "worker pool size for figure/sweep cells (0 = GOMAXPROCS, 1 = sequential)")
	flat := flag.Bool("flat", false, "use the flat-stream engine instead of strided-RLE (for A/B timing; results are identical)")
	xlPoints := flag.String("xlpoints", "32:8,64:16,128:32", "fig7xl ladder as comma-separated cores:tasks pairs")
	xlSizes := flag.String("xlsizes", "4,8,16,32", "sweepxl cache sizes in KB, comma-separated")
	xlAssoc := flag.String("xlassoc", "1,2,4,8", "sweepxl associativities, comma-separated")
	xlMiss := flag.String("xlmiss", "25,75,150,300", "sweepxl miss penalties in cycles, comma-separated")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	cfg := locsched.DefaultConfig()
	if *scale > 0 {
		cfg.Workload.Scale = *scale
	}
	if *cores > 0 {
		cfg.Machine.Cores = *cores
	}
	if *quantum > 0 {
		cfg.Quantum = *quantum
	}
	if *par > 0 {
		cfg.Workers = *par
	}
	if *affinity >= 0 {
		cfg.Affinity = *affinity
	}
	if *qbatch >= 0 {
		cfg.QBatch = *qbatch
	}
	if *adecay >= 0 {
		cfg.AffinityDecay = *adecay
	}
	cfg.Machine.FlatStreams = *flat
	var policies []locsched.Policy
	if *extended {
		policies = locsched.ExtendedPolicies()
	}
	if *policyList != "" {
		policies = nil
		for _, part := range strings.Split(*policyList, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			p, err := locsched.ParsePolicy(part)
			if err != nil {
				fmt.Fprintln(os.Stderr, "locsched:", err)
				os.Exit(2)
			}
			policies = append(policies, p)
		}
	}

	cmd := flag.Arg(0)
	var run func(name string) error
	run = func(name string) error {
		switch name {
		case "table1":
			out, err := locsched.FormatTable1(cfg.Workload)
			if err != nil {
				return err
			}
			fmt.Println(out)
		case "table2":
			fmt.Println(locsched.FormatTable2(cfg))
		case "fig6":
			t, err := locsched.Figure6(cfg, policies)
			if err != nil {
				return err
			}
			if *jsonOut {
				return locsched.WriteTableJSON(os.Stdout, t)
			}
			fmt.Println(locsched.FormatTable(t))
			if *missrates {
				fmt.Println(locsched.FormatMissRates(t))
			}
		case "fig7":
			t, err := locsched.Figure7(cfg, policies)
			if err != nil {
				return err
			}
			if *jsonOut {
				return locsched.WriteTableJSON(os.Stdout, t)
			}
			fmt.Println(locsched.FormatTable(t))
			if *missrates {
				fmt.Println(locsched.FormatMissRates(t))
			}
		case "fig7xl":
			points, err := parseXLPoints(*xlPoints)
			if err != nil {
				return err
			}
			t, err := locsched.Figure7XL(cfg, points, policies)
			if err != nil {
				return err
			}
			if *jsonOut {
				return locsched.WriteTableJSON(os.Stdout, t)
			}
			fmt.Println(locsched.FormatTable(t))
			if *missrates {
				fmt.Println(locsched.FormatMissRates(t))
			}
		case "sweepxl":
			sizes, err := parseInt64List(*xlSizes)
			if err != nil {
				return fmt.Errorf("-xlsizes: %w", err)
			}
			for i := range sizes {
				sizes[i] *= 1024
			}
			assocs, err := parseIntList(*xlAssoc)
			if err != nil {
				return fmt.Errorf("-xlassoc: %w", err)
			}
			penalties, err := parseInt64List(*xlMiss)
			if err != nil {
				return fmt.Errorf("-xlmiss: %w", err)
			}
			s, err := locsched.SweepXL(cfg, sizes, assocs, penalties, policies)
			if err != nil {
				return err
			}
			fmt.Println(locsched.FormatSweep(s))
		case "affinity":
			windows, err := parseIntList(*aWindows)
			if err != nil {
				return fmt.Errorf("-awindows: %w", err)
			}
			batches, err := parseIntList(*aBatches)
			if err != nil {
				return fmt.Errorf("-abatches: %w", err)
			}
			s, err := locsched.AblationAffinity(cfg, windows, batches)
			if err != nil {
				return err
			}
			fmt.Println(locsched.FormatSweep(s))
		case "sweep":
			if err := sweeps(cfg); err != nil {
				return err
			}
		case "ablate":
			if err := ablations(cfg); err != nil {
				return err
			}
		case "all":
			for _, n := range []string{"table1", "table2", "fig6", "fig7", "sweep", "ablate"} {
				if err := run(n); err != nil {
					return err
				}
			}
		default:
			usage()
			os.Exit(2)
		}
		return nil
	}
	if err := run(cmd); err != nil {
		fmt.Fprintln(os.Stderr, "locsched:", err)
		os.Exit(1)
	}
}

func sweeps(cfg locsched.Config) error {
	pols := []locsched.Policy{locsched.RS, locsched.LS, locsched.LSM}
	cs, err := locsched.SweepCacheSize(cfg, []int64{4 << 10, 8 << 10, 16 << 10, 32 << 10}, pols)
	if err != nil {
		return err
	}
	fmt.Println(locsched.FormatSweep(cs))
	as, err := locsched.SweepAssociativity(cfg, []int{1, 2, 4, 8}, pols)
	if err != nil {
		return err
	}
	fmt.Println(locsched.FormatSweep(as))
	co, err := locsched.SweepCores(cfg, []int{2, 4, 8, 16}, pols)
	if err != nil {
		return err
	}
	fmt.Println(locsched.FormatSweep(co))
	qs, err := locsched.SweepQuantum(cfg, []int64{512, 2048, 8192, 32768})
	if err != nil {
		return err
	}
	fmt.Println(locsched.FormatSweep(qs))
	mp, err := locsched.SweepMissPenalty(cfg, []int64{25, 75, 150, 300}, pols)
	if err != nil {
		return err
	}
	fmt.Println(locsched.FormatSweep(mp))
	return nil
}

func ablations(cfg locsched.Config) error {
	sm, err := locsched.AblationStaticMode(cfg, 4)
	if err != nil {
		return err
	}
	fmt.Println(locsched.FormatSweep(sm))
	rp, err := locsched.AblationReplacement(cfg)
	if err != nil {
		return err
	}
	fmt.Println(locsched.FormatSweep(rp))
	ix, err := locsched.AblationIndexing(cfg)
	if err != nil {
		return err
	}
	fmt.Println(locsched.FormatSweep(ix))
	rows, err := locsched.GreedyQuality(cfg, cfg.Machine.Cores)
	if err != nil {
		return err
	}
	fmt.Println(locsched.FormatGreedyQuality(rows, cfg.Machine.Cores))
	return nil
}

// parseIntList parses a comma-separated list of integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseInt64List parses a comma-separated list of 64-bit integers.
func parseInt64List(s string) ([]int64, error) {
	vs, err := parseIntList(s)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out, nil
}

// parseXLPoints parses "cores:tasks,cores:tasks,..." ladders.
func parseXLPoints(s string) ([]locsched.XLPoint, error) {
	var out []locsched.XLPoint
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		cs, ts, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("-xlpoints: %q is not cores:tasks", part)
		}
		cores, err := strconv.Atoi(cs)
		if err != nil {
			return nil, fmt.Errorf("-xlpoints: bad core count %q", cs)
		}
		tasks, err := strconv.Atoi(ts)
		if err != nil {
			return nil, fmt.Errorf("-xlpoints: bad task count %q", ts)
		}
		out = append(out, locsched.XLPoint{Cores: cores, Tasks: tasks})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-xlpoints: empty ladder")
	}
	return out, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: locsched [flags] <command>

commands: table1 table2 fig6 fig7 sweep ablate all fig7xl sweepxl affinity

flags:
`)
	flag.PrintDefaults()
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlagValidation is the usage-error table: every nonsensical flag
// value must fail at parse time with exit code 2 and a message naming
// the flag, before any experiment starts.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of stderr
	}{
		{"negative scale", []string{"-scale", "-1", "table2"}, "-scale"},
		{"negative cores", []string{"-cores", "-8", "table2"}, "-cores"},
		{"negative quantum", []string{"-quantum", "-2048", "table2"}, "-quantum"},
		{"negative par", []string{"-par", "-2", "fig6"}, "-par"},
		{"negative affinity", []string{"-affinity", "-5", "fig6"}, "-affinity"},
		{"negative qbatch", []string{"-qbatch", "-3", "fig6"}, "-qbatch"},
		{"negative adecay", []string{"-adecay", "-100", "fig6"}, "-adecay"},
		{"zero-core xlpoint", []string{"-xlpoints", "0:4", "fig7xl"}, "cores and tasks must be positive"},
		{"zero-task xlpoint", []string{"-xlpoints", "64:0", "fig7xl"}, "cores and tasks must be positive"},
		{"malformed xlpoint", []string{"-xlpoints", "64", "fig7xl"}, "not cores:tasks"},
		{"empty xlpoints", []string{"-xlpoints", ",", "fig7xl"}, "empty ladder"},
		{"negative xlmax", []string{"-xlmax", "-512", "fig7xl"}, "-xlmax"},
		{"tiny xlmax", []string{"-xlmax", "16", "fig7xl"}, "at least 32"},
		{"zero xlsize", []string{"-xlsizes", "0,8", "sweepxl"}, "-xlsizes"},
		{"negative xlassoc", []string{"-xlassoc", "-2", "sweepxl"}, "-xlassoc"},
		{"zero xlmiss", []string{"-xlmiss", "0", "sweepxl"}, "-xlmiss"},
		{"negative awindow", []string{"-awindows", "-1,4", "affinity"}, "-awindows"},
		{"negative abatch", []string{"-abatches", "-4", "affinity"}, "-abatches"},
		{"unknown policy", []string{"-policy", "bogus", "fig6"}, "unknown policy"},
		{"negative hop", []string{"-hop", "-4", "fig6"}, "-hop"},
		{"bad speeds", []string{"-speeds", "1,zero", "fig6"}, "-speeds"},
		{"zero speed class", []string{"-speeds", "0,2", "fig6"}, "-speeds"},
		{"bad topo", []string{"-topo", "torus", "fig6"}, "-topo"},
		{"bad tspeeds", []string{"-tspeeds", "1;x", "topo"}, "-tspeeds"},
		{"empty tspeeds", []string{"-tspeeds", ";", "topo"}, "-tspeeds"},
		{"bad ttopos", []string{"-ttopos", "bus,hypercube", "topo"}, "-ttopos"},
		{"negative thops", []string{"-thops", "0,-16", "topo"}, "-thops"},
		{"unknown command", []string{"frobnicate"}, "usage:"},
		{"missing command", nil, "usage:"},
		{"two commands", []string{"fig6", "fig7"}, "usage:"},
		{"bench without target", []string{"bench"}, "-serve URL"},
		{"bench negative conc", []string{"bench", "-serve", "http://x", "-conc", "-1"}, "usage"},
		{"bench zero requests", []string{"bench", "-serve", "http://x", "-requests", "0"}, "usage"},
		{"bench stray arg", []string{"bench", "-serve", "http://x", "extra"}, "usage"},
		{"serve zero queue", []string{"serve", "-queue", "0"}, "queue depth"},
		{"serve zero workers", []string{"serve", "-workers", "0"}, "workers"},
		{"serve stray arg", []string{"serve", "extra"}, "unexpected arguments"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(c.args, &stdout, &stderr)
			if code != 2 {
				t.Fatalf("run(%q) = %d, want usage error (2); stderr: %s", c.args, code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.wantErr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), c.wantErr)
			}
			if stdout.Len() != 0 {
				t.Errorf("usage error still produced output: %q", stdout.String())
			}
		})
	}
}

// TestFlagValidationAccepts pins the valid edges of the same flags: the
// -1 "use default" sentinels and zero "unset" values must not trip the
// validators (table2 is the cheapest command that exercises the full
// config pipeline).
func TestFlagValidationAccepts(t *testing.T) {
	cases := [][]string{
		{"table2"},
		{"-scale", "0", "-cores", "0", "-quantum", "0", "-par", "0", "table2"},
		{"-affinity", "-1", "-qbatch", "-1", "-adecay", "-1", "table2"},
		{"-affinity", "0", "-qbatch", "0", "-adecay", "0", "table2"},
		{"-cores", "512", "-xlmax", "0", "table2"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Errorf("run(%q) = %d, want 0; stderr: %s", args, code, stderr.String())
		}
	}
}

// TestXLMaxLadder: -xlmax builds the doubling ladder (checked through
// table2 so no simulation runs; the ladder itself is validated, and the
// fig7xl path is covered by the experiment package's tests).
func TestXLMaxLadder(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-xlmax", "512", "table2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-xlmax 512 rejected: %s", stderr.String())
	}
}

// TestTopoCommand: the machine-model ablation end to end on the
// smallest possible grid (one heterogeneous mesh cell beyond the
// baseline) at minimum scale, so the command stays cheap in CI.
func TestTopoCommand(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-scale", "1", "-tspeeds", "1,2", "-ttopos", "mesh", "-thops", "8", "topo"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("topo failed (%d): %s", code, stderr.String())
	}
	for _, want := range []string{"uniform/bus", "1,2/mesh/h8", "RRS=", "LSM="} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("topo output missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestTable1Output: a real command end to end through the testable entry
// point.
func TestTable1Output(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"table1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("table1 failed (%d): %s", code, stderr.String())
	}
	for _, want := range []string{"Med-Im04", "MxM", "Radar", "Shape", "Track", "Usonic"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fastOpts returns options tuned for tests: tiny backoff so retry paths
// run in microseconds, short timeouts, real filesystem unless overridden.
func fastOpts() Options {
	return Options{
		RetryBase:       10 * time.Microsecond,
		OpTimeout:       2 * time.Second,
		BreakerCooldown: 20 * time.Millisecond,
	}
}

// mustOpen opens a store or fails the test.
func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// body returns a deterministic test body for key i.
func body(i int) []byte {
	return []byte(fmt.Sprintf("body-%04d:%s", i, bytes.Repeat([]byte{byte(i)}, 32)))
}

// TestPutGetRoundtrip: stored bytes come back verified and identical;
// misses report cleanly.
func TestPutGetRoundtrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), fastOpts())
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), body(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		got, ok := s.Get(fmt.Sprintf("key-%d", i))
		if !ok || !bytes.Equal(got, body(i)) {
			t.Fatalf("Get %d: ok=%v body=%q want %q", i, ok, got, body(i))
		}
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("absent key reported a hit")
	}
	st := s.Stats()
	if st.Entries != 20 || st.Writes != 20 || st.Hits != 20 || st.Misses != 1 {
		t.Fatalf("stats %+v: want 20 entries/writes/hits, 1 miss", st)
	}
	if st.Breaker != BreakerClosed {
		t.Fatalf("breaker %q, want closed", st.Breaker)
	}
}

// TestReopenWarmStart: a fresh Open over the same directory recovers
// every entry byte-identically.
func TestReopenWarmStart(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, fastOpts())
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), body(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, fastOpts())
	if got := s2.Stats().Recovered; got != n {
		t.Fatalf("recovered %d entries, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		got, ok := s2.Get(fmt.Sprintf("key-%d", i))
		if !ok || !bytes.Equal(got, body(i)) {
			t.Fatalf("after reopen, Get %d: ok=%v body=%q", i, ok, got)
		}
	}
	// The reopened store keeps accepting appends, and a third open sees
	// both generations.
	if err := s2.Put("post-restart", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, fastOpts())
	if got, ok := s3.Get("post-restart"); !ok || string(got) != "fresh" {
		t.Fatalf("third-generation Get: ok=%v body=%q", ok, got)
	}
}

// TestDuplicatePutIsNoop: re-putting an indexed key writes nothing.
func TestDuplicatePutIsNoop(t *testing.T) {
	s := mustOpen(t, t.TempDir(), fastOpts())
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v: want exactly 1 write and 1 entry", st)
	}
}

// TestSegmentRotationAndEviction: small segments rotate; the byte budget
// evicts the oldest segments and their entries while recent entries
// survive.
func TestSegmentRotationAndEviction(t *testing.T) {
	opts := fastOpts()
	opts.MaxSegmentBytes = 256
	opts.MaxBytes = 1024
	s := mustOpen(t, t.TempDir(), opts)
	const n = 40
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), body(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.EvictedSegments == 0 {
		t.Fatalf("no segments evicted under a %d-byte budget: %+v", opts.MaxBytes, st)
	}
	if st.DiskBytes > opts.MaxBytes {
		t.Fatalf("disk bytes %d exceed budget %d", st.DiskBytes, opts.MaxBytes)
	}
	// The newest entry always survives; evicted older entries miss.
	if _, ok := s.Get(fmt.Sprintf("key-%d", n-1)); !ok {
		t.Fatal("newest entry was evicted")
	}
	if _, ok := s.Get("key-0"); ok {
		t.Fatal("oldest entry survived eviction against the budget")
	}
	// Everything still readable is still exact.
	for i := 0; i < n; i++ {
		if got, ok := s.Get(fmt.Sprintf("key-%d", i)); ok && !bytes.Equal(got, body(i)) {
			t.Fatalf("entry %d corrupt after eviction: %q", i, got)
		}
	}
}

// TestReadTimeFlipQuarantines: a byte flipped on disk after indexing is
// caught by the read-time CRC, never served, quarantined, and rewritable.
func TestReadTimeFlipQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, fastOpts())
	if err := s.Put("victim", []byte("precious-bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip one body byte on disk behind the store's back.
	path := s.segPath(s.activeID)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if got, ok := s.Get("victim"); ok {
		t.Fatalf("corrupt entry served: %q", got)
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v: want 1 quarantined, 0 entries", st)
	}
	// Recompute path: rewrite and read back clean.
	if err := s.Put("victim", []byte("precious-bytes")); err != nil {
		t.Fatalf("rewrite after quarantine: %v", err)
	}
	if got, ok := s.Get("victim"); !ok || string(got) != "precious-bytes" {
		t.Fatalf("rewritten entry: ok=%v body=%q", ok, got)
	}
}

// TestClosedStore: operations on a closed store fail cleanly.
func TestClosedStore(t *testing.T) {
	s := mustOpen(t, t.TempDir(), fastOpts())
	s.Put("k", []byte("v"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("closed store served a read")
	}
	if err := s.Put("k2", []byte("v")); err != ErrClosed {
		t.Fatalf("Put on closed store: %v, want ErrClosed", err)
	}
}

// TestRecordLimits: oversized keys are rejected before touching disk.
func TestRecordLimits(t *testing.T) {
	s := mustOpen(t, t.TempDir(), fastOpts())
	if err := s.Put("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(string(bytes.Repeat([]byte("k"), maxKeyLen+1)), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if st := s.Stats(); st.Writes != 0 {
		t.Fatalf("rejected puts wrote: %+v", st)
	}
}

// TestConcurrentPutGet: racing readers and writers over overlapping keys
// stay consistent (run under -race in CI).
func TestConcurrentPutGet(t *testing.T) {
	opts := fastOpts()
	opts.MaxSegmentBytes = 4 << 10 // force rotations under load
	s := mustOpen(t, t.TempDir(), opts)
	const (
		writers = 4
		readers = 4
		keys    = 64
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("key-%d", (i+w*17)%keys)
				if err := s.Put(k, body((i+w*17)%keys)); err != nil {
					t.Errorf("Put %s: %v", k, err)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < keys*2; i++ {
				k := (i + r*31) % keys
				if got, ok := s.Get(fmt.Sprintf("key-%d", k)); ok && !bytes.Equal(got, body(k)) {
					t.Errorf("Get key-%d returned wrong bytes %q", k, got)
				}
			}
		}(r)
	}
	wg.Wait()
	// Every key must now be present and exact.
	for i := 0; i < keys; i++ {
		if got, ok := s.Get(fmt.Sprintf("key-%d", i)); !ok || !bytes.Equal(got, body(i)) {
			t.Fatalf("final Get key-%d: ok=%v", i, ok)
		}
	}
}

// TestSegmentNameParsing: directory scan ignores foreign files.
func TestSegmentNameParsing(t *testing.T) {
	dir := t.TempDir()
	for _, junk := range []string{"README", "seg-.log", "seg-abc.log", "seg-00000001.tmp", "seg-00000000.log"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := mustOpen(t, dir, fastOpts())
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("store over junk dir: ok=%v body=%q", ok, got)
	}
}

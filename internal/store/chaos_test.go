package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// The chaos suite: every failure mode the store must survive — a crash
// tearing an append mid-record (SIGKILL/power loss), prefix truncation,
// flipped bytes, a full disk, and a disk slower than the per-op timeout.
// The recovery contract under test is exactness: every byte the store
// serves after recovery is byte-identical to what was originally put
// (the serving daemon's determinism contract then extends this to "equal
// to a cold recompute").

// seedStore writes n deterministic entries through a store over fs and
// closes it, returning the expected key→body map.
func seedStore(t *testing.T, dir string, opts Options, n int) map[string][]byte {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		want[k] = body(i)
		if err := s.Put(k, want[k]); err != nil {
			t.Fatalf("seed Put %s: %v", k, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// assertExact opens dir fresh and requires every Get to be either a
// clean miss or byte-identical to want — never corrupt bytes.
func assertExact(t *testing.T, dir string, want map[string][]byte) (served int) {
	t.Helper()
	s := mustOpen(t, dir, fastOpts())
	for k, w := range want {
		got, ok := s.Get(k)
		if !ok {
			continue // quarantined/lost: the caller recomputes — correct
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("served corruption for %s: got %q want %q", k, got, w)
		}
		served++
	}
	return served
}

// TestCrashMidWriteRecovers: the filesystem dies partway through an
// append — the write budget lands a torn prefix of a record, as SIGKILL
// or power loss would — then the process "restarts" (fresh Open over the
// real fs). All fully acknowledged entries must recover byte-identically
// and the store must accept new writes.
func TestCrashMidWriteRecovers(t *testing.T) {
	for _, tornBytes := range []int64{1, 7, headerSize - 1, headerSize + 3, headerSize + 20} {
		t.Run(fmt.Sprintf("torn=%d", tornBytes), func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(OSFS{})
			opts := fastOpts()
			opts.FS = ffs
			opts.MaxRetries = 1
			s, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[string][]byte)
			const n = 10
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("key-%04d", i)
				want[k] = body(i)
				if err := s.Put(k, want[k]); err != nil {
					t.Fatal(err)
				}
			}
			// The "crash": the next record tears tornBytes in. Rotation
			// retries also fail (every byte is spent), so the Put fails.
			ffs.SetWriteBudget(tornBytes)
			if err := s.Put("torn-victim", []byte("never-acknowledged")); err == nil {
				t.Fatal("torn append reported success")
			}
			// No clean Close: a crash doesn't get one.

			served := assertExact(t, dir, want)
			if served != n {
				t.Fatalf("recovered %d/%d fully-written entries", served, n)
			}
			s2 := mustOpen(t, dir, fastOpts())
			if _, ok := s2.Get("torn-victim"); ok {
				t.Fatal("unacknowledged torn record was served")
			}
			if err := s2.Put("after-restart", []byte("alive")); err != nil {
				t.Fatalf("append after crash recovery: %v", err)
			}
			if got, ok := s2.Get("after-restart"); !ok || string(got) != "alive" {
				t.Fatalf("post-restart entry: ok=%v body=%q", ok, got)
			}
		})
	}
}

// TestENOSPCTripsBreakerThenRecovers: a full disk fails every append;
// after the breaker threshold the store degrades to memory-only mode
// (writes drop instantly, no disk I/O) and — once space returns — a
// half-open probe restores normal service.
func TestENOSPCTripsBreakerThenRecovers(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	opts := fastOpts()
	opts.FS = ffs
	opts.MaxRetries = 1
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = 10 * time.Millisecond
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("pre", []byte("pre-enospc")); err != nil {
		t.Fatal(err)
	}

	ffs.SetFailure(func(op Op, path string) error {
		if op == OpWrite || op == OpOpen {
			return fmt.Errorf("injected: %w", syscall.ENOSPC)
		}
		return nil
	})
	// Each failed Put (post-retry) feeds the breaker; threshold 2 trips it.
	for i := 0; i < 2; i++ {
		if err := s.Put(fmt.Sprintf("full-%d", i), []byte("x")); err == nil {
			t.Fatal("Put succeeded on a full disk")
		}
	}
	st := s.Stats()
	if st.Breaker != BreakerOpen || st.BreakerTrips != 1 {
		t.Fatalf("breaker %q trips %d, want open after threshold", st.Breaker, st.BreakerTrips)
	}
	// Degraded mode: writes drop without touching the disk, reads miss.
	opens := ffs.Counts()[OpOpen]
	if err := s.Put("dropped", []byte("x")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Put error = %v, want ErrDegraded", err)
	}
	if _, ok := s.Get("pre"); ok {
		t.Fatal("degraded store read the disk")
	}
	if got := ffs.Counts()[OpOpen]; got != opens {
		t.Fatalf("degraded mode touched the disk (%d → %d opens)", opens, got)
	}
	if s.Stats().DroppedWrites == 0 {
		t.Fatal("dropped writes not counted")
	}

	// Space returns; after the cooldown the next op probes half-open and
	// closes the breaker.
	ffs.SetFailure(nil)
	time.Sleep(opts.BreakerCooldown + 5*time.Millisecond)
	if err := s.Put("healed", []byte("back")); err != nil {
		t.Fatalf("probe Put after heal: %v", err)
	}
	if st := s.Stats(); st.Breaker != BreakerClosed {
		t.Fatalf("breaker %q after successful probe, want closed", st.Breaker)
	}
	if got, ok := s.Get("healed"); !ok || string(got) != "back" {
		t.Fatalf("post-heal entry: ok=%v body=%q", ok, got)
	}
	if got, ok := s.Get("pre"); !ok || string(got) != "pre-enospc" {
		t.Fatalf("pre-outage entry after heal: ok=%v body=%q", ok, got)
	}
}

// TestSlowDiskTimesOutAndDegrades: a disk slower than the per-op timeout
// must not stall callers; attempts time out, retries back off, and
// persistent slowness trips the breaker into memory-only mode.
func TestSlowDiskTimesOutAndDegrades(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	opts := fastOpts()
	opts.FS = ffs
	opts.MaxRetries = 1
	opts.OpTimeout = 5 * time.Millisecond
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = time.Minute // stays open for the test's duration
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ffs.SetDelay(60 * time.Millisecond)
	start := time.Now()
	for i := 0; i < 2; i++ {
		if err := s.Put(fmt.Sprintf("slow-%d", i), []byte("x")); err == nil {
			t.Fatal("Put succeeded against a hung disk")
		}
	}
	// 2 puts × 2 attempts ≈ 4 timeouts ≈ 20ms of waiting, never the full
	// 60ms-per-op disk stall per attempt chain.
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("slow disk stalled the caller for %v", elapsed)
	}
	st := s.Stats()
	if st.OpTimeouts == 0 {
		t.Fatal("no op timeouts recorded")
	}
	if st.Breaker != BreakerOpen {
		t.Fatalf("breaker %q, want open after persistent slowness", st.Breaker)
	}
	// Degraded ops return instantly.
	start = time.Now()
	s.Put("fast-fail", []byte("x"))
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("degraded Put took %v, want instant drop", elapsed)
	}
}

// TestReadRetryHeals: a transient read failure is retried with backoff
// and served on a later attempt — no quarantine, no breaker trip.
func TestReadRetryHeals(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OSFS{})
	opts := fastOpts()
	opts.FS = ffs
	opts.MaxRetries = 2
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("flaky-but-fine")); err != nil {
		t.Fatal(err)
	}

	var failures int
	ffs.SetFailure(func(op Op, path string) error {
		if op == OpRead && failures < 2 {
			failures++
			return fmt.Errorf("%w: transient read", ErrInjected)
		}
		return nil
	})
	got, ok := s.Get("k")
	if !ok || string(got) != "flaky-but-fine" {
		t.Fatalf("retried read: ok=%v body=%q", ok, got)
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	if st.Quarantined != 0 || st.Breaker != BreakerClosed {
		t.Fatalf("transient failure quarantined or tripped: %+v", st)
	}
}

// TestUnreadableEntryQuarantined: when retries cannot save a read (the
// segment file is gone), the entry is quarantined so the recompute path
// rewrites it instead of re-failing on every request.
func TestUnreadableEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	opts := fastOpts()
	opts.MaxRetries = 1
	s := mustOpen(t, dir, opts)
	if err := s.Put("gone", []byte("about-to-vanish")); err != nil {
		t.Fatal(err)
	}
	// Destroy the segment behind the store's back (opts keep it active,
	// but reads open fresh handles and will fail).
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("gone"); ok {
		t.Fatal("read from a deleted segment succeeded")
	}
	st := s.Stats()
	if st.ReadErrors == 0 || st.Quarantined != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v: want read error + quarantine + empty index", st)
	}
	// Second Get is a plain miss — no disk I/O retries on a dead entry.
	if _, ok := s.Get("gone"); ok {
		t.Fatal("quarantined entry resurrected")
	}
}

// TestBreakerHalfOpenFailureReopens: a failed half-open probe reopens
// the breaker immediately.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := newBreaker(1, 5*time.Millisecond, RealClock{})
	b.failure()
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state %q, want open", st)
	}
	if b.allow() {
		t.Fatal("open breaker allowed an op before cooldown")
	}
	time.Sleep(7 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cooldown elapsed but probe not allowed")
	}
	if b.allow() {
		t.Fatal("second op allowed while probe in flight")
	}
	b.failure()
	if st, trips := b.snapshot(); st != BreakerOpen || trips != 2 {
		t.Fatalf("state %q trips %d after failed probe, want open/2", st, trips)
	}
	time.Sleep(7 * time.Millisecond)
	if !b.allow() {
		t.Fatal("second probe not allowed")
	}
	b.success()
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state %q after successful probe, want closed", st)
	}
}

package store

import (
	"sync"
	"time"
)

// Breaker state names as reported by Stats.Breaker and /statsz.
const (
	// BreakerClosed: the store is healthy; all operations proceed.
	BreakerClosed = "closed"
	// BreakerOpen: persistent I/O failure tripped the breaker; every
	// operation is skipped (reads miss, writes drop) until the cooldown
	// elapses. The daemon keeps serving from memory and recompute.
	BreakerOpen = "open"
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe operation
	// is allowed through. Success closes the breaker, failure reopens it.
	BreakerHalfOpen = "half-open"
)

// breaker is the store's circuit breaker: consecutive post-retry I/O
// failures open it, which flips the store into a degraded memory-only
// mode (every Get misses, every Put drops) instead of stalling each
// request on a dead disk. After the cooldown a single probe operation is
// let through half-open; its outcome decides between closing and
// reopening.
type breaker struct {
	threshold int
	cooldown  time.Duration
	clock     Clock

	mu          sync.Mutex
	state       string
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       int64
}

// newBreaker builds a closed breaker.
func newBreaker(threshold int, cooldown time.Duration, clock Clock) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, clock: clock, state: BreakerClosed}
}

// allow reports whether an operation may touch the disk now. In the
// open state it transitions to half-open once the cooldown has elapsed,
// admitting the caller as the probe; in half-open only the single probe
// is admitted.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed operation: the failure streak resets and a
// half-open probe closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.probing = false
	b.state = BreakerClosed
}

// failure records a post-retry operation failure: a failed half-open
// probe reopens immediately, and a streak reaching the threshold trips
// the breaker open.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	wasProbe := b.state == BreakerHalfOpen
	b.probing = false
	if wasProbe || (b.state == BreakerClosed && b.consecutive >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = b.clock.Now()
		b.trips++
	}
}

// snapshot returns the current state name and trip count.
func (b *breaker) snapshot() (state string, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}

// Package store is locsched's crash-safe persistent result store: a
// disk-backed, content-keyed byte store that lets the serving daemon
// warm-start after a restart or crash instead of recomputing its entire
// content-addressed result set.
//
// Layout: a store directory holds append-only segment files
// (seg-00000001.log, seg-00000002.log, ...). Each record is a fixed
// header — magic, key length, body length, a CRC over the header itself,
// and a CRC over key‖body — followed by the key and body bytes. The
// index (key → segment/offset) lives in memory and is rebuilt at Open by
// scanning the segments, which makes recovery correct by construction:
// only records that were fully written and still checksum clean are
// indexed, a torn tail is truncated, and a record with a payload CRC
// mismatch (bit flip) is skipped and counted as quarantined. Every read
// re-verifies both CRCs, so a record that rots after indexing is
// quarantined at read time and reported as a miss — corrupted bytes are
// never served; the caller recomputes and rewrites.
//
// Robustness: all I/O goes through an injectable filesystem/clock seam
// (FS, Clock; FaultFS is the chaos-test implementation) with bounded
// retries, exponential backoff, and per-operation timeouts. A failed or
// timed-out append abandons the possibly-torn segment tail and rotates
// to a fresh segment before retrying, so stragglers can never land
// garbage between indexed records. Persistent post-retry failure trips a
// circuit breaker: the store degrades to memory-only behaviour (reads
// miss, writes drop) instead of stalling requests, and probes the disk
// again half-open after a cooldown.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locsched/internal/obs"
)

// Record format constants.
const (
	// recordMagic begins every record ("LSR1").
	recordMagic = 0x4c535231
	// headerSize is the fixed record header length: magic, key length,
	// body length, header CRC, payload CRC — five uint32s.
	headerSize = 20
	// maxKeyLen bounds record keys (sanity bound for scan validation).
	maxKeyLen = 1 << 16
	// maxBodyLen bounds record bodies (sanity bound for scan validation).
	maxBodyLen = 1 << 30
)

// crcTable is the Castagnoli table used for both record CRCs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrDegraded is returned by Put while the circuit breaker holds the
// store in memory-only mode; the write is dropped, not queued.
var ErrDegraded = errors.New("store: degraded (circuit breaker open)")

// ErrTimeout is the per-operation timeout failure; the abandoned
// operation may still complete in the background, which is why the
// append path rotates segments instead of retrying in place.
var ErrTimeout = errors.New("store: operation timed out")

// errTooLarge rejects keys or bodies beyond the format's sanity bounds.
var errTooLarge = errors.New("store: key or body exceeds record limits")

// Options tunes a Store; the zero value selects production defaults
// (real filesystem and clock, 64 MiB segments, 256 MiB total budget,
// 2 retries at 10 ms exponential backoff, 2 s per-op timeout, breaker
// tripping after 4 consecutive failures with a 5 s cooldown, synced
// appends).
type Options struct {
	// FS is the filesystem seam (nil = OSFS).
	FS FS
	// Clock is the time seam for backoff and timeouts (nil = RealClock).
	Clock Clock
	// MaxSegmentBytes rotates the active segment when it would grow past
	// this size (<= 0 = 64 MiB).
	MaxSegmentBytes int64
	// MaxBytes bounds total on-disk bytes; oldest whole segments are
	// evicted past it (<= 0 = 256 MiB).
	MaxBytes int64
	// MaxRetries is the number of re-attempts after a failed I/O
	// operation (<= 0 = 2).
	MaxRetries int
	// RetryBase is the first backoff delay, doubled per attempt
	// (<= 0 = 10 ms).
	RetryBase time.Duration
	// OpTimeout bounds each disk operation attempt; 0 = 2 s, negative
	// disables the timeout.
	OpTimeout time.Duration
	// BreakerThreshold is the consecutive post-retry failure count that
	// trips the breaker (<= 0 = 4).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before probing
	// half-open (<= 0 = 5 s).
	BreakerCooldown time.Duration
	// NoSync skips the fsync after each append (faster, but a crash can
	// lose recently acknowledged writes; recovery stays exact either way).
	NoSync bool
	// Metrics, when non-nil, registers the store's observability series
	// (op latency histograms, breaker state gauge, quarantine and
	// lost-bytes counters) on the given registry under the
	// locsched_store_* names.
	Metrics *obs.Registry
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.Clock == nil {
		o.Clock = RealClock{}
	}
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 2
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * time.Millisecond
	}
	if o.OpTimeout == 0 {
		o.OpTimeout = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 4
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	return o
}

// entryRef locates one indexed record on disk, carrying the entry's
// measured reconstruction cost (compute nanoseconds) for cost-aware
// eviction. Cost is metadata, not part of the durable record format: it
// is supplied by PutCost, persisted advisorily in the cache manifest,
// and defaults to zero for entries recovered without one.
type entryRef struct {
	seg     int
	off     int64
	keyLen  int
	bodyLen int
	cost    int64
}

// counts holds the store's atomic operation counters.
type counts struct {
	hits          atomic.Int64
	misses        atomic.Int64
	writes        atomic.Int64
	writeErrors   atomic.Int64
	droppedWrites atomic.Int64
	readErrors    atomic.Int64
	quarantined   atomic.Int64
	retries       atomic.Int64
	opTimeouts    atomic.Int64
	evicted       atomic.Int64
}

// Stats is a point-in-time snapshot of a store's gauges and counters,
// served by locschedd's /statsz.
type Stats struct {
	// Entries is the current indexed entry count.
	Entries int `json:"entries"`
	// Segments is the current segment file count.
	Segments int `json:"segments"`
	// DiskBytes is the total indexed segment byte size.
	DiskBytes int64 `json:"disk_bytes"`
	// Recovered is the entry count rebuilt from disk at Open.
	Recovered int `json:"recovered_entries"`
	// LostBytes counts segment tail bytes discarded at Open (torn writes
	// or unscannable regions after a corrupted header).
	LostBytes int64 `json:"lost_bytes"`
	// Hits counts reads served with verified bytes.
	Hits int64 `json:"hits"`
	// Misses counts reads with no (servable) entry.
	Misses int64 `json:"misses"`
	// Writes counts successfully appended records.
	Writes int64 `json:"writes"`
	// WriteErrors counts appends that failed after all retries.
	WriteErrors int64 `json:"write_errors"`
	// DroppedWrites counts writes skipped while the breaker was open.
	DroppedWrites int64 `json:"dropped_writes"`
	// ReadErrors counts reads that failed after all retries.
	ReadErrors int64 `json:"read_errors"`
	// Quarantined counts entries removed because their bytes were
	// corrupt or unreadable (at Open scan or at read time).
	Quarantined int64 `json:"quarantined"`
	// Retries counts re-attempted I/O operations.
	Retries int64 `json:"retries"`
	// OpTimeouts counts operation attempts abandoned at the per-op
	// timeout.
	OpTimeouts int64 `json:"op_timeouts"`
	// EvictedSegments counts whole segments evicted by the byte budget.
	EvictedSegments int64 `json:"evicted_segments"`
	// Breaker is the circuit breaker state: closed, open, or half-open.
	Breaker string `json:"breaker"`
	// BreakerTrips counts closed/half-open → open transitions.
	BreakerTrips int64 `json:"breaker_trips"`
}

// Store is the disk-backed content-keyed result store. A Store assumes
// a single writing process per directory (locschedd opens one store);
// within the process all methods are safe for concurrent use.
type Store struct {
	dir   string
	opts  Options
	fs    FS
	clock Clock
	brk   *breaker

	mu       sync.Mutex // guards index, segIDs, segBytes, segCost, total
	index    map[string]entryRef
	segIDs   []int // ascending; last is the active segment
	segBytes map[int]int64
	segCost  map[int]int64 // summed entry costs per segment (eviction ranking)
	total    int64

	wmu        sync.Mutex // serializes the append path
	active     File       // nil: next Put rotates first
	activeID   int
	activeSize int64

	closed    atomic.Bool
	recovered int
	lostBytes int64
	c         counts

	// getHist/putHist time Get/Put operations when Options.Metrics was
	// set; nil otherwise (observeOp is nil-safe).
	getHist *obs.Histogram
	putHist *obs.Histogram
}

// Open opens (or creates) the store rooted at dir, rebuilding the index
// by scanning every segment: fully written, checksum-clean records are
// indexed (later duplicates of a key win), a torn tail is truncated off
// the active segment, and corrupt records are skipped and counted as
// quarantined. An Open error means the directory is unusable; callers
// should degrade to memory-only operation.
func Open(dir string, opts Options) (*Store, error) {
	o := opts.withDefaults()
	s := &Store{
		dir:      dir,
		opts:     o,
		fs:       o.FS,
		clock:    o.Clock,
		brk:      newBreaker(o.BreakerThreshold, o.BreakerCooldown, o.Clock),
		index:    make(map[string]entryRef),
		segBytes: make(map[int]int64),
		segCost:  make(map[int]int64),
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	ents, err := s.fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	var ids []int
	for _, e := range ents {
		if id, ok := parseSegName(e.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for i, id := range ids {
		validEnd, size, err := s.scanSegment(id)
		if err != nil {
			return nil, fmt.Errorf("store: recovering segment %d: %w", id, err)
		}
		s.segIDs = append(s.segIDs, id)
		last := i == len(ids)-1
		if last {
			// The active segment continues from the last valid record;
			// the torn tail (if any) is truncated so new appends extend
			// a clean prefix.
			f, err := s.fs.OpenFile(s.segPath(id), os.O_RDWR|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("store: reopening active segment %d: %w", id, err)
			}
			if validEnd < size {
				if err := f.Truncate(validEnd); err != nil {
					f.Close()
					return nil, fmt.Errorf("store: truncating torn tail of segment %d: %w", id, err)
				}
			}
			s.active, s.activeID, s.activeSize = f, id, validEnd
			s.segBytes[id] = validEnd
			s.total += validEnd
		} else {
			// Older segments keep any dead tail bytes on disk; only the
			// scanned (indexed) prefix counts toward the budget (the
			// lost tail was already counted by scanSegment).
			s.segBytes[id] = validEnd
			s.total += validEnd
		}
	}
	if len(ids) == 0 {
		// Create the first segment eagerly so an unwritable directory
		// fails Open instead of the first Put.
		if err := s.rotate(); err != nil {
			return nil, fmt.Errorf("store: creating first segment: %w", err)
		}
	}
	s.loadManifestCosts()
	s.recovered = len(s.index)
	s.registerMetrics(o.Metrics)
	return s, nil
}

// registerMetrics publishes the store's observability series on r (nil
// disables instrumentation entirely — the standalone/test path). The
// func-backed series read the same atomics /statsz snapshots, so the two
// surfaces can never disagree.
func (s *Store) registerMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	s.getHist = r.Histogram("locsched_store_get_seconds",
		"Persistent-store read latency (verified hit or miss).", nil)
	s.putHist = r.Histogram("locsched_store_put_seconds",
		"Persistent-store append latency (durable write, all retries).", nil)
	r.GaugeFunc("locsched_store_breaker_state",
		"Circuit breaker state: 0 closed, 1 half-open, 2 open.", func() float64 {
			state, _ := s.brk.snapshot()
			switch state {
			case BreakerHalfOpen:
				return 1
			case BreakerOpen:
				return 2
			}
			return 0
		})
	r.CounterFunc("locsched_store_breaker_trips_total",
		"Circuit breaker transitions into the open state.", func() float64 {
			_, trips := s.brk.snapshot()
			return float64(trips)
		})
	r.CounterFunc("locsched_store_quarantined_total",
		"Entries dropped because their bytes were corrupt or unreadable.",
		func() float64 { return float64(s.c.quarantined.Load()) })
	r.CounterFunc("locsched_store_lost_bytes_total",
		"Segment tail bytes discarded during crash recovery at Open.",
		func() float64 { return float64(s.lostBytes) })
	r.CounterFunc("locsched_store_hits_total",
		"Reads served with verified bytes.",
		func() float64 { return float64(s.c.hits.Load()) })
	r.CounterFunc("locsched_store_misses_total",
		"Reads with no servable entry.",
		func() float64 { return float64(s.c.misses.Load()) })
	r.CounterFunc("locsched_store_writes_total",
		"Successfully appended records.",
		func() float64 { return float64(s.c.writes.Load()) })
	r.GaugeFunc("locsched_store_entries",
		"Currently indexed entry count.",
		func() float64 { return float64(s.Len()) })
	r.GaugeFunc("locsched_store_disk_bytes",
		"Total indexed segment bytes on disk.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.total)
		})
}

// observeOp records one operation latency on h; nil h (metrics disabled)
// is a no-op.
func observeOp(h *obs.Histogram, start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// loadManifestCosts seeds recovered entries with the reconstruction
// costs persisted in the cache manifest, best-effort: a missing,
// truncated, or corrupt manifest only costs eviction precision (costless
// entries rank cheapest and are evicted first), never correctness — the
// segments themselves stay the single source of truth for bytes.
func (s *Store) loadManifestCosts() {
	entries, err := LoadManifest(s.fs, s.ManifestPath())
	if err != nil {
		return
	}
	for _, e := range entries {
		ref, ok := s.index[e.Key]
		if !ok || int64(ref.bodyLen) != e.Size || e.CostNanos <= 0 {
			continue
		}
		ref.cost = e.CostNanos
		s.index[e.Key] = ref
		s.segCost[ref.seg] += e.CostNanos
	}
}

// segPath returns the path of segment id.
func (s *Store) segPath(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d.log", id))
}

// parseSegName extracts a segment id from a file name.
func parseSegName(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".log")
	if !ok {
		return 0, false
	}
	id, err := strconv.Atoi(rest)
	if err != nil || id <= 0 {
		return 0, false
	}
	return id, true
}

// scanSegment rebuilds index entries from one segment, returning the
// end offset of the last valid record and the file's total size. The
// scan stops at the first invalid header (a torn append, or corruption
// that makes record lengths untrustworthy); a record whose header is
// intact but whose payload CRC fails is skipped precisely and counted
// as quarantined.
func (s *Store) scanSegment(id int) (validEnd, size int64, err error) {
	f, err := s.fs.OpenFile(s.segPath(id), os.O_RDONLY, 0)
	if err != nil {
		return 0, 0, err
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return 0, 0, err
	}
	size = int64(len(data))
	off := 0
	for off+headerSize <= len(data) {
		keyLen, bodyLen, ok := parseHeader(data[off:])
		if !ok {
			break
		}
		end := off + headerSize + keyLen + bodyLen
		if end > len(data) {
			break
		}
		rec := data[off:end]
		if crc32.Checksum(rec[headerSize:], crcTable) != binary.LittleEndian.Uint32(rec[16:20]) {
			s.c.quarantined.Add(1)
			off = end
			continue
		}
		key := string(rec[headerSize : headerSize+keyLen])
		s.index[key] = entryRef{seg: id, off: int64(off), keyLen: keyLen, bodyLen: bodyLen}
		off = end
	}
	s.lostBytes += size - int64(off)
	return int64(off), size, nil
}

// parseHeader validates a record header in place, returning the key and
// body lengths. ok is false when the magic, the header CRC, or the
// length sanity bounds fail — i.e. when the lengths cannot be trusted.
func parseHeader(b []byte) (keyLen, bodyLen int, ok bool) {
	if binary.LittleEndian.Uint32(b[0:4]) != recordMagic {
		return 0, 0, false
	}
	if crc32.Checksum(b[0:12], crcTable) != binary.LittleEndian.Uint32(b[12:16]) {
		return 0, 0, false
	}
	kl := int(binary.LittleEndian.Uint32(b[4:8]))
	bl := int(binary.LittleEndian.Uint32(b[8:12]))
	if kl <= 0 || kl > maxKeyLen || bl < 0 || bl > maxBodyLen {
		return 0, 0, false
	}
	return kl, bl, true
}

// encodeRecord renders one record: header (magic, lengths, header CRC,
// payload CRC) then key then body.
func encodeRecord(key string, body []byte) []byte {
	rec := make([]byte, headerSize+len(key)+len(body))
	binary.LittleEndian.PutUint32(rec[0:4], recordMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[12:16], crc32.Checksum(rec[0:12], crcTable))
	copy(rec[headerSize:], key)
	copy(rec[headerSize+len(key):], body)
	binary.LittleEndian.PutUint32(rec[16:20], crc32.Checksum(rec[headerSize:], crcTable))
	return rec
}

// timed runs one operation attempt under the per-op timeout. A timed-out
// attempt is abandoned (its goroutine may still finish in the
// background), which is why the append path never retries into the same
// segment.
func (s *Store) timed(f func() error) error {
	if s.opts.OpTimeout < 0 {
		return f()
	}
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-s.clock.After(s.opts.OpTimeout):
		s.c.opTimeouts.Add(1)
		return ErrTimeout
	}
}

// Get returns the stored body for key with both CRCs re-verified. A
// missing, corrupt, unreadable, or breaker-degraded entry reports a
// miss; corrupt or unreadable entries are additionally quarantined
// (dropped from the index) so the caller's recompute can rewrite them.
func (s *Store) Get(key string) ([]byte, bool) {
	body, _, ok := s.GetWithCost(key)
	return body, ok
}

// GetWithCost is Get plus the entry's recorded reconstruction cost in
// compute nanoseconds (zero when none was recorded), so a caller
// promoting the bytes into a higher cache tier can keep ranking them by
// cost-per-byte there.
func (s *Store) GetWithCost(key string) ([]byte, int64, bool) {
	if s.closed.Load() {
		return nil, 0, false
	}
	defer observeOp(s.getHist, time.Now())
	s.mu.Lock()
	ref, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		s.c.misses.Add(1)
		return nil, 0, false
	}
	if !s.brk.allow() {
		s.c.misses.Add(1)
		return nil, 0, false
	}
	buf, err := s.readRecord(ref)
	if err != nil {
		s.brk.failure()
		s.c.readErrors.Add(1)
		s.c.misses.Add(1)
		s.quarantine(key, ref)
		return nil, 0, false
	}
	s.brk.success()
	body, ok := verifyRecord(buf, key, ref)
	if !ok {
		s.c.misses.Add(1)
		s.quarantine(key, ref)
		return nil, 0, false
	}
	s.c.hits.Add(1)
	return body, ref.cost, true
}

// readRecord reads one full record with retry, backoff, and the per-op
// timeout.
func (s *Store) readRecord(ref entryRef) ([]byte, error) {
	path := s.segPath(ref.seg)
	buf := make([]byte, headerSize+ref.keyLen+ref.bodyLen)
	var err error
	for attempt := 0; attempt <= s.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			s.c.retries.Add(1)
			s.clock.Sleep(s.opts.RetryBase << (attempt - 1))
		}
		err = s.timed(func() error {
			f, err := s.fs.OpenFile(path, os.O_RDONLY, 0)
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = f.ReadAt(buf, ref.off)
			return err
		})
		if err == nil {
			return buf, nil
		}
	}
	return nil, err
}

// verifyRecord checks a read-back record against its index entry: magic,
// header CRC, lengths, key identity, and payload CRC. Any mismatch means
// the bytes must not be served.
func verifyRecord(buf []byte, key string, ref entryRef) ([]byte, bool) {
	keyLen, bodyLen, ok := parseHeader(buf)
	if !ok || keyLen != ref.keyLen || bodyLen != ref.bodyLen {
		return nil, false
	}
	if crc32.Checksum(buf[headerSize:], crcTable) != binary.LittleEndian.Uint32(buf[16:20]) {
		return nil, false
	}
	if string(buf[headerSize:headerSize+keyLen]) != key {
		return nil, false
	}
	return buf[headerSize+keyLen:], true
}

// quarantine drops an entry whose bytes can no longer be served, unless
// the index has already moved on to a fresh record for the key. The
// entry's cost leaves its segment's eviction ranking with it.
func (s *Store) quarantine(key string, ref entryRef) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.index[key]; ok && cur == ref {
		delete(s.index, key)
		s.segCost[ref.seg] -= ref.cost
		s.c.quarantined.Add(1)
	}
}

// Put appends key/body durably with no recorded reconstruction cost.
// See PutCost for the append contract.
func (s *Store) Put(key string, body []byte) error {
	return s.PutCost(key, body, 0)
}

// PutCost appends key/body durably, recording the entry's measured
// reconstruction cost (compute nanoseconds) for cost-aware eviction. An
// already-stored key is a no-op (the store is content-addressed: same
// key, same bytes). A failed or timed-out append abandons the active
// segment — isolating any torn tail at a segment end, where recovery
// truncates it — and retries into a fresh segment; persistent failure
// feeds the circuit breaker and drops the write (the store is a cache,
// not a log: the caller keeps serving from memory).
func (s *Store) PutCost(key string, body []byte, costNanos int64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	defer observeOp(s.putHist, time.Now())
	if len(key) == 0 || len(key) > maxKeyLen || len(body) > maxBodyLen {
		return errTooLarge
	}
	if costNanos < 0 {
		costNanos = 0
	}
	s.mu.Lock()
	_, exists := s.index[key]
	s.mu.Unlock()
	if exists {
		return nil
	}
	if !s.brk.allow() {
		s.c.droppedWrites.Add(1)
		return ErrDegraded
	}
	rec := encodeRecord(key, body)

	s.wmu.Lock()
	defer s.wmu.Unlock()
	var err error
	for attempt := 0; ; attempt++ {
		if s.active == nil {
			if err = s.rotate(); err != nil {
				break
			}
		} else if s.activeSize > 0 && s.activeSize+int64(len(rec)) > s.opts.MaxSegmentBytes {
			if err = s.rotate(); err != nil {
				break
			}
		}
		off, seg := s.activeSize, s.activeID
		// Capture the handle: a timed-out attempt keeps running in the
		// background while this path reassigns s.active, and it must
		// keep targeting the abandoned (soon closed) segment.
		f := s.active
		err = s.timed(func() error {
			if _, werr := f.Write(rec); werr != nil {
				return werr
			}
			if !s.opts.NoSync {
				return f.Sync()
			}
			return nil
		})
		if err == nil {
			s.activeSize += int64(len(rec))
			s.brk.success()
			s.c.writes.Add(1)
			s.commit(key, entryRef{seg: seg, off: off, keyLen: len(key), bodyLen: len(body), cost: costNanos}, int64(len(rec)))
			return nil
		}
		// The segment may carry a torn tail now (and a timed-out write
		// may still land later); abandon it so the next attempt — and
		// every future append — starts a clean segment.
		s.active.Close()
		s.active = nil
		if attempt >= s.opts.MaxRetries {
			break
		}
		s.c.retries.Add(1)
		s.clock.Sleep(s.opts.RetryBase << attempt)
	}
	s.brk.failure()
	s.c.writeErrors.Add(1)
	return fmt.Errorf("store: appending %q: %w", key, err)
}

// rotate closes the active segment and starts the next one. Callers
// hold wmu (or are Open, before any concurrency).
func (s *Store) rotate() error {
	if s.active != nil {
		s.active.Close()
		s.active = nil
	}
	id := s.activeID + 1
	f, err := s.fs.OpenFile(s.segPath(id), os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	s.activeID, s.activeSize, s.active = id, 0, f
	s.mu.Lock()
	s.segIDs = append(s.segIDs, id)
	s.segBytes[id] = 0
	s.segCost[id] = 0
	s.mu.Unlock()
	return nil
}

// commit indexes a durable record and enforces the byte budget by
// evicting whole segments (never the active one), cheapest first:
// the victim is the segment with the lowest cost-per-byte — summed
// entry reconstruction cost over indexed bytes — so a segment full of
// expensive-to-recompute results (a 1024-core figure) outlives a larger
// one full of cheap cells, regardless of age. Equal densities (notably
// the all-zero-cost case of a store fed only by Put) tie-break oldest
// first, which preserves the previous pure-age behaviour exactly.
func (s *Store) commit(key string, ref entryRef, recLen int64) {
	var evict []int
	s.mu.Lock()
	s.index[key] = ref
	s.segBytes[ref.seg] += recLen
	s.segCost[ref.seg] += ref.cost
	s.total += recLen
	for s.total > s.opts.MaxBytes && len(s.segIDs) > 1 {
		victim := s.cheapestSegmentLocked()
		for k, r := range s.index {
			if r.seg == victim {
				delete(s.index, k)
			}
		}
		s.total -= s.segBytes[victim]
		delete(s.segBytes, victim)
		delete(s.segCost, victim)
		for i, id := range s.segIDs {
			if id == victim {
				s.segIDs = append(s.segIDs[:i], s.segIDs[i+1:]...)
				break
			}
		}
		evict = append(evict, victim)
	}
	s.mu.Unlock()
	for _, id := range evict {
		// Best-effort: a lingering file is re-scanned (and still valid)
		// on the next Open, so a failed remove loses nothing.
		s.fs.Remove(s.segPath(id))
		s.c.evicted.Add(1)
	}
}

// cheapestSegmentLocked returns the non-active segment with the lowest
// cost-per-byte (ties — notably all-zero costs — keep the oldest id).
// Callers hold mu and guarantee at least two segments exist.
func (s *Store) cheapestSegmentLocked() int {
	candidates := s.segIDs[:len(s.segIDs)-1]
	victim, best := candidates[0], segDensity(s.segCost[candidates[0]], s.segBytes[candidates[0]])
	for _, id := range candidates[1:] {
		if d := segDensity(s.segCost[id], s.segBytes[id]); d < best {
			victim, best = id, d
		}
	}
	return victim
}

// segDensity is the eviction-cost formula: summed entry reconstruction
// cost over indexed bytes. An empty segment (abandoned by a failed
// append) ranks cheapest of all — evicting it frees nothing but costs
// nothing either.
func segDensity(cost, bytes int64) float64 {
	if bytes <= 0 {
		return -1
	}
	return float64(cost) / float64(bytes)
}

// ManifestPath returns the path of the store's cache manifest file.
func (s *Store) ManifestPath() string {
	return filepath.Join(s.dir, "manifest.lsm")
}

// SaveManifest persists the cache manifest: one advisory record per
// indexed entry (key, reconstruction cost, body size) plus the opaque
// metadata metaOf yields for the key (nil metaOf, or a nil return,
// writes an empty meta). The manifest seeds eviction costs at the next
// Open and lets bench replay a realistic warm set; it is best-effort
// and single-attempt — a failed save leaves recovery exact, just
// costless — and it never feeds the circuit breaker.
func (s *Store) SaveManifest(metaOf func(key string) []byte) error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]ManifestEntry, 0, len(keys))
	for _, k := range keys {
		ref := s.index[k]
		entries = append(entries, ManifestEntry{
			Key:       k,
			CostNanos: ref.cost,
			Size:      int64(ref.bodyLen),
		})
	}
	s.mu.Unlock()
	if metaOf != nil {
		for i := range entries {
			entries[i].Meta = metaOf(entries[i].Key)
		}
	}
	return WriteManifest(s.fs, s.ManifestPath(), entries)
}

// Len returns the current indexed entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store's gauges and counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, segments, total := len(s.index), len(s.segIDs), s.total
	s.mu.Unlock()
	state, trips := s.brk.snapshot()
	return Stats{
		Entries:         entries,
		Segments:        segments,
		DiskBytes:       total,
		Recovered:       s.recovered,
		LostBytes:       s.lostBytes,
		Hits:            s.c.hits.Load(),
		Misses:          s.c.misses.Load(),
		Writes:          s.c.writes.Load(),
		WriteErrors:     s.c.writeErrors.Load(),
		DroppedWrites:   s.c.droppedWrites.Load(),
		ReadErrors:      s.c.readErrors.Load(),
		Quarantined:     s.c.quarantined.Load(),
		Retries:         s.c.retries.Load(),
		OpTimeouts:      s.c.opTimeouts.Load(),
		EvictedSegments: s.c.evicted.Load(),
		Breaker:         state,
		BreakerTrips:    trips,
	}
}

// Close flushes and closes the active segment. Further Gets miss and
// Puts return ErrClosed.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.active == nil {
		return nil
	}
	err := s.active.Close()
	s.active = nil
	return err
}

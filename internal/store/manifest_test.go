package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCostAwareSegmentEviction is the eviction-policy regression the
// fleet work depends on: under byte pressure the store must evict a
// cheap large entry before an expensive small one, even though the
// expensive entry is older. (Pure age-based eviction would do the
// opposite and throw away exactly the results that are costliest to
// recompute.)
func TestCostAwareSegmentEviction(t *testing.T) {
	opts := fastOpts()
	opts.MaxSegmentBytes = 100
	opts.MaxBytes = 500
	s := mustOpen(t, t.TempDir(), opts)

	// Oldest entry: small but very expensive to reconstruct.
	expBody := bytes.Repeat([]byte("x"), 50)
	if err := s.PutCost("exp", expBody, 5_000_000_000); err != nil {
		t.Fatal(err)
	}
	// Then a stream of large, free-to-reconstruct entries that blows the
	// byte budget several times over.
	const cheap = 8
	for i := 0; i < cheap; i++ {
		if err := s.PutCost(fmt.Sprintf("cheap-%d", i), bytes.Repeat([]byte("y"), 90), 0); err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if st.EvictedSegments == 0 {
		t.Fatalf("no eviction under a %d-byte budget: %+v", opts.MaxBytes, st)
	}
	if st.DiskBytes > opts.MaxBytes {
		t.Fatalf("disk bytes %d exceed budget %d", st.DiskBytes, opts.MaxBytes)
	}
	body, cost, ok := s.GetWithCost("exp")
	if !ok || !bytes.Equal(body, expBody) {
		t.Fatalf("expensive entry evicted before cheap ones: ok=%v", ok)
	}
	if cost != 5_000_000_000 {
		t.Fatalf("GetWithCost cost = %d, want 5e9", cost)
	}
	if _, ok := s.Get("cheap-0"); ok {
		t.Fatal("oldest cheap entry survived while the budget was blown")
	}
	if _, ok := s.Get(fmt.Sprintf("cheap-%d", cheap-1)); !ok {
		t.Fatal("newest entry (active segment) was evicted")
	}
}

// TestCostlessEvictionStaysOldestFirst: with no recorded costs the
// cost-per-byte ranking ties everywhere and eviction must degrade to
// the previous oldest-first order exactly.
func TestCostlessEvictionStaysOldestFirst(t *testing.T) {
	opts := fastOpts()
	opts.MaxSegmentBytes = 256
	opts.MaxBytes = 1024
	s := mustOpen(t, t.TempDir(), opts)
	const n = 40
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), body(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Scanning from the oldest key upward, hits must be a suffix: once a
	// key survives, every newer key survives too (oldest-first order).
	seenHit := false
	for i := 0; i < n; i++ {
		_, ok := s.Get(fmt.Sprintf("key-%d", i))
		if seenHit && !ok {
			t.Fatalf("key-%d evicted though an older key survived: not oldest-first", i)
		}
		seenHit = seenHit || ok
	}
	if !seenHit {
		t.Fatal("every entry evicted")
	}
}

// TestManifestRoundTrip: encode → decode returns the entries exactly,
// meta blobs included.
func TestManifestRoundTrip(t *testing.T) {
	entries := []ManifestEntry{
		{Key: "run|fp|LSM|cfg", CostNanos: 123456, Size: 512, Meta: []byte("/v1/run\x00{\"app\":\"enc\"}")},
		{Key: "figure|fig6", CostNanos: 9_999_999_999, Size: 1, Meta: nil},
		{Key: "k", CostNanos: 0, Size: 0, Meta: []byte{0, 1, 2, 255}},
	}
	got := DecodeManifest(EncodeManifest(entries))
	if len(got) != len(entries) {
		t.Fatalf("round trip returned %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		g := got[i]
		if g.Key != e.Key || g.CostNanos != e.CostNanos || g.Size != e.Size || !bytes.Equal(g.Meta, e.Meta) {
			t.Fatalf("entry %d round-tripped as %+v, want %+v", i, g, e)
		}
	}
}

// TestManifestDecodeTolerant: torn tails stop the scan cleanly, a
// payload bit flip skips only its record, and garbage yields nothing —
// never a panic, never an error.
func TestManifestDecodeTolerant(t *testing.T) {
	entries := []ManifestEntry{
		{Key: "a", CostNanos: 1, Size: 10, Meta: []byte("ma")},
		{Key: "b", CostNanos: 2, Size: 20, Meta: []byte("mb")},
		{Key: "c", CostNanos: 3, Size: 30, Meta: []byte("mc")},
	}
	data := EncodeManifest(entries)

	if got := DecodeManifest(data[:len(data)-5]); len(got) != 2 {
		t.Fatalf("torn tail decoded %d entries, want 2", len(got))
	}
	// Flip a payload byte of the middle record: a and c must survive.
	recLen := len(data) / 3
	flipped := append([]byte(nil), data...)
	flipped[recLen+manifestHeaderSize] ^= 0xff
	got := DecodeManifest(flipped)
	if len(got) != 2 || got[0].Key != "a" || got[1].Key != "c" {
		t.Fatalf("payload flip: decoded %+v, want a and c", got)
	}
	// Flip a header byte: the scan cannot trust lengths and must stop.
	flipped = append([]byte(nil), data...)
	flipped[recLen+4] ^= 0xff
	if got := DecodeManifest(flipped); len(got) != 1 || got[0].Key != "a" {
		t.Fatalf("header flip: decoded %+v, want just a", got)
	}
	if got := DecodeManifest([]byte("not a manifest at all")); got != nil {
		t.Fatalf("garbage decoded %+v", got)
	}
	if got := DecodeManifest(nil); got != nil {
		t.Fatalf("nil input decoded %+v", got)
	}
}

// TestManifestSeedsCostsAcrossReopen: SaveManifest persists costs and
// metas; a reopened store serves the same costs through GetWithCost and
// LoadManifest returns the metas for warm replay.
func TestManifestSeedsCostsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, fastOpts())
	if err := s.PutCost("k1", []byte("body-one"), 111); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCost("k2", []byte("body-two!"), 222); err != nil {
		t.Fatal(err)
	}
	metaOf := func(key string) []byte { return []byte("meta:" + key) }
	if err := s.SaveManifest(metaOf); err != nil {
		t.Fatalf("SaveManifest: %v", err)
	}
	s.Close()

	s2 := mustOpen(t, dir, fastOpts())
	if _, cost, ok := s2.GetWithCost("k1"); !ok || cost != 111 {
		t.Fatalf("k1 after reopen: ok=%v cost=%d, want 111", ok, cost)
	}
	if _, cost, ok := s2.GetWithCost("k2"); !ok || cost != 222 {
		t.Fatalf("k2 after reopen: ok=%v cost=%d, want 222", ok, cost)
	}
	entries, err := LoadManifest(OSFS{}, s2.ManifestPath())
	if err != nil || len(entries) != 2 {
		t.Fatalf("LoadManifest: %d entries, err=%v", len(entries), err)
	}
	for _, e := range entries {
		if string(e.Meta) != "meta:"+e.Key {
			t.Fatalf("entry %q meta %q did not round-trip", e.Key, e.Meta)
		}
	}
}

// TestManifestCorruptOrMissingIsHarmless: a store must open identically
// with no manifest, a garbage manifest, or a stale one — costs just
// default to zero.
func TestManifestCorruptOrMissingIsHarmless(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, fastOpts())
	if err := s.PutCost("k", []byte("v"), 42); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// No manifest at all (SaveManifest never called).
	s2 := mustOpen(t, dir, fastOpts())
	if body, cost, ok := s2.GetWithCost("k"); !ok || string(body) != "v" || cost != 0 {
		t.Fatalf("no manifest: ok=%v body=%q cost=%d, want hit with cost 0", ok, body, cost)
	}
	s2.Close()

	// Garbage manifest.
	if err := os.WriteFile(filepath.Join(dir, "manifest.lsm"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := mustOpen(t, dir, fastOpts())
	if body, cost, ok := s3.GetWithCost("k"); !ok || string(body) != "v" || cost != 0 {
		t.Fatalf("garbage manifest: ok=%v body=%q cost=%d", ok, body, cost)
	}
	// A manifest entry whose size disagrees with the index must not seed
	// its cost (it describes different bytes).
	WriteManifest(OSFS{}, filepath.Join(dir, "manifest.lsm"), []ManifestEntry{
		{Key: "k", CostNanos: 999, Size: 12345},
	})
	s3.Close()
	s4 := mustOpen(t, dir, fastOpts())
	if _, cost, ok := s4.GetWithCost("k"); !ok || cost != 0 {
		t.Fatalf("size-mismatched manifest entry seeded cost %d", cost)
	}
}

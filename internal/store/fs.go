package store

import (
	"io"
	"os"
	"time"
)

// FS is the store's filesystem seam: every disk operation the store
// performs goes through it, so tests and the chaos harness can substitute
// an error-injecting implementation (FaultFS) without touching the store
// logic. The production implementation is OSFS.
type FS interface {
	// MkdirAll creates a directory tree like os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory like os.ReadDir.
	ReadDir(path string) ([]os.DirEntry, error)
	// OpenFile opens a file like os.OpenFile.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// Remove deletes a file like os.Remove.
	Remove(path string) error
	// Stat describes a file like os.Stat.
	Stat(path string) (os.FileInfo, error)
}

// File is the store's view of an open file: sequential reads for the
// recovery scan, positioned reads for entry lookups, appends for the
// write path, and truncation for clearing a torn tail at open.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	// Sync flushes written data to stable storage.
	Sync() error
	// Truncate resizes the file, discarding bytes past size.
	Truncate(size int64) error
}

// OSFS is the production FS over the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir implements FS.
func (OSFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

// OpenFile implements FS.
func (OSFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// Stat implements FS.
func (OSFS) Stat(path string) (os.FileInfo, error) { return os.Stat(path) }

// Clock is the store's time seam: retry backoff and per-operation
// timeouts sleep and tick through it, so tests can keep chaos scenarios
// fast by shrinking the durations rather than faking time.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for the duration.
	Sleep(d time.Duration)
	// After returns a channel that delivers the time after the duration.
	After(d time.Duration) <-chan time.Time
}

// RealClock is the production Clock over the system clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The cache manifest is an advisory sidecar file (manifest.lsm) next to
// the segments. Each record carries one entry's key, its measured
// reconstruction cost, its body size, and an opaque metadata blob the
// serving layer uses to replay the entry (endpoint + request body for
// bench warm-set replay). The manifest is never required for
// correctness: the segments alone rebuild an exact index, and a
// missing, truncated, or corrupt manifest only loses eviction precision
// and replayability. The decoder is therefore maximally tolerant —
// arbitrary bytes must never panic, a bad header stops the scan, and a
// record whose payload fails its CRC is skipped individually.
//
// Record layout (little-endian):
//
//	magic      uint32  "LSMF"
//	keyLen     uint32
//	metaLen    uint32
//	size       uint64  entry body size in bytes
//	cost       uint64  reconstruction cost in nanoseconds
//	headerCRC  uint32  Castagnoli over the 28 bytes above
//	payloadCRC uint32  Castagnoli over key‖meta
//	key        keyLen bytes
//	meta       metaLen bytes
const (
	// manifestMagic begins every manifest record ("LSMF").
	manifestMagic = 0x4c534d46
	// manifestHeaderSize is the fixed manifest record header length.
	manifestHeaderSize = 36
	// maxManifestMetaLen bounds a record's opaque metadata blob (sanity
	// bound for decode validation).
	maxManifestMetaLen = 1 << 20
)

// ManifestEntry describes one cached entry in the manifest: its key,
// its measured reconstruction cost, its body size (used to cross-check
// the entry against the recovered index before trusting the cost), and
// an opaque metadata blob owned by the serving layer.
type ManifestEntry struct {
	// Key is the entry's content-addressed store key.
	Key string
	// CostNanos is the entry's measured reconstruction cost.
	CostNanos int64
	// Size is the entry's body size in bytes.
	Size int64
	// Meta is an opaque blob the serving layer round-trips (replay
	// information); the store never interprets it.
	Meta []byte
}

// EncodeManifest renders entries as manifest bytes.
func EncodeManifest(entries []ManifestEntry) []byte {
	var n int
	for _, e := range entries {
		n += manifestHeaderSize + len(e.Key) + len(e.Meta)
	}
	out := make([]byte, 0, n)
	for _, e := range entries {
		out = append(out, encodeManifestRecord(e)...)
	}
	return out
}

// encodeManifestRecord renders one manifest record. Negative sizes or
// costs are clamped to zero so the unsigned wire form round-trips.
func encodeManifestRecord(e ManifestEntry) []byte {
	size, cost := e.Size, e.CostNanos
	if size < 0 {
		size = 0
	}
	if cost < 0 {
		cost = 0
	}
	rec := make([]byte, manifestHeaderSize+len(e.Key)+len(e.Meta))
	binary.LittleEndian.PutUint32(rec[0:4], manifestMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(e.Key)))
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(e.Meta)))
	binary.LittleEndian.PutUint64(rec[12:20], uint64(size))
	binary.LittleEndian.PutUint64(rec[20:28], uint64(cost))
	binary.LittleEndian.PutUint32(rec[28:32], crc32.Checksum(rec[0:28], crcTable))
	copy(rec[manifestHeaderSize:], e.Key)
	copy(rec[manifestHeaderSize+len(e.Key):], e.Meta)
	binary.LittleEndian.PutUint32(rec[32:36], crc32.Checksum(rec[manifestHeaderSize:], crcTable))
	return rec
}

// DecodeManifest parses manifest bytes tolerantly: it returns every
// record with a valid header and payload CRC, stops at the first
// invalid header (torn tail or untrustworthy lengths), and skips —
// without aborting — a record whose payload bytes fail their CRC.
// Arbitrary input never panics and never errors; the worst outcome is
// an empty slice.
func DecodeManifest(data []byte) []ManifestEntry {
	var entries []ManifestEntry
	off := 0
	for off+manifestHeaderSize <= len(data) {
		h := data[off : off+manifestHeaderSize]
		keyLen, metaLen, size, cost, ok := parseManifestHeader(h)
		if !ok {
			break
		}
		end := off + manifestHeaderSize + keyLen + metaLen
		if end > len(data) {
			break
		}
		payload := data[off+manifestHeaderSize : end]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(h[32:36]) {
			off = end
			continue
		}
		meta := make([]byte, metaLen)
		copy(meta, payload[keyLen:])
		entries = append(entries, ManifestEntry{
			Key:       string(payload[:keyLen]),
			CostNanos: cost,
			Size:      size,
			Meta:      meta,
		})
		off = end
	}
	return entries
}

// parseManifestHeader validates one manifest record header in place. ok
// is false when the magic, the header CRC, or the length/value sanity
// bounds fail — i.e. when the record cannot be trusted at all.
func parseManifestHeader(h []byte) (keyLen, metaLen int, size, cost int64, ok bool) {
	if binary.LittleEndian.Uint32(h[0:4]) != manifestMagic {
		return 0, 0, 0, 0, false
	}
	if crc32.Checksum(h[0:28], crcTable) != binary.LittleEndian.Uint32(h[28:32]) {
		return 0, 0, 0, 0, false
	}
	kl := int(binary.LittleEndian.Uint32(h[4:8]))
	ml := int(binary.LittleEndian.Uint32(h[8:12]))
	sz := binary.LittleEndian.Uint64(h[12:20])
	cn := binary.LittleEndian.Uint64(h[20:28])
	if kl <= 0 || kl > maxKeyLen || ml < 0 || ml > maxManifestMetaLen {
		return 0, 0, 0, 0, false
	}
	if sz > maxBodyLen || cn > 1<<62 {
		return 0, 0, 0, 0, false
	}
	return kl, ml, int64(sz), int64(cn), true
}

// WriteManifest writes entries as a manifest file at path through fs,
// replacing any previous manifest. Single-attempt by design: manifests
// are advisory, so a failed write is reported but never retried and
// never feeds a circuit breaker.
func WriteManifest(fs FS, path string, entries []ManifestEntry) error {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating manifest %s: %w", path, err)
	}
	data := EncodeManifest(entries)
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing manifest %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing manifest %s: %w", path, err)
	}
	return f.Close()
}

// LoadManifest reads and decodes the manifest at path through fs. A
// missing file is not an error (nil entries); read errors are returned
// so callers can distinguish "no manifest" from "unreadable disk", and
// decoding itself never fails — see DecodeManifest.
func LoadManifest(fs FS, path string) ([]ManifestEntry, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: opening manifest %s: %w", path, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("store: reading manifest %s: %w", path, err)
	}
	return DecodeManifest(data), nil
}

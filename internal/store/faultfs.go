package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// ErrInjected is the base error FaultFS returns for injected failures;
// tests match it with errors.Is.
var ErrInjected = errors.New("store: injected fault")

// Op names one FS operation class for fault targeting.
type Op string

// The FS operation classes FaultFS can target.
const (
	OpMkdir    Op = "mkdir"
	OpReadDir  Op = "readdir"
	OpOpen     Op = "open"
	OpRemove   Op = "remove"
	OpStat     Op = "stat"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
)

// FaultFS wraps an inner FS and injects failures for chaos testing: a
// per-operation failure hook (e.g. ENOSPC on every write), a global
// write-byte budget whose exhaustion mid-record simulates a SIGKILL or
// power loss tearing an append, and a per-I/O delay that simulates a
// slow or hung disk. All knobs are safe to flip while the store is
// using the filesystem, which is exactly how the chaos suite flips a
// healthy store into a failing one and back.
type FaultFS struct {
	inner FS

	mu          sync.Mutex
	failOp      func(op Op, path string) error
	writeBudget int64 // < 0: unlimited
	delay       time.Duration
	opCounts    map[Op]int64
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, writeBudget: -1, opCounts: make(map[Op]int64)}
}

// SetFailure arms (or, with nil, disarms) the per-operation failure
// hook; a non-nil error returned by the hook aborts the operation
// before it reaches the inner FS.
func (f *FaultFS) SetFailure(hook func(op Op, path string) error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failOp = hook
}

// FailOps arms a failure hook that fails every operation in ops with an
// ErrInjected-wrapped error (a convenience over SetFailure).
func (f *FaultFS) FailOps(ops ...Op) {
	set := make(map[Op]bool, len(ops))
	for _, op := range ops {
		set[op] = true
	}
	f.SetFailure(func(op Op, path string) error {
		if set[op] {
			return fmt.Errorf("%w: %s %s", ErrInjected, op, path)
		}
		return nil
	})
}

// SetWriteBudget allows n more bytes of writes in total; the write that
// would exceed the budget lands its in-budget prefix and then fails,
// leaving a torn record exactly as a crash mid-append would. Negative n
// means unlimited.
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
}

// SetDelay makes every read and write sleep for d first (a slow disk).
func (f *FaultFS) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// Counts returns a copy of the per-operation invocation counters
// (attempted operations, including ones that were failed by injection).
func (f *FaultFS) Counts() map[Op]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Op]int64, len(f.opCounts))
	for k, v := range f.opCounts {
		out[k] = v
	}
	return out
}

// check records the operation and consults the failure hook and delay.
func (f *FaultFS) check(op Op, path string) error {
	f.mu.Lock()
	f.opCounts[op]++
	hook := f.failOp
	delay := f.delay
	f.mu.Unlock()
	if delay > 0 && (op == OpRead || op == OpWrite || op == OpSync) {
		time.Sleep(delay)
	}
	if hook != nil {
		return hook(op, path)
	}
	return nil
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.check(OpMkdir, path); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(path string) ([]os.DirEntry, error) {
	if err := f.check(OpReadDir, path); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(path)
}

// OpenFile implements FS.
func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if err := f.check(OpOpen, path); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, inner: file}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(path string) error {
	if err := f.check(OpRemove, path); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// Stat implements FS.
func (f *FaultFS) Stat(path string) (os.FileInfo, error) {
	if err := f.check(OpStat, path); err != nil {
		return nil, err
	}
	return f.inner.Stat(path)
}

// faultFile applies the FaultFS knobs to one open file.
type faultFile struct {
	fs    *FaultFS
	path  string
	inner File
}

// Read implements File.
func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.check(OpRead, f.path); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

// ReadAt implements File.
func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.check(OpRead, f.path); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

// Write implements File, honoring the write-byte budget: the prefix
// that fits is written through (torn record on disk), the rest is lost.
func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.check(OpWrite, f.path); err != nil {
		return 0, err
	}
	f.fs.mu.Lock()
	budget := f.fs.writeBudget
	if budget >= 0 {
		if int64(len(p)) <= budget {
			f.fs.writeBudget -= int64(len(p))
		} else {
			f.fs.writeBudget = 0
		}
	}
	f.fs.mu.Unlock()
	if budget >= 0 && int64(len(p)) > budget {
		n, _ := f.inner.Write(p[:budget])
		return n, fmt.Errorf("%w: write budget exhausted at %s", ErrInjected, f.path)
	}
	return f.inner.Write(p)
}

// Close implements File.
func (f *faultFile) Close() error { return f.inner.Close() }

// Sync implements File.
func (f *faultFile) Sync() error {
	if err := f.fs.check(OpSync, f.path); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Truncate implements File.
func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.check(OpTruncate, f.path); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

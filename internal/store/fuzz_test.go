package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fuzzOpts are store options for fuzz bodies: no retries-to-speak-of,
// no sync, real filesystem in the per-run temp dir.
func fuzzOpts() Options {
	return Options{
		RetryBase: time.Microsecond,
		OpTimeout: 2 * time.Second,
		NoSync:    true,
	}
}

// realSegmentBytes builds a store with a few representative entries and
// returns its first segment's raw bytes — the fuzz seed corpus grows
// from real on-disk records, so mutations explore the format's
// neighborhood instead of random space.
func realSegmentBytes(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	s, err := Open(dir, fuzzOpts())
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("run|fp%02d|LSM|cfgdigest", i)
		if err := s.PutCost(key, bytes.Repeat([]byte{byte('a' + i)}, 40+i), int64(i)*1000); err != nil {
			tb.Fatal(err)
		}
	}
	s.Close()
	data, err := os.ReadFile(filepath.Join(dir, "seg-00000001.log"))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzSegmentScan throws arbitrary bytes at the recovery scanner as a
// segment file. Invariants: Open never panics and never errors on a
// readable-but-garbage segment, and every entry the rebuilt index
// serves is byte-identical to a CRC-verified record at the indexed
// offset of the original input — corrupted bytes must never come back
// out.
func FuzzSegmentScan(f *testing.F) {
	seed := realSegmentBytes(f)
	f.Add([]byte{})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	flipped := append([]byte(nil), seed...)
	flipped[headerSize+2] ^= 0xff // payload corruption in record 0
	f.Add(flipped)
	f.Add([]byte("LSR1 but not really a record"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "seg-00000001.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, fuzzOpts())
		if err != nil {
			t.Fatalf("Open on arbitrary segment bytes: %v", err)
		}
		defer s.Close()

		s.mu.Lock()
		refs := make(map[string]entryRef, len(s.index))
		for k, ref := range s.index {
			refs[k] = ref
		}
		s.mu.Unlock()
		for key, ref := range refs {
			// Only segment 1 holds fuzz input; Open may have rotated past it.
			if ref.seg != 1 {
				continue
			}
			end := ref.off + int64(headerSize+ref.keyLen+ref.bodyLen)
			if ref.off < 0 || end > int64(len(data)) {
				t.Fatalf("index ref for %q out of bounds: off=%d end=%d len=%d", key, ref.off, end, len(data))
			}
			rec := data[ref.off:end]
			if crc32.Checksum(rec[headerSize:], crcTable) != binary.LittleEndian.Uint32(rec[16:20]) {
				t.Fatalf("indexed record for %q fails its payload CRC", key)
			}
			body, ok := s.Get(key)
			if !ok {
				continue // quarantined at read time is a legal outcome
			}
			if want := rec[headerSize+ref.keyLen:]; !bytes.Equal(body, want) {
				t.Fatalf("served bytes for %q differ from the verified record", key)
			}
		}
	})
}

// FuzzManifestDecode throws arbitrary bytes at the manifest decoder.
// Invariants: never panics, every decoded entry respects the format's
// sanity bounds, and decoding is a fixpoint — re-encoding the decoded
// entries and decoding again yields the same entries (so a recovered
// manifest can always be rewritten losslessly).
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte{})
	good := EncodeManifest([]ManifestEntry{
		{Key: "run|fp|LSM|cfg", CostNanos: 123456, Size: 512, Meta: []byte("/v1/run\x00{}")},
		{Key: "figure|fig6", CostNanos: 987654321, Size: 2048, Meta: nil},
	})
	f.Add(good)
	f.Add(good[:len(good)-7])
	flipped := append([]byte(nil), good...)
	flipped[manifestHeaderSize+1] ^= 0xff
	f.Add(flipped)
	f.Add([]byte("LSMF junk"))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries := DecodeManifest(data)
		for i, e := range entries {
			if len(e.Key) == 0 || len(e.Key) > maxKeyLen {
				t.Fatalf("entry %d: key length %d out of bounds", i, len(e.Key))
			}
			if len(e.Meta) > maxManifestMetaLen {
				t.Fatalf("entry %d: meta length %d out of bounds", i, len(e.Meta))
			}
			if e.Size < 0 || e.Size > maxBodyLen || e.CostNanos < 0 {
				t.Fatalf("entry %d: size=%d cost=%d out of bounds", i, e.Size, e.CostNanos)
			}
		}
		again := DecodeManifest(EncodeManifest(entries))
		if len(again) != len(entries) {
			t.Fatalf("re-encode changed entry count %d -> %d", len(entries), len(again))
		}
		for i := range entries {
			a, b := entries[i], again[i]
			if a.Key != b.Key || a.CostNanos != b.CostNanos || a.Size != b.Size || !bytes.Equal(a.Meta, b.Meta) {
				t.Fatalf("entry %d not a fixpoint: %+v -> %+v", i, a, b)
			}
		}
	})
}

package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Property-style recovery tests: for EVERY prefix truncation point and
// EVERY flipped byte position of a real segment file, a fresh Open must
// produce a consistent index that never serves corruption — each Get is
// either a clean miss (recompute) or byte-identical to the original put.

// writeSegment seeds one single-segment store and returns the segment
// path, its bytes, and the expected contents.
func writeSegment(t *testing.T, dir string, n int) (path string, data []byte, want map[string][]byte) {
	t.Helper()
	want = seedStore(t, dir, fastOpts(), n)
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", matches, err)
	}
	path = matches[0]
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data, want
}

// restoreDir rewrites the segment file with the given bytes in a fresh
// directory and returns that directory.
func restoreDir(t *testing.T, name string, data []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRecoverAnyPrefixTruncation: truncating the segment at every
// possible byte length recovers to a consistent index: all records
// wholly inside the prefix are served exactly; everything else misses;
// the store accepts and persists new appends afterward.
func TestRecoverAnyPrefixTruncation(t *testing.T) {
	const n = 8
	path, data, want := writeSegment(t, t.TempDir(), n)
	name := filepath.Base(path)

	// Record boundaries, to know exactly which entries a prefix holds.
	ends := make([]int, 0, n)
	off := 0
	for off < len(data) {
		keyLen, bodyLen, ok := parseHeader(data[off:])
		if !ok {
			t.Fatalf("seed segment has invalid header at %d", off)
		}
		off += headerSize + keyLen + bodyLen
		ends = append(ends, off)
	}
	if len(ends) != n || off != len(data) {
		t.Fatalf("seed segment scanned to %d records / %d bytes, want %d / %d", len(ends), off, n, len(data))
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := restoreDir(t, name, data[:cut])
		s, err := Open(dir, fastOpts())
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		wholeRecords := 0
		for _, e := range ends {
			if e <= cut {
				wholeRecords++
			}
		}
		if got := s.Len(); got != wholeRecords {
			t.Fatalf("cut=%d: recovered %d entries, want %d", cut, got, wholeRecords)
		}
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key-%04d", i)
			got, ok := s.Get(k)
			if i < wholeRecords {
				if !ok || !bytes.Equal(got, want[k]) {
					t.Fatalf("cut=%d: intact record %d: ok=%v exact=%v", cut, i, ok, bytes.Equal(got, want[k]))
				}
			} else if ok {
				t.Fatalf("cut=%d: truncated record %d was served: %q", cut, i, got)
			}
		}
		// The truncated tail must not poison new appends.
		if err := s.Put("fresh", []byte("post-truncation")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		s.Close()
		s2, err := Open(dir, fastOpts())
		if err != nil {
			t.Fatalf("cut=%d: second Open: %v", cut, err)
		}
		if got, ok := s2.Get("fresh"); !ok || string(got) != "post-truncation" {
			t.Fatalf("cut=%d: appended record lost across reopen (ok=%v)", cut, ok)
		}
		s2.Close()
	}
}

// TestRecoverAnyFlippedByte: flipping any single byte of the segment
// never makes recovery serve corrupt bytes — the damaged record (and, if
// the flip hits a header, records the scan can no longer reach) misses;
// every record still served is byte-identical to the original.
func TestRecoverAnyFlippedByte(t *testing.T) {
	const n = 6
	path, data, want := writeSegment(t, t.TempDir(), n)
	name := filepath.Base(path)

	for pos := 0; pos < len(data); pos++ {
		mut := bytes.Clone(data)
		mut[pos] ^= 0x01
		dir := restoreDir(t, name, mut)
		s, err := Open(dir, fastOpts())
		if err != nil {
			t.Fatalf("pos=%d: Open: %v", pos, err)
		}
		for k, w := range want {
			if got, ok := s.Get(k); ok && !bytes.Equal(got, w) {
				t.Fatalf("pos=%d: served corruption for %s", pos, k)
			}
		}
		// Exactly one flipped byte damages at most the record containing
		// it plus (for header flips) the unreachable tail — never every
		// record unless the flip is in the first header.
		if pos >= headerSize && s.Len() == 0 {
			t.Fatalf("pos=%d: flip beyond the first header lost every record", pos)
		}
		s.Close()
	}
}

// TestRecoverTornTailThenRewrite: after a torn tail is truncated at
// Open, re-putting the lost key lands it cleanly in the same store.
func TestRecoverTornTailThenRewrite(t *testing.T) {
	const n = 4
	path, data, want := writeSegment(t, t.TempDir(), n)
	name := filepath.Base(path)
	lastKey := fmt.Sprintf("key-%04d", n-1)

	// Tear the last record: keep all but its final 5 bytes.
	dir := restoreDir(t, name, data[:len(data)-5])
	s := mustOpen(t, dir, fastOpts())
	if _, ok := s.Get(lastKey); ok {
		t.Fatal("torn record served")
	}
	if st := s.Stats(); st.LostBytes == 0 {
		t.Fatalf("torn tail not counted as lost: %+v", st)
	}
	if err := s.Put(lastKey, want[lastKey]); err != nil {
		t.Fatalf("rewriting torn key: %v", err)
	}
	if got, ok := s.Get(lastKey); !ok || !bytes.Equal(got, want[lastKey]) {
		t.Fatalf("rewritten torn key: ok=%v", ok)
	}
	// And it survives another restart.
	s.Close()
	s2 := mustOpen(t, dir, fastOpts())
	if got, ok := s2.Get(lastKey); !ok || !bytes.Equal(got, want[lastKey]) {
		t.Fatalf("rewritten torn key lost on reopen: ok=%v", ok)
	}
	if got := s2.Stats().Recovered; got != n {
		t.Fatalf("recovered %d entries after rewrite cycle, want %d", got, n)
	}
}

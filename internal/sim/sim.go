// Package sim provides the discrete-event kernel underneath the MPSoC
// simulator: a deterministic time-ordered event queue. Events with equal
// timestamps pop in insertion (FIFO) order, which keeps whole-system runs
// reproducible bit-for-bit.
package sim

import "container/heap"

type item[T any] struct {
	time    int64
	seq     int64
	payload T
}

type itemHeap[T any] []item[T]

func (h itemHeap[T]) Len() int { return len(h) }
func (h itemHeap[T]) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *itemHeap[T]) Push(x any)   { *h = append(*h, x.(item[T])) }
func (h *itemHeap[T]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Queue is a deterministic min-heap of timestamped events.
type Queue[T any] struct {
	h   itemHeap[T]
	seq int64
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Push schedules payload at the given time.
func (q *Queue[T]) Push(time int64, payload T) {
	q.seq++
	heap.Push(&q.h, item[T]{time: time, seq: q.seq, payload: payload})
}

// Pop removes and returns the earliest event. ok is false when empty.
func (q *Queue[T]) Pop() (time int64, payload T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	it := heap.Pop(&q.h).(item[T])
	return it.time, it.payload, true
}

// Peek returns the earliest event without removing it.
func (q *Queue[T]) Peek() (time int64, payload T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	return q.h[0].time, q.h[0].payload, true
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }

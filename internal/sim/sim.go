// Package sim provides the discrete-event kernel underneath the MPSoC
// simulator: a deterministic time-ordered event queue. Events with equal
// timestamps pop in insertion (FIFO) order, which keeps whole-system runs
// reproducible bit-for-bit.
package sim

type item[T any] struct {
	time    int64
	seq     int64
	payload T
}

// Queue is a deterministic min-heap of timestamped events. The heap is
// hand-rolled rather than container/heap-based: the simulator pushes and
// pops one event per dispatched segment, and the interface indirection
// (and the per-Push boxing allocation it forces) showed up in profiles
// of 128-core runs. (time, seq) is a total order, so the pop sequence is
// independent of internal array layout.
type Queue[T any] struct {
	h   []item[T]
	seq int64
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// less orders by time, then insertion sequence.
func (q *Queue[T]) less(i, j int) bool {
	if q.h[i].time != q.h[j].time {
		return q.h[i].time < q.h[j].time
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && q.less(r, l) {
			child = r
		}
		if !q.less(child, i) {
			break
		}
		q.h[i], q.h[child] = q.h[child], q.h[i]
		i = child
	}
}

// Push schedules payload at the given time.
func (q *Queue[T]) Push(time int64, payload T) {
	q.seq++
	q.h = append(q.h, item[T]{time: time, seq: q.seq, payload: payload})
	q.up(len(q.h) - 1)
}

// Pop removes and returns the earliest event. ok is false when empty.
func (q *Queue[T]) Pop() (time int64, payload T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	var zero item[T]
	q.h[last] = zero // release payload references
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return top.time, top.payload, true
}

// Peek returns the earliest event without removing it.
func (q *Queue[T]) Peek() (time int64, payload T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	return q.h[0].time, q.h[0].payload, true
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }

package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEmptyQueue(t *testing.T) {
	q := NewQueue[string]()
	if q.Len() != 0 {
		t.Errorf("Len = %d, want 0", q.Len())
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop of empty queue should report !ok")
	}
	if _, _, ok := q.Peek(); ok {
		t.Error("Peek of empty queue should report !ok")
	}
}

func TestTimeOrdering(t *testing.T) {
	q := NewQueue[int]()
	q.Push(30, 3)
	q.Push(10, 1)
	q.Push(20, 2)
	var got []int
	for {
		_, p, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, p)
	}
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Errorf("pop %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestFIFOForEqualTimes(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 10; i++ {
		q.Push(5, i)
	}
	for i := 0; i < 10; i++ {
		tm, p, ok := q.Pop()
		if !ok || tm != 5 || p != i {
			t.Fatalf("pop %d = (%d,%d,%v), want (5,%d,true)", i, tm, p, ok, i)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	q := NewQueue[int]()
	q.Push(1, 42)
	tm, p, ok := q.Peek()
	if !ok || tm != 1 || p != 42 {
		t.Fatalf("Peek = (%d,%d,%v)", tm, p, ok)
	}
	if q.Len() != 1 {
		t.Error("Peek must not remove the event")
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := NewQueue[int64]()
	rng := rand.New(rand.NewSource(11))
	pending := 0
	for round := 0; round < 1000; round++ {
		if pending == 0 || rng.Intn(2) == 0 {
			tm := int64(rng.Intn(100))
			q.Push(tm, tm)
			pending++
		} else {
			tm, p, ok := q.Pop()
			if !ok {
				t.Fatal("unexpected empty queue")
			}
			if tm != p {
				t.Fatalf("payload %d != time %d", p, tm)
			}
			pending--
		}
	}
	// Drain: the final drain must come out fully time-sorted.
	var drained []int64
	for {
		_, p, ok := q.Pop()
		if !ok {
			break
		}
		drained = append(drained, p)
	}
	if !sort.SliceIsSorted(drained, func(i, j int) bool { return drained[i] < drained[j] }) {
		t.Errorf("final drain not sorted: %v", drained)
	}
}

package sched

import (
	"fmt"

	"locsched/internal/taskgraph"
)

// This file implements ARR (affinity round-robin), the first dynamic
// policy added beyond the paper's Section 4 ladder. RRS resumes a
// preempted process on whichever core's offer happens to arrive first,
// so every quantum boundary risks re-faulting the process's working set
// into a cold cache. ARR keeps RRS's common FIFO queue and fixed
// quantum but tracks where each process last executed and biases
// dispatch toward warm resumes, with two tunable levers:
//
//   - Window (the affinity strength): how deep into the ready queue a
//     free core may look for a process whose last segment ran on it.
//     Window 0 disables all affinity machinery and is bit-identical to
//     RRS (enforced by differential tests).
//   - QBatch: how many quanta a warm resume is granted before the next
//     forced preemption. Batching quanta on a warm core amortizes the
//     cold-start transient across a longer segment; cold dispatches
//     still get a single quantum, so batching never delays a queue that
//     has somewhere better to run.
//
// A third knob, Decay, bounds how long a last-core binding is trusted:
// a process whose segment ended more than Decay cycles ago is treated
// as unbound (its lines have likely been evicted by whatever ran in the
// meantime), so any core may take it without a migration penalty being
// expected. Decay 0 trusts bindings forever.

// AffinityConfig parameterizes the ARR dispatcher family.
type AffinityConfig struct {
	// Quantum is the time slice in cycles, as in RRS; must be positive.
	Quantum int64
	// Window is the affinity strength: the number of queue entries a
	// free core scans for affine (or unbound) work before falling back
	// to the plain FIFO head. 0 degenerates to exactly RRS.
	Window int
	// QBatch is the number of quanta granted to a warm resume (a process
	// dispatched to the core of its previous segment). 0 and 1 both mean
	// no batching; cold dispatches always get one quantum.
	QBatch int
	// Decay is the staleness bound in cycles for last-core bindings;
	// a binding older than Decay is ignored. 0 means bindings never
	// go stale.
	Decay int64
}

// validate checks the configuration.
func (c AffinityConfig) validate() error {
	if c.Quantum <= 0 {
		return fmt.Errorf("sched: ARR quantum %d must be positive", c.Quantum)
	}
	if c.Window < 0 {
		return fmt.Errorf("sched: ARR window %d must be non-negative", c.Window)
	}
	if c.QBatch < 0 {
		return fmt.Errorf("sched: ARR quantum batch %d must be non-negative", c.QBatch)
	}
	if c.Decay < 0 {
		return fmt.Errorf("sched: ARR affinity decay %d must be non-negative", c.Decay)
	}
	return nil
}

// AffinityRR implements ARR: RRS's common FIFO ready queue and fixed
// quantum, plus cache-affinity-aware selection within a bounded
// lookahead window. Last-core bindings are fed by the engine through
// the mpsoc.SegmentObserver capability (SegmentDone), and the engine
// additionally consults AffinityHints to wake warm idle cores before
// cold ones, so a pending process is offered its previous core first
// whenever both are free at the same cycle.
//
// State is handle-dense: each process gets a small integer handle on
// first announcement, the queue holds handles, and bindings live in
// flat arrays indexed by handle. Window scans are therefore straight
// array walks — no hashing — which matters because deep windows (the
// setting that pays at 128 cores, where ready queues run hundreds of
// entries long) put a scan on every Pick.
type AffinityRR struct {
	cfg    AffinityConfig
	handle map[taskgraph.ProcID]int32 // assigned on first Ready
	ids    []taskgraph.ProcID         // handle → process
	queue  []int32                    // FIFO of handles
	// lastCore[h] is the core of h's last executed segment (-1 none);
	// lastAt[h] is the cycle that segment ended.
	lastCore []int32
	lastAt   []int64
	// biasOrder, when set via SetCoreBias, lists the machine's cores in
	// ascending placement-cost order; AffinityHints appends it after the
	// warm hints so cold dispatches wake fast/near idle cores first. Nil
	// on homogeneous machines — hint behaviour then is exactly the
	// pre-bias one.
	biasOrder []int32
}

// NewAffinityRR returns an ARR dispatcher for the configuration.
func NewAffinityRR(cfg AffinityConfig) (*AffinityRR, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &AffinityRR{cfg: cfg, handle: make(map[taskgraph.ProcID]int32)}, nil
}

// MustAffinityRR is NewAffinityRR that panics on error.
func MustAffinityRR(cfg AffinityConfig) *AffinityRR {
	a, err := NewAffinityRR(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// SetCoreBias installs the machine-model placement hook: bias ranks the
// machine's cores (lower is better, see CoreBias) and ARR thereafter
// yields the full core list in that order from AffinityHints, after the
// warm hints — so when several cores idle at the same cycle, cold work
// is offered to the fastest/nearest one first. A nil bias removes the
// hook and restores the exact pre-bias hint stream; either way the
// woken set is only reordered, never enlarged, so the engine's
// idle-offer elision stays legal and ARR-at-window-0 remains
// bit-identical to RRS on homogeneous machines.
func (a *AffinityRR) SetCoreBias(cores int, bias CoreBias) {
	if bias == nil {
		a.biasOrder = nil
		return
	}
	order := coreOrder(cores, bias)
	a.biasOrder = make([]int32, len(order))
	for i, c := range order {
		a.biasOrder[i] = int32(c)
	}
}

// Name implements mpsoc.Dispatcher.
func (a *AffinityRR) Name() string { return "ARR" }

// Config returns the dispatcher's configuration.
func (a *AffinityRR) Config() AffinityConfig { return a.cfg }

// CoreAgnostic implements mpsoc.CoreAgnostic: Pick returns a process
// whenever the queue is non-empty — affinity only biases *which* entry
// a core receives, never whether it receives one — so Pick success is
// core-independent and the engine's idle-offer elision stays legal.
func (a *AffinityRR) CoreAgnostic() bool { return true }

// enqueue appends a process's handle to the FIFO tail, assigning the
// handle on first sight.
func (a *AffinityRR) enqueue(id taskgraph.ProcID) {
	h, ok := a.handle[id]
	if !ok {
		h = int32(len(a.ids))
		a.handle[id] = h
		a.ids = append(a.ids, id)
		a.lastCore = append(a.lastCore, -1)
		a.lastAt = append(a.lastAt, 0)
	}
	a.queue = append(a.queue, h)
}

// Ready implements mpsoc.Dispatcher: new processes join the tail.
func (a *AffinityRR) Ready(id taskgraph.ProcID) { a.enqueue(id) }

// Preempted implements mpsoc.Dispatcher: expired processes rejoin the
// tail, exactly as in RRS; their last-core binding was already recorded
// by SegmentDone.
func (a *AffinityRR) Preempted(id taskgraph.ProcID) { a.enqueue(id) }

// SegmentDone implements mpsoc.SegmentObserver: the engine reports every
// executed segment's process, core, and end cycle. Completed processes
// drop their binding (they can never be dispatched again); preempted
// ones remember where — and when — they last ran.
func (a *AffinityRR) SegmentDone(id taskgraph.ProcID, core int, now int64, completed bool) {
	h, ok := a.handle[id]
	if !ok {
		return
	}
	if completed {
		a.lastCore[h] = -1
		return
	}
	a.lastCore[h] = int32(core)
	a.lastAt[h] = now
}

// fresh reports whether handle h's binding is still trusted at now.
func (a *AffinityRR) fresh(h int32, now int64) bool {
	return a.cfg.Decay == 0 || now-a.lastAt[h] <= a.cfg.Decay
}

// take removes and returns the queue entry at index i, preserving
// order. The head — every RRS-degenerate pick and the rule-3 fallback —
// pops by reslicing; only mid-window takes pay the shift.
func (a *AffinityRR) take(i int) taskgraph.ProcID {
	h := a.queue[i]
	if i == 0 {
		a.queue = a.queue[1:]
	} else {
		a.queue = append(a.queue[:i], a.queue[i+1:]...)
	}
	return a.ids[h]
}

// Pick implements mpsoc.Dispatcher. Selection within the first Window
// queue entries, in decreasing preference:
//
//  1. the first process whose fresh binding names this core — a warm
//     resume, granted QBatch quanta;
//  2. the first process with no fresh binding at all — work that is
//     cold anywhere, so running it here costs nothing extra while
//     processes bound to other (busy) cores keep waiting for them;
//  3. the FIFO head, unconditionally — bounded-window fairness: a
//     process bound to a core that never frees up is taken by whoever
//     reaches it at the head, exactly as RRS would.
//
// Both preferences resolve in one window walk. With Window 0 every pick
// is rule 3 with a single quantum: RRS.
func (a *AffinityRR) Pick(core int, now int64) (taskgraph.ProcID, int64, bool) {
	if len(a.queue) == 0 {
		return taskgraph.ProcID{}, 0, false
	}
	w := a.cfg.Window
	if w > len(a.queue) {
		w = len(a.queue)
	}
	free := -1 // first window entry with no fresh binding
	for i := 0; i < w; i++ {
		h := a.queue[i]
		if lc := a.lastCore[h]; lc >= 0 && a.fresh(h, now) {
			if int(lc) == core {
				q := a.cfg.Quantum
				if a.cfg.QBatch > 1 {
					q *= int64(a.cfg.QBatch)
				}
				return a.take(i), q, true
			}
		} else if free < 0 {
			free = i
		}
	}
	if free >= 0 {
		return a.take(free), a.cfg.Quantum, true
	}
	return a.take(0), a.cfg.Quantum, true
}

// AffinityHints implements mpsoc.AffinityHinter: yields the last cores
// of fresh-bound processes within the affinity window, in queue order,
// until yield returns false. The engine wakes those idle cores first so
// same-cycle offers reach a pending process's previous core before any
// other. With Window 0 nothing is yielded and the engine's wake order
// is untouched (part of the RRS bit-identity contract) — unless a core
// bias is installed (SetCoreBias), in which case the machine's cores
// are yielded after the warm hints in placement-cost order, steering
// cold dispatches toward fast/near idle cores.
func (a *AffinityRR) AffinityHints(now int64, yield func(core int) bool) {
	w := a.cfg.Window
	if w > len(a.queue) {
		w = len(a.queue)
	}
	for i := 0; i < w; i++ {
		h := a.queue[i]
		if a.lastCore[h] >= 0 && a.fresh(h, now) {
			if !yield(int(a.lastCore[h])) {
				return
			}
		}
	}
	for _, c := range a.biasOrder {
		if !yield(int(c)) {
			return
		}
	}
}

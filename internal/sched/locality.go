package sched

import (
	"fmt"
	"sort"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/prog"
	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

// CoreBias ranks cores for placement on a heterogeneous machine: it
// returns a placement cost for the core, and lower is better (a faster
// speed class, fewer interconnect hops to memory, or both — callers
// typically build it from mpsoc.Config.CoreCostTable). A nil CoreBias
// means the homogeneous machine: every consumer of the hook must then
// behave bit-identically to its pre-hook self, which the differential
// tests pin. Implementations must be deterministic and side-effect-free.
type CoreBias func(core int) int64

// coreOrder returns the cores in placement-preference order: ascending
// bias, ties toward the lower index. A nil bias yields identity order,
// which makes every order-driven loop below degenerate to the plain
// index scan it replaced.
func coreOrder(cores int, bias CoreBias) []int {
	order := make([]int, cores)
	for i := range order {
		order[i] = i
	}
	if bias != nil {
		sort.SliceStable(order, func(a, b int) bool {
			return bias(order[a]) < bias(order[b])
		})
	}
	return order
}

// LocalitySchedule runs the greedy heuristic of the paper's Figure 3 over
// the EPG and its sharing matrix, producing a static per-core order.
//
// Initialization: the independent processes (EPG roots) are candidates
// for the first quantum. While there are more candidates than cores, the
// candidate with the maximum total sharing with the other candidates is
// deferred back to the pool — concurrent processes should share little
// (sharers are more valuable later, as same-core successors). Note the
// paper's prose ("removes the candidates that have the maximum data
// sharing") and its pseudocode ("Σ M[p][q] is minimized") disagree; we
// follow the prose, which matches the stated goal of keeping the sharing
// between co-runners minimal.
//
// Steady state: each core repeatedly appends the ready process that
// maximizes sharing with the process it ran last. Ties break toward the
// smallest process ID. Cores are served in order of least accumulated
// work (estimated from access counts) rather than strict index order;
// with uniform process sizes this degenerates to the paper's round-robin
// service, and with heterogeneous sizes it keeps the per-core lists
// duration-balanced, which the paper's count-balanced rounds implicitly
// assume. The result is deterministic.
//
// This is the incremental formulation built for 512–1024-core scenarios:
// readiness is tracked with per-process unscheduled-predecessor counters
// and a sorted candidate array maintained as processes retire (so each
// placement scans only the ready set instead of re-sorting and
// re-filtering the whole pool), the first-quantum deferral maintains the
// per-candidate sharing row sums across removals instead of recomputing
// the O(|IN|²) totals per round, and sharing lookups go through matrix
// positions instead of map probes. It is bit-identical to the retained
// reference implementation, LocalityScheduleRescan, for every input —
// the differential tests pin both across the Table 1 apps and generated
// XL mixes.
func LocalitySchedule(g *taskgraph.Graph, m *sharing.Matrix, cores int) (*Assignment, error) {
	return LocalityScheduleBiased(g, m, cores, nil)
}

// LocalityScheduleBiased is LocalitySchedule with a machine-model
// placement hook: when bias is non-nil, cores are served in bias order
// instead of index order — the first-quantum seeds land on the
// best-ranked cores, and least-loaded ties in the steady state break
// toward the lower-bias core. The schedule structure (which processes
// run consecutively, and so the sharing the mapping phase exploits) is
// unchanged; only the assignment of per-core lists to physical cores
// shifts toward fast/near cores. A nil bias is exactly LocalitySchedule.
func LocalityScheduleBiased(g *taskgraph.Graph, m *sharing.Matrix, cores int, bias CoreBias) (*Assignment, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("sched: cores %d must be positive", cores)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("sched: nil sharing matrix")
	}

	ids := g.ProcIDs()
	n := len(ids)
	li := make(map[taskgraph.ProcID]int, n) // ID -> local index (sorted-ID order)
	for i, id := range ids {
		li[id] = i
	}

	// Per-process state, indexed locally: matrix position (-1 when the
	// matrix does not cover the process — then it shares 0 with everyone,
	// matching Matrix.Shared), estimated cost, successor lists, and
	// unscheduled-predecessor counters.
	pos := make([]int, n)
	cost := make([]int64, n)
	succs := make([][]int32, n)
	pending := make([]int32, n)
	for i, id := range ids {
		if p, ok := m.Index(id); ok {
			pos[i] = p
		} else {
			pos[i] = -1
		}
		spec := g.Process(id).Spec
		acc, err := spec.Accesses()
		if err != nil {
			return nil, err
		}
		iters, err := spec.Iterations()
		if err != nil {
			return nil, err
		}
		cost[i] = acc + iters*spec.ComputePerIter
		ss := g.Succs(id)
		lst := make([]int32, len(ss))
		for k, s := range ss {
			lst[k] = int32(li[s])
		}
		succs[i] = lst
	}
	for i := range succs {
		for _, s := range succs[i] {
			pending[s]++
		}
	}
	shared := func(a, b int) int64 {
		if pos[a] < 0 || pos[b] < 0 {
			return 0
		}
		return m.SharedAt(pos[a], pos[b])
	}

	// rank = longest remaining dependence chain. The paper's greedy
	// leaves its tie-breaks unspecified; breaking sharing ties toward the
	// deepest chain (classic list scheduling) starts critical chains
	// early instead of by accident of process numbering.
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]int, n)
	for i := len(topo) - 1; i >= 0; i-- {
		t := li[topo[i]]
		r := 0
		for _, s := range succs[t] {
			if rank[s]+1 > r {
				r = rank[s] + 1
			}
		}
		rank[t] = r
	}

	inPool := make([]bool, n)
	for i := range inPool {
		inPool[i] = true
	}

	// IN: independent processes (pending == 0, ascending index — the same
	// order g.Roots() yields), candidates for the first quantum.
	var in []int
	for i := 0; i < n; i++ {
		if pending[i] == 0 {
			in = append(in, i)
		}
	}
	for _, i := range in {
		inPool[i] = false
	}
	if len(in) > cores {
		// Defer the candidate with maximum total sharing with the others;
		// ties defer the shallowest remaining chain, keeping chain heads
		// in the first quantum. rowSum[x] = Σ_y shared(in[x], in[y]) is
		// seeded once and maintained by subtraction as victims leave, so
		// the loop is O(|IN|²) total instead of O(|IN|³).
		rowSum := make([]int64, len(in))
		for x, p := range in {
			var total int64
			for y, q := range in {
				if x != y {
					total += shared(p, q)
				}
			}
			rowSum[x] = total
		}
		for len(in) > cores {
			victim := -1
			var worst int64 = -1
			for x, p := range in {
				total := rowSum[x]
				switch {
				case total > worst:
					worst = total
					victim = x
				case total == worst && victim >= 0 && rank[p] < rank[in[victim]]:
					victim = x
				}
			}
			deferred := in[victim]
			in = append(in[:victim], in[victim+1:]...)
			rowSum = append(rowSum[:victim], rowSum[victim+1:]...)
			for x, p := range in {
				rowSum[x] -= shared(p, deferred)
			}
			inPool[deferred] = true
		}
	}

	asg := &Assignment{PerCore: make([][]taskgraph.ProcID, cores)}
	load := make([]int64, cores)
	last := make([]int, cores) // local index of each core's last process
	for k := range last {
		last[k] = -1
	}
	remaining := 0
	for _, p := range inPool {
		if p {
			remaining++
		}
	}

	// ready: the candidate ordering — pool processes whose predecessors
	// are all scheduled, as ascending local indices (≡ ascending ProcID).
	// Seeded with the deferred roots, then maintained as processes
	// retire: scheduling a process decrements its successors' pending
	// counters, and counters hitting zero insert in order.
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if inPool[i] && pending[i] == 0 {
			ready = append(ready, i)
		}
	}
	retire := func(i int) {
		for _, s := range succs[i] {
			pending[s]--
			if pending[s] == 0 && inPool[s] {
				at := sort.SearchInts(ready, int(s))
				ready = append(ready, 0)
				copy(ready[at+1:], ready[at:])
				ready[at] = int(s)
			}
		}
	}
	// order is the core service sequence: identity for the homogeneous
	// machine, bias-ascending for heterogeneous ones. Seeds fill the
	// best-ranked cores first.
	order := coreOrder(cores, bias)
	for x, i := range in {
		k := order[x]
		asg.PerCore[k] = append(asg.PerCore[k], ids[i])
		load[k] += cost[i]
		last[k] = i
		retire(i)
	}

	// Main loop: the least-loaded core (ties toward the lower index)
	// appends the ready process with maximum sharing with its last one;
	// sharing ties break toward the deepest remaining chain, then the
	// smallest ID (the ready array is scanned in ID order). One placement
	// costs O(|ready| + cores + out-degree).
	for remaining > 0 {
		if len(ready) == 0 {
			return nil, fmt.Errorf("sched: no eligible process among %d remaining (graph inconsistent?)", remaining)
		}
		// Least-loaded scan walks the service sequence, so load ties break
		// toward the lower-bias core (lower index when unbiased).
		k := order[0]
		for _, c := range order[1:] {
			if load[c] < load[k] {
				k = c
			}
		}
		prev := last[k]
		bestX := -1
		var bestShare int64 = -1
		bestRank := -1
		for x, q := range ready {
			var share int64
			if prev >= 0 {
				share = shared(prev, q)
			}
			if bestX < 0 || share > bestShare || (share == bestShare && rank[q] > bestRank) {
				bestX, bestShare, bestRank = x, share, rank[q]
			}
		}
		q := ready[bestX]
		ready = append(ready[:bestX], ready[bestX+1:]...)
		asg.PerCore[k] = append(asg.PerCore[k], ids[q])
		load[k] += cost[q]
		last[k] = q
		inPool[q] = false
		remaining--
		retire(q)
	}
	return asg, nil
}

// NewLS builds the LS dispatcher: the Figure 3 schedule replayed
// statically.
func NewLS(g *taskgraph.Graph, m *sharing.Matrix, cores int) (*Static, *Assignment, error) {
	asg, err := LocalitySchedule(g, m, cores)
	if err != nil {
		return nil, nil, err
	}
	return NewStatic("LS", asg), asg, nil
}

// MappingResult carries what the LSM pipeline derived beyond the
// schedule.
type MappingResult struct {
	// Assignment is the LS schedule the mapping phase was derived from.
	Assignment *Assignment
	// Conflicts is the co-access conflict matrix of Figure 5.
	Conflicts *layout.ConflictMatrix
	// Threshold is the conflict weight above which pairs were separated.
	Threshold int64
	// Banks records the chosen half-page bank per re-laid-out array.
	Banks map[*prog.Array]int64
	// Layout is the transformed address map handed to the simulator.
	Layout *layout.Relayouted
	// PressureBefore and PressureAfter record the static thrash pressure
	// of the base and final layouts.
	PressureBefore int64
	// PressureAfter is the final layout's pressure (see PressureBefore).
	PressureAfter int64
	// Verified reports whether the mapping achieved a strict improvement
	// (otherwise Banks is empty and Layout behaves like the base layout —
	// the mapping phase must never make things worse).
	Verified bool
}

// NewLSM builds the LSM dispatcher: the LS schedule plus the data-mapping
// phase of Figures 4–5. The conflict matrix is computed over co-access
// groups — the arrays of each single process, and the merged arrays of
// each pair of processes scheduled successively on one core — which makes
// Figure 5's eligibility condition implicit: pairs never co-accessed
// carry zero weight. The greedy selection then re-lays the heavy pairs
// out into opposite cache-set banks, and the transformed address map is
// returned for simulation.
//
// asg may carry a precomputed LS assignment for (g, cores) — callers with
// a scheduling-analysis cache (experiment.cachedLS) pass theirs so LS+LSM
// pipelines run LocalitySchedule once per (graph, cores) instead of once
// per policy. When asg is nil it is computed here from m; when asg is
// supplied, m is not consulted (the mapping phase depends only on the
// assignment and the data spaces) and may be nil.
func NewLSM(g *taskgraph.Graph, m *sharing.Matrix, asg *Assignment, cores int,
	base layout.AddressMap, geom cache.Geometry, an *sharing.Analyzer) (*Static, *MappingResult, error) {

	if asg == nil {
		var err error
		asg, err = LocalitySchedule(g, m, cores)
		if err != nil {
			return nil, nil, err
		}
	}
	if an == nil {
		an = sharing.NewAnalyzer()
	}

	perProc := make(map[taskgraph.ProcID]layout.Footprints, g.Len())
	for _, p := range g.Processes() {
		ds, err := an.DataSpace(p.Spec)
		if err != nil {
			return nil, nil, err
		}
		perProc[p.ID] = layout.Footprints(ds)
	}

	// Single-process groups: arrays referenced in lockstep, whose set
	// overflows thrash on every iteration. Successive-pair groups: arrays
	// of processes adjacent on one core, whose conflicts evict warm data
	// between the two executions.
	var procGroups []layout.VerifyGroup
	var allGroups []layout.Footprints
	for _, id := range g.ProcIDs() {
		refs := make(map[*prog.Array]int)
		for _, r := range g.Process(id).Spec.Refs {
			refs[r.Array]++
		}
		procGroups = append(procGroups, layout.VerifyGroup{FP: perProc[id], Refs: refs})
		allGroups = append(allGroups, perProc[id])
	}
	for _, pair := range asg.SuccessivePairs() {
		allGroups = append(allGroups, perProc[pair[0]].Merge(perProc[pair[1]]))
	}

	cm, err := layout.Conflicts(allGroups, base, geom)
	if err != nil {
		return nil, nil, err
	}
	threshold := cm.AverageThreshold()
	// Greedy selection with per-step pressure verification (engineering
	// addition over the paper): a bank assignment is kept only when it
	// strictly lowers the lockstep thrash pressure of the single-process
	// groups, guarding against the transform creating conflicts where
	// none existed.
	banks, pBefore, pAfter, err := layout.SelectRelayoutVerified(procGroups, cm, base, threshold, geom)
	if err != nil {
		return nil, nil, err
	}
	rl, err := layout.ApplyRelayout(base, geom, banks)
	if err != nil {
		return nil, nil, err
	}
	res := &MappingResult{
		Assignment:     asg,
		Conflicts:      cm,
		Threshold:      threshold,
		Banks:          banks,
		Layout:         rl,
		PressureBefore: pBefore,
		PressureAfter:  pAfter,
		Verified:       pAfter < pBefore,
	}
	return NewStatic("LSM", asg), res, nil
}

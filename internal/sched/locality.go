package sched

import (
	"cmp"
	"fmt"
	"slices"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/prog"
	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

// LocalitySchedule runs the greedy heuristic of the paper's Figure 3 over
// the EPG and its sharing matrix, producing a static per-core order.
//
// Initialization: the independent processes (EPG roots) are candidates
// for the first quantum. While there are more candidates than cores, the
// candidate with the maximum total sharing with the other candidates is
// deferred back to the pool — concurrent processes should share little
// (sharers are more valuable later, as same-core successors). Note the
// paper's prose ("removes the candidates that have the maximum data
// sharing") and its pseudocode ("Σ M[p][q] is minimized") disagree; we
// follow the prose, which matches the stated goal of keeping the sharing
// between co-runners minimal.
//
// Steady state: each core repeatedly appends the ready process that
// maximizes sharing with the process it ran last. Ties break toward the
// smallest process ID. Cores are served in order of least accumulated
// work (estimated from access counts) rather than strict index order;
// with uniform process sizes this degenerates to the paper's round-robin
// service, and with heterogeneous sizes it keeps the per-core lists
// duration-balanced, which the paper's count-balanced rounds implicitly
// assume. The result is deterministic.
func LocalitySchedule(g *taskgraph.Graph, m *sharing.Matrix, cores int) (*Assignment, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("sched: cores %d must be positive", cores)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("sched: nil sharing matrix")
	}

	cost := make(map[taskgraph.ProcID]int64, g.Len())
	for _, p := range g.Processes() {
		acc, err := p.Spec.Accesses()
		if err != nil {
			return nil, err
		}
		iters, err := p.Spec.Iterations()
		if err != nil {
			return nil, err
		}
		cost[p.ID] = acc + iters*p.Spec.ComputePerIter
	}

	// rank = longest remaining dependence chain. The paper's greedy
	// leaves its tie-breaks unspecified; breaking sharing ties toward the
	// deepest chain (classic list scheduling) starts critical chains
	// early instead of by accident of process numbering.
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make(map[taskgraph.ProcID]int, len(topo))
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		r := 0
		for _, s := range g.Succs(id) {
			if rank[s]+1 > r {
				r = rank[s] + 1
			}
		}
		rank[id] = r
	}

	scheduled := make(map[taskgraph.ProcID]bool, g.Len())
	inPool := make(map[taskgraph.ProcID]bool, g.Len())
	for _, id := range g.ProcIDs() {
		inPool[id] = true
	}

	// IN: independent processes, candidates for the first quantum.
	in := g.Roots()
	for _, id := range in {
		delete(inPool, id)
	}
	for len(in) > cores {
		// Defer the candidate with maximum total sharing with the others;
		// ties defer the shallowest remaining chain, keeping chain heads
		// in the first quantum.
		victim := -1
		var worst int64 = -1
		for i, p := range in {
			var total int64
			for j, q := range in {
				if i != j {
					total += m.Shared(p, q)
				}
			}
			switch {
			case total > worst:
				worst = total
				victim = i
			case total == worst && victim >= 0 && rank[p] < rank[in[victim]]:
				victim = i
			}
		}
		deferred := in[victim]
		in = append(in[:victim], in[victim+1:]...)
		inPool[deferred] = true
	}

	asg := &Assignment{PerCore: make([][]taskgraph.ProcID, cores)}
	load := make([]int64, cores)
	for i, id := range in {
		asg.PerCore[i] = append(asg.PerCore[i], id)
		load[i] += cost[id]
		scheduled[id] = true
	}

	// Main loop: the least-loaded core picks the eligible process with
	// maximum sharing with its previously scheduled process. The order and
	// candidate scratch slices are allocated once and reused across
	// iterations (the loop runs once per process).
	remaining := len(inPool)
	order := make([]int, cores)
	candidates := make([]taskgraph.ProcID, 0, remaining)
	for remaining > 0 {
		progress := false
		for _, k := range coresByLoad(load, order) {
			q, ok := pickNext(g, m, rank, asg.PerCore[k], inPool, scheduled, &candidates)
			if !ok {
				continue
			}
			asg.PerCore[k] = append(asg.PerCore[k], q)
			load[k] += cost[q]
			scheduled[q] = true
			delete(inPool, q)
			remaining--
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("sched: no eligible process among %d remaining (graph inconsistent?)", remaining)
		}
	}
	return asg, nil
}

// coresByLoad fills idx with core indices ordered by ascending
// accumulated load, ties toward the lower index.
func coresByLoad(load []int64, idx []int) []int {
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if c := cmp.Compare(load[a], load[b]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	return idx
}

// pickNext selects the unscheduled process all of whose predecessors are
// scheduled, maximizing sharing with the core's last process. Sharing
// ties break toward the deepest remaining chain, then the smallest ID.
// scratch is a reusable candidate buffer (see sortedIDs).
func pickNext(g *taskgraph.Graph, m *sharing.Matrix, rank map[taskgraph.ProcID]int,
	coreList []taskgraph.ProcID, pool map[taskgraph.ProcID]bool,
	scheduled map[taskgraph.ProcID]bool, scratch *[]taskgraph.ProcID) (taskgraph.ProcID, bool) {

	var prev taskgraph.ProcID
	hasPrev := len(coreList) > 0
	if hasPrev {
		prev = coreList[len(coreList)-1]
	}
	best := taskgraph.ProcID{}
	var bestShare int64 = -1
	bestRank := -1
	found := false
	for _, q := range sortedIDs(pool, scratch) {
		eligible := true
		for _, p := range g.Preds(q) {
			if !scheduled[p] {
				eligible = false
				break
			}
		}
		if !eligible {
			continue
		}
		var share int64
		if hasPrev {
			share = m.Shared(prev, q)
		}
		if !found || share > bestShare || (share == bestShare && rank[q] > bestRank) {
			best, bestShare, bestRank, found = q, share, rank[q], true
		}
	}
	return best, found
}

func sortedIDs(pool map[taskgraph.ProcID]bool, scratch *[]taskgraph.ProcID) []taskgraph.ProcID {
	out := (*scratch)[:0]
	for id := range pool {
		out = append(out, id)
	}
	slices.SortFunc(out, func(a, b taskgraph.ProcID) int {
		if a.Less(b) {
			return -1
		}
		if b.Less(a) {
			return 1
		}
		return 0
	})
	*scratch = out
	return out
}

// NewLS builds the LS dispatcher: the Figure 3 schedule replayed
// statically.
func NewLS(g *taskgraph.Graph, m *sharing.Matrix, cores int) (*Static, *Assignment, error) {
	asg, err := LocalitySchedule(g, m, cores)
	if err != nil {
		return nil, nil, err
	}
	return NewStatic("LS", asg), asg, nil
}

// MappingResult carries what the LSM pipeline derived beyond the
// schedule.
type MappingResult struct {
	Assignment *Assignment
	Conflicts  *layout.ConflictMatrix
	Threshold  int64
	Banks      map[*prog.Array]int64
	Layout     *layout.Relayouted
	// PressureBefore/After record the static thrash pressure of the base
	// and final layouts; Verified reports whether the mapping achieved a
	// strict improvement (otherwise Banks is empty and Layout behaves
	// like the base layout — the mapping phase must never make things
	// worse).
	PressureBefore int64
	PressureAfter  int64
	Verified       bool
}

// NewLSM builds the LSM dispatcher: the LS schedule plus the data-mapping
// phase of Figures 4–5. The conflict matrix is computed over co-access
// groups — the arrays of each single process, and the merged arrays of
// each pair of processes scheduled successively on one core — which makes
// Figure 5's eligibility condition implicit: pairs never co-accessed
// carry zero weight. The greedy selection then re-lays the heavy pairs
// out into opposite cache-set banks, and the transformed address map is
// returned for simulation.
func NewLSM(g *taskgraph.Graph, m *sharing.Matrix, cores int,
	base layout.AddressMap, geom cache.Geometry, an *sharing.Analyzer) (*Static, *MappingResult, error) {

	asg, err := LocalitySchedule(g, m, cores)
	if err != nil {
		return nil, nil, err
	}
	if an == nil {
		an = sharing.NewAnalyzer()
	}

	perProc := make(map[taskgraph.ProcID]layout.Footprints, g.Len())
	for _, p := range g.Processes() {
		ds, err := an.DataSpace(p.Spec)
		if err != nil {
			return nil, nil, err
		}
		perProc[p.ID] = layout.Footprints(ds)
	}

	// Single-process groups: arrays referenced in lockstep, whose set
	// overflows thrash on every iteration. Successive-pair groups: arrays
	// of processes adjacent on one core, whose conflicts evict warm data
	// between the two executions.
	var procGroups []layout.VerifyGroup
	var allGroups []layout.Footprints
	for _, id := range g.ProcIDs() {
		refs := make(map[*prog.Array]int)
		for _, r := range g.Process(id).Spec.Refs {
			refs[r.Array]++
		}
		procGroups = append(procGroups, layout.VerifyGroup{FP: perProc[id], Refs: refs})
		allGroups = append(allGroups, perProc[id])
	}
	for _, pair := range asg.SuccessivePairs() {
		allGroups = append(allGroups, perProc[pair[0]].Merge(perProc[pair[1]]))
	}

	cm, err := layout.Conflicts(allGroups, base, geom)
	if err != nil {
		return nil, nil, err
	}
	threshold := cm.AverageThreshold()
	// Greedy selection with per-step pressure verification (engineering
	// addition over the paper): a bank assignment is kept only when it
	// strictly lowers the lockstep thrash pressure of the single-process
	// groups, guarding against the transform creating conflicts where
	// none existed.
	banks, pBefore, pAfter, err := layout.SelectRelayoutVerified(procGroups, cm, base, threshold, geom)
	if err != nil {
		return nil, nil, err
	}
	rl, err := layout.ApplyRelayout(base, geom, banks)
	if err != nil {
		return nil, nil, err
	}
	res := &MappingResult{
		Assignment:     asg,
		Conflicts:      cm,
		Threshold:      threshold,
		Banks:          banks,
		Layout:         rl,
		PressureBefore: pBefore,
		PressureAfter:  pAfter,
		Verified:       pAfter < pBefore,
	}
	return NewStatic("LSM", asg), res, nil
}

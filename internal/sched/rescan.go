package sched

import (
	"cmp"
	"fmt"
	"slices"

	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

// LocalityScheduleRescan is the reference implementation of the Figure 3
// greedy: it re-derives the candidate set from scratch for every
// placement (a full pool scan with per-candidate predecessor checks) and
// recomputes the pairwise sharing totals of the first-quantum deferral
// loop each round. It is O(P² log P) in the process count and is kept
// verbatim as the differential oracle for the incremental
// LocalitySchedule, which must be bit-identical to it (the goldens in
// testdata/ pin both).
func LocalityScheduleRescan(g *taskgraph.Graph, m *sharing.Matrix, cores int) (*Assignment, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("sched: cores %d must be positive", cores)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("sched: nil sharing matrix")
	}

	cost := make(map[taskgraph.ProcID]int64, g.Len())
	for _, p := range g.Processes() {
		acc, err := p.Spec.Accesses()
		if err != nil {
			return nil, err
		}
		iters, err := p.Spec.Iterations()
		if err != nil {
			return nil, err
		}
		cost[p.ID] = acc + iters*p.Spec.ComputePerIter
	}

	// rank = longest remaining dependence chain (see LocalitySchedule).
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make(map[taskgraph.ProcID]int, len(topo))
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		r := 0
		for _, s := range g.Succs(id) {
			if rank[s]+1 > r {
				r = rank[s] + 1
			}
		}
		rank[id] = r
	}

	scheduled := make(map[taskgraph.ProcID]bool, g.Len())
	inPool := make(map[taskgraph.ProcID]bool, g.Len())
	for _, id := range g.ProcIDs() {
		inPool[id] = true
	}

	// IN: independent processes, candidates for the first quantum.
	in := g.Roots()
	for _, id := range in {
		delete(inPool, id)
	}
	for len(in) > cores {
		// Defer the candidate with maximum total sharing with the others;
		// ties defer the shallowest remaining chain, keeping chain heads
		// in the first quantum.
		victim := -1
		var worst int64 = -1
		for i, p := range in {
			var total int64
			for j, q := range in {
				if i != j {
					total += m.Shared(p, q)
				}
			}
			switch {
			case total > worst:
				worst = total
				victim = i
			case total == worst && victim >= 0 && rank[p] < rank[in[victim]]:
				victim = i
			}
		}
		deferred := in[victim]
		in = append(in[:victim], in[victim+1:]...)
		inPool[deferred] = true
	}

	asg := &Assignment{PerCore: make([][]taskgraph.ProcID, cores)}
	load := make([]int64, cores)
	for i, id := range in {
		asg.PerCore[i] = append(asg.PerCore[i], id)
		load[i] += cost[id]
		scheduled[id] = true
	}

	// Main loop: the least-loaded core picks the eligible process with
	// maximum sharing with its previously scheduled process. The order and
	// candidate scratch slices are allocated once and reused across
	// iterations (the loop runs once per process).
	remaining := len(inPool)
	order := make([]int, cores)
	candidates := make([]taskgraph.ProcID, 0, remaining)
	for remaining > 0 {
		progress := false
		for _, k := range coresByLoad(load, order) {
			q, ok := pickNext(g, m, rank, asg.PerCore[k], inPool, scheduled, &candidates)
			if !ok {
				continue
			}
			asg.PerCore[k] = append(asg.PerCore[k], q)
			load[k] += cost[q]
			scheduled[q] = true
			delete(inPool, q)
			remaining--
			progress = true
			break
		}
		if !progress {
			return nil, fmt.Errorf("sched: no eligible process among %d remaining (graph inconsistent?)", remaining)
		}
	}
	return asg, nil
}

// coresByLoad fills idx with core indices ordered by ascending
// accumulated load, ties toward the lower index.
func coresByLoad(load []int64, idx []int) []int {
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if c := cmp.Compare(load[a], load[b]); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	return idx
}

// pickNext selects the unscheduled process all of whose predecessors are
// scheduled, maximizing sharing with the core's last process. Sharing
// ties break toward the deepest remaining chain, then the smallest ID.
// scratch is a reusable candidate buffer (see sortedIDs).
func pickNext(g *taskgraph.Graph, m *sharing.Matrix, rank map[taskgraph.ProcID]int,
	coreList []taskgraph.ProcID, pool map[taskgraph.ProcID]bool,
	scheduled map[taskgraph.ProcID]bool, scratch *[]taskgraph.ProcID) (taskgraph.ProcID, bool) {

	var prev taskgraph.ProcID
	hasPrev := len(coreList) > 0
	if hasPrev {
		prev = coreList[len(coreList)-1]
	}
	best := taskgraph.ProcID{}
	var bestShare int64 = -1
	bestRank := -1
	found := false
	for _, q := range sortedIDs(pool, scratch) {
		eligible := true
		for _, p := range g.Preds(q) {
			if !scheduled[p] {
				eligible = false
				break
			}
		}
		if !eligible {
			continue
		}
		var share int64
		if hasPrev {
			share = m.Shared(prev, q)
		}
		if !found || share > bestShare || (share == bestShare && rank[q] > bestRank) {
			best, bestShare, bestRank, found = q, share, rank[q], true
		}
	}
	return best, found
}

func sortedIDs(pool map[taskgraph.ProcID]bool, scratch *[]taskgraph.ProcID) []taskgraph.ProcID {
	out := (*scratch)[:0]
	for id := range pool {
		out = append(out, id)
	}
	slices.SortFunc(out, func(a, b taskgraph.ProcID) int {
		if a.Less(b) {
			return -1
		}
		if b.Less(a) {
			return 1
		}
		return 0
	})
	*scratch = out
	return out
}

// Package sched implements the paper's four process scheduling strategies
// (Section 4):
//
//   - RS: random scheduling — a free core picks a uniformly random ready
//     process and runs it to completion.
//   - RRS: round-robin scheduling — preemptive FCFS over one common FIFO
//     ready queue with a fixed time quantum.
//   - LS: locality-aware scheduling — the greedy heuristic of Figure 3
//     driven by the inter-process sharing matrix.
//   - LSM: LS plus the data-mapping phase of Figures 4–5, which re-lays
//     out conflicting arrays into disjoint cache-set banks.
//
// RS and RRS are dynamic policies; LS and LSM compute a static per-core
// order offline and replay it, waiting when the next pinned process is
// not yet dependence-ready.
package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"locsched/internal/taskgraph"
)

// DefaultQuantum is the RRS time slice in cycles (50µs at the paper's
// 200 MHz clock).
const DefaultQuantum int64 = 10000

// Random implements RS. A seed makes runs reproducible.
type Random struct {
	pool []taskgraph.ProcID // kept sorted for determinism
	rng  *rand.Rand
}

// NewRandom returns an RS dispatcher.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements mpsoc.Dispatcher.
func (r *Random) Name() string { return "RS" }

// CoreAgnostic implements mpsoc.CoreAgnostic: the pool is global, any
// core can take any ready process.
func (r *Random) CoreAgnostic() bool { return true }

// Ready implements mpsoc.Dispatcher.
func (r *Random) Ready(id taskgraph.ProcID) { r.pool = insertSorted(r.pool, id) }

// Preempted implements mpsoc.Dispatcher (RS never preempts, but a
// returned process goes back to the pool).
func (r *Random) Preempted(id taskgraph.ProcID) { r.pool = insertSorted(r.pool, id) }

// Pick implements mpsoc.Dispatcher: uniform random ready process, run to
// completion.
func (r *Random) Pick(core int, now int64) (taskgraph.ProcID, int64, bool) {
	if len(r.pool) == 0 {
		return taskgraph.ProcID{}, 0, false
	}
	i := r.rng.Intn(len(r.pool))
	id := r.pool[i]
	r.pool = append(r.pool[:i], r.pool[i+1:]...)
	return id, 0, true
}

// RoundRobin implements RRS: one common FIFO ready queue, fixed quantum,
// preempted processes rejoin the tail (and may resume on any core).
type RoundRobin struct {
	queue   []taskgraph.ProcID
	quantum int64
}

// NewRoundRobin returns an RRS dispatcher; quantum must be positive (use
// DefaultQuantum for the paper's setting).
func NewRoundRobin(quantum int64) (*RoundRobin, error) {
	if quantum <= 0 {
		return nil, fmt.Errorf("sched: RRS quantum %d must be positive", quantum)
	}
	return &RoundRobin{quantum: quantum}, nil
}

// MustRoundRobin is NewRoundRobin that panics on error.
func MustRoundRobin(quantum int64) *RoundRobin {
	r, err := NewRoundRobin(quantum)
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements mpsoc.Dispatcher.
func (r *RoundRobin) Name() string { return "RRS" }

// CoreAgnostic implements mpsoc.CoreAgnostic: the ready queue is common
// to all cores.
func (r *RoundRobin) CoreAgnostic() bool { return true }

// Ready implements mpsoc.Dispatcher: new processes join the tail.
func (r *RoundRobin) Ready(id taskgraph.ProcID) { r.queue = append(r.queue, id) }

// Preempted implements mpsoc.Dispatcher: expired processes rejoin the tail.
func (r *RoundRobin) Preempted(id taskgraph.ProcID) { r.queue = append(r.queue, id) }

// Pick implements mpsoc.Dispatcher: head of the common queue, with the
// configured quantum.
func (r *RoundRobin) Pick(core int, now int64) (taskgraph.ProcID, int64, bool) {
	if len(r.queue) == 0 {
		return taskgraph.ProcID{}, 0, false
	}
	id := r.queue[0]
	r.queue = r.queue[1:]
	return id, r.quantum, true
}

// Assignment is a static schedule: an ordered process list per core.
type Assignment struct {
	PerCore [][]taskgraph.ProcID
}

// Cores returns the number of cores in the assignment.
func (a *Assignment) Cores() int { return len(a.PerCore) }

// Len returns the total number of scheduled processes.
func (a *Assignment) Len() int {
	n := 0
	for _, l := range a.PerCore {
		n += len(l)
	}
	return n
}

// CoreOf returns the core a process is pinned to, or -1.
func (a *Assignment) CoreOf(id taskgraph.ProcID) int {
	for c, l := range a.PerCore {
		for _, p := range l {
			if p == id {
				return c
			}
		}
	}
	return -1
}

// SuccessivePairs returns every (earlier, later) pair of processes
// adjacent on the same core — the pairs whose sharing LS maximizes and
// whose conflicts LSM eliminates.
func (a *Assignment) SuccessivePairs() [][2]taskgraph.ProcID {
	var out [][2]taskgraph.ProcID
	for _, l := range a.PerCore {
		for i := 1; i < len(l); i++ {
			out = append(out, [2]taskgraph.ProcID{l[i-1], l[i]})
		}
	}
	return out
}

func (a *Assignment) String() string {
	var b strings.Builder
	for c, l := range a.PerCore {
		fmt.Fprintf(&b, "core %d:", c)
		for _, id := range l {
			fmt.Fprintf(&b, " %v", id)
		}
		if c < len(a.PerCore)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// StaticMode selects how rigidly a Static dispatcher follows its
// assignment at runtime.
type StaticMode int

const (
	// StealWhenIdle (the default for LS/LSM) runs the core's earliest
	// ready entry; when the core's whole list is blocked or exhausted it
	// steals the deepest ready entry from another core's list. Locality
	// placement is preserved whenever dependences allow; idle cores are
	// not. This is how an OS would deploy the Figure 3 order — the figure
	// fixes per-core priorities, not idle waiting.
	StealWhenIdle StaticMode = iota
	// SkipBlocked runs the core's earliest ready entry but never steals.
	SkipBlocked
	// StrictOrder stalls the core until its exact next entry is ready.
	StrictOrder
)

func (m StaticMode) String() string {
	switch m {
	case StealWhenIdle:
		return "steal"
	case SkipBlocked:
		return "skip"
	case StrictOrder:
		return "strict"
	}
	return fmt.Sprintf("StaticMode(%d)", int(m))
}

// Static replays an Assignment: core k draws from its own list per the
// configured mode. LS and LSM are Static dispatchers over
// locality-derived assignments.
//
// State is positional: each process's (core, index) is resolved once at
// construction, and readiness/taken are flat bit slices with per-core
// ready counters. Pick therefore costs O(own list) when local work is
// ready and O(cores) — integer loads, no hashing — when it must steal
// or fail, which is what large machines hammer: the engine re-offers
// every idle core on every completion, so failed picks dominate at 128
// cores.
type Static struct {
	name       string
	perCore    [][]taskgraph.ProcID
	pos        map[taskgraph.ProcID]staticPos
	taken      [][]bool
	ready      [][]bool
	readyCount []int // ready-and-not-taken entries per core
	readyTotal int
	head       []int // per-core index of the first non-taken entry
	mode       StaticMode
}

type staticPos struct{ core, idx int }

// NewStatic wraps an assignment as a dispatcher in the default
// StealWhenIdle mode.
func NewStatic(name string, a *Assignment) *Static {
	return NewStaticMode(name, a, StealWhenIdle)
}

// NewStaticStrict wraps an assignment as a strictly in-order dispatcher
// (each core waits for its exact next entry).
func NewStaticStrict(name string, a *Assignment) *Static {
	return NewStaticMode(name, a, StrictOrder)
}

// NewStaticMode wraps an assignment as a dispatcher with an explicit
// runtime mode.
func NewStaticMode(name string, a *Assignment, mode StaticMode) *Static {
	per := make([][]taskgraph.ProcID, len(a.PerCore))
	s := &Static{
		name:       name,
		perCore:    per,
		pos:        make(map[taskgraph.ProcID]staticPos),
		taken:      make([][]bool, len(a.PerCore)),
		ready:      make([][]bool, len(a.PerCore)),
		readyCount: make([]int, len(a.PerCore)),
		head:       make([]int, len(a.PerCore)),
		mode:       mode,
	}
	for c, l := range a.PerCore {
		per[c] = append([]taskgraph.ProcID(nil), l...)
		s.taken[c] = make([]bool, len(l))
		s.ready[c] = make([]bool, len(l))
		for i, id := range l {
			s.pos[id] = staticPos{core: c, idx: i}
		}
	}
	return s
}

// Name implements mpsoc.Dispatcher.
func (s *Static) Name() string { return s.name }

// CoreAgnostic implements mpsoc.CoreAgnostic: under StealWhenIdle every
// ready entry is reachable from every core (own list or steal), so Pick
// success is core-independent. The skip and strict modes bind work to
// cores and must keep receiving every offer.
func (s *Static) CoreAgnostic() bool { return s.mode == StealWhenIdle }

// Mode returns the runtime mode.
func (s *Static) Mode() StaticMode { return s.mode }

// Ready implements mpsoc.Dispatcher. Processes outside the assignment
// are ignored (they can never be picked, as before).
func (s *Static) Ready(id taskgraph.ProcID) {
	p, ok := s.pos[id]
	if !ok {
		return
	}
	if !s.ready[p.core][p.idx] {
		s.ready[p.core][p.idx] = true
		s.readyCount[p.core]++
		s.readyTotal++
	}
}

// take claims the (always ready) entry at a position.
func (s *Static) take(c, i int) {
	s.taken[c][i] = true
	s.readyCount[c]--
	s.readyTotal--
}

// Preempted implements mpsoc.Dispatcher. Static schedules never preempt;
// a hand-back is a bug in the runtime configuration.
func (s *Static) Preempted(id taskgraph.ProcID) {
	panic(fmt.Sprintf("sched: static policy %s got preempted process %v", s.name, id))
}

// Pick implements mpsoc.Dispatcher per the configured mode.
func (s *Static) Pick(core int, now int64) (taskgraph.ProcID, int64, bool) {
	if core >= len(s.perCore) || s.readyTotal == 0 {
		return taskgraph.ProcID{}, 0, false
	}
	l := s.perCore[core]
	h := s.head[core]
	for h < len(l) && s.taken[core][h] {
		h++
	}
	s.head[core] = h
	if s.readyCount[core] > 0 {
		for i := h; i < len(l); i++ {
			if s.taken[core][i] {
				continue
			}
			if s.ready[core][i] {
				s.take(core, i)
				return l[i], 0, true
			}
			if s.mode == StrictOrder {
				return taskgraph.ProcID{}, 0, false
			}
		}
	} else if s.mode == StrictOrder {
		// The exact next entry (if any) is not ready.
		return taskgraph.ProcID{}, 0, false
	}
	if s.mode != StealWhenIdle {
		return taskgraph.ProcID{}, 0, false
	}
	// Steal: take the deepest ready entry of another core's list — the
	// entry furthest from running there, so the disruption to imminent
	// locality chains is minimal. Core order breaks ties.
	for c := range s.perCore {
		if c == core || s.readyCount[c] == 0 {
			continue
		}
		lc := s.perCore[c]
		for i := len(lc) - 1; i >= 0; i-- {
			if !s.taken[c][i] && s.ready[c][i] {
				s.take(c, i)
				return lc[i], 0, true
			}
		}
	}
	return taskgraph.ProcID{}, 0, false
}

func insertSorted(ids []taskgraph.ProcID, id taskgraph.ProcID) []taskgraph.ProcID {
	i := sort.Search(len(ids), func(i int) bool { return id.Less(ids[i]) })
	ids = append(ids, taskgraph.ProcID{})
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

package sched

import (
	"testing"
)

func TestAffinityConfigValidation(t *testing.T) {
	for _, bad := range []AffinityConfig{
		{Quantum: 0},
		{Quantum: -5},
		{Quantum: 100, Window: -1},
		{Quantum: 100, QBatch: -1},
		{Quantum: 100, Decay: -1},
	} {
		if _, err := NewAffinityRR(bad); err == nil {
			t.Errorf("config %+v: want error, got nil", bad)
		}
	}
	if _, err := NewAffinityRR(AffinityConfig{Quantum: 100}); err != nil {
		t.Errorf("minimal config: %v", err)
	}
}

// TestAffinityZeroWindowIsRRS: with Window 0 every Pick must follow the
// exact RRS protocol — FIFO head, single quantum — regardless of what
// the affinity bookkeeping has recorded, and no hints are yielded.
func TestAffinityZeroWindowIsRRS(t *testing.T) {
	arr := MustAffinityRR(AffinityConfig{Quantum: 500, Window: 0, QBatch: 8})
	rrs := MustRoundRobin(500)
	for i := 0; i < 5; i++ {
		arr.Ready(pid(0, i))
		rrs.Ready(pid(0, i))
	}
	// Bindings exist but must be ignored at window 0.
	arr.SegmentDone(pid(0, 2), 3, 100, false)
	arr.SegmentDone(pid(0, 4), 0, 100, false)
	for core := 0; core < 5; core++ {
		aid, aq, aok := arr.Pick(core, 200)
		rid, rq, rok := rrs.Pick(core, 200)
		if aid != rid || aq != rq || aok != rok {
			t.Fatalf("core %d: ARR pick (%v,%d,%v) != RRS pick (%v,%d,%v)",
				core, aid, aq, aok, rid, rq, rok)
		}
	}
	hinted := false
	arr.AffinityHints(200, func(core int) bool { hinted = true; return true })
	if hinted {
		t.Error("window-0 ARR yielded affinity hints")
	}
}

// TestAffinityWarmPick: a core scanning its window takes the process
// bound to it — with the batched quantum — over earlier queue entries.
func TestAffinityWarmPick(t *testing.T) {
	arr := MustAffinityRR(AffinityConfig{Quantum: 500, Window: 3, QBatch: 4})
	for i := 0; i < 4; i++ {
		arr.Ready(pid(0, i))
	}
	arr.SegmentDone(pid(0, 1), 7, 1000, false) // pid 1 last ran on core 7

	id, q, ok := arr.Pick(7, 1100)
	if !ok || id != pid(0, 1) {
		t.Fatalf("core 7 picked %v, want warm process %v", id, pid(0, 1))
	}
	if q != 2000 {
		t.Errorf("warm resume quantum = %d, want 4×500", q)
	}

	// A different core must not receive the still-fresh bound process:
	// pid 0 is unbound and first in the window.
	id, q, ok = arr.Pick(3, 1100)
	if !ok || id != pid(0, 0) {
		t.Fatalf("core 3 picked %v, want unbound head %v", id, pid(0, 0))
	}
	if q != 500 {
		t.Errorf("cold dispatch quantum = %d, want the plain quantum", q)
	}
}

// TestAffinityWindowBound: a warm process beyond the window is invisible;
// the head is taken instead.
func TestAffinityWindowBound(t *testing.T) {
	arr := MustAffinityRR(AffinityConfig{Quantum: 500, Window: 2})
	for i := 0; i < 5; i++ {
		arr.Ready(pid(0, i))
	}
	arr.SegmentDone(pid(0, 4), 6, 1000, false) // warm for core 6, but at depth 4 ≥ window

	id, q, ok := arr.Pick(6, 1100)
	if !ok || id != pid(0, 0) {
		t.Fatalf("core 6 picked %v, want head %v (warm entry out of window)", id, pid(0, 0))
	}
	if q != 500 {
		t.Errorf("quantum = %d, want 500", q)
	}
}

// TestAffinityDecay: a stale binding neither wins a warm pick nor blocks
// other cores from taking the process.
func TestAffinityDecay(t *testing.T) {
	arr := MustAffinityRR(AffinityConfig{Quantum: 500, Window: 4, QBatch: 4, Decay: 100})
	arr.Ready(pid(0, 0))
	arr.SegmentDone(pid(0, 0), 2, 1000, false)

	// Within decay: core 5 must leave pid 0 for core 2... but it is the
	// only entry, so the head fallback hands it over with one quantum.
	id, q, _ := arr.Pick(5, 1050)
	if id != pid(0, 0) || q != 500 {
		t.Fatalf("head fallback: got (%v,%d), want (%v,500)", id, q, pid(0, 0))
	}
	arr.Preempted(pid(0, 0))
	arr.SegmentDone(pid(0, 0), 2, 1050, false)

	// Past decay: the binding is stale, so even core 2 treats the pick
	// as cold (single quantum).
	id, q, _ = arr.Pick(2, 5000)
	if id != pid(0, 0) || q != 500 {
		t.Fatalf("stale pick: got (%v,%d), want cold (%v,500)", id, q, pid(0, 0))
	}
}

// TestAffinityFreshBindingReserved: a fresh binding to another core is
// skipped in favor of unbound work deeper in the window.
func TestAffinityFreshBindingReserved(t *testing.T) {
	arr := MustAffinityRR(AffinityConfig{Quantum: 500, Window: 4})
	arr.Ready(pid(0, 0))
	arr.Ready(pid(0, 1))
	arr.SegmentDone(pid(0, 0), 2, 1000, false) // head bound to core 2, fresh forever

	id, _, ok := arr.Pick(5, 1100)
	if !ok || id != pid(0, 1) {
		t.Fatalf("core 5 picked %v, want unbound %v (head reserved for core 2)", id, pid(0, 1))
	}
	// Core 2 then collects its warm process.
	id, _, ok = arr.Pick(2, 1100)
	if !ok || id != pid(0, 0) {
		t.Fatalf("core 2 picked %v, want its warm %v", id, pid(0, 0))
	}
}

// TestAffinityHints: hints yield fresh bound cores in queue order within
// the window, honor the stop signal, and skip completed processes.
func TestAffinityHints(t *testing.T) {
	arr := MustAffinityRR(AffinityConfig{Quantum: 500, Window: 3, Decay: 1000})
	for i := 0; i < 4; i++ {
		arr.Ready(pid(0, i))
	}
	arr.SegmentDone(pid(0, 0), 4, 1000, false)
	arr.SegmentDone(pid(0, 1), 9, 200, false)  // stale by now=2000 under decay 1000
	arr.SegmentDone(pid(0, 2), 6, 1500, true)  // completed: binding dropped
	arr.SegmentDone(pid(0, 3), 8, 1900, false) // fresh, but at depth 3 ≥ window

	var got []int
	arr.AffinityHints(2000, func(core int) bool {
		got = append(got, core)
		return true
	})
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("hints = %v, want [4]", got)
	}

	// Stop signal: with a second fresh binding in the window, yielding
	// false after the first hint must end the iteration.
	arr.SegmentDone(pid(0, 1), 9, 1950, false)
	calls := 0
	arr.AffinityHints(2000, func(core int) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("yield called %d times after stop, want 1", calls)
	}
}

// TestAffinityFIFOWithinClass: among equally unbound processes ARR keeps
// strict FIFO order, so fairness matches RRS.
func TestAffinityFIFOWithinClass(t *testing.T) {
	arr := MustAffinityRR(AffinityConfig{Quantum: 500, Window: 8})
	for i := 0; i < 6; i++ {
		arr.Ready(pid(0, i))
	}
	for i := 0; i < 6; i++ {
		id, _, ok := arr.Pick(0, 100)
		if !ok || id != pid(0, i) {
			t.Fatalf("pick %d: got %v, want %v", i, id, pid(0, i))
		}
	}
	if _, _, ok := arr.Pick(0, 100); ok {
		t.Error("empty queue still yielded a process")
	}
}

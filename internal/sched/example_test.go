package sched_test

import (
	"fmt"

	"locsched/internal/prog"
	"locsched/internal/sched"
	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

// ExampleLocalitySchedule schedules a two-chain workload on two cores:
// the greedy keeps each producer/consumer chain on one core.
func ExampleLocalitySchedule() {
	arr := prog.MustArray("A", 4, 4096)
	g := taskgraph.New()
	for lane := int64(0); lane < 2; lane++ {
		prodIter := prog.Seg("i", lane*1024, lane*1024+1024)
		prod := prog.MustProcessSpec(fmt.Sprintf("prod%d", lane), prodIter, 1,
			prog.StreamRef(arr, prog.Write, prodIter, 1, 0))
		consIter := prog.Seg("i", lane*1024, lane*1024+1024)
		cons := prog.MustProcessSpec(fmt.Sprintf("cons%d", lane), consIter, 1,
			prog.StreamRef(arr, prog.Read, consIter, 1, 0))
		p := taskgraph.ProcID{Task: 0, Idx: int(2 * lane)}
		c := taskgraph.ProcID{Task: 0, Idx: int(2*lane + 1)}
		g.AddProcess(&taskgraph.Process{ID: p, Spec: prod})
		g.AddProcess(&taskgraph.Process{ID: c, Spec: cons})
		g.AddDep(p, c)
	}
	m, _ := sharing.ComputeMatrix(g)
	asg, _ := sched.LocalitySchedule(g, m, 2)
	fmt.Println(asg)
	// Output:
	// core 0: P0.0 P0.1
	// core 1: P0.2 P0.3
}

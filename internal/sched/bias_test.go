package sched

import (
	"reflect"
	"testing"

	"locsched/internal/sharing"
	"locsched/internal/workload"
)

// TestCoreOrder pins the placement-preference ordering: nil bias is the
// identity, a bias sorts ascending, and ties stay in index order.
func TestCoreOrder(t *testing.T) {
	if got := coreOrder(4, nil); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("coreOrder(4, nil) = %v, want identity", got)
	}
	costs := []int64{30, 10, 20, 10}
	got := coreOrder(4, func(c int) int64 { return costs[c] })
	if want := []int{1, 3, 2, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("coreOrder = %v, want %v (ascending cost, stable ties)", got, want)
	}
}

// TestLocalityScheduleBiasedNilIdentity: a nil bias must be exactly
// LocalitySchedule on a real application graph — the homogeneous half
// of the machine-model contract at the scheduler layer.
func TestLocalityScheduleBiasedNilIdentity(t *testing.T) {
	app, err := workload.Build("Med-Im04", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sharing.ComputeMatrix(app.Graph)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := LocalitySchedule(app.Graph, m, 8)
	if err != nil {
		t.Fatal(err)
	}
	biased, err := LocalityScheduleBiased(app.Graph, m, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, biased) {
		t.Errorf("nil bias diverges from LocalitySchedule:\nplain:  %+v\nbiased: %+v", plain, biased)
	}
}

// TestLocalityScheduleBiasedPermutes: a strict (injective) bias must
// relabel the unbiased schedule's per-core lists onto the preference
// order without changing their contents — the schedule structure (which
// processes run consecutively) is machine-independent; only the
// physical placement shifts toward preferred cores.
func TestLocalityScheduleBiasedPermutes(t *testing.T) {
	app, err := workload.Build("Radar", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sharing.ComputeMatrix(app.Graph)
	if err != nil {
		t.Fatal(err)
	}
	const cores = 8
	plain, err := LocalitySchedule(app.Graph, m, cores)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse preference: core 7 is the best, core 0 the worst.
	biased, err := LocalityScheduleBiased(app.Graph, m, cores, func(c int) int64 { return int64(-c) })
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < cores; k++ {
		if !reflect.DeepEqual(plain.PerCore[k], biased.PerCore[cores-1-k]) {
			t.Errorf("core %d: biased core %d list differs:\nplain:  %v\nbiased: %v",
				k, cores-1-k, plain.PerCore[k], biased.PerCore[cores-1-k])
		}
	}
}

// TestAffinitySetCoreBias pins the ARR wake-hint hook: without a bias
// the hint stream is untouched, with one the machine's cores are
// yielded after the warm hints in placement-cost order, and the stop
// signal ends the iteration either way.
func TestAffinitySetCoreBias(t *testing.T) {
	mk := func() *AffinityRR {
		arr := MustAffinityRR(AffinityConfig{Quantum: 500, Window: 4})
		arr.Ready(pid(0, 0))
		arr.Ready(pid(0, 1))
		arr.SegmentDone(pid(0, 0), 2, 1000, false) // warm binding to core 2
		return arr
	}
	hints := func(arr *AffinityRR) []int {
		var got []int
		arr.AffinityHints(1100, func(core int) bool {
			got = append(got, core)
			return true
		})
		return got
	}

	plain := mk()
	if got := hints(plain); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("unbiased hints = %v, want [2]", got)
	}

	costs := []int64{5, 1, 9, 3}
	biased := mk()
	biased.SetCoreBias(4, func(c int) int64 { return costs[c] })
	if got, want := hints(biased), []int{2, 1, 3, 0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("biased hints = %v, want %v (warm first, then cost order)", got, want)
	}

	// Clearing the bias restores the exact pre-bias stream.
	biased.SetCoreBias(4, nil)
	if got := hints(biased); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("hints after clearing bias = %v, want [2]", got)
	}

	// Stop signal: yielding false inside the bias tail must end the walk.
	biased.SetCoreBias(4, func(c int) int64 { return costs[c] })
	calls := 0
	biased.AffinityHints(1100, func(core int) bool { calls++; return calls < 2 })
	if calls != 2 {
		t.Errorf("yield called %d times after stop, want 2", calls)
	}
}

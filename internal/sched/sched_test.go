package sched

import (
	"math/rand"
	"testing"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/mpsoc"
	"locsched/internal/prog"
	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

func pid(task, idx int) taskgraph.ProcID { return taskgraph.ProcID{Task: task, Idx: idx} }

// figure1Graph builds the paper's Prog1 (Figure 1): eight independent
// processes with the banded sharing matrix of Figure 2(a).
func figure1Graph(t *testing.T) (*taskgraph.Graph, *sharing.Matrix) {
	t.Helper()
	a := prog.MustArray("A", 1, 16000, 10)
	g := taskgraph.New()
	for k := int64(0); k < 8; k++ {
		iter := prog.Seg("i2", 0, 3000)
		spec := prog.MustProcessSpec("P", iter, 1,
			prog.Ref2D(a, prog.Read, iter.Space(), []int64{1}, k*1000, nil, 5))
		if err := g.AddProcess(&taskgraph.Process{ID: pid(0, int(k)), Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := sharing.ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

// TestLocalityScheduleFigure2 pins down the deterministic Figure 3 output
// on the paper's running example with four cores. The greedy trims the
// candidate set {P0..P7} by repeatedly deferring the max-sharing
// candidate (P2, P5, P1, P4), then pairs each remaining core-starter with
// its best-sharing successor.
func TestLocalityScheduleFigure2(t *testing.T) {
	g, m := figure1Graph(t)
	asg, err := LocalitySchedule(g, m, 4)
	if err != nil {
		t.Fatalf("LocalitySchedule: %v", err)
	}
	want := [][]taskgraph.ProcID{
		{pid(0, 0), pid(0, 1)},
		{pid(0, 3), pid(0, 2)},
		{pid(0, 6), pid(0, 5)},
		{pid(0, 7), pid(0, 4)},
	}
	if len(asg.PerCore) != len(want) {
		t.Fatalf("cores = %d, want %d", len(asg.PerCore), len(want))
	}
	for c := range want {
		if len(asg.PerCore[c]) != len(want[c]) {
			t.Fatalf("core %d has %v, want %v", c, asg.PerCore[c], want[c])
		}
		for i := range want[c] {
			if asg.PerCore[c][i] != want[c][i] {
				t.Errorf("core %d slot %d = %v, want %v\nfull:\n%v",
					c, i, asg.PerCore[c][i], want[c][i], asg)
			}
		}
	}
	// Quality: three of the four successive pairs share 2000 elements
	// (the greedy is not optimal, as the paper itself notes).
	var total int64
	for _, pair := range asg.SuccessivePairs() {
		total += m.Shared(pair[0], pair[1])
	}
	if total < 6000 {
		t.Errorf("successive-pair sharing = %d, want >= 6000", total)
	}
}

func TestLocalityScheduleCoversAllOnce(t *testing.T) {
	g, m := figure1Graph(t)
	asg, err := LocalitySchedule(g, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[taskgraph.ProcID]int)
	for _, l := range asg.PerCore {
		for _, id := range l {
			seen[id]++
		}
	}
	if len(seen) != g.Len() {
		t.Errorf("scheduled %d distinct processes, want %d", len(seen), g.Len())
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("process %v scheduled %d times", id, n)
		}
	}
}

func TestLocalityScheduleValidation(t *testing.T) {
	g, m := figure1Graph(t)
	if _, err := LocalitySchedule(g, m, 0); err == nil {
		t.Error("zero cores should fail")
	}
	if _, err := LocalitySchedule(g, nil, 2); err == nil {
		t.Error("nil matrix should fail")
	}
}

func TestLocalityScheduleRespectsDependences(t *testing.T) {
	// Chain with sharing pulling the wrong way: the scheduler must never
	// emit a process before its predecessor, even when sharing tempts it.
	arr := prog.MustArray("A", 4, 10000)
	g := taskgraph.New()
	for i := 0; i < 6; i++ {
		iter := prog.Seg("i", int64(i)*100, int64(i)*100+200)
		spec := prog.MustProcessSpec("p", iter, 0, prog.StreamRef(arr, prog.Read, iter, 1, 0))
		if err := g.AddProcess(&taskgraph.Process{ID: pid(0, i), Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	// 0 -> 4, 1 -> 5, 4 -> 5.
	for _, e := range [][2]int{{0, 4}, {1, 5}, {4, 5}} {
		if err := g.AddDep(pid(0, e[0]), pid(0, e[1])); err != nil {
			t.Fatal(err)
		}
	}
	m, err := sharing.ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := LocalitySchedule(g, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Global emit order = core-round order; rebuild it and check preds.
	order := make(map[taskgraph.ProcID]int)
	pos := 0
	maxLen := 0
	for _, l := range asg.PerCore {
		if len(l) > maxLen {
			maxLen = len(l)
		}
	}
	for round := 0; round < maxLen; round++ {
		for _, l := range asg.PerCore {
			if round < len(l) {
				order[l[round]] = pos
				pos++
			}
		}
	}
	for _, id := range g.ProcIDs() {
		for _, p := range g.Preds(id) {
			if order[p] >= order[id] {
				t.Errorf("process %v emitted before predecessor %v\n%v", id, p, asg)
			}
		}
	}
}

func TestRandomDispatcherDeterministic(t *testing.T) {
	mk := func() []taskgraph.ProcID {
		r := NewRandom(42)
		for i := 0; i < 5; i++ {
			r.Ready(pid(0, i))
		}
		var picked []taskgraph.ProcID
		for {
			id, q, ok := r.Pick(0, 0)
			if !ok {
				break
			}
			if q != 0 {
				t.Fatalf("RS quantum = %d, want 0 (run to completion)", q)
			}
			picked = append(picked, id)
		}
		return picked
	}
	a, b := mk(), mk()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("picked %d/%d, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different orders: %v vs %v", a, b)
		}
	}
	if NewRandom(1).Name() != "RS" {
		t.Error("name should be RS")
	}
}

func TestRoundRobinFIFO(t *testing.T) {
	r := MustRoundRobin(100)
	if r.Name() != "RRS" {
		t.Error("name should be RRS")
	}
	r.Ready(pid(0, 0))
	r.Ready(pid(0, 1))
	id, q, ok := r.Pick(0, 0)
	if !ok || id != pid(0, 0) || q != 100 {
		t.Fatalf("Pick = %v,%d,%v", id, q, ok)
	}
	r.Preempted(id) // rejoins at tail, behind P0.1
	id2, _, _ := r.Pick(1, 0)
	if id2 != pid(0, 1) {
		t.Errorf("second pick = %v, want P0.1", id2)
	}
	id3, _, _ := r.Pick(0, 0)
	if id3 != pid(0, 0) {
		t.Errorf("third pick = %v, want requeued P0.0", id3)
	}
	if _, _, ok := r.Pick(0, 0); ok {
		t.Error("empty queue should report !ok")
	}
}

func TestRoundRobinValidation(t *testing.T) {
	if _, err := NewRoundRobin(0); err == nil {
		t.Error("zero quantum should fail")
	}
	if _, err := NewRoundRobin(-5); err == nil {
		t.Error("negative quantum should fail")
	}
}

func TestStaticWaitsForReadiness(t *testing.T) {
	asg := &Assignment{PerCore: [][]taskgraph.ProcID{{pid(0, 0), pid(0, 1)}}}
	s := NewStatic("LS", asg)
	if _, _, ok := s.Pick(0, 0); ok {
		t.Error("should not pick before Ready")
	}
	s.Ready(pid(0, 0))
	id, q, ok := s.Pick(0, 0)
	if !ok || id != pid(0, 0) || q != 0 {
		t.Fatalf("Pick = %v,%d,%v", id, q, ok)
	}
	// Next pinned process not ready yet.
	if _, _, ok := s.Pick(0, 0); ok {
		t.Error("should wait for next pinned process")
	}
	s.Ready(pid(0, 1))
	if id, _, ok := s.Pick(0, 0); !ok || id != pid(0, 1) {
		t.Errorf("Pick = %v,%v", id, ok)
	}
	// Exhausted.
	if _, _, ok := s.Pick(0, 0); ok {
		t.Error("exhausted core should report !ok")
	}
	// Out-of-range core.
	if _, _, ok := s.Pick(99, 0); ok {
		t.Error("unknown core should report !ok")
	}
}

func TestStaticPreemptPanics(t *testing.T) {
	s := NewStatic("LS", &Assignment{PerCore: [][]taskgraph.ProcID{{}}})
	defer func() {
		if recover() == nil {
			t.Error("Preempted on static policy should panic")
		}
	}()
	s.Preempted(pid(0, 0))
}

func TestAssignmentHelpers(t *testing.T) {
	asg := &Assignment{PerCore: [][]taskgraph.ProcID{
		{pid(0, 0), pid(0, 1)},
		{pid(0, 2)},
	}}
	if asg.Cores() != 2 || asg.Len() != 3 {
		t.Errorf("Cores/Len = %d/%d", asg.Cores(), asg.Len())
	}
	if asg.CoreOf(pid(0, 1)) != 0 || asg.CoreOf(pid(0, 2)) != 1 {
		t.Error("CoreOf wrong")
	}
	if asg.CoreOf(pid(9, 9)) != -1 {
		t.Error("unknown process should map to -1")
	}
	pairs := asg.SuccessivePairs()
	if len(pairs) != 1 || pairs[0] != [2]taskgraph.ProcID{pid(0, 0), pid(0, 1)} {
		t.Errorf("SuccessivePairs = %v", pairs)
	}
	if asg.String() == "" {
		t.Error("String should be non-empty")
	}
}

// TestLSRunsOnRandomDAGs property: the full LS pipeline (matrix →
// schedule → static dispatch → simulation) never deadlocks on random
// DAGs and always completes every process.
func TestLSRunsOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	arr := prog.MustArray("A", 4, 100000)
	for trial := 0; trial < 30; trial++ {
		g := taskgraph.New()
		n := 3 + rng.Intn(12)
		for i := 0; i < n; i++ {
			lo := int64(rng.Intn(300)) * 10
			iter := prog.Seg("i", lo, lo+int64(100+rng.Intn(300)))
			spec := prog.MustProcessSpec("p", iter, 1, prog.StreamRef(arr, prog.Read, iter, 1, 0))
			if err := g.AddProcess(&taskgraph.Process{ID: pid(0, i), Spec: spec}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(5) == 0 {
					if err := g.AddDep(pid(0, i), pid(0, j)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		m, err := sharing.ComputeMatrix(g)
		if err != nil {
			t.Fatal(err)
		}
		cores := 1 + rng.Intn(4)
		disp, asg, err := NewLS(g, m, cores)
		if err != nil {
			t.Fatalf("trial %d: NewLS: %v", trial, err)
		}
		if asg.Len() != n {
			t.Fatalf("trial %d: assignment covers %d of %d", trial, asg.Len(), n)
		}
		cfg := mpsoc.DefaultConfig()
		cfg.Cores = cores
		res, err := mpsoc.Run(g, disp, layout.MustPack(32, arr), cfg)
		if err != nil {
			t.Fatalf("trial %d: Run: %v", trial, err)
		}
		if len(res.Completion) != n {
			t.Fatalf("trial %d: completed %d of %d", trial, len(res.Completion), n)
		}
		// Dependences honored at runtime.
		for _, id := range g.ProcIDs() {
			for _, p := range g.Preds(id) {
				if res.Completion[p] >= res.Completion[id] {
					t.Fatalf("trial %d: %v finished at %d, its predecessor %v at %d",
						trial, id, res.Completion[id], p, res.Completion[p])
				}
			}
		}
	}
}

// TestLSMEliminatesConflicts reproduces the paper's data-mapping effect
// in miniature: a chain A1(X) → B1(Y) → A2(X) on one core with a
// direct-mapped cache and page-aligned aliasing arrays. Without the
// mapping phase B1 evicts all of X between A1 and A2; with it, X and Y
// live in disjoint cache-set banks.
func TestLSMEliminatesConflicts(t *testing.T) {
	geom := cache.Geometry{Size: 8 * 1024, BlockSize: 32, Assoc: 1} // direct-mapped, C = 8KB
	x := prog.MustArray("X", 4, 1024)                               // 4KB
	y := prog.MustArray("Y", 4, 1024)                               // 4KB
	z := prog.MustArray("Z", 4, 8)                                  // tiny third array pulls the average threshold below max

	g := taskgraph.New()
	mkProc := func(idx int, arr *prog.Array) taskgraph.ProcID {
		iter := prog.Seg("i", 0, arr.Elems())
		spec := prog.MustProcessSpec("p", iter, 0,
			prog.StreamRef(arr, prog.Read, iter, 1, 0),
			prog.StreamRef(z, prog.Read, iter, 0, int64(idx)%z.Elems()),
		)
		id := pid(0, idx)
		if err := g.AddProcess(&taskgraph.Process{ID: id, Spec: spec}); err != nil {
			t.Fatal(err)
		}
		return id
	}
	a1 := mkProc(0, x)
	b1 := mkProc(1, y)
	a2 := mkProc(2, x)
	if err := g.AddDep(a1, b1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(b1, a2); err != nil {
		t.Fatal(err)
	}

	// Page-aligned packing makes X and Y alias set-for-set.
	base := layout.MustPack(geom.PageSize(), x, y, z)
	m, err := sharing.ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpsoc.DefaultConfig()
	cfg.Cores = 1
	cfg.Cache = geom

	lsDisp, _, err := NewLS(g, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	lsRes, err := mpsoc.Run(g, lsDisp, base, cfg)
	if err != nil {
		t.Fatal(err)
	}

	lsmDisp, mapping, err := NewLSM(g, m, nil, 1, base, geom, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping.Banks) < 2 {
		t.Fatalf("LSM selected banks %v, want X and Y separated (conflicts:\n%v, threshold %d)",
			mapping.Banks, mapping.Conflicts, mapping.Threshold)
	}
	if mapping.Banks[x] == mapping.Banks[y] {
		t.Fatalf("X and Y must be in opposite banks: %v", mapping.Banks)
	}
	lsmRes, err := mpsoc.Run(g, lsmDisp, mapping.Layout, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if lsmRes.Total.Conflict >= lsRes.Total.Conflict {
		t.Errorf("LSM conflict misses %d should be below LS's %d",
			lsmRes.Total.Conflict, lsRes.Total.Conflict)
	}
	if lsmRes.Cycles >= lsRes.Cycles {
		t.Errorf("LSM (%d cycles) should beat LS (%d cycles) here", lsmRes.Cycles, lsRes.Cycles)
	}
}

// TestPoliciesCompleteEverything runs all four policies over one graph
// and checks they all finish all processes with identical total access
// counts.
func TestPoliciesCompleteEverything(t *testing.T) {
	g, m := figure1Graph(t)
	var arrs []*prog.Array
	seen := map[*prog.Array]bool{}
	for _, p := range g.Processes() {
		for _, a := range p.Spec.Arrays() {
			if !seen[a] {
				seen[a] = true
				arrs = append(arrs, a)
			}
		}
	}
	base := layout.MustPack(32, arrs...)
	cfg := mpsoc.DefaultConfig()
	cfg.Cores = 4

	lsDisp, _, err := NewLS(g, m, cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	lsmDisp, mapping, err := NewLSM(g, m, nil, cfg.Cores, base, cfg.Cache, nil)
	if err != nil {
		t.Fatal(err)
	}
	runs := []struct {
		d  mpsoc.Dispatcher
		am layout.AddressMap
	}{
		{NewRandom(7), base},
		{MustRoundRobin(DefaultQuantum), base},
		{lsDisp, base},
		{lsmDisp, mapping.Layout},
	}
	var accesses []int64
	for _, r := range runs {
		res, err := mpsoc.Run(g, r.d, r.am, cfg)
		if err != nil {
			t.Fatalf("%s: %v", r.d.Name(), err)
		}
		if len(res.Completion) != g.Len() {
			t.Errorf("%s completed %d of %d", r.d.Name(), len(res.Completion), g.Len())
		}
		accesses = append(accesses, res.Total.Accesses)
	}
	for i := 1; i < len(accesses); i++ {
		if accesses[i] != accesses[0] {
			t.Errorf("policy %d issued %d accesses, policy 0 issued %d",
				i, accesses[i], accesses[0])
		}
	}
}

package sched

import (
	"fmt"
	"testing"

	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
	"locsched/internal/workload"
)

// assignmentsEqual fails unless both assignments place the same processes
// in the same order on every core.
func assignmentsEqual(t *testing.T, want, got *Assignment) {
	t.Helper()
	if len(want.PerCore) != len(got.PerCore) {
		t.Fatalf("core counts differ: want %d, got %d", len(want.PerCore), len(got.PerCore))
	}
	for k := range want.PerCore {
		w, g := want.PerCore[k], got.PerCore[k]
		if len(w) != len(g) {
			t.Fatalf("core %d: want %d processes %v, got %d %v", k, len(w), w, len(g), g)
		}
		for x := range w {
			if w[x] != g[x] {
				t.Fatalf("core %d position %d: want %v, got %v (full: want %v, got %v)",
					k, x, w[x], g[x], w, g)
			}
		}
	}
}

// xlMixGraph builds a generated multi-program mix EPG with its sharing
// matrix.
func xlMixGraph(t testing.TB, tasks int) (*taskgraph.Graph, *sharing.Matrix) {
	t.Helper()
	apps, err := workload.BuildMany(tasks, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := workload.Combine(apps...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sharing.ComputeMatrixParallel(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g, m
}

// TestLocalityScheduleMatchesRescan: the incremental LocalitySchedule is
// bit-identical to the retained full-rescan reference implementation for
// every Table 1 application, the six-app concurrent mix, and generated
// XL mixes, across core counts from fewer-cores-than-roots up to
// more-cores-than-processes.
func TestLocalityScheduleMatchesRescan(t *testing.T) {
	type tc struct {
		label string
		g     *taskgraph.Graph
		m     *sharing.Matrix
	}
	var cases []tc
	for _, name := range workload.Names() {
		app, err := workload.Build(name, 0, workload.Params{Scale: 2})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sharing.ComputeMatrix(app.Graph)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tc{name, app.Graph, m})
	}
	apps, err := workload.BuildAll(workload.Params{Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	mix, _, err := workload.Combine(apps...)
	if err != nil {
		t.Fatal(err)
	}
	mixM, err := sharing.ComputeMatrix(mix)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, tc{"mix6", mix, mixM})
	g8, m8 := xlMixGraph(t, 8)
	cases = append(cases, tc{"xl8", g8, m8})

	for _, c := range cases {
		for _, cores := range []int{1, 2, 3, 4, 8, 16, 64, 2 * c.g.Len()} {
			t.Run(fmt.Sprintf("%s/cores=%d", c.label, cores), func(t *testing.T) {
				want, err := LocalityScheduleRescan(c.g, c.m, cores)
				if err != nil {
					t.Fatal(err)
				}
				got, err := LocalitySchedule(c.g, c.m, cores)
				if err != nil {
					t.Fatal(err)
				}
				assignmentsEqual(t, want, got)
			})
		}
	}
}

// TestLocalitySchedule512Cores: at the 512-core scenario point (128-task
// generated mix), the incremental scheduler still matches the rescan
// oracle exactly, and the schedule uses every core.
func TestLocalitySchedule512Cores(t *testing.T) {
	if testing.Short() {
		t.Skip("512-core scenario mix in -short mode")
	}
	g, m := xlMixGraph(t, 128)
	const cores = 512
	want, err := LocalityScheduleRescan(g, m, cores)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LocalitySchedule(g, m, cores)
	if err != nil {
		t.Fatal(err)
	}
	assignmentsEqual(t, want, got)
	used := 0
	total := 0
	for _, lst := range got.PerCore {
		if len(lst) > 0 {
			used++
		}
		total += len(lst)
	}
	if total != g.Len() {
		t.Errorf("schedule places %d processes, graph has %d", total, g.Len())
	}
	if used == 0 {
		t.Error("no core received any process")
	}
}

// TestLocalityScheduleForeignMatrix: both implementations agree when the
// matrix does not cover the graph (Shared treats unknown processes as
// sharing nothing) — the incremental path must reproduce that too.
func TestLocalityScheduleForeignMatrix(t *testing.T) {
	app, err := workload.Build("Shape", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	other, err := workload.Build("Track", 7, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sharing.ComputeMatrix(other.Graph)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 2, 4} {
		want, err := LocalityScheduleRescan(app.Graph, m, cores)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LocalitySchedule(app.Graph, m, cores)
		if err != nil {
			t.Fatal(err)
		}
		assignmentsEqual(t, want, got)
	}
}

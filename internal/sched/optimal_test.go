package sched

import (
	"math/rand"
	"testing"

	"locsched/internal/prog"
	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

// TestOptimalReproducesFigure2b: on the paper's running example (eight
// processes with the banded sharing matrix) and four cores, the optimal
// schedule pairs neighbouring processes on each core — exactly the
// "good mapping" of the paper's Figure 2(b), with total successive
// sharing 4 × 2000 = 8000 elements. The greedy of Figure 3 reaches 6000
// (the paper itself notes it "does not generate the best results in all
// cases"); the exact DP quantifies that gap.
func TestOptimalReproducesFigure2b(t *testing.T) {
	g, m := figure1Graph(t)
	optAsg, optTotal, err := OptimalSchedule(g, m, 4)
	if err != nil {
		t.Fatalf("OptimalSchedule: %v", err)
	}
	if optTotal != 8000 {
		t.Errorf("optimal sharing = %d, want 8000 (Figure 2(b) pairing)", optTotal)
	}
	if got := SharingOf(optAsg, m); got != optTotal {
		t.Errorf("SharingOf(optimal) = %d, want %d", got, optTotal)
	}
	// Every core must hold a neighbouring pair.
	for c, l := range optAsg.PerCore {
		if len(l) != 2 {
			t.Fatalf("core %d holds %v, want a pair", c, l)
		}
		d := l[0].Idx - l[1].Idx
		if d != 1 && d != -1 {
			t.Errorf("core %d pairs non-neighbours %v", c, l)
		}
	}

	lsAsg, err := LocalitySchedule(g, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	lsTotal := SharingOf(lsAsg, m)
	if lsTotal > optTotal {
		t.Errorf("greedy sharing %d exceeds the optimum %d", lsTotal, optTotal)
	}
	if lsTotal != 6000 {
		t.Errorf("greedy sharing = %d, want 6000 (the documented gap)", lsTotal)
	}
}

func TestOptimalValidation(t *testing.T) {
	g, m := figure1Graph(t)
	if _, _, err := OptimalSchedule(g, m, 0); err == nil {
		t.Error("zero cores should fail")
	}
	if _, _, err := OptimalSchedule(taskgraph.New(), m, 2); err == nil {
		t.Error("empty graph should fail")
	}
}

func TestOptimalTooLargeRejected(t *testing.T) {
	arr := prog.MustArray("A", 4, 10000)
	g := taskgraph.New()
	for i := 0; i < MaxOptimalProcs+1; i++ {
		iter := prog.Seg("i", 0, 10)
		spec := prog.MustProcessSpec("p", iter, 0, prog.StreamRef(arr, prog.Read, iter, 1, 0))
		if err := g.AddProcess(&taskgraph.Process{ID: pid(0, i), Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := sharing.ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OptimalSchedule(g, m, 2); err == nil {
		t.Error("oversized instance should be rejected")
	}
}

// TestOptimalDominatesGreedyRandomized: on random small instances the
// exact schedule's objective must upper-bound the greedy's, the optimal
// assignment must be dependence-consistent, and the greedy should reach
// a reasonable fraction of the optimum on average.
func TestOptimalDominatesGreedyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	arr := prog.MustArray("A", 4, 100000)
	var sumOpt, sumGreedy int64
	for trial := 0; trial < 25; trial++ {
		g := taskgraph.New()
		n := 4 + rng.Intn(5) // 4..8 processes
		ids := make([]taskgraph.ProcID, n)
		for i := 0; i < n; i++ {
			lo := int64(rng.Intn(50)) * 100
			iter := prog.Seg("i", lo, lo+int64(100+rng.Intn(400)))
			spec := prog.MustProcessSpec("p", iter, 0, prog.StreamRef(arr, prog.Read, iter, 1, 0))
			ids[i] = pid(0, i)
			if err := g.AddProcess(&taskgraph.Process{ID: ids[i], Spec: spec}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(5) == 0 {
					if err := g.AddDep(ids[i], ids[j]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		m, err := sharing.ComputeMatrix(g)
		if err != nil {
			t.Fatal(err)
		}
		cores := 2 + rng.Intn(2)
		optAsg, optTotal, err := OptimalSchedule(g, m, cores)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := SharingOf(optAsg, m); got != optTotal {
			t.Fatalf("trial %d: reconstruction objective %d != DP value %d", trial, got, optTotal)
		}
		if optAsg.Len() != n {
			t.Fatalf("trial %d: optimal covers %d of %d", trial, optAsg.Len(), n)
		}
		// Dependence consistency: union of deps and per-core orders must
		// admit a topological order (checked via simulated emit order).
		order := map[taskgraph.ProcID]int{}
		emitted := 0
		next := make([]int, len(optAsg.PerCore))
		for emitted < n {
			progress := false
			for c, l := range optAsg.PerCore {
				for next[c] < len(l) {
					id := l[next[c]]
					ready := true
					for _, p := range g.Preds(id) {
						if _, done := order[p]; !done {
							ready = false
							break
						}
					}
					if !ready {
						break
					}
					order[id] = emitted
					emitted++
					next[c]++
					progress = true
				}
			}
			if !progress {
				t.Fatalf("trial %d: optimal assignment is dependence-infeasible:\n%v", trial, optAsg)
			}
		}

		lsAsg, err := LocalitySchedule(g, m, cores)
		if err != nil {
			t.Fatal(err)
		}
		lsTotal := SharingOf(lsAsg, m)
		if lsTotal > optTotal {
			t.Fatalf("trial %d: greedy %d beats 'optimal' %d", trial, lsTotal, optTotal)
		}
		sumOpt += optTotal
		sumGreedy += lsTotal
	}
	// On adversarial random instances the greedy lands around half the
	// optimum (the initial trim defers exactly the heaviest sharers, and
	// the per-core choice is myopic) — a measured counterpart to the
	// paper's remark that the greedy "does not generate the best results
	// in all cases". Structured pipeline workloads fare much better (see
	// TestOptimalReproducesFigure2b: 75% there, and the Figure 6/7 wins).
	if sumOpt > 0 && sumGreedy*10 < sumOpt*4 {
		t.Errorf("greedy reaches only %d of %d total optimal sharing (< 40%%)", sumGreedy, sumOpt)
	}
}

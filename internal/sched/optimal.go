package sched

import (
	"fmt"
	"math"

	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

// MaxOptimalProcs bounds the exact scheduler: the state space is
// 2^n × (n+1)^cores, so only small instances are tractable.
const MaxOptimalProcs = 14

// OptimalSchedule computes, by dynamic programming over (scheduled-set,
// per-core tail/count) states, a dependence-feasible static schedule
// that maximizes the total data sharing between successively scheduled
// processes on each core — the objective the paper's Figure 3 greedy
// approximates. Per-core lists are capped at ⌈n/cores⌉ processes,
// mirroring the paper's balanced quantum structure (otherwise the
// maximizer degenerates to serializing everything on one core). It
// exists to measure the greedy's quality (the paper itself notes the
// greedy "does not generate the best results in all cases"); it is
// exponential and limited to MaxOptimalProcs processes.
func OptimalSchedule(g *taskgraph.Graph, m *sharing.Matrix, cores int) (*Assignment, int64, error) {
	if cores <= 0 {
		return nil, 0, fmt.Errorf("sched: cores %d must be positive", cores)
	}
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	n := g.Len()
	if n == 0 {
		return nil, 0, fmt.Errorf("sched: empty graph")
	}
	if n > MaxOptimalProcs {
		return nil, 0, fmt.Errorf("sched: %d processes exceed the exact scheduler's limit of %d", n, MaxOptimalProcs)
	}
	if cores > n {
		cores = n // extra cores can never help the sharing objective
	}

	ids := g.ProcIDs()
	index := make(map[taskgraph.ProcID]int, n)
	for i, id := range ids {
		index[id] = i
	}
	// Predecessor masks for O(1) eligibility.
	predMask := make([]uint32, n)
	for i, id := range ids {
		for _, p := range g.Preds(id) {
			predMask[i] |= 1 << index[p]
		}
	}
	share := make([][]int64, n+1)
	for i := range share {
		share[i] = make([]int64, n)
	}
	for i, a := range ids {
		for j, b := range ids {
			share[i][j] = m.Shared(a, b)
		}
	}
	// Row n is the virtual "empty core" tail: zero sharing with anything.

	type stateKey struct {
		scheduled uint32
		tails     [8]int8 // supports up to 8 cores; sorted for symmetry
		counts    [8]int8 // per-core lengths, co-sorted with tails
	}
	if cores > 8 {
		cores = 8
	}
	cap := (n + cores - 1) / cores // balanced lists, the paper's quanta

	type memoVal struct {
		best int64
		// Reconstruction: the process appended next and the tail value it
		// was appended after. Storing the tail VALUE (not a core index)
		// keeps the decision valid for every tails ordering that
		// canonicalizes to this state.
		proc, tail, count int8
	}
	memo := make(map[stateKey]memoVal)

	full := uint32(1<<n) - 1

	canonical := func(tails, counts []int8) ([8]int8, [8]int8) {
		var ot, oc [8]int8
		copy(ot[:], tails)
		copy(oc[:], counts)
		for i := cores; i < 8; i++ {
			ot[i] = int8(n) // unused slots marked as empty
			oc[i] = 0
		}
		// Insertion co-sort for symmetry reduction: cores are
		// interchangeable except for their (tail, count) pairs.
		for i := 1; i < cores; i++ {
			for j := i; j > 0 && (ot[j] < ot[j-1] || (ot[j] == ot[j-1] && oc[j] < oc[j-1])); j-- {
				ot[j], ot[j-1] = ot[j-1], ot[j]
				oc[j], oc[j-1] = oc[j-1], oc[j]
			}
		}
		return ot, oc
	}

	var solve func(scheduled uint32, tails, counts []int8) int64
	solve = func(scheduled uint32, tails, counts []int8) int64 {
		if scheduled == full {
			return 0
		}
		ct, cc := canonical(tails, counts)
		key := stateKey{scheduled: scheduled, tails: ct, counts: cc}
		if v, ok := memo[key]; ok {
			return v.best
		}
		best := int64(math.MinInt64)
		var bestProc, bestTail, bestCount int8 = -1, -1, -1
		for q := 0; q < n; q++ {
			bit := uint32(1) << q
			if scheduled&bit != 0 || predMask[q]&scheduled != predMask[q] {
				continue
			}
			// Try each distinct (tail, count) pair once (identical pairs
			// are symmetric).
			type tc struct{ t, c int8 }
			tried := make(map[tc]bool, cores)
			for k := 0; k < cores; k++ {
				if int(counts[k]) >= cap {
					continue
				}
				pair := tc{tails[k], counts[k]}
				if tried[pair] {
					continue
				}
				tried[pair] = true
				gain := int64(0)
				if int(tails[k]) < n {
					gain = share[tails[k]][q]
				}
				oldT, oldC := tails[k], counts[k]
				tails[k], counts[k] = int8(q), counts[k]+1
				v := gain + solve(scheduled|bit, tails, counts)
				tails[k], counts[k] = oldT, oldC
				if v > best {
					best = v
					bestProc, bestTail, bestCount = int8(q), oldT, oldC
				}
			}
		}
		memo[key] = memoVal{best: best, proc: bestProc, tail: bestTail, count: bestCount}
		return best
	}

	tails := make([]int8, cores)
	counts := make([]int8, cores)
	for i := range tails {
		tails[i] = int8(n) // empty
	}
	total := solve(0, tails, counts)

	// Reconstruct by replaying the memoized decisions. The stored tail
	// VALUE and count identify a core up to symmetry; any matching core
	// yields an equivalent schedule.
	asg := &Assignment{PerCore: make([][]taskgraph.ProcID, cores)}
	scheduled := uint32(0)
	for i := range tails {
		tails[i] = int8(n)
		counts[i] = 0
	}
	for scheduled != full {
		ct, cc := canonical(tails, counts)
		key := stateKey{scheduled: scheduled, tails: ct, counts: cc}
		v, ok := memo[key]
		if !ok || v.proc < 0 {
			return nil, 0, fmt.Errorf("sched: optimal reconstruction failed")
		}
		core := -1
		for k := 0; k < cores; k++ {
			if tails[k] == v.tail && counts[k] == v.count {
				core = k
				break
			}
		}
		if core < 0 {
			return nil, 0, fmt.Errorf("sched: optimal reconstruction lost tail %d", v.tail)
		}
		asg.PerCore[core] = append(asg.PerCore[core], ids[v.proc])
		tails[core] = int8(v.proc)
		counts[core]++
		scheduled |= 1 << uint32(v.proc)
	}
	return asg, total, nil
}

// SharingOf returns the static objective value of an assignment: the
// total shared bytes between successively scheduled processes per core.
func SharingOf(asg *Assignment, m *sharing.Matrix) int64 {
	var total int64
	for _, pair := range asg.SuccessivePairs() {
		total += m.Shared(pair[0], pair[1])
	}
	return total
}

package sched

import (
	"testing"

	"locsched/internal/layout"
	"locsched/internal/mpsoc"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

// chainGraph builds two chains of different lengths plus a short job.
func chainGraph(t *testing.T) (*taskgraph.Graph, layout.AddressMap) {
	t.Helper()
	arr := prog.MustArray("A", 4, 100000)
	g := taskgraph.New()
	add := func(idx int, iters int64) taskgraph.ProcID {
		iter := prog.Seg("i", 0, iters)
		spec := prog.MustProcessSpec("p", iter, 1, prog.StreamRef(arr, prog.Read, iter, 1, int64(idx)*2000))
		id := pid(0, idx)
		if err := g.AddProcess(&taskgraph.Process{ID: id, Spec: spec}); err != nil {
			t.Fatal(err)
		}
		return id
	}
	// Long chain 0 -> 1 -> 2; independent short job 3; medium job 4.
	a := add(0, 500)
	b := add(1, 500)
	c := add(2, 500)
	add(3, 50)
	add(4, 200)
	if err := g.AddDep(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(b, c); err != nil {
		t.Fatal(err)
	}
	return g, layout.MustPack(32, arr)
}

func TestSJFPicksShortestFirst(t *testing.T) {
	g, _ := chainGraph(t)
	s, err := NewSJF(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SJF" {
		t.Error("name should be SJF")
	}
	s.Ready(pid(0, 0)) // 500 iters
	s.Ready(pid(0, 3)) // 50 iters
	s.Ready(pid(0, 4)) // 200 iters
	id, q, ok := s.Pick(0, 0)
	if !ok || id != pid(0, 3) || q != 0 {
		t.Errorf("first pick = %v,%d,%v, want P0.3 (shortest)", id, q, ok)
	}
	id, _, _ = s.Pick(0, 0)
	if id != pid(0, 4) {
		t.Errorf("second pick = %v, want P0.4", id)
	}
	id, _, _ = s.Pick(0, 0)
	if id != pid(0, 0) {
		t.Errorf("third pick = %v, want P0.0", id)
	}
	if _, _, ok := s.Pick(0, 0); ok {
		t.Error("empty pool should report !ok")
	}
}

func TestCriticalPathPicksDeepestFirst(t *testing.T) {
	g, _ := chainGraph(t)
	c, err := NewCriticalPath(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "CPL" {
		t.Error("name should be CPL")
	}
	// Ranks: P0.0 = 2 (heads chain of 3), P0.3 = 0, P0.4 = 0.
	c.Ready(pid(0, 3))
	c.Ready(pid(0, 0))
	c.Ready(pid(0, 4))
	id, _, ok := c.Pick(0, 0)
	if !ok || id != pid(0, 0) {
		t.Errorf("first pick = %v, want chain head P0.0", id)
	}
	// Remaining two tie at rank 0: smallest ID wins.
	id, _, _ = c.Pick(0, 0)
	if id != pid(0, 3) {
		t.Errorf("second pick = %v, want P0.3", id)
	}
}

func TestBaselinesCompleteThroughEngine(t *testing.T) {
	cfg := mpsoc.DefaultConfig()
	cfg.Cores = 2
	for _, mk := range []func(*taskgraph.Graph) (mpsoc.Dispatcher, error){
		func(g *taskgraph.Graph) (mpsoc.Dispatcher, error) { return NewSJF(g) },
		func(g *taskgraph.Graph) (mpsoc.Dispatcher, error) { return NewCriticalPath(g) },
	} {
		g, am := chainGraph(t)
		d, err := mk(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mpsoc.Run(g, d, am, cfg)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if len(res.Completion) != g.Len() {
			t.Errorf("%s completed %d of %d", d.Name(), len(res.Completion), g.Len())
		}
	}
}

func TestPoolStaysSorted(t *testing.T) {
	s := &SJF{cost: map[taskgraph.ProcID]int64{}}
	for _, i := range []int{5, 1, 3, 2, 4} {
		s.Ready(pid(0, i))
	}
	if !sortPool(s.pool) {
		t.Errorf("pool not sorted: %v", s.pool)
	}
}

package sched

import (
	"sort"

	"locsched/internal/taskgraph"
)

// The paper's future-work list includes comparing LS against further OS
// scheduling strategies. Two classical baselines are provided here:
// shortest-job-first and critical-path list scheduling. Neither is
// locality-aware; both run processes to completion like RS.

// SJF picks the ready process with the fewest memory accesses (our proxy
// for job length). Ties break to the smallest ID.
type SJF struct {
	pool []taskgraph.ProcID
	cost map[taskgraph.ProcID]int64
}

// NewSJF builds the dispatcher; job lengths are taken from the graph's
// process specs (iterations × references).
func NewSJF(g *taskgraph.Graph) (*SJF, error) {
	cost := make(map[taskgraph.ProcID]int64, g.Len())
	for _, p := range g.Processes() {
		n, err := p.Spec.Accesses()
		if err != nil {
			return nil, err
		}
		cost[p.ID] = n
	}
	return &SJF{cost: cost}, nil
}

// Name implements mpsoc.Dispatcher.
func (s *SJF) Name() string { return "SJF" }

// CoreAgnostic implements mpsoc.CoreAgnostic: the ready pool is global.
func (s *SJF) CoreAgnostic() bool { return true }

// Ready implements mpsoc.Dispatcher.
func (s *SJF) Ready(id taskgraph.ProcID) { s.pool = insertSorted(s.pool, id) }

// Preempted implements mpsoc.Dispatcher.
func (s *SJF) Preempted(id taskgraph.ProcID) { s.pool = insertSorted(s.pool, id) }

// Pick implements mpsoc.Dispatcher: shortest ready job, to completion.
func (s *SJF) Pick(core int, now int64) (taskgraph.ProcID, int64, bool) {
	if len(s.pool) == 0 {
		return taskgraph.ProcID{}, 0, false
	}
	best := 0
	for i := 1; i < len(s.pool); i++ {
		if s.cost[s.pool[i]] < s.cost[s.pool[best]] {
			best = i
		}
	}
	id := s.pool[best]
	s.pool = append(s.pool[:best], s.pool[best+1:]...)
	return id, 0, true
}

// CriticalPath picks the ready process heading the longest remaining
// dependence chain (HEFT-style list scheduling without communication
// costs). Ties break to the smallest ID.
type CriticalPath struct {
	pool []taskgraph.ProcID
	rank map[taskgraph.ProcID]int
}

// NewCriticalPath builds the dispatcher; ranks are longest path lengths
// to any sink.
func NewCriticalPath(g *taskgraph.Graph) (*CriticalPath, error) {
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make(map[taskgraph.ProcID]int, len(topo))
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		r := 0
		for _, s := range g.Succs(id) {
			if rank[s]+1 > r {
				r = rank[s] + 1
			}
		}
		rank[id] = r
	}
	return &CriticalPath{rank: rank}, nil
}

// Name implements mpsoc.Dispatcher.
func (c *CriticalPath) Name() string { return "CPL" }

// CoreAgnostic implements mpsoc.CoreAgnostic: the ready pool is global.
func (c *CriticalPath) CoreAgnostic() bool { return true }

// Ready implements mpsoc.Dispatcher.
func (c *CriticalPath) Ready(id taskgraph.ProcID) { c.pool = insertSorted(c.pool, id) }

// Preempted implements mpsoc.Dispatcher.
func (c *CriticalPath) Preempted(id taskgraph.ProcID) { c.pool = insertSorted(c.pool, id) }

// Pick implements mpsoc.Dispatcher: deepest ready process, to completion.
func (c *CriticalPath) Pick(core int, now int64) (taskgraph.ProcID, int64, bool) {
	if len(c.pool) == 0 {
		return taskgraph.ProcID{}, 0, false
	}
	best := 0
	for i := 1; i < len(c.pool); i++ {
		if c.rank[c.pool[i]] > c.rank[c.pool[best]] {
			best = i
		}
	}
	id := c.pool[best]
	c.pool = append(c.pool[:best], c.pool[best+1:]...)
	return id, 0, true
}

// sortPool is a test hook ensuring pools stay sorted.
func sortPool(ids []taskgraph.ProcID) bool {
	return sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
}

package sched

import (
	"reflect"
	"testing"

	"locsched/internal/layout"
	"locsched/internal/mpsoc"
	"locsched/internal/prog"
)

// TestNewLSMWithPrecomputedAssignment: NewLSM fed the caller's LS
// assignment must produce the identical mapping (assignment, banks,
// layout behaviour) as the nil-assignment path that computes it
// internally — and must not consult the matrix at all.
func TestNewLSMWithPrecomputedAssignment(t *testing.T) {
	g, m := figure1Graph(t)
	var arrs []*prog.Array
	seen := map[*prog.Array]bool{}
	for _, p := range g.Processes() {
		for _, a := range p.Spec.Arrays() {
			if !seen[a] {
				seen[a] = true
				arrs = append(arrs, a)
			}
		}
	}
	base := layout.MustPack(32, arrs...)
	geom := mpsoc.DefaultConfig().Cache
	const cores = 4

	_, want, err := NewLSM(g, m, nil, cores, base, geom, nil)
	if err != nil {
		t.Fatal(err)
	}

	asg, err := LocalitySchedule(g, m, cores)
	if err != nil {
		t.Fatal(err)
	}
	// nil matrix: with a supplied assignment the mapping phase must not
	// need it.
	_, got, err := NewLSM(g, nil, asg, cores, base, geom, nil)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Assignment.PerCore, want.Assignment.PerCore) {
		t.Errorf("assignments differ:\n got %v\nwant %v", got.Assignment.PerCore, want.Assignment.PerCore)
	}
	if !reflect.DeepEqual(got.Banks, want.Banks) {
		t.Errorf("bank selections differ:\n got %v\nwant %v", got.Banks, want.Banks)
	}
	if got.Threshold != want.Threshold || got.PressureBefore != want.PressureBefore ||
		got.PressureAfter != want.PressureAfter || got.Verified != want.Verified {
		t.Errorf("mapping metadata differs:\n got %+v\nwant %+v", got, want)
	}
	for _, a := range arrs {
		for _, idx := range []int64{0, 1} {
			if got.Layout.Addr(a, idx) != want.Layout.Addr(a, idx) {
				t.Errorf("layout of %s[%d] differs: %d vs %d",
					a.Name, idx, got.Layout.Addr(a, idx), want.Layout.Addr(a, idx))
			}
		}
	}
}

package layout

import (
	"fmt"
	"sort"
	"strings"

	"locsched/internal/cache"
	"locsched/internal/eset"
	"locsched/internal/prog"
)

// Footprints maps each array to the set of linear element indices
// actually touched (from sharing.DataSpace computations).
type Footprints map[*prog.Array]*eset.Set

// Merge unions o into a copy of f.
func (f Footprints) Merge(o Footprints) Footprints {
	out := make(Footprints, len(f)+len(o))
	for a, s := range f {
		out[a] = s
	}
	for a, s := range o {
		if cur, ok := out[a]; ok {
			out[a] = cur.Union(s)
		} else {
			out[a] = s
		}
	}
	return out
}

// ConflictMatrix estimates, for every pair of arrays, how severely they
// fight over cache sets under a given layout (the paper's "conflict
// matrix" M of Figure 5).
//
// The matrix is built from co-access groups: the arrays touched by one
// process, or by two processes scheduled successively on the same core —
// exactly the pairs Figure 5 declares eligible for re-layouting. Within
// a group, for each cache set s let n_i[s] be the number of distinct
// blocks of array i's footprint mapping to s. A set is a thrash point
// when the group's combined residency exceeds the associativity
// (Σ n_i[s] > W): every array pair present there then accumulates
// min(n_i[s], n_j[s]). Pairs never co-accessed stay at zero, so the
// eligibility test of Figure 5 is implicit in the matrix.
type ConflictMatrix struct {
	arrays []*prog.Array
	pos    map[*prog.Array]int
	vals   [][]int64
}

// Conflicts builds the conflict matrix from co-access groups under the
// address map and cache geometry.
func Conflicts(groups []Footprints, am AddressMap, geom cache.Geometry) (*ConflictMatrix, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	// Collect the universe of arrays (deterministic order by name).
	universe := make(map[*prog.Array]bool)
	for _, g := range groups {
		for a := range g {
			universe[a] = true
		}
	}
	arrays := make([]*prog.Array, 0, len(universe))
	for a := range universe {
		arrays = append(arrays, a)
	}
	sort.Slice(arrays, func(i, j int) bool { return arrays[i].Name < arrays[j].Name })

	m := &ConflictMatrix{
		arrays: arrays,
		pos:    make(map[*prog.Array]int, len(arrays)),
		vals:   make([][]int64, len(arrays)),
	}
	for i, a := range arrays {
		m.pos[a] = i
		m.vals[i] = make([]int64, len(arrays))
	}

	numSets := geom.NumSets()
	w := int64(geom.Assoc)
	// Per-set block counts are recomputed per (group, array); memoize by
	// (array, footprint) since groups share data-space sets.
	type key struct {
		arr *prog.Array
		set *eset.Set
	}
	memo := make(map[key][]int64)
	countsOf := func(a *prog.Array, fp *eset.Set) []int64 {
		k := key{a, fp}
		if c, ok := memo[k]; ok {
			return c
		}
		counts := make([]int64, numSets)
		blocks := make(map[int64]bool)
		fp.Elements(func(e int64) bool {
			addr := am.Addr(a, e)
			first := geom.BlockOf(addr)
			last := geom.BlockOf(addr + a.Elem - 1)
			for blk := first; blk <= last; blk++ {
				if !blocks[blk] {
					blocks[blk] = true
					counts[blk%numSets]++
				}
			}
			return true
		})
		memo[k] = counts
		return counts
	}

	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		members := make([]*prog.Array, 0, len(g))
		for a := range g {
			members = append(members, a)
		}
		sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
		perArr := make([][]int64, len(members))
		for i, a := range members {
			perArr[i] = countsOf(a, g[a])
		}
		for s := int64(0); s < numSets; s++ {
			var total int64
			for i := range members {
				total += perArr[i][s]
			}
			if total <= w {
				continue
			}
			for i := range members {
				ni := perArr[i][s]
				if ni == 0 {
					continue
				}
				for j := i + 1; j < len(members); j++ {
					nj := perArr[j][s]
					if nj == 0 {
						continue
					}
					mi, mj := m.pos[members[i]], m.pos[members[j]]
					c := ni
					if nj < ni {
						c = nj
					}
					m.vals[mi][mj] += c
					m.vals[mj][mi] += c
				}
			}
		}
	}
	return m, nil
}

// Arrays returns the matrix's arrays in order.
func (m *ConflictMatrix) Arrays() []*prog.Array {
	return append([]*prog.Array(nil), m.arrays...)
}

// Conflict returns the conflict weight between two arrays (0 if unknown).
func (m *ConflictMatrix) Conflict(a, b *prog.Array) int64 {
	i, ok := m.pos[a]
	if !ok {
		return 0
	}
	j, ok := m.pos[b]
	if !ok {
		return 0
	}
	return m.vals[i][j]
}

// AverageThreshold returns the paper's default threshold T: the average
// conflict weight across array pairs. The matrix is sparse (most pairs
// are never co-accessed), so the average is taken over pairs with
// non-zero weight; including the zeros would drive T to 0 and invite
// re-layouting of statistically insignificant conflicts. Returns 0 when
// no pair conflicts.
func (m *ConflictMatrix) AverageThreshold() int64 {
	n := len(m.arrays)
	var sum, pairs int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m.vals[i][j] > 0 {
				sum += m.vals[i][j]
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / pairs
}

// Total returns the sum of all pairwise conflict weights, used to verify
// that a candidate re-layout actually reduces conflicts.
func (m *ConflictMatrix) Total() int64 {
	var sum int64
	for i := range m.arrays {
		for j := i + 1; j < len(m.arrays); j++ {
			sum += m.vals[i][j]
		}
	}
	return sum
}

func (m *ConflictMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "")
	for _, a := range m.arrays {
		fmt.Fprintf(&b, "%14s", a.Name)
	}
	b.WriteByte('\n')
	for i, a := range m.arrays {
		fmt.Fprintf(&b, "%-10s", a.Name)
		for j := range m.arrays {
			fmt.Fprintf(&b, "%14d", m.vals[i][j])
		}
		if i < len(m.arrays)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// VerifyGroup describes one process for pressure verification: the
// per-array union footprints plus how many references the process issues
// to each array (the number of concurrent access streams).
type VerifyGroup struct {
	FP   Footprints
	Refs map[*prog.Array]int
}

// Pressure measures the static lockstep-thrash potential of a layout.
// For every process and cache set, the number of simultaneously live
// blocks is estimated as Σ_arrays min(refs to the array, the array's
// footprint depth in the set): each reference is a stream contributing
// one live block, and a single stream walking a deep array revisits a
// set only after a full stride (no thrash on its own). Pressure is the
// excess of that live estimate over the associativity, summed. Several
// bands of one array squeezed into the same sets by a re-layout are
// visible here whenever several references walk them in lockstep — the
// damage mode the pairwise matrix cannot see.
func Pressure(groups []VerifyGroup, am AddressMap, geom cache.Geometry) (int64, error) {
	if err := geom.Validate(); err != nil {
		return 0, err
	}
	numSets := geom.NumSets()
	w := int64(geom.Assoc)
	var pressure int64
	live := make([]int64, numSets)
	depth := make([]int64, numSets)
	for _, g := range groups {
		for i := range live {
			live[i] = 0
		}
		for a, fp := range g.FP {
			for i := range depth {
				depth[i] = 0
			}
			blocks := make(map[int64]bool)
			fp.Elements(func(e int64) bool {
				addr := am.Addr(a, e)
				first := geom.BlockOf(addr)
				last := geom.BlockOf(addr + a.Elem - 1)
				for blk := first; blk <= last; blk++ {
					if !blocks[blk] {
						blocks[blk] = true
						depth[blk%numSets]++
					}
				}
				return true
			})
			streams := int64(g.Refs[a])
			if streams <= 0 {
				streams = 1
			}
			for s := range depth {
				d := depth[s]
				if d > streams {
					d = streams
				}
				live[s] += d
			}
		}
		for _, n := range live {
			if n > w {
				pressure += n - w
			}
		}
	}
	return pressure, nil
}

// SelectRelayoutVerified runs Figure 5's greedy pair selection with a
// per-step verification: a candidate bank assignment is kept only if it
// strictly lowers the Pressure over the verification groups. This guards
// against the transform's side effect of doubling an array's set depth
// within its half of the cache, which the paper's unverified greedy can
// turn into new conflicts.
//
// The verification groups should be the single-process co-access groups:
// arrays referenced in lockstep by one process thrash on every iteration
// when they overflow a set, which is the damage mode worth vetoing. The
// selection matrix m may additionally include successive-pair groups,
// whose conflicts are bounded one-time refills rather than per-iteration
// thrash. Returns the accepted banks and the before/after pressure.
func SelectRelayoutVerified(verifyGroups []VerifyGroup, m *ConflictMatrix, base AddressMap,
	threshold int64, geom cache.Geometry) (map[*prog.Array]int64, int64, int64, error) {

	halfC := geom.PageSize() / 2
	banks := make(map[*prog.Array]int64)
	before, err := Pressure(verifyGroups, base, geom)
	if err != nil {
		return nil, 0, 0, err
	}
	cur := before
	n := len(m.arrays)
	vals := make([][]int64, n)
	for i := range vals {
		vals[i] = append([]int64(nil), m.vals[i]...)
	}
	for {
		bi, bj, best := -1, -1, threshold
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				_, iDone := banks[m.arrays[i]]
				_, jDone := banks[m.arrays[j]]
				if iDone && jDone {
					continue
				}
				if vals[i][j] > best {
					bi, bj, best = i, j, vals[i][j]
				}
			}
		}
		if bi < 0 {
			return banks, before, cur, nil
		}
		vals[bi][bj] = 0
		vals[bj][bi] = 0
		ai, aj := m.arrays[bi], m.arrays[bj]

		candidate := make(map[*prog.Array]int64, len(banks)+2)
		for a, b := range banks {
			candidate[a] = b
		}
		_, iDone := banks[ai]
		_, jDone := banks[aj]
		switch {
		case iDone && !jDone:
			candidate[aj] = halfC - banks[ai]
		case jDone && !iDone:
			candidate[ai] = halfC - banks[aj]
		default:
			candidate[ai] = 0
			candidate[aj] = halfC
		}
		rl, err := ApplyRelayout(base, geom, candidate)
		if err != nil {
			return nil, 0, 0, err
		}
		p, err := Pressure(verifyGroups, rl, geom)
		if err != nil {
			return nil, 0, 0, err
		}
		if p < cur {
			banks = candidate
			cur = p
		}
	}
}

// RelevantFunc optionally restricts which pairs SelectRelayout may pick.
// With the co-access construction above the matrix is already restricted
// to Figure 5's eligible pairs, so nil is the common choice.
type RelevantFunc func(a, b *prog.Array) bool

// SelectRelayout runs the greedy algorithm of Figure 5: repeatedly pick
// the array pair with the maximum conflict weight above the threshold and
// assign the two arrays to opposite banks (0 and C/2). Arrays already
// assigned keep their bank; a pair in which both arrays are already
// assigned is skipped (their layouts were fixed by an earlier, heavier
// conflict). Returns the bank assignment to feed ApplyRelayout.
func SelectRelayout(m *ConflictMatrix, relevant RelevantFunc, threshold int64, geom cache.Geometry) map[*prog.Array]int64 {
	halfC := geom.PageSize() / 2
	banks := make(map[*prog.Array]int64)
	n := len(m.arrays)
	// Work on a copy so the caller's matrix is untouched.
	vals := make([][]int64, n)
	for i := range vals {
		vals[i] = append([]int64(nil), m.vals[i]...)
	}
	for {
		// Select the maximal remaining pair where at least one array is
		// not yet re-laid-out.
		bi, bj, best := -1, -1, threshold
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				_, iDone := banks[m.arrays[i]]
				_, jDone := banks[m.arrays[j]]
				if iDone && jDone {
					continue
				}
				if vals[i][j] > best {
					bi, bj, best = i, j, vals[i][j]
				}
			}
		}
		if bi < 0 {
			return banks
		}
		vals[bi][bj] = 0
		vals[bj][bi] = 0
		ai, aj := m.arrays[bi], m.arrays[bj]
		if relevant != nil && !relevant(ai, aj) {
			continue
		}
		_, iDone := banks[ai]
		_, jDone := banks[aj]
		switch {
		case iDone && !jDone:
			banks[aj] = halfC - banks[ai] // the opposite bank
		case jDone && !iDone:
			banks[ai] = halfC - banks[aj]
		default:
			banks[ai] = 0
			banks[aj] = halfC
		}
	}
}

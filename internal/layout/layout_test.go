package layout

import (
	"math/rand"
	"testing"

	"locsched/internal/cache"
	"locsched/internal/eset"
	"locsched/internal/prog"
)

var testGeom = cache.Geometry{Size: 8 * 1024, BlockSize: 32, Assoc: 2} // C = 4096

func TestPack(t *testing.T) {
	a := prog.MustArray("A", 4, 100) // 400B
	b := prog.MustArray("B", 4, 100)
	p, err := Pack(32, a, b)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	ba, _ := p.Base(a)
	bb, _ := p.Base(b)
	if ba != 0 {
		t.Errorf("base(A) = %d, want 0", ba)
	}
	if bb != 416 { // 400 rounded up to 416 (align 32)
		t.Errorf("base(B) = %d, want 416", bb)
	}
	if p.Addr(a, 10) != 40 {
		t.Errorf("Addr(A,10) = %d, want 40", p.Addr(a, 10))
	}
	if p.Addr(b, 0) != 416 {
		t.Errorf("Addr(B,0) = %d, want 416", p.Addr(b, 0))
	}
	if got := p.Arrays(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("Arrays = %v", got)
	}
	if p.Size()%32 != 0 {
		t.Errorf("Size %d not aligned", p.Size())
	}
}

func TestPackValidation(t *testing.T) {
	a := prog.MustArray("A", 4, 100)
	if _, err := Pack(0, a); err == nil {
		t.Error("zero alignment should fail")
	}
	if _, err := Pack(32, a, a); err == nil {
		t.Error("duplicate array should fail")
	}
	if _, err := Pack(32, nil); err == nil {
		t.Error("nil array should fail")
	}
}

func TestPackUnknownArrayPanics(t *testing.T) {
	a := prog.MustArray("A", 4, 100)
	other := prog.MustArray("X", 4, 100)
	p := MustPack(32, a)
	defer func() {
		if recover() == nil {
			t.Error("Addr of unknown array should panic")
		}
	}()
	p.Addr(other, 0)
}

func TestRelayoutFormula(t *testing.T) {
	// One array re-laid-out with b = C/2: element offsets q*(C/2)+r must
	// land at newBase + q*C + r + C/2.
	a := prog.MustArray("A", 4, 4096) // 16KB = 4 half-pages of C/2 = 2KB
	p := MustPack(32, a)
	halfC := testGeom.PageSize() / 2
	rl, err := ApplyRelayout(p, testGeom, map[*prog.Array]int64{a: halfC})
	if err != nil {
		t.Fatalf("ApplyRelayout: %v", err)
	}
	newBase := rl.Addr(a, 0) - halfC
	if newBase%testGeom.PageSize() != 0 {
		t.Errorf("region base %d not page aligned", newBase)
	}
	for _, lin := range []int64{0, 1, 511, 512, 1000, 4095} {
		off := lin * a.Elem
		q, r := off/halfC, off%halfC
		want := newBase + q*testGeom.PageSize() + r + halfC
		if got := rl.Addr(a, lin); got != want {
			t.Errorf("Addr(A,%d) = %d, want %d", lin, got, want)
		}
	}
}

func TestRelayoutBankDisjointness(t *testing.T) {
	// The paper's guarantee: arrays with different b never map to the
	// same cache set.
	a := prog.MustArray("K1", 4, 3000)
	b := prog.MustArray("K2", 4, 3000)
	p := MustPack(32, a, b)
	halfC := testGeom.PageSize() / 2
	rl, err := ApplyRelayout(p, testGeom, map[*prog.Array]int64{a: 0, b: halfC})
	if err != nil {
		t.Fatal(err)
	}
	setsA := make(map[int64]bool)
	for lin := int64(0); lin < a.Elems(); lin++ {
		setsA[testGeom.SetOf(rl.Addr(a, lin))] = true
	}
	for lin := int64(0); lin < b.Elems(); lin++ {
		if setsA[testGeom.SetOf(rl.Addr(b, lin))] {
			t.Fatalf("element %d of K2 maps to a set used by K1", lin)
		}
	}
}

func TestRelayoutAddressesStayUnique(t *testing.T) {
	// No two elements (across all arrays) may share a physical address.
	a := prog.MustArray("A", 4, 2000)
	b := prog.MustArray("B", 4, 2000)
	c := prog.MustArray("C", 4, 2000)
	p := MustPack(32, a, b, c)
	halfC := testGeom.PageSize() / 2
	rl, err := ApplyRelayout(p, testGeom, map[*prog.Array]int64{a: 0, b: halfC})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]string)
	for _, arr := range []*prog.Array{a, b, c} {
		for lin := int64(0); lin < arr.Elems(); lin++ {
			addr := rl.Addr(arr, lin)
			if who, dup := seen[addr]; dup {
				t.Fatalf("address %d claimed by both %s and %s[%d]", addr, who, arr.Name, lin)
			}
			seen[addr] = arr.Name
		}
	}
}

func TestRelayoutValidation(t *testing.T) {
	a := prog.MustArray("A", 4, 100)
	p := MustPack(32, a)
	if _, err := ApplyRelayout(p, testGeom, map[*prog.Array]int64{a: 7}); err == nil {
		t.Error("bank not in {0, C/2} should fail")
	}
	stranger := prog.MustArray("S", 4, 100)
	if _, err := ApplyRelayout(p, testGeom, map[*prog.Array]int64{stranger: 0}); err == nil {
		t.Error("array absent from base layout should fail")
	}
}

func TestRelayoutPassthrough(t *testing.T) {
	a := prog.MustArray("A", 4, 100)
	b := prog.MustArray("B", 4, 100)
	p := MustPack(32, a, b)
	rl, err := ApplyRelayout(p, testGeom, map[*prog.Array]int64{b: 0})
	if err != nil {
		t.Fatal(err)
	}
	for lin := int64(0); lin < 100; lin++ {
		if rl.Addr(a, lin) != p.Addr(a, lin) {
			t.Fatalf("non-relaid array A must keep its base addresses")
		}
	}
	if len(rl.Relaid()) != 1 {
		t.Errorf("Relaid = %v, want 1 entry", rl.Relaid())
	}
	if rl.String() == "" {
		t.Error("String should be non-empty")
	}
}

// coGroup builds one co-access group over whole arrays.
func coGroup(arrs ...*prog.Array) Footprints {
	fp := make(Footprints, len(arrs))
	for _, a := range arrs {
		fp[a] = eset.FromRuns(eset.Run{Lo: 0, Hi: a.Elems()})
	}
	return fp
}

func TestConflictMatrixTriple(t *testing.T) {
	// Three page-aligned 4KB arrays co-accessed by one process in an 8KB
	// 2-way cache: every set holds 3 blocks > 2 ways → every pair
	// accumulates min(1,1) × 128 sets. A pair alone (2 = ways) is fine.
	a := prog.MustArray("A", 4, 1024) // 4KB each
	b := prog.MustArray("B", 4, 1024)
	c := prog.MustArray("C", 4, 1024)
	p := MustPack(testGeom.PageSize(), a, b, c) // page-aligned: perfect aliasing
	m, err := Conflicts([]Footprints{coGroup(a, b, c)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]*prog.Array{{a, b}, {a, c}, {b, c}} {
		if got := m.Conflict(pair[0], pair[1]); got != 128 {
			t.Errorf("Conflict(%s,%s) = %d, want 128", pair[0].Name, pair[1].Name, got)
		}
	}
	// The same three arrays co-accessed only pairwise: 2 blocks per set
	// fit in 2 ways → no conflicts.
	m2, err := Conflicts([]Footprints{coGroup(a, b), coGroup(b, c)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Conflict(a, b); got != 0 {
		t.Errorf("pairwise co-access Conflict(A,B) = %d, want 0 (fits in ways)", got)
	}
}

func TestConflictMatrixDisjointSets(t *testing.T) {
	small1 := prog.MustArray("S1", 4, 256) // 1KB: sets 0..31
	small2 := prog.MustArray("S2", 4, 256) // next KB: sets 32..63
	p := MustPack(32, small1, small2)
	m, err := Conflicts([]Footprints{coGroup(small1, small2)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Conflict(small1, small2); got != 0 {
		t.Errorf("Conflict(S1,S2) = %d, want 0 (disjoint sets)", got)
	}
}

func TestConflictMatrixDeepArrays(t *testing.T) {
	// Two 16KB arrays (4 blocks per set each) co-accessed: 8 > 2 ways →
	// min(4,4) per set × 128 sets.
	big1 := prog.MustArray("G", 4, 4096)
	big2 := prog.MustArray("H", 4, 4096)
	p := MustPack(testGeom.PageSize(), big1, big2)
	m, err := Conflicts([]Footprints{coGroup(big1, big2)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(4 * 128)
	if got := m.Conflict(big1, big2); got != want {
		t.Errorf("Conflict(G,H) = %d, want %d", got, want)
	}
	if m.Conflict(big1, big1) != 0 {
		t.Error("diagonal should be 0")
	}
	// Groups accumulate: the same group twice doubles the weight.
	m2, err := Conflicts([]Footprints{coGroup(big1, big2), coGroup(big1, big2)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Conflict(big1, big2); got != 2*want {
		t.Errorf("doubled group Conflict = %d, want %d", got, 2*want)
	}
}

func TestFootprintsMerge(t *testing.T) {
	a := prog.MustArray("A", 4, 100)
	b := prog.MustArray("B", 4, 100)
	f1 := Footprints{a: eset.FromRuns(eset.Run{Lo: 0, Hi: 50})}
	f2 := Footprints{
		a: eset.FromRuns(eset.Run{Lo: 25, Hi: 75}),
		b: eset.FromRuns(eset.Run{Lo: 0, Hi: 10}),
	}
	m := f1.Merge(f2)
	if m[a].Card() != 75 {
		t.Errorf("merged A footprint = %d, want 75", m[a].Card())
	}
	if m[b].Card() != 10 {
		t.Errorf("merged B footprint = %d, want 10", m[b].Card())
	}
	// Originals untouched.
	if f1[a].Card() != 50 {
		t.Error("Merge must not mutate its receiver")
	}
}

func TestConflictMatrixUnknownArray(t *testing.T) {
	a := prog.MustArray("A", 4, 64)
	b := prog.MustArray("B", 4, 64)
	p := MustPack(32, a, b)
	m, err := Conflicts([]Footprints{coGroup(a, b)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	other := prog.MustArray("X", 4, 64)
	if m.Conflict(a, other) != 0 {
		t.Error("unknown array should conflict 0")
	}
}

func TestAverageThreshold(t *testing.T) {
	big1 := prog.MustArray("G", 4, 4096)
	big2 := prog.MustArray("H", 4, 4096)
	small := prog.MustArray("S", 4, 8)
	p := MustPack(testGeom.PageSize(), big1, big2, small)
	m, err := Conflicts([]Footprints{coGroup(big1, big2, small)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	gh := m.Conflict(big1, big2)
	gs := m.Conflict(big1, small)
	hs := m.Conflict(big2, small)
	want := (gh + gs + hs) / 3
	if got := m.AverageThreshold(); got != want {
		t.Errorf("AverageThreshold = %d, want %d", got, want)
	}
	// Fewer than two arrays → 0.
	m1, err := Conflicts([]Footprints{coGroup(big1)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if m1.AverageThreshold() != 0 {
		t.Error("threshold of single-array matrix should be 0")
	}
}

func TestSelectRelayoutAssignsOppositeBanks(t *testing.T) {
	big1 := prog.MustArray("G", 4, 4096)
	big2 := prog.MustArray("H", 4, 4096)
	p := MustPack(testGeom.PageSize(), big1, big2)
	m, err := Conflicts([]Footprints{coGroup(big1, big2)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	banks := SelectRelayout(m, nil, 0, testGeom)
	if len(banks) != 2 {
		t.Fatalf("banks = %v, want both arrays assigned", banks)
	}
	if banks[big1] == banks[big2] {
		t.Error("conflicting arrays must get opposite banks")
	}
	halfC := testGeom.PageSize() / 2
	for a, b := range banks {
		if b != 0 && b != halfC {
			t.Errorf("bank of %s = %d, want 0 or %d", a.Name, b, halfC)
		}
	}
}

func TestSelectRelayoutRespectsRelevance(t *testing.T) {
	big1 := prog.MustArray("G", 4, 4096)
	big2 := prog.MustArray("H", 4, 4096)
	p := MustPack(testGeom.PageSize(), big1, big2)
	m, err := Conflicts([]Footprints{coGroup(big1, big2)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	banks := SelectRelayout(m, func(a, b *prog.Array) bool { return false }, 0, testGeom)
	if len(banks) != 0 {
		t.Errorf("irrelevant pairs must not be re-laid-out, got %v", banks)
	}
}

func TestSelectRelayoutThreshold(t *testing.T) {
	big1 := prog.MustArray("G", 4, 4096)
	big2 := prog.MustArray("H", 4, 4096)
	p := MustPack(testGeom.PageSize(), big1, big2)
	m, err := Conflicts([]Footprints{coGroup(big1, big2)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold above the max conflict: nothing selected.
	banks := SelectRelayout(m, nil, m.Conflict(big1, big2)+1, testGeom)
	if len(banks) != 0 {
		t.Errorf("threshold above max should select nothing, got %v", banks)
	}
}

func TestSelectRelayoutChain(t *testing.T) {
	// Three mutually conflicting arrays: the third must still receive a
	// bank opposite to its heaviest already-assigned partner.
	a := prog.MustArray("A", 4, 4096)
	b := prog.MustArray("B", 4, 4096)
	c := prog.MustArray("C", 4, 2048)
	p := MustPack(testGeom.PageSize(), a, b, c)
	m, err := Conflicts([]Footprints{coGroup(a, b, c)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	banks := SelectRelayout(m, nil, 0, testGeom)
	if len(banks) != 3 {
		t.Fatalf("banks = %v, want 3 entries", banks)
	}
	if banks[a] == banks[b] {
		t.Error("heaviest pair (A,B) must get opposite banks")
	}
}

// TestRelayoutGuaranteeRandomized property: after SelectRelayout +
// ApplyRelayout, any two arrays in different banks have disjoint cache
// sets, for random array sizes.
func TestRelayoutGuaranteeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		var arrs []*prog.Array
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			elems := int64(256 + rng.Intn(4096))
			arrs = append(arrs, prog.MustArray(string(rune('A'+i)), 4, elems))
		}
		p := MustPack(32, arrs...)
		m, err := Conflicts([]Footprints{coGroup(arrs...)}, p, testGeom)
		if err != nil {
			t.Fatal(err)
		}
		banks := SelectRelayout(m, nil, 0, testGeom)
		rl, err := ApplyRelayout(p, testGeom, banks)
		if err != nil {
			t.Fatal(err)
		}
		// Collect set usage per re-laid array.
		sets := make(map[*prog.Array]map[int64]bool)
		for a := range banks {
			s := make(map[int64]bool)
			for lin := int64(0); lin < a.Elems(); lin++ {
				s[testGeom.SetOf(rl.Addr(a, lin))] = true
			}
			sets[a] = s
		}
		for x, bx := range banks {
			for y, by := range banks {
				if x == y || bx == by {
					continue
				}
				for s := range sets[x] {
					if sets[y][s] {
						t.Fatalf("trial %d: arrays %s and %s in opposite banks share set %d",
							trial, x.Name, y.Name, s)
					}
				}
			}
		}
	}
}

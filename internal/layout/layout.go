// Package layout implements the paper's data-mapping phase (Section 3,
// Figures 4 and 5): assigning arrays to memory addresses, estimating
// cache conflicts between array pairs, and re-laying out conflicting
// arrays in interleaved half-cache-page chunks so that arrays placed in
// different "banks" can never map to the same cache set.
//
// The paper's transform is
//
//	addr'(e) = 2·addr(e) − addr(e) mod (C/2) + b
//
// with C the cache page size (cache size / associativity) and b ∈ {0,
// C/2}. Writing addr(e) = q·(C/2) + r, this is addr'(e) = q·C + r + b:
// each half-page chunk q of the array lands at page q, offset r + b. We
// apply the transform to array-local offsets and give every re-laid-out
// array a fresh page-aligned region of twice its size, which preserves
// the paper's set-disjointness guarantee while keeping distinct elements
// at distinct physical addresses.
package layout

import (
	"fmt"
	"sort"
	"strings"

	"locsched/internal/cache"
	"locsched/internal/prog"
)

// AddressMap assigns a physical byte address to every array element.
type AddressMap interface {
	// Addr returns the address of the element with the given row-major
	// linear index. It panics on arrays the map does not know.
	Addr(arr *prog.Array, linear int64) int64
	// Arrays lists the mapped arrays in layout order.
	Arrays() []*prog.Array
	// Size returns the total extent of the mapped region in bytes.
	Size() int64
}

// AddrFormula is a closed-form description of Addr(arr, ·) for one array:
//
//	off     = linear × Elem
//	Page=0:  addr = Base + off                          (linear layouts)
//	Page>0:  addr = Base + (off/(Page/2))·Page + off mod (Page/2) + Bank
//
// i.e. either a plain base-plus-offset mapping or the paper's interleaved
// half-page transform. Formulas are comparable values, so two maps that
// place an array identically produce equal formulas — the property the
// trace compiler's cross-run stream cache keys on.
type AddrFormula struct {
	Base int64
	Elem int64
	Page int64 // 0 = linear; otherwise the cache-page period of the interleave
	Bank int64 // 0 or Page/2 when Page > 0
}

// Addr evaluates the formula at a linear element index.
func (f AddrFormula) Addr(linear int64) int64 {
	off := linear * f.Elem
	if f.Page == 0 {
		return f.Base + off
	}
	half := f.Page / 2
	return f.Base + (off/half)*f.Page + off%half + f.Bank
}

// AddrCompiler is an optional AddressMap fast path: maps that can state
// their per-array addressing in closed form let the trace compiler
// resolve each reference once per compilation (and share compiled
// streams across runs) instead of dispatching Addr per access.
type AddrCompiler interface {
	// CompileAddr returns the formula for arr, or ok=false when the
	// array's addressing is not expressible as an AddrFormula.
	CompileAddr(arr *prog.Array) (AddrFormula, bool)
}

// Packed lays arrays out contiguously in the order given, each aligned to
// Align bytes. This models the paper's "original memory layout"
// (Figure 4a).
type Packed struct {
	order []*prog.Array
	base  map[*prog.Array]int64
	size  int64
	align int64
}

// Pack builds a packed layout. align must be positive (use the cache
// block size to avoid accidental straddling differences between runs).
func Pack(align int64, arrays ...*prog.Array) (*Packed, error) {
	if align <= 0 {
		return nil, fmt.Errorf("layout: alignment %d must be positive", align)
	}
	p := &Packed{base: make(map[*prog.Array]int64, len(arrays)), align: align}
	var off int64
	seen := make(map[*prog.Array]bool, len(arrays))
	for _, a := range arrays {
		if a == nil {
			return nil, fmt.Errorf("layout: nil array")
		}
		if seen[a] {
			return nil, fmt.Errorf("layout: array %s packed twice", a.Name)
		}
		seen[a] = true
		off = roundUp(off, align)
		p.base[a] = off
		p.order = append(p.order, a)
		off += a.Bytes()
	}
	p.size = roundUp(off, align)
	return p, nil
}

// MustPack is Pack that panics on error.
func MustPack(align int64, arrays ...*prog.Array) *Packed {
	p, err := Pack(align, arrays...)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr implements AddressMap.
func (p *Packed) Addr(arr *prog.Array, linear int64) int64 {
	base, ok := p.base[arr]
	if !ok {
		panic(fmt.Sprintf("layout: array %s not in packed layout", arr.Name))
	}
	return base + linear*arr.Elem
}

// Base returns the base address of the array.
func (p *Packed) Base(arr *prog.Array) (int64, bool) {
	b, ok := p.base[arr]
	return b, ok
}

// CompileAddr implements AddrCompiler: packed arrays are base + off.
func (p *Packed) CompileAddr(arr *prog.Array) (AddrFormula, bool) {
	base, ok := p.base[arr]
	if !ok {
		return AddrFormula{}, false
	}
	return AddrFormula{Base: base, Elem: arr.Elem}, true
}

// Arrays implements AddressMap.
func (p *Packed) Arrays() []*prog.Array { return append([]*prog.Array(nil), p.order...) }

// Size implements AddressMap.
func (p *Packed) Size() int64 { return p.size }

// Relayouted wraps a base layout and applies the paper's interleaved
// half-page transform to a chosen subset of arrays.
type Relayouted struct {
	base    AddressMap
	pageC   int64
	banks   map[*prog.Array]int64 // b value: 0 or C/2
	newBase map[*prog.Array]int64 // page-aligned region start
	sizeTot int64
	relaid  []*prog.Array // deterministic order
}

// ApplyRelayout builds a layout in which every array in banks is moved to
// a fresh page-aligned region of twice its size and remapped with
// addr' = q·C + r + b (the paper's formula applied to array-local
// offsets). banks values must be 0 or C/2.
func ApplyRelayout(base AddressMap, geom cache.Geometry, banks map[*prog.Array]int64) (*Relayouted, error) {
	c := geom.PageSize()
	if c <= 0 || c%2 != 0 {
		return nil, fmt.Errorf("layout: cache page size %d must be positive and even", c)
	}
	r := &Relayouted{
		base:    base,
		pageC:   c,
		banks:   make(map[*prog.Array]int64, len(banks)),
		newBase: make(map[*prog.Array]int64, len(banks)),
	}
	// Deterministic processing order: sort by name.
	arrs := make([]*prog.Array, 0, len(banks))
	for a := range banks {
		arrs = append(arrs, a)
	}
	sort.Slice(arrs, func(i, j int) bool { return arrs[i].Name < arrs[j].Name })
	off := roundUp(base.Size(), c)
	for _, a := range arrs {
		b := banks[a]
		if b != 0 && b != c/2 {
			return nil, fmt.Errorf("layout: array %s: bank %d must be 0 or C/2=%d", a.Name, b, c/2)
		}
		known := false
		for _, ba := range base.Arrays() {
			if ba == a {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("layout: array %s not present in base layout", a.Name)
		}
		r.banks[a] = b
		r.newBase[a] = off
		r.relaid = append(r.relaid, a)
		// The transform at most doubles the extent; reserve 2× rounded to
		// whole pages.
		off += roundUp(2*a.Bytes(), c)
	}
	r.sizeTot = off
	return r, nil
}

// Addr implements AddressMap.
func (r *Relayouted) Addr(arr *prog.Array, linear int64) int64 {
	b, ok := r.banks[arr]
	if !ok {
		return r.base.Addr(arr, linear)
	}
	off := linear * arr.Elem
	half := r.pageC / 2
	q := off / half
	rem := off % half
	return r.newBase[arr] + q*r.pageC + rem + b
}

// CompileAddr implements AddrCompiler: re-laid-out arrays use the
// half-page interleave from their fresh region; others fall through to
// the base layout's formula when it has one.
func (r *Relayouted) CompileAddr(arr *prog.Array) (AddrFormula, bool) {
	b, ok := r.banks[arr]
	if !ok {
		if bc, ok := r.base.(AddrCompiler); ok {
			return bc.CompileAddr(arr)
		}
		return AddrFormula{}, false
	}
	return AddrFormula{Base: r.newBase[arr], Elem: arr.Elem, Page: r.pageC, Bank: b}, true
}

// Arrays implements AddressMap.
func (r *Relayouted) Arrays() []*prog.Array { return r.base.Arrays() }

// Size implements AddressMap.
func (r *Relayouted) Size() int64 { return r.sizeTot }

// Relaid returns the re-laid-out arrays with their bank offsets.
func (r *Relayouted) Relaid() map[*prog.Array]int64 {
	out := make(map[*prog.Array]int64, len(r.banks))
	for a, b := range r.banks {
		out[a] = b
	}
	return out
}

func (r *Relayouted) String() string {
	var parts []string
	for _, a := range r.relaid {
		parts = append(parts, fmt.Sprintf("%s@b=%d", a.Name, r.banks[a]))
	}
	return "relayout{" + strings.Join(parts, " ") + "}"
}

func roundUp(v, align int64) int64 {
	if align <= 0 {
		return v
	}
	rem := v % align
	if rem == 0 {
		return v
	}
	return v + align - rem
}

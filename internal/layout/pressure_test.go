package layout

import (
	"testing"

	"locsched/internal/cache"
	"locsched/internal/eset"
	"locsched/internal/prog"
)

func fullSet(a *prog.Array) *eset.Set {
	return eset.FromRuns(eset.Run{Lo: 0, Hi: a.Elems()})
}

func TestPressureLockstepTriple(t *testing.T) {
	// Three page-aligned 4KB arrays read in lockstep by one process in a
	// 2-way cache: 3 live streams per set > 2 ways → pressure 1×sets.
	a := prog.MustArray("A", 4, 1024)
	b := prog.MustArray("B", 4, 1024)
	c := prog.MustArray("C", 4, 1024)
	p := MustPack(testGeom.PageSize(), a, b, c)
	g := VerifyGroup{
		FP:   Footprints{a: fullSet(a), b: fullSet(b), c: fullSet(c)},
		Refs: map[*prog.Array]int{a: 1, b: 1, c: 1},
	}
	got, err := Pressure([]VerifyGroup{g}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if want := testGeom.NumSets(); got != want {
		t.Errorf("Pressure = %d, want %d (one excess stream per set)", got, want)
	}
}

func TestPressurePairFits(t *testing.T) {
	// Two lockstep streams fit a 2-way cache: zero pressure.
	a := prog.MustArray("A", 4, 1024)
	b := prog.MustArray("B", 4, 1024)
	p := MustPack(testGeom.PageSize(), a, b)
	g := VerifyGroup{
		FP:   Footprints{a: fullSet(a), b: fullSet(b)},
		Refs: map[*prog.Array]int{a: 1, b: 1},
	}
	got, err := Pressure([]VerifyGroup{g}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("Pressure = %d, want 0 (two streams fit two ways)", got)
	}
}

func TestPressureSingleStreamDeepArrayIsFree(t *testing.T) {
	// One reference streaming a 16KB array (4 blocks per set) revisits
	// each set only after a full stride: live estimate min(1, 4) = 1, no
	// pressure. This is what lets the Figure 4 transform double an
	// array's set depth without being vetoed.
	a := prog.MustArray("A", 4, 4096)
	p := MustPack(testGeom.PageSize(), a)
	g := VerifyGroup{
		FP:   Footprints{a: fullSet(a)},
		Refs: map[*prog.Array]int{a: 1},
	}
	got, err := Pressure([]VerifyGroup{g}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("Pressure = %d, want 0 (single stream)", got)
	}
}

func TestPressureMultipleRefsToDeepArray(t *testing.T) {
	// Three references walking three distinct bands of one array that a
	// re-layout folded into the same sets: live estimate min(3, depth 3)
	// = 3 > 2 ways → pressure (the MxM reduce damage mode).
	a := prog.MustArray("A", 4, 3072) // 12KB = depth 3 per set page-aligned
	p := MustPack(testGeom.PageSize(), a)
	g := VerifyGroup{
		FP:   Footprints{a: fullSet(a)},
		Refs: map[*prog.Array]int{a: 3},
	}
	got, err := Pressure([]VerifyGroup{g}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if want := testGeom.NumSets(); got != want {
		t.Errorf("Pressure = %d, want %d", got, want)
	}
}

func TestPressureMissingRefsDefaultsToOneStream(t *testing.T) {
	a := prog.MustArray("A", 4, 4096)
	p := MustPack(testGeom.PageSize(), a)
	g := VerifyGroup{FP: Footprints{a: fullSet(a)}} // no Refs map
	got, err := Pressure([]VerifyGroup{g}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("Pressure = %d, want 0 (defaults to one stream)", got)
	}
}

func TestPressureInvalidGeometry(t *testing.T) {
	a := prog.MustArray("A", 4, 64)
	p := MustPack(32, a)
	bad := cache.Geometry{Size: 100, BlockSize: 32, Assoc: 2}
	if _, err := Pressure(nil, p, bad); err == nil {
		t.Error("invalid geometry should fail")
	}
	_ = a
}

func TestSelectRelayoutVerifiedAcceptsImprovement(t *testing.T) {
	// The Track pattern: three lockstep aliasing arrays in a 2-way cache.
	// Verified selection must separate a pair and strictly reduce
	// pressure.
	a := prog.MustArray("A", 4, 1024)
	b := prog.MustArray("B", 4, 1024)
	c := prog.MustArray("C", 4, 1024)
	base := MustPack(testGeom.PageSize(), a, b, c)
	group := VerifyGroup{
		FP:   Footprints{a: fullSet(a), b: fullSet(b), c: fullSet(c)},
		Refs: map[*prog.Array]int{a: 1, b: 1, c: 1},
	}
	cm, err := Conflicts([]Footprints{group.FP}, base, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	banks, before, after, err := SelectRelayoutVerified([]VerifyGroup{group}, cm, base, 0, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if len(banks) == 0 {
		t.Fatalf("verified selection should re-lay out the triple (before=%d after=%d)", before, after)
	}
	if after >= before {
		t.Errorf("pressure should strictly drop: before %d, after %d", before, after)
	}
	rl, err := ApplyRelayout(base, testGeom, banks)
	if err != nil {
		t.Fatal(err)
	}
	check, err := Pressure([]VerifyGroup{group}, rl, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if check != after {
		t.Errorf("reported after-pressure %d, recomputed %d", after, check)
	}
}

func TestSelectRelayoutVerifiedRejectsHarm(t *testing.T) {
	// Three references into three bands of ONE deep array: any re-layout
	// of that array folds the bands together (the MxM reduce damage
	// mode), so nothing should be selected even with conflicts present
	// from a second array.
	deep := prog.MustArray("deep", 4, 3072) // 3 pages
	other := prog.MustArray("other", 4, 1024)
	base := MustPack(testGeom.PageSize(), deep, other)
	bandSet := func(band int64) *eset.Set {
		return eset.FromRuns(eset.Run{Lo: band * 1024, Hi: (band + 1) * 1024})
	}
	reduceLike := VerifyGroup{
		FP: Footprints{
			deep:  bandSet(0).Union(bandSet(1)).Union(bandSet(2)),
			other: fullSet(other),
		},
		Refs: map[*prog.Array]int{deep: 3, other: 1},
	}
	cm, err := Conflicts([]Footprints{reduceLike.FP}, base, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	banks, before, after, err := SelectRelayoutVerified([]VerifyGroup{reduceLike}, cm, base, 0, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Errorf("verified selection made pressure worse: %d -> %d with banks %v", before, after, banks)
	}
}

func TestConflictMatrixAccessors(t *testing.T) {
	a := prog.MustArray("A", 4, 1024)
	b := prog.MustArray("B", 4, 1024)
	c := prog.MustArray("C", 4, 1024)
	p := MustPack(testGeom.PageSize(), a, b, c)
	m, err := Conflicts([]Footprints{coGroup(a, b, c)}, p, testGeom)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Arrays(); len(got) != 3 {
		t.Errorf("Arrays = %v", got)
	}
	if m.Total() != m.Conflict(a, b)+m.Conflict(a, c)+m.Conflict(b, c) {
		t.Error("Total should sum the upper triangle")
	}
	if m.String() == "" {
		t.Error("String should render")
	}
}

func TestAddressMapAccessors(t *testing.T) {
	a := prog.MustArray("A", 4, 256)
	base := MustPack(32, a)
	rl, err := ApplyRelayout(base, testGeom, map[*prog.Array]int64{a: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := rl.Arrays(); len(got) != 1 || got[0] != a {
		t.Errorf("Arrays = %v", got)
	}
	if rl.Size() <= base.Size() {
		t.Errorf("re-laid size %d should exceed base %d", rl.Size(), base.Size())
	}
}

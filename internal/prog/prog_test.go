package prog

import (
	"testing"

	"locsched/internal/presburger"
)

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray("", 4, 10); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewArray("A", 0, 10); err == nil {
		t.Error("zero element size should fail")
	}
	if _, err := NewArray("A", 4); err == nil {
		t.Error("no dimensions should fail")
	}
	if _, err := NewArray("A", 4, 10, 0); err == nil {
		t.Error("zero extent should fail")
	}
	a, err := NewArray("A", 4, 8000, 10)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	if a.Rank() != 2 {
		t.Errorf("Rank = %d, want 2", a.Rank())
	}
	if a.Elems() != 80000 {
		t.Errorf("Elems = %d, want 80000", a.Elems())
	}
	if a.Bytes() != 320000 {
		t.Errorf("Bytes = %d, want 320000", a.Bytes())
	}
	if a.String() != "A[8000][10]" {
		t.Errorf("String = %q", a.String())
	}
}

func TestLinearIndexRowMajor(t *testing.T) {
	a := MustArray("A", 4, 3, 5)
	if got := a.LinearIndex([]int64{0, 0}); got != 0 {
		t.Errorf("LinearIndex(0,0) = %d, want 0", got)
	}
	if got := a.LinearIndex([]int64{1, 0}); got != 5 {
		t.Errorf("LinearIndex(1,0) = %d, want 5", got)
	}
	if got := a.LinearIndex([]int64{2, 4}); got != 14 {
		t.Errorf("LinearIndex(2,4) = %d, want 14", got)
	}
}

func TestLinearIndexWraps(t *testing.T) {
	a := MustArray("A", 4, 3, 5)
	// Out-of-bounds indices wrap modulo the extent.
	if got := a.LinearIndex([]int64{3, 0}); got != 0 {
		t.Errorf("LinearIndex(3,0) = %d, want 0 (wrapped)", got)
	}
	if got := a.LinearIndex([]int64{-1, 0}); got != 10 {
		t.Errorf("LinearIndex(-1,0) = %d, want 10 (wrapped)", got)
	}
}

func TestLinearIndexRankMismatchPanics(t *testing.T) {
	a := MustArray("A", 4, 3, 5)
	defer func() {
		if recover() == nil {
			t.Error("rank mismatch should panic")
		}
	}()
	a.LinearIndex([]int64{1})
}

func TestNewRefValidation(t *testing.T) {
	a := MustArray("A", 4, 100)
	sp := presburger.MustSpace("i")
	m1 := presburger.Identity(sp)
	m2 := presburger.MustMap(sp, presburger.Var(1, 0), presburger.Const(1, 0))
	if _, err := NewRef(nil, m1, Read); err == nil {
		t.Error("nil array should fail")
	}
	if _, err := NewRef(a, nil, Read); err == nil {
		t.Error("nil map should fail")
	}
	if _, err := NewRef(a, m2, Read); err == nil {
		t.Error("arity mismatch should fail")
	}
	r, err := NewRef(a, m1, Write)
	if err != nil {
		t.Fatalf("NewRef: %v", err)
	}
	if r.Kind.String() != "W" {
		t.Errorf("Kind = %v, want W", r.Kind)
	}
}

func TestProcessSpecValidation(t *testing.T) {
	a := MustArray("A", 4, 100)
	iter := Seg("i", 0, 10)
	ref := StreamRef(a, Read, iter, 1, 0)
	if _, err := NewProcessSpec("", iter, 0, ref); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewProcessSpec("p", nil, 0, ref); err == nil {
		t.Error("nil iteration space should fail")
	}
	if _, err := NewProcessSpec("p", iter, -1, ref); err == nil {
		t.Error("negative compute should fail")
	}
	if _, err := NewProcessSpec("p", iter, 0); err == nil {
		t.Error("no references should fail")
	}
	other := Seg("j", 0, 10)
	if _, err := NewProcessSpec("p", other, 0, ref); err == nil {
		t.Error("reference over wrong space should fail")
	}
}

func TestProcessSpecCounts(t *testing.T) {
	a := MustArray("A", 4, 100)
	b := MustArray("B", 4, 100)
	iter := Seg("i", 0, 50)
	p := MustProcessSpec("p", iter, 2,
		StreamRef(a, Read, iter, 1, 0),
		StreamRef(b, Write, iter, 1, 0),
		StreamRef(a, Read, iter, 1, 1),
	)
	n, err := p.Iterations()
	if err != nil {
		t.Fatalf("Iterations: %v", err)
	}
	if n != 50 {
		t.Errorf("Iterations = %d, want 50", n)
	}
	// cached path
	n2, _ := p.Iterations()
	if n2 != n {
		t.Errorf("cached Iterations = %d, want %d", n2, n)
	}
	acc, err := p.Accesses()
	if err != nil {
		t.Fatalf("Accesses: %v", err)
	}
	if acc != 150 {
		t.Errorf("Accesses = %d, want 150", acc)
	}
	arrays := p.Arrays()
	if len(arrays) != 2 || arrays[0] != a || arrays[1] != b {
		t.Errorf("Arrays = %v, want [A B] in first-use order", arrays)
	}
}

func TestRef2D(t *testing.T) {
	a := MustArray("A", 4, 8000, 10)
	iter := Seg("i", 0, 3000)
	// The paper's reference A[i1*1000 + i2][5] with i1 fixed: here A[i + 2000][5].
	r := Ref2D(a, Read, iter.Space(), []int64{1}, 2000, nil, 5)
	got := r.Map.Apply([]int64{7}, nil)
	if got[0] != 2007 || got[1] != 5 {
		t.Errorf("Apply(7) = %v, want [2007 5]", got)
	}
}

func TestSegBounds(t *testing.T) {
	s := Seg("i", 5, 12)
	n, err := s.Card()
	if err != nil {
		t.Fatalf("Card: %v", err)
	}
	if n != 7 {
		t.Errorf("Card = %d, want 7", n)
	}
	if !s.Contains([]int64{5}) || !s.Contains([]int64{11}) || s.Contains([]int64{12}) {
		t.Error("Seg bounds are wrong")
	}
}

// Package prog models the array-intensive program fragments the paper
// schedules: arrays with row-major layouts, affine array references, and
// processes defined by an iteration space plus a list of references
// (Figure 1 of the paper).
//
// A ProcessSpec is the static description the scheduler analyses (its data
// spaces and sharing) and the simulator executes (its address trace).
package prog

import (
	"fmt"

	"locsched/internal/presburger"
)

// Array describes a program array: a name, per-dimension extents, and an
// element size in bytes. Elements are laid out row-major.
type Array struct {
	Name string
	Dims []int64 // extent of each dimension; all must be positive
	Elem int64   // element size in bytes
}

// NewArray builds and validates an array descriptor.
func NewArray(name string, elemBytes int64, dims ...int64) (*Array, error) {
	if name == "" {
		return nil, fmt.Errorf("prog: array needs a name")
	}
	if elemBytes <= 0 {
		return nil, fmt.Errorf("prog: array %s: element size %d must be positive", name, elemBytes)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("prog: array %s: needs at least one dimension", name)
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("prog: array %s: dimension %d extent %d must be positive", name, i, d)
		}
	}
	return &Array{Name: name, Dims: append([]int64(nil), dims...), Elem: elemBytes}, nil
}

// MustArray is NewArray that panics on error.
func MustArray(name string, elemBytes int64, dims ...int64) *Array {
	a, err := NewArray(name, elemBytes, dims...)
	if err != nil {
		panic(err)
	}
	return a
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.Dims) }

// Elems returns the total number of elements.
func (a *Array) Elems() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Bytes returns the total array size in bytes.
func (a *Array) Bytes() int64 { return a.Elems() * a.Elem }

// LinearIndex converts a multi-dimensional index to the row-major linear
// element index. Indices outside the declared extents are clamped into
// range modulo the extent; this mirrors the paper's implicit assumption
// that references stay in bounds while keeping synthetic workloads safe.
func (a *Array) LinearIndex(idx []int64) int64 {
	if len(idx) != len(a.Dims) {
		panic(fmt.Sprintf("prog: array %s: index rank %d != %d", a.Name, len(idx), len(a.Dims)))
	}
	var lin int64
	for i, x := range idx {
		d := a.Dims[i]
		x %= d
		if x < 0 {
			x += d
		}
		lin = lin*d + x
	}
	return lin
}

func (a *Array) String() string {
	s := a.Name
	for _, d := range a.Dims {
		s += fmt.Sprintf("[%d]", d)
	}
	return s
}

// AccessKind distinguishes read from write references.
type AccessKind int

const (
	// Read is a load reference.
	Read AccessKind = iota
	// Write is a store reference.
	Write
)

func (k AccessKind) String() string {
	if k == Write {
		return "W"
	}
	return "R"
}

// Ref is an affine array reference: at iteration point x the reference
// touches Array element Map(x).
type Ref struct {
	Array *Array
	Map   *presburger.Map // iteration space -> array subscript vector
	Kind  AccessKind
}

// NewRef builds and validates a reference. The map's output arity must
// match the array rank.
func NewRef(a *Array, m *presburger.Map, kind AccessKind) (Ref, error) {
	if a == nil {
		return Ref{}, fmt.Errorf("prog: reference needs an array")
	}
	if m == nil {
		return Ref{}, fmt.Errorf("prog: reference to %s needs an access map", a.Name)
	}
	if m.OutDim() != a.Rank() {
		return Ref{}, fmt.Errorf("prog: reference to %s: map arity %d != array rank %d", a.Name, m.OutDim(), a.Rank())
	}
	return Ref{Array: a, Map: m, Kind: kind}, nil
}

// MustRef is NewRef that panics on error.
func MustRef(a *Array, m *presburger.Map, kind AccessKind) Ref {
	r, err := NewRef(a, m, kind)
	if err != nil {
		panic(err)
	}
	return r
}

func (r Ref) String() string {
	return fmt.Sprintf("%s %s%v", r.Kind, r.Array.Name, r.Map)
}

// ProcessSpec is the static description of one schedulable process: the
// iteration space it executes, the array references issued per iteration,
// and the compute cycles each iteration costs beyond its memory accesses.
type ProcessSpec struct {
	Name            string
	IterSpace       *presburger.BasicSet
	Refs            []Ref
	ComputePerIter  int64 // extra CPU cycles per iteration
	iterations      int64 // computed at construction; see iterationsErr
	iterationsErr   error // non-nil when the space is uncountable
	iterationsValid bool
}

// NewProcessSpec builds and validates a process description. Every
// reference map must be over the iteration space's variable space.
func NewProcessSpec(name string, iter *presburger.BasicSet, computePerIter int64, refs ...Ref) (*ProcessSpec, error) {
	if name == "" {
		return nil, fmt.Errorf("prog: process needs a name")
	}
	if iter == nil {
		return nil, fmt.Errorf("prog: process %s needs an iteration space", name)
	}
	if computePerIter < 0 {
		return nil, fmt.Errorf("prog: process %s: negative compute cost", name)
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("prog: process %s needs at least one reference", name)
	}
	for i, r := range refs {
		if !r.Map.InSpace().Equal(iter.Space()) {
			return nil, fmt.Errorf("prog: process %s: reference %d map space %v != iteration space %v",
				name, i, r.Map.InSpace(), iter.Space())
		}
	}
	p := &ProcessSpec{
		Name:           name,
		IterSpace:      iter,
		Refs:           append([]Ref(nil), refs...),
		ComputePerIter: computePerIter,
	}
	// Count the iteration space eagerly: specs are shared read-only by
	// concurrent experiment cells, so no lazily-written state may remain.
	p.iterations, p.iterationsErr = iter.Card()
	if p.iterationsErr != nil {
		p.iterationsErr = fmt.Errorf("prog: process %s: %w", name, p.iterationsErr)
	}
	p.iterationsValid = true
	return p, nil
}

// MustProcessSpec is NewProcessSpec that panics on error.
func MustProcessSpec(name string, iter *presburger.BasicSet, computePerIter int64, refs ...Ref) *ProcessSpec {
	p, err := NewProcessSpec(name, iter, computePerIter, refs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Iterations returns the exact number of iteration points (computed once
// at construction; safe for concurrent use).
func (p *ProcessSpec) Iterations() (int64, error) {
	if !p.iterationsValid {
		// Zero-value or hand-rolled spec: fall back to counting directly.
		n, err := p.IterSpace.Card()
		if err != nil {
			return 0, fmt.Errorf("prog: process %s: %w", p.Name, err)
		}
		return n, nil
	}
	if p.iterationsErr != nil {
		return 0, p.iterationsErr
	}
	return p.iterations, nil
}

// Accesses returns the total number of memory references the process
// issues: iterations × references per iteration.
func (p *ProcessSpec) Accesses() (int64, error) {
	n, err := p.Iterations()
	if err != nil {
		return 0, err
	}
	return n * int64(len(p.Refs)), nil
}

// Arrays returns the distinct arrays the process references, in first-use
// order.
func (p *ProcessSpec) Arrays() []*Array {
	seen := make(map[*Array]bool, len(p.Refs))
	var out []*Array
	for _, r := range p.Refs {
		if !seen[r.Array] {
			seen[r.Array] = true
			out = append(out, r.Array)
		}
	}
	return out
}

func (p *ProcessSpec) String() string {
	return fmt.Sprintf("process %s: %d refs over %v", p.Name, len(p.Refs), p.IterSpace.Space())
}

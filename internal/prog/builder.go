package prog

import (
	"locsched/internal/presburger"
)

// Seg returns the 1-D iteration space {[i] : lo <= i < hi} over a fresh
// space named after the variable.
func Seg(varName string, lo, hi int64) *presburger.BasicSet {
	sp := presburger.MustSpace(varName)
	return presburger.MustRect(sp, []int64{lo}, []int64{hi})
}

// Ref1D builds a reference to a rank-1 array with subscript
// sum(coefs[i]*x_i) + k over the given iteration space.
func Ref1D(arr *Array, kind AccessKind, space *presburger.Space, coefs []int64, k int64) Ref {
	e := exprOf(space, coefs, k)
	return MustRef(arr, presburger.MustMap(space, e), kind)
}

// Ref2D builds a reference to a rank-2 array with subscripts
// (sum(c0[i]*x_i)+k0, sum(c1[i]*x_i)+k1) over the given iteration space.
func Ref2D(arr *Array, kind AccessKind, space *presburger.Space, c0 []int64, k0 int64, c1 []int64, k1 int64) Ref {
	return MustRef(arr, presburger.MustMap(space, exprOf(space, c0, k0), exprOf(space, c1, k1)), kind)
}

func exprOf(space *presburger.Space, coefs []int64, k int64) presburger.LinExpr {
	n := space.Dim()
	e := presburger.Const(n, k)
	for i, c := range coefs {
		if i >= n {
			break
		}
		if c != 0 {
			e = e.Add(presburger.Term(n, i, c))
		}
	}
	return e
}

// StreamRef builds the common pattern of the paper's Figure 1: a rank-1
// iteration space [i] touching a rank-1 array at stride*i + offset.
func StreamRef(arr *Array, kind AccessKind, iter *presburger.BasicSet, stride, offset int64) Ref {
	return Ref1D(arr, kind, iter.Space(), []int64{stride}, offset)
}

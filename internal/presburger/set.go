package presburger

import (
	"fmt"
	"math"
	"strings"
)

// ConstraintKind distinguishes inequality from equality constraints.
type ConstraintKind int

const (
	// GE constrains Expr >= 0.
	GE ConstraintKind = iota
	// EQ constrains Expr == 0.
	EQ
)

// Constraint is an affine constraint over the variables of a BasicSet's
// space: Expr >= 0 (GE) or Expr == 0 (EQ).
type Constraint struct {
	Kind ConstraintKind
	Expr LinExpr
}

// GEZero builds the constraint e >= 0.
func GEZero(e LinExpr) Constraint { return Constraint{Kind: GE, Expr: e} }

// EQZero builds the constraint e == 0.
func EQZero(e LinExpr) Constraint { return Constraint{Kind: EQ, Expr: e} }

// Holds reports whether the constraint is satisfied at the point.
func (c Constraint) Holds(pt []int64) bool {
	v := c.Expr.Eval(pt)
	if c.Kind == EQ {
		return v == 0
	}
	return v >= 0
}

func (c Constraint) stringIn(space *Space) string {
	op := ">="
	if c.Kind == EQ {
		op = "="
	}
	return c.Expr.StringIn(space) + " " + op + " 0"
}

// BasicSet is a conjunction of affine constraints over an integer tuple
// space: { x in Z^n : c_1(x) /\ ... /\ c_m(x) }.
type BasicSet struct {
	space *Space
	cons  []Constraint
}

// NewBasicSet builds a set over space from the given constraints.
// Constraint expressions must have width space.Dim().
func NewBasicSet(space *Space, cons ...Constraint) (*BasicSet, error) {
	if space == nil {
		return nil, fmt.Errorf("presburger: nil space")
	}
	for i, c := range cons {
		if c.Expr.Dim() != space.Dim() {
			return nil, fmt.Errorf("presburger: constraint %d width %d != space dim %d", i, c.Expr.Dim(), space.Dim())
		}
	}
	return &BasicSet{space: space, cons: append([]Constraint(nil), cons...)}, nil
}

// MustBasicSet is NewBasicSet that panics on error.
func MustBasicSet(space *Space, cons ...Constraint) *BasicSet {
	b, err := NewBasicSet(space, cons...)
	if err != nil {
		panic(err)
	}
	return b
}

// Rect builds the half-open box { x : lo[i] <= x_i < hi[i] }.
// len(lo) and len(hi) must equal space.Dim().
func Rect(space *Space, lo, hi []int64) (*BasicSet, error) {
	if len(lo) != space.Dim() || len(hi) != space.Dim() {
		return nil, fmt.Errorf("presburger: Rect bounds width %d/%d != space dim %d", len(lo), len(hi), space.Dim())
	}
	n := space.Dim()
	cons := make([]Constraint, 0, 2*n)
	for i := 0; i < n; i++ {
		// x_i - lo_i >= 0
		cons = append(cons, GEZero(Term(n, i, 1).AddConst(-lo[i])))
		// hi_i - 1 - x_i >= 0
		cons = append(cons, GEZero(Term(n, i, -1).AddConst(hi[i]-1)))
	}
	return NewBasicSet(space, cons...)
}

// MustRect is Rect that panics on error.
func MustRect(space *Space, lo, hi []int64) *BasicSet {
	b, err := Rect(space, lo, hi)
	if err != nil {
		panic(err)
	}
	return b
}

// Space returns the set's variable space.
func (b *BasicSet) Space() *Space { return b.space }

// Constraints returns a copy of the set's constraints.
func (b *BasicSet) Constraints() []Constraint {
	return append([]Constraint(nil), b.cons...)
}

// With returns a new set with additional constraints conjoined.
func (b *BasicSet) With(cons ...Constraint) (*BasicSet, error) {
	all := make([]Constraint, 0, len(b.cons)+len(cons))
	all = append(all, b.cons...)
	all = append(all, cons...)
	return NewBasicSet(b.space, all...)
}

// MustWith is With that panics on error.
func (b *BasicSet) MustWith(cons ...Constraint) *BasicSet {
	s, err := b.With(cons...)
	if err != nil {
		panic(err)
	}
	return s
}

// Intersect returns the conjunction of b and o. Both sets must share an
// equal space (same variable names in the same order).
func (b *BasicSet) Intersect(o *BasicSet) (*BasicSet, error) {
	if !b.space.Equal(o.space) {
		return nil, fmt.Errorf("presburger: intersecting sets over different spaces %v and %v", b.space, o.space)
	}
	return b.With(o.cons...)
}

// Contains reports whether the point satisfies every constraint.
func (b *BasicSet) Contains(pt []int64) bool {
	for _, c := range b.cons {
		if !c.Holds(pt) {
			return false
		}
	}
	return true
}

func (b *BasicSet) String() string {
	var parts []string
	for _, c := range b.cons {
		parts = append(parts, c.stringIn(b.space))
	}
	return "{" + b.space.String() + ": " + strings.Join(parts, " && ") + "}"
}

// interval is a partially known integer interval used during propagation.
type interval struct {
	lo, hi       int64
	loSet, hiSet bool
}

func (v interval) width() (int64, bool) {
	if !v.loSet || !v.hiSet {
		return 0, false
	}
	if v.hi < v.lo {
		return 0, true
	}
	return v.hi - v.lo + 1, true
}

// geConstraints expands the constraint list so that each EQ contributes a
// pair of GE constraints (e >= 0 and -e >= 0).
func (b *BasicSet) geConstraints() []Constraint {
	ge := make([]Constraint, 0, len(b.cons))
	for _, c := range b.cons {
		if c.Kind == EQ {
			ge = append(ge, GEZero(c.Expr), GEZero(c.Expr.Scale(-1)))
			continue
		}
		ge = append(ge, c)
	}
	return ge
}

const maxPropagationRounds = 64

// Bounds derives per-variable inclusive bounds [lo_i, hi_i] via interval
// constraint propagation. ok is false when some variable remains unbounded
// (the set may be infinite). empty is true when propagation proved the set
// empty (some interval became inverted).
func (b *BasicSet) Bounds() (lo, hi []int64, ok, empty bool) {
	n := b.space.Dim()
	ivs := make([]interval, n)
	ge := b.geConstraints()
	// Variable-free constraints never touch an interval, so check them
	// directly: a constant c >= 0 with c < 0 empties the set.
	for _, c := range ge {
		if c.Expr.IsConst() && c.Expr.K < 0 {
			return nil, nil, true, true
		}
	}
	for round := 0; round < maxPropagationRounds; round++ {
		changed := false
		for _, c := range ge {
			for i, ci := range c.Expr.Coef {
				if ci == 0 {
					continue
				}
				// c_i*x_i >= -K - sum_{j != i} c_j*x_j.
				// A bound valid for every feasible point uses the minimum
				// of the right-hand side over the current box, i.e. the
				// maximum of sum_{j != i} c_j*x_j.
				rhs := -c.Expr.K
				unbounded := false
				for j, cj := range c.Expr.Coef {
					if j == i || cj == 0 {
						continue
					}
					switch {
					case cj > 0 && ivs[j].hiSet:
						rhs -= cj * ivs[j].hi
					case cj < 0 && ivs[j].loSet:
						rhs -= cj * ivs[j].lo
					default:
						unbounded = true
					}
					if unbounded {
						break
					}
				}
				if unbounded {
					continue
				}
				if ci > 0 {
					nl := ceilDiv(rhs, ci)
					if !ivs[i].loSet || nl > ivs[i].lo {
						ivs[i].lo, ivs[i].loSet = nl, true
						changed = true
					}
				} else {
					nh := floorDiv(rhs, ci)
					if !ivs[i].hiSet || nh < ivs[i].hi {
						ivs[i].hi, ivs[i].hiSet = nh, true
						changed = true
					}
				}
			}
		}
		for i := range ivs {
			if ivs[i].loSet && ivs[i].hiSet && ivs[i].lo > ivs[i].hi {
				return nil, nil, true, true
			}
		}
		if !changed {
			break
		}
	}
	lo = make([]int64, n)
	hi = make([]int64, n)
	for i := range ivs {
		if !ivs[i].loSet || !ivs[i].hiSet {
			return nil, nil, false, false
		}
		lo[i], hi[i] = ivs[i].lo, ivs[i].hi
	}
	return lo, hi, true, false
}

// Points enumerates every integer point of the set in lexicographic order,
// calling yield for each. Enumeration stops early if yield returns false.
// The slice passed to yield is reused between calls; copy it to retain.
// Points returns an error when the set cannot be bounded.
func (b *BasicSet) Points(yield func(pt []int64) bool) error {
	lo, hi, ok, empty := b.Bounds()
	if empty {
		return nil
	}
	if !ok {
		return fmt.Errorf("presburger: set %v is unbounded; cannot enumerate", b)
	}
	n := b.space.Dim()
	pt := make([]int64, n)
	ge := b.geConstraints()
	// Each constraint is enforced exactly at the depth of its highest
	// variable: with the prefix assigned, c_d*x_d + known >= 0 bounds x_d.
	// EQ constraints were expanded to GE pairs, so both directions apply.
	tighten := make([][]Constraint, n)
	for _, c := range ge {
		maxVar := -1
		for j, cj := range c.Expr.Coef {
			if cj != 0 {
				maxVar = j
			}
		}
		if maxVar < 0 {
			// Constant constraint: either trivially true or the set is empty.
			if c.Expr.K < 0 {
				return nil
			}
			continue
		}
		tighten[maxVar] = append(tighten[maxVar], c)
	}
	var rec func(d int) bool
	rec = func(d int) bool {
		if d == n {
			return yield(pt)
		}
		dlo, dhi := lo[d], hi[d]
		for _, c := range tighten[d] {
			cd := c.Expr.Coef[d]
			// c_d*x_d + known >= 0 with known from the assigned prefix.
			known := c.Expr.K
			for j := 0; j < d; j++ {
				known += c.Expr.Coef[j] * pt[j]
			}
			if cd > 0 {
				if v := ceilDiv(-known, cd); v > dlo {
					dlo = v
				}
			} else {
				if v := floorDiv(-known, cd); v < dhi {
					dhi = v
				}
			}
		}
		for v := dlo; v <= dhi; v++ {
			pt[d] = v
			if !rec(d + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return nil
}

// Card returns the exact number of integer points in the set.
func (b *BasicSet) Card() (int64, error) {
	// Fast path: if every constraint mentions at most one variable the set
	// is a box and the cardinality is the product of interval widths.
	box := true
	for _, c := range b.cons {
		if len(c.Expr.Vars()) > 1 {
			box = false
			break
		}
	}
	lo, hi, ok, empty := b.Bounds()
	if empty {
		return 0, nil
	}
	if !ok {
		return 0, fmt.Errorf("presburger: set %v is unbounded; cardinality undefined", b)
	}
	if box {
		n := int64(1)
		for i := range lo {
			w := hi[i] - lo[i] + 1
			if w <= 0 {
				return 0, nil
			}
			if w > math.MaxInt64/maxI64(n, 1) {
				return 0, fmt.Errorf("presburger: cardinality overflow")
			}
			n *= w
		}
		return n, nil
	}
	var n int64
	err := b.Points(func([]int64) bool { n++; return true })
	return n, err
}

// IsEmpty reports whether the set has no integer points.
func (b *BasicSet) IsEmpty() (bool, error) {
	_, _, ok, empty := b.Bounds()
	if empty {
		return true, nil
	}
	if !ok {
		return false, fmt.Errorf("presburger: set %v is unbounded; emptiness check unsupported", b)
	}
	found := false
	err := b.Points(func([]int64) bool { found = true; return false })
	return !found, err
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

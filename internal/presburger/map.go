package presburger

import (
	"fmt"
	"strings"
)

// Map is an affine map from the tuples of an input space to integer tuples
// of width OutDim: x -> (e_1(x), ..., e_m(x)).
//
// In the paper's notation, the data space of a process is the image of its
// iteration space under the access map of an array reference, e.g.
// (i1,i2) -> (i1*1000+i2, 5).
type Map struct {
	in    *Space
	exprs []LinExpr
}

// NewMap builds an affine map over the input space with one expression per
// output dimension.
func NewMap(in *Space, exprs ...LinExpr) (*Map, error) {
	if in == nil {
		return nil, fmt.Errorf("presburger: nil input space")
	}
	if len(exprs) == 0 {
		return nil, fmt.Errorf("presburger: map needs at least one output expression")
	}
	for i, e := range exprs {
		if e.Dim() != in.Dim() {
			return nil, fmt.Errorf("presburger: map output %d width %d != input dim %d", i, e.Dim(), in.Dim())
		}
	}
	return &Map{in: in, exprs: append([]LinExpr(nil), exprs...)}, nil
}

// MustMap is NewMap that panics on error.
func MustMap(in *Space, exprs ...LinExpr) *Map {
	m, err := NewMap(in, exprs...)
	if err != nil {
		panic(err)
	}
	return m
}

// Identity returns the identity map over the space.
func Identity(in *Space) *Map {
	n := in.Dim()
	exprs := make([]LinExpr, n)
	for i := 0; i < n; i++ {
		exprs[i] = Var(n, i)
	}
	return MustMap(in, exprs...)
}

// InSpace returns the input space.
func (m *Map) InSpace() *Space { return m.in }

// OutDim returns the number of output dimensions.
func (m *Map) OutDim() int { return len(m.exprs) }

// Exprs returns a copy of the output expressions.
func (m *Map) Exprs() []LinExpr {
	out := make([]LinExpr, len(m.exprs))
	for i, e := range m.exprs {
		out[i] = e.Clone()
	}
	return out
}

// Expr returns output expression i.
func (m *Map) Expr(i int) LinExpr { return m.exprs[i].Clone() }

// Apply evaluates the map at a point, writing into dst when it has the
// right length (allocating otherwise) and returning it.
func (m *Map) Apply(pt []int64, dst []int64) []int64 {
	if len(dst) != len(m.exprs) {
		dst = make([]int64, len(m.exprs))
	}
	for i, e := range m.exprs {
		dst[i] = e.Eval(pt)
	}
	return dst
}

// ImagePoints enumerates the image of the set under the map, calling yield
// for each image tuple (with multiplicity: one call per domain point). The
// slice passed to yield is reused; copy it to retain. The set must be over
// the map's input space.
func (m *Map) ImagePoints(b *BasicSet, yield func(pt []int64) bool) error {
	if !b.Space().Equal(m.in) {
		return fmt.Errorf("presburger: image of set over %v under map over %v", b.Space(), m.in)
	}
	out := make([]int64, len(m.exprs))
	return b.Points(func(pt []int64) bool {
		out = m.Apply(pt, out)
		return yield(out)
	})
}

// Compose returns the map x -> m(inner(x)): inner runs first, then m.
// m's input dimension must equal inner's output dimension. The composed
// map is affine, with coefficients obtained by substitution.
func (m *Map) Compose(inner *Map) (*Map, error) {
	if m.in.Dim() != inner.OutDim() {
		return nil, fmt.Errorf("presburger: composing map over %d inputs with map producing %d outputs",
			m.in.Dim(), inner.OutDim())
	}
	n := inner.in.Dim()
	exprs := make([]LinExpr, len(m.exprs))
	for i, outer := range m.exprs {
		e := Const(n, outer.K)
		for j, c := range outer.Coef {
			if c != 0 {
				e = e.Add(inner.exprs[j].Scale(c))
			}
		}
		exprs[i] = e
	}
	return NewMap(inner.in, exprs...)
}

func (m *Map) String() string {
	var outs []string
	for _, e := range m.exprs {
		outs = append(outs, e.StringIn(m.in))
	}
	return m.in.String() + " -> [" + strings.Join(outs, ",") + "]"
}

package presburger

import (
	"fmt"
	"testing"
)

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Error("NewSpace() with no names should fail")
	}
	if _, err := NewSpace("i", "i"); err == nil {
		t.Error("NewSpace with duplicate names should fail")
	}
	if _, err := NewSpace(""); err == nil {
		t.Error("NewSpace with empty name should fail")
	}
	s, err := NewSpace("i", "j")
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if s.Dim() != 2 {
		t.Errorf("Dim = %d, want 2", s.Dim())
	}
	if s.VarIndex("j") != 1 {
		t.Errorf("VarIndex(j) = %d, want 1", s.VarIndex("j"))
	}
	if s.VarIndex("k") != -1 {
		t.Errorf("VarIndex(k) = %d, want -1", s.VarIndex("k"))
	}
}

func TestSpaceEqual(t *testing.T) {
	a := MustSpace("i", "j")
	b := MustSpace("i", "j")
	c := MustSpace("j", "i")
	d := MustSpace("i")
	if !a.Equal(b) {
		t.Error("identical spaces should be Equal")
	}
	if a.Equal(c) {
		t.Error("reordered spaces should not be Equal")
	}
	if a.Equal(d) {
		t.Error("different-arity spaces should not be Equal")
	}
	if a.Equal(nil) {
		t.Error("space should not Equal nil")
	}
}

func TestLinExprArithmetic(t *testing.T) {
	// e = 2i - 3j + 5 over [i,j]
	e := Term(2, 0, 2).Add(Term(2, 1, -3)).AddConst(5)
	if got := e.Eval([]int64{1, 1}); got != 4 {
		t.Errorf("Eval(1,1) = %d, want 4", got)
	}
	if got := e.Eval([]int64{0, 0}); got != 5 {
		t.Errorf("Eval(0,0) = %d, want 5", got)
	}
	s := e.Scale(-2)
	if got := s.Eval([]int64{1, 1}); got != -8 {
		t.Errorf("Scale(-2).Eval(1,1) = %d, want -8", got)
	}
	d := e.Sub(e)
	if !d.IsConst() || d.K != 0 {
		t.Errorf("e-e should be the zero constant, got %v", d)
	}
	if vs := e.Vars(); len(vs) != 2 || vs[0] != 0 || vs[1] != 1 {
		t.Errorf("Vars = %v, want [0 1]", vs)
	}
}

func TestLinExprString(t *testing.T) {
	sp := MustSpace("i", "j")
	e := Term(2, 0, 1).Add(Term(2, 1, -2)).AddConst(7)
	got := e.StringIn(sp)
	want := "i - 2*j + 7"
	if got != want {
		t.Errorf("StringIn = %q, want %q", got, want)
	}
	z := Zero(2)
	if z.StringIn(sp) != "0" {
		t.Errorf("zero expr String = %q, want 0", z.StringIn(sp))
	}
}

func TestCeilFloorDiv(t *testing.T) {
	cases := []struct {
		a, b, ceil, floor int64
	}{
		{7, 2, 4, 3},
		{-7, 2, -3, -4},
		{7, -2, -3, -4},
		{-7, -2, 4, 3},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 1, 1, 1},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
	}
}

func TestRectCardAndPoints(t *testing.T) {
	sp := MustSpace("i", "j")
	b := MustRect(sp, []int64{0, 0}, []int64{8, 3000})
	card, err := b.Card()
	if err != nil {
		t.Fatalf("Card: %v", err)
	}
	if card != 8*3000 {
		t.Errorf("Card = %d, want 24000", card)
	}
	var n int64
	if err := b.Points(func(pt []int64) bool { n++; return true }); err != nil {
		t.Fatalf("Points: %v", err)
	}
	if n != card {
		t.Errorf("Points enumerated %d, Card says %d", n, card)
	}
}

func TestPointsLexicographicOrder(t *testing.T) {
	sp := MustSpace("i", "j")
	b := MustRect(sp, []int64{0, 0}, []int64{3, 2})
	var got [][2]int64
	if err := b.Points(func(pt []int64) bool {
		got = append(got, [2]int64{pt[0], pt[1]})
		return true
	}); err != nil {
		t.Fatalf("Points: %v", err)
	}
	want := [][2]int64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}
	if len(got) != len(want) {
		t.Fatalf("enumerated %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPointsEarlyStop(t *testing.T) {
	sp := MustSpace("i")
	b := MustRect(sp, []int64{0}, []int64{100})
	var n int
	if err := b.Points(func(pt []int64) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatalf("Points: %v", err)
	}
	if n != 5 {
		t.Errorf("early stop after %d points, want 5", n)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// {[i,j]: i = 3 && 0 <= j < 10}
	sp := MustSpace("i", "j")
	b := MustRect(sp, []int64{0, 0}, []int64{8, 10}).
		MustWith(EQZero(Term(2, 0, 1).AddConst(-3)))
	card, err := b.Card()
	if err != nil {
		t.Fatalf("Card: %v", err)
	}
	if card != 10 {
		t.Errorf("Card = %d, want 10", card)
	}
	if err := b.Points(func(pt []int64) bool {
		if pt[0] != 3 {
			t.Errorf("point %v violates i=3", pt)
		}
		return true
	}); err != nil {
		t.Fatalf("Points: %v", err)
	}
}

func TestDiagonalConstraint(t *testing.T) {
	// {[i,j]: 0 <= i < 10 && 0 <= j < 10 && i + j <= 4}  -> triangular count
	sp := MustSpace("i", "j")
	b := MustRect(sp, []int64{0, 0}, []int64{10, 10}).
		MustWith(GEZero(Term(2, 0, -1).Add(Term(2, 1, -1)).AddConst(4)))
	card, err := b.Card()
	if err != nil {
		t.Fatalf("Card: %v", err)
	}
	// i+j <= 4 with i,j >= 0: 5+4+3+2+1 = 15 points.
	if card != 15 {
		t.Errorf("Card = %d, want 15", card)
	}
}

func TestEmptySet(t *testing.T) {
	sp := MustSpace("i")
	// 0 <= i < 5 && i >= 7
	b := MustRect(sp, []int64{0}, []int64{5}).
		MustWith(GEZero(Term(1, 0, 1).AddConst(-7)))
	empty, err := b.IsEmpty()
	if err != nil {
		t.Fatalf("IsEmpty: %v", err)
	}
	if !empty {
		t.Error("set should be empty")
	}
	card, err := b.Card()
	if err != nil {
		t.Fatalf("Card: %v", err)
	}
	if card != 0 {
		t.Errorf("Card = %d, want 0", card)
	}
}

func TestConstantFalseConstraint(t *testing.T) {
	sp := MustSpace("i")
	// 0 <= i < 5 && -1 >= 0 (constant false)
	b := MustRect(sp, []int64{0}, []int64{5}).MustWith(GEZero(Const(1, -1)))
	var n int
	if err := b.Points(func([]int64) bool { n++; return true }); err != nil {
		t.Fatalf("Points: %v", err)
	}
	if n != 0 {
		t.Errorf("constant-false set enumerated %d points, want 0", n)
	}
	if card, err := b.Card(); err != nil || card != 0 {
		t.Errorf("Card = %d,%v, want 0 (constant-false GE)", card, err)
	}
}

// TestConstantFalseEquality is the regression test for a fuzzing find:
// a variable-free equality like 1 = 0 empties the set, but interval
// propagation never sees it, so Card's box fast-path reported 1.
func TestConstantFalseEquality(t *testing.T) {
	sp := MustSpace("i", "j")
	b := MustRect(sp, []int64{0, 0}, []int64{1, 1}).MustWith(EQZero(Const(2, 1)))
	card, err := b.Card()
	if err != nil {
		t.Fatalf("Card: %v", err)
	}
	if card != 0 {
		t.Errorf("Card = %d, want 0 (1 = 0 is unsatisfiable)", card)
	}
	empty, err := b.IsEmpty()
	if err != nil || !empty {
		t.Errorf("IsEmpty = %v,%v, want true", empty, err)
	}
}

func TestUnboundedSetRejected(t *testing.T) {
	sp := MustSpace("i")
	b := MustBasicSet(sp, GEZero(Var(1, 0))) // i >= 0, unbounded above
	if _, err := b.Card(); err == nil {
		t.Error("Card of unbounded set should fail")
	}
	if err := b.Points(func([]int64) bool { return true }); err == nil {
		t.Error("Points of unbounded set should fail")
	}
	if _, err := b.IsEmpty(); err == nil {
		t.Error("IsEmpty of unbounded set should fail")
	}
}

func TestIntersectDifferentSpacesFails(t *testing.T) {
	a := MustRect(MustSpace("i"), []int64{0}, []int64{5})
	b := MustRect(MustSpace("j"), []int64{0}, []int64{5})
	if _, err := a.Intersect(b); err == nil {
		t.Error("intersecting sets over different spaces should fail")
	}
}

func TestIntersectWindows(t *testing.T) {
	// The core sharing computation of the paper: two 3000-wide windows
	// offset by 1000 overlap in 2000 elements.
	sp := MustSpace("d")
	a := MustRect(sp, []int64{0}, []int64{3000})
	b := MustRect(sp, []int64{1000}, []int64{4000})
	isect, err := a.Intersect(b)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	card, err := isect.Card()
	if err != nil {
		t.Fatalf("Card: %v", err)
	}
	if card != 2000 {
		t.Errorf("|[0,3000) ∩ [1000,4000)| = %d, want 2000", card)
	}
}

func TestContains(t *testing.T) {
	sp := MustSpace("i", "j")
	b := MustRect(sp, []int64{0, 0}, []int64{8, 3000})
	if !b.Contains([]int64{7, 2999}) {
		t.Error("corner point should be contained")
	}
	if b.Contains([]int64{8, 0}) {
		t.Error("i=8 is outside the half-open box")
	}
	if b.Contains([]int64{0, -1}) {
		t.Error("j=-1 is outside the box")
	}
}

func TestMapApplyAndImage(t *testing.T) {
	// The paper's access map (i1,i2) -> (i1*1000 + i2, 5).
	sp := MustSpace("i1", "i2")
	m := MustMap(sp,
		Term(2, 0, 1000).Add(Term(2, 1, 1)),
		Const(2, 5),
	)
	if m.OutDim() != 2 {
		t.Fatalf("OutDim = %d, want 2", m.OutDim())
	}
	got := m.Apply([]int64{3, 17}, nil)
	if got[0] != 3017 || got[1] != 5 {
		t.Errorf("Apply(3,17) = %v, want [3017 5]", got)
	}

	// Process k's iteration set: i1 = k, 0 <= i2 < 3000.
	mkProc := func(k int64) *BasicSet {
		return MustRect(sp, []int64{0, 0}, []int64{8, 3000}).
			MustWith(EQZero(Term(2, 0, 1).AddConst(-k)))
	}
	var firstSeen, lastSeen int64 = -1, -1
	var count int64
	if err := m.ImagePoints(mkProc(2), func(pt []int64) bool {
		if firstSeen == -1 {
			firstSeen = pt[0]
		}
		lastSeen = pt[0]
		if pt[1] != 5 {
			t.Errorf("image second coord = %d, want 5", pt[1])
		}
		count++
		return true
	}); err != nil {
		t.Fatalf("ImagePoints: %v", err)
	}
	if count != 3000 {
		t.Errorf("image multiplicity count = %d, want 3000", count)
	}
	if firstSeen != 2000 || lastSeen != 4999 {
		t.Errorf("image range [%d,%d], want [2000,4999]", firstSeen, lastSeen)
	}
}

func TestImageSpaceMismatch(t *testing.T) {
	m := Identity(MustSpace("i"))
	b := MustRect(MustSpace("j"), []int64{0}, []int64{5})
	if err := m.ImagePoints(b, func([]int64) bool { return true }); err == nil {
		t.Error("image of set over mismatched space should fail")
	}
}

func TestIdentityMap(t *testing.T) {
	sp := MustSpace("i", "j")
	m := Identity(sp)
	got := m.Apply([]int64{4, -2}, nil)
	if got[0] != 4 || got[1] != -2 {
		t.Errorf("Identity.Apply = %v, want [4 -2]", got)
	}
}

func TestConstraintValidation(t *testing.T) {
	sp := MustSpace("i", "j")
	if _, err := NewBasicSet(sp, GEZero(Var(1, 0))); err == nil {
		t.Error("constraint width mismatch should fail")
	}
	if _, err := NewMap(sp, Var(1, 0)); err == nil {
		t.Error("map expression width mismatch should fail")
	}
	if _, err := NewMap(sp); err == nil {
		t.Error("map with no outputs should fail")
	}
	if _, err := Rect(sp, []int64{0}, []int64{1, 2}); err == nil {
		t.Error("Rect with wrong bound widths should fail")
	}
}

func TestBasicSetString(t *testing.T) {
	sp := MustSpace("i")
	b := MustRect(sp, []int64{0}, []int64{8})
	s := b.String()
	if s == "" {
		t.Error("String should be non-empty")
	}
	// Smoke: must mention the variable.
	if want := "i"; !containsStr(s, want) {
		t.Errorf("String %q should mention %q", s, want)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// TestPaperSharingSets reproduces the sharing cardinalities behind the
// paper's Figure 2(a): |SS_k,p| = 3000 - 1000*|k-p| clamped at 0, for the
// access A[i1*1000+i2][5] with per-process windows of 3000 iterations.
func TestPaperSharingSets(t *testing.T) {
	sp := MustSpace("i1", "i2")
	access := MustMap(sp, Term(2, 0, 1000).Add(Term(2, 1, 1)))

	dataSpace := func(k int64) map[int64]bool {
		iter := MustRect(sp, []int64{0, 0}, []int64{8, 3000}).
			MustWith(EQZero(Term(2, 0, 1).AddConst(-k)))
		ds := make(map[int64]bool)
		if err := access.ImagePoints(iter, func(pt []int64) bool {
			ds[pt[0]] = true
			return true
		}); err != nil {
			t.Fatalf("ImagePoints: %v", err)
		}
		return ds
	}

	spaces := make([]map[int64]bool, 8)
	for k := int64(0); k < 8; k++ {
		spaces[k] = dataSpace(k)
	}
	for k := 0; k < 8; k++ {
		for p := 0; p < 8; p++ {
			var shared int64
			for e := range spaces[k] {
				if spaces[p][e] {
					shared++
				}
			}
			diff := int64(k - p)
			if diff < 0 {
				diff = -diff
			}
			want := 3000 - 1000*diff
			if want < 0 {
				want = 0
			}
			if k == p {
				want = 3000
			}
			if shared != want {
				t.Errorf("|SS_%d,%d| = %d, want %d", k, p, shared, want)
			}
		}
	}
}

func TestMapCompose(t *testing.T) {
	// inner: (i,j) -> (2i+j, 3)   outer: (u,v) -> (u+v, u-v, 7)
	in := MustSpace("i", "j")
	inner := MustMap(in,
		Term(2, 0, 2).Add(Term(2, 1, 1)),
		Const(2, 3),
	)
	mid := MustSpace("u", "v")
	outer := MustMap(mid,
		Var(2, 0).Add(Var(2, 1)),
		Var(2, 0).Sub(Var(2, 1)),
		Const(2, 7),
	)
	comp, err := outer.Compose(inner)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	if !comp.InSpace().Equal(in) {
		t.Error("composed map should be over the inner input space")
	}
	// Check against pointwise composition on a grid.
	for i := int64(-3); i <= 3; i++ {
		for j := int64(-3); j <= 3; j++ {
			pt := []int64{i, j}
			want := outer.Apply(inner.Apply(pt, nil), nil)
			got := comp.Apply(pt, nil)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("Compose(%v) = %v, want %v", pt, got, want)
				}
			}
		}
	}
	// Arity mismatch.
	if _, err := inner.Compose(outer); err == nil {
		t.Error("arity-mismatched composition should fail")
	}
}

func ExampleBasicSet_Card() {
	sp := MustSpace("i1", "i2")
	is := MustRect(sp, []int64{0, 0}, []int64{8, 3000})
	n, _ := is.Card()
	fmt.Println(n)
	// Output: 24000
}

package presburger

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seg1(t *testing.T, lo, hi int64) *BasicSet {
	t.Helper()
	return MustRect(MustSpace("i"), []int64{lo}, []int64{hi})
}

func TestEmptySetBehaviour(t *testing.T) {
	sp := MustSpace("i")
	e := EmptySet(sp)
	if empty, err := e.IsEmpty(); err != nil || !empty {
		t.Errorf("EmptySet should be empty: %v %v", empty, err)
	}
	n, err := e.Card()
	if err != nil || n != 0 {
		t.Errorf("Card = %d,%v, want 0", n, err)
	}
	if e.Contains([]int64{0}) {
		t.Error("EmptySet should contain nothing")
	}
	if e.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(); err == nil {
		t.Error("NewSet with no parts should fail")
	}
	a := MustRect(MustSpace("i"), []int64{0}, []int64{5})
	b := MustRect(MustSpace("j"), []int64{0}, []int64{5})
	if _, err := NewSet(a, b); err == nil {
		t.Error("parts over different spaces should fail")
	}
}

func TestUnionDedup(t *testing.T) {
	// [0,10) ∪ [5,15): 15 distinct points, not 20.
	s, err := MustSet(seg1(t, 0, 10)).Union(MustSet(seg1(t, 5, 15)))
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Card()
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Errorf("Card = %d, want 15", n)
	}
	var prev int64 = -1 << 62
	var count int
	if err := s.Points(func(pt []int64) bool {
		if pt[0] <= prev {
			t.Errorf("points not strictly increasing: %d after %d", pt[0], prev)
		}
		prev = pt[0]
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if int64(count) != n {
		t.Errorf("Points yielded %d, Card says %d", count, n)
	}
}

func TestIntersectionOfUnions(t *testing.T) {
	// ([0,10) ∪ [20,30)) ∩ ([5,25)) = [5,10) ∪ [20,25): 10 points.
	a := MustSet(seg1(t, 0, 10), seg1(t, 20, 30))
	b := MustSet(seg1(t, 5, 25))
	isect, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	n, err := isect.Card()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("Card = %d, want 10", n)
	}
	if !isect.Contains([]int64{7}) || !isect.Contains([]int64{22}) {
		t.Error("missing expected points")
	}
	if isect.Contains([]int64{15}) {
		t.Error("15 should not be in the intersection")
	}
}

func TestUnionSpaceMismatch(t *testing.T) {
	a := MustSet(MustRect(MustSpace("i"), []int64{0}, []int64{5}))
	b := MustSet(MustRect(MustSpace("j"), []int64{0}, []int64{5}))
	if _, err := a.Union(b); err == nil {
		t.Error("union over different spaces should fail")
	}
	if _, err := a.Intersect(b); err == nil {
		t.Error("intersection over different spaces should fail")
	}
}

func TestSetPointsEarlyStop(t *testing.T) {
	s := MustSet(seg1(t, 0, 100))
	n := 0
	if err := s.Points(func([]int64) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("early stop after %d, want 3", n)
	}
}

func TestSubtract(t *testing.T) {
	// [0,30) \ ([5,10) ∪ [20,25)) = [0,5) ∪ [10,20) ∪ [25,30): 20 points.
	a := MustSet(seg1(t, 0, 30))
	b := MustSet(seg1(t, 5, 10), seg1(t, 20, 25))
	d, err := a.Subtract(b)
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Card()
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("Card = %d, want 20", n)
	}
	for _, v := range []int64{0, 4, 10, 19, 25, 29} {
		if !d.Contains([]int64{v}) {
			t.Errorf("difference should contain %d", v)
		}
	}
	for _, v := range []int64{5, 9, 20, 24, 30, -1} {
		if d.Contains([]int64{v}) {
			t.Errorf("difference should not contain %d", v)
		}
	}
	// a \ a is empty.
	self, err := a.Subtract(a)
	if err != nil {
		t.Fatal(err)
	}
	if empty, err := self.IsEmpty(); err != nil || !empty {
		t.Errorf("a \\ a should be empty: %v %v", empty, err)
	}
}

func TestSubtractEqualityConstraint(t *testing.T) {
	// {[i,j]: 0<=i<4 && 0<=j<4} \ {diagonal i=j} = 12 points.
	sp := MustSpace("i", "j")
	box := MustSet(MustRect(sp, []int64{0, 0}, []int64{4, 4}))
	diag := MustSet(MustRect(sp, []int64{0, 0}, []int64{4, 4}).
		MustWith(EQZero(Var(2, 0).Sub(Var(2, 1)))))
	d, err := box.Subtract(diag)
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Card()
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Errorf("Card = %d, want 12", n)
	}
	if d.Contains([]int64{2, 2}) {
		t.Error("diagonal point should be removed")
	}
	if !d.Contains([]int64{1, 3}) {
		t.Error("off-diagonal point should remain")
	}
}

func TestSubtractSpaceMismatch(t *testing.T) {
	a := MustSet(MustRect(MustSpace("i"), []int64{0}, []int64{5}))
	b := MustSet(MustRect(MustSpace("j"), []int64{0}, []int64{5}))
	if _, err := a.Subtract(b); err == nil {
		t.Error("difference over different spaces should fail")
	}
}

// TestQuickSubtractMatchesBruteForce property: difference cardinality
// and membership over random 1-D interval unions match a model.
func TestQuickSubtractMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sp := MustSpace("i")
	randUnion := func() (*Set, map[int64]bool) {
		n := 1 + rng.Intn(3)
		model := make(map[int64]bool)
		var parts []*BasicSet
		for k := 0; k < n; k++ {
			lo := int64(rng.Intn(40) - 20)
			hi := lo + int64(rng.Intn(15))
			parts = append(parts, MustRect(sp, []int64{lo}, []int64{hi}))
			for v := lo; v < hi; v++ {
				model[v] = true
			}
		}
		return MustSet(parts...), model
	}
	for trial := 0; trial < 60; trial++ {
		a, ma := randUnion()
		b, mb := randUnion()
		d, err := a.Subtract(b)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		for v := int64(-25); v < 40; v++ {
			in := ma[v] && !mb[v]
			if in {
				want++
			}
			if d.Contains([]int64{v}) != in {
				t.Fatalf("trial %d: Contains(%d) = %v, want %v", trial, v, d.Contains([]int64{v}), in)
			}
		}
		n, err := d.Card()
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("trial %d: Card = %d, want %d", trial, n, want)
		}
	}
}

// TestQuickUnionMatchesBruteForce property: union/intersection
// cardinalities over random 1-D interval collections match a brute-force
// membership model.
func TestQuickUnionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sp := MustSpace("i")
	randUnion := func() (*Set, map[int64]bool) {
		n := 1 + rng.Intn(4)
		model := make(map[int64]bool)
		var parts []*BasicSet
		for k := 0; k < n; k++ {
			lo := int64(rng.Intn(60) - 30)
			hi := lo + int64(rng.Intn(25))
			parts = append(parts, MustRect(sp, []int64{lo}, []int64{hi}))
			for v := lo; v < hi; v++ {
				model[v] = true
			}
		}
		return MustSet(parts...), model
	}
	for trial := 0; trial < 100; trial++ {
		a, ma := randUnion()
		b, mb := randUnion()

		u, err := a.Union(b)
		if err != nil {
			t.Fatal(err)
		}
		i, err := a.Intersect(b)
		if err != nil {
			t.Fatal(err)
		}
		wantU, wantI := 0, 0
		for v := int64(-40); v < 70; v++ {
			if ma[v] || mb[v] {
				wantU++
			}
			if ma[v] && mb[v] {
				wantI++
			}
			if u.Contains([]int64{v}) != (ma[v] || mb[v]) {
				t.Fatalf("trial %d: union Contains(%d) wrong", trial, v)
			}
			if i.Contains([]int64{v}) != (ma[v] && mb[v]) {
				t.Fatalf("trial %d: intersection Contains(%d) wrong", trial, v)
			}
		}
		nu, err := u.Card()
		if err != nil {
			t.Fatal(err)
		}
		ni, err := i.Card()
		if err != nil {
			t.Fatal(err)
		}
		if nu != int64(wantU) || ni != int64(wantI) {
			t.Fatalf("trial %d: |A∪B|=%d want %d, |A∩B|=%d want %d", trial, nu, wantU, ni, wantI)
		}
	}
}

// TestQuick2DUnionCard property: 2-D unions of random boxes count
// correctly against a brute-force grid.
func TestQuick2DUnionCard(t *testing.T) {
	sp := MustSpace("i", "j")
	f := func(seeds [4]uint8) bool {
		mk := func(a, b uint8) *BasicSet {
			lo := []int64{int64(a % 10), int64(b % 10)}
			hi := []int64{lo[0] + int64(a%5) + 1, lo[1] + int64(b%5) + 1}
			return MustRect(sp, lo, hi)
		}
		s := MustSet(mk(seeds[0], seeds[1]), mk(seeds[2], seeds[3]))
		model := make(map[[2]int64]bool)
		for _, part := range s.Parts() {
			_ = part.Points(func(pt []int64) bool {
				model[[2]int64{pt[0], pt[1]}] = true
				return true
			})
		}
		n, err := s.Card()
		return err == nil && n == int64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package presburger

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a finite union of BasicSets over a common space — the general
// form of the paper's Presburger sets. Intersections of unions, and
// iteration spaces with holes (e.g. boundary processes), are not
// representable as a single conjunction; Set closes the algebra.
type Set struct {
	space *Space
	parts []*BasicSet
}

// NewSet builds a union from basic sets over the same space. At least
// one part is required (use EmptySet for the empty union).
func NewSet(parts ...*BasicSet) (*Set, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("presburger: NewSet needs at least one part; use EmptySet")
	}
	space := parts[0].Space()
	for i, p := range parts {
		if !p.Space().Equal(space) {
			return nil, fmt.Errorf("presburger: part %d is over %v, want %v", i, p.Space(), space)
		}
	}
	return &Set{space: space, parts: append([]*BasicSet(nil), parts...)}, nil
}

// MustSet is NewSet that panics on error.
func MustSet(parts ...*BasicSet) *Set {
	s, err := NewSet(parts...)
	if err != nil {
		panic(err)
	}
	return s
}

// EmptySet returns the empty union over the space.
func EmptySet(space *Space) *Set { return &Set{space: space} }

// Space returns the set's variable space.
func (s *Set) Space() *Space { return s.space }

// Parts returns the union's basic sets.
func (s *Set) Parts() []*BasicSet { return append([]*BasicSet(nil), s.parts...) }

// Union returns s ∪ o. Both must share the space.
func (s *Set) Union(o *Set) (*Set, error) {
	if !s.space.Equal(o.space) {
		return nil, fmt.Errorf("presburger: union over different spaces %v and %v", s.space, o.space)
	}
	return &Set{space: s.space, parts: append(append([]*BasicSet(nil), s.parts...), o.parts...)}, nil
}

// Intersect returns s ∩ o as the pairwise intersection of parts.
func (s *Set) Intersect(o *Set) (*Set, error) {
	if !s.space.Equal(o.space) {
		return nil, fmt.Errorf("presburger: intersection over different spaces %v and %v", s.space, o.space)
	}
	out := &Set{space: s.space}
	for _, a := range s.parts {
		for _, b := range o.parts {
			isect, err := a.Intersect(b)
			if err != nil {
				return nil, err
			}
			out.parts = append(out.parts, isect)
		}
	}
	return out, nil
}

// Subtract returns s \ o. The complement of a conjunction is the union
// of the negations of its constraints (¬(e ≥ 0) ≡ −e−1 ≥ 0 and
// ¬(e = 0) ≡ e−1 ≥ 0 ∨ −e−1 ≥ 0 over the integers), so the difference
// stays within the union-of-basic-sets representation. The number of
// parts can grow multiplicatively; intended for the small set
// descriptions of the sharing analysis.
func (s *Set) Subtract(o *Set) (*Set, error) {
	if !s.space.Equal(o.space) {
		return nil, fmt.Errorf("presburger: difference over different spaces %v and %v", s.space, o.space)
	}
	result := &Set{space: s.space, parts: append([]*BasicSet(nil), s.parts...)}
	for _, b := range o.parts {
		next := &Set{space: s.space}
		for _, part := range result.parts {
			for _, neg := range negations(b) {
				piece, err := part.With(neg)
				if err != nil {
					return nil, err
				}
				// Drop provably empty pieces early to bound growth.
				if _, _, ok, empty := piece.Bounds(); ok && empty {
					continue
				}
				next.parts = append(next.parts, piece)
			}
		}
		result = next
	}
	return result, nil
}

// negations returns constraints whose disjunction is the complement of
// the basic set's conjunction.
func negations(b *BasicSet) []Constraint {
	var out []Constraint
	for _, c := range b.cons {
		neg := GEZero(c.Expr.Scale(-1).AddConst(-1)) // ¬(e >= 0): -e-1 >= 0
		if c.Kind == EQ {
			// ¬(e == 0): e >= 1 or e <= -1.
			out = append(out, GEZero(c.Expr.AddConst(-1)), neg)
			continue
		}
		out = append(out, neg)
	}
	return out
}

// Contains reports whether the point lies in any part.
func (s *Set) Contains(pt []int64) bool {
	for _, p := range s.parts {
		if p.Contains(pt) {
			return true
		}
	}
	return false
}

// Points enumerates the distinct integer points of the union in
// lexicographic order (duplicates across overlapping parts are removed).
// The slice passed to yield is owned by the callee for the duration of
// the call only.
func (s *Set) Points(yield func(pt []int64) bool) error {
	var all [][]int64
	for _, p := range s.parts {
		err := p.Points(func(pt []int64) bool {
			all = append(all, append([]int64(nil), pt...))
			return true
		})
		if err != nil {
			return err
		}
	}
	sort.Slice(all, func(i, j int) bool { return lexLess(all[i], all[j]) })
	for i, pt := range all {
		if i > 0 && lexEqual(all[i-1], pt) {
			continue
		}
		if !yield(pt) {
			return nil
		}
	}
	return nil
}

// Card returns the number of distinct integer points in the union.
func (s *Set) Card() (int64, error) {
	// Single-part fast path: no dedup needed.
	if len(s.parts) == 1 {
		return s.parts[0].Card()
	}
	var n int64
	err := s.Points(func([]int64) bool { n++; return true })
	return n, err
}

// IsEmpty reports whether the union has no integer points.
func (s *Set) IsEmpty() (bool, error) {
	for _, p := range s.parts {
		empty, err := p.IsEmpty()
		if err != nil {
			return false, err
		}
		if !empty {
			return false, nil
		}
	}
	return true, nil
}

func (s *Set) String() string {
	if len(s.parts) == 0 {
		return "{} (empty)"
	}
	var parts []string
	for _, p := range s.parts {
		parts = append(parts, p.String())
	}
	return strings.Join(parts, " ∪ ")
}

func lexLess(a, b []int64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func lexEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Package presburger implements the fragment of Presburger arithmetic the
// paper uses in Section 2 to capture inter-process data sharing: integer
// sets described by conjunctions of affine constraints over a fixed tuple
// of variables, and affine maps between such tuple spaces.
//
// The paper writes, e.g.,
//
//	IS1,k = {[i1,i2]: i1 = k && 0 <= i2 < 3000}
//	DS1,k = {[d1,d2]: d1 = i1*1000+i2 && d2 = 5 && [i1,i2] in IS1,k}
//
// Here IS1,k is a BasicSet over Space("i1","i2") and the data space is the
// Image of that set under the Map (i1,i2) -> (i1*1000+i2, 5).
//
// Sets are manipulated symbolically (intersection is constraint
// concatenation) and realized by exact bounded enumeration with interval
// constraint propagation; this is sufficient and exact for the rectangular
// iteration spaces and affine references of array-intensive embedded codes,
// without requiring full Presburger quantifier elimination.
package presburger

import (
	"fmt"
	"strings"
)

// Space names the variables of a set or the input tuple of a map.
// Spaces are immutable after creation.
type Space struct {
	names []string
}

// NewSpace returns a space with the given variable names.
// Names must be non-empty and unique.
func NewSpace(names ...string) (*Space, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("presburger: space needs at least one variable")
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("presburger: empty variable name")
		}
		if seen[n] {
			return nil, fmt.Errorf("presburger: duplicate variable %q", n)
		}
		seen[n] = true
	}
	return &Space{names: append([]string(nil), names...)}, nil
}

// MustSpace is NewSpace that panics on error, for statically known names.
func MustSpace(names ...string) *Space {
	s, err := NewSpace(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim reports the number of variables in the space.
func (s *Space) Dim() int { return len(s.names) }

// VarName returns the name of variable i.
func (s *Space) VarName(i int) string { return s.names[i] }

// VarIndex returns the index of the named variable, or -1 if absent.
func (s *Space) VarIndex(name string) int {
	for i, n := range s.names {
		if n == name {
			return i
		}
	}
	return -1
}

// Equal reports whether two spaces have identical variable lists.
func (s *Space) Equal(o *Space) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.names) != len(o.names) {
		return false
	}
	for i := range s.names {
		if s.names[i] != o.names[i] {
			return false
		}
	}
	return true
}

func (s *Space) String() string {
	return "[" + strings.Join(s.names, ",") + "]"
}

package presburger

import (
	"fmt"
	"strings"
)

// LinExpr is an affine expression sum(Coef[i]*x_i) + K over the variables
// of a Space. The zero value of appropriate width is the constant 0.
type LinExpr struct {
	Coef []int64 // one coefficient per space variable
	K    int64   // constant term
}

// Zero returns the zero expression over a space of dimension dim.
func Zero(dim int) LinExpr { return LinExpr{Coef: make([]int64, dim)} }

// Const returns the constant expression k over a space of dimension dim.
func Const(dim int, k int64) LinExpr {
	return LinExpr{Coef: make([]int64, dim), K: k}
}

// Term returns the expression c*x_i over a space of dimension dim.
func Term(dim, i int, c int64) LinExpr {
	e := Zero(dim)
	e.Coef[i] = c
	return e
}

// Var returns the expression x_i over a space of dimension dim.
func Var(dim, i int) LinExpr { return Term(dim, i, 1) }

// Dim reports the width of the expression.
func (e LinExpr) Dim() int { return len(e.Coef) }

// Add returns e + o. Both must have the same width.
func (e LinExpr) Add(o LinExpr) LinExpr {
	mustSameDim(e, o)
	r := LinExpr{Coef: make([]int64, len(e.Coef)), K: e.K + o.K}
	for i := range e.Coef {
		r.Coef[i] = e.Coef[i] + o.Coef[i]
	}
	return r
}

// Sub returns e - o. Both must have the same width.
func (e LinExpr) Sub(o LinExpr) LinExpr {
	mustSameDim(e, o)
	r := LinExpr{Coef: make([]int64, len(e.Coef)), K: e.K - o.K}
	for i := range e.Coef {
		r.Coef[i] = e.Coef[i] - o.Coef[i]
	}
	return r
}

// Scale returns c*e.
func (e LinExpr) Scale(c int64) LinExpr {
	r := LinExpr{Coef: make([]int64, len(e.Coef)), K: e.K * c}
	for i := range e.Coef {
		r.Coef[i] = e.Coef[i] * c
	}
	return r
}

// AddConst returns e + k.
func (e LinExpr) AddConst(k int64) LinExpr {
	r := LinExpr{Coef: append([]int64(nil), e.Coef...), K: e.K + k}
	return r
}

// Eval evaluates the expression at the given point.
// len(pt) must equal the expression width.
func (e LinExpr) Eval(pt []int64) int64 {
	if len(pt) != len(e.Coef) {
		panic(fmt.Sprintf("presburger: Eval point width %d != expr width %d", len(pt), len(e.Coef)))
	}
	v := e.K
	for i, c := range e.Coef {
		v += c * pt[i]
	}
	return v
}

// IsConst reports whether all variable coefficients are zero.
func (e LinExpr) IsConst() bool {
	for _, c := range e.Coef {
		if c != 0 {
			return false
		}
	}
	return true
}

// Vars returns the indices of variables with non-zero coefficients.
func (e LinExpr) Vars() []int {
	var vs []int
	for i, c := range e.Coef {
		if c != 0 {
			vs = append(vs, i)
		}
	}
	return vs
}

// Clone returns an independent copy of the expression.
func (e LinExpr) Clone() LinExpr {
	return LinExpr{Coef: append([]int64(nil), e.Coef...), K: e.K}
}

// StringIn renders the expression with variable names from space.
func (e LinExpr) StringIn(space *Space) string {
	var b strings.Builder
	first := true
	for i, c := range e.Coef {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("x%d", i)
		if space != nil && i < space.Dim() {
			name = space.VarName(i)
		}
		writeTerm(&b, &first, c, name)
	}
	if e.K != 0 || first {
		writeTerm(&b, &first, e.K, "")
	}
	return b.String()
}

func (e LinExpr) String() string { return e.StringIn(nil) }

func writeTerm(b *strings.Builder, first *bool, c int64, name string) {
	switch {
	case *first && c < 0:
		b.WriteString("-")
	case !*first && c < 0:
		b.WriteString(" - ")
	case !*first:
		b.WriteString(" + ")
	}
	*first = false
	abs := c
	if abs < 0 {
		abs = -abs
	}
	switch {
	case name == "":
		fmt.Fprintf(b, "%d", abs)
	case abs == 1:
		b.WriteString(name)
	default:
		fmt.Fprintf(b, "%d*%s", abs, name)
	}
}

func mustSameDim(a, b LinExpr) {
	if len(a.Coef) != len(b.Coef) {
		panic(fmt.Sprintf("presburger: expression width mismatch %d vs %d", len(a.Coef), len(b.Coef)))
	}
}

// ceilDiv returns ceil(a/b) for b != 0 using exact integer arithmetic.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		// Same signs with a remainder: truncation toward zero gave the
		// floor, so the ceiling is one higher.
		return q + 1
	}
	return q
}

// floorDiv returns floor(a/b) for b != 0 using exact integer arithmetic.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		return q - 1
	}
	return q
}

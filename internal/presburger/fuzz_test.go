package presburger

import "testing"

// FuzzBasicSetEnumeration builds random small 2-D sets (a box plus one
// extra affine constraint) and checks that enumeration agrees with
// membership and cardinality.
func FuzzBasicSetEnumeration(f *testing.F) {
	f.Add(int8(0), int8(5), int8(0), int8(5), int8(1), int8(1), int8(3), true)
	f.Add(int8(-3), int8(4), int8(-2), int8(6), int8(2), int8(-1), int8(0), false)
	f.Add(int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), true)
	f.Fuzz(func(t *testing.T, lo0, w0, lo1, w1, c0, c1, k int8, eq bool) {
		sp := MustSpace("i", "j")
		width0 := int64(w0%8) + 1
		width1 := int64(w1%8) + 1
		box := MustRect(sp,
			[]int64{int64(lo0), int64(lo1)},
			[]int64{int64(lo0) + width0, int64(lo1) + width1},
		)
		expr := Term(2, 0, int64(c0)).Add(Term(2, 1, int64(c1))).AddConst(int64(k))
		var con Constraint
		if eq {
			con = EQZero(expr)
		} else {
			con = GEZero(expr)
		}
		set := box.MustWith(con)

		// Brute-force the box and compare.
		var want int64
		for i := int64(lo0); i < int64(lo0)+width0; i++ {
			for j := int64(lo1); j < int64(lo1)+width1; j++ {
				if set.Contains([]int64{i, j}) {
					want++
				}
			}
		}
		got, err := set.Card()
		if err != nil {
			t.Fatalf("Card: %v", err)
		}
		if got != want {
			t.Fatalf("Card = %d, brute force = %d for %v", got, want, set)
		}
		var enumerated int64
		err = set.Points(func(pt []int64) bool {
			if !set.Contains(pt) {
				t.Fatalf("enumerated point %v not contained in %v", pt, set)
			}
			enumerated++
			return true
		})
		if err != nil {
			t.Fatalf("Points: %v", err)
		}
		if enumerated != want {
			t.Fatalf("Points yielded %d, brute force = %d", enumerated, want)
		}
	})
}

package trace

import (
	"testing"

	"locsched/internal/layout"
	"locsched/internal/prog"
)

func testSetup(t *testing.T) (*Generator, *prog.ProcessSpec, *prog.Array) {
	t.Helper()
	a := prog.MustArray("A", 4, 1000)
	b := prog.MustArray("B", 4, 1000)
	iter := prog.Seg("i", 0, 10)
	spec := prog.MustProcessSpec("p", iter, 3,
		prog.StreamRef(a, prog.Read, iter, 1, 0),
		prog.StreamRef(b, prog.Write, iter, 2, 5),
	)
	am := layout.MustPack(32, a, b)
	return NewGenerator(am), spec, a
}

func TestCursorStream(t *testing.T) {
	g, spec, a := testSetup(t)
	c, err := g.NewCursor(spec)
	if err != nil {
		t.Fatalf("NewCursor: %v", err)
	}
	if c.Total() != 20 {
		t.Errorf("Total = %d, want 20", c.Total())
	}
	am := g.AddressMap()
	var got []Access
	for {
		acc, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, acc)
	}
	if len(got) != 20 {
		t.Fatalf("stream length = %d, want 20", len(got))
	}
	// Iteration i: read A[i], write B[2i+5].
	for i := 0; i < 10; i++ {
		rd := got[2*i]
		wr := got[2*i+1]
		if !rd.NewIter {
			t.Errorf("access %d should start an iteration", 2*i)
		}
		if wr.NewIter {
			t.Errorf("access %d should not start an iteration", 2*i+1)
		}
		if rd.Write {
			t.Errorf("access %d should be a read", 2*i)
		}
		if !wr.Write {
			t.Errorf("access %d should be a write", 2*i+1)
		}
		if want := am.Addr(a, int64(i)); rd.Addr != want {
			t.Errorf("read %d addr = %d, want %d", i, rd.Addr, want)
		}
	}
	if !c.Done() || c.Remaining() != 0 {
		t.Error("cursor should be exhausted")
	}
	if _, ok := c.Next(); ok {
		t.Error("Next after exhaustion should report !ok")
	}
}

func TestCursorResume(t *testing.T) {
	g, spec, _ := testSetup(t)
	full, err := g.NewCursor(spec)
	if err != nil {
		t.Fatal(err)
	}
	var want []Access
	for {
		acc, ok := full.Next()
		if !ok {
			break
		}
		want = append(want, acc)
	}

	// Same stream read in chunks of 3 (simulating preemption).
	c, err := g.NewCursor(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got []Access
	for !c.Done() {
		for k := 0; k < 3 && !c.Done(); k++ {
			acc, ok := c.Next()
			if !ok {
				break
			}
			got = append(got, acc)
		}
		// Preemption point: remaining count must stay consistent.
		if c.Remaining() != int64(len(want)-len(got)) {
			t.Fatalf("Remaining = %d, want %d", c.Remaining(), len(want)-len(got))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("chunked stream length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCursorReset(t *testing.T) {
	g, spec, _ := testSetup(t)
	c, err := g.NewCursor(spec)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := c.Next()
	for !c.Done() {
		c.Next()
	}
	c.Reset()
	again, ok := c.Next()
	if !ok || again != first {
		t.Errorf("after Reset first access = %+v, want %+v", again, first)
	}
}

func TestGeneratorMemoizesStreams(t *testing.T) {
	g, spec, _ := testSetup(t)
	c1, err := g.NewCursor(spec)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := g.NewCursor(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Both cursors share the same compiled stream.
	if c1.s == nil || c2.s == nil {
		t.Fatal("stream missing")
	}
	if c1.s != c2.s {
		t.Error("cursors should share the compiled stream")
	}
	// Advancing one must not affect the other.
	c1.Next()
	if c2.pos != 0 {
		t.Error("cursors must be independent")
	}
}

func TestCursorRespectsRelayout(t *testing.T) {
	// A cursor over a re-laid-out address map must see transformed
	// addresses.
	a := prog.MustArray("A", 4, 2048)
	iter := prog.Seg("i", 0, 5)
	spec := prog.MustProcessSpec("p", iter, 0, prog.StreamRef(a, prog.Read, iter, 1, 0))
	base := layout.MustPack(32, a)
	geom := testGeomFor()
	rl, err := layout.ApplyRelayout(base, geom, map[*prog.Array]int64{a: geom.PageSize() / 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewGenerator(rl).NewCursor(spec)
	if err != nil {
		t.Fatal(err)
	}
	acc, ok := c.Next()
	if !ok {
		t.Fatal("empty stream")
	}
	if acc.Addr != rl.Addr(a, 0) {
		t.Errorf("addr = %d, want %d", acc.Addr, rl.Addr(a, 0))
	}
	if acc.Addr == base.Addr(a, 0) {
		t.Error("re-laid-out address should differ from the packed address")
	}
}

package trace

import (
	"encoding/binary"
	"fmt"

	"locsched/internal/layout"
	"locsched/internal/prog"
)

// RLEStream is a compiled trace in strided run-length-encoded form. The
// paper's loop nests are overwhelmingly strided: consecutive iterations
// advance every reference by a constant byte delta, so instead of
// materializing one (address, flags) pair per access, the stream is cut
// into segments of consecutive iterations that share a per-iteration
// delta pattern. Each segment stores one start address per reference and
// an index into the interned pattern table; the access at (iteration t,
// reference j) of a segment is
//
//	addr = starts[j] + t·delta[j],  flags = Flags[j]
//
// which reproduces the flat stream bit for bit (segment lanes are the
// {base, stride, count, flags} runs of the encoding). Identical delta
// patterns are deduplicated across segments — a relayouted array breaks
// its stream at every half-page seam into many segments that all share
// one pattern — so resident bytes scale with the number of strided
// phases, not with trace length.
//
// RLEStreams are immutable after compilation and safe to share.
type RLEStream struct {
	nrefs int
	flags []byte // per-reference flag bytes (flags[0] carries FlagNewIter)
	segs  []rleSeg
	// starts holds each segment's per-reference start addresses,
	// segment-major: segment s owns starts[s*nrefs : (s+1)*nrefs].
	starts []int64
	// pats is the interned delta-pattern table, pattern-major: pattern p
	// owns pats[p*nrefs : (p+1)*nrefs].
	pats []int64
	// cumIters[s] is the number of iterations in segments before s;
	// cumIters[len(segs)] is the total iteration count.
	cumIters []int64
}

type rleSeg struct {
	count int64 // iterations in this segment
	pat   int32 // index into the pattern table
}

// NRefs returns the number of references per iteration.
func (s *RLEStream) NRefs() int { return s.nrefs }

// Flags returns the per-reference flag bytes. Callers must not mutate.
func (s *RLEStream) Flags() []byte { return s.flags }

// NumSegs returns the number of segments.
func (s *RLEStream) NumSegs() int { return len(s.segs) }

// NumPatterns returns the number of distinct per-iteration delta patterns.
func (s *RLEStream) NumPatterns() int {
	if s.nrefs == 0 {
		return 0
	}
	return len(s.pats) / s.nrefs
}

// Iters returns the total number of iterations encoded.
func (s *RLEStream) Iters() int64 { return s.cumIters[len(s.segs)] }

// Len returns the total number of accesses encoded.
func (s *RLEStream) Len() int64 { return s.Iters() * int64(s.nrefs) }

// Seg returns segment i's per-reference start addresses and deltas (both
// nrefs long, not to be mutated) and its iteration count.
func (s *RLEStream) Seg(i int) (starts, deltas []int64, count int64) {
	seg := s.segs[i]
	off := i * s.nrefs
	poff := int(seg.pat) * s.nrefs
	return s.starts[off : off+s.nrefs], s.pats[poff : poff+s.nrefs], seg.count
}

// MemBytes approximates the stream's resident size.
func (s *RLEStream) MemBytes() int64 {
	return int64(len(s.segs))*16 +
		int64(len(s.starts))*8 +
		int64(len(s.pats))*8 +
		int64(len(s.cumIters))*8 +
		int64(len(s.flags))
}

// rleCache shares compiled RLE streams across runs, keyed and bounded
// like streamCache (the shared boundedCache holds the protocol).
var rleCache boundedCache[*RLEStream]

// RLE returns the strided run-length encoding of the spec's stream,
// compiling it on first use. Like Stream, compiled encodings are shared
// across generators and runs when the address map states its addressing
// in closed form.
func (g *Generator) RLE(spec *prog.ProcessSpec) (*RLEStream, error) {
	if g.rles == nil {
		g.rles = make(map[*prog.ProcessSpec]*RLEStream)
	}
	if s, ok := g.rles[spec]; ok {
		return s, nil
	}
	sig, keyed := addrSignature(spec, g.am)
	if keyed {
		if s, ok := rleCache.lookup(streamKey{spec, sig}); ok {
			g.rles[spec] = s
			return s, nil
		}
	}
	s, err := compileRLE(spec, g.am)
	if err != nil {
		return nil, err
	}
	if keyed {
		s = rleCache.add(streamKey{spec, sig}, s)
	}
	g.rles[spec] = s
	return s, nil
}

// compileRLE walks the spec's iteration space once and greedily cuts the
// address stream into constant-delta segments, interning delta patterns.
func compileRLE(spec *prog.ProcessSpec, am layout.AddressMap) (*RLEStream, error) {
	nrefs := len(spec.Refs)
	s := &RLEStream{nrefs: nrefs, flags: make([]byte, nrefs)}
	if nrefs == 0 {
		// prog.NewProcessSpec rejects empty Refs, but hand-rolled specs can
		// reach here. A zero-reference process has an empty flat stream
		// (immediately Done), so encode no segments rather than
		// iteration-counting ones — the engines must agree that such a
		// process is already complete.
		s.cumIters = []int64{0}
		return s, nil
	}
	fns := resolveRefFns(spec, am)
	for i := range fns {
		s.flags[i] = fns[i].flag
	}

	patIdx := make(map[string]int32)
	patKey := make([]byte, nrefs*8)
	intern := func(delta []int64) int32 {
		for j, d := range delta {
			binary.LittleEndian.PutUint64(patKey[j*8:], uint64(d))
		}
		if p, ok := patIdx[string(patKey)]; ok {
			return p
		}
		p := int32(len(s.pats) / max(nrefs, 1))
		patIdx[string(patKey)] = p
		s.pats = append(s.pats, delta...)
		return p
	}

	var (
		idxBuf    = make([]int64, 0, 4)
		prev      = make([]int64, nrefs)
		cur       = make([]int64, nrefs)
		delta     = make([]int64, nrefs)
		segCount  int64
		segPat    = int32(-1)
		firstIter = true
	)
	closeSeg := func() {
		if segCount == 0 {
			return
		}
		if segPat < 0 {
			// Single-iteration segment (deltas never observed): pattern is
			// irrelevant for playback; intern zeroes so every segment has one.
			for j := range delta {
				delta[j] = 0
			}
			segPat = intern(delta)
		}
		s.segs = append(s.segs, rleSeg{count: segCount, pat: segPat})
		segCount, segPat = 0, -1
	}
	err := spec.IterSpace.Points(func(pt []int64) bool {
		for i := range fns {
			cur[i], idxBuf = fns[i].addr(am, pt, idxBuf)
		}
		switch {
		case firstIter:
			firstIter = false
			s.starts = append(s.starts, cur...)
			segCount = 1
		default:
			for j := range delta {
				delta[j] = cur[j] - prev[j]
			}
			if segPat < 0 {
				// Second iteration of a segment fixes its pattern.
				segPat = intern(delta)
				segCount++
			} else if patMatches(s.pats, segPat, nrefs, delta) {
				segCount++
			} else {
				closeSeg()
				s.starts = append(s.starts, cur...)
				segCount = 1
			}
		}
		prev, cur = cur, prev
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("trace: process %s: %w", spec.Name, err)
	}
	closeSeg()

	s.cumIters = make([]int64, len(s.segs)+1)
	for i, seg := range s.segs {
		s.cumIters[i+1] = s.cumIters[i] + seg.count
	}
	return s, nil
}

// patMatches reports whether pattern p equals delta.
func patMatches(pats []int64, p int32, nrefs int, delta []int64) bool {
	off := int(p) * nrefs
	for j, d := range delta {
		if pats[off+j] != d {
			return false
		}
	}
	return true
}

// RLECursor walks a run-length-encoded stream in exact flat-stream order:
// for each iteration of each segment, each reference in program order.
// The position is the (segment, iteration-in-segment, reference) triple,
// so preemptive schedulers can stop a process mid-iteration and resume
// it later, possibly on a different core.
type RLECursor struct {
	spec *prog.ProcessSpec
	s    *RLEStream
	seg  int
	iter int64
	ref  int
}

// NewRLECursor returns a cursor at the start of the process's encoded
// stream.
func (g *Generator) NewRLECursor(spec *prog.ProcessSpec) (*RLECursor, error) {
	s, err := g.RLE(spec)
	if err != nil {
		return nil, err
	}
	return &RLECursor{spec: spec, s: s}, nil
}

// Spec returns the process being traced.
func (c *RLECursor) Spec() *prog.ProcessSpec { return c.spec }

// Stream returns the underlying encoded stream.
func (c *RLECursor) Stream() *RLEStream { return c.s }

// Pos returns the cursor position: current segment, iteration within it,
// and reference within the iteration.
func (c *RLECursor) Pos() (seg int, iter int64, ref int) { return c.seg, c.iter, c.ref }

// Seek commits a position previously derived from Pos and the stream's
// segment shapes. The triple must be normalized: 0 ≤ ref < NRefs, 0 ≤
// iter < the segment's count, and seg ≤ NumSegs (seg == NumSegs with
// iter == ref == 0 is the end-of-stream position).
func (c *RLECursor) Seek(seg int, iter int64, ref int) {
	c.seg, c.iter, c.ref = seg, iter, ref
}

// Next returns the next access; ok is false at end of stream.
func (c *RLECursor) Next() (Access, bool) {
	if c.seg >= len(c.s.segs) {
		return Access{}, false
	}
	seg := c.s.segs[c.seg]
	nrefs := c.s.nrefs
	f := c.s.flags[c.ref]
	addr := c.s.starts[c.seg*nrefs+c.ref] + c.iter*c.s.pats[int(seg.pat)*nrefs+c.ref]
	acc := Access{
		Addr:    addr,
		Write:   f&FlagWrite != 0,
		NewIter: f&FlagNewIter != 0,
	}
	c.ref++
	if c.ref == nrefs {
		c.ref = 0
		c.iter++
		if c.iter == seg.count {
			c.iter = 0
			c.seg++
		}
	}
	return acc, true
}

// Done reports whether the stream is exhausted.
func (c *RLECursor) Done() bool { return c.seg >= len(c.s.segs) }

// consumed returns the number of accesses already executed.
func (c *RLECursor) consumed() int64 {
	iters := c.s.cumIters[min(c.seg, len(c.s.segs))]
	return (iters+c.iter)*int64(c.s.nrefs) + int64(c.ref)
}

// Remaining returns the number of accesses left in the stream.
func (c *RLECursor) Remaining() int64 { return c.s.Len() - c.consumed() }

// Total returns the total number of accesses in the full stream.
func (c *RLECursor) Total() int64 { return c.s.Len() }

// Reset rewinds the cursor to the start of the stream.
func (c *RLECursor) Reset() { c.seg, c.iter, c.ref = 0, 0, 0 }

package trace

import (
	"testing"

	"locsched/internal/layout"
	"locsched/internal/prog"
)

func benchSpec() (*prog.ProcessSpec, layout.AddressMap) {
	arr := prog.MustArray("A", 4, 1<<20)
	iter := prog.Seg("i", 0, 4096)
	spec := prog.MustProcessSpec("p", iter, 1,
		prog.StreamRef(arr, prog.Read, iter, 1, 0),
		prog.StreamRef(arr, prog.Write, iter, 2, 64),
	)
	return spec, layout.MustPack(32, arr)
}

// TestCursorNextZeroAlloc asserts the acceptance criterion directly:
// steady-state Cursor.Next allocates nothing.
func TestCursorNextZeroAlloc(t *testing.T) {
	spec, am := benchSpec()
	cur, err := NewGenerator(am).NewCursor(spec)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10000, func() {
		if _, ok := cur.Next(); !ok {
			cur.Reset()
		}
	})
	if allocs != 0 {
		t.Errorf("Cursor.Next allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkTraceCompile measures compiling one (spec, address map) pair
// into a flat stream, bypassing the generator and package caches.
func BenchmarkTraceCompile(b *testing.B) {
	spec, am := benchSpec()
	var s *Stream
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		s, err = compile(spec, am)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Len()), "accesses")
}

// BenchmarkTraceCompileCached measures the cross-run path: the stream is
// already in the package cache, so a fresh generator only pays the
// signature lookup.
func BenchmarkTraceCompileCached(b *testing.B) {
	spec, am := benchSpec()
	if _, err := NewGenerator(am).Stream(spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewGenerator(am).Stream(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceCompileRLE measures compiling one (spec, address map)
// pair into the strided run-length encoding, bypassing the caches, and
// reports the resident bytes of both stream forms (the stream-memory
// reduction the encoding buys).
func BenchmarkTraceCompileRLE(b *testing.B) {
	spec, am := benchSpec()
	flat, err := compile(spec, am)
	if err != nil {
		b.Fatal(err)
	}
	var s *RLEStream
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err = compileRLE(spec, am)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Len()), "accesses")
	b.ReportMetric(float64(flat.MemBytes()), "flat_bytes")
	b.ReportMetric(float64(s.MemBytes()), "rle_bytes")
}

// BenchmarkTraceCompileRLECached measures the cross-run path: the
// encoding is already in the package cache, so a fresh generator only
// pays the signature lookup.
func BenchmarkTraceCompileRLECached(b *testing.B) {
	spec, am := benchSpec()
	if _, err := NewGenerator(am).RLE(spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewGenerator(am).RLE(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRLECursorNext measures per-access consumption of the encoded
// stream (the differential-test path; the simulator consumes whole runs
// instead).
func BenchmarkRLECursorNext(b *testing.B) {
	spec, am := benchSpec()
	cur, err := NewGenerator(am).NewRLECursor(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cur.Next(); !ok {
			cur.Reset()
		}
	}
}

// BenchmarkCursorNext measures per-access stream consumption.
func BenchmarkCursorNext(b *testing.B) {
	spec, am := benchSpec()
	cur, err := NewGenerator(am).NewCursor(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cur.Next(); !ok {
			cur.Reset()
		}
	}
}

// Package trace turns a process's static description (iteration space ×
// affine references) into the dynamic address stream the simulated cores
// execute. Cursors are resumable so that preemptive schedulers (the
// paper's RRS baseline) can stop a process mid-stream and continue it
// later, possibly on a different core.
package trace

import (
	"fmt"

	"locsched/internal/layout"
	"locsched/internal/prog"
)

// Access is one memory reference of the stream.
type Access struct {
	Addr    int64
	Write   bool
	NewIter bool // first access of an iteration: charge compute cycles
}

// Generator produces cursors over process specs under a fixed address
// map. Iteration-point lists are materialized once per spec and shared by
// all cursors (so RRS re-runs and repeated experiments stay cheap).
type Generator struct {
	am     layout.AddressMap
	points map[*prog.ProcessSpec][][]int64
}

// NewGenerator builds a generator over the address map.
func NewGenerator(am layout.AddressMap) *Generator {
	return &Generator{am: am, points: make(map[*prog.ProcessSpec][][]int64)}
}

// AddressMap returns the generator's address map.
func (g *Generator) AddressMap() layout.AddressMap { return g.am }

func (g *Generator) pointsOf(spec *prog.ProcessSpec) ([][]int64, error) {
	if pts, ok := g.points[spec]; ok {
		return pts, nil
	}
	n, err := spec.Iterations()
	if err != nil {
		return nil, err
	}
	pts := make([][]int64, 0, n)
	err = spec.IterSpace.Points(func(pt []int64) bool {
		pts = append(pts, append([]int64(nil), pt...))
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("trace: process %s: %w", spec.Name, err)
	}
	g.points[spec] = pts
	return pts, nil
}

// Cursor walks a process's access stream: for each iteration point in
// lexicographic order, each reference in program order.
type Cursor struct {
	gen    *Generator
	spec   *prog.ProcessSpec
	points [][]int64
	ptIdx  int
	refIdx int
	idxBuf []int64
}

// NewCursor returns a cursor positioned at the start of the process.
func (g *Generator) NewCursor(spec *prog.ProcessSpec) (*Cursor, error) {
	pts, err := g.pointsOf(spec)
	if err != nil {
		return nil, err
	}
	return &Cursor{gen: g, spec: spec, points: pts}, nil
}

// Spec returns the process being traced.
func (c *Cursor) Spec() *prog.ProcessSpec { return c.spec }

// Next returns the next access; ok is false at end of stream.
func (c *Cursor) Next() (Access, bool) {
	if c.ptIdx >= len(c.points) {
		return Access{}, false
	}
	ref := c.spec.Refs[c.refIdx]
	pt := c.points[c.ptIdx]
	c.idxBuf = ref.Map.Apply(pt, c.idxBuf)
	lin := ref.Array.LinearIndex(c.idxBuf)
	acc := Access{
		Addr:    c.gen.am.Addr(ref.Array, lin),
		Write:   ref.Kind == prog.Write,
		NewIter: c.refIdx == 0,
	}
	c.refIdx++
	if c.refIdx == len(c.spec.Refs) {
		c.refIdx = 0
		c.ptIdx++
	}
	return acc, true
}

// Done reports whether the stream is exhausted.
func (c *Cursor) Done() bool { return c.ptIdx >= len(c.points) }

// Remaining returns the number of accesses left in the stream.
func (c *Cursor) Remaining() int64 {
	if c.Done() {
		return 0
	}
	full := int64(len(c.points)-c.ptIdx) * int64(len(c.spec.Refs))
	return full - int64(c.refIdx)
}

// Total returns the total number of accesses in the full stream.
func (c *Cursor) Total() int64 {
	return int64(len(c.points)) * int64(len(c.spec.Refs))
}

// Reset rewinds the cursor to the start of the stream.
func (c *Cursor) Reset() {
	c.ptIdx, c.refIdx = 0, 0
}

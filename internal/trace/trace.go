// Package trace turns a process's static description (iteration space ×
// affine references) into the dynamic address stream the simulated cores
// execute. Cursors are resumable so that preemptive schedulers (the
// paper's RRS baseline) can stop a process mid-stream and continue it
// later, possibly on a different core.
//
// Streams are compiled: each (ProcessSpec, AddressMap) pair is walked
// once — affine maps applied, subscripts linearized, addresses resolved —
// into a flat structure-of-arrays form (addresses plus packed flag
// bytes). Cursors are then plain indices into the compiled stream, so the
// simulator's per-access cost is two slice loads instead of an affine
// Apply, a row-major linearization, and an interface dispatch. Compiled
// streams are shared by all cursors of a generator, and — when the
// address map states its per-array addressing in closed form
// (layout.AddrCompiler) — across generators and runs through a bounded
// package-level cache, so repeated experiments pay compilation once.
package trace

import (
	"fmt"
	"strconv"
	"sync"

	"locsched/internal/layout"
	"locsched/internal/prog"
)

// Access is one memory reference of the stream.
type Access struct {
	Addr    int64
	Write   bool
	NewIter bool // first access of an iteration: charge compute cycles
}

// Flag bits of Stream.Flags.
const (
	// FlagWrite marks a store reference.
	FlagWrite byte = 1 << 0
	// FlagNewIter marks the first access of an iteration point.
	FlagNewIter byte = 1 << 1
)

// Stream is a compiled address trace in structure-of-arrays form: the
// i-th access touches Addrs[i] with the properties packed in Flags[i].
// Streams are immutable after compilation and safe to share.
type Stream struct {
	Addrs []int64
	Flags []byte
}

// Len returns the number of accesses in the stream.
func (s *Stream) Len() int { return len(s.Addrs) }

// streamKey identifies a compiled stream across generators: the process
// plus the exact closed-form addressing of every reference. Entries
// retain their spec pointer, so a key can never alias a different
// (collected and reallocated) spec.
type streamKey struct {
	spec *prog.ProcessSpec
	sig  string
}

// memSized is anything that can report its resident size — the two
// compiled stream forms.
type memSized interface{ MemBytes() int64 }

// boundedCache shares compiled streams across runs. Bounded by entry
// count and by total resident bytes (flat streams are fully
// materialized traces, so dense layout sweeps could otherwise pin
// gigabytes); once either bound is hit the cache is cleared wholesale —
// streams are cheap to recompile, the bounds only guard unbounded
// growth under churn. One instantiation per stream form keeps the
// locking/eviction protocol in a single place.
type boundedCache[S memSized] struct {
	sync.Mutex
	m     map[streamKey]S
	bytes int64
}

// lookup returns the cached stream for key, if any.
func (c *boundedCache[S]) lookup(key streamKey) (S, bool) {
	c.Lock()
	defer c.Unlock()
	s, ok := c.m[key]
	return s, ok
}

// add inserts s under key and returns the canonical entry: when a
// concurrent caller compiled the same stream first, its copy is adopted
// so the byte accounting stays exact.
func (c *boundedCache[S]) add(key streamKey, s S) S {
	c.Lock()
	defer c.Unlock()
	if prior, ok := c.m[key]; ok {
		return prior
	}
	if c.m == nil || len(c.m) >= maxCachedStreams || c.bytes+s.MemBytes() > maxCachedStreamBytes {
		c.m = make(map[streamKey]S)
		c.bytes = 0
	}
	c.m[key] = s
	c.bytes += s.MemBytes()
	return s
}

var streamCache boundedCache[*Stream]

const (
	// maxCachedStreams bounds entries per cache. Large-scale mixes hold
	// hundreds of live specs at once (128-core Figure 7-XL runs ~600), so
	// the cap must comfortably exceed that or every run recompiles its
	// whole working set; the byte bound is what actually limits memory.
	maxCachedStreams     = 4096
	maxCachedStreamBytes = 256 << 20
)

// MemBytes approximates the stream's resident size: 8 address bytes plus
// 1 flag byte per access.
func (s *Stream) MemBytes() int64 { return int64(len(s.Addrs)) * 9 }

// addrSignature returns a string uniquely describing the addressing of
// every reference of the spec under am, or ok=false when am cannot state
// it in closed form.
func addrSignature(spec *prog.ProcessSpec, am layout.AddressMap) (string, bool) {
	ac, ok := am.(layout.AddrCompiler)
	if !ok {
		return "", false
	}
	buf := make([]byte, 0, 16*len(spec.Refs))
	for _, ref := range spec.Refs {
		f, ok := ac.CompileAddr(ref.Array)
		if !ok {
			return "", false
		}
		buf = strconv.AppendInt(buf, f.Base, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, f.Elem, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, f.Page, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, f.Bank, 10)
		buf = append(buf, ';')
	}
	return string(buf), true
}

// Generator compiles and caches streams over process specs under a fixed
// address map. Compiled streams are shared by all cursors (so RRS re-runs
// and repeated experiments stay cheap).
type Generator struct {
	am      layout.AddressMap
	streams map[*prog.ProcessSpec]*Stream
	rles    map[*prog.ProcessSpec]*RLEStream
}

// NewGenerator builds a generator over the address map.
func NewGenerator(am layout.AddressMap) *Generator {
	return &Generator{am: am, streams: make(map[*prog.ProcessSpec]*Stream)}
}

// AddressMap returns the generator's address map.
func (g *Generator) AddressMap() layout.AddressMap { return g.am }

// Stream returns the compiled stream for the spec, compiling it on first
// use.
func (g *Generator) Stream(spec *prog.ProcessSpec) (*Stream, error) {
	if s, ok := g.streams[spec]; ok {
		return s, nil
	}
	sig, keyed := addrSignature(spec, g.am)
	if keyed {
		if s, ok := streamCache.lookup(streamKey{spec, sig}); ok {
			g.streams[spec] = s
			return s, nil
		}
	}
	s, err := compile(spec, g.am)
	if err != nil {
		return nil, err
	}
	if keyed {
		s = streamCache.add(streamKey{spec, sig}, s)
	}
	g.streams[spec] = s
	return s, nil
}

// refFn is one reference's resolved address function: the closed-form
// formula when the map provides one, the interface call otherwise.
type refFn struct {
	ref  prog.Ref
	flag byte
	f    layout.AddrFormula
	fast bool
}

// addr resolves the reference's address at an iteration point; idxBuf is
// caller-owned scratch, returned for reuse.
func (fn *refFn) addr(am layout.AddressMap, pt, idxBuf []int64) (int64, []int64) {
	idxBuf = fn.ref.Map.Apply(pt, idxBuf)
	lin := fn.ref.Array.LinearIndex(idxBuf)
	if fn.fast {
		return fn.f.Addr(lin), idxBuf
	}
	return am.Addr(fn.ref.Array, lin), idxBuf
}

// resolveRefFns resolves every reference of the spec once against the
// address map, packing the per-access flag byte alongside.
func resolveRefFns(spec *prog.ProcessSpec, am layout.AddressMap) []refFn {
	fns := make([]refFn, len(spec.Refs))
	ac, hasAC := am.(layout.AddrCompiler)
	for i, ref := range spec.Refs {
		fns[i].ref = ref
		if ref.Kind == prog.Write {
			fns[i].flag = FlagWrite
		}
		if i == 0 {
			fns[i].flag |= FlagNewIter
		}
		if hasAC {
			if f, ok := ac.CompileAddr(ref.Array); ok {
				fns[i].f, fns[i].fast = f, true
			}
		}
	}
	return fns
}

// compile walks the spec's iteration space once and materializes the full
// access stream under the address map.
func compile(spec *prog.ProcessSpec, am layout.AddressMap) (*Stream, error) {
	total, err := spec.Accesses()
	if err != nil {
		return nil, fmt.Errorf("trace: process %s: %w", spec.Name, err)
	}
	s := &Stream{
		Addrs: make([]int64, 0, total),
		Flags: make([]byte, 0, total),
	}
	fns := resolveRefFns(spec, am)
	idxBuf := make([]int64, 0, 4)
	err = spec.IterSpace.Points(func(pt []int64) bool {
		for i := range fns {
			fn := &fns[i]
			var addr int64
			addr, idxBuf = fn.addr(am, pt, idxBuf)
			s.Addrs = append(s.Addrs, addr)
			s.Flags = append(s.Flags, fn.flag)
		}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("trace: process %s: %w", spec.Name, err)
	}
	return s, nil
}

// Cursor walks a process's compiled access stream: for each iteration
// point in lexicographic order, each reference in program order.
type Cursor struct {
	spec *prog.ProcessSpec
	s    *Stream
	pos  int
}

// NewCursor returns a cursor positioned at the start of the process.
func (g *Generator) NewCursor(spec *prog.ProcessSpec) (*Cursor, error) {
	s, err := g.Stream(spec)
	if err != nil {
		return nil, err
	}
	return &Cursor{spec: spec, s: s}, nil
}

// Spec returns the process being traced.
func (c *Cursor) Spec() *prog.ProcessSpec { return c.spec }

// Next returns the next access; ok is false at end of stream.
func (c *Cursor) Next() (Access, bool) {
	if c.pos >= len(c.s.Addrs) {
		return Access{}, false
	}
	f := c.s.Flags[c.pos]
	acc := Access{
		Addr:    c.s.Addrs[c.pos],
		Write:   f&FlagWrite != 0,
		NewIter: f&FlagNewIter != 0,
	}
	c.pos++
	return acc, true
}

// StreamAt returns the compiled stream slices and the cursor's current
// position, for batched execution: callers consume addrs[pos:] directly
// and commit progress with Skip.
func (c *Cursor) StreamAt() (addrs []int64, flags []byte, pos int) {
	return c.s.Addrs, c.s.Flags, c.pos
}

// Skip advances the cursor by n accesses (clamped to the stream end).
func (c *Cursor) Skip(n int) {
	c.pos += n
	if c.pos > len(c.s.Addrs) {
		c.pos = len(c.s.Addrs)
	}
}

// Done reports whether the stream is exhausted.
func (c *Cursor) Done() bool { return c.pos >= len(c.s.Addrs) }

// Remaining returns the number of accesses left in the stream.
func (c *Cursor) Remaining() int64 { return int64(len(c.s.Addrs) - c.pos) }

// Total returns the total number of accesses in the full stream.
func (c *Cursor) Total() int64 { return int64(len(c.s.Addrs)) }

// Reset rewinds the cursor to the start of the stream.
func (c *Cursor) Reset() { c.pos = 0 }

// InterpCursor is the reference implementation the compiled stream is
// checked against: it interprets the spec access by access — affine map
// application, row-major linearization, AddressMap dispatch — exactly as
// the pre-compilation simulator did. It exists for differential testing
// and for address maps whose cost model makes materialization
// undesirable; the simulator itself always runs compiled streams.
type InterpCursor struct {
	am     layout.AddressMap
	spec   *prog.ProcessSpec
	points [][]int64
	ptIdx  int
	refIdx int
	idxBuf []int64
}

// NewInterpCursor returns an interpreting cursor at the start of the
// process's stream.
func (g *Generator) NewInterpCursor(spec *prog.ProcessSpec) (*InterpCursor, error) {
	n, err := spec.Iterations()
	if err != nil {
		return nil, err
	}
	pts := make([][]int64, 0, n)
	err = spec.IterSpace.Points(func(pt []int64) bool {
		pts = append(pts, append([]int64(nil), pt...))
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("trace: process %s: %w", spec.Name, err)
	}
	return &InterpCursor{am: g.am, spec: spec, points: pts}, nil
}

// Next returns the next access; ok is false at end of stream.
func (c *InterpCursor) Next() (Access, bool) {
	if c.ptIdx >= len(c.points) {
		return Access{}, false
	}
	ref := c.spec.Refs[c.refIdx]
	pt := c.points[c.ptIdx]
	c.idxBuf = ref.Map.Apply(pt, c.idxBuf)
	lin := ref.Array.LinearIndex(c.idxBuf)
	acc := Access{
		Addr:    c.am.Addr(ref.Array, lin),
		Write:   ref.Kind == prog.Write,
		NewIter: c.refIdx == 0,
	}
	c.refIdx++
	if c.refIdx == len(c.spec.Refs) {
		c.refIdx = 0
		c.ptIdx++
	}
	return acc, true
}

// Done reports whether the stream is exhausted.
func (c *InterpCursor) Done() bool { return c.ptIdx >= len(c.points) }

// Remaining returns the number of accesses left in the stream.
func (c *InterpCursor) Remaining() int64 {
	if c.Done() {
		return 0
	}
	full := int64(len(c.points)-c.ptIdx) * int64(len(c.spec.Refs))
	return full - int64(c.refIdx)
}

// Reset rewinds the cursor to the start of the stream.
func (c *InterpCursor) Reset() {
	c.ptIdx, c.refIdx = 0, 0
}

// Package trace turns a process's static description (iteration space ×
// affine references) into the dynamic address stream the simulated cores
// execute. Cursors are resumable so that preemptive schedulers (the
// paper's RRS baseline) can stop a process mid-stream and continue it
// later, possibly on a different core.
//
// Streams are compiled: each (ProcessSpec, AddressMap) pair is walked
// once — affine maps applied, subscripts linearized, addresses resolved —
// into a flat structure-of-arrays form (addresses plus packed flag
// bytes). Cursors are then plain indices into the compiled stream, so the
// simulator's per-access cost is two slice loads instead of an affine
// Apply, a row-major linearization, and an interface dispatch. Compiled
// streams are shared by all cursors of a generator, and — when the
// address map states its per-array addressing in closed form
// (layout.AddrCompiler) — across generators and runs through a bounded
// package-level cache, so repeated experiments pay compilation once.
package trace

import (
	"fmt"
	"strconv"
	"sync"

	"locsched/internal/layout"
	"locsched/internal/prog"
)

// Access is one memory reference of the stream.
type Access struct {
	Addr    int64
	Write   bool
	NewIter bool // first access of an iteration: charge compute cycles
}

// Flag bits of Stream.Flags.
const (
	// FlagWrite marks a store reference.
	FlagWrite byte = 1 << 0
	// FlagNewIter marks the first access of an iteration point.
	FlagNewIter byte = 1 << 1
)

// Stream is a compiled address trace in structure-of-arrays form: the
// i-th access touches Addrs[i] with the properties packed in Flags[i].
// Streams are immutable after compilation and safe to share.
type Stream struct {
	Addrs []int64
	Flags []byte
}

// Len returns the number of accesses in the stream.
func (s *Stream) Len() int { return len(s.Addrs) }

// streamKey identifies a compiled stream across generators: the process
// plus the exact closed-form addressing of every reference. Entries
// retain their spec pointer, so a key can never alias a different
// (collected and reallocated) spec.
type streamKey struct {
	spec *prog.ProcessSpec
	sig  string
}

// streamCache shares compiled streams across runs. Bounded by entry
// count and by total resident bytes (streams are fully materialized
// traces, so dense layout sweeps could otherwise pin gigabytes); once
// either bound is hit the cache is cleared wholesale — streams are cheap
// to recompile, the bounds only guard unbounded growth under churn.
var streamCache = struct {
	sync.Mutex
	m     map[streamKey]*Stream
	bytes int64
}{m: make(map[streamKey]*Stream)}

const (
	maxCachedStreams     = 256
	maxCachedStreamBytes = 256 << 20
)

// memBytes approximates the stream's resident size.
func (s *Stream) memBytes() int64 { return int64(len(s.Addrs)) * 9 }

// addrSignature returns a string uniquely describing the addressing of
// every reference of the spec under am, or ok=false when am cannot state
// it in closed form.
func addrSignature(spec *prog.ProcessSpec, am layout.AddressMap) (string, bool) {
	ac, ok := am.(layout.AddrCompiler)
	if !ok {
		return "", false
	}
	buf := make([]byte, 0, 16*len(spec.Refs))
	for _, ref := range spec.Refs {
		f, ok := ac.CompileAddr(ref.Array)
		if !ok {
			return "", false
		}
		buf = strconv.AppendInt(buf, f.Base, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, f.Elem, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, f.Page, 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, f.Bank, 10)
		buf = append(buf, ';')
	}
	return string(buf), true
}

// Generator compiles and caches streams over process specs under a fixed
// address map. Compiled streams are shared by all cursors (so RRS re-runs
// and repeated experiments stay cheap).
type Generator struct {
	am      layout.AddressMap
	streams map[*prog.ProcessSpec]*Stream
}

// NewGenerator builds a generator over the address map.
func NewGenerator(am layout.AddressMap) *Generator {
	return &Generator{am: am, streams: make(map[*prog.ProcessSpec]*Stream)}
}

// AddressMap returns the generator's address map.
func (g *Generator) AddressMap() layout.AddressMap { return g.am }

// Stream returns the compiled stream for the spec, compiling it on first
// use.
func (g *Generator) Stream(spec *prog.ProcessSpec) (*Stream, error) {
	if s, ok := g.streams[spec]; ok {
		return s, nil
	}
	sig, keyed := addrSignature(spec, g.am)
	if keyed {
		streamCache.Lock()
		s, ok := streamCache.m[streamKey{spec, sig}]
		streamCache.Unlock()
		if ok {
			g.streams[spec] = s
			return s, nil
		}
	}
	s, err := compile(spec, g.am)
	if err != nil {
		return nil, err
	}
	g.streams[spec] = s
	if keyed {
		key := streamKey{spec, sig}
		streamCache.Lock()
		if prior, ok := streamCache.m[key]; ok {
			// A concurrent generator compiled the same stream first: adopt
			// it so the byte accounting stays exact.
			s = prior
		} else {
			if len(streamCache.m) >= maxCachedStreams || streamCache.bytes+s.memBytes() > maxCachedStreamBytes {
				streamCache.m = make(map[streamKey]*Stream)
				streamCache.bytes = 0
			}
			streamCache.m[key] = s
			streamCache.bytes += s.memBytes()
		}
		streamCache.Unlock()
		g.streams[spec] = s
	}
	return s, nil
}

// compile walks the spec's iteration space once and materializes the full
// access stream under the address map.
func compile(spec *prog.ProcessSpec, am layout.AddressMap) (*Stream, error) {
	total, err := spec.Accesses()
	if err != nil {
		return nil, fmt.Errorf("trace: process %s: %w", spec.Name, err)
	}
	nrefs := len(spec.Refs)
	s := &Stream{
		Addrs: make([]int64, 0, total),
		Flags: make([]byte, 0, total),
	}

	// Resolve each reference's address function once: the closed-form
	// formula when the map provides one, the interface call otherwise.
	type refFn struct {
		ref  prog.Ref
		flag byte
		f    layout.AddrFormula
		fast bool
	}
	fns := make([]refFn, nrefs)
	ac, hasAC := am.(layout.AddrCompiler)
	for i, ref := range spec.Refs {
		fns[i].ref = ref
		if ref.Kind == prog.Write {
			fns[i].flag = FlagWrite
		}
		if i == 0 {
			fns[i].flag |= FlagNewIter
		}
		if hasAC {
			if f, ok := ac.CompileAddr(ref.Array); ok {
				fns[i].f, fns[i].fast = f, true
			}
		}
	}

	idxBuf := make([]int64, 0, 4)
	err = spec.IterSpace.Points(func(pt []int64) bool {
		for i := range fns {
			fn := &fns[i]
			idxBuf = fn.ref.Map.Apply(pt, idxBuf)
			lin := fn.ref.Array.LinearIndex(idxBuf)
			var addr int64
			if fn.fast {
				addr = fn.f.Addr(lin)
			} else {
				addr = am.Addr(fn.ref.Array, lin)
			}
			s.Addrs = append(s.Addrs, addr)
			s.Flags = append(s.Flags, fn.flag)
		}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("trace: process %s: %w", spec.Name, err)
	}
	return s, nil
}

// Cursor walks a process's compiled access stream: for each iteration
// point in lexicographic order, each reference in program order.
type Cursor struct {
	spec *prog.ProcessSpec
	s    *Stream
	pos  int
}

// NewCursor returns a cursor positioned at the start of the process.
func (g *Generator) NewCursor(spec *prog.ProcessSpec) (*Cursor, error) {
	s, err := g.Stream(spec)
	if err != nil {
		return nil, err
	}
	return &Cursor{spec: spec, s: s}, nil
}

// Spec returns the process being traced.
func (c *Cursor) Spec() *prog.ProcessSpec { return c.spec }

// Next returns the next access; ok is false at end of stream.
func (c *Cursor) Next() (Access, bool) {
	if c.pos >= len(c.s.Addrs) {
		return Access{}, false
	}
	f := c.s.Flags[c.pos]
	acc := Access{
		Addr:    c.s.Addrs[c.pos],
		Write:   f&FlagWrite != 0,
		NewIter: f&FlagNewIter != 0,
	}
	c.pos++
	return acc, true
}

// StreamAt returns the compiled stream slices and the cursor's current
// position, for batched execution: callers consume addrs[pos:] directly
// and commit progress with Skip.
func (c *Cursor) StreamAt() (addrs []int64, flags []byte, pos int) {
	return c.s.Addrs, c.s.Flags, c.pos
}

// Skip advances the cursor by n accesses (clamped to the stream end).
func (c *Cursor) Skip(n int) {
	c.pos += n
	if c.pos > len(c.s.Addrs) {
		c.pos = len(c.s.Addrs)
	}
}

// Done reports whether the stream is exhausted.
func (c *Cursor) Done() bool { return c.pos >= len(c.s.Addrs) }

// Remaining returns the number of accesses left in the stream.
func (c *Cursor) Remaining() int64 { return int64(len(c.s.Addrs) - c.pos) }

// Total returns the total number of accesses in the full stream.
func (c *Cursor) Total() int64 { return int64(len(c.s.Addrs)) }

// Reset rewinds the cursor to the start of the stream.
func (c *Cursor) Reset() { c.pos = 0 }

// InterpCursor is the reference implementation the compiled stream is
// checked against: it interprets the spec access by access — affine map
// application, row-major linearization, AddressMap dispatch — exactly as
// the pre-compilation simulator did. It exists for differential testing
// and for address maps whose cost model makes materialization
// undesirable; the simulator itself always runs compiled streams.
type InterpCursor struct {
	am     layout.AddressMap
	spec   *prog.ProcessSpec
	points [][]int64
	ptIdx  int
	refIdx int
	idxBuf []int64
}

// NewInterpCursor returns an interpreting cursor at the start of the
// process's stream.
func (g *Generator) NewInterpCursor(spec *prog.ProcessSpec) (*InterpCursor, error) {
	n, err := spec.Iterations()
	if err != nil {
		return nil, err
	}
	pts := make([][]int64, 0, n)
	err = spec.IterSpace.Points(func(pt []int64) bool {
		pts = append(pts, append([]int64(nil), pt...))
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("trace: process %s: %w", spec.Name, err)
	}
	return &InterpCursor{am: g.am, spec: spec, points: pts}, nil
}

// Next returns the next access; ok is false at end of stream.
func (c *InterpCursor) Next() (Access, bool) {
	if c.ptIdx >= len(c.points) {
		return Access{}, false
	}
	ref := c.spec.Refs[c.refIdx]
	pt := c.points[c.ptIdx]
	c.idxBuf = ref.Map.Apply(pt, c.idxBuf)
	lin := ref.Array.LinearIndex(c.idxBuf)
	acc := Access{
		Addr:    c.am.Addr(ref.Array, lin),
		Write:   ref.Kind == prog.Write,
		NewIter: c.refIdx == 0,
	}
	c.refIdx++
	if c.refIdx == len(c.spec.Refs) {
		c.refIdx = 0
		c.ptIdx++
	}
	return acc, true
}

// Done reports whether the stream is exhausted.
func (c *InterpCursor) Done() bool { return c.ptIdx >= len(c.points) }

// Remaining returns the number of accesses left in the stream.
func (c *InterpCursor) Remaining() int64 {
	if c.Done() {
		return 0
	}
	full := int64(len(c.points)-c.ptIdx) * int64(len(c.spec.Refs))
	return full - int64(c.refIdx)
}

// Reset rewinds the cursor to the start of the stream.
func (c *InterpCursor) Reset() {
	c.ptIdx, c.refIdx = 0, 0
}

package trace

import (
	"fmt"
	"testing"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/prog"
	"locsched/internal/sched"
	"locsched/internal/sharing"
	"locsched/internal/workload"
)

// diffGeom is the paper's Table 2 cache, used to derive relayouts.
func diffGeom() cache.Geometry {
	return cache.Geometry{Size: 8 * 1024, BlockSize: 32, Assoc: 2}
}

// addressMapsUnderTest returns the two layouts every app is checked
// under: the packed base layout and the LSM-derived relayout (falling
// back to an explicit alternating-bank relayout when the mapping phase
// moves nothing, so the interleaved path is always exercised).
func addressMapsUnderTest(t *testing.T, app *workload.App) map[string]layout.AddressMap {
	t.Helper()
	geom := diffGeom()
	base, err := layout.Pack(geom.BlockSize, app.Arrays...)
	if err != nil {
		t.Fatalf("%s: Pack: %v", app.Name, err)
	}
	m, err := sharing.ComputeMatrix(app.Graph)
	if err != nil {
		t.Fatalf("%s: ComputeMatrix: %v", app.Name, err)
	}
	_, mapping, err := sched.NewLSM(app.Graph, m, nil, 8, base, geom, nil)
	if err != nil {
		t.Fatalf("%s: NewLSM: %v", app.Name, err)
	}
	rl := mapping.Layout
	if len(mapping.Banks) == 0 {
		banks := make(map[*prog.Array]int64, len(app.Arrays))
		for i, arr := range app.Arrays {
			banks[arr] = int64(i%2) * (geom.PageSize() / 2)
		}
		rl, err = layout.ApplyRelayout(base, geom, banks)
		if err != nil {
			t.Fatalf("%s: ApplyRelayout: %v", app.Name, err)
		}
	}
	return map[string]layout.AddressMap{"Packed": base, "Relayouted": rl}
}

// TestCompiledMatchesInterpreted: for every Table 1 application under
// both address maps, the compiled stream is access-for-access identical
// to the interpreting reference cursor — same addresses, same
// read/write kinds, same iteration boundaries.
func TestCompiledMatchesInterpreted(t *testing.T) {
	apps, err := workload.BuildAll(workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		for amName, am := range addressMapsUnderTest(t, app) {
			t.Run(fmt.Sprintf("%s/%s", app.Name, amName), func(t *testing.T) {
				gen := NewGenerator(am)
				for _, p := range app.Graph.Processes() {
					cur, err := gen.NewCursor(p.Spec)
					if err != nil {
						t.Fatalf("NewCursor(%s): %v", p.Spec.Name, err)
					}
					ref, err := gen.NewInterpCursor(p.Spec)
					if err != nil {
						t.Fatalf("NewInterpCursor(%s): %v", p.Spec.Name, err)
					}
					if cur.Remaining() != ref.Remaining() {
						t.Fatalf("%s: Remaining %d != interpreted %d", p.Spec.Name, cur.Remaining(), ref.Remaining())
					}
					for i := int64(0); ; i++ {
						got, gok := cur.Next()
						want, wok := ref.Next()
						if gok != wok {
							t.Fatalf("%s: access %d: compiled ok=%v, interpreted ok=%v", p.Spec.Name, i, gok, wok)
						}
						if !gok {
							break
						}
						if got != want {
							t.Fatalf("%s: access %d: compiled %+v != interpreted %+v", p.Spec.Name, i, got, want)
						}
					}
				}
			})
		}
	}
}

// TestCompiledResumeAndReset: chunked consumption (preemption resume
// points) and a mid-stream Reset on the compiled cursor reproduce the
// interpreted stream exactly.
func TestCompiledResumeAndReset(t *testing.T) {
	apps, err := workload.BuildAll(workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		for amName, am := range addressMapsUnderTest(t, app) {
			t.Run(fmt.Sprintf("%s/%s", app.Name, amName), func(t *testing.T) {
				gen := NewGenerator(am)
				// One representative process per app keeps the quadratic
				// chunk walk affordable; the full-stream equivalence of
				// every process is covered above.
				spec := app.Graph.Processes()[0].Spec

				ref, err := gen.NewInterpCursor(spec)
				if err != nil {
					t.Fatal(err)
				}
				var want []Access
				for {
					acc, ok := ref.Next()
					if !ok {
						break
					}
					want = append(want, acc)
				}

				cur, err := gen.NewCursor(spec)
				if err != nil {
					t.Fatal(err)
				}
				// Mid-stream reset: consume a third, rewind, then replay in
				// preemption-sized chunks, checking the resume bookkeeping
				// at every boundary.
				for i := 0; i < len(want)/3; i++ {
					cur.Next()
				}
				cur.Reset()
				if cur.Remaining() != int64(len(want)) {
					t.Fatalf("after Reset: Remaining = %d, want %d", cur.Remaining(), len(want))
				}
				var got []Access
				chunk := 7
				for !cur.Done() {
					for k := 0; k < chunk && !cur.Done(); k++ {
						acc, ok := cur.Next()
						if !ok {
							break
						}
						got = append(got, acc)
					}
					if cur.Remaining() != int64(len(want)-len(got)) {
						t.Fatalf("resume point %d: Remaining = %d, want %d", len(got), cur.Remaining(), len(want)-len(got))
					}
				}
				if len(got) != len(want) {
					t.Fatalf("chunked stream length = %d, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("access %d = %+v, want %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

package trace

import "locsched/internal/cache"

func testGeomFor() cache.Geometry {
	return cache.Geometry{Size: 8 * 1024, BlockSize: 32, Assoc: 2}
}

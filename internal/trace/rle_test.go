package trace

import (
	"fmt"
	"testing"

	"locsched/internal/layout"
	"locsched/internal/prog"
	"locsched/internal/workload"
)

// TestRLEMatchesCompiledAndInterpreted: for every Table 1 application
// under both address maps, the run-length-encoded stream replays
// access-for-access identically to both the flat compiled stream and the
// interpreting reference — same addresses, same read/write kinds, same
// iteration boundaries, same totals.
func TestRLEMatchesCompiledAndInterpreted(t *testing.T) {
	apps, err := workload.BuildAll(workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		for amName, am := range addressMapsUnderTest(t, app) {
			t.Run(fmt.Sprintf("%s/%s", app.Name, amName), func(t *testing.T) {
				gen := NewGenerator(am)
				for _, p := range app.Graph.Processes() {
					rle, err := gen.NewRLECursor(p.Spec)
					if err != nil {
						t.Fatalf("NewRLECursor(%s): %v", p.Spec.Name, err)
					}
					flat, err := gen.NewCursor(p.Spec)
					if err != nil {
						t.Fatalf("NewCursor(%s): %v", p.Spec.Name, err)
					}
					ref, err := gen.NewInterpCursor(p.Spec)
					if err != nil {
						t.Fatalf("NewInterpCursor(%s): %v", p.Spec.Name, err)
					}
					if rle.Total() != flat.Total() {
						t.Fatalf("%s: RLE Total %d != flat %d", p.Spec.Name, rle.Total(), flat.Total())
					}
					if rle.Remaining() != ref.Remaining() {
						t.Fatalf("%s: RLE Remaining %d != interpreted %d", p.Spec.Name, rle.Remaining(), ref.Remaining())
					}
					for i := int64(0); ; i++ {
						got, gok := rle.Next()
						wantF, fok := flat.Next()
						wantI, iok := ref.Next()
						if gok != fok || gok != iok {
							t.Fatalf("%s: access %d: RLE ok=%v, flat ok=%v, interpreted ok=%v", p.Spec.Name, i, gok, fok, iok)
						}
						if !gok {
							break
						}
						if got != wantF || got != wantI {
							t.Fatalf("%s: access %d: RLE %+v, flat %+v, interpreted %+v", p.Spec.Name, i, got, wantF, wantI)
						}
					}
				}
			})
		}
	}
}

// TestRLEResumeAndReset: chunked consumption (preemption resume points,
// including mid-iteration stops at every chunk boundary) and a
// mid-stream Reset reproduce the flat stream exactly, with correct
// Remaining bookkeeping throughout.
func TestRLEResumeAndReset(t *testing.T) {
	apps, err := workload.BuildAll(workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		for amName, am := range addressMapsUnderTest(t, app) {
			t.Run(fmt.Sprintf("%s/%s", app.Name, amName), func(t *testing.T) {
				gen := NewGenerator(am)
				spec := app.Graph.Processes()[0].Spec

				flat, err := gen.NewCursor(spec)
				if err != nil {
					t.Fatal(err)
				}
				var want []Access
				for {
					acc, ok := flat.Next()
					if !ok {
						break
					}
					want = append(want, acc)
				}

				cur, err := gen.NewRLECursor(spec)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < len(want)/3; i++ {
					cur.Next()
				}
				cur.Reset()
				if cur.Remaining() != int64(len(want)) {
					t.Fatalf("after Reset: Remaining = %d, want %d", cur.Remaining(), len(want))
				}
				var got []Access
				// A chunk size coprime to typical ref counts stops
				// mid-iteration at most boundaries.
				chunk := 7
				for !cur.Done() {
					for k := 0; k < chunk && !cur.Done(); k++ {
						acc, ok := cur.Next()
						if !ok {
							break
						}
						got = append(got, acc)
					}
					if cur.Remaining() != int64(len(want)-len(got)) {
						t.Fatalf("resume point %d: Remaining = %d, want %d", len(got), cur.Remaining(), len(want)-len(got))
					}
					// Seek to the position Pos reports: a round trip through
					// the engine's commit path must be a no-op.
					seg, iter, ref := cur.Pos()
					cur.Seek(seg, iter, ref)
				}
				if len(got) != len(want) {
					t.Fatalf("chunked stream length = %d, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("access %d = %+v, want %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestRLEMemoryReduction asserts the PR's acceptance criterion: across
// the Table 1 applications under both layouts, the run-length encoding
// is at least 4× smaller than the flat compiled stream — per process and
// in aggregate. (In practice the reduction is orders of magnitude: a
// strided phase compresses to one segment.)
func TestRLEMemoryReduction(t *testing.T) {
	apps, err := workload.BuildAll(workload.Params{Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	var flatTotal, rleTotal int64
	for _, app := range apps {
		for amName, am := range addressMapsUnderTest(t, app) {
			gen := NewGenerator(am)
			for _, p := range app.Graph.Processes() {
				flat, err := gen.Stream(p.Spec)
				if err != nil {
					t.Fatal(err)
				}
				rle, err := gen.RLE(p.Spec)
				if err != nil {
					t.Fatal(err)
				}
				fb, rb := flat.MemBytes(), rle.MemBytes()
				flatTotal += fb
				rleTotal += rb
				if rb*4 > fb {
					t.Errorf("%s/%s/%s: RLE %d bytes vs flat %d bytes: reduction %.1f× < 4×",
						app.Name, amName, p.Spec.Name, rb, fb, float64(fb)/float64(rb))
				}
			}
		}
	}
	if rleTotal*4 > flatTotal {
		t.Errorf("aggregate: RLE %d bytes vs flat %d bytes: reduction %.1f× < 4×",
			rleTotal, flatTotal, float64(flatTotal)/float64(rleTotal))
	}
	t.Logf("Table 1 aggregate stream bytes: flat %d, RLE %d (%.0f× reduction)",
		flatTotal, rleTotal, float64(flatTotal)/float64(rleTotal))
}

// TestRLEZeroRefSpec: a hand-rolled spec with no references (rejected by
// prog.NewProcessSpec but constructible directly) has an empty flat
// stream; the RLE encoding must agree that the process is already done,
// so both engines treat it identically.
func TestRLEZeroRefSpec(t *testing.T) {
	arr := prog.MustArray("zr.A", 4, 16)
	am := layout.MustPack(32, arr)
	spec := &prog.ProcessSpec{Name: "zr", IterSpace: prog.Seg("i", 0, 8)}
	gen := NewGenerator(am)
	flat, err := gen.NewCursor(spec)
	if err != nil {
		t.Fatal(err)
	}
	rle, err := gen.NewRLECursor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Done() {
		t.Error("flat cursor of zero-ref spec not Done")
	}
	if !rle.Done() {
		t.Error("RLE cursor of zero-ref spec not Done")
	}
	if rle.Total() != 0 || rle.Remaining() != 0 {
		t.Errorf("RLE zero-ref totals: Total=%d Remaining=%d, want 0", rle.Total(), rle.Remaining())
	}
	if _, ok := rle.Next(); ok {
		t.Error("RLE zero-ref cursor produced an access")
	}
}

// TestRLECursorNextZeroAlloc asserts steady-state RLECursor.Next
// allocates nothing.
func TestRLECursorNextZeroAlloc(t *testing.T) {
	spec, am := benchSpec()
	cur, err := NewGenerator(am).NewRLECursor(spec)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10000, func() {
		if _, ok := cur.Next(); !ok {
			cur.Reset()
		}
	})
	if allocs != 0 {
		t.Errorf("RLECursor.Next allocates %.1f objects/op, want 0", allocs)
	}
}

package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestOwnerDeterministicAcrossRings: every replica that shares a
// membership set must compute the same owner for every key, regardless
// of which member it is or the order peers were listed in.
func TestOwnerDeterministicAcrossRings(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	rings := []*Ring{
		NewRing(members[0], []string{members[1], members[2]}),
		NewRing(members[1], []string{members[2], members[0]}),
		NewRing(members[2], []string{members[0], members[1]}),
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("run|fp%d|LSM|cfg", i)
		want := rings[0].Owner(key)
		for _, r := range rings[1:] {
			if got := r.Owner(key); got != want {
				t.Fatalf("ring %s: owner(%q) = %q, want %q", r.Self(), key, got, want)
			}
		}
	}
}

// TestOwnerDistribution: rendezvous hashing must spread keys across all
// members — no member may own everything or nothing over a key set much
// larger than the fleet.
func TestOwnerDistribution(t *testing.T) {
	r := NewRing("http://a:1", []string{"http://b:1", "http://c:1"})
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range r.Members() {
		if counts[m] < keys/10 {
			t.Fatalf("member %s owns only %d of %d keys: %v", m, counts[m], keys, counts)
		}
	}
}

// TestMembershipChangeMinimalMovement: removing one member must only
// reassign the keys that member owned; every other key keeps its owner
// (the property that makes rendezvous routing safe to change live).
func TestMembershipChangeMinimalMovement(t *testing.T) {
	r := NewRing("http://a:1", []string{"http://b:1", "http://c:1"})
	const keys = 1000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("key-%d", i))
	}
	r.SetMembers([]string{"http://a:1", "http://b:1"}) // c leaves
	for i := range before {
		after := r.Owner(fmt.Sprintf("key-%d", i))
		if before[i] != "http://c:1" && after != before[i] {
			t.Fatalf("key-%d moved %s -> %s though its owner never left", i, before[i], after)
		}
		if after == "http://c:1" {
			t.Fatalf("key-%d still routed to departed member", i)
		}
	}
}

// TestSetMembersKeepsSelf: a replica never routes away its own identity,
// even if handed a membership list omitting it.
func TestSetMembersKeepsSelf(t *testing.T) {
	r := NewRing("http://a:1", []string{"http://b:1"})
	r.SetMembers([]string{"http://b:1", "http://c:1"})
	found := false
	for _, m := range r.Members() {
		if m == r.Self() {
			found = true
		}
	}
	if !found {
		t.Fatalf("self evicted from its own ring: %v", r.Members())
	}
}

// TestSingleMemberOwnsEverything: with no peers the ring degenerates to
// "self owns every key" — the single-instance path.
func TestSingleMemberOwnsEverything(t *testing.T) {
	r := NewRing("http://a:1", nil)
	for i := 0; i < 50; i++ {
		if !r.Owns(fmt.Sprintf("key-%d", i)) {
			t.Fatal("peerless ring routed a key away from self")
		}
	}
}

// TestRingConcurrentLookupsAndChanges: lookups racing SetMembers must
// stay safe and always return a current-or-recent member (run under
// -race in CI).
func TestRingConcurrentLookupsAndChanges(t *testing.T) {
	r := NewRing("http://a:1", []string{"http://b:1", "http://c:1"})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if owner := r.Owner(fmt.Sprintf("key-%d-%d", g, i)); owner == "" {
					t.Error("empty owner")
					return
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			r.SetMembers([]string{"http://a:1", "http://b:1"})
		} else {
			r.SetMembers([]string{"http://a:1", "http://b:1", "http://c:1"})
		}
	}
	close(stop)
	wg.Wait()
}

// TestClientFetchVerifiesCRC: a body whose CRC header does not match is
// rejected with ErrCorrupt, and a matching one is returned with its
// cost.
func TestClientFetchVerifiesCRC(t *testing.T) {
	body := []byte(`{"ok":true}`)
	corrupt := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		crc := Checksum(body)
		if corrupt {
			crc = "deadbeef"
		}
		w.Header().Set(HeaderCRC, crc)
		w.Header().Set(HeaderCost, "12345")
		w.Write(body)
	}))
	defer srv.Close()
	c := NewClient(time.Second, nil)

	got, cost, err := c.Fetch(context.Background(), srv.URL, "run|k|LSM|cfg")
	if err != nil || string(got) != string(body) || cost != 12345 {
		t.Fatalf("clean fetch: body=%q cost=%d err=%v", got, cost, err)
	}
	corrupt = true
	if _, _, err := c.Fetch(context.Background(), srv.URL, "run|k|LSM|cfg"); err != ErrCorrupt {
		t.Fatalf("corrupt fetch: err=%v, want ErrCorrupt", err)
	}
}

// TestClientFetchMissAndRetry: 404 is a clean ErrNotFound with no
// retry; a 500 is retried exactly once.
func TestClientFetchMissAndRetry(t *testing.T) {
	var gets int
	status := http.StatusNotFound
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets++
		w.WriteHeader(status)
	}))
	defer srv.Close()
	c := NewClient(time.Second, nil)

	if _, _, err := c.Fetch(context.Background(), srv.URL, "k"); err != ErrNotFound {
		t.Fatalf("miss: err=%v, want ErrNotFound", err)
	}
	if gets != 1 {
		t.Fatalf("clean miss was retried: %d attempts", gets)
	}
	gets, status = 0, http.StatusInternalServerError
	if _, _, err := c.Fetch(context.Background(), srv.URL, "k"); err == nil {
		t.Fatal("5xx fetch succeeded")
	}
	if gets != 2 {
		t.Fatalf("5xx fetch made %d attempts, want 2 (single retry)", gets)
	}
}

// TestClientReplicateRoundTrip: Replicate PUTs body, CRC, and cost; the
// receiver sees exactly what was sent, escaped key included.
func TestClientReplicateRoundTrip(t *testing.T) {
	body := []byte("replicated-bytes")
	key := "run|abc|LSM|cfg"
	var gotPath, gotCRC, gotCost string
	var gotBody []byte
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotCRC = r.Header.Get(HeaderCRC)
		gotCost = r.Header.Get(HeaderCost)
		b := make([]byte, r.ContentLength)
		r.Body.Read(b)
		gotBody = b
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	c := NewClient(time.Second, nil)
	if err := c.Replicate(context.Background(), srv.URL, key, body, 777); err != nil {
		t.Fatalf("replicate: %v", err)
	}
	if gotPath != "/v1/peer/"+key {
		t.Fatalf("path %q", gotPath)
	}
	if string(gotBody) != string(body) || gotCRC != Checksum(body) || gotCost != "777" {
		t.Fatalf("body=%q crc=%q cost=%q", gotBody, gotCRC, gotCost)
	}
}

// TestClientTimeoutBounded: a peer that hangs past the client timeout
// fails the fetch in bounded time instead of stalling the request path.
func TestClientTimeoutBounded(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)
	c := NewClient(50*time.Millisecond, nil)
	start := time.Now()
	_, _, err := c.Fetch(context.Background(), srv.URL, "k")
	if err == nil {
		t.Fatal("hung peer fetch succeeded")
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("timeout fetch took %v, want bounded by ~2 attempts x 50ms", e)
	}
}

// Package fleet is locsched's scale-out layer: the pieces that turn N
// independent locschedd replicas into one cache-coherent serving fleet.
//
// The core is a consistent-hash ring (rendezvous / highest-random-weight
// hashing, stdlib only) over the replica membership: every
// content-addressed request key has exactly one owner replica, agreed on
// by every member that shares the same membership list, with no
// coordination traffic. A replica that receives a request it does not
// own consults the owner first (GET /v1/peer/<key>, bounded timeout plus
// a single retry) before falling back to local recompute, and after a
// local recompute it replicates the computed bytes back to the owner
// (PUT /v1/peer/<key>) so the fleet converges on one execution per key
// instead of one per replica.
//
// Rendezvous hashing was chosen over a ketama-style virtual-node ring
// because it needs no precomputed ring state: Owner is a pure function
// of (membership, key), membership changes reassign only the keys whose
// owner actually changed, and the implementation is small enough to
// verify by inspection — properties that matter more here than the
// marginal lookup-cost difference at fleet sizes of a handful of
// replicas.
//
// Peer responses are integrity-checked end to end: the serving replica
// sends a Castagnoli CRC of the body in HeaderCRC and the fetching
// replica re-verifies it, so a corrupted peer response is rejected and
// recomputed locally, never served. All failure modes — peer down, peer
// slow, corrupt bytes, membership change mid-flight — degrade to local
// recompute; the fleet layer can cost extra work, never correctness.
package fleet

import (
	"hash/fnv"
	"io"
	"sort"
	"sync"
)

// Ring is the fleet membership and its consistent-hash key→owner map.
// Members are replica base URLs (e.g. "http://10.0.0.2:8077"); Self is
// this replica's own advertised URL and is always a member. A Ring is
// safe for concurrent use, and SetMembers may be called while lookups
// are in flight (membership changes mid-stream are a supported, chaos-
// tested transition).
type Ring struct {
	self string

	mu      sync.RWMutex
	members []string // sorted, deduplicated, always contains self
}

// NewRing builds a ring for self plus its peers. Duplicates (including
// self appearing in peers) are collapsed; the member order is
// canonicalized so every replica given the same membership set computes
// the same owners.
func NewRing(self string, peers []string) *Ring {
	r := &Ring{self: self}
	r.SetMembers(append([]string{self}, peers...))
	return r
}

// Self returns this replica's own member identity.
func (r *Ring) Self() string { return r.self }

// Members returns the current membership, sorted (a copy).
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// SetMembers replaces the membership. Self is always retained even if
// absent from the new list (a replica never routes away its own
// identity), duplicates are collapsed, and the list is sorted so every
// replica canonicalizes identically.
func (r *Ring) SetMembers(members []string) {
	seen := make(map[string]bool, len(members)+1)
	next := make([]string, 0, len(members)+1)
	for _, m := range append([]string{r.self}, members...) {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		next = append(next, m)
	}
	sort.Strings(next)
	r.mu.Lock()
	r.members = next
	r.mu.Unlock()
}

// Owner returns the member that owns key: the member with the highest
// rendezvous score. Ties (astronomically unlikely with a 64-bit hash)
// break toward the lexicographically smallest member, which the sorted
// member order provides for free. With a single member (no peers), the
// owner is always self.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	best, bestScore := r.self, uint64(0)
	for i, m := range r.members {
		s := score(m, key)
		if i == 0 || s > bestScore {
			best, bestScore = m, s
		}
	}
	return best
}

// Owns reports whether this replica owns key under the current
// membership.
func (r *Ring) Owns(key string) bool { return r.Owner(key) == r.self }

// score is the rendezvous hash of one (member, key) pair: FNV-1a over
// member‖NUL‖key. FNV is stdlib, allocation-free here, and — crucially —
// deterministic across processes, which a maphash seed would not be.
func score(member, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, member)
	h.Write([]byte{0})
	io.WriteString(h, key)
	return h.Sum64()
}

package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"locsched/internal/obs"
)

// Peer-protocol headers. The CRC travels with the bytes so a fetching
// replica can reject corruption introduced anywhere between the owner's
// cache and its own socket; the cost header carries the entry's measured
// reconstruction cost so cost-aware eviction keeps working on replicas
// that never paid that cost themselves.
const (
	// HeaderCRC is the Castagnoli CRC32 of the response body, lowercase
	// hex, set on peer GET responses and PUT requests.
	HeaderCRC = "X-Locsched-Crc"
	// HeaderCost is the entry's measured compute cost in nanoseconds,
	// decimal, set alongside HeaderCRC.
	HeaderCost = "X-Locsched-Cost-Nanos"
)

// crcTable is the Castagnoli table shared by checksum producers and
// verifiers (the same polynomial internal/store uses on disk).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the peer-protocol checksum of body: Castagnoli CRC32
// as lowercase hex.
func Checksum(body []byte) string {
	return strconv.FormatUint(uint64(crc32.Checksum(body, crcTable)), 16)
}

// ErrNotFound reports a clean peer miss: the owner answered but has no
// entry for the key. The caller recomputes locally; this is not a peer
// failure and must not feed failure counters.
var ErrNotFound = errors.New("fleet: peer has no entry")

// ErrCorrupt reports that a peer's bytes failed CRC verification. The
// bytes are discarded and the caller recomputes locally — corrupted
// peer data is never served and never retried (the peer would only
// resend the same bytes).
var ErrCorrupt = errors.New("fleet: peer response failed CRC verification")

// Client is the peer-fetch HTTP client: bounded per-attempt timeout, a
// single retry on transport-level failures, and mandatory CRC
// verification of every fetched body. The zero value is not usable;
// build with NewClient.
type Client struct {
	http    *http.Client
	timeout time.Duration
	metrics *obs.Registry
}

// NewClient builds a peer client with the given per-attempt timeout
// (<= 0 selects 2 s). transport injects a custom http.RoundTripper — the
// chaos tests' seam — and nil selects http.DefaultTransport.
func NewClient(timeout time.Duration, transport http.RoundTripper) *Client {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Client{
		http:    &http.Client{Timeout: timeout, Transport: transport},
		timeout: timeout,
	}
}

// Timeout returns the per-attempt timeout the client was built with.
func (c *Client) Timeout() time.Duration { return c.timeout }

// SetMetrics enables per-peer outcome counters on r
// (locsched_fleet_peer_fetch_total{peer,outcome} and
// locsched_fleet_peer_replicate_total{peer,outcome}). Call before
// serving traffic; nil leaves the client uninstrumented.
func (c *Client) SetMetrics(r *obs.Registry) { c.metrics = r }

// countOutcome records one per-peer operation outcome (no-op without a
// registry).
func (c *Client) countOutcome(op, peer, outcome string) {
	if c.metrics == nil {
		return
	}
	c.metrics.Counter("locsched_fleet_peer_"+op+"_total",
		"Per-peer "+op+" outcomes.",
		obs.L("peer", peer), obs.L("outcome", outcome)).Inc()
}

// fetchOutcome maps a Fetch error to its metric outcome label.
func fetchOutcome(err error) string {
	switch {
	case err == nil:
		return "hit"
	case errors.Is(err, ErrNotFound):
		return "miss"
	case errors.Is(err, ErrCorrupt):
		return "corrupt"
	}
	return "error"
}

// withTrace forwards the request context's trace id so one user request
// is correlatable across every replica it touches.
func withTrace(ctx context.Context, req *http.Request) {
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
}

// peerURL renders the peer-protocol URL for key on a member base URL.
// Keys are path-escaped; they contain '|' separators but never '/', so
// the escaped form round-trips through any proxy unambiguously.
func peerURL(base, key string) string {
	return base + "/v1/peer/" + url.PathEscape(key)
}

// Fetch asks the owner replica at base for the bytes of key. It makes at
// most two attempts (one retry) on transport failures or 5xx answers; a
// 404 is a clean miss (ErrNotFound, no retry) and a CRC mismatch is
// ErrCorrupt (no retry — the peer would resend the same bytes). On
// success it returns the verified body and the entry's recorded compute
// cost in nanoseconds.
func (c *Client) Fetch(ctx context.Context, base, key string) (body []byte, costNanos int64, err error) {
	defer func() { c.countOutcome("fetch", base, fetchOutcome(err)) }()
	for attempt := 0; attempt < 2; attempt++ {
		body, costNanos, err = c.fetchOnce(ctx, base, key)
		if err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupt) || ctx.Err() != nil {
			return body, costNanos, err
		}
	}
	return nil, 0, err
}

// fetchOnce performs one GET attempt with CRC verification.
func (c *Client) fetchOnce(ctx context.Context, base, key string) ([]byte, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL(base, key), nil)
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: building peer request: %w", err)
	}
	withTrace(ctx, req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: peer fetch from %s: %w", base, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, 0, ErrNotFound
	case resp.StatusCode != http.StatusOK:
		io.Copy(io.Discard, resp.Body)
		return nil, 0, fmt.Errorf("fleet: peer %s answered %d for %q", base, resp.StatusCode, key)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: reading peer body from %s: %w", base, err)
	}
	if resp.Header.Get(HeaderCRC) != Checksum(body) {
		return nil, 0, ErrCorrupt
	}
	cost, _ := strconv.ParseInt(resp.Header.Get(HeaderCost), 10, 64)
	if cost < 0 {
		cost = 0
	}
	return body, cost, nil
}

// Replicate writes a locally computed entry through to the owner replica
// at base (PUT with CRC and cost headers), so the next non-owner fetch
// for the key finds it where the ring routes. Best-effort with one
// retry: a failed replication only costs the fleet a future duplicate
// recompute, never correctness.
func (c *Client) Replicate(ctx context.Context, base, key string, body []byte, costNanos int64) (err error) {
	defer func() {
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		c.countOutcome("replicate", base, outcome)
	}()
	for attempt := 0; attempt < 2; attempt++ {
		err = c.replicateOnce(ctx, base, key, body, costNanos)
		if err == nil || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// replicateOnce performs one PUT attempt.
func (c *Client) replicateOnce(ctx context.Context, base, key string, body []byte, costNanos int64) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peerURL(base, key), bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("fleet: building replication request: %w", err)
	}
	withTrace(ctx, req)
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(HeaderCRC, Checksum(body))
	req.Header.Set(HeaderCost, strconv.FormatInt(costNanos, 10))
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: replicating to %s: %w", base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: owner %s rejected replication with %d", base, resp.StatusCode)
	}
	return nil
}

// Package mpsoc simulates the paper's target platform: an embedded
// multiprocessor-system-on-chip with private per-core L1 data caches and
// a fixed-latency off-chip memory (Table 2 of the paper), executing
// process address traces under a pluggable scheduling policy.
//
// This replaces the paper's Simics full-system setup: the reported
// metrics derive from L1 hit/miss behaviour times fixed latencies plus
// scheduling order, which a trace-driven cache-accurate model reproduces.
package mpsoc

import (
	"fmt"

	"locsched/internal/cache"
)

// Config holds the machine parameters. DefaultConfig reproduces the
// paper's Table 2.
type Config struct {
	Cores       int               // number of processor cores
	Cache       cache.Geometry    // per-core L1 data cache shape
	Replacement cache.Replacement // per-core replacement policy
	Indexing    cache.Indexing    // set-index hash (default modulo)
	Classify    bool              // classify misses (cold/capacity/conflict)
	HitLatency  int64             // cycles per L1 access
	MissPenalty int64             // extra cycles per off-chip access
	ClockMHz    int64             // processor clock, for cycle→seconds
	Seed        int64             // seed for randomized policies

	// RecordTimeline captures every executed segment (core, process,
	// start, end) in Result.Timeline for Gantt-style inspection.
	RecordTimeline bool

	// BusFactor models shared off-chip bus contention as an extension to
	// the paper: each miss pays MissPenalty × (1 + BusFactor × (number of
	// other busy cores at segment dispatch)). 0 disables contention.
	BusFactor float64

	// WritePolicy selects write-through (default; stores priced like
	// loads) or write-back caches. Under WriteBack, each dirty eviction
	// additionally costs WritebackPenalty cycles (0 models a perfect
	// write buffer).
	WritePolicy      cache.WritePolicy
	WritebackPenalty int64

	// FlatStreams forces the fully-materialized compiled-stream execution
	// path instead of the default strided-RLE block-coalesced one. The two
	// engines are bit-identical (enforced by differential tests); the flag
	// exists for differential testing and before/after benchmarking, and
	// for exotic traces where the RLE segments degenerate to length 1.
	FlatStreams bool

	// Machine extends the scalar parameters above with per-core speed
	// classes and an interconnect topology (see Machine). The zero value
	// is the paper's homogeneous shared-bus machine and is bit-identical
	// to the pre-Machine engines.
	Machine Machine
}

// DefaultConfig returns the paper's Table 2 parameters: 8 processors,
// 8KB 2-way per-core caches, 2-cycle cache access, 75-cycle off-chip
// access, 200 MHz. (Block size is not stated in the paper; 32B is
// typical of the era's embedded cores.)
func DefaultConfig() Config {
	return Config{
		Cores:       8,
		Cache:       cache.Geometry{Size: 8 * 1024, BlockSize: 32, Assoc: 2},
		Replacement: cache.LRU,
		Classify:    true,
		HitLatency:  2,
		MissPenalty: 75,
		ClockMHz:    200,
		Seed:        1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("mpsoc: cores %d must be positive", c.Cores)
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if c.HitLatency <= 0 {
		return fmt.Errorf("mpsoc: hit latency %d must be positive", c.HitLatency)
	}
	if c.MissPenalty < 0 {
		return fmt.Errorf("mpsoc: miss penalty %d must be non-negative", c.MissPenalty)
	}
	if c.ClockMHz <= 0 {
		return fmt.Errorf("mpsoc: clock %d MHz must be positive", c.ClockMHz)
	}
	if c.BusFactor < 0 {
		return fmt.Errorf("mpsoc: bus factor %f must be non-negative", c.BusFactor)
	}
	if c.WritebackPenalty < 0 {
		return fmt.Errorf("mpsoc: writeback penalty %d must be non-negative", c.WritebackPenalty)
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	return nil
}

// Seconds converts a cycle count to wall-clock seconds at the configured
// clock rate.
func (c Config) Seconds(cycles int64) float64 {
	return float64(cycles) / (float64(c.ClockMHz) * 1e6)
}

package mpsoc

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"locsched/internal/workload"
)

// TestParseTopology pins the accepted names (case-insensitive, empty =
// bus), the rejections, and the String round-trip.
func TestParseTopology(t *testing.T) {
	good := map[string]Topology{
		"": TopoBus, "bus": TopoBus, "Bus": TopoBus, " BUS ": TopoBus,
		"mesh": TopoMesh, "MESH": TopoMesh, "ring": TopoRing, "Ring": TopoRing,
	}
	for in, want := range good {
		got, err := ParseTopology(in)
		if err != nil || got != want {
			t.Errorf("ParseTopology(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"torus", "hypercube", "bus,mesh", "0"} {
		if _, err := ParseTopology(in); err == nil {
			t.Errorf("ParseTopology(%q) accepted", in)
		} else if !strings.Contains(err.Error(), "bus, mesh, or ring") {
			t.Errorf("ParseTopology(%q) error %q does not name the valid options", in, err)
		}
	}
	for _, topo := range []Topology{TopoBus, TopoMesh, TopoRing} {
		rt, err := ParseTopology(topo.String())
		if err != nil || rt != topo {
			t.Errorf("ParseTopology(%v.String()) = %v, %v", topo, rt, err)
		}
	}
}

// TestParseSpeedClasses pins the spec grammar: empty = uniform [1],
// whitespace tolerated, and out-of-range or malformed entries rejected.
func TestParseSpeedClasses(t *testing.T) {
	cases := []struct {
		spec string
		want []int64
	}{
		{"", []int64{1}},
		{"  ", []int64{1}},
		{"1", []int64{1}},
		{"1,4", []int64{1, 4}},
		{" 2 , 3 , 5 ", []int64{2, 3, 5}},
		{"1024", []int64{1024}},
	}
	for _, c := range cases {
		got, err := ParseSpeedClasses(c.spec)
		if err != nil || !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSpeedClasses(%q) = %v, %v; want %v", c.spec, got, err, c.want)
		}
	}
	for _, spec := range []string{"0", "-1", "1,0", "fast", "1,,4", "1025", "1.5", "9999999999999999999999"} {
		if _, err := ParseSpeedClasses(spec); err == nil {
			t.Errorf("ParseSpeedClasses(%q) accepted", spec)
		}
	}
	long := strings.Repeat("1,", MaxSpeedClasses) + "1"
	if _, err := ParseSpeedClasses(long); err == nil {
		t.Errorf("ParseSpeedClasses accepted %d classes (limit %d)", MaxSpeedClasses+1, MaxSpeedClasses)
	}
}

// TestMachineValidate pins the magnitude caps.
func TestMachineValidate(t *testing.T) {
	good := []Machine{
		{},
		{SpeedClasses: "1,4", Topology: TopoMesh, HopPenalty: 16},
		{Topology: TopoRing, HopPenalty: MaxHopPenalty},
	}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", m, err)
		}
	}
	bad := []Machine{
		{SpeedClasses: "0"},
		{SpeedClasses: "1,1025"},
		{Topology: Topology(99)},
		{HopPenalty: -1},
		{HopPenalty: MaxHopPenalty + 1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", m)
		}
	}
}

// TestMachineDistance pins the hop-distance formulas: zero everywhere on
// a bus, shorter-way-around on a ring, and Manhattan-from-(0,0) on the
// smallest enclosing square mesh.
func TestMachineDistance(t *testing.T) {
	bus := Machine{Topology: TopoBus, HopPenalty: 5}
	for c := 0; c < 8; c++ {
		if d := bus.Distance(c, 8); d != 0 {
			t.Errorf("bus Distance(%d, 8) = %d, want 0", c, d)
		}
	}
	ring := Machine{Topology: TopoRing}
	wantRing := []int64{0, 1, 2, 3, 4, 3, 2, 1}
	for c, want := range wantRing {
		if d := ring.Distance(c, 8); d != want {
			t.Errorf("ring Distance(%d, 8) = %d, want %d", c, d, want)
		}
	}
	// 8 cores → 3×3 mesh, row-major: core 5 is at (row 1, col 2) → 3 hops.
	mesh := Machine{Topology: TopoMesh}
	wantMesh := []int64{0, 1, 2, 1, 2, 3, 2, 3}
	for c, want := range wantMesh {
		if d := mesh.Distance(c, 8); d != want {
			t.Errorf("mesh Distance(%d, 8) = %d, want %d", c, d, want)
		}
	}
	// Perfect square: 4 cores → 2×2 mesh, far corner is 2 hops.
	if d := mesh.Distance(3, 4); d != 2 {
		t.Errorf("mesh Distance(3, 4) = %d, want 2", d)
	}
}

// TestMachineHomogeneous pins which machines degenerate to the paper's
// scalar model.
func TestMachineHomogeneous(t *testing.T) {
	homo := []Machine{
		{},
		{SpeedClasses: "1"},
		{SpeedClasses: "1,1,1"},
		{Topology: TopoMesh},                // zero hop cost
		{Topology: TopoBus, HopPenalty: 64}, // bus: all distances zero
		{SpeedClasses: "1", Topology: TopoRing},
	}
	for _, m := range homo {
		if !m.Homogeneous() {
			t.Errorf("Homogeneous(%+v) = false, want true", m)
		}
	}
	hetero := []Machine{
		{SpeedClasses: "2"},
		{SpeedClasses: "1,4"},
		{Topology: TopoMesh, HopPenalty: 1},
		{Topology: TopoRing, HopPenalty: 16},
		{SpeedClasses: "bogus"}, // invalid specs are not homogeneous; Validate rejects them
	}
	for _, m := range hetero {
		if m.Homogeneous() {
			t.Errorf("Homogeneous(%+v) = true, want false", m)
		}
	}
}

// TestCoreCostTables pins the per-core cost model on a concrete machine:
// classes cycle across cores, hit latency scales with the class, and the
// miss penalty grows with hop distance.
func TestCoreCostTables(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.HitLatency = 2
	cfg.MissPenalty = 75
	cfg.Machine = Machine{SpeedClasses: "1,3", Topology: TopoMesh, HopPenalty: 10}
	// 4 cores → 2×2 mesh: distances 0,1,1,2; classes cycle 1,3,1,3.
	wantHit := []int64{2, 6, 2, 6}
	wantMiss := []int64{75, 85, 85, 95}
	for c := 0; c < 4; c++ {
		if got := cfg.CoreHitLatency(c); got != wantHit[c] {
			t.Errorf("CoreHitLatency(%d) = %d, want %d", c, got, wantHit[c])
		}
		if got := cfg.CoreMissPenalty(c); got != wantMiss[c] {
			t.Errorf("CoreMissPenalty(%d) = %d, want %d", c, got, wantMiss[c])
		}
	}
	costs, err := cfg.CoreCostTable()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{77, 91, 87, 101}
	if !reflect.DeepEqual(costs, want) {
		t.Errorf("CoreCostTable() = %v, want %v", costs, want)
	}
}

// TestHomogeneousMachineEquivalence is the frozen-behaviour contract of
// the machine-model refactor: every Machine that degenerates to the
// paper's homogeneous machine — uniform speeds spelled any way, any
// topology with a zero hop cost, any hop cost on a bus — must produce
// results bit-identical (reflect.DeepEqual on the full Result) to the
// zero-value Machine, across applications, both address maps, every
// dispatcher family, both sequential engines, and the parallel engine.
func TestHomogeneousMachineEquivalence(t *testing.T) {
	variants := map[string]Machine{
		"spelled-uniform": {SpeedClasses: "1,1,1"},
		"mesh-no-hop":     {Topology: TopoMesh},
		"bus-with-hop":    {Topology: TopoBus, HopPenalty: 64},
		"ring-uniform":    {SpeedClasses: "1", Topology: TopoRing},
	}
	apps, err := workload.BuildAll(workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	for _, app := range apps {
		for amName, am := range rleDiffMaps(t, app, cfg.Cache) {
			for dName, mkDisp := range rleDiffDispatchers(t) {
				t.Run(fmt.Sprintf("%s/%s/%s", app.Name, amName, dName), func(t *testing.T) {
					base, err := Run(app.Graph, mkDisp(), am, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for vName, m := range variants {
						vcfg := cfg
						vcfg.Machine = m
						got, err := Run(app.Graph, mkDisp(), am, vcfg)
						if err != nil {
							t.Fatalf("%s: %v", vName, err)
						}
						if !reflect.DeepEqual(base, got) {
							t.Errorf("%s: diverges from zero-value Machine:\nbase: %+v\ngot:  %+v", vName, base, got)
						}
						flatCfg := vcfg
						flatCfg.FlatStreams = true
						flat, err := Run(app.Graph, mkDisp(), am, flatCfg)
						if err != nil {
							t.Fatalf("%s (flat): %v", vName, err)
						}
						if !reflect.DeepEqual(base, flat) {
							t.Errorf("%s (flat): diverges from zero-value Machine", vName)
						}
						r, err := NewRunner(app.Graph, am, vcfg)
						if err != nil {
							t.Fatalf("%s (parallel): %v", vName, err)
						}
						par, err := r.RunParallel(mkDisp(), 3)
						if err != nil {
							t.Fatalf("%s (parallel): %v", vName, err)
						}
						if !reflect.DeepEqual(base, par) {
							t.Errorf("%s (parallel): diverges from zero-value Machine", vName)
						}
					}
				})
			}
		}
	}
}

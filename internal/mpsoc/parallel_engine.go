package mpsoc

import (
	"fmt"
	"math"

	"locsched/internal/sim"
	"locsched/internal/taskgraph"
)

// This file is the parallel simulation engine: the same discrete-event
// scheduling loop as Run, with the expensive part — per-segment cache
// simulation — fanned out across a bounded worker pool. The sequential
// engine in engine.go stays in-tree as the differential oracle, exactly
// as the analysis layer keeps ComputeMatrix and LocalityScheduleRescan;
// the differential suites assert Result equality bit for bit.
//
// Why this is legal: between two consecutive scheduling events every
// running core's cache simulation is completely independent — a segment
// touches only its process's cursor and its core's cache, and its cost
// inputs (miss penalty under bus contention, quantum) are fixed at
// dispatch time. The only thing the scheduling loop needs from a
// segment is *when* it ends, and it needs that only once simulated time
// is about to advance past the earliest cycle the segment could
// possibly end at. So dispatches submit segment tasks to the pool and
// keep going; each task carries a certified lower bound on its
// completion cycle (quantum expiry returns at least the quantum,
// completion costs at least one hit per remaining access), and the loop
// joins tasks — an epoch barrier — only when the next event's timestamp
// reaches a bound. Everything the dispatcher observes (Ready, Pick,
// Preempted, SegmentDone order, wake order, offer elision) happens on
// the loop goroutine in exactly the sequential order.
//
// Determinism of the event queue is preserved by construction:
//
//   - a segment's completion lands strictly after its dispatch cycle
//     (at least one access always executes and HitLatency is positive),
//     so deferring its push never changes a wakeIdle quiet check, which
//     only asks whether another event is pending at the current cycle;
//   - joins consume the in-flight list in dispatch (FIFO) order and
//     never skip past an unjoined task, so same-cycle completions enter
//     the queue in dispatch order — the order the sequential engine
//     pushed them in — and FIFO tie-breaking pops them identically.

// segTask is one in-flight segment execution. Result fields are written
// by exactly one worker and read by the loop only after done is
// signalled; each core owns one reusable slot (a core cannot dispatch
// again until its previous segment's completion event popped).
type segTask struct {
	core    int
	id      taskgraph.ProcID
	pc      procCursor
	penalty int64
	quantum int64
	start   int64 // dispatch cycle
	bound   int64 // certified lower bound on the completion cycle

	cycles    int64
	completed bool
	done      chan struct{}
}

// segWorker drains segment tasks. Each worker owns its fast-forward
// scratch, so concurrent runSegmentRLE calls share no mutable state.
func (r *Runner) segWorker(tasks <-chan *segTask) {
	blocks := make([]int64, len(r.blockScratch))
	writes := make([]bool, len(r.writeScratch))
	wbPenalty := r.cfg.WritebackPenalty
	for t := range tasks {
		// The hit latency is the dispatched core's speed-scaled one;
		// coreHitLat is built at construction and read-only here.
		hitLat := r.coreHitLat[t.core]
		if t.pc.flat != nil {
			t.cycles, t.completed = runSegment(t.pc.flat, r.caches[t.core], hitLat, t.penalty, wbPenalty, t.quantum)
		} else {
			t.cycles, t.completed = runSegmentRLE(t.pc.rle, r.caches[t.core], hitLat, t.penalty, wbPenalty, t.quantum, blocks, writes)
		}
		t.done <- struct{}{}
	}
}

// segBound returns a certified lower bound on the cycles a dispatched
// segment will consume: a preempted segment returns no earlier than its
// quantum (the engines check cycles >= quantum before every access), and
// a completing one pays at least a hit per remaining access. The bound
// is what lets the loop keep popping events — and dispatching more
// segments — while earlier segments are still simulating.
func segBound(pc procCursor, hitLat, quantum int64) int64 {
	min := pc.remaining() * hitLat
	if quantum > 0 && quantum < min {
		min = quantum
	}
	if min < hitLat {
		min = hitLat
	}
	return min
}

// RunParallel simulates the EPG under the dispatcher like Run, but
// executes segment simulations on a pool of workers goroutines. The
// Result is bit-identical to Run's for every dispatcher honouring the
// Dispatcher contract and every worker count (enforced by the
// differential suites); workers <= 0 delegates to the sequential
// engine. Like Run, it must not be called concurrently on one Runner.
func (r *Runner) RunParallel(d Dispatcher, workers int) (*Result, error) {
	if workers <= 0 {
		return r.Run(d)
	}
	g, cfg := r.g, r.cfg
	r.resetForRun()

	if workers > cfg.Cores {
		workers = cfg.Cores
	}
	tasks := make(chan *segTask, cfg.Cores)
	for w := 0; w < workers; w++ {
		go r.segWorker(tasks)
	}
	defer close(tasks)

	// slots is the per-core task arena; inFlight is the dispatch-order
	// FIFO of submitted-but-unjoined tasks. Every submitted task is
	// joined before return (the deferred drain covers error paths), so
	// no worker can touch runner state after RunParallel returns.
	slots := make([]segTask, cfg.Cores)
	for i := range slots {
		slots[i].core = i
		slots[i].done = make(chan struct{}, 1)
	}
	inFlight := make([]*segTask, 0, cfg.Cores)
	defer func() {
		for _, t := range inFlight {
			<-t.done
		}
	}()
	// running guards against contract-violating dispatchers: in the
	// sequential engine a re-picked in-flight process merely corrupts
	// its own result, here it would race on the cursor.
	running := make(map[taskgraph.ProcID]bool, cfg.Cores)

	avail := 0
	pendingPreds := make(map[taskgraph.ProcID]int, g.Len())
	for _, id := range g.ProcIDs() {
		pendingPreds[id] = len(g.Preds(id))
	}
	for _, id := range g.Roots() {
		d.Ready(id)
		avail++
	}
	coreAgnostic := false
	if ca, ok := d.(CoreAgnostic); ok {
		coreAgnostic = ca.CoreAgnostic()
	}
	observer, _ := d.(SegmentObserver)
	hinter, _ := d.(AffinityHinter)
	lastCore := make(map[taskgraph.ProcID]int, g.Len())

	res := &Result{
		Policy:     d.Name(),
		PerCore:    make([]CoreStats, cfg.Cores),
		Completion: make(map[taskgraph.ProcID]int64, g.Len()),
	}

	events := sim.NewQueue[event]()
	for c := 0; c < cfg.Cores; c++ {
		events.Push(0, event{kind: evFree, core: c})
	}
	idle := make([]bool, cfg.Cores)
	idleCount := 0
	busyCores := 0
	remaining := g.Len()
	var makespan int64

	// wakeIdle is the sequential engine's wake/elision logic verbatim;
	// see Run for the quiet-timestamp reasoning. Unjoined tasks cannot
	// perturb the quiet check: their completions land strictly after
	// every cycle at which events still pend.
	wake := func(now int64, c int) {
		idle[c] = false
		idleCount--
		events.Push(now, event{kind: evFree, core: c})
	}
	wakeIdle := func(now int64) {
		if idleCount == 0 {
			return
		}
		quiet := true
		if t, _, ok := events.Peek(); ok && t == now {
			quiet = false
		}
		if quiet && avail <= 0 {
			return
		}
		budget := idleCount
		if quiet && coreAgnostic && avail < budget {
			budget = avail
		}
		if hinter != nil && budget > 0 {
			hinter.AffinityHints(now, func(c int) bool {
				if c >= 0 && c < len(idle) && idle[c] {
					wake(now, c)
					budget--
				}
				return budget > 0 && idleCount > 0
			})
		}
		for c := range idle {
			if budget == 0 {
				break
			}
			if idle[c] {
				wake(now, c)
				budget--
			}
		}
	}

	// join waits for the first k in-flight tasks in dispatch order,
	// applies their accounting, and pushes their completion events —
	// dispatch order in, dispatch order pushed, so same-cycle ties pop
	// exactly as if each push had happened at its dispatch.
	join := func(k int) {
		for _, t := range inFlight[:k] {
			<-t.done
			st := &res.PerCore[t.core]
			st.BusyCycles += t.cycles
			st.Segments++
			if cfg.RecordTimeline {
				res.Timeline = append(res.Timeline, Segment{
					Core: t.core, Proc: t.id, Start: t.start, End: t.start + t.cycles, Completed: t.completed,
				})
			}
			delete(running, t.id)
			events.Push(t.start+t.cycles, event{kind: evDone, core: t.core, id: t.id, completed: t.completed})
		}
		inFlight = inFlight[:copy(inFlight, inFlight[k:])]
	}
	// settle is the epoch barrier: before simulated time may advance to
	// the next queued event, every in-flight segment that could complete
	// at or before it must have entered the queue. Joins are FIFO
	// prefixes — a later task with an expired bound drags every earlier
	// unjoined task with it, preserving push order.
	settle := func() {
		for len(inFlight) > 0 {
			tnext := int64(math.MaxInt64)
			if t, _, ok := events.Peek(); ok {
				tnext = t
			}
			k := 0
			for i, t := range inFlight {
				if t.bound <= tnext {
					k = i + 1
				}
			}
			if k == 0 {
				return
			}
			join(k)
		}
	}

	for remaining > 0 {
		settle()
		now, ev, ok := events.Pop()
		if !ok {
			return nil, fmt.Errorf("mpsoc: deadlock under policy %s: %d processes never dispatched", d.Name(), remaining)
		}
		switch ev.kind {
		case evDone:
			busyCores--
			if observer != nil {
				observer.SegmentDone(ev.id, ev.core, now, ev.completed)
			}
			if ev.completed {
				res.PerCore[ev.core].Procs++
				res.Completion[ev.id] = now
				if now > makespan {
					makespan = now
				}
				remaining--
				for _, succ := range g.Succs(ev.id) {
					pendingPreds[succ]--
					if pendingPreds[succ] == 0 {
						d.Ready(succ)
						avail++
					}
				}
			} else {
				res.Preemptions++
				d.Preempted(ev.id)
				avail++
			}
			wakeIdle(now)
			if remaining > 0 {
				events.Push(now, event{kind: evFree, core: ev.core})
			}

		case evFree:
			id, quantum, picked := d.Pick(ev.core, now)
			if !picked {
				idle[ev.core] = true
				idleCount++
				continue
			}
			avail--
			if prev, ran := lastCore[id]; ran {
				if prev == ev.core {
					res.AffineResumes++
				} else {
					res.Migrations++
				}
			}
			lastCore[id] = ev.core
			pc, exists := r.cursors[id]
			if !exists {
				return nil, fmt.Errorf("mpsoc: policy %s picked unknown process %v", d.Name(), id)
			}
			if running[id] {
				return nil, fmt.Errorf("mpsoc: policy %s picked in-flight process %v", d.Name(), id)
			}
			if pc.done() {
				return nil, fmt.Errorf("mpsoc: policy %s re-picked completed process %v", d.Name(), id)
			}
			// Mirror Run's dispatch arithmetic on the per-core tables; the
			// lookahead bound must use the dispatched core's scaled hit
			// latency so a slow core's segments are bounded exactly as the
			// sequential engine will cost them.
			penalty := r.coreMissBase[ev.core]
			if cfg.BusFactor > 0 && busyCores > 0 {
				penalty = int64(float64(penalty) * (1 + cfg.BusFactor*float64(busyCores)))
			}
			busyCores++
			t := &slots[ev.core]
			t.id, t.pc, t.penalty, t.quantum = id, pc, penalty, quantum
			t.start = now
			t.bound = now + segBound(pc, r.coreHitLat[ev.core], quantum)
			running[id] = true
			inFlight = append(inFlight, t)
			tasks <- t
		}
	}

	res.Cycles = makespan
	res.Seconds = cfg.Seconds(makespan)
	for i := range r.caches {
		res.PerCore[i].Cache = r.caches[i].Stats()
		res.Total.Add(res.PerCore[i].Cache)
		res.IdleCycles += makespan - res.PerCore[i].BusyCycles
	}
	return res, nil
}

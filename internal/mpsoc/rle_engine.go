package mpsoc

import (
	"locsched/internal/cache"
	"locsched/internal/trace"
)

// runSegmentRLE executes the cursor on the cache until completion or
// quantum expiry, advancing run-by-run over the strided RLE encoding
// instead of access-by-access over a flat stream. It is bit-identical to
// runSegment: same cycles, same preemption point, same cache state and
// stats (the differential tests in this package and in internal/trace
// enforce this).
//
// The coalescing observation: within an RLE segment every reference
// advances by a constant per-iteration delta, so the blocks an iteration
// touches stay fixed until some reference crosses a block boundary. One
// iteration of such a span is simulated per access; if afterwards every
// block of the group is resident, the remaining iterations of the span
// are provably all-hits (hits evict nothing, so residency is inductively
// preserved) and are applied in O(refs) by cache.TryAccessHitIters —
// per-access work is paid only at block boundaries. Quantum expiry can
// split a run mid-flight: fast-forwarding is capped to iterations whose
// every access still passes the flat path's pre-access cycles<quantum
// check, and the boundary iteration runs per access so the preemption
// point lands exactly where the flat engine puts it.
//
// blockScratch and writeScratch are caller-owned scratch sized to at
// least the stream's reference count: the sequential engine passes the
// Runner's shared buffers, the parallel engine passes per-worker ones so
// concurrent segment executions never share mutable state.
func runSegmentRLE(cur *trace.RLECursor, c *cache.Cache, hitLat, missPenalty, wbPenalty, quantum int64, blockScratch []int64, writeScratch []bool) (cycles int64, completed bool) {
	compute := cur.Spec().ComputePerIter
	s := cur.Stream()
	nrefs := s.NRefs()
	flags := s.Flags()
	missCost := hitLat + missPenalty
	bs := c.Geometry().BlockSize
	nsegs := s.NumSegs()
	// Cost of one fully-hitting iteration, for quantum capping.
	iterCost := compute + int64(nrefs)*hitLat

	blocks := blockScratch[:nrefs]
	writes := writeScratch[:nrefs]
	for j := 0; j < nrefs; j++ {
		writes[j] = flags[j]&trace.FlagWrite != 0
	}

	seg, iter, ref := cur.Pos()
	for seg < nsegs {
		starts, deltas, count := s.Seg(seg)
		for iter < count {
			// Simulate the current iteration per access. ref is nonzero only
			// when resuming a process preempted mid-iteration (possibly on a
			// different core).
			for ; ref < nrefs; ref++ {
				if quantum > 0 && cycles >= quantum {
					cur.Seek(seg, iter, ref)
					return cycles, false
				}
				f := flags[ref]
				if f&trace.FlagNewIter != 0 {
					cycles += compute
				}
				class, wroteBack := c.AccessRW(starts[ref]+iter*deltas[ref], f&trace.FlagWrite != 0)
				if class == cache.Hit {
					cycles += hitLat
				} else {
					cycles += missCost
				}
				if wroteBack {
					cycles += wbPenalty
				}
			}
			ref = 0
			iter++
			if iter >= count {
				break
			}

			// Span: how many further iterations keep every reference inside
			// the block it touched in the iteration just simulated?
			span := count - iter
			for j := 0; j < nrefs && span > 0; j++ {
				d := deltas[j]
				if d == 0 {
					continue
				}
				a := starts[j] + (iter-1)*d
				var left int64
				if d > 0 {
					left = (bs - 1 - a%bs) / d
				} else {
					left = (a % bs) / -d
				}
				if left < span {
					span = left
				}
			}
			if span <= 0 {
				continue
			}
			if quantum > 0 {
				// Largest k whose k-th iteration's last access still passes
				// the pre-access check assuming all hits: cycles + k·iterCost
				// − hitLat < quantum.
				kq := (quantum - cycles + hitLat - 1) / iterCost
				if kq < span {
					span = kq
				}
				if span <= 0 {
					continue
				}
			}
			if nrefs == 1 {
				// Single-reference segment: the run is same-block with the
				// access just simulated, which is also the cache's most
				// recent access, so AccessRun resolves it in O(1) with a
				// guaranteed-hit prefix — no residency probe needed.
				c.AccessRun(starts[0]+iter*deltas[0], span, writes[0])
				cycles += span * iterCost
				iter += span
				continue
			}
			for j := 0; j < nrefs; j++ {
				blocks[j] = (starts[j] + iter*deltas[j]) / bs
			}
			if c.TryAccessHitIters(blocks, writes, span) {
				cycles += span * iterCost
				iter += span
			}
			// Not all resident (an intra-group set conflict is thrashing):
			// fall through and keep simulating per access; the span check
			// runs again after the next iteration.
		}
		seg++
		iter = 0
	}
	cur.Seek(seg, 0, 0)
	return cycles, true
}

package mpsoc

import (
	"fmt"
	"reflect"
	"testing"

	"locsched/internal/layout"
	"locsched/internal/sched"
	"locsched/internal/workload"
)

// TestARRZeroStrengthMatchesRRS is the ARR family's anchor criterion:
// at affinity strength (window) 0 the dispatcher must be bit-identical
// to RRS — same makespan, per-core busy cycles and cache stats,
// completion cycles, preemption and affinity counters — across every
// Table 1 application, both address maps, all machine variants, and
// both execution engines. Only the policy name may differ.
func TestARRZeroStrengthMatchesRRS(t *testing.T) {
	apps, err := workload.BuildAll(workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for cfgName, cfg := range rleDiffConfigs() {
		for _, engine := range []string{"rle", "flat"} {
			cfg := cfg
			cfg.FlatStreams = engine == "flat"
			for _, app := range apps {
				for amName, am := range rleDiffMaps(t, app, cfg.Cache) {
					t.Run(fmt.Sprintf("%s/%s/%s/%s", cfgName, engine, app.Name, amName), func(t *testing.T) {
						const quantum = 193
						rrs, err := Run(app.Graph, sched.MustRoundRobin(quantum), am, cfg)
						if err != nil {
							t.Fatalf("RRS: %v", err)
						}
						// QBatch and Decay must be inert at window 0: batching
						// only applies to warm picks, which need a window.
						arr, err := Run(app.Graph, sched.MustAffinityRR(sched.AffinityConfig{
							Quantum: quantum, Window: 0, QBatch: 8, Decay: 999,
						}), am, cfg)
						if err != nil {
							t.Fatalf("ARR: %v", err)
						}
						if arr.Policy != "ARR" || rrs.Policy != "RRS" {
							t.Fatalf("policy names: %q / %q", arr.Policy, rrs.Policy)
						}
						arr.Policy = rrs.Policy
						if !reflect.DeepEqual(rrs, arr) {
							t.Errorf("ARR(window=0) diverges from RRS:\nRRS: %+v\nARR: %+v", rrs, arr)
						}
					})
				}
			}
		}
	}
}

// TestARRWarmResumes: with a positive window ARR must convert resumes
// that RRS scatters across cores into same-core (affine) resumes, and
// its makespan must not regress — the policy's reason to exist, held as
// an invariant on the full concurrent mix.
func TestARRWarmResumes(t *testing.T) {
	apps, err := workload.BuildAll(workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	epg, arrays, err := workload.Combine(apps...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	base, err := layout.Pack(cfg.Cache.BlockSize, arrays...)
	if err != nil {
		t.Fatal(err)
	}
	const quantum = 2048
	rrs, err := Run(epg, sched.MustRoundRobin(quantum), base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := Run(epg, sched.MustAffinityRR(sched.AffinityConfig{
		Quantum: quantum, Window: 16,
	}), base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rrs.Preemptions == 0 {
		t.Fatal("mix produced no preemptions; the comparison is vacuous")
	}
	rrsWarm := float64(rrs.AffineResumes) / float64(rrs.AffineResumes+rrs.Migrations)
	arrWarm := float64(arr.AffineResumes) / float64(arr.AffineResumes+arr.Migrations)
	if arrWarm <= rrsWarm {
		t.Errorf("ARR warm-resume share %.2f not above RRS %.2f", arrWarm, rrsWarm)
	}
	if arr.Cycles > rrs.Cycles {
		t.Errorf("ARR makespan %d regressed past RRS %d", arr.Cycles, rrs.Cycles)
	}
}

// TestAffinityCountersRunToCompletion: policies that never preempt must
// report zero resumed segments of either kind.
func TestAffinityCountersRunToCompletion(t *testing.T) {
	app, err := workload.Build("MxM", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	base, err := layout.Pack(cfg.Cache.BlockSize, app.Arrays...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(app.Graph, sched.NewRandom(7), base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AffineResumes != 0 || res.Migrations != 0 {
		t.Errorf("RS reported %d affine resumes, %d migrations; want 0/0",
			res.AffineResumes, res.Migrations)
	}
}

package mpsoc

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"locsched/internal/layout"
	"locsched/internal/sched"
	"locsched/internal/taskgraph"
	"locsched/internal/workload"
)

// parallelWorkerCounts are the pool sizes every cell is checked under:
// 1 exercises the asynchronous dispatch/join machinery with no real
// concurrency, 4 is the CI multicore shape, NumCPU is whatever this
// host has (which may be 1 — the count still differs in queue depth).
func parallelWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// TestParallelEngineMatchesSequential: for every Table 1 application
// under both address maps, every machine variant (including a
// timeline-recording one: segment order must match, not just totals),
// and every dispatcher — run-to-completion, mid-iteration preemptive,
// and the full ARR affinity machinery — the parallel engine produces
// results bit-identical to the sequential oracle at every worker count.
func TestParallelEngineMatchesSequential(t *testing.T) {
	apps, err := workload.BuildAll(workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := rleDiffConfigs()
	tl := DefaultConfig()
	tl.RecordTimeline = true
	cfgs["Timeline"] = tl
	for cfgName, cfg := range cfgs {
		for _, app := range apps {
			for amName, am := range rleDiffMaps(t, app, cfg.Cache) {
				for dName, mkDisp := range rleDiffDispatchers(t) {
					t.Run(fmt.Sprintf("%s/%s/%s/%s", cfgName, app.Name, amName, dName), func(t *testing.T) {
						r, err := NewRunner(app.Graph, am, cfg)
						if err != nil {
							t.Fatal(err)
						}
						seq, err := r.Run(mkDisp())
						if err != nil {
							t.Fatalf("sequential engine: %v", err)
						}
						for _, w := range parallelWorkerCounts() {
							par, err := r.RunParallel(mkDisp(), w)
							if err != nil {
								t.Fatalf("parallel engine (workers=%d): %v", w, err)
							}
							if !reflect.DeepEqual(seq, par) {
								t.Errorf("workers=%d: results diverge:\nseq: %+v\npar: %+v", w, seq, par)
							}
						}
					})
				}
			}
		}
	}
}

// TestParallelEngineFlatStreams: the parallel engine's flat-cursor arm
// (runSegment on worker goroutines) is compared against the sequential
// flat engine — the RLE differential suite already ties flat to RLE, so
// this closes the square.
func TestParallelEngineFlatStreams(t *testing.T) {
	app, err := workload.Build("Radar", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FlatStreams = true
	base, err := layout.Pack(cfg.Cache.BlockSize, app.Arrays...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(app.Graph, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := r.Run(sched.MustRoundRobin(193))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parallelWorkerCounts() {
		par, err := r.RunParallel(sched.MustRoundRobin(193), w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d: results diverge:\nseq: %+v\npar: %+v", w, seq, par)
		}
	}
}

// TestParallelEngineRunnerReuse: alternating sequential and parallel
// runs on one Runner (the repeated-cell path through the runner pool)
// stays bit-identical — the reset machinery is shared and the parallel
// engine must leave no worker writes behind after it returns.
func TestParallelEngineRunnerReuse(t *testing.T) {
	app, err := workload.Build("Track", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	base, err := layout.Pack(cfg.Cache.BlockSize, app.Arrays...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(app.Graph, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first *Result
	for i := 0; i < 4; i++ {
		var res *Result
		if i%2 == 0 {
			res, err = r.RunParallel(sched.MustRoundRobin(193), 2)
		} else {
			res, err = r.Run(sched.MustRoundRobin(193))
		}
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if first == nil {
			first = res
		} else if !reflect.DeepEqual(first, res) {
			t.Errorf("run %d diverges from run 0:\nfirst: %+v\nthis:  %+v", i, first, res)
		}
	}
}

// TestParallelEngineWorkerClamp: worker counts beyond the core count are
// clamped (a segment per busy core is the maximum possible concurrency)
// and workers <= 0 is the sequential oracle itself.
func TestParallelEngineWorkerClamp(t *testing.T) {
	app, err := workload.Build("Radar", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	base, err := layout.Pack(cfg.Cache.BlockSize, app.Arrays...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(app.Graph, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := r.RunParallel(sched.NewRandom(7), 0)
	if err != nil {
		t.Fatal(err)
	}
	over, err := r.RunParallel(sched.NewRandom(7), 10*cfg.Cores)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, over) {
		t.Errorf("oversized pool diverges:\nseq:  %+v\nover: %+v", seq, over)
	}
}

// stuckDispatcher violates the Dispatcher contract by offering the same
// process to every core: the parallel engine must refuse (the process
// is in flight) instead of racing two workers on one cursor.
type stuckDispatcher struct{ id taskgraph.ProcID }

func (s *stuckDispatcher) Name() string                  { return "stuck" }
func (s *stuckDispatcher) Ready(id taskgraph.ProcID)     { s.id = id }
func (s *stuckDispatcher) Preempted(id taskgraph.ProcID) {}
func (s *stuckDispatcher) Pick(core int, now int64) (taskgraph.ProcID, int64, bool) {
	return s.id, 0, true
}

func TestParallelEngineRejectsInFlightPick(t *testing.T) {
	app, err := workload.Build("Radar", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	base, err := layout.Pack(cfg.Cache.BlockSize, app.Arrays...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(app.Graph, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.RunParallel(&stuckDispatcher{}, 2)
	if err == nil || !strings.Contains(err.Error(), "in-flight") {
		t.Fatalf("want in-flight pick error, got %v", err)
	}
}

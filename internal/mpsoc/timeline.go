package mpsoc

import (
	"fmt"
	"sort"
	"strings"
)

// FormatTimeline renders the recorded execution segments as a per-core
// text Gantt chart of the given width (columns). Each segment prints the
// process's task/index compressed into its time span; '.' marks idle
// time. Requires Config.RecordTimeline.
func (r *Result) FormatTimeline(width int) string {
	if len(r.Timeline) == 0 {
		return "(no timeline recorded; set Config.RecordTimeline)\n"
	}
	if width < 20 {
		width = 20
	}
	perCore := make(map[int][]Segment)
	maxCore := 0
	for _, s := range r.Timeline {
		perCore[s.Core] = append(perCore[s.Core], s)
		if s.Core > maxCore {
			maxCore = s.Core
		}
	}
	span := r.Cycles
	if span == 0 {
		span = 1
	}
	col := func(t int64) int {
		c := int(t * int64(width) / span)
		if c >= width {
			c = width - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline (%d cycles, %d columns):\n", r.Cycles, width)
	for core := 0; core <= maxCore; core++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		segs := perCore[core]
		sort.Slice(segs, func(i, j int) bool { return segs[i].Start < segs[j].Start })
		for _, s := range segs {
			label := fmt.Sprintf("%d.%d", s.Proc.Task, s.Proc.Idx)
			lo, hi := col(s.Start), col(s.End)
			for i := lo; i <= hi && i < width; i++ {
				k := i - lo
				if k < len(label) {
					row[i] = label[k]
				} else {
					row[i] = '='
				}
			}
		}
		fmt.Fprintf(&b, "core %d |%s|\n", core, row)
	}
	return b.String()
}

package mpsoc

import (
	"fmt"
	"strconv"
	"strings"
)

// This file generalizes the paper's machine — homogeneous cores over a
// shared bus with one flat miss penalty (Table 2) — into a heterogeneous,
// topology-aware model: per-core speed classes (big.LITTLE-style cycle
// multipliers) and an on-chip interconnect whose core→memory-controller
// hop distance adds a per-hop term to the miss penalty. The homogeneous
// machine is the zero value of Machine, not a separate code path: a
// uniform-speed, zero-distance Machine is bit-identical to the scalar
// (HitLatency, MissPenalty) model the engines always had, which the
// differential suites and the fig6/fig7 goldens pin.
//
// The cost model, per access on core c:
//
//	hit:  HitLatency × speed(c)
//	miss: HitLatency × speed(c) + MissPenalty + HopPenalty × dist(c)
//
// speed(c) scales the core's cache-access cycle cost (a class-k core
// spends k cycles where a class-1 core spends one); per-iteration
// compute cycles are a property of the process, not the core, and stay
// unscaled. The hop term models NoC traversal to the memory controller;
// under bus contention (Config.BusFactor) the whole off-chip penalty —
// flat term plus hop term — is scaled, since both ride the interconnect.

// Topology names the on-chip interconnect shape, which determines each
// core's hop distance to the memory controller.
type Topology int

// The supported interconnect shapes.
const (
	// TopoBus is the paper's shared bus: every core is zero hops from
	// memory, so HopPenalty never contributes.
	TopoBus Topology = iota
	// TopoMesh arranges cores row-major on the smallest square grid that
	// holds them, with the memory controller at corner (0,0); distance is
	// the Manhattan hop count.
	TopoMesh
	// TopoRing arranges cores on a ring with the memory controller at
	// position 0; distance is the shorter way around.
	TopoRing
)

// String returns the topology's canonical lowercase name.
func (t Topology) String() string {
	switch t {
	case TopoBus:
		return "bus"
	case TopoMesh:
		return "mesh"
	case TopoRing:
		return "ring"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// ParseTopology resolves a case-insensitive topology name. The empty
// string is the bus (the zero value), so omitted knobs keep the paper's
// machine.
func ParseTopology(s string) (Topology, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "bus":
		return TopoBus, nil
	case "mesh":
		return TopoMesh, nil
	case "ring":
		return TopoRing, nil
	}
	return TopoBus, fmt.Errorf("mpsoc: unknown topology %q (want bus, mesh, or ring)", s)
}

// Magnitude caps on the heterogeneity knobs. They bound what a single
// serving request can ask for (the daemon forwards request overrides into
// Machine.Validate), so a hostile speed-class list or hop penalty cannot
// overflow the cycle arithmetic or allocate absurd per-core tables.
const (
	// MaxSpeedClasses bounds the number of entries in a speed-class spec.
	MaxSpeedClasses = 4096
	// MaxSpeedClass bounds each cycle-scale multiplier.
	MaxSpeedClass = 1024
	// MaxHopPenalty bounds the per-hop miss-penalty term, in cycles.
	MaxHopPenalty = 1 << 20
)

// Machine is the heterogeneity/topology extension of the scalar machine
// parameters in Config. The zero value — no speed classes, bus topology,
// zero hop penalty — is exactly the paper's homogeneous machine, and is
// guaranteed Result-equal to the pre-Machine engines by the differential
// suites. Machine is comparable (SpeedClasses is the canonical string
// spec, not a slice), so Config remains usable as a cache key.
type Machine struct {
	// SpeedClasses is the per-core cycle-scale multiplier spec: a
	// comma-separated list of positive integers, assigned to cores by
	// cycling (core c gets class[c mod len]). "1,4" on 8 cores is a
	// big.LITTLE mix of four fast and four 4×-slower cores. Empty means
	// uniform speed 1.
	SpeedClasses string
	// Topology selects the interconnect shape feeding each core's hop
	// distance to the memory controller.
	Topology Topology
	// HopPenalty is the extra miss cost per hop, in cycles: a miss on
	// core c pays MissPenalty + HopPenalty×dist(c). Zero (or TopoBus,
	// where every distance is zero) disables the term.
	HopPenalty int64
}

// ParseSpeedClasses parses a speed-class spec into its multiplier list.
// The empty spec is uniform speed: it returns [1]. Entries must be in
// [1, MaxSpeedClass] and at most MaxSpeedClasses long.
func ParseSpeedClasses(spec string) ([]int64, error) {
	if strings.TrimSpace(spec) == "" {
		return []int64{1}, nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) > MaxSpeedClasses {
		return nil, fmt.Errorf("mpsoc: %d speed classes exceed the limit %d", len(parts), MaxSpeedClasses)
	}
	out := make([]int64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mpsoc: bad speed class %q (want a positive integer)", part)
		}
		if v < 1 || v > MaxSpeedClass {
			return nil, fmt.Errorf("mpsoc: speed class %d out of range [1, %d]", v, MaxSpeedClass)
		}
		out = append(out, v)
	}
	return out, nil
}

// Validate checks the machine extension's knobs against the magnitude
// caps.
func (m Machine) Validate() error {
	if _, err := ParseSpeedClasses(m.SpeedClasses); err != nil {
		return err
	}
	switch m.Topology {
	case TopoBus, TopoMesh, TopoRing:
	default:
		return fmt.Errorf("mpsoc: unknown topology %v", m.Topology)
	}
	if m.HopPenalty < 0 || m.HopPenalty > MaxHopPenalty {
		return fmt.Errorf("mpsoc: hop penalty %d out of range [0, %d]", m.HopPenalty, MaxHopPenalty)
	}
	return nil
}

// Homogeneous reports whether the machine degenerates to the paper's
// scalar model: every core at speed 1 and no effective hop term. An
// invalid spec reports false (Validate is the place that rejects it).
func (m Machine) Homogeneous() bool {
	classes, err := ParseSpeedClasses(m.SpeedClasses)
	if err != nil {
		return false
	}
	for _, v := range classes {
		if v != 1 {
			return false
		}
	}
	return m.HopPenalty == 0 || m.Topology == TopoBus
}

// meshSide returns the side of the smallest square mesh holding the
// cores.
func meshSide(cores int) int64 {
	side := int64(1)
	for side*side < int64(cores) {
		side++
	}
	return side
}

// Distance returns core's hop count to the memory controller under the
// machine's topology, for a machine of the given core count.
func (m Machine) Distance(core, cores int) int64 {
	switch m.Topology {
	case TopoMesh:
		side := meshSide(cores)
		return int64(core)%side + int64(core)/side
	case TopoRing:
		d := int64(core)
		if other := int64(cores) - d; other < d {
			return other
		}
		return d
	}
	return 0
}

// coreCostTables builds the per-core effective hit latency and base miss
// penalty of the cost model: hitLat[c] = HitLatency×speed(c) and
// missBase[c] = MissPenalty + HopPenalty×dist(c). Bus-contention scaling
// (BusFactor) is applied on top of missBase at dispatch time, exactly as
// it was applied to the flat MissPenalty before.
func (c Config) coreCostTables() (hitLat, missBase []int64, err error) {
	classes, err := ParseSpeedClasses(c.Machine.SpeedClasses)
	if err != nil {
		return nil, nil, err
	}
	hitLat = make([]int64, c.Cores)
	missBase = make([]int64, c.Cores)
	for i := 0; i < c.Cores; i++ {
		hitLat[i] = c.HitLatency * classes[i%len(classes)]
		missBase[i] = c.MissPenalty + c.Machine.HopPenalty*c.Machine.Distance(i, c.Cores)
	}
	return hitLat, missBase, nil
}

// CoreHitLatency returns core's effective per-access hit latency:
// HitLatency scaled by the core's speed class.
func (c Config) CoreHitLatency(core int) int64 {
	classes, err := ParseSpeedClasses(c.Machine.SpeedClasses)
	if err != nil {
		return c.HitLatency
	}
	return c.HitLatency * classes[core%len(classes)]
}

// CoreMissPenalty returns core's base off-chip penalty:
// MissPenalty + HopPenalty×dist(core), before any bus-contention scaling.
func (c Config) CoreMissPenalty(core int) int64 {
	return c.MissPenalty + c.Machine.HopPenalty*c.Machine.Distance(core, c.Cores)
}

// CoreCostTable returns a per-core placement-ranking cost — the core's
// effective hit latency plus its base miss penalty. Lower is better
// (faster and/or nearer to memory); a homogeneous machine ranks every
// core equal. The scheduling layer's distance hooks (LS seed placement,
// ARR wake ordering) are built from this table.
func (c Config) CoreCostTable() ([]int64, error) {
	hitLat, missBase, err := c.coreCostTables()
	if err != nil {
		return nil, err
	}
	costs := make([]int64, c.Cores)
	for i := range costs {
		costs[i] = hitLat[i] + missBase[i]
	}
	return costs, nil
}

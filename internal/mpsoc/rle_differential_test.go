package mpsoc

import (
	"fmt"
	"reflect"
	"testing"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/prog"
	"locsched/internal/sched"
	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
	"locsched/internal/workload"
)

// rleDiffMaps returns the two layouts every app is checked under: the
// packed base layout and the LSM-derived relayout (falling back to an
// explicit alternating-bank relayout when the mapping phase moves
// nothing, so the interleaved address formula is always exercised).
func rleDiffMaps(t *testing.T, app *workload.App, geom cache.Geometry) map[string]layout.AddressMap {
	t.Helper()
	base, err := layout.Pack(geom.BlockSize, app.Arrays...)
	if err != nil {
		t.Fatalf("%s: Pack: %v", app.Name, err)
	}
	m, err := sharing.ComputeMatrix(app.Graph)
	if err != nil {
		t.Fatalf("%s: ComputeMatrix: %v", app.Name, err)
	}
	_, mapping, err := sched.NewLSM(app.Graph, m, nil, 8, base, geom, nil)
	if err != nil {
		t.Fatalf("%s: NewLSM: %v", app.Name, err)
	}
	rl := mapping.Layout
	if len(mapping.Banks) == 0 {
		banks := make(map[*prog.Array]int64, len(app.Arrays))
		for i, arr := range app.Arrays {
			banks[arr] = int64(i%2) * (geom.PageSize() / 2)
		}
		rl, err = layout.ApplyRelayout(base, geom, banks)
		if err != nil {
			t.Fatalf("%s: ApplyRelayout: %v", app.Name, err)
		}
	}
	return map[string]layout.AddressMap{"Packed": base, "Relayouted": rl}
}

// rleDiffConfigs returns the machine variants the engines are compared
// under: the Table 2 default, a quantum-stressing small-cache variant,
// a write-back variant (dirty-eviction cycles must also match), and a
// heterogeneous variant (per-core speed classes on a mesh with a hop
// penalty — the per-core cost tables must agree across engines too).
func rleDiffConfigs() map[string]Config {
	def := DefaultConfig()

	small := DefaultConfig()
	small.Cache = cache.Geometry{Size: 1024, BlockSize: 32, Assoc: 2}
	small.Cores = 2

	wb := DefaultConfig()
	wb.WritePolicy = cache.WriteBack
	wb.WritebackPenalty = 40

	het := DefaultConfig()
	het.Machine = Machine{SpeedClasses: "1,3", Topology: TopoMesh, HopPenalty: 16}

	return map[string]Config{"Table2": def, "SmallCache": small, "WriteBack": wb, "Hetero": het}
}

// rleDiffDispatchers returns fresh dispatcher constructors. The quantum
// 193 is deliberately small and odd: it forces preemptions mid-iteration
// (and mid-run resumes on other cores), the hardest case for run
// splitting.
func rleDiffDispatchers(t *testing.T) map[string]func() Dispatcher {
	t.Helper()
	return map[string]func() Dispatcher{
		"RS": func() Dispatcher { return sched.NewRandom(7) },
		"RRS-193": func() Dispatcher {
			d, err := sched.NewRoundRobin(193)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		"RRS-4096": func() Dispatcher {
			d, err := sched.NewRoundRobin(4096)
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
		// ARR exercises the affinity machinery end to end: warm-biased
		// picks, hint-ordered wakes, quantum batching on warm resumes,
		// and decaying bindings — all with the same odd quantum that
		// forces mid-iteration preemption.
		"ARR-193": func() Dispatcher {
			d, err := sched.NewAffinityRR(sched.AffinityConfig{
				Quantum: 193, Window: 4, QBatch: 2, Decay: 50000,
			})
			if err != nil {
				t.Fatal(err)
			}
			return d
		},
	}
}

// TestRLEEngineMatchesFlat: for every Table 1 application under both
// address maps, several machine variants, and both run-to-completion and
// preemptive dispatchers, the strided-RLE block-coalesced engine produces
// results bit-identical to the flat compiled-stream engine: makespan,
// per-core busy cycles and cache stats (hits, cold/capacity/conflict
// misses, writebacks), completion times, preemption and idle counts.
func TestRLEEngineMatchesFlat(t *testing.T) {
	apps, err := workload.BuildAll(workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for cfgName, cfg := range rleDiffConfigs() {
		for _, app := range apps {
			for amName, am := range rleDiffMaps(t, app, cfg.Cache) {
				for dName, mkDisp := range rleDiffDispatchers(t) {
					t.Run(fmt.Sprintf("%s/%s/%s/%s", cfgName, app.Name, amName, dName), func(t *testing.T) {
						flatCfg := cfg
						flatCfg.FlatStreams = true
						flat, err := Run(app.Graph, mkDisp(), am, flatCfg)
						if err != nil {
							t.Fatalf("flat engine: %v", err)
						}
						rleCfg := cfg
						rleCfg.FlatStreams = false
						rle, err := Run(app.Graph, mkDisp(), am, rleCfg)
						if err != nil {
							t.Fatalf("RLE engine: %v", err)
						}
						if !reflect.DeepEqual(flat, rle) {
							t.Errorf("results diverge:\nflat: %+v\nrle:  %+v", flat, rle)
						}
					})
				}
			}
		}
	}
}

// TestRLEEngineSingleRef: processes with exactly one reference take the
// engine's AccessRun fast path (same-block runs resolved in one call
// with no residency probe); a chain of single-ref strided readers and
// writers must stay bit-identical to the flat engine, with and without
// preemption and under write-back.
func TestRLEEngineSingleRef(t *testing.T) {
	arr := prog.MustArray("sr.A", 4, 1<<16)
	g := taskgraph.New()
	var prev taskgraph.ProcID
	for i := 0; i < 6; i++ {
		iter := prog.Seg("i", 0, 700)
		kind := prog.Read
		if i%2 == 1 {
			kind = prog.Write
		}
		// Varied strides and overlapping offsets: spans of different
		// lengths, some same-block reuse across processes.
		spec := prog.MustProcessSpec(fmt.Sprintf("sr.p%d", i), iter, 2,
			prog.StreamRef(arr, kind, iter, int64(1+i%3), int64(i*512)))
		id := taskgraph.ProcID{Task: 0, Idx: i}
		if err := g.AddProcess(&taskgraph.Process{ID: id, Spec: spec}); err != nil {
			t.Fatal(err)
		}
		if i > 0 && i%2 == 0 {
			if err := g.AddDep(prev, id); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	base, err := layout.Pack(32, arr)
	if err != nil {
		t.Fatal(err)
	}
	for cfgName, cfg := range rleDiffConfigs() {
		for dName, mkDisp := range rleDiffDispatchers(t) {
			t.Run(fmt.Sprintf("%s/%s", cfgName, dName), func(t *testing.T) {
				flatCfg := cfg
				flatCfg.FlatStreams = true
				flat, err := Run(g, mkDisp(), base, flatCfg)
				if err != nil {
					t.Fatalf("flat engine: %v", err)
				}
				rle, err := Run(g, mkDisp(), base, cfg)
				if err != nil {
					t.Fatalf("RLE engine: %v", err)
				}
				if !reflect.DeepEqual(flat, rle) {
					t.Errorf("results diverge:\nflat: %+v\nrle:  %+v", flat, rle)
				}
			})
		}
	}
}

// TestRLEEngineRunnerReuse: resetting and re-running a Runner (the path
// repeated experiment cells take) stays bit-identical across engines.
func TestRLEEngineRunnerReuse(t *testing.T) {
	app, err := workload.Build("Radar", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	base, err := layout.Pack(cfg.Cache.BlockSize, app.Arrays...)
	if err != nil {
		t.Fatal(err)
	}
	flatCfg := cfg
	flatCfg.FlatStreams = true
	flatRunner, err := NewRunner(app.Graph, base, flatCfg)
	if err != nil {
		t.Fatal(err)
	}
	rleRunner, err := NewRunner(app.Graph, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		flat, err := flatRunner.Run(sched.MustRoundRobin(193))
		if err != nil {
			t.Fatal(err)
		}
		rle, err := rleRunner.Run(sched.MustRoundRobin(193))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(flat, rle) {
			t.Errorf("run %d: results diverge:\nflat: %+v\nrle:  %+v", i, flat, rle)
		}
	}
}

package mpsoc

import (
	"strings"
	"testing"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

// fifoDispatcher is a minimal run-to-completion global-FIFO policy used to
// exercise the engine (real policies live in internal/sched).
type fifoDispatcher struct {
	queue   []taskgraph.ProcID
	quantum int64
}

func (f *fifoDispatcher) Name() string { return "test-fifo" }
func (f *fifoDispatcher) Ready(id taskgraph.ProcID) {
	f.queue = append(f.queue, id)
}
func (f *fifoDispatcher) Pick(core int, now int64) (taskgraph.ProcID, int64, bool) {
	if len(f.queue) == 0 {
		return taskgraph.ProcID{}, 0, false
	}
	id := f.queue[0]
	f.queue = f.queue[1:]
	return id, f.quantum, true
}
func (f *fifoDispatcher) Preempted(id taskgraph.ProcID) {
	f.queue = append(f.queue, id)
}

// pinnedDispatcher runs an explicit per-core order, waiting when the next
// pinned process is not yet ready.
type pinnedDispatcher struct {
	perCore [][]taskgraph.ProcID
	next    []int
	ready   map[taskgraph.ProcID]bool
}

func newPinned(perCore [][]taskgraph.ProcID) *pinnedDispatcher {
	return &pinnedDispatcher{
		perCore: perCore,
		next:    make([]int, len(perCore)),
		ready:   make(map[taskgraph.ProcID]bool),
	}
}

func (p *pinnedDispatcher) Name() string                  { return "test-pinned" }
func (p *pinnedDispatcher) Ready(id taskgraph.ProcID)     { p.ready[id] = true }
func (p *pinnedDispatcher) Preempted(id taskgraph.ProcID) {}
func (p *pinnedDispatcher) Pick(core int, now int64) (taskgraph.ProcID, int64, bool) {
	if core >= len(p.perCore) || p.next[core] >= len(p.perCore[core]) {
		return taskgraph.ProcID{}, 0, false
	}
	id := p.perCore[core][p.next[core]]
	if !p.ready[id] {
		return taskgraph.ProcID{}, 0, false
	}
	p.next[core]++
	return id, 0, true
}

// neverDispatcher never picks anything: used for deadlock detection.
type neverDispatcher struct{}

func (neverDispatcher) Name() string               { return "never" }
func (neverDispatcher) Ready(taskgraph.ProcID)     {}
func (neverDispatcher) Preempted(taskgraph.ProcID) {}
func (neverDispatcher) Pick(int, int64) (taskgraph.ProcID, int64, bool) {
	return taskgraph.ProcID{}, 0, false
}

func testConfig(cores int) Config {
	cfg := DefaultConfig()
	cfg.Cores = cores
	return cfg
}

// singleProcGraph builds one process doing n iterations of one read with
// the given stride (in elements of a 4-byte array).
func singleProcGraph(t *testing.T, n, stride, compute int64) (*taskgraph.Graph, layout.AddressMap) {
	t.Helper()
	arr := prog.MustArray("A", 4, 100000)
	iter := prog.Seg("i", 0, n)
	spec := prog.MustProcessSpec("p", iter, compute, prog.StreamRef(arr, prog.Read, iter, stride, 0))
	g := taskgraph.New()
	if err := g.AddProcess(&taskgraph.Process{ID: taskgraph.ProcID{Task: 0, Idx: 0}, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	return g, layout.MustPack(32, arr)
}

func TestExactCyclesAllMisses(t *testing.T) {
	// Stride 8 elements = 32 bytes = one block per access: every access
	// misses. cycles = n*(compute + hit + misspenalty).
	g, am := singleProcGraph(t, 10, 8, 3)
	res, err := Run(g, &fifoDispatcher{}, am, testConfig(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int64(10 * (3 + 2 + 75))
	if res.Cycles != want {
		t.Errorf("Cycles = %d, want %d", res.Cycles, want)
	}
	if res.PerCore[0].BusyCycles != want {
		t.Errorf("BusyCycles = %d, want %d", res.PerCore[0].BusyCycles, want)
	}
	if res.Total.Misses() != 10 || res.Total.Hits != 0 {
		t.Errorf("cache stats = %+v", res.Total)
	}
	if res.Seconds <= 0 {
		t.Error("Seconds should be positive")
	}
}

func TestExactCyclesMostlyHits(t *testing.T) {
	// Stride 0: all accesses hit the same block. 1 miss + 9 hits.
	g, am := singleProcGraph(t, 10, 0, 3)
	res, err := Run(g, &fifoDispatcher{}, am, testConfig(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := int64(10*3 + (2 + 75) + 9*2)
	if res.Cycles != want {
		t.Errorf("Cycles = %d, want %d", res.Cycles, want)
	}
	if res.Total.Hits != 9 || res.Total.Misses() != 1 {
		t.Errorf("cache stats = %+v", res.Total)
	}
}

func TestDependenceGatesExecution(t *testing.T) {
	// Chain A -> B: B must not complete before A.
	arr := prog.MustArray("A", 4, 100000)
	g := taskgraph.New()
	var ids []taskgraph.ProcID
	for i := 0; i < 2; i++ {
		iter := prog.Seg("i", 0, 100)
		spec := prog.MustProcessSpec("p", iter, 1, prog.StreamRef(arr, prog.Read, iter, 8, int64(i)*1000))
		id := taskgraph.ProcID{Task: 0, Idx: i}
		if err := g.AddProcess(&taskgraph.Process{ID: id, Spec: spec}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := g.AddDep(ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, &fifoDispatcher{}, layout.MustPack(32, arr), testConfig(4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completion[ids[1]] <= res.Completion[ids[0]] {
		t.Errorf("dependent process completed at %d, predecessor at %d",
			res.Completion[ids[1]], res.Completion[ids[0]])
	}
	// With a 4-core machine, only one core may ever have run: chain is serial.
	active := 0
	for _, st := range res.PerCore {
		if st.Segments > 0 {
			active++
		}
	}
	if active == 0 {
		t.Error("no core ran anything")
	}
}

func TestWarmCacheReuseSameCore(t *testing.T) {
	// Two dependent processes touching the same 2KB window. Scheduled on
	// the same core, the second one finds the data warm; on different
	// cores it reloads everything. This is the paper's core effect.
	arr := prog.MustArray("A", 4, 512) // 2KB, fits in an 8KB cache
	g := func() *taskgraph.Graph {
		g := taskgraph.New()
		for i := 0; i < 2; i++ {
			iter := prog.Seg("i", 0, 512)
			spec := prog.MustProcessSpec("p", iter, 0, prog.StreamRef(arr, prog.Read, iter, 1, 0))
			if err := g.AddProcess(&taskgraph.Process{ID: taskgraph.ProcID{Task: 0, Idx: i}, Spec: spec}); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.AddDep(taskgraph.ProcID{Task: 0, Idx: 0}, taskgraph.ProcID{Task: 0, Idx: 1}); err != nil {
			t.Fatal(err)
		}
		return g
	}

	am := layout.MustPack(32, arr)
	p0 := taskgraph.ProcID{Task: 0, Idx: 0}
	p1 := taskgraph.ProcID{Task: 0, Idx: 1}

	sameCore, err := Run(g(), newPinned([][]taskgraph.ProcID{{p0, p1}, {}}), am, testConfig(2))
	if err != nil {
		t.Fatalf("same-core run: %v", err)
	}
	diffCore, err := Run(g(), newPinned([][]taskgraph.ProcID{{p0}, {p1}}), am, testConfig(2))
	if err != nil {
		t.Fatalf("diff-core run: %v", err)
	}
	if sameCore.Cycles >= diffCore.Cycles {
		t.Errorf("warm-cache run (%d cycles) should beat cold run (%d cycles)",
			sameCore.Cycles, diffCore.Cycles)
	}
	// The second process on the same core should be nearly all hits.
	if sameCore.Total.Hits <= diffCore.Total.Hits {
		t.Errorf("same-core hits %d should exceed diff-core hits %d",
			sameCore.Total.Hits, diffCore.Total.Hits)
	}
}

func TestPreemptionAccounting(t *testing.T) {
	g, am := singleProcGraph(t, 200, 8, 1)
	// Quantum of 500 cycles: the ~15k-cycle process is preempted often.
	res, err := Run(g, &fifoDispatcher{quantum: 500}, am, testConfig(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Preemptions == 0 {
		t.Error("expected preemptions with a small quantum")
	}
	// On a single core with a single process, preemption must not change
	// total busy cycles (same cache, same access order).
	noPreempt, err := Run(g, &fifoDispatcher{}, am, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Graph cursors are rebuilt per Run, so compare totals.
	if res.PerCore[0].BusyCycles != noPreempt.PerCore[0].BusyCycles {
		t.Errorf("busy cycles with preemption %d != without %d",
			res.PerCore[0].BusyCycles, noPreempt.PerCore[0].BusyCycles)
	}
	if res.PerCore[0].Segments <= noPreempt.PerCore[0].Segments {
		t.Error("preempted run should have more segments")
	}
}

func TestDeadlockDetection(t *testing.T) {
	g, am := singleProcGraph(t, 10, 1, 0)
	if _, err := Run(g, neverDispatcher{}, am, testConfig(1)); err == nil {
		t.Error("policy that never dispatches should be reported as deadlock")
	} else if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("error %q should mention deadlock", err)
	}
}

func TestInvalidPicksRejected(t *testing.T) {
	g, am := singleProcGraph(t, 10, 1, 0)
	bogus := &fifoDispatcher{}
	bogus.queue = []taskgraph.ProcID{{Task: 7, Idx: 7}}
	if _, err := Run(g, bogus, am, testConfig(1)); err == nil {
		t.Error("picking an unknown process should fail")
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	_, am := singleProcGraph(t, 1, 1, 0)
	if _, err := Run(taskgraph.New(), &fifoDispatcher{}, am, testConfig(1)); err == nil {
		t.Error("empty graph should fail")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	g, am := singleProcGraph(t, 10, 1, 0)
	cfg := testConfig(0)
	if _, err := Run(g, &fifoDispatcher{}, am, cfg); err == nil {
		t.Error("zero cores should fail")
	}
}

func TestCyclicGraphRejected(t *testing.T) {
	arr := prog.MustArray("A", 4, 1000)
	g := taskgraph.New()
	var ids []taskgraph.ProcID
	for i := 0; i < 2; i++ {
		iter := prog.Seg("i", 0, 10)
		spec := prog.MustProcessSpec("p", iter, 0, prog.StreamRef(arr, prog.Read, iter, 1, 0))
		id := taskgraph.ProcID{Task: 0, Idx: i}
		if err := g.AddProcess(&taskgraph.Process{ID: id, Spec: spec}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := g.AddDep(ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDep(ids[1], ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, &fifoDispatcher{}, layout.MustPack(32, arr), testConfig(1)); err == nil {
		t.Error("cyclic graph should fail")
	}
}

func TestBusContentionSlowsMisses(t *testing.T) {
	// Two independent streaming processes on two cores. With BusFactor
	// the concurrent run pays more per miss.
	build := func() (*taskgraph.Graph, layout.AddressMap) {
		arr := prog.MustArray("A", 4, 100000)
		g := taskgraph.New()
		for i := 0; i < 2; i++ {
			iter := prog.Seg("i", 0, 500)
			spec := prog.MustProcessSpec("p", iter, 0, prog.StreamRef(arr, prog.Read, iter, 8, int64(i)*20000))
			if err := g.AddProcess(&taskgraph.Process{ID: taskgraph.ProcID{Task: 0, Idx: i}, Spec: spec}); err != nil {
				t.Fatal(err)
			}
		}
		return g, layout.MustPack(32, arr)
	}
	g1, am1 := build()
	cfg := testConfig(2)
	base, err := Run(g1, &fifoDispatcher{}, am1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, am2 := build()
	cfg.BusFactor = 0.5
	contended, err := Run(g2, &fifoDispatcher{}, am2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if contended.Cycles <= base.Cycles {
		t.Errorf("contended run (%d) should be slower than base (%d)",
			contended.Cycles, base.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() (*Result, error) {
		g, am := singleProcGraph(t, 300, 4, 2)
		return Run(g, &fifoDispatcher{quantum: 333}, am, testConfig(3))
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Preemptions != b.Preemptions {
		t.Errorf("runs differ: %d/%d vs %d/%d cycles/preemptions",
			a.Cycles, a.Preemptions, b.Cycles, b.Preemptions)
	}
}

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Cores != 8 {
		t.Errorf("Cores = %d, want 8", cfg.Cores)
	}
	if cfg.Cache.Size != 8*1024 || cfg.Cache.Assoc != 2 {
		t.Errorf("Cache = %+v, want 8KB 2-way", cfg.Cache)
	}
	if cfg.HitLatency != 2 {
		t.Errorf("HitLatency = %d, want 2", cfg.HitLatency)
	}
	if cfg.MissPenalty != 75 {
		t.Errorf("MissPenalty = %d, want 75", cfg.MissPenalty)
	}
	if cfg.ClockMHz != 200 {
		t.Errorf("ClockMHz = %d, want 200", cfg.ClockMHz)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	// 200 MHz: 2e8 cycles per second.
	if s := cfg.Seconds(2e8); s < 0.999 || s > 1.001 {
		t.Errorf("Seconds(2e8) = %f, want 1.0", s)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.HitLatency = 0 },
		func(c *Config) { c.MissPenalty = -1 },
		func(c *Config) { c.ClockMHz = 0 },
		func(c *Config) { c.BusFactor = -1 },
		func(c *Config) { c.Cache = cache.Geometry{} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

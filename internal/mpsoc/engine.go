package mpsoc

import (
	"fmt"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/sim"
	"locsched/internal/taskgraph"
	"locsched/internal/trace"
)

// Dispatcher is the scheduling policy contract. The engine owns readiness
// tracking (dependences) and calls the dispatcher to choose work:
//
//   - Ready(id) announces a process whose predecessors have all completed.
//   - Pick(core, now) asks for the next process to run on a free core; a
//     zero quantum means run to completion. ok=false idles the core until
//     another process completes.
//   - Preempted(id) hands back a process whose quantum expired.
//
// Dispatchers must be deterministic given their seed, may only hand out
// processes previously announced via Ready or Preempted, and a failed
// Pick must be side-effect-free (the engine elides offers it can prove
// would fail).
type Dispatcher interface {
	Name() string
	Ready(id taskgraph.ProcID)
	Pick(core int, now int64) (id taskgraph.ProcID, quantum int64, ok bool)
	Preempted(id taskgraph.ProcID)
}

// CoreAgnostic is an optional Dispatcher capability: implementations
// return true to declare that Pick's success never depends on the core
// argument (global-queue and work-stealing policies). The engine then
// wakes only as many idle cores as it has announced-but-unpicked
// processes instead of re-offering every idle core on every completion —
// at 128 cores the all-but-one failed offers otherwise dominate
// preemptive schedules. Which core receives which process is unchanged
// for policies without affinity hints: idle cores are woken in index
// order (warm cores first for AffinityHinter dispatchers), and the
// elided offers are exactly those that would have failed.
type CoreAgnostic interface {
	CoreAgnostic() bool
}

// SegmentObserver is an optional Dispatcher capability: after every
// executed segment the engine reports which process ran, on which core,
// the cycle the segment ended, and whether the process completed. This
// is the last-core hint an affinity-aware policy (sched.AffinityRR)
// feeds on, delivered identically by the flat-stream and strided-RLE
// execution paths (both funnel through the shared dispatch loop).
// SegmentDone is called before the corresponding Ready/Preempted
// announcement and must not affect whether a subsequent Pick succeeds.
type SegmentObserver interface {
	SegmentDone(id taskgraph.ProcID, core int, now int64, completed bool)
}

// AffinityHinter is an optional Dispatcher capability for warm-resume
// placement: AffinityHints yields, in dispatch-preference order, the
// last cores of pending processes whose cache contents are still
// expected warm, stopping early when yield returns false. When idle
// cores are requeued the engine wakes hinted cores first (then the rest
// in index order), so the same-cycle offer sequence reaches a preempted
// process's previous core before any colder one. Yielding must be
// deterministic and side-effect-free; a dispatcher that currently has
// no hints (e.g. ARR at affinity strength 0) simply yields nothing and
// leaves the wake order exactly as it would be without the capability.
type AffinityHinter interface {
	AffinityHints(now int64, yield func(core int) bool)
}

// CoreStats aggregates one core's activity.
type CoreStats struct {
	BusyCycles int64
	Segments   int64 // dispatched segments (≥ processes completed on core)
	Procs      int64 // processes completed on this core
	Cache      cache.Stats
}

// Segment is one contiguous execution of a process on a core, recorded
// when Config.RecordTimeline is set.
type Segment struct {
	Core      int
	Proc      taskgraph.ProcID
	Start     int64
	End       int64
	Completed bool
}

// Result is the outcome of one simulation run.
type Result struct {
	Policy      string
	Cycles      int64   // makespan in cycles
	Seconds     float64 // makespan at the configured clock
	PerCore     []CoreStats
	Total       cache.Stats                // all cores combined
	Completion  map[taskgraph.ProcID]int64 // per-process completion cycle
	Preemptions int64
	// AffineResumes and Migrations classify every resumed segment (a
	// dispatch of a process that already executed at least one segment):
	// a resume on the process's previous core is affine — its working
	// set may still be cached — and a resume elsewhere is a migration
	// onto a cold cache. Run-to-completion policies score zero on both.
	AffineResumes int64
	Migrations    int64
	IdleCycles    int64     // Σ cores (makespan − busy)
	Timeline      []Segment // populated when Config.RecordTimeline is set
}

// procCursor is one process's playback state under whichever engine the
// runner was built for: exactly one field is set.
type procCursor struct {
	flat *trace.Cursor
	rle  *trace.RLECursor
}

func (pc procCursor) done() bool {
	if pc.flat != nil {
		return pc.flat.Done()
	}
	return pc.rle.Done()
}

func (pc procCursor) reset() {
	if pc.flat != nil {
		pc.flat.Reset()
	} else {
		pc.rle.Reset()
	}
}

// remaining returns the number of accesses left in the cursor's stream
// (the parallel engine's lookahead bound is derived from it).
func (pc procCursor) remaining() int64 {
	if pc.flat != nil {
		return pc.flat.Remaining()
	}
	return pc.rle.Remaining()
}

type evKind int

const (
	evFree evKind = iota // core became free: try to dispatch
	evDone               // segment finished: bookkeeping, then core free
)

type event struct {
	kind      evKind
	core      int
	id        taskgraph.ProcID
	completed bool // for evDone: process ran to completion
}

// Runner owns the per-run machinery of one (graph, address map, machine)
// triple: compiled trace cursors and per-core caches, built once and
// reset between runs. Separating construction from simulation keeps the
// measured path free of setup cost and lets repeated experiments (and
// benchmarks) reuse the compiled streams and cache arenas.
//
// By default processes execute as strided run-length-encoded streams
// (runSegmentRLE); Config.FlatStreams selects the fully-materialized
// flat-stream path instead. The two are bit-identical.
//
// A Runner is not safe for concurrent use; independent experiment cells
// build their own.
type Runner struct {
	g       *taskgraph.Graph
	cfg     Config
	cursors map[taskgraph.ProcID]procCursor
	caches  []*cache.Cache
	runs    int
	// Per-core cost tables from the machine model (see machine.go):
	// coreHitLat[c] is the core's speed-scaled hit latency, coreMissBase[c]
	// its base miss penalty including the topology hop term. On the
	// homogeneous zero-value Machine every entry equals cfg.HitLatency /
	// cfg.MissPenalty, so dispatch arithmetic is unchanged bit for bit.
	coreHitLat   []int64
	coreMissBase []int64
	// scratch for runSegmentRLE's iteration fast-forward, sized to the
	// widest reference group.
	blockScratch []int64
	writeScratch []bool
}

// NewRunner validates the configuration and precompiles everything a run
// needs: the trace streams of every process under the address map, and
// the per-core caches. The graph is frozen: analyses and compiled
// streams are cached against its structure, so post-construction
// mutation is rejected from here on.
func NewRunner(g *taskgraph.Graph, am layout.AddressMap, cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("mpsoc: empty process graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.Freeze()

	gen := trace.NewGenerator(am)
	cursors := make(map[taskgraph.ProcID]procCursor, g.Len())
	for _, p := range g.Processes() {
		var pc procCursor
		if cfg.FlatStreams {
			cur, err := gen.NewCursor(p.Spec)
			if err != nil {
				return nil, err
			}
			pc.flat = cur
		} else {
			cur, err := gen.NewRLECursor(p.Spec)
			if err != nil {
				return nil, err
			}
			pc.rle = cur
		}
		cursors[p.ID] = pc
	}

	caches := make([]*cache.Cache, cfg.Cores)
	for i := range caches {
		opts := []cache.Option{
			cache.WithReplacement(cfg.Replacement),
			cache.WithIndexing(cfg.Indexing),
			cache.WithWritePolicy(cfg.WritePolicy),
			cache.WithSeed(cfg.Seed + int64(i)),
		}
		if cfg.Classify {
			opts = append(opts, cache.WithClassification())
		}
		c, err := cache.New(cfg.Cache, opts...)
		if err != nil {
			return nil, err
		}
		caches[i] = c
	}
	maxRefs := 0
	for _, p := range g.Processes() {
		if n := len(p.Spec.Refs); n > maxRefs {
			maxRefs = n
		}
	}
	coreHitLat, coreMissBase, err := cfg.coreCostTables()
	if err != nil {
		return nil, err
	}
	return &Runner{
		g: g, cfg: cfg, cursors: cursors, caches: caches,
		coreHitLat: coreHitLat, coreMissBase: coreMissBase,
		blockScratch: make([]int64, maxRefs),
		writeScratch: make([]bool, maxRefs),
	}, nil
}

// resetForRun rewinds every cursor and cache before a repeat run on a
// reused Runner (the first run starts from construction state).
func (r *Runner) resetForRun() {
	if r.runs > 0 {
		for _, pc := range r.cursors {
			pc.reset()
		}
		for _, c := range r.caches {
			c.Reset()
		}
	}
	r.runs++
}

// Run simulates the EPG under the dispatcher. The dispatcher must be
// fresh (its ready/queue state is consumed); cursors and caches are
// reset automatically between runs.
func (r *Runner) Run(d Dispatcher) (*Result, error) {
	g, cfg := r.g, r.cfg
	r.resetForRun()

	// avail counts processes announced to the dispatcher (Ready or
	// Preempted) and not yet successfully picked: an upper bound on how
	// many idle-core offers can succeed, and zero means none can.
	avail := 0
	pendingPreds := make(map[taskgraph.ProcID]int, g.Len())
	for _, id := range g.ProcIDs() {
		pendingPreds[id] = len(g.Preds(id))
	}
	for _, id := range g.Roots() {
		d.Ready(id)
		avail++
	}
	coreAgnostic := false
	if ca, ok := d.(CoreAgnostic); ok {
		coreAgnostic = ca.CoreAgnostic()
	}
	observer, _ := d.(SegmentObserver)
	hinter, _ := d.(AffinityHinter)
	// lastCore remembers each process's previous core for the affinity
	// accounting in Result (and mirrors what a SegmentObserver is told).
	lastCore := make(map[taskgraph.ProcID]int, g.Len())

	res := &Result{
		Policy:     d.Name(),
		PerCore:    make([]CoreStats, cfg.Cores),
		Completion: make(map[taskgraph.ProcID]int64, g.Len()),
	}

	events := sim.NewQueue[event]()
	for c := 0; c < cfg.Cores; c++ {
		events.Push(0, event{kind: evFree, core: c})
	}
	idle := make([]bool, cfg.Cores)
	idleCount := 0
	busyCores := 0
	remaining := g.Len()
	var makespan int64

	// wakeIdle requeues idle cores (in a deterministic order) without
	// allocating. Offers that provably fail are elided — at 128 cores
	// the all-but-one failed offers otherwise dominate preemptive
	// schedules — but only at "quiet" timestamps: when another event is
	// pending at this same cycle (FIFO order pops every same-cycle
	// completion before any same-cycle offer), that event may ready more
	// work before the offers pop, so all idle cores must be offered to
	// keep the offer sequence — and with it the core↔process pairing —
	// exactly as if nothing were elided. At a quiet timestamp nothing
	// can inject work before the offers pop, so offers beyond the
	// announced-work count avail fail for certain: none are pushed when
	// avail is zero, and core-agnostic dispatchers (whose Pick success
	// never depends on the core) need at most avail offers.
	//
	// The wake order is index order, except that an AffinityHinter's
	// hinted cores are woken first: same-cycle evFree events pop FIFO,
	// so the first woken core is the first to Pick, and putting a
	// pending process's previous core there is what turns a would-be
	// migration into a warm resume. The elision itself is unaffected —
	// hints reorder the woken set, never enlarge it.
	wake := func(now int64, c int) {
		idle[c] = false
		idleCount--
		events.Push(now, event{kind: evFree, core: c})
	}
	wakeIdle := func(now int64) {
		if idleCount == 0 {
			return
		}
		quiet := true
		if t, _, ok := events.Peek(); ok && t == now {
			quiet = false
		}
		if quiet && avail <= 0 {
			return
		}
		budget := idleCount
		if quiet && coreAgnostic && avail < budget {
			budget = avail
		}
		if hinter != nil && budget > 0 {
			hinter.AffinityHints(now, func(c int) bool {
				if c >= 0 && c < len(idle) && idle[c] {
					wake(now, c)
					budget--
				}
				return budget > 0 && idleCount > 0
			})
		}
		for c := range idle {
			if budget == 0 {
				break
			}
			if idle[c] {
				wake(now, c)
				budget--
			}
		}
	}

	for remaining > 0 {
		now, ev, ok := events.Pop()
		if !ok {
			return nil, fmt.Errorf("mpsoc: deadlock under policy %s: %d processes never dispatched", d.Name(), remaining)
		}
		switch ev.kind {
		case evDone:
			busyCores--
			if observer != nil {
				observer.SegmentDone(ev.id, ev.core, now, ev.completed)
			}
			if ev.completed {
				res.PerCore[ev.core].Procs++
				res.Completion[ev.id] = now
				if now > makespan {
					makespan = now
				}
				remaining--
				for _, succ := range g.Succs(ev.id) {
					pendingPreds[succ]--
					if pendingPreds[succ] == 0 {
						d.Ready(succ)
						avail++
					}
				}
			} else {
				res.Preemptions++
				d.Preempted(ev.id)
				avail++
			}
			// Newly ready or requeued work may unblock idle cores, and
			// this core itself is free again.
			wakeIdle(now)
			if remaining > 0 {
				events.Push(now, event{kind: evFree, core: ev.core})
			}

		case evFree:
			id, quantum, picked := d.Pick(ev.core, now)
			if !picked {
				idle[ev.core] = true
				idleCount++
				continue
			}
			avail--
			if prev, ran := lastCore[id]; ran {
				if prev == ev.core {
					res.AffineResumes++
				} else {
					res.Migrations++
				}
			}
			lastCore[id] = ev.core
			pc, exists := r.cursors[id]
			if !exists {
				return nil, fmt.Errorf("mpsoc: policy %s picked unknown process %v", d.Name(), id)
			}
			if pc.done() {
				return nil, fmt.Errorf("mpsoc: policy %s re-picked completed process %v", d.Name(), id)
			}
			// Cost inputs come from the dispatched core's machine-model
			// tables; bus contention scales the whole off-chip penalty,
			// hop term included.
			penalty := r.coreMissBase[ev.core]
			if cfg.BusFactor > 0 && busyCores > 0 {
				penalty = int64(float64(penalty) * (1 + cfg.BusFactor*float64(busyCores)))
			}
			busyCores++
			var cycles int64
			var completed bool
			if pc.flat != nil {
				cycles, completed = runSegment(pc.flat, r.caches[ev.core], r.coreHitLat[ev.core], penalty, cfg.WritebackPenalty, quantum)
			} else {
				cycles, completed = runSegmentRLE(pc.rle, r.caches[ev.core], r.coreHitLat[ev.core], penalty, cfg.WritebackPenalty, quantum, r.blockScratch, r.writeScratch)
			}
			st := &res.PerCore[ev.core]
			st.BusyCycles += cycles
			st.Segments++
			if cfg.RecordTimeline {
				res.Timeline = append(res.Timeline, Segment{
					Core: ev.core, Proc: id, Start: now, End: now + cycles, Completed: completed,
				})
			}
			events.Push(now+cycles, event{kind: evDone, core: ev.core, id: id, completed: completed})
		}
	}

	res.Cycles = makespan
	res.Seconds = cfg.Seconds(makespan)
	for i := range r.caches {
		res.PerCore[i].Cache = r.caches[i].Stats()
		res.Total.Add(res.PerCore[i].Cache)
		res.IdleCycles += makespan - res.PerCore[i].BusyCycles
	}
	return res, nil
}

// Run simulates the EPG under the dispatcher on the configured machine,
// with array addresses taken from the address map.
func Run(g *taskgraph.Graph, d Dispatcher, am layout.AddressMap, cfg Config) (*Result, error) {
	r, err := NewRunner(g, am, cfg)
	if err != nil {
		return nil, err
	}
	return r.Run(d)
}

// runSegment executes the cursor on the cache until completion or quantum
// expiry (quantum 0 = no limit) and returns the consumed cycles. At least
// one access always executes, so preemptive policies make progress even
// with degenerate quanta. The loop runs directly over the compiled
// stream: two slice loads per access, with the no-quantum case hoisted
// out of the per-access path.
func runSegment(cur *trace.Cursor, c *cache.Cache, hitLat, missPenalty, wbPenalty, quantum int64) (cycles int64, completed bool) {
	compute := cur.Spec().ComputePerIter
	addrs, flags, start := cur.StreamAt()
	pos, n := start, len(addrs)
	missCost := hitLat + missPenalty

	if quantum <= 0 {
		for ; pos < n; pos++ {
			f := flags[pos]
			if f&trace.FlagNewIter != 0 {
				cycles += compute
			}
			class, wroteBack := c.AccessRW(addrs[pos], f&trace.FlagWrite != 0)
			if class == cache.Hit {
				cycles += hitLat
			} else {
				cycles += missCost
			}
			if wroteBack {
				cycles += wbPenalty
			}
		}
		cur.Skip(pos - start)
		return cycles, true
	}

	for pos < n && cycles < quantum {
		f := flags[pos]
		if f&trace.FlagNewIter != 0 {
			cycles += compute
		}
		class, wroteBack := c.AccessRW(addrs[pos], f&trace.FlagWrite != 0)
		if class == cache.Hit {
			cycles += hitLat
		} else {
			cycles += missCost
		}
		if wroteBack {
			cycles += wbPenalty
		}
		pos++
	}
	cur.Skip(pos - start)
	// A stream that ended exactly on the quantum boundary is a
	// completion, not a preemption.
	return cycles, pos >= n
}

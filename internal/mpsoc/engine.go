package mpsoc

import (
	"fmt"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/sim"
	"locsched/internal/taskgraph"
	"locsched/internal/trace"
)

// Dispatcher is the scheduling policy contract. The engine owns readiness
// tracking (dependences) and calls the dispatcher to choose work:
//
//   - Ready(id) announces a process whose predecessors have all completed.
//   - Pick(core, now) asks for the next process to run on a free core; a
//     zero quantum means run to completion. ok=false idles the core until
//     another process completes.
//   - Preempted(id) hands back a process whose quantum expired.
//
// Dispatchers must be deterministic given their seed.
type Dispatcher interface {
	Name() string
	Ready(id taskgraph.ProcID)
	Pick(core int, now int64) (id taskgraph.ProcID, quantum int64, ok bool)
	Preempted(id taskgraph.ProcID)
}

// CoreStats aggregates one core's activity.
type CoreStats struct {
	BusyCycles int64
	Segments   int64 // dispatched segments (≥ processes completed on core)
	Procs      int64 // processes completed on this core
	Cache      cache.Stats
}

// Segment is one contiguous execution of a process on a core, recorded
// when Config.RecordTimeline is set.
type Segment struct {
	Core      int
	Proc      taskgraph.ProcID
	Start     int64
	End       int64
	Completed bool
}

// Result is the outcome of one simulation run.
type Result struct {
	Policy      string
	Cycles      int64   // makespan in cycles
	Seconds     float64 // makespan at the configured clock
	PerCore     []CoreStats
	Total       cache.Stats                // all cores combined
	Completion  map[taskgraph.ProcID]int64 // per-process completion cycle
	Preemptions int64
	IdleCycles  int64     // Σ cores (makespan − busy)
	Timeline    []Segment // populated when Config.RecordTimeline is set
}

type evKind int

const (
	evFree evKind = iota // core became free: try to dispatch
	evDone               // segment finished: bookkeeping, then core free
)

type event struct {
	kind      evKind
	core      int
	id        taskgraph.ProcID
	completed bool // for evDone: process ran to completion
}

// Runner owns the per-run machinery of one (graph, address map, machine)
// triple: compiled trace cursors and per-core caches, built once and
// reset between runs. Separating construction from simulation keeps the
// measured path free of setup cost and lets repeated experiments (and
// benchmarks) reuse the compiled streams and cache arenas.
//
// A Runner is not safe for concurrent use; independent experiment cells
// build their own.
type Runner struct {
	g       *taskgraph.Graph
	cfg     Config
	cursors map[taskgraph.ProcID]*trace.Cursor
	caches  []*cache.Cache
	runs    int
}

// NewRunner validates the configuration and precompiles everything a run
// needs: the trace streams of every process under the address map, and
// the per-core caches.
func NewRunner(g *taskgraph.Graph, am layout.AddressMap, cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g.Len() == 0 {
		return nil, fmt.Errorf("mpsoc: empty process graph")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}

	gen := trace.NewGenerator(am)
	cursors := make(map[taskgraph.ProcID]*trace.Cursor, g.Len())
	for _, p := range g.Processes() {
		cur, err := gen.NewCursor(p.Spec)
		if err != nil {
			return nil, err
		}
		cursors[p.ID] = cur
	}

	caches := make([]*cache.Cache, cfg.Cores)
	for i := range caches {
		opts := []cache.Option{
			cache.WithReplacement(cfg.Replacement),
			cache.WithIndexing(cfg.Indexing),
			cache.WithWritePolicy(cfg.WritePolicy),
			cache.WithSeed(cfg.Seed + int64(i)),
		}
		if cfg.Classify {
			opts = append(opts, cache.WithClassification())
		}
		c, err := cache.New(cfg.Cache, opts...)
		if err != nil {
			return nil, err
		}
		caches[i] = c
	}
	return &Runner{g: g, cfg: cfg, cursors: cursors, caches: caches}, nil
}

// Run simulates the EPG under the dispatcher. The dispatcher must be
// fresh (its ready/queue state is consumed); cursors and caches are
// reset automatically between runs.
func (r *Runner) Run(d Dispatcher) (*Result, error) {
	g, cfg := r.g, r.cfg
	if r.runs > 0 {
		for _, cur := range r.cursors {
			cur.Reset()
		}
		for _, c := range r.caches {
			c.Reset()
		}
	}
	r.runs++

	pendingPreds := make(map[taskgraph.ProcID]int, g.Len())
	for _, id := range g.ProcIDs() {
		pendingPreds[id] = len(g.Preds(id))
	}
	for _, id := range g.Roots() {
		d.Ready(id)
	}

	res := &Result{
		Policy:     d.Name(),
		PerCore:    make([]CoreStats, cfg.Cores),
		Completion: make(map[taskgraph.ProcID]int64, g.Len()),
	}

	events := sim.NewQueue[event]()
	for c := 0; c < cfg.Cores; c++ {
		events.Push(0, event{kind: evFree, core: c})
	}
	idle := make([]bool, cfg.Cores)
	anyIdle := false
	busyCores := 0
	remaining := g.Len()
	var makespan int64

	// wakeIdle requeues every idle core (in index order, keeping runs
	// deterministic) without allocating.
	wakeIdle := func(now int64) {
		if !anyIdle {
			return
		}
		for c := range idle {
			if idle[c] {
				idle[c] = false
				events.Push(now, event{kind: evFree, core: c})
			}
		}
		anyIdle = false
	}

	for remaining > 0 {
		now, ev, ok := events.Pop()
		if !ok {
			return nil, fmt.Errorf("mpsoc: deadlock under policy %s: %d processes never dispatched", d.Name(), remaining)
		}
		switch ev.kind {
		case evDone:
			busyCores--
			if ev.completed {
				res.PerCore[ev.core].Procs++
				res.Completion[ev.id] = now
				if now > makespan {
					makespan = now
				}
				remaining--
				for _, succ := range g.Succs(ev.id) {
					pendingPreds[succ]--
					if pendingPreds[succ] == 0 {
						d.Ready(succ)
					}
				}
			} else {
				res.Preemptions++
				d.Preempted(ev.id)
			}
			// Newly ready or requeued work may unblock idle cores, and
			// this core itself is free again.
			wakeIdle(now)
			if remaining > 0 {
				events.Push(now, event{kind: evFree, core: ev.core})
			}

		case evFree:
			id, quantum, picked := d.Pick(ev.core, now)
			if !picked {
				idle[ev.core] = true
				anyIdle = true
				continue
			}
			cur, exists := r.cursors[id]
			if !exists {
				return nil, fmt.Errorf("mpsoc: policy %s picked unknown process %v", d.Name(), id)
			}
			if cur.Done() {
				return nil, fmt.Errorf("mpsoc: policy %s re-picked completed process %v", d.Name(), id)
			}
			penalty := cfg.MissPenalty
			if cfg.BusFactor > 0 && busyCores > 0 {
				penalty = int64(float64(cfg.MissPenalty) * (1 + cfg.BusFactor*float64(busyCores)))
			}
			busyCores++
			cycles, completed := runSegment(cur, r.caches[ev.core], cfg.HitLatency, penalty, cfg.WritebackPenalty, quantum)
			st := &res.PerCore[ev.core]
			st.BusyCycles += cycles
			st.Segments++
			if cfg.RecordTimeline {
				res.Timeline = append(res.Timeline, Segment{
					Core: ev.core, Proc: id, Start: now, End: now + cycles, Completed: completed,
				})
			}
			events.Push(now+cycles, event{kind: evDone, core: ev.core, id: id, completed: completed})
		}
	}

	res.Cycles = makespan
	res.Seconds = cfg.Seconds(makespan)
	for i := range r.caches {
		res.PerCore[i].Cache = r.caches[i].Stats()
		res.Total.Add(res.PerCore[i].Cache)
		res.IdleCycles += makespan - res.PerCore[i].BusyCycles
	}
	return res, nil
}

// Run simulates the EPG under the dispatcher on the configured machine,
// with array addresses taken from the address map.
func Run(g *taskgraph.Graph, d Dispatcher, am layout.AddressMap, cfg Config) (*Result, error) {
	r, err := NewRunner(g, am, cfg)
	if err != nil {
		return nil, err
	}
	return r.Run(d)
}

// runSegment executes the cursor on the cache until completion or quantum
// expiry (quantum 0 = no limit) and returns the consumed cycles. At least
// one access always executes, so preemptive policies make progress even
// with degenerate quanta. The loop runs directly over the compiled
// stream: two slice loads per access, with the no-quantum case hoisted
// out of the per-access path.
func runSegment(cur *trace.Cursor, c *cache.Cache, hitLat, missPenalty, wbPenalty, quantum int64) (cycles int64, completed bool) {
	compute := cur.Spec().ComputePerIter
	addrs, flags, start := cur.StreamAt()
	pos, n := start, len(addrs)
	missCost := hitLat + missPenalty

	if quantum <= 0 {
		for ; pos < n; pos++ {
			f := flags[pos]
			if f&trace.FlagNewIter != 0 {
				cycles += compute
			}
			class, wroteBack := c.AccessRW(addrs[pos], f&trace.FlagWrite != 0)
			if class == cache.Hit {
				cycles += hitLat
			} else {
				cycles += missCost
			}
			if wroteBack {
				cycles += wbPenalty
			}
		}
		cur.Skip(pos - start)
		return cycles, true
	}

	for pos < n && cycles < quantum {
		f := flags[pos]
		if f&trace.FlagNewIter != 0 {
			cycles += compute
		}
		class, wroteBack := c.AccessRW(addrs[pos], f&trace.FlagWrite != 0)
		if class == cache.Hit {
			cycles += hitLat
		} else {
			cycles += missCost
		}
		if wroteBack {
			cycles += wbPenalty
		}
		pos++
	}
	cur.Skip(pos - start)
	// A stream that ended exactly on the quantum boundary is a
	// completion, not a preemption.
	return cycles, pos >= n
}

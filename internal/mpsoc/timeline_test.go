package mpsoc

import (
	"strings"
	"testing"

	"locsched/internal/layout"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

func TestTimelineRecording(t *testing.T) {
	arr := prog.MustArray("A", 4, 100000)
	g := taskgraph.New()
	var ids []taskgraph.ProcID
	for i := 0; i < 3; i++ {
		iter := prog.Seg("i", 0, 100)
		spec := prog.MustProcessSpec("p", iter, 1, prog.StreamRef(arr, prog.Read, iter, 8, int64(i)*2000))
		id := taskgraph.ProcID{Task: 0, Idx: i}
		if err := g.AddProcess(&taskgraph.Process{ID: id, Spec: spec}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := g.AddDep(ids[0], ids[1]); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(2)
	cfg.RecordTimeline = true
	res, err := Run(g, &fifoDispatcher{}, layout.MustPack(32, arr), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 3 {
		t.Fatalf("recorded %d segments, want 3", len(res.Timeline))
	}
	for _, s := range res.Timeline {
		if s.End <= s.Start {
			t.Errorf("segment %+v has non-positive duration", s)
		}
		if !s.Completed {
			t.Errorf("segment %+v should be a completion (no preemption here)", s)
		}
		if s.End > res.Cycles {
			t.Errorf("segment %+v ends after makespan %d", s, res.Cycles)
		}
	}
	// Dependent segment starts after its predecessor's end.
	var seg0, seg1 *Segment
	for i := range res.Timeline {
		switch res.Timeline[i].Proc {
		case ids[0]:
			seg0 = &res.Timeline[i]
		case ids[1]:
			seg1 = &res.Timeline[i]
		}
	}
	if seg0 == nil || seg1 == nil {
		t.Fatal("missing segments")
	}
	if seg1.Start < seg0.End {
		t.Errorf("dependent segment starts at %d before predecessor ends at %d", seg1.Start, seg0.End)
	}

	out := res.FormatTimeline(60)
	if !strings.Contains(out, "core 0") || !strings.Contains(out, "core 1") {
		t.Errorf("timeline rendering missing cores:\n%s", out)
	}
	if !strings.Contains(out, "0.0") {
		t.Errorf("timeline rendering missing process label:\n%s", out)
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	g, am := singleProcGraph(t, 10, 1, 0)
	res, err := Run(g, &fifoDispatcher{}, am, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 0 {
		t.Error("timeline should be empty unless RecordTimeline is set")
	}
	if !strings.Contains(res.FormatTimeline(40), "no timeline") {
		t.Error("empty timeline should render a hint")
	}
}

func TestTimelinePreemptionSegments(t *testing.T) {
	g, am := singleProcGraph(t, 200, 8, 1)
	cfg := testConfig(1)
	cfg.RecordTimeline = true
	res, err := Run(g, &fifoDispatcher{quantum: 500}, am, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) < 2 {
		t.Fatalf("preempted run should record multiple segments, got %d", len(res.Timeline))
	}
	completed := 0
	for _, s := range res.Timeline {
		if s.Completed {
			completed++
		}
	}
	if completed != 1 {
		t.Errorf("exactly one segment should complete, got %d", completed)
	}
}

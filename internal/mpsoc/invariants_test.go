package mpsoc

import (
	"math/rand"
	"testing"

	"locsched/internal/layout"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

// randomWorkload builds a random DAG of streaming processes.
func randomWorkload(t *testing.T, rng *rand.Rand) (*taskgraph.Graph, layout.AddressMap) {
	t.Helper()
	arr := prog.MustArray("A", 4, 1<<20)
	g := taskgraph.New()
	n := 3 + rng.Intn(15)
	ids := make([]taskgraph.ProcID, n)
	for i := 0; i < n; i++ {
		lo := int64(rng.Intn(1000)) * 100
		iter := prog.Seg("i", lo, lo+int64(50+rng.Intn(400)))
		spec := prog.MustProcessSpec("p", iter, int64(rng.Intn(4)),
			prog.StreamRef(arr, prog.Read, iter, 1+int64(rng.Intn(3)), 0))
		ids[i] = taskgraph.ProcID{Task: 0, Idx: i}
		if err := g.AddProcess(&taskgraph.Process{ID: ids[i], Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(6) == 0 {
				if err := g.AddDep(ids[i], ids[j]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g, layout.MustPack(32, arr)
}

// TestEngineInvariantsRandomized checks, over random workloads and
// machine shapes, the accounting identities every run must satisfy:
// completions within [0, makespan], idle = cores×makespan − Σbusy,
// busy equals the sum of recorded segment durations, and every process
// completes exactly once.
func TestEngineInvariantsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		g, am := randomWorkload(t, rng)
		cfg := DefaultConfig()
		cfg.Cores = 1 + rng.Intn(8)
		cfg.RecordTimeline = true
		var disp Dispatcher
		quantum := int64(0)
		if rng.Intn(2) == 0 {
			quantum = int64(200 + rng.Intn(2000))
		}
		disp = &fifoDispatcher{quantum: quantum}
		res, err := Run(g, disp, am, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		if len(res.Completion) != g.Len() {
			t.Fatalf("trial %d: %d completions for %d processes", trial, len(res.Completion), g.Len())
		}
		var totalBusy int64
		for c, st := range res.PerCore {
			if st.BusyCycles < 0 {
				t.Fatalf("trial %d: core %d negative busy", trial, c)
			}
			if st.BusyCycles > res.Cycles {
				t.Fatalf("trial %d: core %d busy %d exceeds makespan %d", trial, c, st.BusyCycles, res.Cycles)
			}
			totalBusy += st.BusyCycles
		}
		wantIdle := int64(cfg.Cores)*res.Cycles - totalBusy
		if res.IdleCycles != wantIdle {
			t.Fatalf("trial %d: idle %d, want %d", trial, res.IdleCycles, wantIdle)
		}
		var segBusy int64
		completedSegs := 0
		for _, s := range res.Timeline {
			segBusy += s.End - s.Start
			if s.Completed {
				completedSegs++
			}
			if s.End > res.Cycles || s.Start < 0 {
				t.Fatalf("trial %d: segment %+v outside [0,%d]", trial, s, res.Cycles)
			}
		}
		if segBusy != totalBusy {
			t.Fatalf("trial %d: segment cycles %d != busy cycles %d", trial, segBusy, totalBusy)
		}
		if completedSegs != g.Len() {
			t.Fatalf("trial %d: %d completing segments for %d processes", trial, completedSegs, g.Len())
		}
		for id, c := range res.Completion {
			if c <= 0 || c > res.Cycles {
				t.Fatalf("trial %d: completion of %v at %d outside (0,%d]", trial, id, c, res.Cycles)
			}
			for _, p := range g.Preds(id) {
				if res.Completion[p] >= c {
					t.Fatalf("trial %d: %v completed at %d, predecessor %v at %d",
						trial, id, c, p, res.Completion[p])
				}
			}
		}
		// Cache accounting.
		if res.Total.Hits+res.Total.Misses() != res.Total.Accesses {
			t.Fatalf("trial %d: cache stats inconsistent: %+v", trial, res.Total)
		}
	}
}

// TestEngineSameWorkDifferentCores: total busy cycles on one core equal
// the single stream's cost; with more cores and no dependences the same
// accesses are issued (cache effects aside, each core's cache is cold,
// so per-process costs can only grow).
func TestEngineColdStartMonotonicity(t *testing.T) {
	build := func() (*taskgraph.Graph, layout.AddressMap) {
		arr := prog.MustArray("A", 4, 4096)
		g := taskgraph.New()
		for i := 0; i < 4; i++ {
			iter := prog.Seg("i", 0, 512)
			spec := prog.MustProcessSpec("p", iter, 1, prog.StreamRef(arr, prog.Read, iter, 1, 0))
			if err := g.AddProcess(&taskgraph.Process{ID: taskgraph.ProcID{Task: 0, Idx: i}, Spec: spec}); err != nil {
				t.Fatal(err)
			}
		}
		return g, layout.MustPack(32, arr)
	}
	// All four processes read the same 2KB: serial on one core, three of
	// four runs are warm; on four cores all are cold.
	g1, am1 := build()
	one, err := Run(g1, &fifoDispatcher{}, am1, testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	g4, am4 := build()
	four, err := Run(g4, &fifoDispatcher{}, am4, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var busy1, busy4 int64
	for _, st := range one.PerCore {
		busy1 += st.BusyCycles
	}
	for _, st := range four.PerCore {
		busy4 += st.BusyCycles
	}
	if busy4 <= busy1 {
		t.Errorf("four cold caches (%d busy cycles) should cost more than one warm core (%d)",
			busy4, busy1)
	}
	if four.Cycles >= one.Cycles {
		t.Errorf("four cores (%d makespan) should still finish sooner than one (%d)",
			four.Cycles, one.Cycles)
	}
}

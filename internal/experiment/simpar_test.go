package experiment

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// TestEffectiveSimWorkers: cell-level and intra-run parallelism share
// one CPU budget — the product never exceeds it (modulo the at-least-1
// floor that keeps a configured parallel engine selected).
func TestEffectiveSimWorkers(t *testing.T) {
	cases := []struct {
		cellWorkers, simWorkers, budget, want int
	}{
		{1, 0, 8, 0},   // SimWorkers 0: sequential oracle, always
		{1, 4, 8, 4},   // single cell: full request honored within budget
		{1, 16, 8, 8},  // single cell: clamped to the whole budget
		{2, 4, 8, 4},   // two cells split an 8-way budget evenly
		{4, 4, 2, 1},   // the oversubscription footgun: 4×4 on 2 CPUs → 1 each
		{4, 2, 2, 1},   // share floor is 1, request above it clamps down
		{8, 1, 2, 1},   // a 1-worker request always stands (async engine, no extra CPU)
		{0, 4, 2, 1},   // Workers=0 means GOMAXPROCS cells: share is 1
		{3, 2, 8, 2},   // request below the share is honored as-is
	}
	for _, c := range cases {
		if got := effectiveSimWorkers(c.cellWorkers, c.simWorkers, c.budget); got != c.want {
			t.Errorf("effectiveSimWorkers(%d, %d, %d) = %d, want %d",
				c.cellWorkers, c.simWorkers, c.budget, got, c.want)
		}
	}
}

// TestSimWorkersDeterministic: every figure the harness produces is
// bit-identical across SimWorkers 0 (sequential oracle), 1, 4, and
// NumCPU — on Figure 6, a 32-core XL point, and the ARR ablation grid
// (whose cells exercise warm wakes, quantum batching, and decay through
// the parallel engine).
func TestSimWorkersDeterministic(t *testing.T) {
	base := DefaultConfig()
	base.Workload.Scale = 1
	policies := []Policy{RS, RRS, ARR, LS, LSM}

	counts := []int{0, 1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}

	type figures struct {
		fig6, figXL *Table
		grid        *Sweep
	}
	build := func(simWorkers int) figures {
		t.Helper()
		cfg := base
		cfg.SimWorkers = simWorkers
		fig6, err := Figure6(cfg, policies)
		if err != nil {
			t.Fatalf("SimWorkers=%d: Figure6: %v", simWorkers, err)
		}
		figXL, err := Figure7XL(cfg, []XLPoint{{Cores: 32, Tasks: 8}}, policies)
		if err != nil {
			t.Fatalf("SimWorkers=%d: Figure7XL: %v", simWorkers, err)
		}
		grid, err := AblationAffinity(cfg, []int{0, 4}, []int{1, 2})
		if err != nil {
			t.Fatalf("SimWorkers=%d: AblationAffinity: %v", simWorkers, err)
		}
		return figures{fig6: fig6, figXL: figXL, grid: grid}
	}

	want := build(0)
	for _, w := range counts[1:] {
		got := build(w)
		if !reflect.DeepEqual(want.fig6, got.fig6) {
			t.Errorf("SimWorkers=%d: Figure6 diverges from sequential engine", w)
		}
		if !reflect.DeepEqual(want.figXL, got.figXL) {
			t.Errorf("SimWorkers=%d: Figure7XL diverges from sequential engine", w)
		}
		if !reflect.DeepEqual(want.grid, got.grid) {
			t.Errorf("SimWorkers=%d: affinity ablation diverges from sequential engine", w)
		}
	}
}

// TestSimWorkersOversubscription: the ISSUE's footgun scenario —
// Workers=4 combined with SimWorkers=4 on a GOMAXPROCS=2 host — must
// not multiply goroutines, and the clamped run stays bit-identical to
// the fully sequential one.
func TestSimWorkersOversubscription(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)

	if got := effectiveSimWorkers(4, 4, runtime.GOMAXPROCS(0)); got != 1 {
		t.Fatalf("effectiveSimWorkers(4, 4, GOMAXPROCS=2) = %d, want 1", got)
	}

	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	policies := []Policy{RS, RRS, ARR, LS}
	seq, err := Figure6(cfg, policies)
	if err != nil {
		t.Fatalf("sequential Figure6: %v", err)
	}
	cfg.Workers = 4
	cfg.SimWorkers = 4
	both, err := Figure6(cfg, policies)
	if err != nil {
		t.Fatalf("Workers=4 SimWorkers=4 Figure6: %v", err)
	}
	if !reflect.DeepEqual(seq, both) {
		t.Error("combined-parallelism Figure6 diverges from sequential run")
	}
}

// TestSimWorkersValidate: negative SimWorkers is rejected up front.
func TestSimWorkersValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SimWorkers = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("want validation error for SimWorkers=-1")
	} else if !strings.Contains(err.Error(), "sim workers -1") {
		t.Fatalf("unexpected error %v", err)
	}
}

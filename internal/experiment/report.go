package experiment

import (
	"fmt"
	"strings"

	"locsched/internal/workload"
)

// FormatTable renders a figure table with execution times in
// milliseconds (the paper reports seconds; our workloads are scaled-down
// synthetic equivalents, so milliseconds at the same 200 MHz clock).
func FormatTable(t *Table) string {
	var b strings.Builder
	fmt.Fprintln(&b, t.Title)
	fmt.Fprintf(&b, "%-12s", "")
	for _, p := range t.Policies {
		fmt.Fprintf(&b, "%12s", string(p))
	}
	fmt.Fprintln(&b, "   (execution time, ms)")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-12s", row.Label)
		for _, p := range t.Policies {
			r := row.Results[p]
			if r == nil {
				fmt.Fprintf(&b, "%12s", "-")
				continue
			}
			fmt.Fprintf(&b, "%12.3f", r.Seconds*1e3)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatTableMissRates renders miss-rate and conflict-miss columns for a
// table, the mechanism behind the headline times.
func FormatTableMissRates(t *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — miss rates (conflict misses)\n", t.Title)
	fmt.Fprintf(&b, "%-12s", "")
	for _, p := range t.Policies {
		fmt.Fprintf(&b, "%20s", string(p))
	}
	fmt.Fprintln(&b)
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-12s", row.Label)
		for _, p := range t.Policies {
			r := row.Results[p]
			if r == nil {
				fmt.Fprintf(&b, "%20s", "-")
				continue
			}
			fmt.Fprintf(&b, "%13.1f%% (%4d)", r.MissRate()*100, r.Conflicts)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatSweep renders a sensitivity sweep with per-point improvement of
// LS and LSM over the first policy in each point (usually RS).
func FormatSweep(s *Sweep) string {
	var b strings.Builder
	fmt.Fprintln(&b, s.Title)
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%-14s", pt.Label)
		var baseline *RunResult
		n := 0
		for _, p := range ExtendedPolicies() {
			if r, ok := pt.Results[p]; ok {
				if baseline == nil {
					baseline = r
				}
				n++
				fmt.Fprintf(&b, "  %s=%.3fms (%.1f%% miss, %d conflicts)",
					p, r.Seconds*1e3, r.MissRate()*100, r.Conflicts)
			}
		}
		if baseline != nil && n > 1 {
			if ls, ok := pt.Results[LS]; ok && baseline.Seconds > 0 && ls != baseline {
				fmt.Fprintf(&b, "  [LS saves %.1f%%]", (1-ls.Seconds/baseline.Seconds)*100)
			}
			if lsm, ok := pt.Results[LSM]; ok && baseline.Seconds > 0 && lsm != baseline {
				fmt.Fprintf(&b, "  [LSM saves %.1f%%]", (1-lsm.Seconds/baseline.Seconds)*100)
			}
			if arr, ok := pt.Results[ARR]; ok && baseline.Seconds > 0 && arr != baseline {
				warm := ""
				if tot := arr.AffineResumes + arr.Migrations; tot > 0 {
					warm = fmt.Sprintf(", %.0f%% warm", 100*float64(arr.AffineResumes)/float64(tot))
				}
				fmt.Fprintf(&b, "  [ARR saves %.1f%%%s]", (1-arr.Seconds/baseline.Seconds)*100, warm)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatTable1 renders the paper's Table 1 (application suite) with our
// realized process counts.
func FormatTable1(p workload.Params) (string, error) {
	apps, err := workload.BuildAll(p)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintln(&b, "Table 1: applications used in this study")
	fmt.Fprintf(&b, "%-10s %-42s %6s %10s\n", "Task", "Description", "Procs", "Footprint")
	for _, a := range apps {
		fmt.Fprintf(&b, "%-10s %-42s %6d %9dB\n", a.Name, a.Desc, a.Procs(), a.FootprintBytes())
	}
	return b.String(), nil
}

// FormatTable2 renders the paper's Table 2 (default simulation
// parameters) from a machine configuration.
func FormatTable2(cfg Config) string {
	m := cfg.Machine
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2: default simulation parameters")
	fmt.Fprintf(&b, "%-40s %v\n", "Number of processors", m.Cores)
	fmt.Fprintf(&b, "%-40s %s\n", "Data cache per processor", m.Cache)
	fmt.Fprintf(&b, "%-40s %d cycles\n", "Cache access latency", m.HitLatency)
	fmt.Fprintf(&b, "%-40s %d cycles\n", "Off-chip memory access latency", m.MissPenalty)
	fmt.Fprintf(&b, "%-40s %d MHz\n", "Processor speed", m.ClockMHz)
	return b.String()
}

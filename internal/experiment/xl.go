package experiment

// This file holds the large-scale evaluation scenarios. The paper stops
// at 8 cores and six concurrent tasks; the compiled-trace engines make
// much bigger settings cheap, so this adds the XL layer the ROADMAP
// calls for: generated multi-program mixes on 32–1024-core machines
// (Figure7XL over DefaultXLPoints or an XLLadder extension) and a dense
// cache-geometry × miss-penalty grid over the full Table 1 mix
// (SweepXL). Both fan cells out on the Config.Workers pool and are
// bit-identical across the flat and RLE simulation engines (enforced by
// the differential tests). The 512/1024-core points are what the blocked
// parallel sharing matrix and the incremental LocalitySchedule were
// built for: at those scales the scheduling analysis, not the cache
// simulation, used to dominate cell setup.

import (
	"fmt"

	"locsched/internal/workload"
)

// XLPoint is one machine/workload scale of the large-scale evaluation:
// a core count and the number of concurrent tasks generated for it.
type XLPoint struct {
	Cores int
	Tasks int
}

func (p XLPoint) String() string { return fmt.Sprintf("%dc/|T|=%d", p.Cores, p.Tasks) }

// DefaultXLPoints returns the standard large-scale scenario ladder:
// 32, 64, and 128 cores with proportionally growing multi-program mixes
// (tasks = cores/4, i.e. up to ~600 processes at the top point).
func DefaultXLPoints() []XLPoint {
	return []XLPoint{{Cores: 32, Tasks: 8}, {Cores: 64, Tasks: 16}, {Cores: 128, Tasks: 32}}
}

// XLLadder returns the doubling scenario ladder 32, 64, …, maxCores with
// proportionally growing generated mixes (tasks = cores/4): the
// 256/512/1024-core extension of DefaultXLPoints (XLLadder(1024) tops
// out at a 256-task mix, ~5000 processes). maxCores below 32 is
// rejected; a maxCores between rungs stops at the last doubled rung.
func XLLadder(maxCores int) ([]XLPoint, error) {
	if maxCores < 32 {
		return nil, fmt.Errorf("experiment: XL ladder max %d must be at least 32 cores", maxCores)
	}
	var pts []XLPoint
	for c := 32; c <= maxCores; c *= 2 {
		pts = append(pts, XLPoint{Cores: c, Tasks: c / 4})
	}
	return pts, nil
}

// Figure7XL scales the paper's Figure 7 to large machines: each point
// runs a generated |T|-task mix (workload.BuildMany) on a machine with
// the point's core count under every policy. Cells run concurrently on
// the Config.Workers pool.
func Figure7XL(cfg Config, points []XLPoint, policies []Policy) (*Table, error) {
	if len(points) == 0 {
		points = DefaultXLPoints()
	}
	if len(policies) == 0 {
		policies = Policies()
	}
	perPoint := make([][]*workload.App, len(points))
	cfgs := make([]Config, len(points))
	labels := make([]string, len(points))
	for i, pt := range points {
		if pt.Cores <= 0 || pt.Tasks <= 0 {
			return nil, fmt.Errorf("experiment: XL point %+v: cores and tasks must be positive", pt)
		}
		apps, err := workload.BuildMany(pt.Tasks, cfg.Workload)
		if err != nil {
			return nil, err
		}
		perPoint[i] = apps
		c := cfg
		c.Machine.Cores = pt.Cores
		cfgs[i] = c
		labels[i] = pt.String()
	}
	t := &Table{Title: "Figure 7-XL: execution times, large-scale concurrent mixes", Policies: policies}
	rows, err := runGrid(cfg.Workers, len(points), policies, func(row int, p Policy) (*RunResult, error) {
		r, err := RunMix(perPoint[row], p, cfgs[row])
		if err != nil {
			return nil, fmt.Errorf("figure 7-XL, %s/%s: %w", labels[row], p, err)
		}
		r.Workload = labels[row]
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, label := range labels {
		t.Rows = append(t.Rows, Row{Label: label, Results: rows[i]})
	}
	return t, nil
}

// SweepXL runs the dense parameter grid behind the paper's "savings are
// consistent" claim at scale: the full six-application mix under every
// (cache size × associativity × miss penalty) combination. Points are
// ordered size-major, then associativity, then penalty. Invalid
// geometries (size not divisible by block × ways) are rejected up front.
func SweepXL(cfg Config, sizes []int64, assocs []int, penalties []int64, policies []Policy) (*Sweep, error) {
	if len(sizes) == 0 || len(assocs) == 0 || len(penalties) == 0 {
		return nil, fmt.Errorf("experiment: SweepXL needs at least one size, associativity, and penalty")
	}
	if len(policies) == 0 {
		policies = Policies()
	}
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		return nil, err
	}
	var cfgs []Config
	var labels []string
	for _, sz := range sizes {
		for _, w := range assocs {
			for _, p := range penalties {
				c := cfg
				c.Machine.Cache.Size = sz
				c.Machine.Cache.Assoc = w
				c.Machine.MissPenalty = p
				if err := c.Machine.Cache.Validate(); err != nil {
					return nil, fmt.Errorf("experiment: SweepXL point %dKB/%d-way: %w", sz/1024, w, err)
				}
				cfgs = append(cfgs, c)
				labels = append(labels, fmt.Sprintf("%dKB/%dw/m%d", sz/1024, w, p))
			}
		}
	}
	points, err := runGrid(cfg.Workers, len(cfgs), policies, func(pt int, p Policy) (*RunResult, error) {
		r, err := RunMix(apps, p, cfgs[pt])
		if err != nil {
			return nil, fmt.Errorf("XL sweep, %s/%s: %w", labels[pt], p, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	s := &Sweep{Title: fmt.Sprintf("XL grid sweep (%d points: size × assoc × miss penalty)", len(cfgs))}
	for i, label := range labels {
		s.Points = append(s.Points, SweepPoint{Label: label, Results: points[i]})
	}
	return s, nil
}

package experiment

import (
	"fmt"

	"locsched/internal/mpsoc"
)

// TopoGrid parameterizes the machine-model ablation: the cross product
// of speed-class mixes, interconnect topologies, and per-hop miss
// penalties that AblationTopo sweeps against the homogeneous baseline.
type TopoGrid struct {
	// Speeds lists the speed-class specs to sweep (see
	// mpsoc.Machine.SpeedClasses), e.g. "1" and "1,4".
	Speeds []string
	// Topos lists the interconnect topologies to sweep.
	Topos []mpsoc.Topology
	// Hops lists the per-hop miss-penalty terms, in cycles.
	Hops []int64
}

// DefaultTopoGrid is the ablation's default: a uniform mix and a 4×-slow
// big.LITTLE mix, bus vs mesh, and no hop cost vs a hop cost chosen so a
// far mesh corner roughly doubles the paper's 75-cycle miss penalty.
func DefaultTopoGrid() TopoGrid {
	return TopoGrid{
		Speeds: []string{"1", "1,4"},
		Topos:  []mpsoc.Topology{mpsoc.TopoBus, mpsoc.TopoMesh},
		Hops:   []int64{0, 16},
	}
}

// AblationTopo sweeps the machine-model axis over the full concurrent
// mix: point 0 is the homogeneous baseline (the paper's machine — a
// zero-value mpsoc.Machine, which the differential suites pin
// bit-identical to the pre-Machine engines), followed by every
// behaviourally distinct cell of the grid. Cells that degenerate to the
// baseline are skipped rather than re-run: a uniform-speed bus machine
// is the baseline, and on a bus the hop penalty never contributes, so
// bus cells are deduplicated across hop values. Each point reports the
// usual policy set, so the rendered sweep shows how much distance-aware
// LS/LSM placement and bias-aware ARR wakes recover versus RRS as the
// machine grows less uniform.
func AblationTopo(cfg Config, grid TopoGrid, policies []Policy) (*Sweep, error) {
	if len(policies) == 0 {
		policies = []Policy{RRS, ARR, LS, LSM}
	}
	if len(grid.Speeds) == 0 || len(grid.Topos) == 0 || len(grid.Hops) == 0 {
		return nil, fmt.Errorf("experiment: topo grid needs at least one speed mix, topology, and hop penalty")
	}

	base := cfg
	base.Machine.Machine = mpsoc.Machine{}
	cfgs := []Config{base}
	labels := []string{"uniform/bus"}

	seen := map[mpsoc.Machine]bool{{}: true}
	for _, sp := range grid.Speeds {
		for _, topo := range grid.Topos {
			for _, hop := range grid.Hops {
				m := mpsoc.Machine{SpeedClasses: sp, Topology: topo, HopPenalty: hop}
				if err := m.Validate(); err != nil {
					return nil, err
				}
				// Canonicalize behaviourally equal cells: a bus machine
				// never pays the hop term, a zero hop penalty makes the
				// topology irrelevant, and a homogeneous cell is the
				// baseline already at point 0.
				canon := m
				if canon.Topology == mpsoc.TopoBus {
					canon.HopPenalty = 0
				}
				if canon.HopPenalty == 0 {
					canon.Topology = mpsoc.TopoBus
				}
				if canon.Homogeneous() {
					canon = mpsoc.Machine{}
				}
				if seen[canon] {
					continue
				}
				seen[canon] = true
				c := cfg
				c.Machine.Machine = canon
				cfgs = append(cfgs, c)
				labels = append(labels, fmt.Sprintf("%s/%s/h%d",
					canon.SpeedClasses, canon.Topology, canon.HopPenalty))
			}
		}
	}
	return sweepMix("machine-model ablation (speed mix × topology × hop penalty)", cfgs, labels, policies)
}

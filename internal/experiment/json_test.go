package experiment

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	tab, err := Figure6(cfg, []Policy{RS, LS})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tab); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded struct {
		Title string `json:"title"`
		Cells []struct {
			Workload string  `json:"workload"`
			Policy   string  `json:"policy"`
			Cycles   int64   `json:"cycles"`
			Millis   float64 `json:"millis"`
			MissRate float64 `json:"miss_rate"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if decoded.Title == "" {
		t.Error("missing title")
	}
	if len(decoded.Cells) != 12 { // 6 apps × 2 policies
		t.Fatalf("got %d cells, want 12", len(decoded.Cells))
	}
	for _, c := range decoded.Cells {
		if c.Cycles <= 0 || c.Millis <= 0 {
			t.Errorf("cell %s/%s has no time", c.Workload, c.Policy)
		}
		if c.MissRate <= 0 || c.MissRate >= 1 {
			t.Errorf("cell %s/%s has implausible miss rate %f", c.Workload, c.Policy, c.MissRate)
		}
	}
}

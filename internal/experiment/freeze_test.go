package experiment

import (
	"strings"
	"testing"

	"locsched/internal/prog"
	"locsched/internal/taskgraph"
	"locsched/internal/workload"
)

// TestAnalysisFreezesGraph: running a graph through the experiment
// harness freezes it, so the structural analysis cache cannot be
// invalidated by post-run mutation — the mutation fails instead.
func TestAnalysisFreezesGraph(t *testing.T) {
	app, err := workload.Build("Shape", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Workload builders freeze on construction already.
	if !app.Graph.Frozen() {
		t.Error("workload.Build returned an unfrozen graph")
	}

	// A hand-built graph is frozen by its first analysis.
	arr := prog.MustArray("fz.A", 4, 4096)
	iter := prog.Seg("i", 0, 64)
	g := taskgraph.New()
	mk := func(idx int) *taskgraph.Process {
		spec := prog.MustProcessSpec("fz.p"+string(rune('0'+idx)), iter, 1,
			prog.StreamRef(arr, prog.Read, iter, 1, int64(idx*64)))
		return &taskgraph.Process{ID: taskgraph.ProcID{Task: 9, Idx: idx}, Spec: spec}
	}
	p0, p1 := mk(0), mk(1)
	if err := g.AddProcess(p0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddProcess(p1); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = workload.Params{Scale: 1}
	if _, err := RunGraph("freeze-probe", g, []*prog.Array{arr}, LS, cfg); err != nil {
		t.Fatal(err)
	}
	if !g.Frozen() {
		t.Error("graph not frozen after an LS run (analysis was cached against it)")
	}
	if err := g.AddDep(p0.ID, p1.ID); err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Errorf("post-analysis mutation: err = %v, want frozen error", err)
	}
}

package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runCells executes fn(0), …, fn(n-1) on a bounded worker pool. Each cell
// of a figure or sweep owns its dispatcher, caches, and cursors and is
// side-effect-free, so cells are embarrassingly parallel; results are
// written into caller-owned slots indexed by cell, which keeps the
// assembled output deterministic regardless of completion order. The
// returned error is the first failing cell in cell order.
//
// workers ≤ 0 uses GOMAXPROCS; workers == 1 (or n == 1) runs inline.
func runCells(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					// Stop claiming new cells; in-flight cells finish.
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

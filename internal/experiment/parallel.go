package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runCells executes fn(0), …, fn(n-1) on a bounded worker pool. Each cell
// of a figure or sweep owns its dispatcher, caches, and cursors and is
// side-effect-free, so cells are embarrassingly parallel; results are
// written into caller-owned slots indexed by cell, which keeps the
// assembled output deterministic regardless of completion order. The
// returned error is the first failing cell in cell order.
//
// workers ≤ 0 uses GOMAXPROCS; workers == 1 (or n == 1) runs inline.
// effectiveSimWorkers resolves the intra-run engine pool size for one
// cell so that cell-level (Workers) and intra-run (SimWorkers)
// parallelism share one CPU budget instead of multiplying goroutines:
// each of the cellWorkers concurrent cells gets an equal share of the
// budget (at least 1), and simWorkers is clamped to that share.
// simWorkers <= 0 selects the sequential engine outright; cellWorkers
// <= 0 means GOMAXPROCS cells may run at once, leaving a share of 1.
// E.g. Workers=4, SimWorkers=4 on GOMAXPROCS=2 yields 1 — four
// concurrent cells each running the parallel engine single-worker —
// not 16 runnable goroutines.
func effectiveSimWorkers(cellWorkers, simWorkers, budget int) int {
	if simWorkers <= 0 {
		return 0
	}
	if cellWorkers <= 0 {
		cellWorkers = budget
	}
	share := budget / cellWorkers
	if share < 1 {
		share = 1
	}
	if simWorkers < share {
		return simWorkers
	}
	return share
}

func runCells(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					// Stop claiming new cells; in-flight cells finish.
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

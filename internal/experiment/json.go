package experiment

import (
	"encoding/json"
	"io"
)

// jsonCell is the machine-readable form of one experiment cell.
type jsonCell struct {
	Workload    string  `json:"workload"`
	Policy      string  `json:"policy"`
	Cycles      int64   `json:"cycles"`
	Millis      float64 `json:"millis"`
	MissRate    float64 `json:"miss_rate"`
	Conflicts   int64   `json:"conflict_misses"`
	Preemptions int64   `json:"preemptions"`
	// Affinity placement of resumed segments (nonzero only for
	// preemptive policies): resumed on the previous core vs migrated.
	AffineResumes int64 `json:"affine_resumes"`
	Migrations    int64 `json:"migrations"`
	Relaid        int   `json:"relaid_arrays"`
}

type jsonTable struct {
	Title string     `json:"title"`
	Cells []jsonCell `json:"cells"`
}

// WriteJSON serializes a reproduced figure for external plotting tools.
// Cells appear row by row in policy order.
func WriteJSON(w io.Writer, t *Table) error {
	out := jsonTable{Title: t.Title}
	for _, row := range t.Rows {
		for _, p := range t.Policies {
			r := row.Results[p]
			if r == nil {
				continue
			}
			out.Cells = append(out.Cells, jsonCell{
				Workload:      row.Label,
				Policy:        string(r.Policy),
				Cycles:        r.Cycles,
				Millis:        r.Seconds * 1e3,
				MissRate:      r.MissRate(),
				Conflicts:     r.Conflicts,
				Preemptions:   r.Preemptions,
				AffineResumes: r.AffineResumes,
				Migrations:    r.Migrations,
				Relaid:        r.Relaid,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

package experiment

import "locsched/internal/obs"

// RegisterMetrics publishes the experiment layer's cache counters on r
// under the locsched_experiment_* names. The series are func-backed
// reads of the same process-wide counters Stats() snapshots, so
// /metricsz and /statsz can never disagree about them.
func RegisterMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	counter := func(name, help string, read func(CacheStats) int64) {
		r.CounterFunc(name, help, func() float64 { return float64(read(Stats())) })
	}
	counter("locsched_experiment_matrix_hits_total",
		"Sharing-matrix analysis tier cache hits.",
		func(s CacheStats) int64 { return s.MatrixHits })
	counter("locsched_experiment_matrix_misses_total",
		"Sharing-matrix analysis tier cache misses.",
		func(s CacheStats) int64 { return s.MatrixMisses })
	counter("locsched_experiment_ls_hits_total",
		"LS-assignment analysis tier cache hits.",
		func(s CacheStats) int64 { return s.LSHits })
	counter("locsched_experiment_ls_misses_total",
		"LS-assignment analysis tier cache misses.",
		func(s CacheStats) int64 { return s.LSMisses })
	counter("locsched_experiment_lsm_hits_total",
		"LSM-mapping analysis tier cache hits.",
		func(s CacheStats) int64 { return s.LSMHits })
	counter("locsched_experiment_lsm_misses_total",
		"LSM-mapping analysis tier cache misses.",
		func(s CacheStats) int64 { return s.LSMMisses })
	counter("locsched_experiment_analysis_evictions_total",
		"Coherent whole-cache analysis evictions.",
		func(s CacheStats) int64 { return s.AnalysisEvictions })
	counter("locsched_experiment_runner_pool_hits_total",
		"Simulations served a pooled runner.",
		func(s CacheStats) int64 { return s.RunnerPoolHits })
	counter("locsched_experiment_intern_hits_total",
		"Content-equal workloads swapped for a canonical object family.",
		func(s CacheStats) int64 { return s.InternHits })
}

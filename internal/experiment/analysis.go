package experiment

import (
	"fmt"
	"strings"
	"sync"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/sched"
	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

// The scheduling-analysis cache. Sharing matrices, LS assignments, and
// LSM mappings are pure functions of the EPG (and, for LSM, the base
// layout and cache geometry); experiments re-run the same EPG under many
// policies, parameter points, and benchmark iterations, so recomputing
// the analysis per run dominated cells whose simulation is fast. Entries
// are keyed structurally — the ordered (process ID, spec pointer) list
// plus the edge lists — and each entry retains its graph, so a key's
// spec pointers can never alias a later, reallocated spec.
//
// The cache is bounded; when full it is cleared wholesale (analysis is
// cheap to recompute; the cap only guards unbounded growth when callers
// churn through fresh graphs, as construction-heavy benchmarks do).
var analysisCache = struct {
	sync.Mutex
	matrix map[string]*matrixEntry
	ls     map[string]*lsEntry
	lsm    map[string]*lsmEntry
}{
	matrix: make(map[string]*matrixEntry),
	ls:     make(map[string]*lsEntry),
	lsm:    make(map[string]*lsmEntry),
}

const maxAnalysisEntries = 64

type matrixEntry struct {
	g *taskgraph.Graph // retained: keeps the key's spec pointers unique
	m *sharing.Matrix
}

type lsEntry struct {
	g   *taskgraph.Graph
	asg *sched.Assignment
}

type lsmEntry struct {
	g       *taskgraph.Graph
	base    layout.AddressMap
	mapping *sched.MappingResult
}

// graphKey fingerprints the EPG structurally: every process (ID and spec
// identity) with its successor list, in deterministic order. Two graphs
// with equal keys have identical scheduling inputs even when the Graph
// values themselves are distinct (workload.Combine builds a fresh graph
// per call from shared specs).
func graphKey(g *taskgraph.Graph) string {
	var b strings.Builder
	b.Grow(32 * g.Len())
	for _, id := range g.ProcIDs() {
		fmt.Fprintf(&b, "%d.%d:%p", id.Task, id.Idx, g.Process(id).Spec)
		for _, s := range g.Succs(id) {
			fmt.Fprintf(&b, ">%d.%d", s.Task, s.Idx)
		}
		b.WriteByte(';')
	}
	return b.String()
}

// layoutKey extends a graph key with the identity of a base layout and
// cache geometry — everything the LSM mapping phase depends on beyond
// the EPG.
func layoutKey(gk string, cores int, base layout.AddressMap, geom cache.Geometry) string {
	var b strings.Builder
	b.Grow(len(gk) + 32*len(base.Arrays()))
	b.WriteString(gk)
	fmt.Fprintf(&b, "|cores=%d|geom=%d,%d,%d|", cores, geom.Size, geom.BlockSize, geom.Assoc)
	for _, arr := range base.Arrays() {
		fmt.Fprintf(&b, "%p@%d;", arr, base.Addr(arr, 0))
	}
	return b.String()
}

// cachedMatrix returns the (possibly memoized) sharing matrix of g. The
// graph is frozen first: a cached analysis is valid only for the exact
// structure it was keyed on, so post-construction mutation is rejected
// by taskgraph instead of silently invalidating entries.
func cachedMatrix(g *taskgraph.Graph, gk string) (*sharing.Matrix, error) {
	g.Freeze()
	analysisCache.Lock()
	e, ok := analysisCache.matrix[gk]
	analysisCache.Unlock()
	if ok {
		return e.m, nil
	}
	m, err := sharing.ComputeMatrix(g)
	if err != nil {
		return nil, err
	}
	analysisCache.Lock()
	if len(analysisCache.matrix) >= maxAnalysisEntries {
		analysisCache.matrix = make(map[string]*matrixEntry)
	}
	analysisCache.matrix[gk] = &matrixEntry{g: g, m: m}
	analysisCache.Unlock()
	return m, nil
}

// cachedLS returns the (possibly memoized) LS assignment for g on the
// given core count.
func cachedLS(g *taskgraph.Graph, cores int) (*sched.Assignment, error) {
	g.Freeze()
	gk := graphKey(g)
	key := fmt.Sprintf("%s|cores=%d", gk, cores)
	analysisCache.Lock()
	e, ok := analysisCache.ls[key]
	analysisCache.Unlock()
	if ok {
		return e.asg, nil
	}
	m, err := cachedMatrix(g, gk)
	if err != nil {
		return nil, err
	}
	asg, err := sched.LocalitySchedule(g, m, cores)
	if err != nil {
		return nil, err
	}
	analysisCache.Lock()
	if len(analysisCache.ls) >= maxAnalysisEntries {
		analysisCache.ls = make(map[string]*lsEntry)
	}
	analysisCache.ls[key] = &lsEntry{g: g, asg: asg}
	analysisCache.Unlock()
	return asg, nil
}

// cachedLSM returns the (possibly memoized) LSM mapping — assignment plus
// re-laid-out address map — for g on the given machine.
func cachedLSM(g *taskgraph.Graph, cores int, base layout.AddressMap, geom cache.Geometry) (*sched.MappingResult, error) {
	g.Freeze()
	gk := graphKey(g)
	key := layoutKey(gk, cores, base, geom)
	analysisCache.Lock()
	e, ok := analysisCache.lsm[key]
	analysisCache.Unlock()
	if ok {
		return e.mapping, nil
	}
	m, err := cachedMatrix(g, gk)
	if err != nil {
		return nil, err
	}
	_, mapping, err := sched.NewLSM(g, m, cores, base, geom, nil)
	if err != nil {
		return nil, err
	}
	analysisCache.Lock()
	if len(analysisCache.lsm) >= maxAnalysisEntries {
		analysisCache.lsm = make(map[string]*lsmEntry)
	}
	analysisCache.lsm[key] = &lsmEntry{g: g, base: base, mapping: mapping}
	analysisCache.Unlock()
	return mapping, nil
}

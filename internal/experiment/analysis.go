package experiment

import (
	"fmt"
	"sync"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/mpsoc"
	"locsched/internal/sched"
	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

// The scheduling-analysis cache. Sharing matrices, LS assignments, and
// LSM mappings are pure functions of the EPG (and, for LSM, the base
// layout and cache geometry); experiments re-run the same EPG under many
// policies, parameter points, and benchmark iterations, so recomputing
// the analysis per run dominated cells whose simulation is fast. Entries
// are keyed on content fingerprints (taskgraph.Content / layoutFingerprint),
// so content-equal workloads arriving as fresh objects — JSON reloads,
// rebuilt mixes — hit instead of recomputing; the intern layer guarantees
// at most one live object family per content class, so cached values
// (which embed ProcIDs, and for LSM array pointers) stay valid for every
// hit.
//
// The cache is bounded by a single budget across the three tiers, and
// eviction is coherent: when the budget is exceeded all tiers clear
// together. The tiers were previously cleared independently, so a figure
// run could evict the matrix tier mid-cell while its ls/lsm tiers
// survived, silently recomputing matrices once per remaining policy —
// clearing wholesale keeps the tiers' lifetimes aligned (analysis is
// cheap to recompute; the cap only guards unbounded growth when callers
// churn through fresh graphs, as construction-heavy benchmarks do).
var analysisCache = struct {
	sync.Mutex
	matrix map[string]*matrixEntry
	ls     map[string]*lsEntry
	lsm    map[string]*lsmEntry
	stats  analysisStats
}{
	matrix: make(map[string]*matrixEntry),
	ls:     make(map[string]*lsEntry),
	lsm:    make(map[string]*lsmEntry),
}

// maxAnalysisEntries budgets the total entry count across the matrix,
// ls, and lsm tiers. It is a variable only so eviction tests can shrink
// it; production code must treat it as a constant.
var maxAnalysisEntries = 192

// analysisStats counts per-tier hits and misses plus coherent
// evictions; the cache-behaviour tests pin figure-run hit patterns
// against it.
type analysisStats struct {
	MatrixHits, MatrixMisses int64
	LSHits, LSMisses         int64
	LSMHits, LSMMisses       int64
	Evictions                int64
}

type matrixEntry struct {
	g *taskgraph.Graph // retained: the canonical graph the matrix was computed on
	m *sharing.Matrix
}

type lsEntry struct {
	g   *taskgraph.Graph
	asg *sched.Assignment
}

type lsmEntry struct {
	g       *taskgraph.Graph
	base    layout.AddressMap
	mapping *sched.MappingResult
}

// analysisStatsSnapshot returns the current counters.
func analysisStatsSnapshot() analysisStats {
	analysisCache.Lock()
	defer analysisCache.Unlock()
	return analysisCache.stats
}

// clearAnalysisCache wipes every tier (coherently) and is also invoked
// when the intern table evicts, so analysis entries never outlive the
// canonical object family they were computed on.
func clearAnalysisCache() {
	analysisCache.Lock()
	analysisCache.matrix = make(map[string]*matrixEntry)
	analysisCache.ls = make(map[string]*lsEntry)
	analysisCache.lsm = make(map[string]*lsmEntry)
	analysisCache.Unlock()
}

// evictAnalysisIfFullLocked clears all three tiers together when the
// shared budget is exhausted. Callers hold analysisCache.Mutex.
func evictAnalysisIfFullLocked() {
	if len(analysisCache.matrix)+len(analysisCache.ls)+len(analysisCache.lsm) >= maxAnalysisEntries {
		analysisCache.matrix = make(map[string]*matrixEntry)
		analysisCache.ls = make(map[string]*lsEntry)
		analysisCache.lsm = make(map[string]*lsmEntry)
		analysisCache.stats.Evictions++
	}
}

// cachedMatrix returns the (possibly memoized) sharing matrix of g,
// building misses with the blocked parallel construction on `workers`
// goroutines (bit-identical to the sequential path for any count). The
// graph is frozen first: a cached analysis is valid only for the exact
// structure it was keyed on, so post-construction mutation is rejected
// by taskgraph instead of silently invalidating entries.
func cachedMatrix(g *taskgraph.Graph, gk string, workers int) (*sharing.Matrix, error) {
	g.Freeze()
	analysisCache.Lock()
	e, ok := analysisCache.matrix[gk]
	if ok {
		analysisCache.stats.MatrixHits++
	} else {
		analysisCache.stats.MatrixMisses++
	}
	analysisCache.Unlock()
	if ok {
		return e.m, nil
	}
	m, err := sharing.ComputeMatrixParallel(g, workers)
	if err != nil {
		return nil, err
	}
	analysisCache.Lock()
	evictAnalysisIfFullLocked()
	analysisCache.matrix[gk] = &matrixEntry{g: g, m: m}
	analysisCache.Unlock()
	return m, nil
}

// cachedLS returns the (possibly memoized) LS assignment for g on the
// given core count. biasKey/bias carry the machine-model placement hook
// (see machineBias): the key is folded into the cache key so biased and
// unbiased schedules of one graph never collide, and ("", nil) — the
// homogeneous machine — leaves both the key and the schedule exactly as
// they were before the hook existed.
func cachedLS(g *taskgraph.Graph, cores, workers int, biasKey string, bias sched.CoreBias) (*sched.Assignment, error) {
	g.Freeze()
	gk := g.Fingerprint()
	key := fmt.Sprintf("%s|cores=%d", gk, cores)
	if biasKey != "" {
		key += "|bias=" + biasKey
	}
	analysisCache.Lock()
	e, ok := analysisCache.ls[key]
	if ok {
		analysisCache.stats.LSHits++
	} else {
		analysisCache.stats.LSMisses++
	}
	analysisCache.Unlock()
	if ok {
		return e.asg, nil
	}
	m, err := cachedMatrix(g, gk, workers)
	if err != nil {
		return nil, err
	}
	asg, err := sched.LocalityScheduleBiased(g, m, cores, bias)
	if err != nil {
		return nil, err
	}
	analysisCache.Lock()
	evictAnalysisIfFullLocked()
	analysisCache.ls[key] = &lsEntry{g: g, asg: asg}
	analysisCache.Unlock()
	return asg, nil
}

// lsmKey extends a graph fingerprint with the machine shape and the base
// layout's content — everything the LSM mapping phase depends on beyond
// the EPG.
func lsmKey(gk string, cores int, base layout.AddressMap, geom cache.Geometry) string {
	return fmt.Sprintf("%s|cores=%d|geom=%d,%d,%d|%s",
		gk, cores, geom.Size, geom.BlockSize, geom.Assoc, layoutFingerprint(base))
}

// cachedLSM returns the (possibly memoized) LSM mapping — assignment plus
// re-laid-out address map — for g on the given machine. Unlike the
// matrix and ls tiers (whose values are ProcID-only and therefore valid
// for any content-equal graph), an LSM mapping embeds array and layout
// pointers, so a hit additionally requires the entry's exact (graph,
// base) objects: the intern layer makes that the common case, and the
// identity check keeps a stale-family entry (e.g. one raced in around
// an intern eviction) from ever mixing object families — it reads as a
// miss and is overwritten.
//
// A miss obtains the LS assignment through cachedLS and threads it into
// NewLSM, so LS+LSM figure columns on the same (graph, cores) run
// LocalitySchedule (and the sharing matrix behind it) exactly once,
// whichever policy's cell lands first.
func cachedLSM(g *taskgraph.Graph, cores int, base layout.AddressMap, geom cache.Geometry, workers int, biasKey string, bias sched.CoreBias) (*sched.MappingResult, error) {
	g.Freeze()
	gk := g.Fingerprint()
	key := lsmKey(gk, cores, base, geom)
	if biasKey != "" {
		key += "|bias=" + biasKey
	}
	analysisCache.Lock()
	e, ok := analysisCache.lsm[key]
	ok = ok && e.g == g && e.base == base
	if ok {
		analysisCache.stats.LSMHits++
	} else {
		analysisCache.stats.LSMMisses++
	}
	analysisCache.Unlock()
	if ok {
		return e.mapping, nil
	}
	asg, err := cachedLS(g, cores, workers, biasKey, bias)
	if err != nil {
		return nil, err
	}
	_, mapping, err := sched.NewLSM(g, nil, asg, cores, base, geom, nil)
	if err != nil {
		return nil, err
	}
	analysisCache.Lock()
	evictAnalysisIfFullLocked()
	analysisCache.lsm[key] = &lsmEntry{g: g, base: base, mapping: mapping}
	analysisCache.Unlock()
	return mapping, nil
}

// machineBias derives the scheduling layer's placement hook from the
// machine model. On a homogeneous machine it returns ("", nil), which
// leaves every cache key and schedule byte-identical to the pre-Machine
// code; otherwise it returns a closure over the per-core placement-cost
// table (mpsoc.Config.CoreCostTable — effective hit latency plus base
// miss penalty, lower is better) and a key naming everything the table
// depends on, for folding into the analysis-cache keys.
func machineBias(cfg mpsoc.Config) (string, sched.CoreBias, error) {
	if cfg.Machine.Homogeneous() {
		return "", nil, nil
	}
	costs, err := cfg.CoreCostTable()
	if err != nil {
		return "", nil, err
	}
	key := fmt.Sprintf("speeds=%s,topo=%s,hop=%d,lat=%d.%d,cores=%d",
		cfg.Machine.SpeedClasses, cfg.Machine.Topology, cfg.Machine.HopPenalty,
		cfg.HitLatency, cfg.MissPenalty, cfg.Cores)
	return key, func(core int) int64 { return costs[core] }, nil
}

package experiment

import (
	"strings"
	"testing"

	"locsched/internal/layout"
	"locsched/internal/mpsoc"
	"locsched/internal/workload"
)

// resetCachesForTest clears every content-addressed cache and its
// counters so hit-pattern assertions see only the test's own traffic.
func resetCachesForTest() {
	clearAnalysisCache()
	analysisCache.Lock()
	analysisCache.stats = analysisStats{}
	analysisCache.Unlock()
	clearRunnerPool()
	runnerPool.Lock()
	runnerPool.hits = 0
	runnerPool.Unlock()
	workloadIntern.Lock()
	workloadIntern.m = make(map[string]*internEntry)
	workloadIntern.hits = 0
	workloadIntern.Unlock()
}

const reloadSpec = `{
  "tasks": [
    {
      "name": "producer-consumer",
      "arrays": [{"name": "A", "elems": 4096}, {"name": "B", "elems": 2048}],
      "procs": [
        {"name": "produce", "iter_lo": 0, "iter_hi": 1024, "compute": 2,
         "refs": [{"array": "A", "kind": "w", "stride": 1, "offset": 0}], "deps": []},
        {"name": "consume", "iter_lo": 0, "iter_hi": 1024, "compute": 1,
         "refs": [{"array": "A", "kind": "r", "stride": 1, "offset": 0},
                  {"array": "B", "kind": "w", "stride": 1, "offset": 0}], "deps": [0]}
      ]
    },
    {
      "name": "scanner",
      "arrays": [{"name": "C", "elems": 8192}],
      "procs": [
        {"name": "scan", "iter_lo": 0, "iter_hi": 2048, "compute": 1,
         "refs": [{"array": "C", "kind": "r", "stride": 2, "offset": 1}], "deps": []}
      ]
    }
  ]
}`

// TestRunnerPoolContentAddressedReload is the regression test for the
// ROADMAP-noted pooling bug: loading the same JSON task set twice used
// to produce pointer-distinct graphs that missed every pool. With
// content-addressed keys (plus workload interning) the second load's
// runs must be served from the pools populated by the first.
func TestRunnerPoolContentAddressedReload(t *testing.T) {
	resetCachesForTest()
	cfg := DefaultConfig()
	cfg.Machine.Cores = 4

	run := func() *RunResult {
		t.Helper()
		apps, err := workload.FromJSON(strings.NewReader(reloadSpec))
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunMix(apps, LS, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	first := run()
	if h := runnerPoolHits(); h != 0 {
		t.Fatalf("first load already hit the runner pool %d times", h)
	}
	second := run()
	if h := runnerPoolHits(); h != 1 {
		t.Errorf("second JSON load: runner pool hits = %d, want 1 (reload must reuse the parked runner)", h)
	}
	st := analysisStatsSnapshot()
	if st.LSMisses != 1 || st.LSHits != 1 {
		t.Errorf("LS analysis: misses=%d hits=%d, want 1 miss (first load) and 1 hit (reload)",
			st.LSMisses, st.LSHits)
	}
	if first.Cycles != second.Cycles || first.Hits != second.Hits || first.Misses != second.Misses {
		t.Errorf("reload changed results: %+v vs %+v", first, second)
	}

	workloadIntern.Lock()
	interned := workloadIntern.hits
	workloadIntern.Unlock()
	if interned == 0 {
		t.Error("second load was not interned onto the first load's canonical workload")
	}
}

// TestAnalysisHitPatternFigure6 pins the analysis-cache hit pattern of a
// figure run: each application's matrix and LS assignment are computed
// exactly once (the LS cell misses them in, the LSM cell reuses the
// assignment through cachedLS instead of recomputing LocalitySchedule),
// and a complete re-run — which rebuilds every app as fresh,
// content-equal objects — is served entirely from the ls/lsm tiers
// without touching the matrix tier again.
func TestAnalysisHitPatternFigure6(t *testing.T) {
	resetCachesForTest()
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	cfg.Workers = 1 // sequential cells: the hit pattern is deterministic

	if _, err := Figure6(cfg, nil); err != nil {
		t.Fatal(err)
	}
	st := analysisStatsSnapshot()
	want := analysisStats{
		MatrixMisses: 6, // one matrix per app, computed by the LS cell
		LSMisses:     6,
		LSHits:       6, // the LSM cell reuses the cached assignment
		LSMMisses:    6,
	}
	if st != want {
		t.Fatalf("first fig6 run: stats %+v, want %+v", st, want)
	}

	if _, err := Figure6(cfg, nil); err != nil {
		t.Fatal(err)
	}
	st = analysisStatsSnapshot()
	want.LSHits, want.LSMHits = want.LSHits+6, 6 // second run: pure hits, no matrix traffic
	if st != want {
		t.Fatalf("second fig6 run: stats %+v, want %+v (no analysis may be recomputed)", st, want)
	}
	if st.Evictions != 0 {
		t.Fatalf("fig6 runs evicted the analysis cache %d times", st.Evictions)
	}
}

// TestLSMReusesCachedAssignment is the regression test for the
// ROADMAP-noted NewLSM recomputation: across an LS column and an LSM
// column over the same (graph, cores), LocalitySchedule must run exactly
// once — the LSM cell obtains the assignment from the ls tier — in
// either policy order.
func TestLSMReusesCachedAssignment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	cfg.Workers = 1

	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	app := apps[0]

	for _, order := range [][]Policy{{LS, LSM}, {LSM, LS}} {
		resetCachesForTest()
		for _, p := range order {
			if _, err := RunApp(app, p, cfg); err != nil {
				t.Fatalf("%v/%s: %v", order, p, err)
			}
		}
		st := analysisStatsSnapshot()
		if st.LSMisses != 1 {
			t.Errorf("order %v: LocalitySchedule computed %d times, want exactly 1 (LSM must reuse the cached LS assignment)",
				order, st.LSMisses)
		}
		if st.LSHits != 1 {
			t.Errorf("order %v: LS-tier hits = %d, want 1 (the second policy's lookup)", order, st.LSHits)
		}
		if st.MatrixMisses != 1 {
			t.Errorf("order %v: sharing matrix computed %d times, want 1", order, st.MatrixMisses)
		}
	}
	resetCachesForTest()
}

// TestAnalysisCacheCoherentEviction: when the shared budget overflows,
// all three tiers clear together — the matrix tier can no longer be
// evicted out from under surviving ls/lsm entries.
func TestAnalysisCacheCoherentEviction(t *testing.T) {
	resetCachesForTest()
	orig := maxAnalysisEntries
	maxAnalysisEntries = 3
	defer func() { maxAnalysisEntries = orig; resetCachesForTest() }()

	app1, err := workload.Build("Shape", 0, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	app2, err := workload.Build("Track", 1, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	base1, err := layout.Pack(32, app1.Arrays...)
	if err != nil {
		t.Fatal(err)
	}
	geom := mpsoc.DefaultConfig().Cache

	// app1 fills the budget: matrix + ls + lsm = 3 entries.
	if _, err := cachedLS(app1.Graph, 4, 1, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cachedLSM(app1.Graph, 4, base1, geom, 1, "", nil); err != nil {
		t.Fatal(err)
	}
	sizes := func() (m, ls, lsm int) {
		analysisCache.Lock()
		defer analysisCache.Unlock()
		return len(analysisCache.matrix), len(analysisCache.ls), len(analysisCache.lsm)
	}
	if m, ls, lsm := sizes(); m != 1 || ls != 1 || lsm != 1 {
		t.Fatalf("after app1: tiers (%d,%d,%d), want (1,1,1)", m, ls, lsm)
	}

	// app2's matrix insert overflows the budget: every tier must clear
	// together before the insert, leaving exactly app2's fresh entries.
	if _, err := cachedLS(app2.Graph, 4, 1, "", nil); err != nil {
		t.Fatal(err)
	}
	if m, ls, lsm := sizes(); m != 1 || ls != 1 || lsm != 0 {
		t.Fatalf("after coherent eviction: tiers (%d,%d,%d), want (1,1,0) — app1 entries must not survive in any tier", m, ls, lsm)
	}
	if st := analysisStatsSnapshot(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// The evicted graph recomputes coherently: a hit pattern consistent
	// with an empty cache, not a half-evicted one. (Hits before this
	// point are legitimate — cachedLSM reuses app1's LS assignment.)
	before := analysisStatsSnapshot()
	if _, err := cachedLS(app1.Graph, 4, 1, "", nil); err != nil {
		t.Fatal(err)
	}
	st := analysisStatsSnapshot()
	if st.LSHits != before.LSHits {
		t.Fatalf("app1 LS after eviction reported a hit; tiers evicted incoherently (stats %+v)", st)
	}
}

package experiment

import (
	"testing"

	"locsched/internal/mpsoc"
	"locsched/internal/workload"
)

// topoTestConfig returns a minimum-scale config so ablation cells stay
// cheap.
func topoTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	return cfg
}

// TestAblationTopoDedup pins the grid canonicalization: the default grid
// is 2×2×2 = 8 cells, but bus cells collapse across hop values, zero-hop
// cells collapse across topologies, and homogeneous cells collapse into
// the baseline — leaving the baseline plus three distinct machines.
func TestAblationTopoDedup(t *testing.T) {
	s, err := AblationTopo(topoTestConfig(), DefaultTopoGrid(), []Policy{RRS, LS})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"uniform/bus", "1/mesh/h16", "1,4/bus/h0", "1,4/mesh/h16"}
	if len(s.Points) != len(want) {
		t.Fatalf("got %d points, want %d", len(s.Points), len(want))
	}
	for i, label := range want {
		if s.Points[i].Label != label {
			t.Errorf("point %d label = %q, want %q", i, s.Points[i].Label, label)
		}
	}
}

// TestAblationTopoBaselineIsHomogeneous: point 0 must equal a plain
// homogeneous mix run cell-for-cell — the ablation's anchor is the
// paper's machine, not a re-parameterized variant.
func TestAblationTopoBaselineIsHomogeneous(t *testing.T) {
	cfg := topoTestConfig()
	grid := TopoGrid{Speeds: []string{"1,2"}, Topos: []mpsoc.Topology{mpsoc.TopoMesh}, Hops: []int64{8}}
	s, err := AblationTopo(cfg, grid, []Policy{RRS, LSM})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(s.Points))
	}
	base := cfg
	base.Machine.Machine = mpsoc.Machine{}
	apps, err := workload.BuildAll(base.Workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{RRS, LSM} {
		want, err := RunMix(apps, p, base)
		if err != nil {
			t.Fatal(err)
		}
		got := s.Points[0].Results[p]
		if got == nil || got.Cycles != want.Cycles || got.Misses != want.Misses {
			t.Errorf("%s: baseline point diverges from homogeneous mix run: %+v vs %+v", p, got, want)
		}
	}
}

// TestAblationTopoHeterogeneityCosts: on the heterogeneous mesh cell
// every policy's makespan is at least the homogeneous baseline's (slower
// cores and farther memory can only hurt), and the distance-aware
// policies recover part of the gap: LSM stays ahead of RRS.
func TestAblationTopoHeterogeneityCosts(t *testing.T) {
	grid := TopoGrid{Speeds: []string{"1,4"}, Topos: []mpsoc.Topology{mpsoc.TopoMesh}, Hops: []int64{16}}
	s, err := AblationTopo(topoTestConfig(), grid, []Policy{RRS, LSM})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(s.Points))
	}
	baseline, hetero := s.Points[0], s.Points[1]
	for _, p := range []Policy{RRS, LSM} {
		if hetero.Results[p].Cycles < baseline.Results[p].Cycles {
			t.Errorf("%s: heterogeneous cell faster than baseline (%d < %d cycles)",
				p, hetero.Results[p].Cycles, baseline.Results[p].Cycles)
		}
	}
	if lsm, rrs := hetero.Results[LSM].Cycles, hetero.Results[RRS].Cycles; lsm >= rrs {
		t.Errorf("LSM (%d cycles) does not beat RRS (%d cycles) on the heterogeneous mesh cell", lsm, rrs)
	}
}

// TestAblationTopoErrors pins the input validation: empty grid axes and
// invalid machine specs are rejected.
func TestAblationTopoErrors(t *testing.T) {
	cfg := topoTestConfig()
	bad := []TopoGrid{
		{},
		{Speeds: []string{"1"}, Topos: []mpsoc.Topology{mpsoc.TopoBus}},
		{Speeds: []string{"1"}, Hops: []int64{0}},
		{Topos: []mpsoc.Topology{mpsoc.TopoBus}, Hops: []int64{0}},
		{Speeds: []string{"zero"}, Topos: []mpsoc.Topology{mpsoc.TopoBus}, Hops: []int64{0}},
		{Speeds: []string{"1"}, Topos: []mpsoc.Topology{mpsoc.TopoBus}, Hops: []int64{-1}},
	}
	for i, grid := range bad {
		if _, err := AblationTopo(cfg, grid, nil); err == nil {
			t.Errorf("grid %d: AblationTopo accepted %+v", i, grid)
		}
	}
}

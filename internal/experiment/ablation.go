package experiment

import (
	"fmt"

	"locsched/internal/cache"
	"locsched/internal/layout"
	"locsched/internal/mpsoc"
	"locsched/internal/sched"
	"locsched/internal/sharing"
	"locsched/internal/workload"
)

// The ablations quantify the implementation decisions DESIGN.md §7 calls
// out, plus the related-work comparison the paper's Section 5 discusses
// (hardware prime-hash indexing vs. LSM's software re-layout).

// AblationStaticMode runs the LS schedule for the first mixSize
// applications under each runtime interpretation of the static
// assignment: strict in-order, skip-blocked, and steal-when-idle.
func AblationStaticMode(cfg Config, mixSize int) (*Sweep, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sweep{Title: fmt.Sprintf("static dispatch mode ablation (|T|=%d, LS)", mixSize)}
	for _, mode := range []sched.StaticMode{sched.StrictOrder, sched.SkipBlocked, sched.StealWhenIdle} {
		apps, err := workload.BuildAll(cfg.Workload)
		if err != nil {
			return nil, err
		}
		if mixSize > len(apps) {
			mixSize = len(apps)
		}
		epg, arrays, err := workload.Combine(apps[:mixSize]...)
		if err != nil {
			return nil, err
		}
		base, err := layout.Pack(cfg.Align, arrays...)
		if err != nil {
			return nil, err
		}
		m, err := sharing.ComputeMatrix(epg)
		if err != nil {
			return nil, err
		}
		asg, err := sched.LocalitySchedule(epg, m, cfg.Machine.Cores)
		if err != nil {
			return nil, err
		}
		disp := sched.NewStaticMode("LS", asg, mode)
		res, err := mpsoc.Run(epg, disp, base, cfg.Machine)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, SweepPoint{
			Label: mode.String(),
			Results: map[Policy]*RunResult{
				LS: {
					Workload:  fmt.Sprintf("|T|=%d", mixSize),
					Policy:    LS,
					Cycles:    res.Cycles,
					Seconds:   res.Seconds,
					Hits:      res.Total.Hits,
					Misses:    res.Total.Misses(),
					Conflicts: res.Total.Conflict,
				},
			},
		})
	}
	return s, nil
}

// AblationReplacement reruns the full mix under LS with each cache
// replacement policy.
func AblationReplacement(cfg Config) (*Sweep, error) {
	s := &Sweep{Title: "cache replacement ablation (|T|=6, LS)"}
	for _, repl := range []cache.Replacement{cache.LRU, cache.FIFO, cache.RandomRepl} {
		c := cfg
		c.Machine.Replacement = repl
		apps, err := workload.BuildAll(c.Workload)
		if err != nil {
			return nil, err
		}
		r, err := RunMix(apps, LS, c)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, SweepPoint{
			Label:   repl.String(),
			Results: map[Policy]*RunResult{LS: r},
		})
	}
	return s, nil
}

// GreedyQualityRow compares the Figure 3 greedy's static objective (total
// successive-pair sharing) against the exact optimum on one application.
type GreedyQualityRow struct {
	App     string
	Procs   int
	Greedy  int64
	Optimal int64
}

// Percent returns the greedy's fraction of the optimum (100 when the
// optimum is zero).
func (r GreedyQualityRow) Percent() float64 {
	if r.Optimal == 0 {
		return 100
	}
	return 100 * float64(r.Greedy) / float64(r.Optimal)
}

// GreedyQuality measures the Figure 3 greedy against the exact
// maximum-sharing schedule on every Table 1 application small enough for
// the exponential solver (Shape and Track at the usual core counts).
// The paper notes its greedy "does not generate the best results in all
// cases"; this quantifies the gap on the suite itself.
func GreedyQuality(cfg Config, cores int) ([]GreedyQualityRow, error) {
	if cores <= 0 {
		cores = cfg.Machine.Cores
	}
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		return nil, err
	}
	var rows []GreedyQualityRow
	for _, app := range apps {
		if app.Procs() > sched.MaxOptimalProcs {
			continue
		}
		m, err := sharing.ComputeMatrix(app.Graph)
		if err != nil {
			return nil, err
		}
		greedyAsg, err := sched.LocalitySchedule(app.Graph, m, cores)
		if err != nil {
			return nil, err
		}
		_, optTotal, err := sched.OptimalSchedule(app.Graph, m, cores)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GreedyQualityRow{
			App:     app.Name,
			Procs:   app.Procs(),
			Greedy:  sched.SharingOf(greedyAsg, m),
			Optimal: optTotal,
		})
	}
	return rows, nil
}

// FormatGreedyQuality renders the greedy-vs-optimal comparison.
func FormatGreedyQuality(rows []GreedyQualityRow, cores int) string {
	out := fmt.Sprintf("greedy (Figure 3) vs exact maximum-sharing schedule (%d cores)\n", cores)
	out += fmt.Sprintf("%-10s %6s %14s %14s %8s\n", "Task", "Procs", "Greedy (B)", "Optimal (B)", "Quality")
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %6d %14d %14d %7.1f%%\n", r.App, r.Procs, r.Greedy, r.Optimal, r.Percent())
	}
	return out
}

// AblationIndexing compares conflict-avoidance approaches on the full
// mix: conventional modulo indexing under LS and LSM (software
// re-layout) versus the hardware prime hashes of the paper's related
// work [5] under plain LS.
func AblationIndexing(cfg Config) (*Sweep, error) {
	s := &Sweep{Title: "conflict avoidance: software re-layout (LSM) vs prime-hash indexing (|T|=6)"}
	type variant struct {
		label  string
		ix     cache.Indexing
		policy Policy
	}
	for _, v := range []variant{
		{"modulo+LS", cache.ModuloIndexing, LS},
		{"modulo+LSM", cache.ModuloIndexing, LSM},
		{"prime-mod+LS", cache.PrimeModuloIndexing, LS},
		{"prime-disp+LS", cache.PrimeDisplacementIndexing, LS},
	} {
		c := cfg
		c.Machine.Indexing = v.ix
		apps, err := workload.BuildAll(c.Workload)
		if err != nil {
			return nil, err
		}
		r, err := RunMix(apps, v.policy, c)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, SweepPoint{
			Label:   v.label,
			Results: map[Policy]*RunResult{v.policy: r},
		})
	}
	return s, nil
}

package experiment

import (
	"fmt"
	"strings"
	"sync"

	"locsched/internal/layout"
	"locsched/internal/mpsoc"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
	"locsched/internal/workload"
)

// Runner reuse. mpsoc.NewRunner builds per-core caches and trace
// cursors; at 128+ cores that construction (and the garbage it leaves)
// rivals the simulation itself, and experiments re-run the same
// (graph, layout, machine) triple once per policy, parameter point, and
// benchmark iteration. Runners reset cheaply between runs, so finished
// cells park theirs here and later cells with the same key take it over
// instead of rebuilding. Keys are content-addressed — the graph and
// address-map fingerprints of fingerprint.go plus the comparable machine
// config — so content-equal workloads arriving as fresh objects (JSON
// reloads via LoadApps, rebuilt mixes) reuse parked runners instead of
// missing every pool, which pointer-identity keys did. The intern layer
// keeps one live object family per content class, which is what makes
// the content key hit; object consistency itself is enforced per entry
// (pooledRunner's identity check), so no interleaving of interning and
// eviction can wire a runner to a foreign object family.
//
// The pool is bounded; when full it is cleared wholesale (runners are
// cheap to rebuild, the cap only guards retained memory under churn).
var runnerPool = struct {
	sync.Mutex
	m    map[runnerKey][]pooledRunner
	n    int
	hits int64
}{m: make(map[runnerKey][]pooledRunner)}

type runnerKey struct {
	gfp  string
	amfp string
	cfg  mpsoc.Config
}

// pooledRunner retains the exact objects the runner was built on: a
// content-keyed hit additionally requires identity, so a stale-family
// runner (e.g. parked around an intern eviction) is discarded instead
// of being wired to a different object family.
type pooledRunner struct {
	r  *mpsoc.Runner
	g  *taskgraph.Graph
	am layout.AddressMap
}

const maxPooledRunners = 64

// clearRunnerPool empties the pool; invoked on intern eviction so parked
// runners never outlive the canonical object family they were built on.
func clearRunnerPool() {
	runnerPool.Lock()
	runnerPool.m = make(map[runnerKey][]pooledRunner)
	runnerPool.n = 0
	runnerPool.Unlock()
}

// runnerPoolHits returns the number of takeRunner calls served from the
// pool (the content-addressing regression tests pin it).
func runnerPoolHits() int64 {
	runnerPool.Lock()
	defer runnerPool.Unlock()
	return runnerPool.hits
}

// takeRunner returns a pooled runner for the triple or builds one. A
// parked runner is reused only when it was built on exactly the objects
// asked for (see pooledRunner); mismatched entries are dropped.
func takeRunner(g *taskgraph.Graph, am layout.AddressMap, cfg mpsoc.Config) (*mpsoc.Runner, error) {
	key := runnerKey{g.Fingerprint(), layoutFingerprint(am), cfg}
	runnerPool.Lock()
	for rs := runnerPool.m[key]; len(rs) > 0; rs = runnerPool.m[key] {
		p := rs[len(rs)-1]
		runnerPool.m[key] = rs[:len(rs)-1]
		runnerPool.n--
		if p.g == g && p.am == am {
			runnerPool.hits++
			runnerPool.Unlock()
			return p.r, nil
		}
	}
	runnerPool.Unlock()
	return mpsoc.NewRunner(g, am, cfg)
}

// putRunner parks a runner for reuse.
func putRunner(g *taskgraph.Graph, am layout.AddressMap, cfg mpsoc.Config, r *mpsoc.Runner) {
	key := runnerKey{g.Fingerprint(), layoutFingerprint(am), cfg}
	runnerPool.Lock()
	if runnerPool.n >= maxPooledRunners {
		runnerPool.m = make(map[runnerKey][]pooledRunner)
		runnerPool.n = 0
	}
	runnerPool.m[key] = append(runnerPool.m[key], pooledRunner{r: r, g: g, am: am})
	runnerPool.n++
	runnerPool.Unlock()
}

// Mix and base-layout memoization. workload.Combine and layout.Pack are
// pure functions of their (pointer-identified) inputs; repeated cells
// over the same app set must receive the *same* graph, arrays, and base
// layout so that the analysis cache and the runner pool key on stable
// identities instead of rebuilding per cell.
var mixCache = struct {
	sync.Mutex
	m map[string]*mixEntry
}{m: make(map[string]*mixEntry)}

type mixEntry struct {
	apps   []*workload.App // retained: keeps the key's pointers unique
	epg    *taskgraph.Graph
	arrays []*prog.Array
}

const maxMixEntries = 64

// mixKey identifies an ordered application set by pointer identity.
func mixKey(apps []*workload.App) string {
	var b strings.Builder
	b.Grow(20 * len(apps))
	for _, a := range apps {
		fmt.Fprintf(&b, "%p;", a)
	}
	return b.String()
}

// cachedCombine returns the (possibly memoized) merged EPG and array
// list for the app set.
func cachedCombine(apps []*workload.App) (*taskgraph.Graph, []*prog.Array, error) {
	key := mixKey(apps)
	mixCache.Lock()
	e, ok := mixCache.m[key]
	mixCache.Unlock()
	if ok {
		return e.epg, e.arrays, nil
	}
	epg, arrays, err := workload.Combine(apps...)
	if err != nil {
		return nil, nil, err
	}
	mixCache.Lock()
	if prior, ok := mixCache.m[key]; ok {
		e = prior
	} else {
		if len(mixCache.m) >= maxMixEntries {
			mixCache.m = make(map[string]*mixEntry)
		}
		e = &mixEntry{apps: append([]*workload.App(nil), apps...), epg: epg, arrays: arrays}
		mixCache.m[key] = e
	}
	mixCache.Unlock()
	return e.epg, e.arrays, nil
}

var packCache = struct {
	sync.Mutex
	m map[string]*packEntry
}{m: make(map[string]*packEntry)}

type packEntry struct {
	arrays []*prog.Array
	base   *layout.Packed
}

const maxPackEntries = 64

// cachedPack returns the (possibly memoized) packed base layout of the
// array list under the alignment.
func cachedPack(align int64, arrays []*prog.Array) (*layout.Packed, error) {
	var b strings.Builder
	b.Grow(16 + 20*len(arrays))
	fmt.Fprintf(&b, "a%d;", align)
	for _, arr := range arrays {
		fmt.Fprintf(&b, "%p;", arr)
	}
	key := b.String()
	packCache.Lock()
	e, ok := packCache.m[key]
	packCache.Unlock()
	if ok {
		return e.base, nil
	}
	base, err := layout.Pack(align, arrays...)
	if err != nil {
		return nil, err
	}
	packCache.Lock()
	if prior, ok := packCache.m[key]; ok {
		e = prior
	} else {
		if len(packCache.m) >= maxPackEntries {
			packCache.m = make(map[string]*packEntry)
		}
		e = &packEntry{arrays: append([]*prog.Array(nil), arrays...), base: base}
		packCache.m[key] = e
	}
	packCache.Unlock()
	return e.base, nil
}

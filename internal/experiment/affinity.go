package experiment

import (
	"fmt"

	"locsched/internal/workload"
)

// AblationAffinity sweeps the two levers of the ARR policy family — the
// affinity window (how deep a free core looks into the ready queue for
// a warm process) and the quantum batch (how many quanta a warm resume
// is granted) — on the full six-application mix, with RRS as the shared
// per-point baseline. The w=0 k=1 point is ARR degenerated to RRS and
// must match the baseline exactly (the differential tests hold this at
// the bit level); every other point shows what affinity alone, batching
// alone, or both buy. Cells fan out on the Config.Workers pool.
func AblationAffinity(cfg Config, windows []int, batches []int) (*Sweep, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(windows) == 0 {
		windows = []int{0, 1, 4, 8, 16, 64}
	}
	if len(batches) == 0 {
		batches = []int{1, 4}
	}
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		return nil, err
	}

	type gridPoint struct {
		window, batch int
	}
	var pts []gridPoint
	var labels []string
	for _, k := range batches {
		for _, w := range windows {
			pts = append(pts, gridPoint{window: w, batch: k})
			labels = append(labels, fmt.Sprintf("w=%d k=%d", w, k))
		}
	}
	// Cell 0 is the shared RRS baseline; it rides the same worker pool
	// as the ARR grid (it is the most expensive single cell, so running
	// it serially up front would leave the pool idle for its duration).
	cells := make([]*RunResult, len(pts)+1)
	err = runCells(cfg.Workers, len(cells), func(i int) error {
		if i == 0 {
			r, err := RunMix(apps, RRS, cfg)
			if err != nil {
				return fmt.Errorf("affinity ablation, RRS baseline: %w", err)
			}
			cells[0] = r
			return nil
		}
		c := cfg
		c.Affinity = pts[i-1].window
		c.QBatch = pts[i-1].batch
		r, err := RunMix(apps, ARR, c)
		if err != nil {
			return fmt.Errorf("affinity ablation, %s: %w", labels[i-1], err)
		}
		cells[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	s := &Sweep{Title: fmt.Sprintf("ARR affinity ablation (|T|=%d, quantum %d, vs RRS)", len(apps), cfg.Quantum)}
	for i, label := range labels {
		results := map[Policy]*RunResult{RRS: cells[0], ARR: cells[i+1]}
		s.Points = append(s.Points, SweepPoint{Label: label, Results: results})
	}
	return s, nil
}

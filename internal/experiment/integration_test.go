package experiment

import (
	"fmt"
	"testing"

	"locsched/internal/workload"
)

// TestIntegrationMatrix runs every application under every policy at two
// workload scales and checks cross-policy invariants: every process
// completes, total access counts agree across policies (the work is the
// same, only the order differs), and results are reproducible.
func TestIntegrationMatrix(t *testing.T) {
	for _, scale := range []int{1, 3} {
		scale := scale
		t.Run(fmt.Sprintf("scale=%d", scale), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Workload.Scale = scale
			for _, name := range workload.Names() {
				name := name
				t.Run(name, func(t *testing.T) {
					var accesses []int64
					for _, p := range ExtendedPolicies() {
						app, err := workload.Build(name, 0, cfg.Workload)
						if err != nil {
							t.Fatal(err)
						}
						r, err := RunApp(app, p, cfg)
						if err != nil {
							t.Fatalf("%s: %v", p, err)
						}
						if r.Cycles <= 0 {
							t.Errorf("%s: no cycles", p)
						}
						accesses = append(accesses, r.Hits+r.Misses)
					}
					for i := 1; i < len(accesses); i++ {
						if accesses[i] != accesses[0] {
							t.Errorf("policy %v issued %d accesses, policy %v issued %d",
								ExtendedPolicies()[i], accesses[i], ExtendedPolicies()[0], accesses[0])
						}
					}
				})
			}
		})
	}
}

// TestIntegrationCoreCounts runs the |T|=3 mix on machines from 1 to 16
// cores: every run completes, and LS on more cores is never slower than
// LS on fewer (work conservation).
func TestIntegrationCoreCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	var prev int64 = 1 << 62
	for _, cores := range []int{1, 2, 4, 8, 16} {
		c := cfg
		c.Machine.Cores = cores
		apps, err := workload.BuildAll(c.Workload)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunMix(apps[:3], LS, c)
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if r.Cycles > prev+prev/50 { // allow 2% noise from layout/order effects
			t.Errorf("%d cores (%d cycles) should not be slower than fewer cores (%d cycles)",
				cores, r.Cycles, prev)
		}
		prev = r.Cycles
	}
}

// TestIntegrationTinyCaches: the simulator must stay correct (if slow)
// with pathologically small caches.
func TestIntegrationTinyCaches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	cfg.Machine.Cache.Size = 512 // 8 sets × 2 ways × 32B
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Policies() {
		r, err := RunApp(apps[3], p, cfg) // Shape
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if r.MissRate() < 0.05 {
			t.Errorf("%s: a 512B cache should miss a lot, got %.1f%%", p, r.MissRate()*100)
		}
	}
}

// TestIntegrationSingleCore: on one core every policy serializes the
// same work; makespans may differ only through cache-order effects, and
// dependences must still hold.
func TestIntegrationSingleCore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	cfg.Machine.Cores = 1
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Policies() {
		r, err := RunApp(apps[0], p, cfg)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if r.Cycles <= 0 {
			t.Errorf("%s: no cycles", p)
		}
	}
}

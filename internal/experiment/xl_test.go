package experiment

import (
	"reflect"
	"testing"

	"locsched/internal/workload"
)

// xlTestConfig keeps the XL differential tests fast: scale-1 workloads,
// sequential cells.
func xlTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Workload = workload.Params{Scale: 1}
	cfg.Workers = 1
	return cfg
}

// runBothEngines runs fn under the flat-stream and RLE engines and
// fails the test unless the results are deeply identical.
func runBothEngines[T any](t *testing.T, name string, cfg Config, fn func(Config) (T, error)) {
	t.Helper()
	flatCfg := cfg
	flatCfg.Machine.FlatStreams = true
	flat, err := fn(flatCfg)
	if err != nil {
		t.Fatalf("%s (flat engine): %v", name, err)
	}
	rleCfg := cfg
	rleCfg.Machine.FlatStreams = false
	rle, err := fn(rleCfg)
	if err != nil {
		t.Fatalf("%s (RLE engine): %v", name, err)
	}
	if !reflect.DeepEqual(flat, rle) {
		t.Errorf("%s: flat and RLE engines diverge:\nflat: %+v\nrle:  %+v", name, flat, rle)
	}
}

// TestFigureOutputsFlatVsRLE asserts the acceptance criterion end to
// end: every figure, sweep, and ablation harness produces identical
// output under the flat-stream and RLE-coalesced engines.
func TestFigureOutputsFlatVsRLE(t *testing.T) {
	cfg := xlTestConfig()
	runBothEngines(t, "Figure6", cfg, func(c Config) (*Table, error) { return Figure6(c, nil) })
	runBothEngines(t, "Figure7", cfg, func(c Config) (*Table, error) { return Figure7(c, nil) })
	runBothEngines(t, "SweepCacheSize", cfg, func(c Config) (*Sweep, error) {
		return SweepCacheSize(c, []int64{4 << 10, 16 << 10}, []Policy{RS, LS, LSM})
	})
	runBothEngines(t, "SweepQuantum", cfg, func(c Config) (*Sweep, error) {
		return SweepQuantum(c, []int64{512, 8192})
	})
	// The replacement ablation additionally exercises the FIFO and
	// random-replacement paths of the batched cache entry points, the
	// indexing ablation the non-modulo set hash, and the static-mode
	// ablation the work-stealing dispatcher.
	runBothEngines(t, "AblationReplacement", cfg, func(c Config) (*Sweep, error) {
		return AblationReplacement(c)
	})
	runBothEngines(t, "AblationIndexing", cfg, func(c Config) (*Sweep, error) {
		return AblationIndexing(c)
	})
	runBothEngines(t, "AblationStaticMode", cfg, func(c Config) (*Sweep, error) {
		return AblationStaticMode(c, 3)
	})
}

// TestFigure7XLFlatVsRLE: the large-scale mixes are bit-identical across
// engines too (a 32-core point keeps the test quick; the full ladder
// runs in the benchmarks and the CLI).
func TestFigure7XLFlatVsRLE(t *testing.T) {
	cfg := xlTestConfig()
	points := []XLPoint{{Cores: 32, Tasks: 8}}
	runBothEngines(t, "Figure7XL", cfg, func(c Config) (*Table, error) {
		return Figure7XL(c, points, nil)
	})
}

// TestSweepXLFlatVsRLE: a reduced dense grid is bit-identical across
// engines.
func TestSweepXLFlatVsRLE(t *testing.T) {
	cfg := xlTestConfig()
	runBothEngines(t, "SweepXL", cfg, func(c Config) (*Sweep, error) {
		return SweepXL(c, []int64{4 << 10, 8 << 10}, []int{1, 2}, []int64{25, 75}, []Policy{RS, LS, LSM})
	})
}

// TestFigure7XLParallelDeterministic: XL cells fanned out on a worker
// pool produce exactly the sequential result.
func TestFigure7XLParallelDeterministic(t *testing.T) {
	cfg := xlTestConfig()
	points := []XLPoint{{Cores: 32, Tasks: 6}}
	seq, err := Figure7XL(cfg, points, nil)
	if err != nil {
		t.Fatal(err)
	}
	par := cfg
	par.Workers = 4
	got, err := Figure7XL(par, points, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, got) {
		t.Errorf("parallel Figure7XL diverges from sequential")
	}
}

// TestFigure7XLDefaults: nil points fall back to the 32/64/128-core
// ladder and label rows accordingly. (Build-only sanity: running the
// full ladder is benchmark territory.)
func TestFigure7XLDefaults(t *testing.T) {
	pts := DefaultXLPoints()
	if len(pts) != 3 || pts[0].Cores != 32 || pts[2].Cores != 128 {
		t.Fatalf("unexpected default ladder: %+v", pts)
	}
	for _, pt := range pts {
		if pt.Tasks*4 != pt.Cores {
			t.Errorf("point %v: tasks should scale with cores/4", pt)
		}
	}
}

// TestSweepXLRejectsBadGeometry: impossible size/assoc combinations are
// reported up front, not as mid-grid simulation failures.
func TestSweepXLRejectsBadGeometry(t *testing.T) {
	cfg := xlTestConfig()
	_, err := SweepXL(cfg, []int64{1000}, []int{3}, []int64{75}, nil)
	if err == nil {
		t.Fatal("SweepXL accepted a geometry that cannot validate")
	}
}

// TestBuildMany: generated mixes cycle the Table 1 suite with distinct
// task IDs and private arrays.
func TestBuildMany(t *testing.T) {
	apps, err := workload.BuildMany(14, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 14 {
		t.Fatalf("got %d apps, want 14", len(apps))
	}
	names := workload.Names()
	for i, a := range apps {
		if a.Task != i {
			t.Errorf("app %d: task ID %d", i, a.Task)
		}
		if a.Name != names[i%len(names)] {
			t.Errorf("app %d: name %s, want %s", i, a.Name, names[i%len(names)])
		}
	}
	epg, arrays, err := workload.Combine(apps...)
	if err != nil {
		t.Fatal(err)
	}
	if epg.Len() == 0 || len(arrays) == 0 {
		t.Fatal("combined mix is empty")
	}
	seen := make(map[string]bool, len(arrays))
	for _, arr := range arrays {
		if seen[arr.Name] {
			t.Errorf("array %s appears twice: tasks must own private arrays", arr.Name)
		}
		seen[arr.Name] = true
	}
}

// TestXLLadder: the doubling 32..maxCores extension of the default
// ladder, with tasks = cores/4.
func TestXLLadder(t *testing.T) {
	pts, err := XLLadder(1024)
	if err != nil {
		t.Fatal(err)
	}
	want := []XLPoint{
		{Cores: 32, Tasks: 8}, {Cores: 64, Tasks: 16}, {Cores: 128, Tasks: 32},
		{Cores: 256, Tasks: 64}, {Cores: 512, Tasks: 128}, {Cores: 1024, Tasks: 256},
	}
	if !reflect.DeepEqual(pts, want) {
		t.Errorf("XLLadder(1024) = %v, want %v", pts, want)
	}
	if pts, err = XLLadder(100); err != nil || !reflect.DeepEqual(pts, want[:2]) {
		t.Errorf("XLLadder(100) = %v, %v; want the 32/64 rungs", pts, err)
	}
	if _, err := XLLadder(16); err == nil {
		t.Error("XLLadder(16) succeeded, want an error below 32 cores")
	}
}

// TestFigure7XL512Point: a single 512-core cell end to end under LS —
// the acceptance point of the analysis-scaling work. The mix is reduced
// (scale 1, LS only) to keep the suite quick while still covering the
// full 512-core pipeline: blocked matrix, incremental schedule, pooled
// runner.
func TestFigure7XL512Point(t *testing.T) {
	if testing.Short() {
		t.Skip("512-core simulation in -short mode")
	}
	cfg := xlTestConfig()
	cfg.Workers = 4
	tbl, err := Figure7XL(cfg, []XLPoint{{Cores: 512, Tasks: 128}}, []Policy{LS})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(tbl.Rows))
	}
	r := tbl.Rows[0].Results[LS]
	if r == nil || r.Cycles <= 0 {
		t.Fatalf("512-core LS cell produced no result: %+v", r)
	}
}

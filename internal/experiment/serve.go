package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"locsched/internal/prog"
	"locsched/internal/sched"
	"locsched/internal/taskgraph"
	"locsched/internal/workload"
)

// This file is the experiment package's serving surface: the exported
// entry points internal/server builds its content-addressed request keys
// and /statsz counters on. Everything here is a thin, stable veneer over
// the content-addressing layer (fingerprint.go), the analysis cache
// (analysis.go), and the runner pool (runnerpool.go) — the serving
// daemon reuses the exact caches the CLI harness populates, so a figure
// computed by one client warms every later request for the same content.

// ContentKey returns the content-addressed identity of a workload under
// a packing alignment: the graph fingerprint (taskgraph.Content) joined
// with the base-layout fingerprint of the packed array list. Two calls
// return equal keys exactly when the simulated behaviour is equal for
// equal machine/policy configurations, so the serving layer uses it as
// the workload half of every request key. The workload is interned as a
// side effect (see internWorkload), which is what makes a daemon's
// repeated JSON loads land in the analysis cache and runner pool.
func ContentKey(g *taskgraph.Graph, arrays []*prog.Array, align int64) (string, error) {
	if align <= 0 {
		return "", fmt.Errorf("experiment: alignment %d must be positive", align)
	}
	g, arrays = internWorkload(g, arrays)
	base, err := cachedPack(align, arrays)
	if err != nil {
		return "", err
	}
	return g.Fingerprint() + "+" + layoutFingerprint(base), nil
}

// ConfigDigest returns a canonical digest of everything in a Config that
// can change a simulation's observable result: the machine (cores, cache
// geometry, latencies, replacement, indexing, write policy, bus model,
// engine selection, plus the heterogeneity extension — speed classes,
// topology, hop penalty), the policy parameters (quantum, seed, affinity
// family), and the layout alignment. Workers, SimWorkers, and
// RecordTimeline are deliberately excluded: they change how fast a
// result is computed and what side channels are captured, never the
// result cells themselves (the parallel engine is bit-identical to the
// sequential one), so cached response bytes stay valid across any
// parallelism setting.
func ConfigDigest(cfg Config) string {
	m := cfg.Machine
	h := sha256.New()
	fmt.Fprintf(h, "cores=%d|cache=%d,%d,%d|repl=%d|idx=%d|cls=%t|lat=%d,%d|clk=%d|seed=%d|bus=%g|wp=%d,%d|flat=%t",
		m.Cores, m.Cache.Size, m.Cache.BlockSize, m.Cache.Assoc,
		m.Replacement, m.Indexing, m.Classify, m.HitLatency, m.MissPenalty,
		m.ClockMHz, m.Seed, m.BusFactor, m.WritePolicy, m.WritebackPenalty, m.FlatStreams)
	fmt.Fprintf(h, "|speeds=%s|topo=%d|hop=%d",
		m.Machine.SpeedClasses, m.Machine.Topology, m.Machine.HopPenalty)
	fmt.Fprintf(h, "|q=%d|seed=%d|align=%d|aff=%d,%d,%d|scale=%d",
		cfg.Quantum, cfg.Seed, cfg.Align, cfg.Affinity, cfg.QBatch, cfg.AffinityDecay,
		cfg.Workload.Scale)
	return hex.EncodeToString(h.Sum(nil))
}

// CombineApps returns the (memoized) merged EPG and array list for an
// ordered application set — the entry point the serving layer uses to
// resolve mix workloads onto the same cached graph objects the figure
// harnesses use.
func CombineApps(apps []*workload.App) (*taskgraph.Graph, []*prog.Array, error) {
	return cachedCombine(apps)
}

// AnalyzeLS returns the (cached) LS assignment for a workload on the
// given core count, running only the scheduling analysis — sharing
// matrix plus the Figure 3 greedy — with no simulation. The workload is
// interned first so the result lands in (and is served from) the same
// analysis cache the simulation path uses.
func AnalyzeLS(g *taskgraph.Graph, arrays []*prog.Array, cores, workers int) (*sched.Assignment, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("experiment: cores %d must be positive", cores)
	}
	g, _ = internWorkload(g, arrays)
	// The analysis endpoint has no machine spec, so the schedule is the
	// homogeneous (unbiased) one.
	return cachedLS(g, cores, workers, "", nil)
}

// CacheStats is a point-in-time snapshot of every content-addressed
// cache the experiment layer maintains, exported for the serving
// daemon's /statsz endpoint and for regression tests.
type CacheStats struct {
	// MatrixHits / MatrixMisses count sharing-matrix tier lookups.
	MatrixHits, MatrixMisses int64
	// LSHits / LSMisses count LS-assignment tier lookups.
	LSHits, LSMisses int64
	// LSMHits / LSMMisses count LSM-mapping tier lookups.
	LSMHits, LSMMisses int64
	// AnalysisEvictions counts coherent whole-cache evictions.
	AnalysisEvictions int64
	// RunnerPoolHits counts simulations served a pooled runner.
	RunnerPoolHits int64
	// InternHits counts content-equal workloads swapped for an already
	// canonical object family.
	InternHits int64
}

// Stats snapshots the experiment-layer cache counters.
func Stats() CacheStats {
	st := analysisStatsSnapshot()
	out := CacheStats{
		MatrixHits: st.MatrixHits, MatrixMisses: st.MatrixMisses,
		LSHits: st.LSHits, LSMisses: st.LSMisses,
		LSMHits: st.LSMHits, LSMMisses: st.LSMMisses,
		AnalysisEvictions: st.Evictions,
		RunnerPoolHits:    runnerPoolHits(),
	}
	workloadIntern.Lock()
	out.InternHits = workloadIntern.hits
	workloadIntern.Unlock()
	return out
}

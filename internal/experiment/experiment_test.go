package experiment

import (
	"strings"
	"testing"

	"locsched/internal/workload"
)

// The tests in this file assert the *shape* of the paper's results
// (Section 4), not absolute numbers: which policy wins, and how the
// LS↔LSM gap behaves. They run the full harness at the default scale.

func fig6(t *testing.T) *Table {
	t.Helper()
	tab, err := Figure6(DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	return tab
}

func fig7(t *testing.T) *Table {
	t.Helper()
	tab, err := Figure7(DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	return tab
}

// TestFigure6Shape: in isolation, the locality-aware schedulers beat both
// baselines on every application, and LSM is never worse than LS (the
// paper: "our locality-aware scheduling strategy generates much better
// results than both RS and RRS"; "the difference between LS and LSM is
// not too great").
func TestFigure6Shape(t *testing.T) {
	tab := fig6(t)
	if len(tab.Rows) != 6 {
		t.Fatalf("Figure 6 has %d rows, want 6", len(tab.Rows))
	}
	const tolerance = 1.03 // allow 3% noise on per-app comparisons
	for _, row := range tab.Rows {
		rs := row.Results[RS].Seconds
		rrs := row.Results[RRS].Seconds
		ls := row.Results[LS].Seconds
		lsm := row.Results[LSM].Seconds
		if ls > rs*tolerance {
			t.Errorf("%s: LS %.4fms should not lose to RS %.4fms", row.Label, ls*1e3, rs*1e3)
		}
		if ls > rrs*tolerance {
			t.Errorf("%s: LS %.4fms should not lose to RRS %.4fms", row.Label, ls*1e3, rrs*1e3)
		}
		if lsm > ls*1.01 {
			t.Errorf("%s: LSM %.4fms must not be worse than LS %.4fms", row.Label, lsm*1e3, ls*1e3)
		}
		if row.Results[LSM].Conflicts > row.Results[LS].Conflicts {
			t.Errorf("%s: LSM conflicts %d exceed LS's %d", row.Label,
				row.Results[LSM].Conflicts, row.Results[LS].Conflicts)
		}
	}
	// Aggregate: LS must save meaningfully over RS across the suite.
	var rsTotal, lsTotal float64
	for _, row := range tab.Rows {
		rsTotal += row.Results[RS].Seconds
		lsTotal += row.Results[LS].Seconds
	}
	if lsTotal > 0.92*rsTotal {
		t.Errorf("LS saves only %.1f%% over RS across the suite, want > 8%%",
			(1-lsTotal/rsTotal)*100)
	}
}

// TestFigure6MissRates: LS's wins come from cache behaviour — its miss
// rate must be at or below RS's on every application.
func TestFigure6MissRates(t *testing.T) {
	tab := fig6(t)
	for _, row := range tab.Rows {
		if row.Results[LS].MissRate() > row.Results[RS].MissRate()*1.15 {
			t.Errorf("%s: LS miss rate %.1f%% should not exceed RS's %.1f%%",
				row.Label, row.Results[LS].MissRate()*100, row.Results[RS].MissRate()*100)
		}
	}
}

// TestFigure7Shape: concurrently, LSM beats both baselines at every
// pressure level, and the LS↔LSM gap widens as tasks are added (the
// paper's "most striking difference": conflict misses across
// applications, which LSM eliminates but LS cannot).
func TestFigure7Shape(t *testing.T) {
	tab := fig7(t)
	if len(tab.Rows) != 6 {
		t.Fatalf("Figure 7 has %d rows, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		rs := row.Results[RS].Seconds
		rrs := row.Results[RRS].Seconds
		lsm := row.Results[LSM].Seconds
		if lsm > rs*1.01 {
			t.Errorf("%s: LSM %.4fms should beat RS %.4fms", row.Label, lsm*1e3, rs*1e3)
		}
		if lsm > rrs*1.01 {
			t.Errorf("%s: LSM %.4fms should beat RRS %.4fms", row.Label, lsm*1e3, rrs*1e3)
		}
	}
	// Execution time grows with |T|.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Results[RS].Seconds < tab.Rows[i-1].Results[RS].Seconds {
			t.Errorf("RS time should grow with |T|: %s < %s",
				tab.Rows[i].Label, tab.Rows[i-1].Label)
		}
	}
	// The LS↔LSM gap widens under pressure: relative gap at the two
	// heaviest mixes must exceed the gap at the two lightest
	// multiprogrammed mixes.
	gap := func(row Row) float64 {
		ls := row.Results[LS].Seconds
		lsm := row.Results[LSM].Seconds
		if ls == 0 {
			return 0
		}
		return (ls - lsm) / ls
	}
	light := gap(tab.Rows[1]) + gap(tab.Rows[2])
	heavy := gap(tab.Rows[4]) + gap(tab.Rows[5])
	if heavy <= light {
		t.Errorf("LS↔LSM gap should widen with |T|: light %.3f vs heavy %.3f", light, heavy)
	}
	// And LSM removes nearly all conflict misses at the heaviest mixes.
	for _, i := range []int{4, 5} {
		lsC := tab.Rows[i].Results[LS].Conflicts
		lsmC := tab.Rows[i].Results[LSM].Conflicts
		if lsC > 0 && lsmC*5 > lsC {
			t.Errorf("%s: LSM conflicts %d should be far below LS's %d",
				tab.Rows[i].Label, lsmC, lsC)
		}
	}
}

func TestRunResultFields(t *testing.T) {
	cfg := DefaultConfig()
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunApp(apps[0], LSM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "Med-Im04" || r.Policy != LSM {
		t.Errorf("identity fields wrong: %+v", r)
	}
	if r.Cycles <= 0 || r.Seconds <= 0 {
		t.Errorf("time fields wrong: %+v", r)
	}
	if r.Hits+r.Misses == 0 {
		t.Error("no accesses recorded")
	}
	if mr := r.MissRate(); mr <= 0 || mr >= 1 {
		t.Errorf("MissRate = %f", mr)
	}
	if (&RunResult{}).MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Policies() {
		a, err := RunApp(apps[1], p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		apps2, err := workload.BuildAll(cfg.Workload)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunApp(apps2[1], p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles {
			t.Errorf("%s: runs differ: %d vs %d cycles", p, a.Cycles, b.Cycles)
		}
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	cfg := DefaultConfig()
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunApp(apps[0], Policy("bogus"), cfg); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quantum = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero quantum should fail")
	}
	cfg = DefaultConfig()
	cfg.Align = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero alignment should fail")
	}
	cfg = DefaultConfig()
	cfg.Machine.Cores = 0
	if err := cfg.Validate(); err == nil {
		t.Error("invalid machine should fail")
	}
}

func TestExtendedPolicies(t *testing.T) {
	cfg := DefaultConfig()
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ExtendedPolicies() {
		r, err := RunApp(apps[3], p, cfg) // Shape: smallest, fastest
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if r.Cycles <= 0 {
			t.Errorf("%s: no cycles", p)
		}
	}
}

func TestSweeps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1 // keep the sweep quick
	pols := []Policy{RS, LS, LSM}

	s, err := SweepCacheSize(cfg, []int64{4 * 1024, 8 * 1024, 16 * 1024}, pols)
	if err != nil {
		t.Fatalf("SweepCacheSize: %v", err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("sweep has %d points, want 3", len(s.Points))
	}
	// Bigger caches must not slow RS down.
	if s.Points[2].Results[RS].Seconds > s.Points[0].Results[RS].Seconds*1.02 {
		t.Error("16KB cache should not be slower than 4KB for RS")
	}
	// LS keeps its edge at every size (the paper's consistency claim).
	for _, pt := range s.Points {
		if pt.Results[LS].Seconds > pt.Results[RS].Seconds*1.05 {
			t.Errorf("%s: LS %.4f should stay within 5%% of RS %.4f",
				pt.Label, pt.Results[LS].Seconds, pt.Results[RS].Seconds)
		}
	}

	a, err := SweepAssociativity(cfg, []int{1, 2, 4}, pols)
	if err != nil {
		t.Fatalf("SweepAssociativity: %v", err)
	}
	if len(a.Points) != 3 {
		t.Error("associativity sweep incomplete")
	}

	c, err := SweepCores(cfg, []int{4, 8}, pols)
	if err != nil {
		t.Fatalf("SweepCores: %v", err)
	}
	// More cores should not hurt the concurrent mix under LS.
	if c.Points[1].Results[LS].Seconds > c.Points[0].Results[LS].Seconds*1.02 {
		t.Error("8 cores should not be slower than 4 for LS")
	}

	q, err := SweepQuantum(cfg, []int64{512, 2048, 8192})
	if err != nil {
		t.Fatalf("SweepQuantum: %v", err)
	}
	if len(q.Points) != 3 {
		t.Error("quantum sweep incomplete")
	}

	p, err := SweepMissPenalty(cfg, []int64{25, 75, 150}, pols)
	if err != nil {
		t.Fatalf("SweepMissPenalty: %v", err)
	}
	// Higher miss penalties must slow RS down.
	if p.Points[2].Results[RS].Seconds <= p.Points[0].Results[RS].Seconds {
		t.Error("a higher miss penalty should increase RS time")
	}
}

func TestReportFormatting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	tab, err := Figure6(cfg, []Policy{RS, LS})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable(tab)
	for _, want := range []string{"Figure 6", "RS", "LS", "Med-Im04", "Usonic"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable missing %q:\n%s", want, out)
		}
	}
	mr := FormatTableMissRates(tab)
	if !strings.Contains(mr, "%") {
		t.Error("miss-rate table should contain percentages")
	}

	sweep, err := SweepCores(cfg, []int{2}, []Policy{RS, LS, LSM})
	if err != nil {
		t.Fatal(err)
	}
	so := FormatSweep(sweep)
	if !strings.Contains(so, "LS saves") {
		t.Errorf("FormatSweep missing savings annotation:\n%s", so)
	}

	t1, err := FormatTable1(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Med-Im04", "medical image reconstruction", "37"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}

	t2 := FormatTable2(cfg)
	for _, want := range []string{"8", "2 cycles", "75 cycles", "200 MHz"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}

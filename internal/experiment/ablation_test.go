package experiment

import (
	"strings"
	"testing"

	"locsched/internal/cache"
	"locsched/internal/workload"
)

func TestAblationStaticMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	s, err := AblationStaticMode(cfg, 4)
	if err != nil {
		t.Fatalf("AblationStaticMode: %v", err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(s.Points))
	}
	strict := s.Points[0].Results[LS].Cycles
	steal := s.Points[2].Results[LS].Cycles
	// Work conservation must never be slower than strict in-order waiting.
	if steal > strict {
		t.Errorf("steal mode (%d cycles) should beat strict mode (%d cycles)", steal, strict)
	}
}

func TestAblationReplacement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	s, err := AblationReplacement(cfg)
	if err != nil {
		t.Fatalf("AblationReplacement: %v", err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(s.Points))
	}
	for _, pt := range s.Points {
		if pt.Results[LS].Cycles <= 0 {
			t.Errorf("%s: no cycles", pt.Label)
		}
	}
}

func TestAblationIndexing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	s, err := AblationIndexing(cfg)
	if err != nil {
		t.Fatalf("AblationIndexing: %v", err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(s.Points))
	}
	find := func(label string) *RunResult {
		for _, pt := range s.Points {
			if pt.Label == label {
				for _, r := range pt.Results {
					return r
				}
			}
		}
		t.Fatalf("missing point %q", label)
		return nil
	}
	plainLS := find("modulo+LS")
	lsm := find("modulo+LSM")
	primeLS := find("prime-mod+LS")
	// Both conflict-avoidance approaches must cut conflict misses
	// relative to plain LS (Track's thrash dominates this workload).
	if lsm.Conflicts >= plainLS.Conflicts {
		t.Errorf("LSM conflicts %d should be below plain LS's %d", lsm.Conflicts, plainLS.Conflicts)
	}
	if primeLS.Conflicts >= plainLS.Conflicts {
		t.Errorf("prime-modulo conflicts %d should be below plain LS's %d", primeLS.Conflicts, plainLS.Conflicts)
	}
}

func TestGreedyQuality(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	rows, err := GreedyQuality(cfg, 4)
	if err != nil {
		t.Fatalf("GreedyQuality: %v", err)
	}
	// Shape (9) and Track (12) fit the exact solver's limit.
	if len(rows) < 2 {
		t.Fatalf("got %d rows, want at least Shape and Track", len(rows))
	}
	for _, r := range rows {
		if r.Greedy > r.Optimal {
			t.Errorf("%s: greedy %d beats 'optimal' %d", r.App, r.Greedy, r.Optimal)
		}
		if r.Optimal <= 0 {
			t.Errorf("%s: no sharing found", r.App)
		}
		if r.Percent() < 40 {
			t.Errorf("%s: greedy reaches only %.1f%% of optimal", r.App, r.Percent())
		}
	}
	out := FormatGreedyQuality(rows, 4)
	if !strings.Contains(out, "Shape") || !strings.Contains(out, "%") {
		t.Errorf("rendering missing fields:\n%s", out)
	}
	if (GreedyQualityRow{Optimal: 0}).Percent() != 100 {
		t.Error("zero-optimum quality should be 100%")
	}
}

func TestIndexingConfigReachesEngine(t *testing.T) {
	// A prime-indexed run must differ from a modulo run (same seed, same
	// workload): the hash changes hit patterns.
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunApp(apps[4], LS, cfg) // Track: conflict-heavy
	if err != nil {
		t.Fatal(err)
	}
	cfg.Machine.Indexing = cache.PrimeModuloIndexing
	apps2, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	prime, err := RunApp(apps2[4], LS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if prime.Conflicts >= base.Conflicts {
		t.Errorf("prime indexing should cut Track's conflicts: %d vs %d",
			prime.Conflicts, base.Conflicts)
	}
}

package experiment

import (
	"fmt"

	"locsched/internal/workload"
)

// Row is one line of a figure: a label and one result per policy.
type Row struct {
	Label   string
	Results map[Policy]*RunResult
}

// Table is a reproduced figure or table: ordered rows over a fixed policy
// list.
type Table struct {
	Title    string
	Policies []Policy
	Rows     []Row
}

// runGrid fans a rows × policies cell grid out on the worker pool.
// run(row, policy) must be side-effect-free; results land at
// [row*len(policies) + policyIndex] regardless of completion order, so
// assembled figures and sweeps are deterministic.
func runGrid(workers, rows int, policies []Policy,
	run func(row int, p Policy) (*RunResult, error)) ([]map[Policy]*RunResult, error) {

	cells := make([]*RunResult, rows*len(policies))
	err := runCells(workers, len(cells), func(i int) error {
		r, err := run(i/len(policies), policies[i%len(policies)])
		if err != nil {
			return err
		}
		cells[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]map[Policy]*RunResult, rows)
	for i := range out {
		out[i] = make(map[Policy]*RunResult, len(policies))
		for j, p := range policies {
			out[i][p] = cells[i*len(policies)+j]
		}
	}
	return out, nil
}

// assembleTable runs the grid and collects results into ordered rows.
func assembleTable(t *Table, labels []string, policies []Policy, workers int,
	run func(row int, p Policy) (*RunResult, error)) (*Table, error) {

	rows, err := runGrid(workers, len(labels), policies, run)
	if err != nil {
		return nil, err
	}
	for i, label := range labels {
		t.Rows = append(t.Rows, Row{Label: label, Results: rows[i]})
	}
	return t, nil
}

// Figure6 reruns the paper's Figure 6: each application in isolation
// under every policy. Cells run concurrently on the Config.Workers pool.
func Figure6(cfg Config, policies []Policy) (*Table, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(apps))
	for i, app := range apps {
		labels[i] = app.Name
	}
	t := &Table{Title: "Figure 6: execution times, applications in isolation", Policies: policies}
	return assembleTable(t, labels, policies, cfg.Workers, func(row int, p Policy) (*RunResult, error) {
		r, err := RunApp(apps[row], p, cfg)
		if err != nil {
			return nil, fmt.Errorf("figure 6, %s/%s: %w", apps[row].Name, p, err)
		}
		return r, nil
	})
}

// Figure7 reruns the paper's Figure 7: cumulative concurrent mixes
// |T| = 1..6 (Med-Im04; then +MxM; then +Radar; …) under every policy.
// Cells run concurrently on the Config.Workers pool.
func Figure7(cfg Config, policies []Policy) (*Table, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(apps))
	for i := range apps {
		labels[i] = fmt.Sprintf("|T|=%d", i+1)
	}
	t := &Table{Title: "Figure 7: execution times, concurrent workloads", Policies: policies}
	return assembleTable(t, labels, policies, cfg.Workers, func(row int, p Policy) (*RunResult, error) {
		r, err := RunMix(apps[:row+1], p, cfg)
		if err != nil {
			return nil, fmt.Errorf("figure 7, |T|=%d/%s: %w", row+1, p, err)
		}
		return r, nil
	})
}

// SweepPoint is one configuration of a sensitivity sweep with the LS/RS
// and LSM/RS improvement ratios that support the paper's "savings are
// consistent" claim.
type SweepPoint struct {
	Label   string
	Results map[Policy]*RunResult
}

// Sweep holds one parameter sweep.
type Sweep struct {
	Title  string
	Points []SweepPoint
}

// sweepMix runs the full six-application mix for each machine variant.
// All (point, policy) cells fan out on the worker pool of the first
// config (the sweep variants share the caller's Workers setting).
func sweepMix(title string, cfgs []Config, labels []string, policies []Policy) (*Sweep, error) {
	perPoint := make([][]*workload.App, len(cfgs))
	for i, cfg := range cfgs {
		apps, err := workload.BuildAll(cfg.Workload)
		if err != nil {
			return nil, err
		}
		perPoint[i] = apps
	}
	workers := 0
	if len(cfgs) > 0 {
		workers = cfgs[0].Workers
	}
	points, err := runGrid(workers, len(cfgs), policies, func(pt int, p Policy) (*RunResult, error) {
		r, err := RunMix(perPoint[pt], p, cfgs[pt])
		if err != nil {
			return nil, fmt.Errorf("%s, %s/%s: %w", title, labels[pt], p, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	s := &Sweep{Title: title}
	for i, label := range labels {
		s.Points = append(s.Points, SweepPoint{Label: label, Results: points[i]})
	}
	return s, nil
}

// SweepCacheSize varies the per-core L1 size.
func SweepCacheSize(cfg Config, sizes []int64, policies []Policy) (*Sweep, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	var cfgs []Config
	var labels []string
	for _, sz := range sizes {
		c := cfg
		c.Machine.Cache.Size = sz
		cfgs = append(cfgs, c)
		labels = append(labels, fmt.Sprintf("%dKB", sz/1024))
	}
	return sweepMix("cache-size sweep", cfgs, labels, policies)
}

// SweepAssociativity varies the per-core L1 associativity.
func SweepAssociativity(cfg Config, ways []int, policies []Policy) (*Sweep, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	var cfgs []Config
	var labels []string
	for _, w := range ways {
		c := cfg
		c.Machine.Cache.Assoc = w
		cfgs = append(cfgs, c)
		labels = append(labels, fmt.Sprintf("%d-way", w))
	}
	return sweepMix("associativity sweep", cfgs, labels, policies)
}

// SweepCores varies the core count.
func SweepCores(cfg Config, cores []int, policies []Policy) (*Sweep, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	var cfgs []Config
	var labels []string
	for _, n := range cores {
		c := cfg
		c.Machine.Cores = n
		cfgs = append(cfgs, c)
		labels = append(labels, fmt.Sprintf("%d cores", n))
	}
	return sweepMix("core-count sweep", cfgs, labels, policies)
}

// SweepQuantum varies the RRS time slice (RRS-only ablation).
func SweepQuantum(cfg Config, quanta []int64) (*Sweep, error) {
	var cfgs []Config
	var labels []string
	for _, q := range quanta {
		c := cfg
		c.Quantum = q
		cfgs = append(cfgs, c)
		labels = append(labels, fmt.Sprintf("q=%d", q))
	}
	return sweepMix("RRS quantum sweep", cfgs, labels, []Policy{RRS, LS})
}

// SweepMissPenalty varies the off-chip access latency.
func SweepMissPenalty(cfg Config, penalties []int64, policies []Policy) (*Sweep, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	var cfgs []Config
	var labels []string
	for _, p := range penalties {
		c := cfg
		c.Machine.MissPenalty = p
		cfgs = append(cfgs, c)
		labels = append(labels, fmt.Sprintf("miss=%d", p))
	}
	return sweepMix("miss-penalty sweep", cfgs, labels, policies)
}

package experiment

import (
	"fmt"

	"locsched/internal/workload"
)

// Row is one line of a figure: a label and one result per policy.
type Row struct {
	Label   string
	Results map[Policy]*RunResult
}

// Table is a reproduced figure or table: ordered rows over a fixed policy
// list.
type Table struct {
	Title    string
	Policies []Policy
	Rows     []Row
}

// Figure6 reruns the paper's Figure 6: each application in isolation
// under every policy.
func Figure6(cfg Config, policies []Policy) (*Table, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 6: execution times, applications in isolation", Policies: policies}
	for _, app := range apps {
		row := Row{Label: app.Name, Results: make(map[Policy]*RunResult, len(policies))}
		for _, p := range policies {
			r, err := RunApp(app, p, cfg)
			if err != nil {
				return nil, fmt.Errorf("figure 6, %s/%s: %w", app.Name, p, err)
			}
			row.Results[p] = r
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure7 reruns the paper's Figure 7: cumulative concurrent mixes
// |T| = 1..6 (Med-Im04; then +MxM; then +Radar; …) under every policy.
func Figure7(cfg Config, policies []Policy) (*Table, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		return nil, err
	}
	t := &Table{Title: "Figure 7: execution times, concurrent workloads", Policies: policies}
	for n := 1; n <= len(apps); n++ {
		row := Row{Label: fmt.Sprintf("|T|=%d", n), Results: make(map[Policy]*RunResult, len(policies))}
		for _, p := range policies {
			r, err := RunMix(apps[:n], p, cfg)
			if err != nil {
				return nil, fmt.Errorf("figure 7, |T|=%d/%s: %w", n, p, err)
			}
			row.Results[p] = r
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// SweepPoint is one configuration of a sensitivity sweep with the LS/RS
// and LSM/RS improvement ratios that support the paper's "savings are
// consistent" claim.
type SweepPoint struct {
	Label   string
	Results map[Policy]*RunResult
}

// Sweep holds one parameter sweep.
type Sweep struct {
	Title  string
	Points []SweepPoint
}

// sweepMix runs the full six-application mix for each machine variant.
func sweepMix(title string, cfgs []Config, labels []string, policies []Policy) (*Sweep, error) {
	s := &Sweep{Title: title}
	for i, cfg := range cfgs {
		apps, err := workload.BuildAll(cfg.Workload)
		if err != nil {
			return nil, err
		}
		pt := SweepPoint{Label: labels[i], Results: make(map[Policy]*RunResult, len(policies))}
		for _, p := range policies {
			r, err := RunMix(apps, p, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s, %s/%s: %w", title, labels[i], p, err)
			}
			pt.Results[p] = r
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// SweepCacheSize varies the per-core L1 size.
func SweepCacheSize(cfg Config, sizes []int64, policies []Policy) (*Sweep, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	var cfgs []Config
	var labels []string
	for _, sz := range sizes {
		c := cfg
		c.Machine.Cache.Size = sz
		cfgs = append(cfgs, c)
		labels = append(labels, fmt.Sprintf("%dKB", sz/1024))
	}
	return sweepMix("cache-size sweep", cfgs, labels, policies)
}

// SweepAssociativity varies the per-core L1 associativity.
func SweepAssociativity(cfg Config, ways []int, policies []Policy) (*Sweep, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	var cfgs []Config
	var labels []string
	for _, w := range ways {
		c := cfg
		c.Machine.Cache.Assoc = w
		cfgs = append(cfgs, c)
		labels = append(labels, fmt.Sprintf("%d-way", w))
	}
	return sweepMix("associativity sweep", cfgs, labels, policies)
}

// SweepCores varies the core count.
func SweepCores(cfg Config, cores []int, policies []Policy) (*Sweep, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	var cfgs []Config
	var labels []string
	for _, n := range cores {
		c := cfg
		c.Machine.Cores = n
		cfgs = append(cfgs, c)
		labels = append(labels, fmt.Sprintf("%d cores", n))
	}
	return sweepMix("core-count sweep", cfgs, labels, policies)
}

// SweepQuantum varies the RRS time slice (RRS-only ablation).
func SweepQuantum(cfg Config, quanta []int64) (*Sweep, error) {
	var cfgs []Config
	var labels []string
	for _, q := range quanta {
		c := cfg
		c.Quantum = q
		cfgs = append(cfgs, c)
		labels = append(labels, fmt.Sprintf("q=%d", q))
	}
	return sweepMix("RRS quantum sweep", cfgs, labels, []Policy{RRS, LS})
}

// SweepMissPenalty varies the off-chip access latency.
func SweepMissPenalty(cfg Config, penalties []int64, policies []Policy) (*Sweep, error) {
	if len(policies) == 0 {
		policies = Policies()
	}
	var cfgs []Config
	var labels []string
	for _, p := range penalties {
		c := cfg
		c.Machine.MissPenalty = p
		cfgs = append(cfgs, c)
		labels = append(labels, fmt.Sprintf("miss=%d", p))
	}
	return sweepMix("miss-penalty sweep", cfgs, labels, policies)
}

// Package experiment is the harness that regenerates every table and
// figure of the paper's evaluation (Section 4): the isolated execution
// times of Figure 6, the concurrent workloads of Figure 7, and the
// parameter-sensitivity sweeps behind the claim that the savings are
// "consistent across several simulation parameters".
//
// Absolute times differ from the paper (the original benchmarks are
// proprietary and were run under Simics on full datasets; ours are scaled
// synthetic equivalents), but the comparative shape — which policy wins,
// by roughly what factor, and how the LS↔LSM gap grows with workload
// pressure — is the reproduction target. See EXPERIMENTS.md.
package experiment

import (
	"fmt"
	"runtime"
	"strings"

	"locsched/internal/layout"
	"locsched/internal/mpsoc"
	"locsched/internal/prog"
	"locsched/internal/sched"
	"locsched/internal/taskgraph"
	"locsched/internal/workload"
)

// Policy names a scheduling strategy under test.
type Policy string

// The four strategies of the paper plus the extension policies: ARR
// (cache-affinity-aware round-robin, this repo's dynamic-policy
// extension) and the SJF/CPL future-work baselines.
const (
	RS  Policy = "RS"
	RRS Policy = "RRS"
	ARR Policy = "ARR"
	LS  Policy = "LS"
	LSM Policy = "LSM"
	SJF Policy = "SJF"
	CPL Policy = "CPL"
)

// Policies returns the paper's four strategies in presentation order.
func Policies() []Policy { return []Policy{RS, RRS, LS, LSM} }

// ExtendedPolicies additionally includes ARR and the future-work
// baselines.
func ExtendedPolicies() []Policy { return []Policy{RS, RRS, ARR, SJF, CPL, LS, LSM} }

// ParsePolicy resolves a case-insensitive policy name against the full
// ExtendedPolicies list.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range ExtendedPolicies() {
		if strings.EqualFold(s, string(p)) {
			return p, nil
		}
	}
	return "", fmt.Errorf("experiment: unknown policy %q", s)
}

// Config bundles everything a run needs.
type Config struct {
	Machine  mpsoc.Config
	Workload workload.Params
	Quantum  int64 // RRS/ARR time slice in cycles
	Seed     int64 // RS randomization seed
	Align    int64 // base layout packing alignment in bytes

	// Affinity is ARR's affinity strength: how deep into the common
	// ready queue a free core scans for a process whose previous
	// segment ran on it (sched.AffinityConfig.Window). 0 makes ARR
	// bit-identical to RRS.
	Affinity int
	// QBatch is ARR's quantum batch: the number of quanta granted to a
	// warm (same-core) resume before forced preemption. 0 and 1 both
	// mean a single quantum.
	QBatch int
	// AffinityDecay bounds, in cycles, how long ARR trusts a last-core
	// binding; 0 trusts bindings forever.
	AffinityDecay int64

	// Workers bounds the worker pool that figure and sweep harnesses fan
	// independent cells out on. Each cell owns its caches and cursors, so
	// cells run concurrently with deterministic, cell-ordered results.
	// 0 means GOMAXPROCS; 1 forces sequential execution.
	Workers int

	// SimWorkers bounds the intra-run worker pool of the parallel
	// simulation engine (mpsoc.RunParallel): per-core segment simulations
	// between scheduling events fan out across this many goroutines, with
	// results bit-identical to the sequential engine at any value. 0 (the
	// default) runs the sequential oracle; ≥ 1 selects the parallel
	// engine. The Workers × SimWorkers product is clamped to a shared
	// GOMAXPROCS budget (see effectiveSimWorkers), so combining cell-level
	// and intra-run parallelism never oversubscribes the host.
	SimWorkers int
}

// DefaultConfig uses the paper's Table 2 machine, workload scale 2, a
// quantum scaled to our process lengths, block-size alignment, and a
// deep ARR setting (affinity window 256, quantum batch 8 — see the
// AblationAffinity grid for the sensitivity of both levers).
func DefaultConfig() Config {
	m := mpsoc.DefaultConfig()
	return Config{
		Machine:  m,
		Workload: workload.Params{Scale: 2},
		Quantum:  2048,
		Seed:     1,
		Align:    m.Cache.BlockSize,
		Affinity: 256,
		QBatch:   8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if c.Quantum <= 0 {
		return fmt.Errorf("experiment: quantum %d must be positive", c.Quantum)
	}
	if c.Align <= 0 {
		return fmt.Errorf("experiment: alignment %d must be positive", c.Align)
	}
	if c.Affinity < 0 {
		return fmt.Errorf("experiment: affinity window %d must be non-negative", c.Affinity)
	}
	if c.QBatch < 0 {
		return fmt.Errorf("experiment: quantum batch %d must be non-negative", c.QBatch)
	}
	if c.AffinityDecay < 0 {
		return fmt.Errorf("experiment: affinity decay %d must be non-negative", c.AffinityDecay)
	}
	if c.SimWorkers < 0 {
		return fmt.Errorf("experiment: sim workers %d must be non-negative", c.SimWorkers)
	}
	return nil
}

// RunResult is one cell of an evaluation table.
type RunResult struct {
	Workload    string
	Policy      Policy
	Cycles      int64
	Seconds     float64
	Hits        int64
	Misses      int64
	Conflicts   int64
	Preemptions int64
	// AffineResumes and Migrations classify resumed segments: dispatched
	// back to the process's previous (possibly still warm) core, or onto
	// a different, cold one. Only preemptive policies score nonzero.
	AffineResumes int64
	Migrations    int64
	Relaid        int // arrays moved by the LSM mapping phase
	// TimelineText is a rendered per-core Gantt chart, populated when
	// Config.Machine.RecordTimeline is set.
	TimelineText string
}

// MissRate returns misses / accesses.
func (r *RunResult) MissRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Misses) / float64(total)
}

// RunGraph simulates one EPG under one policy. The workload is first
// canonicalized by content (internWorkload), so content-equal graphs
// arriving as fresh objects — JSON reloads, rebuilt mixes — share every
// downstream cache. The base layout is memoized per (alignment, array
// list), the scheduling analysis per content fingerprint, and the
// per-run machinery (per-core caches, trace cursors) is drawn from a
// pool keyed on the (graph, layout, machine) content triple, so repeated
// cells — policies, sweep points, benchmark iterations, reloads — pay
// construction once.
func RunGraph(name string, g *taskgraph.Graph, arrays []*prog.Array, policy Policy, cfg Config) (*RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, arrays = internWorkload(g, arrays)
	base, err := cachedPack(cfg.Align, arrays)
	if err != nil {
		return nil, err
	}
	am := layout.AddressMap(base)
	// The machine-model placement hook: nil on homogeneous machines (every
	// policy then schedules exactly as before the Machine axis existed),
	// a per-core cost ranking on heterogeneous ones.
	biasKey, bias, err := machineBias(cfg.Machine)
	if err != nil {
		return nil, err
	}
	var disp mpsoc.Dispatcher
	relaid := 0

	switch policy {
	case RS:
		disp = sched.NewRandom(cfg.Seed)
	case RRS:
		d, err := sched.NewRoundRobin(cfg.Quantum)
		if err != nil {
			return nil, err
		}
		disp = d
	case ARR:
		d, err := sched.NewAffinityRR(sched.AffinityConfig{
			Quantum: cfg.Quantum,
			Window:  cfg.Affinity,
			QBatch:  cfg.QBatch,
			Decay:   cfg.AffinityDecay,
		})
		if err != nil {
			return nil, err
		}
		d.SetCoreBias(cfg.Machine.Cores, bias)
		disp = d
	case SJF:
		d, err := sched.NewSJF(g)
		if err != nil {
			return nil, err
		}
		disp = d
	case CPL:
		d, err := sched.NewCriticalPath(g)
		if err != nil {
			return nil, err
		}
		disp = d
	case LS:
		asg, err := cachedLS(g, cfg.Machine.Cores, cfg.Workers, biasKey, bias)
		if err != nil {
			return nil, err
		}
		disp = sched.NewStatic("LS", asg)
	case LSM:
		mapping, err := cachedLSM(g, cfg.Machine.Cores, base, cfg.Machine.Cache, cfg.Workers, biasKey, bias)
		if err != nil {
			return nil, err
		}
		disp = sched.NewStatic("LSM", mapping.Assignment)
		am = mapping.Layout
		relaid = len(mapping.Banks)
	default:
		return nil, fmt.Errorf("experiment: unknown policy %q", policy)
	}

	runner, err := takeRunner(g, am, cfg.Machine)
	if err != nil {
		return nil, err
	}
	res, err := runner.RunParallel(disp, effectiveSimWorkers(cfg.Workers, cfg.SimWorkers, runtime.GOMAXPROCS(0)))
	if err != nil {
		return nil, err
	}
	putRunner(g, am, cfg.Machine, runner)
	out := &RunResult{
		Workload:      name,
		Policy:        policy,
		Cycles:        res.Cycles,
		Seconds:       res.Seconds,
		Hits:          res.Total.Hits,
		Misses:        res.Total.Misses(),
		Conflicts:     res.Total.Conflict,
		Preemptions:   res.Preemptions,
		AffineResumes: res.AffineResumes,
		Migrations:    res.Migrations,
		Relaid:        relaid,
	}
	if cfg.Machine.RecordTimeline {
		out.TimelineText = res.FormatTimeline(96)
	}
	return out, nil
}

// RunApp simulates a single application in isolation (Figure 6 cells).
func RunApp(app *workload.App, policy Policy, cfg Config) (*RunResult, error) {
	return RunGraph(app.Name, app.Graph, app.Arrays, policy, cfg)
}

// RunMix simulates several applications concurrently (Figure 7 cells).
// The merged EPG is memoized per app set, so every cell over the same
// mix shares one graph — and with it the scheduling-analysis cache
// entries and the runner pool.
func RunMix(apps []*workload.App, policy Policy, cfg Config) (*RunResult, error) {
	epg, arrays, err := cachedCombine(apps)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("|T|=%d", len(apps))
	return RunGraph(name, epg, arrays, policy, cfg)
}

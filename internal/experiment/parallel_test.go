package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestRunCellsOrderAndErrors: results land by cell index and the first
// failing cell (in cell order, not completion order) is reported.
func TestRunCellsOrderAndErrors(t *testing.T) {
	const n = 17
	got := make([]int, n)
	if err := runCells(4, n, func(i int) error {
		got[i] = i * i
		return nil
	}); err != nil {
		t.Fatalf("runCells: %v", err)
	}
	for i := range got {
		if got[i] != i*i {
			t.Errorf("cell %d = %d, want %d", i, got[i], i*i)
		}
	}

	// A failing cell stops the grid and is reported (later cells may be
	// skipped once a failure is observed, so only one cell fails here to
	// keep the expectation deterministic).
	err := runCells(4, n, func(i int) error {
		if i == 5 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "cell 5 failed" {
		t.Errorf("error = %v, want cell 5's failure", err)
	}
}

// TestRunCellsBoundsWorkers: no more than the requested number of cells
// run at once.
func TestRunCellsBoundsWorkers(t *testing.T) {
	var active, peak atomic.Int64
	err := runCells(3, 24, func(i int) error {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer active.Add(-1)
		if cur > 3 {
			return errors.New("worker bound exceeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d > 3", peak.Load())
	}
}

// TestFigure6ParallelDeterministic: the fanned-out harness produces
// results identical to the sequential one, cell for cell.
func TestFigure6ParallelDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1

	cfg.Workers = 1
	seq, err := Figure6(cfg, nil)
	if err != nil {
		t.Fatalf("sequential Figure6: %v", err)
	}
	cfg.Workers = 4
	par, err := Figure6(cfg, nil)
	if err != nil {
		t.Fatalf("parallel Figure6: %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel Figure6 differs from sequential run")
	}
}

// TestFigure7ParallelDeterministic: same property for the concurrent
// mixes (which exercise the shared analysis cache under contention).
func TestFigure7ParallelDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1

	cfg.Workers = 1
	seq, err := Figure7(cfg, nil)
	if err != nil {
		t.Fatalf("sequential Figure7: %v", err)
	}
	cfg.Workers = 4
	par, err := Figure7(cfg, nil)
	if err != nil {
		t.Fatalf("parallel Figure7: %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel Figure7 differs from sequential run")
	}
}

package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"locsched/internal/layout"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

// Content addressing. The analysis cache, the LSM mapping cache, and the
// runner pool used to key on pointer identity of graphs, specs, arrays,
// and address maps. That works for the built-in workload builders (their
// outputs are memoized, so pointers are stable) but misses every time a
// content-equal workload arrives as fresh objects — most visibly when
// LoadApps re-reads the same JSON task set, which rebuilt every pool on
// every reload (the ROADMAP-noted bug). This file replaces identity with
// content:
//
//   - graph fingerprints come from taskgraph.Content: the hash of every
//     process (ID, name, iteration space, compute cost, and references —
//     kind, access map, and the referenced array's content AND its
//     aliasing structure) plus the dependence edges, computed once per
//     graph and memoized on the graph itself (Freeze semantics make the
//     memo final), so pool lookups never re-hash presburger strings;
//   - layoutFingerprint hashes an address map's observable behaviour:
//     each array's content and its closed-form address formula (or base
//     address for non-compilable maps) plus the mapped extent;
//   - internWorkload canonicalizes (graph, arrays) pairs: the first
//     object family seen for a fingerprint becomes canonical and every
//     content-equal arrival is swapped for it before any analysis or
//     simulation runs. Downstream caches therefore normally see one
//     object family per content class, which is what makes sharing
//     cached LSM layouts and pooled runners (both of which embed array
//     pointers) across reloads *land*; their soundness is enforced
//     independently by per-entry identity checks (cachedLSM,
//     pooledRunner), so no interleaving of interning and eviction can
//     mix object families.
//
// The layout-fingerprint memo and the intern table are bounded, and
// intern eviction wipes the dependent caches so a later canonical family
// can never mix with entries built on an earlier one.

// maxFingerprintMemo bounds the layout-fingerprint memo. Clearing it is
// harmless (fingerprints are pure functions of content).
const maxFingerprintMemo = 256

var layoutFPMemo = struct {
	sync.Mutex
	m map[layout.AddressMap]string
}{m: make(map[layout.AddressMap]string)}

// layoutFingerprint returns the (memoized) content fingerprint of an
// address map: per-array content plus the closed-form address formula
// when the map can state one (Packed and Relayouted both can), or the
// element-0 address otherwise, plus the total mapped extent.
func layoutFingerprint(am layout.AddressMap) string {
	layoutFPMemo.Lock()
	fp, ok := layoutFPMemo.m[am]
	layoutFPMemo.Unlock()
	if ok {
		return fp
	}
	h := sha256.New()
	compiler, _ := am.(layout.AddrCompiler)
	for i, arr := range am.Arrays() {
		taskgraph.HashArray(h, i, arr)
		if compiler != nil {
			if f, ok := compiler.CompileAddr(arr); ok {
				fmt.Fprintf(h, "f%d,%d,%d,%d;", f.Base, f.Elem, f.Page, f.Bank)
				continue
			}
		}
		fmt.Fprintf(h, "@%d;", am.Addr(arr, 0))
	}
	fmt.Fprintf(h, "|size=%d", am.Size())
	fp = hex.EncodeToString(h.Sum(nil))
	layoutFPMemo.Lock()
	if len(layoutFPMemo.m) >= maxFingerprintMemo {
		layoutFPMemo.m = make(map[layout.AddressMap]string)
	}
	layoutFPMemo.m[am] = fp
	layoutFPMemo.Unlock()
	return fp
}

// internEntry is one canonical (graph, arrays) family.
type internEntry struct {
	g      *taskgraph.Graph
	arrays []*prog.Array
}

var workloadIntern = struct {
	sync.Mutex
	m    map[string]*internEntry
	hits int64
}{m: make(map[string]*internEntry)}

// maxInternEntries bounds the canonical-family table.
const maxInternEntries = 64

// internKey extends a graph fingerprint with the array list: each entry's
// content plus its dense index in the graph's aliasing structure (-1 for
// arrays the graph never references), so two workloads intern together
// only when their array lists correspond object-for-object.
func internKey(c *taskgraph.Content, arrays []*prog.Array) string {
	var b strings.Builder
	b.Grow(len(c.FP) + 24*len(arrays))
	b.WriteString(c.FP)
	for _, arr := range arrays {
		ai, ok := c.ArrayIndex[arr]
		if !ok {
			ai = -1
		}
		fmt.Fprintf(&b, "|%d:%s/%v/%d", ai, arr.Name, arr.Dims, arr.Elem)
	}
	return b.String()
}

// internWorkload canonicalizes a (graph, arrays) pair by content: the
// first family seen for a fingerprint is retained and returned for every
// content-equal call, so every downstream cache — base-layout packing,
// the analysis tiers, the runner pool — keys on one object family per
// content class. The incoming graph is frozen either way (its structure
// has been analyzed, if only to fingerprint it). When the intern table
// overflows, the dependent caches are wiped with it as hygiene, so
// entries built on an evicted canonical family do not linger; in-flight
// cells of the old family may still insert afterwards, which is safe
// because the pointer-carrying caches validate entry identity on every
// hit (a stale-family entry reads as a miss and is replaced).
func internWorkload(g *taskgraph.Graph, arrays []*prog.Array) (*taskgraph.Graph, []*prog.Array) {
	key := internKey(g.Content(), arrays)
	workloadIntern.Lock()
	if e, ok := workloadIntern.m[key]; ok {
		if e.g != g {
			workloadIntern.hits++
		}
		workloadIntern.Unlock()
		return e.g, e.arrays
	}
	evict := len(workloadIntern.m) >= maxInternEntries
	if evict {
		workloadIntern.m = make(map[string]*internEntry)
	}
	workloadIntern.m[key] = &internEntry{g: g, arrays: append([]*prog.Array(nil), arrays...)}
	workloadIntern.Unlock()
	if evict {
		clearAnalysisCache()
		clearRunnerPool()
	}
	return g, arrays
}

package experiment

import (
	"reflect"
	"testing"

	"locsched/internal/workload"
)

// TestARRZeroAffinityMatchesRRSCells: at affinity strength 0 every ARR
// cell of the harness reports the same numbers as the RRS cell (only
// the policy label differs) — the experiment-level face of the
// dispatcher-level bit-identity test in internal/mpsoc.
func TestARRZeroAffinityMatchesRRSCells(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	cfg.Affinity = 0
	cfg.QBatch = 1
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		rrs, err := RunApp(app, RRS, cfg)
		if err != nil {
			t.Fatalf("%s/RRS: %v", app.Name, err)
		}
		arr, err := RunApp(app, ARR, cfg)
		if err != nil {
			t.Fatalf("%s/ARR: %v", app.Name, err)
		}
		arr.Policy = rrs.Policy
		if !reflect.DeepEqual(rrs, arr) {
			t.Errorf("%s: ARR(affinity=0) diverges from RRS:\nRRS: %+v\nARR: %+v", app.Name, rrs, arr)
		}
	}
}

// TestARRParallelDeterministic: ARR cells are bit-reproducible under the
// worker-pool fan-out — same seed, Workers=1 vs Workers=4, identical
// tables — on both the 8-core figures and a 32-core XL point.
func TestARRParallelDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	policies := []Policy{RS, RRS, ARR, LS}

	cfg.Workers = 1
	seq6, err := Figure6(cfg, policies)
	if err != nil {
		t.Fatalf("sequential Figure6: %v", err)
	}
	seqXL, err := Figure7XL(cfg, []XLPoint{{Cores: 32, Tasks: 8}}, policies)
	if err != nil {
		t.Fatalf("sequential Figure7XL: %v", err)
	}

	cfg.Workers = 4
	par6, err := Figure6(cfg, policies)
	if err != nil {
		t.Fatalf("parallel Figure6: %v", err)
	}
	parXL, err := Figure7XL(cfg, []XLPoint{{Cores: 32, Tasks: 8}}, policies)
	if err != nil {
		t.Fatalf("parallel Figure7XL: %v", err)
	}

	if !reflect.DeepEqual(seq6, par6) {
		t.Error("parallel ARR Figure6 differs from sequential run")
	}
	if !reflect.DeepEqual(seqXL, parXL) {
		t.Error("parallel ARR Figure7XL differs from sequential run")
	}
}

// TestAblationAffinityFlatVsRLE: the affinity grid is bit-identical
// across the flat-stream and RLE engines, and its w=0 k=1 point equals
// the RRS baseline cell for cell.
func TestAblationAffinityFlatVsRLE(t *testing.T) {
	cfg := xlTestConfig()
	runBothEngines(t, "AblationAffinity", cfg, func(c Config) (*Sweep, error) {
		return AblationAffinity(c, []int{0, 4}, []int{1, 4})
	})

	s, err := AblationAffinity(cfg, []int{0, 8}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range s.Points {
		if pt.Label != "w=0 k=1" {
			continue
		}
		rrs, arr := pt.Results[RRS], pt.Results[ARR]
		if rrs == nil || arr == nil {
			t.Fatalf("point %s missing results", pt.Label)
		}
		norm := *arr
		norm.Policy = rrs.Policy
		if !reflect.DeepEqual(*rrs, norm) {
			t.Errorf("w=0 k=1 ARR cell differs from RRS baseline:\nRRS: %+v\nARR: %+v", rrs, arr)
		}
	}
}

// TestARRBeatsRRSOnMix: with the default affinity setting the full mix
// must not regress against RRS — the headline the policy was added for.
func TestARRBeatsRRSOnMix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload.Scale = 1
	apps, err := workload.BuildAll(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	rrs, err := RunMix(apps, RRS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := RunMix(apps, ARR, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Cycles > rrs.Cycles {
		t.Errorf("ARR cycles %d regressed past RRS %d", arr.Cycles, rrs.Cycles)
	}
	if arr.AffineResumes == 0 {
		t.Error("ARR reported no affine resumes on a preemptive mix")
	}
}

package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a request's trace id between
// fleet replicas. The serving middleware echoes it on every response and
// fleet.Client forwards it on peer GET/PUT calls, so one user request is
// correlatable across every replica it touched.
const TraceHeader = "X-Locsched-Trace-Id"

// tracePrefix is a per-process random prefix so trace ids minted by
// different replicas never collide; traceSeq disambiguates within the
// process.
var (
	tracePrefix = newTracePrefix()
	traceSeq    atomic.Uint64
)

// newTracePrefix derives the process-unique trace-id prefix. It seeds
// from wall clock and PID rather than crypto/rand: trace ids are
// correlation keys, not secrets, and this path must never fail.
func newTracePrefix() string {
	var b [8]byte
	seed := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32
	binary.BigEndian.PutUint64(b[:], rand.New(rand.NewSource(int64(seed))).Uint64())
	return hex.EncodeToString(b[:])
}

// NewTraceID mints a process-unique trace id: a random per-process hex
// prefix plus a monotone sequence number.
func NewTraceID() string {
	return fmt.Sprintf("%s-%08x", tracePrefix, traceSeq.Add(1))
}

// ValidTraceID reports whether id is acceptable as an inbound trace id:
// 1–64 characters of hex digits and dashes. Anything else is discarded
// and re-minted so hostile header values never reach the logs unescaped.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F', c == '-':
		default:
			return false
		}
	}
	return true
}

// Trace is one request's span collector. All methods are nil-safe: code
// paths that run without tracing (tests, background jobs) pass a nil
// *Trace and every call degrades to a no-op, so instrumentation never
// needs conditionals at the call site.
type Trace struct {
	id     string
	logger *slog.Logger
}

// NewTrace builds a trace with the given id that emits span records to
// logger at Debug level. A nil logger yields a nil trace (all no-ops).
func NewTrace(id string, logger *slog.Logger) *Trace {
	if logger == nil {
		return nil
	}
	return &Trace{id: id, logger: logger}
}

// ID returns the trace id ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start opens a span with the given name; the returned *Span is nil-safe
// and records its duration when End is called.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{trace: t, name: name, start: time.Now()}
}

// Event records an already-measured duration as a span — used where the
// wait is observed after the fact (queue wait measured at dequeue).
func (t *Trace) Event(name string, d time.Duration, attrs ...slog.Attr) {
	if t == nil {
		return
	}
	t.emit(name, d, attrs)
}

// emit writes one span record.
func (t *Trace) emit(name string, d time.Duration, attrs []slog.Attr) {
	args := make([]slog.Attr, 0, len(attrs)+3)
	args = append(args,
		slog.String("trace_id", t.id),
		slog.String("span", name),
		slog.Duration("dur", d),
	)
	args = append(args, attrs...)
	t.logger.LogAttrs(context.Background(), slog.LevelDebug, "span", args...)
}

// Span is one timed stage of a request. End is idempotent and nil-safe.
type Span struct {
	trace *Trace
	name  string
	start time.Time
	done  bool
	attrs []slog.Attr
}

// SetAttr attaches an attribute to the span record emitted at End.
func (sp *Span) SetAttr(attrs ...slog.Attr) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, attrs...)
}

// End closes the span, emitting its record with the elapsed duration.
// Calling End twice (or on a nil span) is a no-op.
func (sp *Span) End() time.Duration {
	if sp == nil || sp.done {
		return 0
	}
	sp.done = true
	d := time.Since(sp.start)
	sp.trace.emit(sp.name, d, sp.attrs)
	return d
}

// traceKey is the context key type for the request trace.
type traceKey struct{}

// Into returns a context carrying the trace (nil traces pass through
// unchanged, keeping From cheap on untraced paths).
func Into(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// From extracts the request trace from ctx; nil when the request is
// untraced.
func From(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// TraceID returns the trace id carried by ctx ("" when untraced) — the
// value fleet.Client forwards in TraceHeader.
func TraceID(ctx context.Context) string {
	return From(ctx).ID()
}

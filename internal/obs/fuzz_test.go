package obs

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzMetricsExposition holds WriteText to its contract: whatever label
// values and observations land in the registry, the rendered exposition
// must parse back through ParseExposition — valid name/label grammar,
// clean escapes, and never a NaN on the wire.
func FuzzMetricsExposition(f *testing.F) {
	f.Add("simple", 1.5, int64(3))
	f.Add("with\"quote", math.Inf(1), int64(0))
	f.Add("back\\slash\nnewline", -2.25, int64(-7))
	f.Add("", math.NaN(), int64(1<<62))
	f.Add("unicode-λ…", 1e300, int64(42))
	f.Fuzz(func(t *testing.T, labelVal string, obsVal float64, counterDelta int64) {
		r := NewRegistry()
		c := r.Counter("locsched_fuzz_ops_total", "fuzzed counter", L("tag", labelVal))
		c.Add(counterDelta)
		c.Inc()
		r.Gauge("locsched_fuzz_depth", "fuzzed gauge", L("tag", labelVal)).Set(counterDelta)
		r.CounterFunc("locsched_fuzz_fn_total", "fuzzed func", func() float64 { return obsVal })
		h := r.Histogram("locsched_fuzz_wait_seconds", "fuzzed hist", nil, L("tag", labelVal))
		h.Observe(obsVal)
		h.Observe(0.001)

		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		samples, err := ParseExposition([]byte(sb.String()))
		if err != nil {
			t.Fatalf("rendered exposition does not parse back: %v\n%s", err, sb.String())
		}
		for _, s := range samples {
			if math.IsNaN(s.Value) {
				t.Fatalf("NaN escaped to the wire in %q", s.Name)
			}
			// Invalid UTF-8 is replaced with U+FFFD at render time, so an
			// exact round trip is only promised for valid strings.
			if utf8.ValidString(labelVal) && s.Label("tag") != "" && s.Label("tag") != labelVal {
				t.Fatalf("label round trip corrupted %q -> %q", labelVal, s.Label("tag"))
			}
		}
	})
}

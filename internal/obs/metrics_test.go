package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	// A value exactly on a bound lands in that bound's bucket (le is an
	// upper inclusive bound).
	for _, v := range []float64{0.5, 1} {
		h.Observe(v)
	}
	h.Observe(1.5)
	h.Observe(2)
	h.Observe(5)
	h.Observe(5.1) // overflow
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))

	s := h.Snapshot()
	wantCounts := []int64{2, 2, 1, 1}
	if len(s.Counts) != len(wantCounts) {
		t.Fatalf("got %d buckets, want %d", len(s.Counts), len(wantCounts))
	}
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Errorf("bucket %d: got %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count != 6 {
		t.Errorf("count: got %d, want 6 (NaN/Inf must be dropped)", s.Count)
	}
	if want := 0.5 + 1 + 1.5 + 2 + 5 + 5.1; math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("sum: got %g, want %g", s.Sum, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5) // all in first bucket
	}
	s := h.Snapshot()
	// With every observation in (0,1], the median interpolates to the
	// middle of that bucket.
	if q := s.Quantile(0.5); math.Abs(q-0.5) > 1e-9 {
		t.Errorf("p50: got %g, want 0.5", q)
	}
	if q := s.Quantile(1); math.Abs(q-1) > 1e-9 {
		t.Errorf("p100: got %g, want 1", q)
	}

	// Overflow-only data clamps to the highest finite bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if q := h2.Snapshot().Quantile(0.5); q != 2 {
		t.Errorf("overflow p50: got %g, want 2", q)
	}

	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty p50: got %g, want 0", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	const workers, per = 8, 2000
	stop := make(chan struct{})
	var snapper sync.WaitGroup
	snapper.Add(1)
	go func() { // concurrent snapshots while observing
		defer snapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.Count < 0 || math.IsNaN(s.Sum) {
					t.Error("torn snapshot")
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapper.Wait()

	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count: got %d, want %d", s.Count, workers*per)
	}
	if want := float64(workers*per) * 0.001; math.Abs(s.Sum-want) > 1e-6 {
		t.Fatalf("sum: got %g, want %g", s.Sum, want)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("locsched_test_ops_total", "ops").Inc()
				r.Gauge("locsched_test_depth", "depth").Set(int64(i))
				r.Histogram("locsched_test_seconds", "lat", nil).Observe(0.01)
				var sb strings.Builder
				if err := r.WriteText(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("locsched_test_ops_total", "ops").Value(); got != 8*500 {
		t.Fatalf("counter: got %d, want %d", got, 8*500)
	}
}

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("locsched_test_esc_total", "esc",
		L("path", "a\\b\"c\nd")).Add(3)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	want := `locsched_test_esc_total{path="a\\b\"c\nd"} 3`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition missing escaped line %q:\n%s", want, text)
	}
	samples, err := ParseExposition([]byte(text))
	if err != nil {
		t.Fatalf("parse-back: %v\n%s", err, text)
	}
	if len(samples) != 1 || samples[0].Label("path") != "a\\b\"c\nd" {
		t.Fatalf("round trip lost label value: %+v", samples)
	}
}

func TestExpositionHistogramRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("locsched_test_wait_seconds", "wait", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition([]byte(sb.String()))
	if err != nil {
		t.Fatalf("parse-back: %v\n%s", err, sb.String())
	}
	snap, ok := HistogramFromSamples(samples, "locsched_test_wait_seconds")
	if !ok {
		t.Fatalf("histogram not reassembled from:\n%s", sb.String())
	}
	if snap.Count != 3 {
		t.Errorf("count: got %d, want 3", snap.Count)
	}
	if want := []int64{1, 1, 1}; len(snap.Counts) != 3 ||
		snap.Counts[0] != want[0] || snap.Counts[1] != want[1] || snap.Counts[2] != want[2] {
		t.Errorf("counts: got %v, want %v", snap.Counts, want)
	}
	if math.Abs(snap.Sum-2.55) > 1e-9 {
		t.Errorf("sum: got %g, want 2.55", snap.Sum)
	}
}

func TestCounterFuncAndNaNSanitized(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("locsched_test_fn_total", "fn", func() float64 { return math.NaN() })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "locsched_test_fn_total 0") {
		t.Fatalf("NaN not sanitized to 0:\n%s", sb.String())
	}
	if _, err := ParseExposition([]byte(sb.String())); err != nil {
		t.Fatalf("parse-back: %v", err)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("locsched_test_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("locsched_test_x_total", "x")
}

func TestDeltaSamples(t *testing.T) {
	before := []Sample{{Name: "a", Value: 10}, {Name: "b", Labels: []Label{L("k", "v")}, Value: 1}}
	after := []Sample{{Name: "a", Value: 15}, {Name: "b", Labels: []Label{L("k", "v")}, Value: 4}, {Name: "c", Value: 7}}
	d := DeltaSamples(after, before)
	got := map[string]float64{}
	for _, s := range d {
		got[s.Key()] = s.Value
	}
	if got["a"] != 5 || got[`b{k="v"}`] != 3 || got["c"] != 7 {
		t.Fatalf("delta wrong: %v", got)
	}
}

package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultLatencyBuckets returns the standard latency bucket bounds in
// seconds: 100 µs through 60 s with roughly 1-2.5-5 spacing — wide
// enough for everything from a memory-cache hit to a 512-core figure
// regeneration.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05,
		0.1, 0.25, 0.5,
		1, 2.5, 5,
		10, 30, 60,
	}
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe and
// Snapshot: per-bucket atomic counts plus an atomically accumulated sum.
// Build registered instances with Registry.Histogram; NewHistogram is
// exported for standalone use (quantile math in tests, bench reports).
type Histogram struct {
	bounds []float64      // strictly increasing upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram with the given strictly increasing
// bucket upper bounds (nil or empty selects DefaultLatencyBuckets).
// Panics on unsorted, duplicate, or non-finite bounds — bucket layout is
// a compile-time decision, not input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram bounds must be finite")
		}
		if i > 0 && bs[i-1] >= b {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value. NaN and ±Inf observations are dropped —
// they would poison the sum and can only come from upstream bugs, which
// the counters' consumers must not inherit.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram's state. Counts
// are per-bucket (not cumulative); Counts[len(Bounds)] is the overflow
// (+Inf) bucket.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds, ascending.
	Bounds []float64
	// Counts holds per-bucket observation counts, one longer than Bounds.
	Counts []int64
	// Sum is the total of every observed value.
	Sum float64
	// Count is the total observation count.
	Count int64
}

// Snapshot copies the histogram's current state. Concurrent Observe
// calls may land between bucket reads; the snapshot is a consistent
// enough view for exposition and quantile estimation, never a torn read
// of any single value.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the q-th quantile (q in [0, 1]) by linear
// interpolation inside the bucket holding the target rank — the same
// estimator as PromQL's histogram_quantile. Observations in the overflow
// bucket clamp to the highest finite bound; an empty histogram reports 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := int64(0)
	for i, bound := range s.Bounds {
		bucket := s.Counts[i]
		if float64(cum+bucket) >= target && bucket > 0 {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (target - float64(cum)) / float64(bucket)
			if frac < 0 {
				frac = 0
			}
			return lo + (bound-lo)*frac
		}
		cum += bucket
	}
	// Target rank lives in the overflow bucket: all we know is "past the
	// last bound".
	return s.Bounds[len(s.Bounds)-1]
}

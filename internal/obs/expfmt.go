package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set,
// and the sample value. Histogram series appear as their constituent
// _bucket/_sum/_count samples, exactly as rendered.
type Sample struct {
	// Name is the sample's metric name (bucket samples keep the _bucket
	// suffix).
	Name string
	// Labels is the sample's label set in rendered order.
	Labels []Label
	// Value is the parsed sample value.
	Value float64
}

// Key returns the sample's series identity: name plus canonically sorted
// labels — the join key for scrape-and-diff reporting.
func (s Sample) Key() string {
	ls := make([]Label, len(s.Labels))
	copy(ls, s.Labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return s.Name + renderLabels(ls, "", "")
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// ParseExposition parses Prometheus text exposition into samples,
// enforcing the grammar WriteText promises: metric and label names match
// their character classes, label values unescape cleanly, and no sample
// value is NaN. Comment (#) and blank lines are skipped. It is both the
// scrape half of `locsched bench -metrics-url` and the oracle the
// FuzzMetricsExposition target holds the renderer to.
func ParseExposition(data []byte) ([]Sample, error) {
	var out []Sample
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// parseSample parses one non-comment exposition line.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("bad metric name in %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels, rest = labels, tail
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" || strings.ContainsRune(rest, ' ') {
		return s, fmt.Errorf("bad sample value in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %w", rest, err)
	}
	if math.IsNaN(v) {
		return s, fmt.Errorf("NaN sample value in %q", line)
	}
	s.Value = v
	return s, nil
}

// isNameChar reports whether c is legal in a metric name at the given
// position.
func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

// parseLabels parses a {k="v",...} block, returning the labels and the
// remaining tail of the line.
func parseLabels(rest string) ([]Label, string, error) {
	rest = rest[1:] // consume '{'
	var labels []Label
	for {
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		i := 0
		for i < len(rest) && isNameChar(rest[i], i == 0) && rest[i] != ':' {
			i++
		}
		if i == 0 {
			return nil, "", fmt.Errorf("bad label key at %q", rest)
		}
		key := rest[:i]
		rest = rest[i:]
		if !strings.HasPrefix(rest, `="`) {
			return nil, "", fmt.Errorf("label %s missing quoted value", key)
		}
		rest = rest[2:]
		var val strings.Builder
		for {
			if rest == "" {
				return nil, "", fmt.Errorf("unterminated label value for %s", key)
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\\' {
				if len(rest) < 2 {
					return nil, "", fmt.Errorf("dangling escape in label %s", key)
				}
				switch rest[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %s", rest[1], key)
				}
				rest = rest[2:]
				continue
			}
			if c == '\n' {
				return nil, "", fmt.Errorf("raw newline in label %s", key)
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		labels = append(labels, Label{Key: key, Value: val.String()})
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if !strings.HasPrefix(rest, "}") {
			return nil, "", fmt.Errorf("expected , or } after label %s", key)
		}
	}
}

// DeltaSamples subtracts the matching before-series from after (joined
// on Sample.Key); series absent from before keep their after value.
// Gauge series subtract like everything else, so callers should diff
// only monotone series (counters, histogram buckets/sums/counts) — which
// is exactly what scrape-and-diff reporting reads.
func DeltaSamples(after, before []Sample) []Sample {
	prior := make(map[string]float64, len(before))
	for _, s := range before {
		prior[s.Key()] = s.Value
	}
	out := make([]Sample, len(after))
	for i, s := range after {
		s.Value -= prior[s.Key()]
		out[i] = s
	}
	return out
}

// HistogramFromSamples reassembles the named histogram from parsed
// samples (its _bucket series, any extra labels ignored), summing
// duplicate le-values so multi-label families aggregate. ok is false
// when no buckets were found.
func HistogramFromSamples(samples []Sample, name string) (HistSnapshot, bool) {
	type bkt struct {
		le  float64
		cum float64
	}
	byLE := make(map[float64]float64)
	var sum float64
	for _, s := range samples {
		switch s.Name {
		case name + "_bucket":
			le := s.Label("le")
			if le == "" {
				continue
			}
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			byLE[v] += s.Value
		case name + "_sum":
			sum += s.Value
		}
	}
	if len(byLE) == 0 {
		return HistSnapshot{}, false
	}
	bkts := make([]bkt, 0, len(byLE))
	for le, cum := range byLE {
		bkts = append(bkts, bkt{le: le, cum: cum})
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	snap := HistSnapshot{Sum: sum}
	prev := 0.0
	for _, b := range bkts {
		c := int64(b.cum - prev)
		if c < 0 {
			c = 0
		}
		prev = b.cum
		if math.IsInf(b.le, 1) {
			snap.Counts = append(snap.Counts, c)
			continue
		}
		snap.Bounds = append(snap.Bounds, b.le)
		snap.Counts = append(snap.Counts, c)
	}
	// A rendered histogram always ends with +Inf; tolerate its absence by
	// padding the overflow bucket.
	if len(snap.Counts) == len(snap.Bounds) {
		snap.Counts = append(snap.Counts, 0)
	}
	for _, c := range snap.Counts {
		snap.Count += c
	}
	if len(snap.Bounds) == 0 {
		return HistSnapshot{}, false
	}
	return snap, true
}

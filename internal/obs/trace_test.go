package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDUniqueAndValid(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("minted invalid trace id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	cases := map[string]bool{
		"abc123-00000001": true,
		"ABCDEF":          true,
		"":                false,
		strings.Repeat("a", 64): true,
		strings.Repeat("a", 65): false,
		"abc\ndef":             false,
		`abc"def`:              false,
		"hello world":          false,
	}
	for id, want := range cases {
		if got := ValidTraceID(id); got != want {
			t.Errorf("ValidTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestTraceSpansEmitJSON(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tr := NewTrace("deadbeef-00000001", logger)
	sp := tr.Start("execution")
	sp.SetAttr(slog.String("key", "k1"))
	if d := sp.End(); d < 0 {
		t.Fatalf("negative span duration %v", d)
	}
	sp.End() // idempotent
	tr.Event("queue_wait", 5*time.Millisecond)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d span records, want 2:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("span record not JSON: %v", err)
	}
	if rec["trace_id"] != "deadbeef-00000001" || rec["span"] != "execution" || rec["key"] != "k1" {
		t.Fatalf("span record fields wrong: %v", rec)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace ID not empty")
	}
	sp := tr.Start("x")
	sp.SetAttr(slog.String("a", "b"))
	sp.End()
	tr.Event("y", time.Second)
	if NewTrace("id", nil) != nil {
		t.Fatal("NewTrace with nil logger should return nil")
	}
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil || TraceID(ctx) != "" {
		t.Fatal("empty context should carry no trace")
	}
	if Into(ctx, nil) != ctx {
		t.Fatal("Into with nil trace must return ctx unchanged")
	}
	tr := NewTrace("abc-1", Discard())
	ctx2 := Into(ctx, tr)
	if From(ctx2) != tr || TraceID(ctx2) != "abc-1" {
		t.Fatal("trace not recoverable from context")
	}
}

func TestParseLevelAndNewLogger(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}

	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("shown")
	if strings.Contains(buf.String(), "hidden") || !strings.Contains(buf.String(), "shown") {
		t.Fatalf("level filtering broken: %s", buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &rec); err != nil {
		t.Fatalf("json format not JSON: %v", err)
	}
	if _, err := NewLogger(&buf, "xml", slog.LevelInfo); err == nil {
		t.Error("NewLogger accepted bad format")
	}
	Discard().Info("dropped")
}

package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value (debug, info, warn, error;
// case-insensitive) to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the daemon logger writing to w in the given format
// ("text" or "json") at the given minimum level. This is the single
// constructor behind the -log-level/-log-format flags.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
}

// Discard returns a logger that drops every record — the default for
// embedded/test servers so observability never changes their output.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

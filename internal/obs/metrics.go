// Package obs is locsched's observability layer: a stdlib-only metrics
// registry with Prometheus text-format exposition, per-request trace
// spans that propagate across fleet replicas, and structured log/slog
// construction for the serving daemon.
//
// Metric naming follows the convention locsched_<layer>_<name>_<unit>:
// the layer is the subsystem that owns the series (server, cache, store,
// fleet, experiment), counters end in _total, and timed series carry
// their unit (_seconds). Every series a Registry renders is scrapeable
// at the daemon's GET /metricsz endpoint, and every rendered page parses
// back through ParseExposition — a property the FuzzMetricsExposition
// target enforces.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension: a key (identifier grammar) and an
// arbitrary value, escaped at exposition time.
type Label struct {
	// Key is the label name; it must match [a-zA-Z_][a-zA-Z0-9_]*.
	Key string
	// Value is the label value; any string is allowed (quotes,
	// backslashes, and newlines are escaped when rendered).
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is usable
// but unregistered; obtain registered counters from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n; negative deltas are ignored (a counter
// only goes up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as an int64.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind is a metric family's exposition TYPE.
type kind int

// The supported family kinds, rendered as the Prometheus TYPE keywords.
const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// typeName returns the exposition TYPE keyword.
func (k kind) typeName() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (family, label set) time series: exactly one of the
// value holders is populated.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups every series sharing one metric name, help string, and
// kind.
type family struct {
	name string
	help string
	kind kind

	mu     sync.Mutex
	series map[string]*series
}

// Registry holds metric families and renders them as Prometheus text
// exposition. The zero value is not usable; build with NewRegistry. All
// methods are safe for concurrent use, and registration is idempotent:
// asking for an existing (name, labels) series returns the same
// instance, so independent subsystems can share a registry without
// coordinating.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether s matches the exposition metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelKey reports whether s matches the label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(s string) bool {
	return validName(s) && !strings.Contains(s, ":")
}

// family returns (creating if needed) the named family, panicking on an
// invalid name or a kind conflict — both are programmer errors that must
// fail loudly at registration, not corrupt the exposition at scrape time.
func (r *Registry) family(name, help string, k kind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k.typeName(), f.kind.typeName()))
	}
	return f
}

// canonical sorts and validates a label set and returns its series key.
func canonical(labels []Label) ([]Label, string) {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for i, l := range ls {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q", l.Key))
		}
		if i > 0 && ls[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: duplicate label key %q", l.Key))
		}
	}
	return ls, renderLabels(ls, "", "")
}

// get returns (creating if needed) the series for a label set.
func (f *family) get(labels []Label) *series {
	ls, key := canonical(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls}
		f.series[key] = s
	}
	return s
}

// Counter returns the registered counter for (name, labels), creating it
// on first use. name should follow locsched_<layer>_<name>_total.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, kindCounter)
	s := f.get(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s.counter == nil {
		s.counter = &Counter{}
		s.fn = nil
	}
	return s.counter
}

// Gauge returns the registered gauge for (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, kindGauge)
	s := f.get(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
		s.fn = nil
	}
	return s.gauge
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — the bridge for subsystems that already keep their
// own atomic counters (a later registration for the same series replaces
// the function).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, kindCounter)
	s := f.get(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s.fn = fn
	s.counter = nil
}

// GaugeFunc registers a gauge series whose value is read from fn at
// exposition time (a later registration for the same series replaces the
// function).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, kindGauge)
	s := f.get(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s.fn = fn
	s.gauge = nil
}

// Histogram returns the registered histogram for (name, labels),
// creating it with the given bucket upper bounds on first use (nil
// selects DefaultLatencyBuckets). name should end in its unit, e.g.
// locsched_server_queue_wait_seconds.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	f := r.family(name, help, kindHistogram)
	s := f.get(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s.hist == nil {
		s.hist = NewHistogram(buckets)
	}
	return s.hist
}

// escapeLabel escapes a label value for exposition: backslash, double
// quote, and newline.
func escapeLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal there).
func escapeHelp(v string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(v)
}

// renderLabels renders a sorted label set as {k="v",...}, with extraKey
// (when non-empty) appended as a final label — the histogram "le" path.
// An empty effective set renders as "".
func renderLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value. NaN is sanitized to 0 — the one
// float the text format's consumers universally choke on must never
// reach the wire (the fuzz target holds the renderer to this).
func formatValue(v float64) string {
	if math.IsNaN(v) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry as Prometheus text exposition (families
// and series in sorted order, so output is deterministic for tests and
// diffs).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.typeName())
		for _, k := range keys {
			s := f.series[k]
			switch {
			case s.hist != nil:
				writeHistogram(&b, f.name, s)
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels, "", ""), formatValue(s.fn()))
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels, "", ""), s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(s.labels, "", ""), s.gauge.Value())
			}
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// (le-labelled, +Inf last), then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series) {
	snap := s.hist.Snapshot()
	cum := int64(0)
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			renderLabels(s.labels, "le", formatValue(bound)), cum)
	}
	cum += snap.Counts[len(snap.Bounds)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(s.labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(s.labels, "", ""), formatValue(snap.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(s.labels, "", ""), cum)
}

// Handler returns the /metricsz HTTP handler: GET-only text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "metrics endpoint requires GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

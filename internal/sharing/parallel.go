package sharing

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"locsched/internal/eset"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

// The blocked, parallel sharing-matrix construction. The sequential
// Matrix path is O(P²) pairwise run-merges over the full data spaces; at
// the 512–1024-core scenario scale (P in the thousands) that is the
// analysis wall the ROADMAP names. This path makes three changes, all
// value-preserving:
//
//   - data spaces are computed concurrently (one task per process) on a
//     bounded worker pool against the shared, lock-protected Analyzer;
//   - every process's data space is summarized once into a footprint
//     slice — per referenced array, the bounding interval of its element
//     set (eset.Set.Bounds) — sorted by a dense array index, so a pair's
//     shared bytes is a linear merge-join that rejects disjoint arrays
//     and non-overlapping intervals in O(1) instead of a map-probe plus
//     run-merge per array (generated XL mixes share nothing across
//     tasks, so almost every pair exits at the summary level);
//   - the P×P pair space is tiled into matrixTile-wide blocks and the
//     upper-triangle tiles fan out over the worker pool; each unordered
//     pair (i, j) belongs to exactly one tile, so tile workers write
//     disjoint matrix cells and need no synchronization.
//
// Every cell is an exact int64 sum over the same intersections the
// sequential path computes, so the result is bit-identical for any
// worker count — the differential tests pin ComputeMatrixParallel
// against Matrix for the Table 1 apps and generated XL mixes.

// matrixTile is the tile edge of the blocked pair sweep. 128 keeps a
// tile's summaries resident while being fine-grained enough to balance
// tiles whose pairs all exit early against tiles doing real merges.
const matrixTile = 128

// footprint is one process's per-array summary: the arrays it touches
// with their interval bounds and element sets, sorted by dense array
// index for merge-joining.
type footprint struct {
	ents []footEnt
	self int64 // diagonal: footprint bytes
	loAi int   // smallest dense array index (valid when len(ents) > 0)
	hiAi int   // largest dense array index
}

// footEnt is one array of a footprint summary.
type footEnt struct {
	ai   int   // dense array index (assignment order: first use across processes)
	elem int64 // element size in bytes
	lo   int64 // bounding interval [lo, hi) of the element set
	hi   int64
	set  *eset.Set
}

// sharedBytes merge-joins two summaries: sum over common arrays of
// |set ∩ set'| × element size, skipping pairs whose bounding intervals
// are disjoint. Identical to DataSpace.SharedBytes by construction.
func sharedBytes(a, b *footprint) int64 {
	if len(a.ents) == 0 || len(b.ents) == 0 || a.hiAi < b.loAi || b.hiAi < a.loAi {
		return 0
	}
	var n int64
	i, j := 0, 0
	for i < len(a.ents) && j < len(b.ents) {
		ea, eb := &a.ents[i], &b.ents[j]
		switch {
		case ea.ai < eb.ai:
			i++
		case ea.ai > eb.ai:
			j++
		default:
			if ea.lo < eb.hi && eb.lo < ea.hi {
				n += ea.set.IntersectCard(eb.set) * ea.elem
			}
			i++
			j++
		}
	}
	return n
}

// ComputeMatrixParallel builds the sharing matrix with the blocked,
// parallel construction. workers ≤ 0 uses GOMAXPROCS; workers == 1 runs
// the blocked path inline. The result is bit-identical to ComputeMatrix
// for every worker count.
func ComputeMatrixParallel(g *taskgraph.Graph, workers int) (*Matrix, error) {
	return NewAnalyzer().MatrixParallel(g, workers)
}

// MatrixParallel is the blocked, parallel counterpart of Matrix, reusing
// the analyzer's memoized data spaces.
func (a *Analyzer) MatrixParallel(g *taskgraph.Graph, workers int) (*Matrix, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ids := g.ProcIDs()
	n := len(ids)
	m := &Matrix{
		ids:  ids,
		pos:  make(map[taskgraph.ProcID]int, n),
		vals: make([][]int64, n),
	}
	for i, id := range ids {
		m.pos[id] = i
		m.vals[i] = make([]int64, n)
	}

	// Phase 1: data spaces, one task per process on the pool.
	spaces := make([]DataSpace, n)
	if err := fanOut(workers, n, func(i int) error {
		ds, err := a.dataSpaceDeduped(g.Process(ids[i]).Spec)
		if err != nil {
			return err
		}
		spaces[i] = ds
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 2: footprint summaries. Dense array indices are assigned
	// sequentially at first use across processes in ID order; only the
	// join order depends on them, not any matrix value.
	arrIdx := make(map[*prog.Array]int)
	sums := make([]*footprint, n)
	for i, id := range ids {
		sums[i] = summarize(g.Process(id).Spec, spaces[i], arrIdx)
		m.vals[i][i] = sums[i].self
	}

	// Phase 3: tiled upper-triangle pair sweep.
	nt := (n + matrixTile - 1) / matrixTile
	type tile struct{ bi, bj int }
	tiles := make([]tile, 0, nt*(nt+1)/2)
	for bi := 0; bi < nt; bi++ {
		for bj := bi; bj < nt; bj++ {
			tiles = append(tiles, tile{bi, bj})
		}
	}
	_ = fanOut(workers, len(tiles), func(t int) error {
		bi, bj := tiles[t].bi, tiles[t].bj
		iHi := min((bi+1)*matrixTile, n)
		jHi := min((bj+1)*matrixTile, n)
		for i := bi * matrixTile; i < iHi; i++ {
			jLo := bj * matrixTile
			if bi == bj {
				jLo = i + 1
			}
			for j := jLo; j < jHi; j++ {
				s := sharedBytes(sums[i], sums[j])
				m.vals[i][j] = s
				m.vals[j][i] = s
			}
		}
		return nil
	})
	return m, nil
}

// setKey describes one array's element set by content: the iteration
// space, every access map targeting the array (in reference order), and
// the array's shape (dims drive LinearIndex; the element size is
// included for completeness). Two array groups with equal keys enumerate
// to value-identical sets, so the blocked path shares one immutable Set
// between them.
func setKey(spec *prog.ProcessSpec, arr *prog.Array) string {
	var b strings.Builder
	b.Grow(64)
	fmt.Fprintf(&b, "%s|%v/%d", spec.IterSpace, arr.Dims, arr.Elem)
	for _, r := range spec.Refs {
		if r.Array == arr {
			fmt.Fprintf(&b, "|%s", r.Map)
		}
	}
	return b.String()
}

// dataSpaceDeduped returns the spec's data space, sharing per-array
// element sets with previously analyzed content-equal array groups and
// enumerating only novel ones. Results are value-identical to
// ComputeDataSpace (the sequential oracle, which never consults the
// content cache) — pinned by the matrix differential tests.
func (a *Analyzer) dataSpaceDeduped(spec *prog.ProcessSpec) (DataSpace, error) {
	a.mu.Lock()
	if ds, ok := a.cache[spec]; ok {
		a.mu.Unlock()
		return ds, nil
	}
	arrs := spec.Arrays()
	keys := make([]string, len(arrs))
	ds := make(DataSpace, len(arrs))
	complete := true
	for i, arr := range arrs {
		keys[i] = setKey(spec, arr)
		if s, ok := a.sets[keys[i]]; ok {
			ds[arr] = s
		} else {
			complete = false
		}
	}
	a.mu.Unlock()
	if !complete {
		full, err := ComputeDataSpace(spec)
		if err != nil {
			return nil, err
		}
		a.mu.Lock()
		for i, arr := range arrs {
			s, ok := full[arr]
			if !ok {
				continue
			}
			// First content-equal set wins so concurrent computes converge
			// on one shared value.
			if prior, ok := a.sets[keys[i]]; ok {
				s = prior
			} else {
				a.sets[keys[i]] = s
			}
			ds[arr] = s
		}
		a.mu.Unlock()
	}
	a.mu.Lock()
	if prior, ok := a.cache[spec]; ok {
		ds = prior
	} else {
		a.cache[spec] = ds
	}
	a.mu.Unlock()
	return ds, nil
}

// summarize flattens one data space into a footprint summary, assigning
// dense indices to newly seen arrays. Iterating spec.Arrays() (first-use
// order) keeps the assignment deterministic even though ds is a map.
func summarize(spec *prog.ProcessSpec, ds DataSpace, arrIdx map[*prog.Array]int) *footprint {
	f := &footprint{self: ds.FootprintBytes()}
	for _, arr := range spec.Arrays() {
		s, ok := ds[arr]
		if !ok {
			continue
		}
		b, ok := s.Bounds()
		if !ok {
			continue
		}
		ai, ok := arrIdx[arr]
		if !ok {
			ai = len(arrIdx)
			arrIdx[arr] = ai
		}
		f.ents = append(f.ents, footEnt{ai: ai, elem: arr.Elem, lo: b.Lo, hi: b.Hi, set: s})
	}
	// Entries were appended in first-use order; sort by dense index so
	// pairs merge-join. Summaries are tiny (a handful of arrays).
	for i := 1; i < len(f.ents); i++ {
		for j := i; j > 0 && f.ents[j].ai < f.ents[j-1].ai; j-- {
			f.ents[j], f.ents[j-1] = f.ents[j-1], f.ents[j]
		}
	}
	if len(f.ents) > 0 {
		f.loAi = f.ents[0].ai
		f.hiAi = f.ents[len(f.ents)-1].ai
	}
	return f
}

// fanOut runs fn(0..n-1) on up to `workers` goroutines (inline when the
// pool would be trivial) and returns the first error in task order.
func fanOut(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Package sharing computes the paper's inter-process data sharing sets
// (Section 2): the data space DS_k of process k is the set of array
// elements it touches (the image of its iteration space under its access
// maps), and the sharing set between processes k and p is
// SS_k,p = DS_k ∩ DS_p. The magnitudes |SS_k,p|, weighted by element
// size, form the sharing matrix of Figure 2(a) that drives the
// locality-aware scheduler.
package sharing

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"locsched/internal/eset"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

// DataSpace is the concrete footprint of one process: the set of
// linearized element indices it touches in each array.
type DataSpace map[*prog.Array]*eset.Set

// FootprintBytes returns the total footprint in bytes across all arrays.
func (d DataSpace) FootprintBytes() int64 {
	var n int64
	for arr, s := range d {
		n += s.Card() * arr.Elem
	}
	return n
}

// SharedBytes returns the number of bytes this data space shares with o:
// sum over common arrays of |DS_a ∩ DS'_a| × element size.
func (d DataSpace) SharedBytes(o DataSpace) int64 {
	var n int64
	for arr, s := range d {
		if os, ok := o[arr]; ok {
			n += s.IntersectCard(os) * arr.Elem
		}
	}
	return n
}

// ComputeDataSpace enumerates the process's iteration space once per
// reference and collects the touched element indices per array.
func ComputeDataSpace(spec *prog.ProcessSpec) (DataSpace, error) {
	builders := make(map[*prog.Array]*eset.Builder)
	idx := make([]int64, 0, 4)
	for _, ref := range spec.Refs {
		b, ok := builders[ref.Array]
		if !ok {
			b = eset.NewBuilder()
			builders[ref.Array] = b
		}
		arr := ref.Array
		m := ref.Map
		err := spec.IterSpace.Points(func(pt []int64) bool {
			idx = m.Apply(pt, idx)
			b.Add(arr.LinearIndex(idx))
			return true
		})
		if err != nil {
			return nil, fmt.Errorf("sharing: process %s: %w", spec.Name, err)
		}
	}
	ds := make(DataSpace, len(builders))
	for arr, b := range builders {
		ds[arr] = b.Build()
	}
	return ds, nil
}

// Analyzer memoizes data spaces per process spec so that sharing matrices
// over large EPGs reuse footprint computations. An Analyzer is safe for
// concurrent use; the blocked matrix construction fans data-space
// computation out over a worker pool against a shared Analyzer.
type Analyzer struct {
	mu    sync.Mutex
	cache map[*prog.ProcessSpec]DataSpace
	// sets deduplicates per-array element sets by content (iteration
	// space, access maps, array shape): generated XL mixes repeat a few
	// app templates across hundreds of tasks, and every repetition's
	// sets are value-identical even though the array objects differ.
	// Only the blocked parallel path consults it (dataSpaceDeduped), so
	// the sequential path stays an independent enumeration-based oracle.
	sets map[string]*eset.Set
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		cache: make(map[*prog.ProcessSpec]DataSpace),
		sets:  make(map[string]*eset.Set),
	}
}

// DataSpace returns the (memoized) data space of the spec.
func (a *Analyzer) DataSpace(spec *prog.ProcessSpec) (DataSpace, error) {
	a.mu.Lock()
	ds, ok := a.cache[spec]
	a.mu.Unlock()
	if ok {
		return ds, nil
	}
	ds, err := ComputeDataSpace(spec)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	// Concurrent computes of the same spec are idempotent; first store wins
	// so every caller observes one canonical DataSpace value.
	if prior, ok := a.cache[spec]; ok {
		ds = prior
	} else {
		a.cache[spec] = ds
	}
	a.mu.Unlock()
	return ds, nil
}

// SharingSet returns the concrete sharing set SS between two processes
// for one array — the set of linearized elements both touch
// (SS_k,p = DS_k ∩ DS_p restricted to arr, Section 2 of the paper).
func (a *Analyzer) SharingSet(p, q *prog.ProcessSpec, arr *prog.Array) (*eset.Set, error) {
	dp, err := a.DataSpace(p)
	if err != nil {
		return nil, err
	}
	dq, err := a.DataSpace(q)
	if err != nil {
		return nil, err
	}
	sp, ok := dp[arr]
	if !ok {
		return eset.Empty(), nil
	}
	sq, ok := dq[arr]
	if !ok {
		return eset.Empty(), nil
	}
	return sp.Intersect(sq), nil
}

// Matrix is the sharing matrix M of the paper's Figure 2(a): for processes
// k and p, M[k][p] is the number of bytes shared between their data
// spaces. The diagonal holds each process's own footprint in bytes.
type Matrix struct {
	ids  []taskgraph.ProcID
	pos  map[taskgraph.ProcID]int
	vals [][]int64
}

// ComputeMatrix builds the sharing matrix for every process in the graph.
func ComputeMatrix(g *taskgraph.Graph) (*Matrix, error) {
	return NewAnalyzer().Matrix(g)
}

// Matrix builds the sharing matrix for every process in the graph, using
// the analyzer's memoized data spaces.
func (a *Analyzer) Matrix(g *taskgraph.Graph) (*Matrix, error) {
	ids := g.ProcIDs()
	m := &Matrix{
		ids:  ids,
		pos:  make(map[taskgraph.ProcID]int, len(ids)),
		vals: make([][]int64, len(ids)),
	}
	spaces := make([]DataSpace, len(ids))
	for i, id := range ids {
		m.pos[id] = i
		ds, err := a.DataSpace(g.Process(id).Spec)
		if err != nil {
			return nil, err
		}
		spaces[i] = ds
		m.vals[i] = make([]int64, len(ids))
	}
	for i := range ids {
		m.vals[i][i] = spaces[i].FootprintBytes()
		for j := i + 1; j < len(ids); j++ {
			s := spaces[i].SharedBytes(spaces[j])
			m.vals[i][j] = s
			m.vals[j][i] = s
		}
	}
	return m, nil
}

// Len returns the number of processes.
func (m *Matrix) Len() int { return len(m.ids) }

// IDs returns the process IDs in matrix order.
func (m *Matrix) IDs() []taskgraph.ProcID {
	return append([]taskgraph.ProcID(nil), m.ids...)
}

// Index returns the matrix position of a process ID in IDs() order; ok is
// false for processes the matrix does not cover. Positions feed SharedAt,
// which lets hot loops (the incremental scheduler) trade two map lookups
// per Shared call for plain slice indexing.
func (m *Matrix) Index(a taskgraph.ProcID) (int, bool) {
	i, ok := m.pos[a]
	return i, ok
}

// SharedAt returns the shared bytes between the processes at matrix
// positions i and j (the diagonal holds footprints). Positions must come
// from Index.
func (m *Matrix) SharedAt(i, j int) int64 { return m.vals[i][j] }

// Shared returns the shared bytes between two processes; 0 when either is
// unknown.
func (m *Matrix) Shared(a, b taskgraph.ProcID) int64 {
	i, ok := m.pos[a]
	if !ok {
		return 0
	}
	j, ok := m.pos[b]
	if !ok {
		return 0
	}
	return m.vals[i][j]
}

// Footprint returns the process's own footprint in bytes.
func (m *Matrix) Footprint(a taskgraph.ProcID) int64 { return m.Shared(a, a) }

// TotalSharing returns the sum of shared bytes between a and every process
// in others (excluding a itself).
func (m *Matrix) TotalSharing(a taskgraph.ProcID, others []taskgraph.ProcID) int64 {
	var n int64
	for _, o := range others {
		if o != a {
			n += m.Shared(a, o)
		}
	}
	return n
}

// MaxSharingPartner returns the process in candidates (excluding a) with
// maximal sharing with a; ties break to the smallest ID. ok is false when
// candidates is empty or contains only a.
func (m *Matrix) MaxSharingPartner(a taskgraph.ProcID, candidates []taskgraph.ProcID) (taskgraph.ProcID, int64, bool) {
	best := taskgraph.ProcID{}
	var bestVal int64 = -1
	found := false
	sorted := append([]taskgraph.ProcID(nil), candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for _, c := range sorted {
		if c == a {
			continue
		}
		v := m.Shared(a, c)
		if !found || v > bestVal {
			best, bestVal, found = c, v, true
		}
	}
	return best, bestVal, found
}

// String renders the matrix like the paper's Figure 2(a) table (values in
// bytes).
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "")
	for _, id := range m.ids {
		fmt.Fprintf(&b, "%10s", id.String())
	}
	b.WriteByte('\n')
	for i, id := range m.ids {
		fmt.Fprintf(&b, "%-8s", id.String())
		for j := range m.ids {
			fmt.Fprintf(&b, "%10d", m.vals[i][j])
		}
		if i < len(m.ids)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

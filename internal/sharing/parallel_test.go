package sharing

import (
	"fmt"
	"testing"

	"locsched/internal/taskgraph"
	"locsched/internal/workload"
)

// matricesEqual compares two matrices cell by cell over the union of
// their IDs.
func matricesEqual(t *testing.T, want, got *Matrix) {
	t.Helper()
	wids, gids := want.IDs(), got.IDs()
	if len(wids) != len(gids) {
		t.Fatalf("matrix size: want %d processes, got %d", len(wids), len(gids))
	}
	for i, id := range wids {
		if gids[i] != id {
			t.Fatalf("matrix order: position %d want %v, got %v", i, id, gids[i])
		}
	}
	for _, a := range wids {
		for _, b := range wids {
			if w, g := want.Shared(a, b), got.Shared(a, b); w != g {
				t.Fatalf("Shared(%v,%v): sequential %d, parallel %d", a, b, w, g)
			}
		}
	}
}

// xlGraph builds a generated multi-program mix EPG (tasks share nothing
// across task boundaries — the large-scale scenario shape).
func xlGraph(t testing.TB, tasks int) *taskgraph.Graph {
	t.Helper()
	apps, err := workload.BuildMany(tasks, workload.Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := workload.Combine(apps...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMatrixParallelMatchesSequential: the blocked, parallel construction
// is bit-identical to the sequential pairwise path for every Table 1
// application and for generated XL mixes, at several worker counts.
func TestMatrixParallelMatchesSequential(t *testing.T) {
	var graphs []*taskgraph.Graph
	var labels []string
	for _, name := range workload.Names() {
		app, err := workload.Build(name, 0, workload.Params{Scale: 2})
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, app.Graph)
		labels = append(labels, name)
	}
	allApps, err := workload.BuildAll(workload.Params{Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	mix, _, err := workload.Combine(allApps...)
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, mix, xlGraph(t, 8))
	labels = append(labels, "mix6", "xl8")

	for gi, g := range graphs {
		seq, err := ComputeMatrix(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", labels[gi], workers), func(t *testing.T) {
				par, err := ComputeMatrixParallel(g, workers)
				if err != nil {
					t.Fatal(err)
				}
				matricesEqual(t, seq, par)
			})
		}
	}
}

// TestMatrixParallelDeterminism512: at the 512-core scenario scale (a
// 128-task generated mix), the blocked construction is deterministic
// across worker counts — Workers=1 and Workers=4 produce bit-identical
// matrices (and the sequential oracle agrees).
func TestMatrixParallelDeterminism512(t *testing.T) {
	if testing.Short() {
		t.Skip("512-core scenario mix in -short mode")
	}
	g := xlGraph(t, 128)
	w1, err := ComputeMatrixParallel(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	w4, err := ComputeMatrixParallel(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, w1, w4)
	seq, err := ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, seq, w4)
}

// TestMatrixParallelSharedAnalyzer: MatrixParallel reuses (and fills) the
// analyzer's data-space memo, so a subsequent sequential Matrix on the
// same analyzer recomputes nothing and still agrees.
func TestMatrixParallelSharedAnalyzer(t *testing.T) {
	app, err := workload.Build("Usonic", 0, workload.Params{Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer()
	par, err := an.MatrixParallel(app.Graph, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := an.Matrix(app.Graph)
	if err != nil {
		t.Fatal(err)
	}
	matricesEqual(t, seq, par)
}

// TestMatrixIndexAccessors: Index/SharedAt agree with Shared for every
// pair, and Index rejects unknown processes.
func TestMatrixIndexAccessors(t *testing.T) {
	g := figure1Task(t)
	m, err := ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range m.IDs() {
		i, ok := m.Index(a)
		if !ok {
			t.Fatalf("Index(%v): not found", a)
		}
		for _, b := range m.IDs() {
			j, _ := m.Index(b)
			if m.SharedAt(i, j) != m.Shared(a, b) {
				t.Fatalf("SharedAt(%d,%d) = %d != Shared(%v,%v) = %d",
					i, j, m.SharedAt(i, j), a, b, m.Shared(a, b))
			}
		}
	}
	if _, ok := m.Index(taskgraph.ProcID{Task: 99, Idx: 0}); ok {
		t.Error("Index of unknown process reported ok")
	}
}

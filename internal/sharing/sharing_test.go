package sharing

import (
	"strings"
	"testing"

	"locsched/internal/presburger"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

// figure1Task builds Prog1 of the paper's Figure 1: eight processes, each
// running for(i2=0; i2<3000; i2++) B[i1] += A[i1*1000+i2][5] with i1 = k.
// elem=1 keeps the sharing-matrix entries equal to the paper's element
// counts.
func figure1Task(t *testing.T) *taskgraph.Graph {
	t.Helper()
	a := prog.MustArray("A", 1, 16000, 10)
	bArr := prog.MustArray("B", 1, 8)
	g := taskgraph.New()
	for k := int64(0); k < 8; k++ {
		iter := prog.Seg("i2", 0, 3000)
		sp := iter.Space()
		spec := prog.MustProcessSpec(
			"Prog1.P"+string(rune('0'+k)),
			iter,
			1,
			prog.Ref2D(a, prog.Read, sp, []int64{1}, k*1000, nil, 5),
			prog.Ref1D(bArr, prog.Write, sp, nil, int64(k)),
		)
		if err := g.AddProcess(&taskgraph.Process{ID: taskgraph.ProcID{Task: 0, Idx: int(k)}, Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestFigure2Matrix reproduces the paper's Figure 2(a): the amount of data
// shared between processes k and p of Prog1 is 2000 elements for
// |k-p| = 1, 1000 for |k-p| = 2, and 0 beyond (plus one shared B element
// only for k = p, which is on the diagonal).
func TestFigure2Matrix(t *testing.T) {
	g := figure1Task(t)
	m, err := ComputeMatrix(g)
	if err != nil {
		t.Fatalf("ComputeMatrix: %v", err)
	}
	if m.Len() != 8 {
		t.Fatalf("Len = %d, want 8", m.Len())
	}
	for k := 0; k < 8; k++ {
		for p := 0; p < 8; p++ {
			got := m.Shared(taskgraph.ProcID{Task: 0, Idx: k}, taskgraph.ProcID{Task: 0, Idx: p})
			var want int64
			diff := k - p
			if diff < 0 {
				diff = -diff
			}
			switch diff {
			case 0:
				want = 3000 + 1 // own footprint: 3000 A elements + 1 B element
			case 1:
				want = 2000
			case 2:
				want = 1000
			default:
				want = 0
			}
			if got != want {
				t.Errorf("M[%d][%d] = %d, want %d", k, p, got, want)
			}
		}
	}
}

func TestMatrixSymmetric(t *testing.T) {
	g := figure1Task(t)
	m, err := ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	ids := m.IDs()
	for _, a := range ids {
		for _, b := range ids {
			if m.Shared(a, b) != m.Shared(b, a) {
				t.Errorf("matrix not symmetric at %v,%v", a, b)
			}
		}
	}
}

func TestSharedUnknownProcess(t *testing.T) {
	g := figure1Task(t)
	m, err := ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shared(taskgraph.ProcID{Task: 9, Idx: 9}, m.IDs()[0]) != 0 {
		t.Error("unknown process should share 0")
	}
}

func TestTotalSharing(t *testing.T) {
	g := figure1Task(t)
	m, err := ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	p0 := taskgraph.ProcID{Task: 0, Idx: 0}
	// P0 shares 2000 with P1 and 1000 with P2.
	got := m.TotalSharing(p0, m.IDs())
	if got != 3000 {
		t.Errorf("TotalSharing(P0) = %d, want 3000", got)
	}
	// Middle process P3 shares with P1,P2,P4,P5: 1000+2000+2000+1000.
	p3 := taskgraph.ProcID{Task: 0, Idx: 3}
	got = m.TotalSharing(p3, m.IDs())
	if got != 6000 {
		t.Errorf("TotalSharing(P3) = %d, want 6000", got)
	}
}

func TestMaxSharingPartner(t *testing.T) {
	g := figure1Task(t)
	m, err := ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	p0 := taskgraph.ProcID{Task: 0, Idx: 0}
	best, val, ok := m.MaxSharingPartner(p0, m.IDs())
	if !ok {
		t.Fatal("MaxSharingPartner should find a partner")
	}
	if best != (taskgraph.ProcID{Task: 0, Idx: 1}) || val != 2000 {
		t.Errorf("best partner of P0 = %v (%d), want P0.1 (2000)", best, val)
	}
	// Tie-break: P3's best partners are P2 and P4 (both 2000); smallest ID wins.
	p3 := taskgraph.ProcID{Task: 0, Idx: 3}
	best, val, ok = m.MaxSharingPartner(p3, m.IDs())
	if !ok || best != (taskgraph.ProcID{Task: 0, Idx: 2}) || val != 2000 {
		t.Errorf("best partner of P3 = %v (%d, %v), want P0.2 (2000)", best, val, ok)
	}
	// Empty candidates.
	if _, _, ok := m.MaxSharingPartner(p0, nil); ok {
		t.Error("no candidates should report !ok")
	}
	if _, _, ok := m.MaxSharingPartner(p0, []taskgraph.ProcID{p0}); ok {
		t.Error("candidates containing only self should report !ok")
	}
}

func TestElementSizeWeighting(t *testing.T) {
	// Two processes sharing 100 elements of a 4-byte array share 400 bytes.
	arr := prog.MustArray("A", 4, 1000)
	g := taskgraph.New()
	for k := int64(0); k < 2; k++ {
		iter := prog.Seg("i", k*100, k*100+200) // [0,200) and [100,300)
		spec := prog.MustProcessSpec("p", iter, 0, prog.StreamRef(arr, prog.Read, iter, 1, 0))
		if err := g.AddProcess(&taskgraph.Process{ID: taskgraph.ProcID{Task: 0, Idx: int(k)}, Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Shared(taskgraph.ProcID{Task: 0, Idx: 0}, taskgraph.ProcID{Task: 0, Idx: 1})
	if got != 400 {
		t.Errorf("shared bytes = %d, want 400 (100 elems × 4B)", got)
	}
	if m.Footprint(taskgraph.ProcID{Task: 0, Idx: 0}) != 800 {
		t.Errorf("footprint = %d, want 800", m.Footprint(taskgraph.ProcID{Task: 0, Idx: 0}))
	}
}

func TestNoSharingAcrossDifferentArrays(t *testing.T) {
	// Prog1 uses A, Prog2 uses D: no sharing between their processes
	// (the paper's motivation for the data-mapping phase).
	a := prog.MustArray("A", 4, 1000)
	d := prog.MustArray("D", 4, 1000)
	g := taskgraph.New()
	iter1 := prog.Seg("i", 0, 500)
	iter2 := prog.Seg("i", 0, 500)
	if err := g.AddProcess(&taskgraph.Process{
		ID:   taskgraph.ProcID{Task: 0, Idx: 0},
		Spec: prog.MustProcessSpec("p1", iter1, 0, prog.StreamRef(a, prog.Read, iter1, 1, 0)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddProcess(&taskgraph.Process{
		ID:   taskgraph.ProcID{Task: 1, Idx: 0},
		Spec: prog.MustProcessSpec("p2", iter2, 0, prog.StreamRef(d, prog.Read, iter2, 1, 0)),
	}); err != nil {
		t.Fatal(err)
	}
	m, err := ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Shared(taskgraph.ProcID{Task: 0, Idx: 0}, taskgraph.ProcID{Task: 1, Idx: 0}); got != 0 {
		t.Errorf("cross-array sharing = %d, want 0", got)
	}
}

func TestAnalyzerMemoizes(t *testing.T) {
	a := prog.MustArray("A", 4, 1000)
	iter := prog.Seg("i", 0, 100)
	spec := prog.MustProcessSpec("p", iter, 0, prog.StreamRef(a, prog.Read, iter, 1, 0))
	an := NewAnalyzer()
	d1, err := an.DataSpace(spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := an.DataSpace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d1[a] != d2[a] {
		t.Error("analyzer should return the memoized data space")
	}
}

func TestDataSpaceMultipleRefsSameArray(t *testing.T) {
	// A[i] and A[i+10] over [0,20) touch [0,30): 30 distinct elements.
	a := prog.MustArray("A", 4, 1000)
	iter := prog.Seg("i", 0, 20)
	spec := prog.MustProcessSpec("p", iter, 0,
		prog.StreamRef(a, prog.Read, iter, 1, 0),
		prog.StreamRef(a, prog.Read, iter, 1, 10),
	)
	ds, err := ComputeDataSpace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ds[a].Card() != 30 {
		t.Errorf("|DS| = %d, want 30", ds[a].Card())
	}
}

func TestDataSpaceUnboundedIterSpaceFails(t *testing.T) {
	a := prog.MustArray("A", 4, 1000)
	sp := presburger.MustSpace("i")
	unbounded := presburger.MustBasicSet(sp, presburger.GEZero(presburger.Var(1, 0)))
	spec := prog.MustProcessSpec("p", unbounded, 0,
		prog.Ref1D(a, prog.Read, sp, []int64{1}, 0))
	if _, err := ComputeDataSpace(spec); err == nil {
		t.Error("unbounded iteration space should fail")
	}
}

func TestSharingSet(t *testing.T) {
	arr := prog.MustArray("A", 4, 1000)
	other := prog.MustArray("B", 4, 1000)
	iter1 := prog.Seg("i", 0, 200)
	iter2 := prog.Seg("i", 100, 300)
	p := prog.MustProcessSpec("p", iter1, 0, prog.StreamRef(arr, prog.Read, iter1, 1, 0))
	q := prog.MustProcessSpec("q", iter2, 0, prog.StreamRef(arr, prog.Read, iter2, 1, 0))
	an := NewAnalyzer()
	ss, err := an.SharingSet(p, q, arr)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Card() != 100 {
		t.Errorf("|SS| = %d, want 100", ss.Card())
	}
	if !ss.Contains(150) || ss.Contains(50) || ss.Contains(250) {
		t.Error("sharing set bounds wrong")
	}
	// Array untouched by either process → empty.
	none, err := an.SharingSet(p, q, other)
	if err != nil {
		t.Fatal(err)
	}
	if !none.IsEmpty() {
		t.Error("sharing on an untouched array should be empty")
	}
}

func TestMatrixString(t *testing.T) {
	g := figure1Task(t)
	m, err := ComputeMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	s := m.String()
	if !strings.Contains(s, "2000") || !strings.Contains(s, "P0.0") {
		t.Errorf("matrix rendering missing expected entries:\n%s", s)
	}
}

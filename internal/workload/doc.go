// Package workload provides the six applications of the paper's Table 1
// as parameterized synthetic task graphs, plus a JSON loader for custom
// task sets. The originals are proprietary array-intensive image/video
// codes; what the scheduler and the cache model observe — process counts
// (9–37 per task), dependence structure, affine reference patterns,
// per-process footprints of a few KB against an 8KB L1, banded
// intra-task sharing, and zero inter-task sharing — is reproduced here
// (see DESIGN.md, "Substitutions"). Every builder is deterministic: the
// same name, task ID and parameters produce the same graph, arrays and
// addresses.
//
// Application structure notes. All arrays hold 4-byte elements; the base
// band is 256 elements (1KB) scaled by Params.Scale.
//
// Med-Im04 (24 processes). Three 8-lane phases over banded proj/image/
// recon arrays: backprojection (read proj band, write image band),
// filtering (read image band ±halo, write recon band), refinement (read
// recon band +halo, write image band). Filters depend on their own and
// their left neighbour's backprojection; refinements on their own and
// right neighbour's filter — the banded halo dependences behind the
// Figure 2(a)-style sharing structure.
//
// MxM (17 processes). The triple product E = (A×B)×D as two 8-lane
// multiply phases plus one reduction reading three E bands. The shared
// factor matrices B and D are a quarter band each: every lane re-reads
// them (mutual sharing among parallel lanes), while each lane's C band
// carries the heavy producer→consumer sharing.
//
// Radar (20 processes). A banded four-stage pipeline: 4 two-band-wide
// pre-filters, 4 range compressions, 4 corner turns, 8 azimuth
// compressions, each stage re-reading its lane predecessor's bands.
//
// Shape (9 processes, the paper's minimum). 4 edge detectors with halo
// reads, 4 moment extractors accumulating into a small feature vector,
// and one classifier matching features against a template bank.
//
// Track (12 processes). 4 frame-difference processes reading prev/cur
// bands and writing diff bands, 4 candidate detectors, 4 state updates
// re-reading their diff band and walking a small shared state array.
// prev, cur and diff are laid out page-aligned relative to each other,
// so every frame-difference iteration touches three exactly-aliasing
// blocks — the intra-process conflict pathology that the LSM mapping
// phase (and only it) removes.
//
// Usonic (37 processes, the paper's maximum). A four-stage 8-lane
// pipeline — extract, match (against a small shared model DB), verify
// (with neighbour halo), refine — followed by a 4-way score fusion and
// a final vote.
package workload

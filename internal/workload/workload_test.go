package workload

import (
	"testing"

	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

func TestNamesAndDescriptions(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names() returned %d entries, want 6", len(names))
	}
	want := map[string]string{
		"Med-Im04": "medical image reconstruction",
		"MxM":      "triple matrix multiplication",
		"Radar":    "radar imaging",
		"Shape":    "pattern recognition and shape analysis",
		"Track":    "visual tracking control",
		"Usonic":   "feature-based object recognition",
	}
	for _, n := range names {
		if Describe(n) != want[n] {
			t.Errorf("Describe(%s) = %q, want %q", n, Describe(n), want[n])
		}
	}
	if Describe("nope") != "" {
		t.Error("unknown app should describe as empty")
	}
}

func TestUnknownAppRejected(t *testing.T) {
	if _, err := Build("nope", 0, Params{}); err == nil {
		t.Error("unknown application should fail")
	}
}

// TestProcessCountsInPaperRange checks Table 1's constraint: process
// counts vary between 9 and 37, with Shape smallest and Usonic largest.
func TestProcessCountsInPaperRange(t *testing.T) {
	counts := map[string]int{}
	for i, name := range Names() {
		app, err := Build(name, i, Params{Scale: 1})
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		counts[name] = app.Procs()
		if app.Procs() < 9 || app.Procs() > 37 {
			t.Errorf("%s has %d processes, want within [9, 37]", name, app.Procs())
		}
	}
	if counts["Shape"] != 9 {
		t.Errorf("Shape = %d processes, want 9 (paper minimum)", counts["Shape"])
	}
	if counts["Usonic"] != 37 {
		t.Errorf("Usonic = %d processes, want 37 (paper maximum)", counts["Usonic"])
	}
}

func TestAllGraphsValid(t *testing.T) {
	apps, err := BuildAll(Params{Scale: 1})
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	if len(apps) != 6 {
		t.Fatalf("built %d apps, want 6", len(apps))
	}
	for _, a := range apps {
		if err := a.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if a.Graph.NumEdges() == 0 {
			t.Errorf("%s has no dependences; phases are missing", a.Name)
		}
		if len(a.Arrays) < 3 {
			t.Errorf("%s has %d arrays, want at least 3", a.Name, len(a.Arrays))
		}
		if a.FootprintBytes() <= 0 {
			t.Errorf("%s has no footprint", a.Name)
		}
		cp, err := a.Graph.CriticalPathLen()
		if err != nil {
			t.Fatal(err)
		}
		if cp < 2 {
			t.Errorf("%s critical path %d, want >= 2 (phased structure)", a.Name, cp)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	a1 := MustBuild("Radar", 2, Params{Scale: 1})
	a2 := MustBuild("Radar", 2, Params{Scale: 1})
	if a1.Procs() != a2.Procs() || a1.Graph.NumEdges() != a2.Graph.NumEdges() {
		t.Fatal("same build parameters must give identical structure")
	}
	ids1 := a1.Graph.ProcIDs()
	ids2 := a2.Graph.ProcIDs()
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("process IDs differ: %v vs %v", ids1[i], ids2[i])
		}
	}
	for i := range a1.Arrays {
		if a1.Arrays[i].Name != a2.Arrays[i].Name || a1.Arrays[i].Elems() != a2.Arrays[i].Elems() {
			t.Fatalf("arrays differ at %d", i)
		}
	}
}

func TestScaleGrowsFootprint(t *testing.T) {
	small := MustBuild("MxM", 0, Params{Scale: 1})
	large := MustBuild("MxM", 0, Params{Scale: 4})
	if large.FootprintBytes() != 4*small.FootprintBytes() {
		t.Errorf("scale 4 footprint = %d, want 4 × %d", large.FootprintBytes(), small.FootprintBytes())
	}
	if small.Procs() != large.Procs() {
		t.Error("scale must not change the process count")
	}
}

// TestIntraTaskSharingExists: producer→consumer pairs within each task
// must share data (this is what LS exploits, per the paper's Figure 6
// analysis of the isolated runs).
func TestIntraTaskSharingExists(t *testing.T) {
	for i, name := range Names() {
		app := MustBuild(name, i, Params{Scale: 1})
		m, err := sharing.ComputeMatrix(app.Graph)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// At least one dependence edge must carry sharing.
		found := false
		for _, id := range app.Graph.ProcIDs() {
			for _, s := range app.Graph.Succs(id) {
				if m.Shared(id, s) > 0 {
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("%s: no dependence edge carries any data sharing", name)
		}
	}
}

// TestNoInterTaskSharing: the paper's concurrent experiments rely on
// different applications not sharing any data.
func TestNoInterTaskSharing(t *testing.T) {
	apps, err := BuildAll(Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	epg, _, err := Combine(apps[0], apps[1])
	if err != nil {
		t.Fatal(err)
	}
	m, err := sharing.ComputeMatrix(epg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range epg.TaskProcs(0) {
		for _, b := range epg.TaskProcs(1) {
			if m.Shared(a, b) != 0 {
				t.Fatalf("processes %v and %v of different tasks share %d bytes",
					a, b, m.Shared(a, b))
			}
		}
	}
}

func TestCombine(t *testing.T) {
	apps, err := BuildAll(Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	epg, arrays, err := Combine(apps...)
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	wantProcs := 0
	wantArrays := 0
	for _, a := range apps {
		wantProcs += a.Procs()
		wantArrays += len(a.Arrays)
	}
	if epg.Len() != wantProcs {
		t.Errorf("EPG has %d processes, want %d", epg.Len(), wantProcs)
	}
	if len(arrays) != wantArrays {
		t.Errorf("Combine returned %d arrays, want %d", len(arrays), wantArrays)
	}
	if got := len(epg.Tasks()); got != 6 {
		t.Errorf("EPG has %d tasks, want 6", got)
	}
	if _, _, err := Combine(); err == nil {
		t.Error("Combine of nothing should fail")
	}
}

func TestCombineClashingTaskIDsFails(t *testing.T) {
	a := MustBuild("MxM", 0, Params{Scale: 1})
	b := MustBuild("Radar", 0, Params{Scale: 1}) // same task ID
	if _, _, err := Combine(a, b); err == nil {
		t.Error("combining apps with the same task ID should fail")
	}
}

// TestBandedSharingWithinPhase: neighbouring first-phase processes of
// Med-Im04 share halo data — the banded structure of Figure 2(a).
func TestBandedSharingWithinPhase(t *testing.T) {
	app := MustBuild("Med-Im04", 0, Params{Scale: 1})
	m, err := sharing.ComputeMatrix(app.Graph)
	if err != nil {
		t.Fatal(err)
	}
	// Filter processes are indices 8..15 (after the 8 backprojections).
	f := func(i int) taskgraph.ProcID { return taskgraph.ProcID{Task: 0, Idx: 8 + i} }
	near := m.Shared(f(0), f(1))
	far := m.Shared(f(0), f(4))
	if near <= far {
		t.Errorf("neighbour sharing %d should exceed distant sharing %d", near, far)
	}
	if near == 0 {
		t.Error("neighbouring filters should share halo data")
	}
}

func TestProcsHaveBoundedFootprints(t *testing.T) {
	// Per-process data must be small relative to the whole task (bands,
	// not whole arrays) so that scheduling matters; and iteration counts
	// must be modest so simulations stay fast.
	apps, err := BuildAll(Params{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps {
		for _, p := range a.Graph.Processes() {
			n, err := p.Spec.Iterations()
			if err != nil {
				t.Fatal(err)
			}
			if n <= 0 || n > 1<<20 {
				t.Errorf("%s %v: %d iterations", a.Name, p.ID, n)
			}
		}
	}
}

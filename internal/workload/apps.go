package workload

import (
	"fmt"

	"locsched/internal/presburger"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

// The six builders below model the observable structure of the paper's
// applications: phase-parallel bands with producer→consumer chains (the
// sharing the LS scheduler exploits), halo overlap between neighbouring
// bands (the banded matrices of Figure 2a), and per-task private arrays
// (so concurrent tasks conflict in the cache but never share — the
// situation the LSM mapping phase targets).

// read/write helpers over a 1-D iteration space [lo,hi).
func rd(arr *prog.Array, iter *presburger.BasicSet, stride, off int64) prog.Ref {
	return prog.StreamRef(arr, prog.Read, iter, stride, off)
}

func wr(arr *prog.Array, iter *presburger.BasicSet, stride, off int64) prog.Ref {
	return prog.StreamRef(arr, prog.Write, iter, stride, off)
}

// buildMedIm models medical image reconstruction: 8 backprojection
// processes, 8 filter processes, 8 refinement processes (24 total) in
// three dependent phases over banded proj/image/recon arrays, with halo
// sharing between neighbouring bands.
func buildMedIm(b *builder, band int64) error {
	const lanes = 8
	halo := band / 8
	proj := b.array("proj", lanes*band)
	image := b.array("image", lanes*band)
	recon := b.array("recon", lanes*band)

	var phaseA, phaseB, phaseC [lanes]taskgraph.ProcID
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("bproj%d", i), iter, 3,
			rd(proj, iter, 1, i*band),
			wr(image, iter, 1, i*band),
		)
		if err != nil {
			return err
		}
		phaseA[i] = id
	}
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("filter%d", i), iter, 4,
			rd(image, iter, 1, i*band),
			rd(image, iter, 1, i*band-halo), // halo with band i-1 (wraps)
			rd(image, iter, 1, i*band+halo), // halo with band i+1
			wr(recon, iter, 1, i*band),
		)
		if err != nil {
			return err
		}
		phaseB[i] = id
		if err := b.dep(phaseA[i], id); err != nil {
			return err
		}
		if err := b.dep(phaseA[(i+lanes-1)%lanes], id); err != nil {
			return err
		}
	}
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("refine%d", i), iter, 3,
			rd(recon, iter, 1, i*band),
			rd(recon, iter, 1, i*band+halo),
			wr(image, iter, 1, i*band),
		)
		if err != nil {
			return err
		}
		phaseC[i] = id
		if err := b.dep(phaseB[i], id); err != nil {
			return err
		}
		if err := b.dep(phaseB[(i+1)%lanes], id); err != nil {
			return err
		}
	}
	return nil
}

// buildMxM models the triple matrix product E = (A×B)×D as two 8-way
// band-parallel multiply phases plus a final reduction (17 processes).
// All first-phase processes read the whole of B (concurrent sharing the
// scheduler cannot exploit, as the paper notes); each second-phase
// process re-reads the C band its first-phase partner produced.
func buildMxM(b *builder, band int64) error {
	const lanes = 8
	// The shared factor matrices are kept small (a quarter band): every
	// lane re-reads them (mutual sharing among parallel lanes, which the
	// scheduler must not over-reward by serializing the phase), while the
	// producer→consumer sharing along each lane's C band dominates.
	ma := b.array("A", lanes*band)
	mb := b.array("B", band/4)
	mc := b.array("C", lanes*band)
	md := b.array("D", band/4)
	me := b.array("E", lanes*band)

	var p1, p2 [lanes]taskgraph.ProcID
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("mul1_%d", i), iter, 4,
			rd(ma, iter, 1, i*band),
			rd(mb, iter, 1, 0), // wraps: every lane streams all of B
			wr(mc, iter, 1, i*band),
		)
		if err != nil {
			return err
		}
		p1[i] = id
	}
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("mul2_%d", i), iter, 4,
			rd(mc, iter, 1, i*band),
			rd(md, iter, 1, 0),
			wr(me, iter, 1, i*band),
		)
		if err != nil {
			return err
		}
		p2[i] = id
		if err := b.dep(p1[i], id); err != nil {
			return err
		}
	}
	// The reduction streams three E bands (duration comparable to the
	// multiply lanes, so the static schedule stays balanced).
	iter := prog.Seg("i", 0, band)
	reduce, err := b.proc("reduce", iter, 2,
		rd(me, iter, 1, 0),
		rd(me, iter, 1, 3*band),
		rd(me, iter, 1, 6*band),
	)
	if err != nil {
		return err
	}
	for i := 0; i < lanes; i++ {
		if err := b.dep(p2[i], reduce); err != nil {
			return err
		}
	}
	return nil
}

// buildRadar models radar imaging as a banded four-stage pipeline:
// 4 pre-filter processes, 4 range-compression processes, 4 corner-turn
// processes (each two bands wide), and 8 azimuth-compression processes
// (20 total). Each stage re-reads what its lane's predecessor produced.
func buildRadar(b *builder, band int64) error {
	const lanes = 8
	raw := b.array("raw", lanes*band)
	sig := b.array("sig", lanes*band)
	rng := b.array("range", lanes*band)
	ct := b.array("turn", lanes*band)

	var pre, r1, turns [4]taskgraph.ProcID
	for j := int64(0); j < 4; j++ {
		iter := prog.Seg("i", 0, 2*band)
		id, err := b.proc(fmt.Sprintf("prefilt%d", j), iter, 3,
			rd(raw, iter, 1, 2*j*band),
			wr(sig, iter, 1, 2*j*band),
		)
		if err != nil {
			return err
		}
		pre[j] = id
	}
	for j := int64(0); j < 4; j++ {
		iter := prog.Seg("i", 0, 2*band)
		id, err := b.proc(fmt.Sprintf("range%d", j), iter, 5,
			rd(sig, iter, 1, 2*j*band),
			wr(rng, iter, 1, 2*j*band),
		)
		if err != nil {
			return err
		}
		r1[j] = id
		if err := b.dep(pre[j], id); err != nil {
			return err
		}
	}
	for j := int64(0); j < 4; j++ {
		iter := prog.Seg("i", 0, 2*band)
		id, err := b.proc(fmt.Sprintf("turn%d", j), iter, 2,
			rd(rng, iter, 1, 2*j*band),
			wr(ct, iter, 1, 2*j*band),
		)
		if err != nil {
			return err
		}
		turns[j] = id
		if err := b.dep(r1[j], id); err != nil {
			return err
		}
	}
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		// Azimuth compression over the banded corner turn: lane i only
		// needs the turn process that produced its band.
		id, err := b.proc(fmt.Sprintf("azimuth%d", i), iter, 5,
			rd(ct, iter, 1, i*band),
			rd(ct, iter, 1, i*band+band/8),
			wr(rng, iter, 1, i*band),
		)
		if err != nil {
			return err
		}
		if err := b.dep(turns[i/2], id); err != nil {
			return err
		}
	}
	return nil
}

// buildShape models pattern recognition/shape analysis: 4 edge-detection
// processes, 4 moment-extraction processes, one classifier (9 total).
func buildShape(b *builder, band int64) error {
	const lanes = 4
	img := b.array("img", lanes*band)
	edge := b.array("edge", lanes*band)
	feat := b.array("feat", lanes*64)
	tmpl := b.array("tmpl", band)

	var s1, s2 [lanes]taskgraph.ProcID
	halo := band / 8
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("edge%d", i), iter, 3,
			rd(img, iter, 1, i*band),
			rd(img, iter, 1, i*band+halo),
			wr(edge, iter, 1, i*band),
		)
		if err != nil {
			return err
		}
		s1[i] = id
	}
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("moment%d", i), iter, 4,
			rd(edge, iter, 1, i*band),
			wr(feat, iter, 0, i*64), // accumulate into the lane's feature slot
		)
		if err != nil {
			return err
		}
		s2[i] = id
		if err := b.dep(s1[i], id); err != nil {
			return err
		}
		if err := b.dep(s1[(i+1)%lanes], id); err != nil {
			return err
		}
	}
	// The classifier matches features against a template bank; feature
	// reads wrap around the small feat array (LinearIndex wraps modulo
	// the extent).
	iter := prog.Seg("i", 0, band)
	classify, err := b.proc("classify", iter, 3,
		rd(tmpl, iter, 1, 0),
		rd(feat, iter, 1, 0),
		rd(edge, iter, 1, 0),
	)
	if err != nil {
		return err
	}
	for i := 0; i < lanes; i++ {
		if err := b.dep(s2[i], classify); err != nil {
			return err
		}
	}
	return nil
}

// buildTrack models visual tracking control: 4 frame-difference
// processes, 4 candidate detectors, 4 serialized track-state updates
// (12 total). The state updates form a chain through a small shared
// state array.
func buildTrack(b *builder, band int64) error {
	const lanes = 4
	prev := b.array("prev", lanes*band)
	cur := b.array("cur", lanes*band)
	diff := b.array("diff", lanes*band)
	cand := b.array("cand", lanes*64)
	state := b.array("state", 64)

	var t1, t2, t3 [lanes]taskgraph.ProcID
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("fdiff%d", i), iter, 2,
			rd(prev, iter, 1, i*band),
			rd(cur, iter, 1, i*band),
			wr(diff, iter, 1, i*band),
		)
		if err != nil {
			return err
		}
		t1[i] = id
	}
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("detect%d", i), iter, 3,
			rd(diff, iter, 1, i*band),
			wr(cand, iter, 0, i*64),
		)
		if err != nil {
			return err
		}
		t2[i] = id
		if err := b.dep(t1[i], id); err != nil {
			return err
		}
	}
	for i := int64(0); i < lanes; i++ {
		// The update re-reads its lane's difference band (warm if
		// scheduled after the matching detector) and walks the small
		// shared state (reads wrap around its 64 elements).
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("update%d", i), iter, 4,
			rd(diff, iter, 1, i*band),
			rd(state, iter, 1, 0),
		)
		if err != nil {
			return err
		}
		t3[i] = id
		if err := b.dep(t2[i], id); err != nil {
			return err
		}
	}
	return nil
}

// buildUsonic models feature-based object recognition as a four-stage
// 8-lane pipeline — extract, match, verify, refine — followed by a 4-way
// score fusion and a final vote (8×4 + 4 + 1 = 37 processes, the paper's
// largest task).
func buildUsonic(b *builder, band int64) error {
	const lanes = 8
	sig := b.array("sig", lanes*band)
	desc := b.array("desc", lanes*band)
	model := b.array("model", band/2) // small shared DB: halves of band/4
	refined := b.array("refined", lanes*band)
	score := b.array("score", lanes*32)

	var u1, u2, u3, u4 [lanes]taskgraph.ProcID
	halo := band / 8
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("feat%d", i), iter, 3,
			rd(sig, iter, 1, i*band),
			wr(desc, iter, 1, i*band),
		)
		if err != nil {
			return err
		}
		u1[i] = id
	}
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("match%d", i), iter, 4,
			rd(desc, iter, 1, i*band),
			rd(model, iter, 1, (i%2)*(band/4)), // half the model DB per lane (wraps)
			wr(score, iter, 0, i*32),
		)
		if err != nil {
			return err
		}
		u2[i] = id
		if err := b.dep(u1[i], id); err != nil {
			return err
		}
	}
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("verify%d", i), iter, 3,
			rd(desc, iter, 1, i*band),
			rd(desc, iter, 1, i*band+halo),
			wr(score, iter, 0, i*32+16),
		)
		if err != nil {
			return err
		}
		u3[i] = id
		if err := b.dep(u2[i], id); err != nil {
			return err
		}
		// The halo read spills into band i+1 of desc, produced by the
		// neighbouring extractor (an early phase, so the wait is short).
		if err := b.dep(u1[(i+1)%lanes], id); err != nil {
			return err
		}
	}
	for i := int64(0); i < lanes; i++ {
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("refine%d", i), iter, 3,
			rd(desc, iter, 1, i*band),
			wr(refined, iter, 1, i*band),
		)
		if err != nil {
			return err
		}
		u4[i] = id
		if err := b.dep(u3[i], id); err != nil {
			return err
		}
	}
	var fuse [4]taskgraph.ProcID
	for j := int64(0); j < 4; j++ {
		// Each fusion process folds two refined lanes into their score
		// slots (reads wrap the small score array).
		iter := prog.Seg("i", 0, band)
		id, err := b.proc(fmt.Sprintf("fuse%d", j), iter, 3,
			rd(refined, iter, 1, 2*j*band),
			rd(refined, iter, 1, (2*j+1)*band),
			wr(score, iter, 0, j*64),
		)
		if err != nil {
			return err
		}
		fuse[j] = id
		if err := b.dep(u4[2*j], id); err != nil {
			return err
		}
		if err := b.dep(u4[2*j+1], id); err != nil {
			return err
		}
	}
	// The vote walks every score (wrapping the small score array) while
	// re-reading one refined band.
	iter := prog.Seg("i", 0, band)
	vote, err := b.proc("vote", iter, 2,
		rd(score, iter, 1, 0),
		rd(refined, iter, 1, 5*band),
	)
	if err != nil {
		return err
	}
	for j := 0; j < 4; j++ {
		if err := b.dep(fuse[j], vote); err != nil {
			return err
		}
	}
	return nil
}

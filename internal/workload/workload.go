package workload

import (
	"fmt"

	"locsched/internal/presburger"
	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

// Params tunes the synthetic workloads.
type Params struct {
	// Scale multiplies the base band size (256 elements = 1KB of 4-byte
	// data). Scale 2 gives per-process footprints of a few KB against the
	// paper's 8KB L1. Zero means DefaultScale.
	Scale int
}

// DefaultScale is used when Params.Scale is zero.
const DefaultScale = 2

func (p Params) scale() int64 {
	if p.Scale <= 0 {
		return DefaultScale
	}
	return int64(p.Scale)
}

// App is one task: a named process graph plus its arrays.
type App struct {
	Name   string
	Desc   string
	Task   int
	Graph  *taskgraph.Graph
	Arrays []*prog.Array
}

// Procs returns the number of processes.
func (a *App) Procs() int { return a.Graph.Len() }

// FootprintBytes returns the total bytes of all arrays.
func (a *App) FootprintBytes() int64 {
	var n int64
	for _, arr := range a.Arrays {
		n += arr.Bytes()
	}
	return n
}

// Names returns the application names in the paper's Table 1 order.
func Names() []string {
	return []string{"Med-Im04", "MxM", "Radar", "Shape", "Track", "Usonic"}
}

// Describe returns the paper's one-line description of an application.
func Describe(name string) string {
	switch name {
	case "Med-Im04":
		return "medical image reconstruction"
	case "MxM":
		return "triple matrix multiplication"
	case "Radar":
		return "radar imaging"
	case "Shape":
		return "pattern recognition and shape analysis"
	case "Track":
		return "visual tracking control"
	case "Usonic":
		return "feature-based object recognition"
	}
	return ""
}

// Build constructs the named application as task `task`.
func Build(name string, task int, p Params) (*App, error) {
	b := &builder{task: task, g: taskgraph.New()}
	s := p.scale()
	band := 256 * s // elements per band (1KB × scale)
	var err error
	switch name {
	case "Med-Im04":
		err = buildMedIm(b, band)
	case "MxM":
		err = buildMxM(b, band)
	case "Radar":
		err = buildRadar(b, band)
	case "Shape":
		err = buildShape(b, band)
	case "Track":
		err = buildTrack(b, band)
	case "Usonic":
		err = buildUsonic(b, band)
	default:
		return nil, fmt.Errorf("workload: unknown application %q", name)
	}
	if err != nil {
		return nil, fmt.Errorf("workload: building %s: %w", name, err)
	}
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s graph invalid: %w", name, err)
	}
	// Construction is complete; analyses cached against this graph stay
	// valid for its lifetime.
	b.g.Freeze()
	return &App{
		Name:   name,
		Desc:   Describe(name),
		Task:   task,
		Graph:  b.g,
		Arrays: b.arrays,
	}, nil
}

// MustBuild is Build that panics on error.
func MustBuild(name string, task int, p Params) *App {
	a, err := Build(name, task, p)
	if err != nil {
		panic(err)
	}
	return a
}

// BuildAll constructs all six applications with task IDs 0..5 in Table 1
// order.
func BuildAll(p Params) ([]*App, error) {
	var apps []*App
	for i, name := range Names() {
		a, err := Build(name, i, p)
		if err != nil {
			return nil, err
		}
		apps = append(apps, a)
	}
	return apps, nil
}

// BuildMany constructs a generated multi-program mix of n tasks by
// cycling through the Table 1 suite with task IDs 0..n-1. Every task
// owns private arrays (the builders prefix names with the task ID), so
// tasks conflict in the caches but never share data — the large-scale
// setting the 32–128-core evaluations exercise.
func BuildMany(n int, p Params) ([]*App, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: mix size %d must be positive", n)
	}
	names := Names()
	apps := make([]*App, 0, n)
	for i := 0; i < n; i++ {
		a, err := Build(names[i%len(names)], i, p)
		if err != nil {
			return nil, err
		}
		apps = append(apps, a)
	}
	return apps, nil
}

// Combine merges several applications into one EPG (the concurrent
// workloads of Figure 7) and collects their arrays in order. Task IDs
// must be distinct.
func Combine(apps ...*App) (*taskgraph.Graph, []*prog.Array, error) {
	if len(apps) == 0 {
		return nil, nil, fmt.Errorf("workload: no applications to combine")
	}
	graphs := make([]*taskgraph.Graph, len(apps))
	var arrays []*prog.Array
	for i, a := range apps {
		graphs[i] = a.Graph
		arrays = append(arrays, a.Arrays...)
	}
	epg, err := taskgraph.Merge(graphs...)
	if err != nil {
		return nil, nil, err
	}
	return epg, arrays, nil
}

// builder accumulates one task's processes, dependences and arrays.
type builder struct {
	task   int
	g      *taskgraph.Graph
	arrays []*prog.Array
	nprocs int
}

const elemSize = 4 // all workload arrays hold 4-byte elements

func (b *builder) array(name string, elems int64) *prog.Array {
	a := prog.MustArray(fmt.Sprintf("t%d.%s", b.task, name), elemSize, elems)
	b.arrays = append(b.arrays, a)
	return a
}

// proc adds a process with a 1-D iteration space [iterLo, iterHi) and the
// given references (whose maps must be built over iter.Space() — use the
// refs helper below).
func (b *builder) proc(name string, iter *presburger.BasicSet, compute int64, refs ...prog.Ref) (taskgraph.ProcID, error) {
	spec, err := prog.NewProcessSpec(fmt.Sprintf("t%d.%s", b.task, name), iter, compute, refs...)
	if err != nil {
		return taskgraph.ProcID{}, err
	}
	id := taskgraph.ProcID{Task: b.task, Idx: b.nprocs}
	b.nprocs++
	if err := b.g.AddProcess(&taskgraph.Process{ID: id, Spec: spec}); err != nil {
		return taskgraph.ProcID{}, err
	}
	return id, nil
}

func (b *builder) dep(from, to taskgraph.ProcID) error { return b.g.AddDep(from, to) }

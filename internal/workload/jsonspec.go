package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"locsched/internal/prog"
	"locsched/internal/taskgraph"
)

// The JSON task-set format lets users drive the scheduler and simulator
// without writing Go: a list of tasks, each with its arrays and
// processes (1-D iteration spaces with strided references, the shape of
// the paper's workloads).
//
//	{
//	  "tasks": [{
//	    "name": "mytask",
//	    "arrays": [{"name": "A", "elems": 2048, "elem_bytes": 4}],
//	    "procs": [{
//	      "name": "reader",
//	      "iter_lo": 0, "iter_hi": 512, "compute": 2,
//	      "refs": [{"array": "A", "kind": "r", "stride": 1, "offset": 0}],
//	      "deps": []
//	    }]
//	  }]
//	}

type jsonRef struct {
	Array  string `json:"array"`
	Kind   string `json:"kind"` // "r" or "w"
	Stride int64  `json:"stride"`
	Offset int64  `json:"offset"`
}

type jsonProc struct {
	Name    string    `json:"name"`
	IterLo  int64     `json:"iter_lo"`
	IterHi  int64     `json:"iter_hi"`
	Compute int64     `json:"compute"`
	Refs    []jsonRef `json:"refs"`
	Deps    []int     `json:"deps"` // indices of predecessor processes within the task
}

type jsonArray struct {
	Name      string `json:"name"`
	Elems     int64  `json:"elems"`
	ElemBytes int64  `json:"elem_bytes"`
}

type jsonTask struct {
	Name   string      `json:"name"`
	Arrays []jsonArray `json:"arrays"`
	Procs  []jsonProc  `json:"procs"`
}

type jsonSpec struct {
	Tasks []jsonTask `json:"tasks"`
}

// FromJSON reads a task-set description and builds one App per task,
// with task IDs assigned by position.
func FromJSON(r io.Reader) ([]*App, error) {
	var spec jsonSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("workload: parsing task set: %w", err)
	}
	if len(spec.Tasks) == 0 {
		return nil, fmt.Errorf("workload: task set has no tasks")
	}
	var apps []*App
	for ti, jt := range spec.Tasks {
		if jt.Name == "" {
			return nil, fmt.Errorf("workload: task %d has no name", ti)
		}
		arrays := make(map[string]*prog.Array, len(jt.Arrays))
		var order []*prog.Array
		for _, ja := range jt.Arrays {
			if _, dup := arrays[ja.Name]; dup {
				return nil, fmt.Errorf("workload: task %s: duplicate array %q", jt.Name, ja.Name)
			}
			eb := ja.ElemBytes
			if eb == 0 {
				eb = 4
			}
			a, err := prog.NewArray(fmt.Sprintf("t%d.%s", ti, ja.Name), eb, ja.Elems)
			if err != nil {
				return nil, fmt.Errorf("workload: task %s: %w", jt.Name, err)
			}
			arrays[ja.Name] = a
			order = append(order, a)
		}
		g := taskgraph.New()
		ids := make([]taskgraph.ProcID, len(jt.Procs))
		for pi, jp := range jt.Procs {
			if jp.IterHi <= jp.IterLo {
				return nil, fmt.Errorf("workload: task %s proc %d: empty iteration space [%d,%d)",
					jt.Name, pi, jp.IterLo, jp.IterHi)
			}
			iter := prog.Seg("i", jp.IterLo, jp.IterHi)
			var refs []prog.Ref
			for ri, jr := range jp.Refs {
				arr, ok := arrays[jr.Array]
				if !ok {
					return nil, fmt.Errorf("workload: task %s proc %d ref %d: unknown array %q",
						jt.Name, pi, ri, jr.Array)
				}
				kind := prog.Read
				switch jr.Kind {
				case "r", "":
					kind = prog.Read
				case "w":
					kind = prog.Write
				default:
					return nil, fmt.Errorf("workload: task %s proc %d ref %d: kind %q (want r or w)",
						jt.Name, pi, ri, jr.Kind)
				}
				refs = append(refs, prog.StreamRef(arr, kind, iter, jr.Stride, jr.Offset))
			}
			name := jp.Name
			if name == "" {
				name = fmt.Sprintf("p%d", pi)
			}
			spec, err := prog.NewProcessSpec(fmt.Sprintf("t%d.%s", ti, name), iter, jp.Compute, refs...)
			if err != nil {
				return nil, fmt.Errorf("workload: task %s proc %d: %w", jt.Name, pi, err)
			}
			ids[pi] = taskgraph.ProcID{Task: ti, Idx: pi}
			if err := g.AddProcess(&taskgraph.Process{ID: ids[pi], Spec: spec}); err != nil {
				return nil, err
			}
		}
		for pi, jp := range jt.Procs {
			for _, d := range jp.Deps {
				if d < 0 || d >= len(jt.Procs) {
					return nil, fmt.Errorf("workload: task %s proc %d: dep index %d out of range",
						jt.Name, pi, d)
				}
				if err := g.AddDep(ids[d], ids[pi]); err != nil {
					return nil, fmt.Errorf("workload: task %s proc %d: %w", jt.Name, pi, err)
				}
			}
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("workload: task %s: %w", jt.Name, err)
		}
		apps = append(apps, &App{
			Name:   jt.Name,
			Desc:   "user-defined task",
			Task:   ti,
			Graph:  g,
			Arrays: order,
		})
	}
	return apps, nil
}

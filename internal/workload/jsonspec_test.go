package workload

import (
	"strings"
	"testing"

	"locsched/internal/sharing"
	"locsched/internal/taskgraph"
)

const validSpec = `{
  "tasks": [{
    "name": "pipeline",
    "arrays": [
      {"name": "in",  "elems": 1024, "elem_bytes": 4},
      {"name": "out", "elems": 1024}
    ],
    "procs": [
      {"name": "produce", "iter_lo": 0, "iter_hi": 512, "compute": 2,
       "refs": [{"array": "in", "kind": "r", "stride": 1, "offset": 0},
                {"array": "out", "kind": "w", "stride": 1, "offset": 0}]},
      {"name": "consume", "iter_lo": 0, "iter_hi": 512, "compute": 1,
       "refs": [{"array": "out", "kind": "r", "stride": 1, "offset": 0}],
       "deps": [0]}
    ]
  },
  {
    "name": "other",
    "arrays": [{"name": "x", "elems": 256}],
    "procs": [
      {"iter_lo": 0, "iter_hi": 128,
       "refs": [{"array": "x", "stride": 2}]}
    ]
  }]
}`

func TestFromJSONValid(t *testing.T) {
	apps, err := FromJSON(strings.NewReader(validSpec))
	if err != nil {
		t.Fatalf("FromJSON: %v", err)
	}
	if len(apps) != 2 {
		t.Fatalf("got %d apps, want 2", len(apps))
	}
	p := apps[0]
	if p.Name != "pipeline" || p.Procs() != 2 || len(p.Arrays) != 2 {
		t.Errorf("pipeline app wrong: %+v", p)
	}
	if p.Graph.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", p.Graph.NumEdges())
	}
	// Default element size is 4 bytes.
	if p.Arrays[1].Elem != 4 {
		t.Errorf("default elem bytes = %d, want 4", p.Arrays[1].Elem)
	}
	// Sharing between producer and consumer via "out".
	m, err := sharing.ComputeMatrix(p.Graph)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Shared(taskgraph.ProcID{Task: 0, Idx: 0}, taskgraph.ProcID{Task: 0, Idx: 1})
	if got != 512*4 {
		t.Errorf("producer/consumer share %d bytes, want 2048", got)
	}
	// Unnamed proc gets a default name; second task independent.
	if apps[1].Procs() != 1 {
		t.Errorf("other app procs = %d, want 1", apps[1].Procs())
	}
	// Combined EPG must be valid (distinct task IDs by position).
	epg, _, err := Combine(apps...)
	if err != nil {
		t.Fatal(err)
	}
	if epg.Len() != 3 {
		t.Errorf("EPG procs = %d, want 3", epg.Len())
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := map[string]string{
		"empty tasks":     `{"tasks": []}`,
		"not json":        `{`,
		"unknown field":   `{"tasks": [], "bogus": 1}`,
		"missing name":    `{"tasks": [{"arrays": [], "procs": []}]}`,
		"duplicate array": `{"tasks": [{"name": "t", "arrays": [{"name":"a","elems":8},{"name":"a","elems":8}], "procs": []}]}`,
		"unknown array": `{"tasks": [{"name": "t", "arrays": [],
			"procs": [{"iter_lo":0,"iter_hi":4,"refs":[{"array":"nope"}]}]}]}`,
		"bad kind": `{"tasks": [{"name": "t", "arrays": [{"name":"a","elems":8}],
			"procs": [{"iter_lo":0,"iter_hi":4,"refs":[{"array":"a","kind":"x"}]}]}]}`,
		"empty iter": `{"tasks": [{"name": "t", "arrays": [{"name":"a","elems":8}],
			"procs": [{"iter_lo":4,"iter_hi":4,"refs":[{"array":"a"}]}]}]}`,
		"dep out of range": `{"tasks": [{"name": "t", "arrays": [{"name":"a","elems":8}],
			"procs": [{"iter_lo":0,"iter_hi":4,"refs":[{"array":"a"}],"deps":[5]}]}]}`,
		"self dep": `{"tasks": [{"name": "t", "arrays": [{"name":"a","elems":8}],
			"procs": [{"iter_lo":0,"iter_hi":4,"refs":[{"array":"a"}],"deps":[0]}]}]}`,
		"no refs": `{"tasks": [{"name": "t", "arrays": [{"name":"a","elems":8}],
			"procs": [{"iter_lo":0,"iter_hi":4}]}]}`,
	}
	for name, spec := range cases {
		if _, err := FromJSON(strings.NewReader(spec)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locsched/internal/store"
)

// The fleet bench: `locsched bench -fleet` proves the scale-out
// contract end to end without external orchestration. It replays the
// deterministic mixed stream twice — once against a single in-process
// daemon (the differential oracle) and once round-robin across an
// N-replica in-process fleet wired over loopback listeners (the
// restart-warm two-lifetime pattern, widened sideways) — then checks
// that every fleet response is byte-identical to the single-instance
// one, that the fleet's aggregate hit rate is no worse, and that the
// fleet executed strictly fewer jobs than N independent instances
// would have.

// ManifestRequests decodes a cache manifest file into the replayable
// requests recorded in its entries' metadata (endpoint + request
// body). Entries without replay metadata — foreign writers, cleared
// replay maps — are skipped silently: the manifest is advisory.
func ManifestRequests(path string) ([]streamReq, error) {
	entries, err := store.LoadManifest(store.OSFS{}, path)
	if err != nil {
		return nil, err
	}
	var reqs []streamReq
	for _, e := range entries {
		endpoint, body, ok := DecodeReplayMeta(e.Meta)
		if !ok {
			continue
		}
		reqs = append(reqs, streamReq{endpoint: "/v1/" + endpoint, body: body})
	}
	return reqs, nil
}

// FleetReport is the outcome of one fleet differential bench: the
// single-instance oracle run and the aggregate fleet run over the same
// stream.
type FleetReport struct {
	// Replicas is the fleet size.
	Replicas int
	// Single is the single-instance oracle run.
	Single *LoadReport
	// Fleet is the fleet run: per-request classes aggregated across the
	// whole fleet, Stats summed across replicas (gauges from replica 0).
	Fleet *LoadReport
	// Mismatched counts stream indices whose fleet response body
	// differed from the single-instance body (must be zero).
	Mismatched int
	// PeerHits is the fleet-wide count of responses served from
	// peer-fetched bytes.
	PeerHits int64
	// FleetExecutions is the fleet-wide execution total.
	FleetExecutions int64
}

// Verify checks the fleet contract: no errors, byte-identical bodies,
// aggregate hit rate at least the single-instance baseline, total
// executions strictly below Replicas × the single-instance count, and
// actual peer traffic (a fleet that never talks is N single instances).
func (r *FleetReport) Verify() error {
	if r.Single.Errors > 0 || r.Fleet.Errors > 0 {
		return fmt.Errorf("server: fleet bench had errors (single %d, fleet %d)", r.Single.Errors, r.Fleet.Errors)
	}
	if r.Mismatched > 0 {
		return fmt.Errorf("server: %d fleet responses differ from the single-instance oracle", r.Mismatched)
	}
	if r.Fleet.HitRate < r.Single.HitRate {
		return fmt.Errorf("server: fleet hit rate %.1f%% below single-instance %.1f%%",
			100*r.Fleet.HitRate, 100*r.Single.HitRate)
	}
	if limit := int64(r.Replicas) * r.Single.Stats.Executions; r.FleetExecutions >= limit {
		return fmt.Errorf("server: fleet executed %d jobs, not below %d× single-instance %d",
			r.FleetExecutions, r.Replicas, r.Single.Stats.Executions)
	}
	if r.PeerHits == 0 {
		return fmt.Errorf("server: fleet run never served from a peer")
	}
	return nil
}

// Format renders the fleet bench outcome for humans.
func (r *FleetReport) Format() string {
	var b bytes.Buffer
	b.WriteString("=== single instance (oracle) ===\n")
	b.WriteString(r.Single.Format())
	fmt.Fprintf(&b, "=== fleet (%d replicas) ===\n", r.Replicas)
	b.WriteString(r.Fleet.Format())
	fmt.Fprintf(&b, "fleet: hit rate %.1f%% vs single %.1f%%, executions %d vs %d×%d, %d peer hits, %d body mismatches\n",
		100*r.Fleet.HitRate, 100*r.Single.HitRate,
		r.FleetExecutions, r.Replicas, r.Single.Stats.Executions, r.PeerHits, r.Mismatched)
	return b.String()
}

// fleetNode is one in-process replica: its server, listener, and base
// URL.
type fleetNode struct {
	srv  *Server
	base string
	done chan error
}

// startFleet builds and serves n replicas on loopback listeners, wired
// into one ring. Listeners are bound first so every replica knows the
// full membership at construction. Each replica gets its own store
// directory under storeRoot when non-empty.
func startFleet(cfg Config, n int, storeRoot string) ([]*fleetNode, error) {
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		c := cfg
		c.FleetSelf = urls[i]
		c.FleetPeers = append(append([]string(nil), urls[:i]...), urls[i+1:]...)
		if storeRoot != "" {
			c.StoreDir = filepath.Join(storeRoot, fmt.Sprintf("replica-%d", i))
		}
		srv, err := New(c, nil)
		if err != nil {
			for _, node := range nodes[:i] {
				node.srv.Shutdown(context.Background())
			}
			return nil, err
		}
		node := &fleetNode{srv: srv, base: urls[i], done: make(chan error, 1)}
		go func(l net.Listener) { node.done <- srv.Serve(l) }(listeners[i])
		nodes[i] = node
	}
	return nodes, nil
}

// stopFleet drains every replica.
func stopFleet(nodes []*fleetNode, drain time.Duration) error {
	var first error
	for _, n := range nodes {
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		if err := n.srv.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		cancel()
		if err := <-n.done; err != nil && err != http.ErrServerClosed && first == nil {
			first = err
		}
	}
	return first
}

// replayStream replays the mixed stream deterministically: request i
// goes to bases[i%len(bases)], indices are claimed in order off a
// shared cursor by conc clients, and each index's response body is
// captured for the differential comparison. Repeats of the same stream
// slot are ordered — index i+len(stream) starts only after index i
// completed — so whether a repeat is a hit never depends on how long
// the first execution of a slow key (the whole-figure request) takes:
// against a single instance the repeat is a cache hit, against a fleet
// the prior completion's synchronous owner replication guarantees a
// peer or cache hit, and the differential stays an equality at any
// request count. Distinct slots remain fully concurrent. It returns
// the bodies and a class-count report (Stats left empty for the caller
// to fill).
func replayStream(bases []string, stream []streamReq, requests, conc int, timeout time.Duration) ([][]byte, *LoadReport, error) {
	if requests <= 0 {
		requests = 2 * len(stream)
	}
	if conc <= 0 {
		conc = 4
	}
	client := &http.Client{Timeout: timeout}
	bodies := make([][]byte, requests)
	rep := &LoadReport{Requests: requests}
	var errs, cold, cached, disk, coalesced, peer atomic.Int64
	var latMu sync.Mutex
	var lats []time.Duration
	var next atomic.Int64
	next.Store(-1)
	// rounds[slot] counts completed requests of that stream slot; a
	// worker holding round r of a slot waits for rounds[slot] == r.
	// Waits only ever look backwards in index order (earlier indices
	// are always claimed first), so there is no circular wait.
	rounds := make([]int, len(stream))
	var roundsMu sync.Mutex
	roundsCond := sync.NewCond(&roundsMu)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1))
				if idx >= requests {
					return
				}
				slot, round := idx%len(stream), idx/len(stream)
				roundsMu.Lock()
				for rounds[slot] < round {
					roundsCond.Wait()
				}
				roundsMu.Unlock()
				r := stream[slot]
				base := bases[idx%len(bases)]
				func() {
					// The slot's round advances on every outcome, errors
					// included — a waiter blocked on a failed predecessor
					// must not deadlock.
					reqStart := time.Now()
					defer func() {
						lat := time.Since(reqStart)
						latMu.Lock()
						lats = append(lats, lat)
						latMu.Unlock()
						roundsMu.Lock()
						rounds[slot]++
						roundsCond.Broadcast()
						roundsMu.Unlock()
					}()
					resp, err := client.Post(base+r.endpoint, "application/json", bytes.NewReader(r.body))
					if err != nil {
						errs.Add(1)
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusOK {
						errs.Add(1)
						return
					}
					bodies[idx] = body
					switch resp.Header.Get(resultHeader) {
					case "cold":
						cold.Add(1)
					case "cached":
						cached.Add(1)
					case "disk":
						disk.Add(1)
					case "coalesced":
						coalesced.Add(1)
					case "peer":
						peer.Add(1)
					}
				}()
			}
		}()
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	rep.Errors = int(errs.Load())
	rep.Cold = int(cold.Load())
	rep.Cached = int(cached.Load())
	rep.Disk = int(disk.Load())
	rep.Coalesced = int(coalesced.Load())
	rep.Peer = int(peer.Load())
	if ok := rep.Cold + rep.Cached + rep.Disk + rep.Coalesced + rep.Peer; ok > 0 {
		rep.HitRate = float64(rep.Cached+rep.Disk+rep.Coalesced+rep.Peer) / float64(ok)
	}
	if rep.Elapsed > 0 {
		rep.RPS = float64(rep.Requests) / rep.Elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.P50 = percentile(lats, 50)
	rep.P95 = percentile(lats, 95)
	rep.P99 = percentile(lats, 99)
	return bodies, rep, nil
}

// RunFleetBench runs the fleet differential bench: the deterministic
// mixed stream against one in-process single instance (the oracle),
// then against a replicas-wide in-process fleet, comparing bodies
// index by index. srvCfg.StoreDir, when set, is used as a root: the
// single instance and each replica get disjoint store directories
// beneath it, mirroring one volume per replica in production.
func RunFleetBench(srvCfg Config, load LoadConfig, replicas int) (*FleetReport, error) {
	if replicas < 2 {
		return nil, fmt.Errorf("server: fleet bench needs at least 2 replicas (got %d)", replicas)
	}
	if srvCfg.Store != nil {
		return nil, fmt.Errorf("server: fleet bench must own its stores; set StoreDir, not Store")
	}
	if load.Timeout <= 0 {
		load.Timeout = 120 * time.Second
	}
	storeRoot := srvCfg.StoreDir
	stream := buildStream(load.Scale)

	// Oracle lifetime: one instance, no fleet.
	single := srvCfg
	single.FleetSelf, single.FleetPeers = "", nil
	if storeRoot != "" {
		single.StoreDir = filepath.Join(storeRoot, "single")
	}
	oracleNodes, err := startFleetSingle(single)
	if err != nil {
		return nil, fmt.Errorf("server: fleet bench oracle: %w", err)
	}
	oracleBodies, oracleRep, err := replayStream([]string{oracleNodes[0].base}, stream, load.Requests, load.Concurrency, load.Timeout)
	if err == nil {
		oracleRep.Stats = oracleNodes[0].srv.snapshot()
	}
	if serr := stopFleet(oracleNodes, srvCfg.DrainTimeout); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return nil, fmt.Errorf("server: fleet bench oracle: %w", err)
	}

	// Fleet lifetime: the same stream round-robin across the replicas.
	base := srvCfg
	base.StoreDir = ""
	nodes, err := startFleet(base, replicas, storeRoot)
	if err != nil {
		return nil, fmt.Errorf("server: fleet bench fleet: %w", err)
	}
	bases := make([]string, len(nodes))
	for i, n := range nodes {
		bases[i] = n.base
	}
	fleetBodies, fleetRep, err := replayStream(bases, stream, load.Requests, load.Concurrency, load.Timeout)
	rep := &FleetReport{Replicas: replicas, Single: oracleRep, Fleet: fleetRep}
	if err == nil {
		for i, n := range nodes {
			snap := n.srv.snapshot()
			rep.FleetExecutions += snap.Executions
			rep.PeerHits += snap.PeerHits
			if i == 0 {
				fleetRep.Stats = snap
			} else {
				fleetRep.Stats.Executions += snap.Executions
				fleetRep.Stats.PeerHits += snap.PeerHits
				fleetRep.Stats.PeerErrors += snap.PeerErrors
				fleetRep.Stats.CacheHits += snap.CacheHits
				fleetRep.Stats.DiskHits += snap.DiskHits
				fleetRep.Stats.DiskWrites += snap.DiskWrites
			}
		}
	}
	if serr := stopFleet(nodes, srvCfg.DrainTimeout); serr != nil && err == nil {
		err = serr
	}
	if err != nil {
		return nil, fmt.Errorf("server: fleet bench fleet: %w", err)
	}
	for i := range fleetBodies {
		if !bytes.Equal(fleetBodies[i], oracleBodies[i]) {
			rep.Mismatched++
		}
	}
	return rep, nil
}

// startFleetSingle serves one non-fleet instance the same way
// startFleet serves replicas, so both lifetimes share setup/teardown.
func startFleetSingle(cfg Config) ([]*fleetNode, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv, err := New(cfg, nil)
	if err != nil {
		l.Close()
		return nil, err
	}
	node := &fleetNode{srv: srv, base: "http://" + l.Addr().String(), done: make(chan error, 1)}
	go func() { node.done <- srv.Serve(l) }()
	return []*fleetNode{node}, nil
}

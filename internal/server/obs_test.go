package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"

	"locsched/internal/obs"
)

// The observability suite: /statsz keeps its exact JSON contract,
// /metricsz renders parseable exposition with the key series populated,
// and trace ids mint/echo/propagate across fleet replicas — all without
// disturbing a single response byte.

// syncBuffer is a goroutine-safe log sink for capturing structured
// access and span lines from a live server.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestStatszFieldSet is the /statsz compatibility regression: routing
// the counters through the metrics registry must not add, drop, or
// rename a single top-level JSON field.
func TestStatszFieldSet(t *testing.T) {
	p := &fakePlanner{}
	_, ts := testServer(t, smallConfig(), p)
	postBody(t, ts.URL+"/v1/run", `{"a":1}`)

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"uptime_seconds", "requests", "cache_hits", "coalesced",
		"executions", "rejected", "timeouts", "coalesce_timeouts",
		"disk_hits", "disk_writes", "peer_hits", "peer_errors",
		"failures", "bad_requests", "queue_depth", "queue_cap",
		"inflight_keys", "result_entries", "result_bytes",
		"persistent_store", "fleet", "experiment",
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("/statsz top-level fields changed:\n got  %v\n want %v", got, want)
	}
	if m["requests"].(float64) != 1 {
		t.Fatalf("requests = %v, want 1", m["requests"])
	}
}

// metricValue finds the value of the named series (optionally matching
// one label) in a parsed scrape, or -1 when absent.
func metricValue(samples []obs.Sample, name, labelKey, labelVal string) float64 {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		if labelKey != "" && s.Label(labelKey) != labelVal {
			continue
		}
		return s.Value
	}
	return -1
}

// TestMetricszExposition: after live traffic, /metricsz serves valid
// Prometheus text exposition whose request, cache, queue, and latency
// series reflect what actually happened.
func TestMetricszExposition(t *testing.T) {
	p := &fakePlanner{}
	_, ts := testServer(t, smallConfig(), p)
	postBody(t, ts.URL+"/v1/run", `{"a":1}`) // cold
	postBody(t, ts.URL+"/v1/run", `{"a":1}`) // cached

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metricsz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	if v := metricValue(samples, "locsched_server_requests_total", "", ""); v != 2 {
		t.Fatalf("requests_total = %v, want 2", v)
	}
	if v := metricValue(samples, "locsched_cache_memory_hits_total", "", ""); v != 1 {
		t.Fatalf("cache_memory_hits_total = %v, want 1", v)
	}
	if v := metricValue(samples, "locsched_server_responses_total", "class", "cold"); v != 1 {
		t.Fatalf(`responses_total{class="cold"} = %v, want 1`, v)
	}
	if v := metricValue(samples, "locsched_server_responses_total", "class", "cached"); v != 1 {
		t.Fatalf(`responses_total{class="cached"} = %v, want 1`, v)
	}
	// Histograms: the request histogram saw both HTTP requests, the
	// execution histogram the single job, and the de-cumulated buckets
	// sum back to the count.
	if v := metricValue(samples, "locsched_server_request_seconds_count", "", ""); v < 2 {
		t.Fatalf("request_seconds_count = %v, want >= 2", v)
	}
	if v := metricValue(samples, "locsched_server_execution_seconds_count", "", ""); v != 1 {
		t.Fatalf("execution_seconds_count = %v, want 1", v)
	}
	h, ok := obs.HistogramFromSamples(samples, "locsched_server_request_seconds")
	if !ok {
		t.Fatal("request_seconds histogram not reconstructable from scrape")
	}
	if h.Count < 2 {
		t.Fatalf("reconstructed histogram count = %d, want >= 2", h.Count)
	}
	// Gauges are sampled live from their owners.
	if v := metricValue(samples, "locsched_server_queue_capacity", "", ""); v != 8 {
		t.Fatalf("queue_capacity = %v, want 8", v)
	}
	if v := metricValue(samples, "locsched_server_queue_depth", "", ""); v < 0 {
		t.Fatal("queue_depth series missing")
	}
	if v := metricValue(samples, "locsched_store_writes_total", "", ""); v != -1 {
		t.Fatalf("store series present without a store: writes_total = %v", v)
	}
}

// TestMetricszMethodNotAllowed: the scrape endpoint is read-only.
func TestMetricszMethodNotAllowed(t *testing.T) {
	p := &fakePlanner{}
	_, ts := testServer(t, smallConfig(), p)
	resp, err := http.Post(ts.URL+"/metricsz", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metricsz: status %d, want 405", resp.StatusCode)
	}
}

// TestTraceHeader: every response carries a valid trace id; a valid
// inbound id is adopted and echoed, an invalid one is replaced.
func TestTraceHeader(t *testing.T) {
	p := &fakePlanner{}
	_, ts := testServer(t, smallConfig(), p)

	resp, _ := postBody(t, ts.URL+"/v1/run", `{"a":1}`)
	minted := resp.Header.Get(obs.TraceHeader)
	if !obs.ValidTraceID(minted) {
		t.Fatalf("minted trace id %q is not valid", minted)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(`{"a":2}`))
	req.Header.Set(obs.TraceHeader, "deadbeef-0042")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(obs.TraceHeader); got != "deadbeef-0042" {
		t.Fatalf("valid inbound id not echoed: got %q", got)
	}

	req3, _ := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(`{"a":3}`))
	req3.Header.Set(obs.TraceHeader, "not!a//trace id")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	got := resp3.Header.Get(obs.TraceHeader)
	if got == "not!a//trace id" || !obs.ValidTraceID(got) {
		t.Fatalf("invalid inbound id not replaced: got %q", got)
	}
}

// TestFleetTracePropagation: a trace id supplied to a non-owner rides
// the peer fetch to the owner, so one request is correlatable in both
// replicas' structured logs by a single grep.
func TestFleetTracePropagation(t *testing.T) {
	logs := make([]*syncBuffer, 2)
	nodes := startChaosFleet(t, 2, func(i int, cfg *Config) {
		logs[i] = &syncBuffer{}
		level, err := obs.ParseLevel("debug")
		if err != nil {
			t.Fatal(err)
		}
		logger, err := obs.NewLogger(logs[i], "json", level)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Logger = logger
	})
	a, b := nodes[0], nodes[1]
	body := bodyOwnedBy(t, "run", []string{a.base, b.base}, b.base)

	// Owner computes first so the non-owner's request is a pure peer hit.
	respB, _ := postBody(t, b.base+"/v1/run", body)
	if respB.Header.Get(resultHeader) != "cold" {
		t.Fatalf("owner compute served %q, want cold", respB.Header.Get(resultHeader))
	}

	const id = "deadbeef-cafe-0001"
	req, _ := http.NewRequest("POST", a.base+"/v1/run", strings.NewReader(body))
	req.Header.Set(obs.TraceHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(resultHeader) != "peer" {
		t.Fatalf("non-owner served %q, want peer", resp.Header.Get(resultHeader))
	}
	if got := resp.Header.Get(obs.TraceHeader); got != id {
		t.Fatalf("trace id not echoed: got %q", got)
	}

	needle := `"trace_id":"` + id + `"`
	if !strings.Contains(logs[0].String(), needle) {
		t.Fatalf("non-owner log lacks %s:\n%s", needle, logs[0].String())
	}
	if !strings.Contains(logs[1].String(), needle) {
		t.Fatalf("owner log lacks %s — trace id did not propagate over the peer fetch:\n%s", needle, logs[1].String())
	}
	// The non-owner's span log names the peer-fetch span under the trace.
	if !strings.Contains(logs[0].String(), `"span":"cache_peer"`) {
		t.Fatalf("non-owner log lacks cache_peer span:\n%s", logs[0].String())
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"locsched/internal/store"
)

// Server-level persistence tests: the daemon warm-starts from the store
// across a restart with byte-identical responses, keeps serving when the
// store misbehaves, and reports the degraded state distinctly from
// draining.

// startServer builds a server (without registering cleanup, so tests can
// restart) and returns it with its httptest front end.
func startServer(t *testing.T, cfg Config, p Planner) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// stopServer tears down a startServer pair in order.
func stopServer(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// getStats fetches and decodes /statsz.
func getStats(t *testing.T, url string) StatsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestWarmRestartFromDisk: a response computed before a restart is
// served from disk after it — byte-identical, counted as a disk hit,
// and promoted into memory so the next repeat is a memory hit.
func TestWarmRestartFromDisk(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.StoreDir = dir

	s1, ts1 := startServer(t, cfg, &fakePlanner{})
	resp, cold := postBody(t, ts1.URL+"/v1/run", `{"persist":1}`)
	if resp.StatusCode != 200 || resp.Header.Get(resultHeader) != "cold" {
		t.Fatalf("cold: status %d, served %q", resp.StatusCode, resp.Header.Get(resultHeader))
	}
	if snap := getStats(t, ts1.URL); snap.DiskWrites != 1 || !snap.Store.Enabled || snap.Store.Degraded {
		t.Fatalf("pre-restart store stats: %+v", snap.Store)
	}
	stopServer(t, s1, ts1)

	// "Restart": a fresh server over the same directory and a planner
	// that would produce the same bytes if it ran — but it must not run.
	p2 := &fakePlanner{}
	s2, ts2 := startServer(t, cfg, p2)
	defer stopServer(t, s2, ts2)

	resp, warm := postBody(t, ts2.URL+"/v1/run", `{"persist":1}`)
	if resp.StatusCode != 200 || resp.Header.Get(resultHeader) != "disk" {
		t.Fatalf("warm: status %d, served %q, want disk", resp.StatusCode, resp.Header.Get(resultHeader))
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("disk body differs from cold body: %q vs %q", cold, warm)
	}
	if n := p2.execs.Load(); n != 0 {
		t.Fatalf("restarted server recomputed %d times, want 0", n)
	}
	// The disk hit promoted the entry: the next repeat hits memory.
	resp, again := postBody(t, ts2.URL+"/v1/run", `{"persist":1}`)
	if resp.Header.Get(resultHeader) != "cached" {
		t.Fatalf("post-promotion served %q, want cached", resp.Header.Get(resultHeader))
	}
	if !bytes.Equal(cold, again) {
		t.Fatal("promoted body differs from cold body")
	}
	snap := getStats(t, ts2.URL)
	if snap.DiskHits != 1 || snap.CacheHits != 1 || snap.Executions != 0 {
		t.Fatalf("warm stats: disk_hits=%d cache_hits=%d executions=%d", snap.DiskHits, snap.CacheHits, snap.Executions)
	}
}

// TestStoreFaultsDegradeNotFail: when the disk starts erroring, requests
// keep succeeding from the compute path, the breaker opens, and the
// daemon reports degraded on /healthz (200) and /statsz.
func TestStoreFaultsDegradeNotFail(t *testing.T) {
	dir := t.TempDir()
	ffs := store.NewFaultFS(store.OSFS{})
	st, err := store.Open(dir, store.Options{
		FS:               ffs,
		RetryBase:        time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // stays open for the test's lifetime
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	cfg := smallConfig()
	cfg.Store = st
	s, ts := testServer(t, cfg, &fakePlanner{})

	// Healthy first: the store works and healthz is plain ok.
	resp, _ := postBody(t, ts.URL+"/v1/run", `{"h":1}`)
	if resp.StatusCode != 200 {
		t.Fatalf("healthy request: %d", resp.StatusCode)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("healthy healthz: %d", hr.StatusCode)
	}
	if s.storeDegraded() {
		t.Fatal("degraded before any fault")
	}

	// Break the disk. Writes fail through their retries, the breaker
	// trips, and the response is still a 200 cold compute.
	ffs.FailOps(store.OpWrite, store.OpSync, store.OpOpen)
	resp, body := postBody(t, ts.URL+"/v1/run", `{"h":2}`)
	if resp.StatusCode != 200 || len(body) == 0 {
		t.Fatalf("request during disk failure: %d", resp.StatusCode)
	}
	if !s.storeDegraded() {
		t.Fatalf("breaker did not open: %+v", st.Stats())
	}

	// healthz: degraded, still 200 — a broken disk must not fail probes.
	hr, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 || health.Status != "degraded" {
		t.Fatalf("degraded healthz: status %d body %q", hr.StatusCode, health.Status)
	}
	snap := getStats(t, ts.URL)
	if !snap.Store.Enabled || !snap.Store.Degraded || snap.Store.Store.Breaker == store.BreakerClosed {
		t.Fatalf("degraded statsz store section: %+v", snap.Store)
	}
}

// TestStoreOpenFailureServesMemoryOnly: an unusable store directory
// must not fail startup — the daemon serves memory-only and reports
// degraded with the open error in /statsz.
func TestStoreOpenFailureServesMemoryOnly(t *testing.T) {
	// A regular file where the store directory should be.
	bad := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.StoreDir = bad
	s, ts := testServer(t, cfg, &fakePlanner{})

	resp, _ := postBody(t, ts.URL+"/v1/run", `{"m":1}`)
	if resp.StatusCode != 200 {
		t.Fatalf("memory-only request: %d", resp.StatusCode)
	}
	if resp2, _ := postBody(t, ts.URL+"/v1/run", `{"m":1}`); resp2.Header.Get(resultHeader) != "cached" {
		t.Fatalf("memory cache broken without store: served %q", resp2.Header.Get(resultHeader))
	}
	if !s.storeDegraded() {
		t.Fatal("open failure not reported as degraded")
	}
	snap := getStats(t, ts.URL)
	if !snap.Store.Enabled || !snap.Store.Degraded || snap.Store.OpenError == "" {
		t.Fatalf("open-failure store section: %+v", snap.Store)
	}
}

// TestIntegrationRestartWarm runs the full restart-warm bench harness —
// two in-process daemon lifetimes with the real experiment planner over
// one store directory — and asserts the warm-start contract it was
// built to prove: no hit-rate regression across the restart and a
// warm lifetime actually served from disk.
func TestIntegrationRestartWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations twice")
	}
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.Scale = 1
	cfg.StoreDir = t.TempDir()
	rep, err := RunRestartWarm(cfg, LoadConfig{
		Concurrency: 4,
		Requests:    40,
		Scale:       1,
		Timeout:     2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Verify(); err != nil {
		t.Fatalf("%v\n%s", err, rep.Format())
	}
	// The warm lifetime must not recompute keys the store already
	// holds: its execution count stays below the cold lifetime's (only
	// the per-run coalesce-burst nonce keys are genuinely new).
	if rep.Warm.Stats.Executions >= rep.Cold.Stats.Executions {
		t.Fatalf("warm executions %d did not drop below cold %d\n%s",
			rep.Warm.Stats.Executions, rep.Cold.Stats.Executions, rep.Format())
	}
	if rep.Warm.Stats.Store.Store.Recovered == 0 {
		t.Fatalf("warm store recovered no entries\n%s", rep.Format())
	}
	// Both lifetimes measured real requests, so the latency percentiles
	// must be populated and ordered.
	for name, lr := range map[string]*LoadReport{"cold": rep.Cold, "warm": rep.Warm} {
		if lr.P50 <= 0 || lr.P95 < lr.P50 || lr.P99 < lr.P95 {
			t.Errorf("%s lifetime: implausible latency percentiles p50=%v p95=%v p99=%v",
				name, lr.P50, lr.P95, lr.P99)
		}
	}
}

// TestDrainingBeatsDegraded: a draining daemon answers 503 draining even
// when its store is also degraded — shutdown wins over degradation.
func TestDrainingBeatsDegraded(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.StoreDir = bad
	s, ts := startServer(t, cfg, &fakePlanner{})
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("draining+degraded healthz: status %d body %q, want 503 draining", hr.StatusCode, health.Status)
	}
}

package server

import (
	"encoding/json"
	"testing"

	"locsched/internal/mpsoc"
)

// FuzzTopologyDecode fuzzes the machine-model surface that /v1/run (and,
// through the same parsers, the CLI's machine flags and topo grid)
// accepts: speed-class specs, topology names, and hop penalties. The
// properties under test:
//
//   - the planner never panics on any machine spec, valid or not;
//   - planning is deterministic — a body that plans once plans again to
//     the same content-addressed key;
//   - an accepted plan implies the machine spec validates, so the
//     magnitude caps (MaxSpeedClasses, MaxSpeedClass, MaxHopPenalty)
//     cannot be bypassed over HTTP;
//   - ParseSpeedClasses only accepts classes in [1, MaxSpeedClass] and
//     never returns an empty table;
//   - ParseTopology round-trips through Topology.String.
func FuzzTopologyDecode(f *testing.F) {
	f.Add("1,4", "mesh", int64(16))
	f.Add("", "bus", int64(0))
	f.Add("1", "", int64(0))
	f.Add("1,2,4,8", "ring", int64(1))
	f.Add("0", "mesh", int64(-1))      // class below minimum, negative hop
	f.Add("1,1025", "torus", int64(4)) // class above cap, unknown topology
	f.Add("1,,4", "MESH", int64(1<<20+1))
	f.Add(" 2 , 3 ", "Bus", int64(7))
	f.Add("9999999999999999999999", "ring\x00", int64(42))

	planner := newExperimentPlanner(DefaultConfig())
	f.Fuzz(func(t *testing.T, speeds, topo string, hop int64) {
		classes, err := mpsoc.ParseSpeedClasses(speeds)
		if err == nil {
			if len(classes) == 0 {
				t.Fatalf("ParseSpeedClasses(%q) returned an empty table without error", speeds)
			}
			for _, c := range classes {
				if c < 1 || c > mpsoc.MaxSpeedClass {
					t.Fatalf("ParseSpeedClasses(%q) accepted out-of-range class %d", speeds, c)
				}
			}
		}
		if tp, err := mpsoc.ParseTopology(topo); err == nil {
			rt, err := mpsoc.ParseTopology(tp.String())
			if err != nil || rt != tp {
				t.Fatalf("ParseTopology(%q) = %v does not round-trip: %v, %v", topo, tp, rt, err)
			}
		}

		body, err := json.Marshal(RunRequest{
			Workload: WorkloadSpec{App: "MxM"},
			Policy:   "ls",
			Config: ConfigSpec{
				SpeedClasses: speeds,
				Topology:     topo,
				HopPenalty:   &hop,
			},
		})
		if err != nil {
			return // unencodable fuzz input (invalid UTF-8 is replaced, so this is rare)
		}
		job, err := planner.Plan("run", body)
		if err != nil {
			return // rejected spec: a 400, which is fine — we only require no panic
		}
		m := mpsoc.Machine{SpeedClasses: speeds, HopPenalty: hop}
		if topo != "" {
			tp, perr := mpsoc.ParseTopology(topo)
			if perr != nil {
				t.Fatalf("plan accepted unparseable topology %q", topo)
			}
			m.Topology = tp
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("plan accepted machine spec that fails validation: %v", verr)
		}
		again, err := planner.Plan("run", body)
		if err != nil {
			t.Fatalf("replanning the same body failed: %v", err)
		}
		if again.Key != job.Key {
			t.Fatalf("replanning the same body diverged: key %q vs %q", job.Key, again.Key)
		}
	})
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"locsched/internal/fleet"
)

// The fleet chaos suite: every peer-fetch failure mode — owner down,
// owner slow past the deadline, corrupt bytes, clean miss, membership
// change mid-stream — must degrade to a local recompute with a 200 and
// the right counters. The fleet layer may cost extra work, never a 5xx.

// rtFunc adapts a function to http.RoundTripper (the Config
// PeerTransport chaos seam).
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// deadPeerURL returns a loopback URL nothing listens on (bound once to
// reserve a real port, then closed).
func deadPeerURL(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	l.Close()
	return url
}

// bodyOwnedBy searches for a request body whose fakePlanner content key
// (endpoint|body) the given member owns under the given membership.
func bodyOwnedBy(t *testing.T, endpoint string, members []string, owner string) string {
	t.Helper()
	r := fleet.NewRing(members[0], members[1:])
	for i := 0; i < 100000; i++ {
		body := fmt.Sprintf(`{"k":%d}`, i)
		if r.Owner(endpoint+"|"+body) == owner {
			return body
		}
	}
	t.Fatalf("no key found owned by %s", owner)
	return ""
}

// chaosNode is one real replica in an in-process chaos fleet: its
// server, base URL, and the scripted planner counting its executions.
type chaosNode struct {
	srv     *Server
	base    string
	planner *fakePlanner
	done    chan error
}

// startChaosFleet serves n fakePlanner-backed replicas on loopback
// listeners wired into one ring (listeners bound first so every replica
// knows the full membership), torn down in t.Cleanup.
func startChaosFleet(t *testing.T, n int, mutate func(i int, cfg *Config)) []*chaosNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*chaosNode, n)
	for i := range nodes {
		cfg := smallConfig()
		cfg.FleetSelf = urls[i]
		cfg.FleetPeers = append(append([]string(nil), urls[:i]...), urls[i+1:]...)
		if mutate != nil {
			mutate(i, &cfg)
		}
		p := &fakePlanner{}
		srv, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		node := &chaosNode{srv: srv, base: urls[i], planner: p, done: make(chan error, 1)}
		go func(l net.Listener, node *chaosNode) { node.done <- node.srv.Serve(l) }(listeners[i], node)
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := node.srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown %s: %v", node.base, err)
			}
			cancel()
			if err := <-node.done; err != nil && err != http.ErrServerClosed {
				t.Errorf("serve %s: %v", node.base, err)
			}
		}
	})
	return nodes
}

// TestFleetPeerHitServesOwnerBytes: the happy path. A key computed on
// its owner is served to a non-owner via one peer fetch — class "peer",
// byte-identical body, zero extra executions — and the fetched bytes
// are promoted into the non-owner's memory cache for repeats.
func TestFleetPeerHitServesOwnerBytes(t *testing.T) {
	nodes := startChaosFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	body := bodyOwnedBy(t, "run", []string{a.base, b.base}, b.base)

	respB, bytesB := postBody(t, b.base+"/v1/run", body)
	if respB.StatusCode != 200 || respB.Header.Get(resultHeader) != "cold" {
		t.Fatalf("owner compute: status %d, served %q", respB.StatusCode, respB.Header.Get(resultHeader))
	}
	respA, bytesA := postBody(t, a.base+"/v1/run", body)
	if respA.StatusCode != 200 || respA.Header.Get(resultHeader) != "peer" {
		t.Fatalf("non-owner: status %d, served %q, want 200/peer", respA.StatusCode, respA.Header.Get(resultHeader))
	}
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatalf("peer body differs from owner body: %q vs %q", bytesA, bytesB)
	}
	if n := a.planner.execs.Load(); n != 0 {
		t.Fatalf("non-owner executed %d jobs, want 0", n)
	}
	if n := a.srv.stats.peerHits.Value(); n != 1 {
		t.Fatalf("peer hits = %d, want 1", n)
	}
	if n := b.srv.stats.peerServes.Value(); n != 1 {
		t.Fatalf("owner peer serves = %d, want 1", n)
	}
	// The fetched bytes were promoted: the repeat is a memory cache hit,
	// not a second round-trip.
	respA2, _ := postBody(t, a.base+"/v1/run", body)
	if respA2.Header.Get(resultHeader) != "cached" {
		t.Fatalf("repeat after peer hit served %q, want cached", respA2.Header.Get(resultHeader))
	}
	if n := a.srv.stats.peerHits.Value(); n != 1 {
		t.Fatalf("peer hits after repeat = %d, want still 1", n)
	}
}

// TestFleetMissThenReplicateToOwner: a non-owner that computes a key
// (after a clean peer miss — the owner answers 404, never an error)
// replicates the bytes to the owner synchronously, so the owner serves
// the very next request from its cache without executing.
func TestFleetMissThenReplicateToOwner(t *testing.T) {
	nodes := startChaosFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	body := bodyOwnedBy(t, "run", []string{a.base, b.base}, b.base)

	respA, bytesA := postBody(t, a.base+"/v1/run", body)
	if respA.StatusCode != 200 || respA.Header.Get(resultHeader) != "cold" {
		t.Fatalf("non-owner compute: status %d, served %q", respA.StatusCode, respA.Header.Get(resultHeader))
	}
	if n := a.srv.stats.peerMisses.Value(); n != 1 {
		t.Fatalf("peer misses = %d, want 1 (cold owner answers 404)", n)
	}
	if n := a.srv.stats.peerErrors.Value(); n != 0 {
		t.Fatalf("peer errors = %d, want 0 (a clean miss is not an error)", n)
	}
	if n := a.srv.stats.peerReplOut.Value(); n != 1 {
		t.Fatalf("replications out = %d, want 1", n)
	}
	if n := b.srv.stats.peerReplIn.Value(); n != 1 {
		t.Fatalf("owner replications in = %d, want 1", n)
	}
	respB, bytesB := postBody(t, b.base+"/v1/run", body)
	if respB.Header.Get(resultHeader) != "cached" {
		t.Fatalf("owner after replication served %q, want cached", respB.Header.Get(resultHeader))
	}
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatalf("replicated body differs: %q vs %q", bytesA, bytesB)
	}
	if n := b.planner.execs.Load(); n != 0 {
		t.Fatalf("owner executed %d jobs, want 0 (replication filled its cache)", n)
	}
}

// TestFleetChaosPeerDown: the owner is unreachable (connection
// refused). The request still succeeds as a local recompute — 200,
// class "cold" — with the failure visible as peer_errors in /statsz.
func TestFleetChaosPeerDown(t *testing.T) {
	dead := deadPeerURL(t)
	cfg := smallConfig()
	cfg.FleetSelf = "http://replica-a.test"
	cfg.FleetPeers = []string{dead}
	cfg.PeerTimeout = 200 * time.Millisecond
	p := &fakePlanner{}
	s, ts := testServer(t, cfg, p)

	body := bodyOwnedBy(t, "run", []string{cfg.FleetSelf, dead}, dead)
	resp, b := postBody(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != 200 || resp.Header.Get(resultHeader) != "cold" {
		t.Fatalf("status %d, served %q, want 200/cold", resp.StatusCode, resp.Header.Get(resultHeader))
	}
	if want := "resp:run|" + body; string(b) != want {
		t.Fatalf("body %q, want %q", b, want)
	}
	if n := s.stats.peerErrors.Value(); n != 1 {
		t.Fatalf("peer errors = %d, want 1", n)
	}
	if n := p.execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1 (hedged to local recompute)", n)
	}

	// The failure is operationally visible: /statsz carries peer_errors
	// and the fleet block.
	stResp, stBody := postStats(t, ts.URL)
	defer stResp.Body.Close()
	var snap struct {
		PeerErrors int64 `json:"peer_errors"`
		Fleet      struct {
			Enabled bool     `json:"enabled"`
			Members []string `json:"members"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(stBody, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.PeerErrors != 1 || !snap.Fleet.Enabled || len(snap.Fleet.Members) != 2 {
		t.Fatalf("statsz: peer_errors=%d enabled=%v members=%v", snap.PeerErrors, snap.Fleet.Enabled, snap.Fleet.Members)
	}
}

// postStats reads /statsz raw.
func postStats(t *testing.T, base string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestFleetChaosPeerSlow: the owner hangs past the per-attempt
// deadline. The fetch times out and the request hedges to local
// recompute — 200, never a 5xx, bounded by PeerTimeout.
func TestFleetChaosPeerSlow(t *testing.T) {
	peer := "http://slow-owner.test"
	cfg := smallConfig()
	cfg.FleetSelf = "http://replica-a.test"
	cfg.FleetPeers = []string{peer}
	cfg.PeerTimeout = 30 * time.Millisecond
	cfg.PeerTransport = rtFunc(func(r *http.Request) (*http.Response, error) {
		<-r.Context().Done() // hang until the attempt deadline fires
		return nil, r.Context().Err()
	})
	p := &fakePlanner{}
	s, ts := testServer(t, cfg, p)

	body := bodyOwnedBy(t, "run", []string{cfg.FleetSelf, peer}, peer)
	start := time.Now()
	resp, _ := postBody(t, ts.URL+"/v1/run", body)
	elapsed := time.Since(start)
	if resp.StatusCode != 200 || resp.Header.Get(resultHeader) != "cold" {
		t.Fatalf("status %d, served %q, want 200/cold", resp.StatusCode, resp.Header.Get(resultHeader))
	}
	if n := s.stats.peerErrors.Value(); n != 1 {
		t.Fatalf("peer errors = %d, want 1", n)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("slow peer stalled the request for %v; the fetch deadline did not bound it", elapsed)
	}
}

// TestFleetChaosCorruptPeerBytes: the owner answers 200 with bytes that
// fail their CRC. The client rejects them (never served, no retry
// against a liar) and the request recomputes locally — the response is
// the correct local bytes, not the corrupt ones.
func TestFleetChaosCorruptPeerBytes(t *testing.T) {
	peer := "http://corrupt-owner.test"
	corrupt := []byte(`{"tampered":true}`)
	cfg := smallConfig()
	cfg.FleetSelf = "http://replica-a.test"
	cfg.FleetPeers = []string{peer}
	cfg.PeerTransport = rtFunc(func(r *http.Request) (*http.Response, error) {
		h := make(http.Header)
		h.Set(fleet.HeaderCRC, "deadbeef") // does not match the body
		h.Set(fleet.HeaderCost, "12345")
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     h,
			Body:       io.NopCloser(bytes.NewReader(corrupt)),
		}, nil
	})
	p := &fakePlanner{}
	s, ts := testServer(t, cfg, p)

	body := bodyOwnedBy(t, "run", []string{cfg.FleetSelf, peer}, peer)
	resp, b := postBody(t, ts.URL+"/v1/run", body)
	if resp.StatusCode != 200 || resp.Header.Get(resultHeader) != "cold" {
		t.Fatalf("status %d, served %q, want 200/cold", resp.StatusCode, resp.Header.Get(resultHeader))
	}
	if bytes.Equal(b, corrupt) {
		t.Fatal("corrupt peer bytes were served to a client")
	}
	if want := "resp:run|" + body; string(b) != want {
		t.Fatalf("body %q, want locally recomputed %q", b, want)
	}
	if n := s.stats.peerErrors.Value(); n != 1 {
		t.Fatalf("peer errors = %d, want 1", n)
	}
}

// TestFleetChaosMembershipChangeMidStream: membership grows to include
// a dead replica and shrinks back, under live traffic. Every request
// throughout answers 200; keys routed to the dead member hedge to
// local recompute and repeats hit the local cache.
func TestFleetChaosMembershipChangeMidStream(t *testing.T) {
	dead := deadPeerURL(t)
	cfg := smallConfig()
	cfg.FleetSelf = "http://replica-a.test"
	cfg.PeerTimeout = 200 * time.Millisecond
	p := &fakePlanner{}
	s, ts := testServer(t, cfg, p)

	// Alone on the ring: every key is self-owned, no peer traffic.
	resp, _ := postBody(t, ts.URL+"/v1/run", `{"solo":1}`)
	if resp.StatusCode != 200 || resp.Header.Get(resultHeader) != "cold" {
		t.Fatalf("solo: status %d, served %q", resp.StatusCode, resp.Header.Get(resultHeader))
	}
	if n := s.stats.peerErrors.Value() + s.stats.peerMisses.Value(); n != 0 {
		t.Fatalf("solo ring produced %d peer counters, want 0", n)
	}

	// A dead replica joins: keys it owns now pay one failed fetch, then
	// recompute locally — still 200.
	s.SetFleetMembers([]string{cfg.FleetSelf, dead})
	deadOwned := bodyOwnedBy(t, "run", []string{cfg.FleetSelf, dead}, dead)
	resp, _ = postBody(t, ts.URL+"/v1/run", deadOwned)
	if resp.StatusCode != 200 || resp.Header.Get(resultHeader) != "cold" {
		t.Fatalf("dead member joined: status %d, served %q", resp.StatusCode, resp.Header.Get(resultHeader))
	}
	if n := s.stats.peerErrors.Value(); n != 1 {
		t.Fatalf("peer errors = %d, want 1", n)
	}
	// The recompute landed in the local cache: the repeat does not pay a
	// second fetch at the dead member.
	resp, _ = postBody(t, ts.URL+"/v1/run", deadOwned)
	if resp.Header.Get(resultHeader) != "cached" {
		t.Fatalf("repeat served %q, want cached", resp.Header.Get(resultHeader))
	}
	if n := s.stats.peerErrors.Value(); n != 1 {
		t.Fatalf("peer errors after cached repeat = %d, want still 1", n)
	}

	// The dead member leaves: the same key is self-owned again and new
	// keys never touch the peer path.
	s.SetFleetMembers([]string{cfg.FleetSelf})
	resp, _ = postBody(t, ts.URL+"/v1/run", `{"after":1}`)
	if resp.StatusCode != 200 || resp.Header.Get(resultHeader) != "cold" {
		t.Fatalf("after shrink: status %d, served %q", resp.StatusCode, resp.Header.Get(resultHeader))
	}
	if n := s.stats.peerErrors.Value() + s.stats.peerMisses.Value(); n != 1 {
		t.Fatalf("shrunk ring added peer counters: %d, want 1 (the earlier error only)", n)
	}
}

// TestFleetSingleInstanceUnchanged: without FleetSelf the peer endpoint
// does not exist and /statsz carries a disabled fleet block — the
// single-instance surface is exactly the pre-fleet one.
func TestFleetSingleInstanceUnchanged(t *testing.T) {
	p := &fakePlanner{}
	_, ts := testServer(t, smallConfig(), p)
	resp, err := http.Get(ts.URL + "/v1/peer/somekey")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("single instance /v1/peer/ answered %d, want 404 (route absent)", resp.StatusCode)
	}
	_, stBody := postStats(t, ts.URL)
	var snap struct {
		Fleet struct {
			Enabled bool `json:"enabled"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(stBody, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Fleet.Enabled {
		t.Fatal("single instance reports fleet enabled")
	}
}

// TestFleetPeerEndpointRejectsMalformed: the peer endpoint validates
// its inputs — empty or path-like keys are 400, a PUT whose bytes fail
// their CRC is rejected before touching any cache, and non-GET/PUT
// methods are 405.
func TestFleetPeerEndpointRejectsMalformed(t *testing.T) {
	cfg := smallConfig()
	cfg.FleetSelf = "http://replica-a.test"
	p := &fakePlanner{}
	s, ts := testServer(t, cfg, p)
	client := &http.Client{Timeout: 5 * time.Second}

	do := func(method, path string, body string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := do(http.MethodGet, "/v1/peer/", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty key: %d, want 400", resp.StatusCode)
	}
	if resp := do(http.MethodGet, "/v1/peer/a/b", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("path-like key: %d, want 400", resp.StatusCode)
	}
	if resp := do(http.MethodDelete, "/v1/peer/k", "", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: %d, want 405", resp.StatusCode)
	}
	if resp := do(http.MethodPut, "/v1/peer/k", "payload", map[string]string{fleet.HeaderCRC: "deadbeef"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("CRC-mismatched PUT: %d, want 400", resp.StatusCode)
	}
	if n := s.cache.len(); n != 0 {
		t.Fatalf("rejected PUT reached the cache: %d entries", n)
	}
	// A well-formed PUT is accepted and served back by GET.
	good := []byte(`{"ok":1}`)
	if resp := do(http.MethodPut, "/v1/peer/k", string(good), map[string]string{
		fleet.HeaderCRC:  fleet.Checksum(good),
		fleet.HeaderCost: "777",
	}); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid PUT: %d, want 204", resp.StatusCode)
	}
	resp, err := client.Get(ts.URL + "/v1/peer/k")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Equal(b, good) {
		t.Fatalf("GET after PUT: %d %q", resp.StatusCode, b)
	}
	if got := resp.Header.Get(fleet.HeaderCRC); got != fleet.Checksum(good) {
		t.Fatalf("GET CRC header %q, want %q", got, fleet.Checksum(good))
	}
	if got := resp.Header.Get(fleet.HeaderCost); got != "777" {
		t.Fatalf("GET cost header %q, want 777 (replicated cost retained)", got)
	}
}

// TestResultCacheCostAwareEviction: the acceptance regression — a cheap
// bulky entry is evicted before an expensive compact one, even though
// the expensive one is older and LRU alone would have evicted it first.
func TestResultCacheCostAwareEviction(t *testing.T) {
	c := newResultCache(100, 100)
	c.putCost("expensive-small", bytes.Repeat([]byte("x"), 10), 10_000_000_000) // 1e9 ns/B
	c.putCost("cheap-large", bytes.Repeat([]byte("y"), 80), 80)                 // 1 ns/B, most recently used
	// 90/100 bytes used; 20 more must evict someone. LRU would pick
	// expensive-small (older); cost-aware must pick cheap-large.
	c.putCost("next", bytes.Repeat([]byte("z"), 20), 20_000_000) // 1e6 ns/B
	if _, ok := c.get("cheap-large"); ok {
		t.Fatal("cheap large entry survived eviction")
	}
	if _, _, ok := c.getCost("expensive-small"); !ok {
		t.Fatal("expensive small entry was evicted")
	}
	if _, ok := c.get("next"); !ok {
		t.Fatal("newly inserted entry missing")
	}
	// All-zero costs degrade to exact LRU: the least recently used goes
	// first, so layers that never learned costs behave as before.
	lru := newResultCache(2, 1<<20)
	lru.put("old", []byte("a"))
	lru.put("mid", []byte("b"))
	lru.get("old") // old is now more recently used than mid
	lru.put("new", []byte("c"))
	if _, ok := lru.get("mid"); ok {
		t.Fatal("zero-cost eviction did not follow LRU order")
	}
	if _, ok := lru.get("old"); !ok {
		t.Fatal("zero-cost eviction removed the recently used entry")
	}
}

// Package server is locsched's serving subsystem: a long-lived daemon
// wrapping the experiment harness behind an HTTP/JSON API so scheduling
// analyses, single simulation cells, and whole figures are computed once
// and served many times.
//
// Every cacheable request is reduced to a content-addressed key — the
// workload's graph/layout fingerprints (taskgraph.Content plus the
// packed-base-layout fingerprint) joined with a canonical config digest
// — and flows through four layers:
//
//  1. a bounded content-addressed result cache holding the exact
//     response bytes of completed requests (repeats are served verbatim,
//     so a cached response is byte-identical to the cold one);
//  2. an optional disk-backed persistent result store (internal/store)
//     under the memory cache: append-only CRC-verified segments keyed by
//     the same content keys, so a restarted daemon warm-starts from disk
//     instead of recomputing. Corrupt or unreadable entries are
//     quarantined and recomputed — never served — and persistent store
//     failure trips a circuit breaker into a degraded memory-only mode
//     (visible in /healthz and /statsz) rather than failing requests;
//  3. a singleflight coalescer: identical in-flight requests attach to
//     the one execution already running and receive the same bytes;
//  4. a bounded job queue over a fixed worker pool with admission
//     control — when the queue is full new work is rejected with 429 and
//     a Retry-After hint instead of being buffered without bound.
//
// The daemon binary is cmd/locschedd; `locsched serve` starts the same
// server, and `locsched bench` is the load generator that replays a
// mixed scenario stream against it (with a -restart-warm mode proving
// the store's warm-start contract end to end).
package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"locsched/internal/store"
)

// Config tunes the serving daemon. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Addr is the listen address for ListenAndServe.
	Addr string
	// QueueDepth bounds the job queue; a full queue rejects new unique
	// requests with 429 (admission control, never unbounded buffering).
	QueueDepth int
	// Workers is the number of executor goroutines draining the queue.
	Workers int
	// ExpWorkers is the experiment.Config.Workers value given to each
	// executed job: intra-request parallelism. The default 1 keeps each
	// cell sequential and lets the daemon parallelize across requests.
	ExpWorkers int
	// SimWorkers is the experiment.Config.SimWorkers value given to each
	// executed job: intra-run parallel-engine workers. It is cache-neutral
	// (the parallel engine is bit-identical to the sequential one, and
	// ConfigDigest excludes it), so changing it never invalidates stored
	// response bytes. The default 0 runs the sequential engine.
	SimWorkers int
	// CacheEntries bounds the result cache by entry count.
	CacheEntries int
	// CacheBytes bounds the result cache by total stored body bytes.
	CacheBytes int64
	// RequestTimeout is the per-request deadline covering queue wait and
	// execution; a request may lower it via its deadline_ms field but
	// never raise it. Expired waiters get 504 while the execution itself
	// runs on and still populates the result cache.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to complete after SIGTERM before the listener is torn down.
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies (inline JSON task sets included).
	MaxBodyBytes int64
	// Scale is the default workload scale for requests that do not set
	// one (experiment.DefaultConfig's scale when 0).
	Scale int
	// StoreDir, when non-empty, enables the disk-backed persistent
	// result store rooted there: completed responses are written through
	// and a restarted daemon warm-starts from the surviving entries. An
	// unusable directory does not fail startup — the daemon runs
	// memory-only and reports degraded.
	StoreDir string
	// StoreBytes bounds the persistent store's on-disk size; oldest
	// segments are evicted past it (0 = the store default, 256 MiB).
	StoreBytes int64
	// Store injects a pre-opened store (tests, restart-warm bench runs);
	// when set it wins over StoreDir and the caller keeps ownership of
	// Close.
	Store *store.Store
	// FleetSelf, when non-empty, enables fleet mode: it is this replica's
	// own advertised base URL (e.g. "http://10.0.0.2:8077"), the identity
	// it occupies on the consistent-hash ring. Empty keeps the daemon a
	// single instance with the peer endpoint unregistered — the
	// single-instance request path is byte-for-byte the pre-fleet one.
	FleetSelf string
	// FleetPeers lists the other replicas' base URLs. Requires FleetSelf.
	FleetPeers []string
	// PeerTimeout bounds each peer-fetch attempt (0 = the fleet client
	// default, 2 s). Peer fetches make at most two attempts before
	// hedging to local recompute.
	PeerTimeout time.Duration
	// PeerTransport injects a custom http.RoundTripper under the peer
	// client — the chaos tests' failure-injection seam (nil = the default
	// transport).
	PeerTransport http.RoundTripper
	// Logger receives the daemon's structured access and span logs
	// (access lines at Info, trace spans at Debug). nil discards
	// everything, keeping embedded and test servers silent; response
	// bytes are identical either way.
	Logger *slog.Logger
	// Pprof, when true, registers net/http/pprof's profiling handlers
	// under /debug/pprof/ on the daemon mux. Off by default: the daemon
	// usually listens on loopback, but profiling endpoints stay opt-in.
	Pprof bool
}

// DefaultConfig returns the daemon defaults: a loopback listener, a
// 64-deep queue over one worker per CPU, a 512-entry / 64 MiB result
// cache, and 120 s request deadlines.
func DefaultConfig() Config {
	return Config{
		Addr:           "127.0.0.1:8077",
		QueueDepth:     64,
		Workers:        runtime.GOMAXPROCS(0),
		ExpWorkers:     1,
		CacheEntries:   512,
		CacheBytes:     64 << 20,
		RequestTimeout: 120 * time.Second,
		DrainTimeout:   30 * time.Second,
		MaxBodyBytes:   1 << 20,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.QueueDepth <= 0 {
		return fmt.Errorf("server: queue depth %d must be positive", c.QueueDepth)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("server: workers %d must be positive", c.Workers)
	}
	if c.ExpWorkers < 0 {
		return fmt.Errorf("server: experiment workers %d must be non-negative", c.ExpWorkers)
	}
	if c.SimWorkers < 0 {
		return fmt.Errorf("server: sim workers %d must be non-negative", c.SimWorkers)
	}
	if c.CacheEntries <= 0 || c.CacheBytes <= 0 {
		return fmt.Errorf("server: cache bounds (%d entries, %d bytes) must be positive", c.CacheEntries, c.CacheBytes)
	}
	if c.RequestTimeout <= 0 || c.DrainTimeout <= 0 {
		return fmt.Errorf("server: timeouts (%v request, %v drain) must be positive", c.RequestTimeout, c.DrainTimeout)
	}
	if c.MaxBodyBytes <= 0 {
		return fmt.Errorf("server: max body bytes %d must be positive", c.MaxBodyBytes)
	}
	if c.Scale < 0 {
		return fmt.Errorf("server: scale %d must be non-negative", c.Scale)
	}
	if c.StoreBytes < 0 {
		return fmt.Errorf("server: store bytes %d must be non-negative", c.StoreBytes)
	}
	if c.PeerTimeout < 0 {
		return fmt.Errorf("server: peer timeout %v must be non-negative", c.PeerTimeout)
	}
	if len(c.FleetPeers) > 0 && c.FleetSelf == "" {
		return fmt.Errorf("server: fleet peers require a fleet self URL")
	}
	return nil
}

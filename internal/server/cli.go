package server

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"locsched/internal/obs"
)

// Main is the daemon's CLI entry point, shared by cmd/locschedd and the
// `locsched serve` subcommand. It parses flags, starts the server, and
// drains gracefully on SIGTERM/SIGINT. Exit codes: 0 clean shutdown,
// 1 runtime failure, 2 usage error.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("locschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := DefaultConfig()
	addr := fs.String("addr", def.Addr, "listen address")
	queue := fs.Int("queue", def.QueueDepth, "job queue depth (full queue answers 429)")
	workers := fs.Int("workers", def.Workers, "executor goroutines draining the queue")
	expWorkers := fs.Int("expworkers", def.ExpWorkers, "intra-request experiment workers per job")
	simWorkers := fs.Int("simworkers", def.SimWorkers, "intra-run parallel-engine workers per cell (0 = sequential engine; cache-neutral)")
	cacheEntries := fs.Int("cache-entries", def.CacheEntries, "result cache entry bound")
	cacheMB := fs.Int64("cache-mb", def.CacheBytes>>20, "result cache byte bound in MiB")
	timeout := fs.Duration("timeout", def.RequestTimeout, "per-request deadline (queue wait + execution)")
	drain := fs.Duration("drain", def.DrainTimeout, "graceful shutdown budget after SIGTERM")
	scale := fs.Int("scale", 0, "default workload scale for requests that set none (0 = built-in default)")
	storeDir := fs.String("store-dir", "", "persistent result store directory (empty = memory-only)")
	storeMB := fs.Int64("store-mb", 0, "persistent store on-disk bound in MiB (0 = store default)")
	fleetSelf := fs.String("fleet-self", "", "this replica's advertised base URL, enabling fleet mode (empty = single instance)")
	fleetPeers := fs.String("fleet-peers", "", "comma-separated peer replica base URLs (requires -fleet-self)")
	peerTimeout := fs.Duration("peer-timeout", 0, "per-attempt peer fetch timeout (0 = 2s default)")
	logLevel := fs.String("log-level", "info", "minimum log level: debug (includes trace spans), info, warn, error")
	logFormat := fs.String("log-format", "text", "structured log format: text or json")
	pprof := fs.Bool("pprof", false, "register net/http/pprof handlers under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "locschedd: unexpected arguments %v\n", fs.Args())
		return 2
	}

	cfg := def
	cfg.Addr = *addr
	cfg.QueueDepth = *queue
	cfg.Workers = *workers
	cfg.ExpWorkers = *expWorkers
	cfg.SimWorkers = *simWorkers
	cfg.CacheEntries = *cacheEntries
	cfg.CacheBytes = *cacheMB << 20
	cfg.RequestTimeout = *timeout
	cfg.DrainTimeout = *drain
	cfg.Scale = *scale
	cfg.StoreDir = *storeDir
	cfg.StoreBytes = *storeMB << 20
	cfg.FleetSelf = *fleetSelf
	cfg.PeerTimeout = *peerTimeout
	cfg.Pprof = *pprof
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "locschedd:", err)
		return 2
	}
	logger, err := obs.NewLogger(stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintln(stderr, "locschedd:", err)
		return 2
	}
	cfg.Logger = logger
	if *fleetPeers != "" {
		for _, p := range strings.Split(*fleetPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.FleetPeers = append(cfg.FleetPeers, p)
			}
		}
	}

	srv, err := New(cfg, nil)
	if err != nil {
		fmt.Fprintln(stderr, "locschedd:", err)
		return 2
	}
	if cfg.StoreDir != "" {
		if srv.storeDegraded() {
			fmt.Fprintf(stderr, "locschedd: store %s unusable, serving memory-only (degraded)\n", cfg.StoreDir)
		} else {
			fmt.Fprintf(stdout, "locschedd: persistent store %s (%d entries recovered)\n",
				cfg.StoreDir, srv.store.Len())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(stdout, "locschedd: serving on %s (queue %d, workers %d, cache %d entries / %d MiB)\n",
		cfg.Addr, cfg.QueueDepth, cfg.Workers, cfg.CacheEntries, cfg.CacheBytes>>20)
	if cfg.FleetSelf != "" {
		fmt.Fprintf(stdout, "locschedd: fleet mode as %s with %d peers\n", cfg.FleetSelf, len(cfg.FleetPeers))
	}

	select {
	case err := <-errc:
		// Listener failed before any signal (e.g. address in use).
		fmt.Fprintln(stderr, "locschedd:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "locschedd: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "locschedd: drain:", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "locschedd:", err)
		return 1
	}
	fmt.Fprintln(stdout, "locschedd: stopped")
	return 0
}

package server

import "sync"

// coalescer deduplicates identical in-flight requests singleflight-style:
// the first arrival for a key becomes the leader and owns the execution;
// every later arrival while that execution is pending becomes a follower
// and waits on the same call, receiving the exact bytes the leader's
// execution produced. The entry is removed when the call completes, so
// the next arrival after completion consults the result cache instead.
type coalescer struct {
	mu sync.Mutex
	m  map[string]*call
}

// call is one pending execution. done is closed exactly once, after body
// and err are set; waiters must only read them after <-done.
type call struct {
	done chan struct{}
	body []byte
	err  error
}

// newCoalescer builds an empty coalescer.
func newCoalescer() *coalescer {
	return &coalescer{m: make(map[string]*call)}
}

// join registers interest in key. The first caller per pending key gets
// leader == true and must eventually resolve the call via complete (even
// on failure paths, or followers would wait for the full deadline).
func (co *coalescer) join(key string) (c *call, leader bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if c, ok := co.m[key]; ok {
		return c, false
	}
	c = &call{done: make(chan struct{})}
	co.m[key] = c
	return c, true
}

// complete resolves a pending call with the execution outcome and
// removes the key, waking every follower. The map entry is deleted only
// if it still maps to this exact call (a later generation for the same
// key must not be torn down by a stale completion).
func (co *coalescer) complete(key string, c *call, body []byte, err error) {
	co.mu.Lock()
	if cur, ok := co.m[key]; ok && cur == c {
		delete(co.m, key)
	}
	co.mu.Unlock()
	c.body, c.err = body, err
	close(c.done)
}

// pending returns the number of in-flight keys.
func (co *coalescer) pending() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.m)
}

package server

import (
	"strings"
	"testing"
	"time"
)

// TestPercentile pins the nearest-rank definition the load report uses:
// p50 of an even-sized set is the lower middle element, p99 of fewer
// than 100 samples is the maximum, and an empty run reports zero.
func TestPercentile(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	hundred := make([]time.Duration, 100)
	for i := range hundred {
		hundred[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		sorted []time.Duration
		p      int
		want   time.Duration
	}{
		{nil, 50, 0},
		// One sample: every percentile is that sample — the rank must
		// clamp into [1, len] instead of misindexing.
		{ms(7), 50, 7 * time.Millisecond},
		{ms(7), 95, 7 * time.Millisecond},
		{ms(7), 99, 7 * time.Millisecond},
		// Two samples: p50 is the lower middle, the tails are the max.
		{ms(3, 9), 50, 3 * time.Millisecond},
		{ms(3, 9), 95, 9 * time.Millisecond},
		{ms(3, 9), 99, 9 * time.Millisecond},
		// Three samples.
		{ms(1, 5, 8), 50, 5 * time.Millisecond},
		{ms(1, 5, 8), 95, 8 * time.Millisecond},
		{ms(1, 5, 8), 99, 8 * time.Millisecond},
		{ms(1, 2, 3, 4), 50, 2 * time.Millisecond},
		{ms(1, 2, 3, 4), 95, 4 * time.Millisecond},
		{ms(1, 2, 3, 4, 5), 50, 3 * time.Millisecond},
		{ms(1, 2, 3, 4, 5), 99, 5 * time.Millisecond},
		// A 100-sample stream: nearest rank is exact, and an out-of-range
		// percentile clamps to the maximum instead of panicking.
		{hundred, 50, 50 * time.Millisecond},
		{hundred, 95, 95 * time.Millisecond},
		{hundred, 99, 99 * time.Millisecond},
		{hundred, 100, 100 * time.Millisecond},
		{hundred, 101, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("percentile(len %d, %d) = %v, want %v", len(c.sorted), c.p, got, c.want)
		}
	}
	// Percentiles of a sorted stream are themselves monotone: a smaller
	// p must never report a larger latency (the misordered-percentiles
	// regression).
	for _, n := range []int{1, 2, 3, 100} {
		s := hundred[:n]
		if p50, p95, p99 := percentile(s, 50), percentile(s, 95), percentile(s, 99); p50 > p95 || p95 > p99 {
			t.Errorf("misordered percentiles over %d samples: p50=%v p95=%v p99=%v", n, p50, p95, p99)
		}
	}
}

// TestLoadReportFormatLatency: the human report carries the latency
// percentile line (the CI bench step greps the rendered report).
func TestLoadReportFormatLatency(t *testing.T) {
	rep := &LoadReport{
		P50: 1500 * time.Microsecond,
		P95: 20 * time.Millisecond,
		P99: 120 * time.Millisecond,
	}
	got := rep.Format()
	if !strings.Contains(got, "latency: p50 1.50ms, p95 20.00ms, p99 120.00ms") {
		t.Errorf("report missing latency line:\n%s", got)
	}
}

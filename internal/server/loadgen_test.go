package server

import (
	"strings"
	"testing"
	"time"
)

// TestPercentile pins the nearest-rank definition the load report uses:
// p50 of an even-sized set is the lower middle element, p99 of fewer
// than 100 samples is the maximum, and an empty run reports zero.
func TestPercentile(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		sorted []time.Duration
		p      int
		want   time.Duration
	}{
		{nil, 50, 0},
		{ms(7), 50, 7 * time.Millisecond},
		{ms(7), 99, 7 * time.Millisecond},
		{ms(1, 2, 3, 4), 50, 2 * time.Millisecond},
		{ms(1, 2, 3, 4), 95, 4 * time.Millisecond},
		{ms(1, 2, 3, 4, 5), 50, 3 * time.Millisecond},
		{ms(1, 2, 3, 4, 5), 99, 5 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("percentile(%v, %d) = %v, want %v", c.sorted, c.p, got, c.want)
		}
	}
}

// TestLoadReportFormatLatency: the human report carries the latency
// percentile line (the CI bench step greps the rendered report).
func TestLoadReportFormatLatency(t *testing.T) {
	rep := &LoadReport{
		P50: 1500 * time.Microsecond,
		P95: 20 * time.Millisecond,
		P99: 120 * time.Millisecond,
	}
	got := rep.Format()
	if !strings.Contains(got, "latency: p50 1.50ms, p95 20.00ms, p99 120.00ms") {
		t.Errorf("report missing latency line:\n%s", got)
	}
}

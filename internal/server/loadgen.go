package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"locsched/internal/obs"
	"locsched/internal/workload"
)

// The load generator: `locsched bench` replays a deterministic mixed
// scenario stream — fig6 single-application cells, fig7-style concurrent
// mixes, an analysis call, and a whole-figure request — against a
// running locschedd, measuring sustained requests/sec and how the
// cache-hit and coalesce rates climb as the stream wraps around the
// distinct-key set. A coalesce burst phase fires identical concurrent
// requests at a cold key first, which is what demonstrates singleflight
// behaviour deterministically enough for CI assertion.

// LoadConfig tunes one load-generation run.
type LoadConfig struct {
	// BaseURL is the target daemon, e.g. http://127.0.0.1:8077.
	BaseURL string
	// Concurrency is the number of client goroutines.
	Concurrency int
	// Requests is the total number of stream requests to send.
	Requests int
	// Scale is the workload scale the stream asks for (0 = daemon default).
	Scale int
	// Timeout bounds each HTTP request.
	Timeout time.Duration
	// WarmManifest, when non-empty, is the path of a cache manifest file
	// (see store.SaveManifest) whose replayable entries are re-sent
	// before the live stream: the bench warms the daemon with the
	// previous lifetime's realistic working set instead of a synthetic
	// one.
	WarmManifest string
	// MetricsURL, when non-empty, is the daemon's /metricsz endpoint
	// (e.g. http://127.0.0.1:8077/metricsz). The bench scrapes it before
	// and after the run and reports this run's server-side latency
	// quantiles (queue wait, coalesce wait, end-to-end request)
	// reconstructed from the histogram deltas.
	MetricsURL string
}

// LoadReport is the outcome of one load-generation run.
type LoadReport struct {
	// Requests is the number of requests sent (burst phase included).
	Requests int
	// Errors counts non-2xx responses and transport failures.
	Errors int
	// Cold, Cached, Disk, Coalesced, and Peer count responses by
	// served-from class (the X-Locsched-Result header); Disk is the
	// persistent store's tier, populated on a warm start, and Peer is
	// fleet mode's owner-replica fetch.
	Cold, Cached, Disk, Coalesced, Peer int
	// Elapsed is the wall-clock of the whole run.
	Elapsed time.Duration
	// RPS is Requests / Elapsed.
	RPS float64
	// P50, P95, and P99 are per-request latency percentiles (nearest
	// rank) over every request of the run, hits and executions alike —
	// the serving-side view of how fast the engines answer. Zero when no
	// request completed.
	P50, P95, P99 time.Duration
	// HitRate is (Cached + Disk + Coalesced + Peer) / successful
	// responses: the share of requests that did not pay for a local
	// execution.
	HitRate float64
	// Stats holds this run's /statsz counter deltas (after minus
	// before), so the report — and the -expect-cache CI assertion built
	// on it — describes the replayed stream itself, not the daemon's
	// lifetime. Gauges (queue depth, cache entries, uptime) are the
	// after-run values.
	Stats StatsSnapshot
	// Metrics holds the server-side histogram quantiles scraped from
	// /metricsz over this run; nil unless LoadConfig.MetricsURL was set.
	Metrics *MetricsReport
}

// MetricsReport is the scrape-and-diff view of the daemon's /metricsz
// latency histograms across one bench run: quantiles estimated from the
// after-minus-before bucket deltas, so they describe only this run's
// requests.
type MetricsReport struct {
	// QueueWait is the admitted jobs' enqueue-to-dequeue wait.
	QueueWait HistQuantiles
	// CoalesceWait is the coalesced followers' join-to-result wait.
	CoalesceWait HistQuantiles
	// Request is the end-to-end server-side request latency.
	Request HistQuantiles
	// Execution is the worker-pool job execution time.
	Execution HistQuantiles
}

// HistQuantiles summarizes one histogram delta: observation count and
// estimated p50/p95/p99 in seconds.
type HistQuantiles struct {
	// Count is the number of observations this run added.
	Count int64
	// P50, P95, and P99 are histogram-estimated quantiles in seconds
	// (PromQL-style linear interpolation within the target bucket).
	P50, P95, P99 float64
}

// histQuantiles reconstructs the named histogram from delta samples and
// estimates its quantiles.
func histQuantiles(delta []obs.Sample, name string) HistQuantiles {
	snap, ok := obs.HistogramFromSamples(delta, name)
	if !ok {
		return HistQuantiles{}
	}
	return HistQuantiles{
		Count: snap.Count,
		P50:   snap.Quantile(0.50),
		P95:   snap.Quantile(0.95),
		P99:   snap.Quantile(0.99),
	}
}

// scrapeMetrics fetches and parses one /metricsz exposition page.
func scrapeMetrics(client *http.Client, url string) ([]obs.Sample, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics endpoint answered %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obs.ParseExposition(body)
}

// streamBody builds one request of the mixed scenario stream.
type streamReq struct {
	endpoint string
	body     []byte
}

// buildStream assembles the deterministic request stream: every Table 1
// application under the paper's four policies (fig6 cells), concurrent
// mixes |T| ∈ {2, 4, 6} under the four policies (fig7 cells), one
// analysis request, and one whole-figure request.
func buildStream(scale int) []streamReq {
	policies := []string{"RS", "RRS", "LS", "LSM"}
	var out []streamReq
	add := func(endpoint string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err) // static request shapes; cannot fail
		}
		out = append(out, streamReq{endpoint: endpoint, body: b})
	}
	for _, app := range workload.Names() {
		for _, pol := range policies {
			add("/v1/run", RunRequest{Workload: WorkloadSpec{App: app, Scale: scale}, Policy: pol})
		}
	}
	for _, mix := range []int{2, 4, 6} {
		for _, pol := range policies {
			add("/v1/run", RunRequest{Workload: WorkloadSpec{Mix: mix, Scale: scale}, Policy: pol})
		}
	}
	add("/v1/analysis", AnalysisRequest{Workload: WorkloadSpec{Mix: 6, Scale: scale}})
	add("/v1/figure", FigureRequest{Figure: "fig6", Scale: scale})
	return out
}

// RunLoad replays the mixed scenario stream against a daemon and
// reports throughput and cache behaviour.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("server: load generator needs a base URL")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 200
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 120 * time.Second
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")
	client := &http.Client{Timeout: cfg.Timeout}
	stream := buildStream(cfg.Scale)
	before, err := fetchStats(client, base)
	if err != nil {
		return nil, fmt.Errorf("server: reading /statsz before load: %w", err)
	}
	var metricsBefore []obs.Sample
	if cfg.MetricsURL != "" {
		if metricsBefore, err = scrapeMetrics(client, cfg.MetricsURL); err != nil {
			return nil, fmt.Errorf("server: scraping metrics before load: %w", err)
		}
	}

	rep := &LoadReport{}
	var errs, cold, cached, disk, coalesced, peer atomic.Int64
	var latMu sync.Mutex
	var lats []time.Duration
	post := func(endpoint string, body []byte) {
		reqStart := time.Now()
		defer func() {
			lat := time.Since(reqStart)
			latMu.Lock()
			lats = append(lats, lat)
			latMu.Unlock()
		}()
		resp, err := client.Post(base+endpoint, "application/json", bytes.NewReader(body))
		if err != nil {
			errs.Add(1)
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			errs.Add(1)
			return
		}
		switch resp.Header.Get(resultHeader) {
		case "cold":
			cold.Add(1)
		case "cached":
			cached.Add(1)
		case "disk":
			disk.Add(1)
		case "coalesced":
			coalesced.Add(1)
		case "peer":
			peer.Add(1)
		}
	}

	start := time.Now()

	// Warm replay: before the live stream, re-send the requests a prior
	// lifetime's cache manifest describes, so the daemon's caches hold a
	// realistic warm set instead of starting from whatever this stream
	// happens to touch first.
	warmed := 0
	if cfg.WarmManifest != "" {
		reqs, err := ManifestRequests(cfg.WarmManifest)
		if err != nil {
			return nil, fmt.Errorf("server: warm manifest: %w", err)
		}
		for _, r := range reqs {
			post(r.endpoint, r.body)
		}
		warmed = len(reqs)
	}

	// Coalesce burst: all clients fire the identical cold request at
	// once; one execution runs, the rest coalesce (or arrive late and
	// hit the cache). Each round's key must be cold on the *daemon*, not
	// just within this process — a fixed quantum would already sit in
	// the result cache on a second bench run against the same daemon —
	// so the quantum carries a per-run wall-clock nonce plus the round.
	sent := 0
	burstBase := 10_000 + time.Now().UnixNano()%1_000_000_000
	for round := 0; round < 5 && coalesced.Load() == 0; round++ {
		burst, err := json.Marshal(RunRequest{
			Workload: WorkloadSpec{Mix: 4, Scale: cfg.Scale},
			Policy:   "LSM",
			Config:   ConfigSpec{Quantum: burstBase + int64(round)},
		})
		if err != nil {
			return nil, err
		}
		var wg sync.WaitGroup
		for i := 0; i < cfg.Concurrency; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				post("/v1/run", burst)
			}()
		}
		wg.Wait()
		sent += cfg.Concurrency
	}

	// Mixed stream: clients claim indices off a shared cursor, so the
	// stream order is deterministic while the interleaving exercises the
	// coalescer and cache under real concurrency.
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1))
				if idx >= cfg.Requests {
					return
				}
				r := stream[idx%len(stream)]
				post(r.endpoint, r.body)
			}
		}()
	}
	wg.Wait()

	rep.Elapsed = time.Since(start)
	rep.Requests = warmed + sent + cfg.Requests
	rep.Errors = int(errs.Load())
	rep.Cold = int(cold.Load())
	rep.Cached = int(cached.Load())
	rep.Disk = int(disk.Load())
	rep.Coalesced = int(coalesced.Load())
	rep.Peer = int(peer.Load())
	if ok := rep.Cold + rep.Cached + rep.Disk + rep.Coalesced + rep.Peer; ok > 0 {
		rep.HitRate = float64(rep.Cached+rep.Disk+rep.Coalesced+rep.Peer) / float64(ok)
	}
	if rep.Elapsed > 0 {
		rep.RPS = float64(rep.Requests) / rep.Elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.P50 = percentile(lats, 50)
	rep.P95 = percentile(lats, 95)
	rep.P99 = percentile(lats, 99)

	after, err := fetchStats(client, base)
	if err != nil {
		return nil, fmt.Errorf("server: reading /statsz after load: %w", err)
	}
	rep.Stats = statsDelta(after, before)
	if cfg.MetricsURL != "" {
		metricsAfter, err := scrapeMetrics(client, cfg.MetricsURL)
		if err != nil {
			return nil, fmt.Errorf("server: scraping metrics after load: %w", err)
		}
		delta := obs.DeltaSamples(metricsAfter, metricsBefore)
		rep.Metrics = &MetricsReport{
			QueueWait:    histQuantiles(delta, "locsched_server_queue_wait_seconds"),
			CoalesceWait: histQuantiles(delta, "locsched_server_coalesce_wait_seconds"),
			Request:      histQuantiles(delta, "locsched_server_request_seconds"),
			Execution:    histQuantiles(delta, "locsched_server_execution_seconds"),
		}
	}
	return rep, nil
}

// percentile returns the nearest-rank p-th percentile of an
// ascending-sorted latency slice (zero for an empty one). The computed
// rank is clamped to [1, len(sorted)] on both ends: tiny streams (one
// or two samples) and percentiles above 100 must index a real sample,
// never a misordered or out-of-range one.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// fetchStats reads one /statsz snapshot.
func fetchStats(client *http.Client, base string) (StatsSnapshot, error) {
	var st StatsSnapshot
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decoding /statsz: %w", err)
	}
	return st, nil
}

// statsDelta subtracts the before-run counters from the after-run
// snapshot, keeping after's gauges.
func statsDelta(after, before StatsSnapshot) StatsSnapshot {
	d := after
	d.Requests -= before.Requests
	d.CacheHits -= before.CacheHits
	d.DiskHits -= before.DiskHits
	d.DiskWrites -= before.DiskWrites
	d.Coalesced -= before.Coalesced
	d.Executions -= before.Executions
	d.Rejected -= before.Rejected
	d.Timeouts -= before.Timeouts
	d.CoalesceTimeouts -= before.CoalesceTimeouts
	d.Failures -= before.Failures
	d.BadRequests -= before.BadRequests
	d.PeerHits -= before.PeerHits
	d.PeerErrors -= before.PeerErrors
	d.Fleet.PeerMisses -= before.Fleet.PeerMisses
	d.Fleet.PeerServes -= before.Fleet.PeerServes
	d.Fleet.ReplicatedIn -= before.Fleet.ReplicatedIn
	d.Fleet.ReplicatedOut -= before.Fleet.ReplicatedOut
	d.Fleet.ReplicationErrors -= before.Fleet.ReplicationErrors
	d.Experiment.MatrixHits -= before.Experiment.MatrixHits
	d.Experiment.MatrixMisses -= before.Experiment.MatrixMisses
	d.Experiment.LSHits -= before.Experiment.LSHits
	d.Experiment.LSMisses -= before.Experiment.LSMisses
	d.Experiment.LSMHits -= before.Experiment.LSMHits
	d.Experiment.LSMMisses -= before.Experiment.LSMMisses
	d.Experiment.AnalysisEvictions -= before.Experiment.AnalysisEvictions
	d.Experiment.RunnerPoolHits -= before.Experiment.RunnerPoolHits
	d.Experiment.InternHits -= before.Experiment.InternHits
	return d
}

// RestartReport is the outcome of a restart-warm run: the same load
// replayed against two successive daemon lifetimes over one store
// directory.
type RestartReport struct {
	// Cold is the first lifetime's report: an empty store, every
	// distinct key executed and written through to disk.
	Cold *LoadReport
	// Warm is the second lifetime's report: the restarted daemon serving
	// the same stream out of the recovered store.
	Warm *LoadReport
}

// Verify checks the warm-start contract: the restarted daemon's hit
// rate must not drop below the first lifetime's, and the warm run must
// actually have been served from disk.
func (r *RestartReport) Verify() error {
	if r.Warm.Errors > 0 {
		return fmt.Errorf("server: warm run had %d errors", r.Warm.Errors)
	}
	if r.Warm.HitRate < r.Cold.HitRate {
		return fmt.Errorf("server: warm hit rate %.1f%% below pre-restart %.1f%%",
			100*r.Warm.HitRate, 100*r.Cold.HitRate)
	}
	if r.Warm.Stats.DiskHits == 0 {
		return fmt.Errorf("server: warm run never hit the persistent store")
	}
	if r.Warm.Stats.Store.Degraded {
		return fmt.Errorf("server: store degraded after restart")
	}
	return nil
}

// Format renders the restart-warm outcome for humans.
func (r *RestartReport) Format() string {
	var b strings.Builder
	b.WriteString("=== lifetime 1 (cold store) ===\n")
	b.WriteString(r.Cold.Format())
	b.WriteString("=== lifetime 2 (restarted on same store dir) ===\n")
	b.WriteString(r.Warm.Format())
	fmt.Fprintf(&b, "restart-warm: hit rate %.1f%% -> %.1f%%, executions %d -> %d, disk hits %d\n",
		100*r.Cold.HitRate, 100*r.Warm.HitRate,
		r.Cold.Stats.Executions, r.Warm.Stats.Executions, r.Warm.Stats.DiskHits)
	return b.String()
}

// RunRestartWarm proves the persistent store's warm-start contract end
// to end: it starts an in-process daemon on a loopback port with the
// given store directory, replays the load, shuts the daemon down
// (closing the store), starts a fresh daemon over the same directory,
// and replays the identical load. The caller asserts the contract via
// RestartReport.Verify.
func RunRestartWarm(srvCfg Config, load LoadConfig) (*RestartReport, error) {
	if srvCfg.StoreDir == "" {
		return nil, fmt.Errorf("server: restart-warm needs a store directory")
	}
	if srvCfg.Store != nil {
		return nil, fmt.Errorf("server: restart-warm must own its store; set StoreDir, not Store")
	}
	lifetime := func() (*LoadReport, error) {
		srv, err := New(srvCfg, nil)
		if err != nil {
			return nil, err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(l) }()
		lc := load
		lc.BaseURL = "http://" + l.Addr().String()
		rep, err := RunLoad(lc)
		dctx, cancel := context.WithTimeout(context.Background(), srvCfg.DrainTimeout)
		defer cancel()
		if serr := srv.Shutdown(dctx); serr != nil && err == nil {
			err = fmt.Errorf("server: restart-warm shutdown: %w", serr)
		}
		if werr := <-serveErr; werr != nil && werr != http.ErrServerClosed && err == nil {
			err = werr
		}
		if err != nil {
			return nil, err
		}
		return rep, nil
	}
	cold, err := lifetime()
	if err != nil {
		return nil, fmt.Errorf("server: restart-warm lifetime 1: %w", err)
	}
	warm, err := lifetime()
	if err != nil {
		return nil, fmt.Errorf("server: restart-warm lifetime 2: %w", err)
	}
	return &RestartReport{Cold: cold, Warm: warm}, nil
}

// Format renders a load report for humans.
func (r *LoadReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load: %d requests in %.2fs = %.1f req/s (%d errors)\n",
		r.Requests, r.Elapsed.Seconds(), r.RPS, r.Errors)
	fmt.Fprintf(&b, "latency: p50 %.2fms, p95 %.2fms, p99 %.2fms\n",
		float64(r.P50.Microseconds())/1e3, float64(r.P95.Microseconds())/1e3, float64(r.P99.Microseconds())/1e3)
	fmt.Fprintf(&b, "served: %d cold, %d cached, %d disk, %d coalesced, %d peer (hit rate %.1f%%)\n",
		r.Cold, r.Cached, r.Disk, r.Coalesced, r.Peer, 100*r.HitRate)
	fmt.Fprintf(&b, "server (this run): %d executions, %d cache hits, %d coalesced, %d rejected, %d timeouts (%d coalesced)\n",
		r.Stats.Executions, r.Stats.CacheHits, r.Stats.Coalesced, r.Stats.Rejected, r.Stats.Timeouts, r.Stats.CoalesceTimeouts)
	if r.Stats.Store.Enabled {
		st := r.Stats.Store.Store
		state := "ok"
		if r.Stats.Store.Degraded {
			state = "DEGRADED"
		}
		fmt.Fprintf(&b, "store (%s): %d disk hits, %d writes this run; %d entries / %d segments / %d B on disk; %d quarantined, %d retries, breaker %s\n",
			state, r.Stats.DiskHits, r.Stats.DiskWrites, st.Entries, st.Segments, st.DiskBytes,
			st.Quarantined, st.Retries, st.Breaker)
	}
	fmt.Fprintf(&b, "experiment caches: analysis %d/%d/%d hits (matrix/ls/lsm), runner pool %d, intern %d\n",
		r.Stats.Experiment.MatrixHits, r.Stats.Experiment.LSHits, r.Stats.Experiment.LSMHits,
		r.Stats.Experiment.RunnerPoolHits, r.Stats.Experiment.InternHits)
	if m := r.Metrics; m != nil {
		line := func(name string, q HistQuantiles) {
			fmt.Fprintf(&b, "server %s (this run): %d observed, p50 %.2fms, p95 %.2fms, p99 %.2fms\n",
				name, q.Count, q.P50*1e3, q.P95*1e3, q.P99*1e3)
		}
		line("queue wait", m.QueueWait)
		line("coalesce wait", m.CoalesceWait)
		line("execution", m.Execution)
		line("request", m.Request)
	}
	return b.String()
}

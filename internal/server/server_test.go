package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePlanner keys every request on its raw body and lets tests gate
// execution to hold jobs in-flight deterministically.
type fakePlanner struct {
	execs   atomic.Int64
	started atomic.Int64  // Run entries, counted before blocking on gate
	gate    chan struct{} // nil = run immediately; otherwise Run blocks on it
	fail    bool          // Run returns an error
	panics  bool          // Run panics
}

func (p *fakePlanner) Plan(endpoint string, body []byte) (*Job, error) {
	if len(body) == 0 {
		return nil, fmt.Errorf("empty body")
	}
	key := endpoint + "|" + string(body)
	return &Job{
		Key: key,
		Run: func() ([]byte, error) {
			p.started.Add(1)
			if p.gate != nil {
				<-p.gate
			}
			p.execs.Add(1)
			if p.panics {
				panic("scripted panic")
			}
			if p.fail {
				return nil, fmt.Errorf("scripted failure")
			}
			return []byte("resp:" + key), nil
		},
	}, nil
}

// testServer builds a server over the scripted planner plus an httptest
// front end, and tears both down in order.
func testServer(t *testing.T, cfg Config, p Planner) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close() // waits for in-flight handlers, so Shutdown's queue close is safe
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// smallConfig returns tight test bounds.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.QueueDepth = 8
	cfg.RequestTimeout = 5 * time.Second
	return cfg
}

func postBody(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestColdThenCached: a repeat of an identical request is served from
// the result cache with byte-identical body.
func TestColdThenCached(t *testing.T) {
	p := &fakePlanner{}
	s, ts := testServer(t, smallConfig(), p)

	resp1, b1 := postBody(t, ts.URL+"/v1/run", `{"a":1}`)
	if resp1.StatusCode != 200 || resp1.Header.Get(resultHeader) != "cold" {
		t.Fatalf("first: status %d, served %q", resp1.StatusCode, resp1.Header.Get(resultHeader))
	}
	resp2, b2 := postBody(t, ts.URL+"/v1/run", `{"a":1}`)
	if resp2.Header.Get(resultHeader) != "cached" {
		t.Fatalf("second: served %q, want cached", resp2.Header.Get(resultHeader))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached body differs from cold body: %q vs %q", b1, b2)
	}
	if n := p.execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
	if hits := s.stats.cacheHits.Value(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}

// TestCoalescedSingleExecution: N concurrent identical requests execute
// exactly once; every response body is byte-identical; followers are
// classed coalesced.
func TestCoalescedSingleExecution(t *testing.T) {
	const clients = 10
	p := &fakePlanner{gate: make(chan struct{})}
	s, ts := testServer(t, smallConfig(), p)

	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	served := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postBody(t, ts.URL+"/v1/run", `{"heavy":true}`)
			bodies[i], served[i] = b, resp.Header.Get(resultHeader)
		}(i)
	}
	// Wait until every follower has attached, then release the gate.
	deadline := time.Now().Add(5 * time.Second)
	for s.stats.coalesced.Value() < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d followers coalesced", s.stats.coalesced.Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(p.gate)
	wg.Wait()

	if n := p.execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want exactly 1 for %d identical requests", n, clients)
	}
	cold, coalesced := 0, 0
	for i := range bodies {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body %q differs from %q", i, bodies[i], bodies[0])
		}
		switch served[i] {
		case "cold":
			cold++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("client %d served %q", i, served[i])
		}
	}
	if cold != 1 || coalesced != clients-1 {
		t.Fatalf("served classes: %d cold, %d coalesced; want 1 and %d", cold, coalesced, clients-1)
	}
}

// TestAdmissionControl429: with a single blocked worker and a queue of
// one, a third distinct request is rejected with 429 + Retry-After and
// never buffered.
func TestAdmissionControl429(t *testing.T) {
	p := &fakePlanner{gate: make(chan struct{})}
	cfg := smallConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s, ts := testServer(t, cfg, p)

	deadline := time.Now().Add(5 * time.Second)
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	results := make(chan *http.Response, 2)
	launch := func(body string) {
		go func() {
			resp, _ := postBody(t, ts.URL+"/v1/run", body)
			results <- resp
		}()
	}
	// First request: admitted and picked up by the (blocked) worker.
	launch(`{"k":"a"}`)
	waitFor("worker to hold the first job", func() bool { return p.started.Load() == 1 })
	// Second request: admitted, fills the queue.
	launch(`{"k":"b"}`)
	waitFor("second job to queue", func() bool { return len(s.jobs) == 1 })

	resp, _ := postBody(t, ts.URL+"/v1/run", `{"k":"c"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
	if s.stats.rejected.Value() != 1 {
		t.Errorf("rejected = %d, want 1", s.stats.rejected.Value())
	}

	close(p.gate)
	for i := 0; i < 2; i++ {
		if r := <-results; r.StatusCode != 200 {
			t.Errorf("admitted request %d finished with %d", i, r.StatusCode)
		}
	}
	if n := p.execs.Load(); n != 2 {
		t.Errorf("executions = %d, want 2 (the rejected request must not run)", n)
	}
}

// TestDeadline504: a request whose deadline expires while its job is
// held gets 504; the execution still completes and seeds the cache.
func TestDeadline504(t *testing.T) {
	p := &fakePlanner{gate: make(chan struct{})}
	cfg := smallConfig()
	cfg.RequestTimeout = 50 * time.Millisecond
	s, ts := testServer(t, cfg, p)

	resp, _ := postBody(t, ts.URL+"/v1/run", `{"slow":1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if s.stats.timeouts.Value() != 1 {
		t.Errorf("timeouts = %d, want 1", s.stats.timeouts.Value())
	}
	close(p.gate)
	// The abandoned execution must still land in the result cache.
	deadline := time.Now().Add(5 * time.Second)
	for s.cache.len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned execution never cached")
		}
		time.Sleep(time.Millisecond)
	}
	resp2, _ := postBody(t, ts.URL+"/v1/run", `{"slow":1}`)
	if resp2.Header.Get(resultHeader) != "cached" {
		t.Errorf("retry served %q, want cached", resp2.Header.Get(resultHeader))
	}
}

// TestCoalesceTimeoutCounter: when a coalesced follower's deadline
// expires, the 504 is counted in both timeouts and coalesce_timeouts;
// the leader's own 504 only increments timeouts. Regression test for
// the follower-specific counter.
func TestCoalesceTimeoutCounter(t *testing.T) {
	p := &fakePlanner{gate: make(chan struct{})}
	cfg := smallConfig()
	cfg.RequestTimeout = 150 * time.Millisecond
	s, ts := testServer(t, cfg, p)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postBody(t, ts.URL+"/v1/run", `{"held":1}`)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("leader status = %d, want 504", resp.StatusCode)
		}
	}()
	// Wait until the leader's job is actually executing, then attach a
	// follower to the same key.
	deadline := time.Now().Add(5 * time.Second)
	for p.started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, _ := postBody(t, ts.URL+"/v1/run", `{"held":1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("follower status = %d, want 504", resp.StatusCode)
	}
	wg.Wait()
	close(p.gate)

	if got := s.stats.coalesced.Value(); got != 1 {
		t.Errorf("coalesced = %d, want 1", got)
	}
	if got := s.stats.timeouts.Value(); got != 2 {
		t.Errorf("timeouts = %d, want 2", got)
	}
	if got := s.stats.coalesceTimeouts.Value(); got != 1 {
		t.Errorf("coalesce_timeouts = %d, want 1 (follower only)", got)
	}
}

// TestErrorsAndMethods: plan errors are 400, run errors are 500 and are
// not cached, GET on keyed endpoints is 405.
func TestErrorsAndMethods(t *testing.T) {
	p := &fakePlanner{fail: true}
	s, ts := testServer(t, smallConfig(), p)

	resp, _ := postBody(t, ts.URL+"/v1/run", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postBody(t, ts.URL+"/v1/run", `{"x":1}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("failing run status = %d, want 500", resp.StatusCode)
	}
	if s.cache.len() != 0 {
		t.Error("failed execution was cached")
	}
	getResp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", getResp.StatusCode)
	}
}

// TestPanicRecovered: a panicking execution costs its request a 500 and
// leaves the daemon serving.
func TestPanicRecovered(t *testing.T) {
	p := &fakePlanner{panics: true}
	s, ts := testServer(t, smallConfig(), p)

	resp, b := postBody(t, ts.URL+"/v1/run", `{"boom":1}`)
	if resp.StatusCode != http.StatusInternalServerError || !strings.Contains(string(b), "panicked") {
		t.Fatalf("panicking job: status %d body %q, want 500 mentioning the panic", resp.StatusCode, b)
	}
	if s.stats.failures.Value() != 1 {
		t.Errorf("failures = %d, want 1", s.stats.failures.Value())
	}
	p.panics = false
	resp, _ = postBody(t, ts.URL+"/v1/run", `{"after":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon did not survive the panic: next request got %d", resp.StatusCode)
	}
}

// TestHealthAndStats: healthz is ok until drain; statsz serves counters.
func TestHealthAndStats(t *testing.T) {
	p := &fakePlanner{}
	s, ts := testServer(t, smallConfig(), p)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(b), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, b)
	}

	postBody(t, ts.URL+"/v1/run", `{"s":1}`)
	postBody(t, ts.URL+"/v1/run", `{"s":1}`)
	st := s.snapshot()
	if st.Requests != 2 || st.Executions != 1 || st.CacheHits != 1 {
		t.Fatalf("snapshot %+v: want 2 requests, 1 execution, 1 hit", st)
	}
	if st.QueueCap != smallConfig().QueueDepth {
		t.Errorf("queue cap = %d, want %d", st.QueueCap, smallConfig().QueueDepth)
	}
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"executions": 1`) {
		t.Errorf("statsz missing executions counter: %s", b)
	}
}

// TestShutdownDrains: Shutdown completes queued work, then healthz
// reports draining and further Shutdowns are no-ops.
func TestShutdownDrains(t *testing.T) {
	p := &fakePlanner{}
	s, err := New(smallConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	postBody(t, ts.URL+"/v1/run", `{"d":1}`)
	ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	rec := httptest.NewRecorder()
	s.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", rec.Code)
	}
}

// TestResultCacheBounds: LRU eviction under the entry and byte budgets.
func TestResultCacheBounds(t *testing.T) {
	c := newResultCache(2, 100)
	c.put("a", []byte("aaaa"))
	c.put("b", []byte("bbbb"))
	c.get("a") // a is now MRU
	c.put("c", []byte("cccc"))
	if _, ok := c.get("b"); ok {
		t.Error("b survived entry-bound eviction despite being LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a was evicted despite being MRU")
	}

	c = newResultCache(10, 8)
	c.put("x", []byte("12345"))
	c.put("y", []byte("1234"))
	if _, ok := c.get("x"); ok {
		t.Error("x survived byte-bound eviction")
	}
	if got := c.size(); got != 4 {
		t.Errorf("size = %d, want 4", got)
	}
	c.put("huge", bytes.Repeat([]byte("z"), 9))
	if _, ok := c.get("huge"); ok {
		t.Error("over-budget body was cached")
	}
	if _, ok := c.get("y"); !ok {
		t.Error("rejecting the over-budget body evicted y")
	}
}

// TestConfigValidate rejects each bad bound.
func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for name, mut := range map[string]func(*Config){
		"queue":   func(c *Config) { c.QueueDepth = 0 },
		"workers": func(c *Config) { c.Workers = -1 },
		"cache":   func(c *Config) { c.CacheEntries = 0 },
		"bytes":   func(c *Config) { c.CacheBytes = 0 },
		"timeout": func(c *Config) { c.RequestTimeout = 0 },
		"drain":   func(c *Config) { c.DrainTimeout = 0 },
		"body":    func(c *Config) { c.MaxBodyBytes = 0 },
		"scale":   func(c *Config) { c.Scale = -1 },
		"store":   func(c *Config) { c.StoreBytes = -1 },
	} {
		cfg := good
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: bad config validated", name)
		}
	}
}

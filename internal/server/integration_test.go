package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"locsched/internal/experiment"
)

// realServer builds a server over the production experiment planner.
func realServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.Scale = 1 // small workloads: integration cells stay fast
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// TestIntegrationColdCachedCoalescedIdentical is the acceptance test of
// the serving tentpole: with the real experiment backend, N concurrent
// identical requests plus a later repeat produce exactly one simulation
// execution, and the cold, coalesced, and cached response bodies are all
// byte-identical.
func TestIntegrationColdCachedCoalescedIdentical(t *testing.T) {
	s, ts := realServer(t)
	const clients = 6
	req := `{"workload":{"app":"MxM"},"policy":"LSM"}`

	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	served := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postBody(t, ts.URL+"/v1/run", req)
			bodies[i], served[i] = b, resp.Header.Get(resultHeader)
		}(i)
	}
	wg.Wait()

	if n := s.stats.executions.Value(); n != 1 {
		t.Fatalf("executions = %d, want exactly 1 for %d identical concurrent requests", n, clients)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	classes := map[string]int{}
	for _, c := range served {
		classes[c]++
	}
	if classes["cold"] != 1 {
		t.Fatalf("served classes %v: want exactly one cold", classes)
	}
	if classes["coalesced"]+classes["cached"] != clients-1 {
		t.Fatalf("served classes %v: every follower must be coalesced or cached", classes)
	}

	// The repeat after completion is a pure cache hit, still identical.
	resp, b := postBody(t, ts.URL+"/v1/run", req)
	if resp.Header.Get(resultHeader) != "cached" {
		t.Fatalf("repeat served %q, want cached", resp.Header.Get(resultHeader))
	}
	if !bytes.Equal(b, bodies[0]) {
		t.Fatalf("cached body differs from cold body:\n%s\nvs\n%s", b, bodies[0])
	}
	if n := s.stats.executions.Value(); n != 1 {
		t.Fatalf("repeat re-executed: executions = %d", n)
	}

	var rr RunResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatalf("response is not a RunResponse: %v", err)
	}
	if rr.Policy != "LSM" || rr.Cycles <= 0 {
		t.Fatalf("implausible result %+v", rr)
	}
}

// TestIntegrationTaskSetReload: the inline task_set path (LoadApps
// format) is content-addressed — re-sending the same JSON text is a
// cache hit even though the daemon rebuilds fresh graph objects when
// planning the request.
func TestIntegrationTaskSetReload(t *testing.T) {
	s, ts := realServer(t)
	req := `{"workload":{"task_set":{"tasks":[
	  {"name":"producer-consumer",
	   "arrays":[{"name":"A","elems":4096},{"name":"B","elems":2048}],
	   "procs":[
	     {"name":"produce","iter_lo":0,"iter_hi":1024,"compute":2,
	      "refs":[{"array":"A","kind":"w","stride":1,"offset":0}],"deps":[]},
	     {"name":"consume","iter_lo":0,"iter_hi":1024,"compute":1,
	      "refs":[{"array":"A","kind":"r","stride":1,"offset":0},
	              {"array":"B","kind":"w","stride":1,"offset":0}],"deps":[0]}]},
	  {"name":"scanner",
	   "arrays":[{"name":"C","elems":8192}],
	   "procs":[{"name":"scan","iter_lo":0,"iter_hi":2048,"compute":1,
	      "refs":[{"array":"C","kind":"r","stride":2,"offset":1}],"deps":[]}]}
	]}},"policy":"LS"}`

	resp1, b1 := postBody(t, ts.URL+"/v1/run", req)
	if resp1.StatusCode != 200 {
		t.Fatalf("task_set run failed: %d %s", resp1.StatusCode, b1)
	}
	resp2, b2 := postBody(t, ts.URL+"/v1/run", req)
	if resp2.Header.Get(resultHeader) != "cached" {
		t.Fatalf("task_set reload served %q, want cached (content addressing must see through fresh objects)",
			resp2.Header.Get(resultHeader))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("task_set reload body differs")
	}
	if n := s.stats.executions.Value(); n != 1 {
		t.Fatalf("task_set executions = %d, want 1", n)
	}
}

// TestIntegrationFigureMatchesHarness: /v1/figure's bytes equal
// experiment.WriteJSON over the same figure and configuration — the
// invariant the CI smoke job checks against the CLI end to end.
func TestIntegrationFigureMatchesHarness(t *testing.T) {
	_, ts := realServer(t)
	resp, got := postBody(t, ts.URL+"/v1/figure", `{"figure":"fig6"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("figure failed: %d %s", resp.StatusCode, got)
	}

	cfg := experiment.DefaultConfig()
	cfg.Workload.Scale = 1
	cfg.Workers = 1
	tab, err := experiment.Figure6(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := experiment.WriteJSON(&want, tab); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("figure response differs from harness output:\n%s\nvs\n%s", got, want.Bytes())
	}
}

// TestIntegrationAnalysis: /v1/analysis returns a complete assignment
// and repeats are cached.
func TestIntegrationAnalysis(t *testing.T) {
	s, ts := realServer(t)
	req := `{"workload":{"mix":3},"cores":4}`
	resp, b := postBody(t, ts.URL+"/v1/analysis", req)
	if resp.StatusCode != 200 {
		t.Fatalf("analysis failed: %d %s", resp.StatusCode, b)
	}
	var ar AnalysisResponse
	if err := json.Unmarshal(b, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Cores != 4 || len(ar.PerCore) != 4 || ar.Processes <= 0 {
		t.Fatalf("implausible analysis %+v", ar)
	}
	scheduled := 0
	for _, core := range ar.PerCore {
		scheduled += len(core)
	}
	if scheduled != ar.Processes {
		t.Fatalf("assignment schedules %d of %d processes", scheduled, ar.Processes)
	}
	resp2, b2 := postBody(t, ts.URL+"/v1/analysis", req)
	if resp2.Header.Get(resultHeader) != "cached" || !bytes.Equal(b, b2) {
		t.Fatal("analysis repeat not served verbatim from cache")
	}
	if n := s.stats.executions.Value(); n != 1 {
		t.Fatalf("analysis executions = %d, want 1", n)
	}
}

// TestIntegrationBadRequests: resolution failures are client errors.
func TestIntegrationBadRequests(t *testing.T) {
	_, ts := realServer(t)
	for name, body := range map[string]string{
		"unknown policy":        `{"workload":{"app":"MxM"},"policy":"XX"}`,
		"unknown app":           `{"workload":{"app":"NoSuchApp"},"policy":"LS"}`,
		"empty workload":        `{"policy":"LS"}`,
		"two workloads":         `{"workload":{"app":"MxM","mix":2},"policy":"LS"}`,
		"unknown field":         `{"workload":{"app":"MxM"},"policy":"LS","bogus":1}`,
		"bad deadline":          `{"workload":{"app":"MxM"},"policy":"LS","deadline_ms":-5}`,
		"bad config":            `{"workload":{"app":"MxM"},"policy":"LS","config":{"cores":-1}}`,
		"negative scale":        `{"workload":{"app":"MxM","scale":-3},"policy":"LS"}`,
		"oversized scale":       `{"workload":{"app":"MxM","scale":1000},"policy":"LS"}`,
		"oversized mix":         `{"workload":{"mix":1000000},"policy":"LS"}`,
		"oversized cores":       `{"workload":{"app":"MxM"},"policy":"LS","config":{"cores":2000000000}}`,
		"oversized product":     `{"workload":{"mix":2},"policy":"LS","config":{"cores":4096,"cache_kb":65536}}`,
		"scale on task_set":     `{"workload":{"task_set":{"tasks":[{"name":"t","arrays":[{"name":"A","elems":64}],"procs":[{"iter_lo":0,"iter_hi":8,"compute":1,"refs":[{"array":"A"}],"deps":[]}]}]},"scale":2},"policy":"LS"}`,
		"unknown figure":        `{"figure":"fig9"}`,
		"negative xlpoint":      `{"figure":"fig7xl","xl_points":[{"cores":-2,"tasks":1}]}`,
		"oversized xlpoint":     `{"figure":"fig7xl","xl_points":[{"cores":8192,"tasks":4}]}`,
		"xl core-cache product": `{"figure":"fig7xl","xl_points":[{"cores":4096,"tasks":4}],"config":{"cache_kb":65536}}`,
		"xlpoints on fig6":      `{"figure":"fig6","xl_points":[{"cores":8,"tasks":2}]}`,
	} {
		endpoint := "/v1/run"
		var probe map[string]any
		json.Unmarshal([]byte(body), &probe)
		if _, isFigure := probe["figure"]; isFigure {
			endpoint = "/v1/figure"
		}
		resp, b := postBody(t, ts.URL+endpoint, body)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, b)
		}
	}
}

package server

import (
	"time"

	"locsched/internal/experiment"
	"locsched/internal/obs"
	"locsched/internal/store"
)

// counters holds the daemon's operational counters. Each field is a
// registry-registered obs.Counter, so /statsz and /metricsz read the
// very same atomics — one source of truth, no read-vs-update skew
// between the two surfaces. Gauges (queue depth, in-flight) are sampled
// from their owners at snapshot time instead of being tracked here.
type counters struct {
	requests         *obs.Counter // every request on a keyed endpoint
	cacheHits        *obs.Counter // served verbatim from the result cache
	diskHits         *obs.Counter // served verified from the persistent store
	diskWrites       *obs.Counter // responses written through to the store
	coalesced        *obs.Counter // attached to an identical in-flight execution
	executions       *obs.Counter // jobs actually run by the worker pool
	rejected         *obs.Counter // 429s from admission control
	timeouts         *obs.Counter // 504s from per-request deadlines
	coalesceTimeouts *obs.Counter // 504s on coalesced followers specifically
	failures         *obs.Counter // executions that returned an error
	badInput         *obs.Counter // 400s from unparsable/unresolvable requests
	peerHits         *obs.Counter // served verified bytes fetched from the owner replica
	peerMisses       *obs.Counter // clean peer misses (owner answered 404; recomputed locally)
	peerErrors       *obs.Counter // failed peer fetches (down/slow/corrupt; recomputed locally)
	peerServes       *obs.Counter // peer GETs this replica answered with bytes
	peerReplIn       *obs.Counter // entries replicated into this replica by peers
	peerReplOut      *obs.Counter // entries this replica replicated to their owners
	peerReplErrors   *obs.Counter // failed outbound replications (best-effort, dropped)
}

// newCounters registers the daemon counters on r under their
// locsched_<layer>_<name>_total exposition names.
func newCounters(r *obs.Registry) counters {
	return counters{
		requests:         r.Counter("locsched_server_requests_total", "Keyed-endpoint requests (run/figure/analysis)."),
		cacheHits:        r.Counter("locsched_cache_memory_hits_total", "Responses served verbatim from the in-memory result cache."),
		diskHits:         r.Counter("locsched_cache_disk_hits_total", "Responses served verified from the persistent store."),
		diskWrites:       r.Counter("locsched_store_write_through_total", "Responses successfully written through to the persistent store."),
		coalesced:        r.Counter("locsched_server_coalesced_total", "Requests attached to an identical in-flight execution."),
		executions:       r.Counter("locsched_server_executions_total", "Jobs actually run by the worker pool."),
		rejected:         r.Counter("locsched_server_rejected_total", "429 admission-control rejections."),
		timeouts:         r.Counter("locsched_server_timeouts_total", "504 per-request deadline expiries."),
		coalesceTimeouts: r.Counter("locsched_server_coalesce_timeouts_total", "504s suffered by coalesced followers specifically."),
		failures:         r.Counter("locsched_server_failures_total", "Executions that returned an error."),
		badInput:         r.Counter("locsched_server_bad_requests_total", "400s from unparsable or unresolvable requests."),
		peerHits:         r.Counter("locsched_fleet_peer_hits_total", "Responses served from verified peer-fetched bytes."),
		peerMisses:       r.Counter("locsched_fleet_peer_misses_total", "Clean peer misses (owner answered 404; recomputed locally)."),
		peerErrors:       r.Counter("locsched_fleet_peer_errors_total", "Failed peer fetches (down/slow/corrupt; recomputed locally)."),
		peerServes:       r.Counter("locsched_fleet_peer_serves_total", "Peer GETs this replica answered with bytes."),
		peerReplIn:       r.Counter("locsched_fleet_replicated_in_total", "Entries replicated into this replica by peers."),
		peerReplOut:      r.Counter("locsched_fleet_replicated_out_total", "Entries this replica replicated to their owners."),
		peerReplErrors:   r.Counter("locsched_fleet_replication_errors_total", "Failed outbound replications (best-effort, dropped)."),
	}
}

// StoreSnapshot is the persistent tier's /statsz section.
type StoreSnapshot struct {
	// Enabled reports whether a store directory was configured.
	Enabled bool `json:"enabled"`
	// Degraded reports whether the tier is currently unavailable (open
	// failed, or the breaker is open/half-open) and the daemon is
	// serving memory-only.
	Degraded bool `json:"degraded"`
	// OpenError is the startup open failure, when that is why the tier
	// is down.
	OpenError string `json:"open_error,omitempty"`
	// Store holds the store's own gauges and counters (disk hits and
	// writes from the daemon's perspective are the top-level DiskHits /
	// DiskWrites counters).
	Store store.Stats `json:"store"`
}

// FleetSnapshot is the fleet layer's /statsz section.
type FleetSnapshot struct {
	// Enabled reports whether fleet mode is on (a FleetSelf URL was
	// configured).
	Enabled bool `json:"enabled"`
	// Self is this replica's own ring identity.
	Self string `json:"self,omitempty"`
	// Members is the current ring membership, sorted.
	Members []string `json:"members,omitempty"`
	// PeerMisses counts clean owner misses (404) that fell through to
	// local recompute.
	PeerMisses int64 `json:"peer_misses"`
	// PeerServes counts peer GETs this replica answered with bytes.
	PeerServes int64 `json:"peer_serves"`
	// ReplicatedIn counts entries peers replicated into this replica.
	ReplicatedIn int64 `json:"replicated_in"`
	// ReplicatedOut counts entries this replica wrote through to their
	// owners.
	ReplicatedOut int64 `json:"replicated_out"`
	// ReplicationErrors counts failed outbound replications (dropped;
	// best-effort by design).
	ReplicationErrors int64 `json:"replication_errors"`
}

// StatsSnapshot is the /statsz response: the daemon's request counters,
// queue and cache gauges, and the experiment layer's cache statistics
// (which the served workloads share with CLI runs in the same process).
type StatsSnapshot struct {
	// UptimeSeconds is time since the server was built.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts keyed-endpoint requests (run/figure/analysis).
	Requests int64 `json:"requests"`
	// CacheHits counts responses served verbatim from the result cache.
	CacheHits int64 `json:"cache_hits"`
	// Coalesced counts requests attached to an in-flight execution.
	Coalesced int64 `json:"coalesced"`
	// Executions counts jobs the worker pool actually ran.
	Executions int64 `json:"executions"`
	// Rejected counts 429 admission-control rejections.
	Rejected int64 `json:"rejected"`
	// Timeouts counts 504 deadline expiries.
	Timeouts int64 `json:"timeouts"`
	// CoalesceTimeouts counts the subset of Timeouts suffered by
	// coalesced followers — requests that attached to another request's
	// execution and still saw their own deadline expire.
	CoalesceTimeouts int64 `json:"coalesce_timeouts"`
	// DiskHits counts responses served verified from the persistent
	// store (misses in memory, found on disk).
	DiskHits int64 `json:"disk_hits"`
	// DiskWrites counts responses successfully written through to the
	// persistent store.
	DiskWrites int64 `json:"disk_writes"`
	// PeerHits counts responses served from verified peer-fetched bytes
	// (misses everywhere locally, found on the owner replica).
	PeerHits int64 `json:"peer_hits"`
	// PeerErrors counts peer fetches that failed (peer down, deadline,
	// corrupt bytes) and degraded to local recompute. A clean 404 miss is
	// not an error; see the fleet section's PeerMisses.
	PeerErrors int64 `json:"peer_errors"`
	// Failures counts executions that returned an error.
	Failures int64 `json:"failures"`
	// BadRequests counts 400 responses.
	BadRequests int64 `json:"bad_requests"`
	// QueueDepth is the number of jobs waiting in the queue now.
	QueueDepth int `json:"queue_depth"`
	// QueueCap is the configured queue bound.
	QueueCap int `json:"queue_cap"`
	// InflightKeys is the number of distinct keys currently executing or
	// queued (the coalescer's pending set).
	InflightKeys int `json:"inflight_keys"`
	// ResultEntries is the result cache's current entry count.
	ResultEntries int `json:"result_entries"`
	// ResultBytes is the result cache's current stored byte total.
	ResultBytes int64 `json:"result_bytes"`
	// Store is the persistent tier's section: whether it is enabled,
	// whether it is degraded, and the store's own counters.
	Store StoreSnapshot `json:"persistent_store"`
	// Fleet is the fleet layer's section: membership and peer-traffic
	// counters (peer_hits and peer_errors above are the request-path
	// aggregates).
	Fleet FleetSnapshot `json:"fleet"`
	// Experiment snapshots the experiment layer's content-addressed
	// caches (analysis tiers, runner pool, intern table).
	Experiment experiment.CacheStats `json:"experiment"`
}

// snapshot assembles the current statistics.
func (s *Server) snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		UptimeSeconds:    time.Since(s.started).Seconds(),
		Requests:         s.stats.requests.Value(),
		CacheHits:        s.stats.cacheHits.Value(),
		CoalesceTimeouts: s.stats.coalesceTimeouts.Value(),
		DiskHits:         s.stats.diskHits.Value(),
		DiskWrites:       s.stats.diskWrites.Value(),
		PeerHits:         s.stats.peerHits.Value(),
		PeerErrors:       s.stats.peerErrors.Value(),
		Coalesced:        s.stats.coalesced.Value(),
		Executions:       s.stats.executions.Value(),
		Rejected:         s.stats.rejected.Value(),
		Timeouts:         s.stats.timeouts.Value(),
		Failures:         s.stats.failures.Value(),
		BadRequests:      s.stats.badInput.Value(),
		QueueDepth:       len(s.jobs),
		QueueCap:         cap(s.jobs),
		InflightKeys:     s.flight.pending(),
		ResultEntries:    s.cache.len(),
		ResultBytes:      s.cache.size(),
		Experiment:       experiment.Stats(),
	}
	snap.Store.Enabled = s.store != nil || s.storeErr != nil
	snap.Store.Degraded = s.storeDegraded()
	if s.storeErr != nil {
		snap.Store.OpenError = s.storeErr.Error()
	}
	if s.store != nil {
		snap.Store.Store = s.store.Stats()
	}
	if s.ring != nil {
		snap.Fleet = FleetSnapshot{
			Enabled:           true,
			Self:              s.ring.Self(),
			Members:           s.ring.Members(),
			PeerMisses:        s.stats.peerMisses.Value(),
			PeerServes:        s.stats.peerServes.Value(),
			ReplicatedIn:      s.stats.peerReplIn.Value(),
			ReplicatedOut:     s.stats.peerReplOut.Value(),
			ReplicationErrors: s.stats.peerReplErrors.Value(),
		}
	}
	return snap
}

package server

import (
	"sync/atomic"
	"time"

	"locsched/internal/experiment"
)

// counters holds the daemon's atomic operational counters. Gauges
// (queue depth, in-flight) are sampled from their owners at snapshot
// time instead of being tracked here.
type counters struct {
	requests   atomic.Int64 // every request on a keyed endpoint
	cacheHits  atomic.Int64 // served verbatim from the result cache
	coalesced  atomic.Int64 // attached to an identical in-flight execution
	executions atomic.Int64 // jobs actually run by the worker pool
	rejected   atomic.Int64 // 429s from admission control
	timeouts   atomic.Int64 // 504s from per-request deadlines
	failures   atomic.Int64 // executions that returned an error
	badInput   atomic.Int64 // 400s from unparsable/unresolvable requests
}

// StatsSnapshot is the /statsz response: the daemon's request counters,
// queue and cache gauges, and the experiment layer's cache statistics
// (which the served workloads share with CLI runs in the same process).
type StatsSnapshot struct {
	// UptimeSeconds is time since the server was built.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts keyed-endpoint requests (run/figure/analysis).
	Requests int64 `json:"requests"`
	// CacheHits counts responses served verbatim from the result cache.
	CacheHits int64 `json:"cache_hits"`
	// Coalesced counts requests attached to an in-flight execution.
	Coalesced int64 `json:"coalesced"`
	// Executions counts jobs the worker pool actually ran.
	Executions int64 `json:"executions"`
	// Rejected counts 429 admission-control rejections.
	Rejected int64 `json:"rejected"`
	// Timeouts counts 504 deadline expiries.
	Timeouts int64 `json:"timeouts"`
	// Failures counts executions that returned an error.
	Failures int64 `json:"failures"`
	// BadRequests counts 400 responses.
	BadRequests int64 `json:"bad_requests"`
	// QueueDepth is the number of jobs waiting in the queue now.
	QueueDepth int `json:"queue_depth"`
	// QueueCap is the configured queue bound.
	QueueCap int `json:"queue_cap"`
	// InflightKeys is the number of distinct keys currently executing or
	// queued (the coalescer's pending set).
	InflightKeys int `json:"inflight_keys"`
	// ResultEntries is the result cache's current entry count.
	ResultEntries int `json:"result_entries"`
	// ResultBytes is the result cache's current stored byte total.
	ResultBytes int64 `json:"result_bytes"`
	// Experiment snapshots the experiment layer's content-addressed
	// caches (analysis tiers, runner pool, intern table).
	Experiment experiment.CacheStats `json:"experiment"`
}

// snapshot assembles the current statistics.
func (s *Server) snapshot() StatsSnapshot {
	return StatsSnapshot{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.stats.requests.Load(),
		CacheHits:     s.stats.cacheHits.Load(),
		Coalesced:     s.stats.coalesced.Load(),
		Executions:    s.stats.executions.Load(),
		Rejected:      s.stats.rejected.Load(),
		Timeouts:      s.stats.timeouts.Load(),
		Failures:      s.stats.failures.Load(),
		BadRequests:   s.stats.badInput.Load(),
		QueueDepth:    len(s.jobs),
		QueueCap:      cap(s.jobs),
		InflightKeys:  s.flight.pending(),
		ResultEntries: s.cache.len(),
		ResultBytes:   s.cache.size(),
		Experiment:    experiment.Stats(),
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"locsched/internal/fleet"
	"locsched/internal/obs"
	"locsched/internal/store"
)

// errSaturated is the admission-control rejection: the job queue is full
// and the request was not buffered. Clients should honor Retry-After.
var errSaturated = errors.New("server: job queue saturated")

// resultHeader is the response header classifying how a keyed request
// was served: "cold" (this request's execution), "cached" (memory
// result cache), "disk" (persistent store, CRC-verified), "coalesced"
// (attached to an identical in-flight execution), or "peer" (fetched
// CRC-verified from the key's owner replica in fleet mode). It is a
// header precisely so all the bodies stay byte-identical.
const resultHeader = "X-Locsched-Result"

// task pairs an admitted job with the pending call its waiters block
// on, carrying the admitting request's trace and enqueue time so the
// worker can attribute queue wait and execution to the right request.
type task struct {
	job      *Job
	call     *call
	trace    *obs.Trace
	enqueued time.Time
}

// Server is the serving daemon: HTTP handlers feeding a bounded job
// queue over a worker pool, fronted by a singleflight coalescer, a
// content-addressed in-memory result cache, and (optionally) the
// disk-backed persistent store beneath it. Build with New, serve with
// ListenAndServe/Serve or mount Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	planner Planner
	cache   *resultCache
	flight  *coalescer
	jobs    chan *task
	stats   counters
	started time.Time
	mux     *http.ServeMux

	// obs is the observability state (registry, logger, histograms);
	// handler is the mux wrapped in the tracing/logging middleware.
	obs     *serverObs
	handler http.Handler

	// store is the persistent tier under the LRU (nil when disabled or
	// when opening it failed — storeErr holds why). storeOwned marks a
	// store opened by New, which Shutdown then closes; an injected
	// cfg.Store stays open for its owner.
	store      *store.Store
	storeErr   error
	storeOwned bool

	// ring and peers are the fleet layer (nil when FleetSelf is unset):
	// the consistent-hash key→owner map and the peer-fetch/replication
	// client.
	ring  *fleet.Ring
	peers *fleet.Client

	// metaMu guards replayMeta: key → endpoint NUL request-body, the
	// opaque replay blob SaveManifest persists so bench can rebuild the
	// warm set's requests. Bounded; cleared wholesale when full.
	metaMu     sync.Mutex
	replayMeta map[string][]byte

	httpMu   sync.Mutex
	httpSrv  *http.Server
	draining chan struct{}
	workers  sync.WaitGroup
	stopOnce sync.Once
}

// New builds a Server with started workers. planner == nil uses the
// production experiment-backed planner. A configured-but-unusable store
// directory does not fail construction: the daemon serves memory-only
// and reports degraded, because a broken disk must cost warm starts,
// not availability.
func New(cfg Config, planner Planner) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if planner == nil {
		planner = newExperimentPlanner(cfg)
	}
	s := &Server{
		cfg:      cfg,
		planner:  planner,
		cache:    newResultCache(cfg.CacheEntries, cfg.CacheBytes),
		flight:   newCoalescer(),
		jobs:     make(chan *task, cfg.QueueDepth),
		started:  time.Now(),
		draining: make(chan struct{}),
		obs:      newServerObs(cfg.Logger),
	}
	s.stats = newCounters(s.obs.reg)
	switch {
	case cfg.Store != nil:
		s.store = cfg.Store
	case cfg.StoreDir != "":
		st, err := store.Open(cfg.StoreDir, store.Options{MaxBytes: cfg.StoreBytes, Metrics: s.obs.reg})
		if err != nil {
			s.storeErr = err
		} else {
			s.store, s.storeOwned = st, true
		}
	}
	if cfg.FleetSelf != "" {
		s.ring = fleet.NewRing(cfg.FleetSelf, cfg.FleetPeers)
		s.peers = fleet.NewClient(cfg.PeerTimeout, cfg.PeerTransport)
		s.peers.SetMetrics(s.obs.reg)
	}
	if s.store != nil {
		s.replayMeta = make(map[string][]byte)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.keyedHandler("run"))
	s.mux.HandleFunc("/v1/figure", s.keyedHandler("figure"))
	s.mux.HandleFunc("/v1/analysis", s.keyedHandler("analysis"))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	if s.ring != nil {
		// Registered only in fleet mode: a single instance keeps exactly
		// the pre-fleet route set and request path.
		s.mux.HandleFunc("/v1/peer/", s.handlePeer)
	}
	s.mountObsEndpoints()
	s.registerGauges()
	s.handler = s.withObs(s.mux)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the server's HTTP handler (for tests and embedding),
// with the tracing/logging middleware already applied.
func (s *Server) Handler() http.Handler { return s.handler }

// worker drains the job queue: each task executes at most once, fills
// the result cache (and writes through to the persistent store) on
// success, and resolves its call so every waiter — leader and coalesced
// followers alike — receives the same bytes. Execution wall time is
// recorded as the entry's reconstruction cost for cost-aware eviction.
// In fleet mode a computed entry this replica does not own is also
// replicated to its owner — synchronously, before the call completes,
// so by the time any waiter sees the response the owner can already
// serve the bytes to the rest of the fleet.
func (s *Server) worker() {
	defer s.workers.Done()
	for t := range s.jobs {
		wait := time.Since(t.enqueued)
		s.obs.queueWaitSeconds.Observe(wait.Seconds())
		t.trace.Event("queue_wait", wait)
		start := time.Now()
		body, err := runJob(t.job)
		elapsed := time.Since(start)
		cost := elapsed.Nanoseconds()
		s.obs.executionSeconds.Observe(elapsed.Seconds())
		t.trace.Event("execution", elapsed, slog.Bool("failed", err != nil))
		s.stats.executions.Add(1)
		if err != nil {
			s.stats.failures.Add(1)
		} else {
			s.cache.putCost(t.job.Key, body, cost)
			sp := t.trace.Start("store_write")
			s.storePut(t.job.Key, body, cost)
			sp.End()
			// The replication context carries the trace so the owner's
			// access log shows the same id the user request carried.
			s.replicateToOwner(obs.Into(context.Background(), t.trace), t.job.Key, body, cost)
		}
		s.flight.complete(t.job.Key, t.call, body, err)
	}
}

// replicateToOwner writes a locally computed entry through to its owner
// replica when this replica is not the owner. Best-effort: a failed
// replication is counted and dropped — it costs the fleet a future
// duplicate recompute, never correctness.
func (s *Server) replicateToOwner(ctx context.Context, key string, body []byte, cost int64) {
	if s.ring == nil {
		return
	}
	owner := s.ring.Owner(key)
	if owner == s.ring.Self() {
		return
	}
	sp := obs.From(ctx).Start("peer_replicate")
	sp.SetAttr(slog.String("owner", owner))
	defer sp.End()
	if err := s.peers.Replicate(ctx, owner, key, body, cost); err != nil {
		s.stats.peerReplErrors.Add(1)
		return
	}
	s.stats.peerReplOut.Add(1)
}

// storePut writes a completed response through to the persistent store,
// best-effort: the store's own retry/backoff/breaker machinery absorbs
// failures, and a dropped write only costs a future warm start.
func (s *Server) storePut(key string, body []byte, cost int64) {
	if s.store == nil {
		return
	}
	if err := s.store.PutCost(key, body, cost); err == nil {
		s.stats.diskWrites.Add(1)
	}
}

// storeGet consults the persistent tier under the memory cache. A hit
// is CRC-verified by the store and promoted — with its recorded cost —
// into the LRU so repeats are served from memory.
func (s *Server) storeGet(key string) ([]byte, bool) {
	body, cost, ok := s.storeGetCost(key)
	if !ok {
		return nil, false
	}
	s.stats.diskHits.Add(1)
	s.cache.putCost(key, body, cost)
	return body, true
}

// storeGetCost is the raw persistent-tier read (no promotion, no hit
// counter) shared by storeGet and the peer-serving handler.
func (s *Server) storeGetCost(key string) ([]byte, int64, bool) {
	if s.store == nil {
		return nil, 0, false
	}
	return s.store.GetWithCost(key)
}

// storeDegraded reports whether a configured persistent store is
// currently unavailable: it failed to open, or its circuit breaker is
// not closed. The daemon keeps serving (memory + recompute); /healthz
// surfaces the state as "degraded".
func (s *Server) storeDegraded() bool {
	if s.storeErr != nil {
		return true
	}
	if s.store == nil {
		return false
	}
	return s.store.Stats().Breaker != store.BreakerClosed
}

// runJob executes a job, converting a panic into an execution error: a
// single malformed workload must cost its own request a 500, never the
// whole long-lived daemon (and its cache, and every other in-flight
// request).
func runJob(j *Job) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			body, err = nil, fmt.Errorf("server: execution panicked: %v", r)
		}
	}()
	return j.Run()
}

// keyedHandler builds the handler for one cacheable POST endpoint: plan
// → result cache → coalescer → bounded queue → wait with deadline.
func (s *Server) keyedHandler(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("server: %s requires POST", r.URL.Path))
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			s.stats.badInput.Add(1)
			status := http.StatusBadRequest
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			s.writeError(w, status, fmt.Errorf("server: reading body: %w", err))
			return
		}
		tr := obs.From(r.Context())
		sp := tr.Start("planner_resolve")
		job, err := s.planner.Plan(endpoint, body)
		sp.End()
		if err != nil {
			s.stats.badInput.Add(1)
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
		s.recordReplayMeta(job.Key, endpoint, body)

		sp = tr.Start("cache_memory")
		cached, hit := s.cache.get(job.Key)
		sp.SetAttr(slog.Bool("hit", hit))
		sp.End()
		if hit {
			s.stats.cacheHits.Add(1)
			s.writeBody(w, "cached", cached)
			return
		}
		// Persistent tier: a warm-started daemon serves disk entries
		// (verified, then promoted into the LRU) instead of recomputing.
		sp = tr.Start("cache_disk")
		body2, hit := s.storeGet(job.Key)
		sp.SetAttr(slog.Bool("hit", hit))
		sp.End()
		if hit {
			s.writeBody(w, "disk", body2)
			return
		}

		c, leader := s.flight.join(job.Key)
		served := "coalesced"
		if leader {
			// Re-check the cache after winning leadership: an identical
			// request may have completed (cache.put, then coalescer
			// entry removed) between our miss above and the join, and
			// executing again would break the exactly-once guarantee.
			// Completing the call with the cached bytes also serves any
			// followers that attached to this generation.
			if cached, ok := s.cache.get(job.Key); ok {
				s.flight.complete(job.Key, c, cached, nil)
				s.stats.cacheHits.Add(1)
				s.writeBody(w, "cached", cached)
				return
			}
			// Fleet: if another replica owns this key, ask it before
			// computing — one peer round-trip against a warm owner beats a
			// full recompute. Only the coalescing leader pays the fetch;
			// followers inherit whatever it finds. Every failure mode
			// (down, slow, corrupt, clean miss) hedges to local recompute,
			// so the fleet layer can never turn a servable request into an
			// error.
			sp = tr.Start("cache_peer")
			peerBody, cost, ok := s.peerFetch(r.Context(), job.Key)
			sp.SetAttr(slog.Bool("hit", ok))
			sp.End()
			if ok {
				s.cache.putCost(job.Key, peerBody, cost)
				s.flight.complete(job.Key, c, peerBody, nil)
				s.writeBody(w, "peer", peerBody)
				return
			}
			served = "cold"
			select {
			case s.jobs <- &task{job: job, call: c, trace: tr, enqueued: time.Now()}:
			default:
				// Admission control: the queue is full. The call must
				// still complete, or followers that joined between our
				// join and now would hang until their deadlines.
				s.flight.complete(job.Key, c, nil, errSaturated)
			}
		} else {
			s.stats.coalesced.Add(1)
		}

		timeout := s.cfg.RequestTimeout
		if job.Deadline > 0 && job.Deadline < timeout {
			timeout = job.Deadline
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		waitStart := time.Now()
		select {
		case <-c.done:
			if !leader {
				// Only followers time this: a leader's wait is already
				// decomposed into queue wait + execution by the worker.
				d := time.Since(waitStart)
				s.obs.coalesceWaitSeconds.Observe(d.Seconds())
				tr.Event("coalesce_wait", d)
			}
			switch {
			case errors.Is(c.err, errSaturated):
				s.stats.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				s.writeError(w, http.StatusTooManyRequests, c.err)
			case c.err != nil:
				s.writeError(w, http.StatusInternalServerError, c.err)
			default:
				s.writeBody(w, served, c.body)
			}
		case <-ctx.Done():
			// The execution (if any) continues and will populate the
			// result cache; only this waiter gives up. Timed-out
			// coalesced followers are counted separately — they paid a
			// 504 without ever owning an execution, which is invisible
			// in the aggregate timeout counter alone.
			s.stats.timeouts.Add(1)
			if !leader {
				s.stats.coalesceTimeouts.Add(1)
			}
			s.writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("server: request deadline exceeded after %v (result may be cached on retry)", timeout))
		}
	}
}

// peerFetch consults the key's owner replica when this replica is not
// the owner. ok is true only for a CRC-verified peer hit; clean misses
// and every failure mode report false (and the appropriate counter) so
// the caller recomputes locally.
func (s *Server) peerFetch(ctx context.Context, key string) ([]byte, int64, bool) {
	if s.ring == nil {
		return nil, 0, false
	}
	owner := s.ring.Owner(key)
	if owner == s.ring.Self() {
		return nil, 0, false
	}
	body, cost, err := s.peers.Fetch(ctx, owner, key)
	switch {
	case err == nil:
		s.stats.peerHits.Add(1)
		return body, cost, true
	case errors.Is(err, fleet.ErrNotFound):
		s.stats.peerMisses.Add(1)
	default:
		s.stats.peerErrors.Add(1)
	}
	return nil, 0, false
}

// maxPeerBodyBytes caps inbound peer replication bodies. Response
// bodies are not bounded by cfg.MaxBodyBytes (that caps requests), so
// the peer endpoint carries its own generous bound.
const maxPeerBodyBytes = 64 << 20

// handlePeer serves the fleet peer protocol on /v1/peer/<escaped-key>:
// GET returns this replica's local bytes for the key (memory or
// persistent store only — an owner never recomputes on behalf of a
// peer; a miss is a clean 404 and the asking replica computes), PUT is
// write-through replication of bytes a non-owner computed. Both
// directions carry the Castagnoli CRC and the entry's reconstruction
// cost in headers, and a PUT whose bytes fail their CRC is rejected —
// corruption stops at the first hop.
func (s *Server) handlePeer(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/peer/")
	if key == "" || strings.Contains(key, "/") {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("server: malformed peer key"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		body, cost, ok := s.cache.getCost(key)
		if !ok {
			body, cost, ok = s.storeGetCost(key)
			if ok {
				// Promote: the owner is about to be asked for this key by
				// every replica that misses it.
				s.cache.putCost(key, body, cost)
			}
		}
		if !ok {
			s.writeError(w, http.StatusNotFound, fmt.Errorf("server: no local entry for key"))
			return
		}
		s.stats.peerServes.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(fleet.HeaderCRC, fleet.Checksum(body))
		w.Header().Set(fleet.HeaderCost, strconv.FormatInt(cost, 10))
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPeerBodyBytes))
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("server: reading replicated body: %w", err))
			return
		}
		if fleet.Checksum(body) != r.Header.Get(fleet.HeaderCRC) {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("server: replicated bytes fail CRC verification"))
			return
		}
		cost, _ := strconv.ParseInt(r.Header.Get(fleet.HeaderCost), 10, 64)
		if cost < 0 {
			cost = 0
		}
		s.cache.putCost(key, body, cost)
		s.storePut(key, body, cost)
		s.stats.peerReplIn.Add(1)
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, PUT")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("server: peer endpoint requires GET or PUT"))
	}
}

// SetFleetMembers replaces the ring membership at runtime (self is
// always retained). It is safe during live traffic — in-flight requests
// routed under the old membership just complete against the old owner
// or recompute locally — and a no-op when fleet mode is off.
func (s *Server) SetFleetMembers(members []string) {
	if s.ring != nil {
		s.ring.SetMembers(members)
	}
}

// maxReplayMeta bounds the replay-metadata map; past it the map is
// cleared wholesale (like the planner memos — the manifest is advisory,
// so losing replay blobs for old keys is acceptable).
const maxReplayMeta = 4096

// recordReplayMeta remembers a key's endpoint and request body so the
// shutdown manifest can describe how to replay the entry (bench warm
// sets). Only active with a persistent store.
func (s *Server) recordReplayMeta(key, endpoint string, body []byte) {
	if s.replayMeta == nil {
		return
	}
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	if _, ok := s.replayMeta[key]; ok {
		return
	}
	if len(s.replayMeta) >= maxReplayMeta {
		s.replayMeta = make(map[string][]byte)
	}
	s.replayMeta[key] = EncodeReplayMeta(endpoint, body)
}

// EncodeReplayMeta renders a manifest replay blob: endpoint, NUL,
// request body (the inverse of DecodeReplayMeta).
func EncodeReplayMeta(endpoint string, body []byte) []byte {
	meta := make([]byte, 0, len(endpoint)+1+len(body))
	meta = append(meta, endpoint...)
	meta = append(meta, 0)
	return append(meta, body...)
}

// DecodeReplayMeta splits a manifest replay blob back into the endpoint
// and request body that produced the entry. ok is false for blobs this
// server version cannot interpret (foreign writers, truncation).
func DecodeReplayMeta(meta []byte) (endpoint string, body []byte, ok bool) {
	i := strings.IndexByte(string(meta), 0)
	if i <= 0 {
		return "", nil, false
	}
	switch e := string(meta[:i]); e {
	case "run", "figure", "analysis":
		return e, meta[i+1:], true
	}
	return "", nil, false
}

// writeBody sends canonical response bytes with the served-from class.
func (s *Server) writeBody(w http.ResponseWriter, served string, body []byte) {
	s.obs.countResponse(served)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(resultHeader, served)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	// Error is the failure description.
	Error string `json:"error"`
}

// writeError sends a JSON error with the given status.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// handleHealthz reports liveness. A draining server answers 503 so load
// balancers stop routing to it while in-flight requests finish; a
// degraded server — its persistent store unavailable, serving
// memory-only — answers 200 with status "degraded", because it still
// serves correctly and must not be drained for a disk problem. Draining
// wins when both apply.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.storeDegraded() {
		status = "degraded"
	}
	select {
	case <-s.draining:
		status, code = "draining", http.StatusServiceUnavailable
	default:
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q}\n", status)
}

// handleStatsz serves the operational counters.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot())
}

// ListenAndServe serves on cfg.Addr until Shutdown; it returns
// http.ErrServerClosed after a graceful drain.
func (s *Server) ListenAndServe() error {
	srv := &http.Server{Addr: s.cfg.Addr, Handler: s.handler}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.ListenAndServe()
}

// Serve serves on an existing listener until Shutdown (used by the
// restart-warm bench harness, which needs an ephemeral port); it
// returns http.ErrServerClosed after a graceful drain.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.handler}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.Serve(l)
}

// Shutdown drains the server gracefully: mark draining (healthz flips to
// 503), stop accepting connections, wait for in-flight handlers within
// ctx, then stop the workers after the queue empties. Safe to call once;
// later calls return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.stopOnce.Do(func() {
		close(s.draining)
		s.httpMu.Lock()
		srv := s.httpSrv
		s.httpMu.Unlock()
		if srv != nil {
			if err = srv.Shutdown(ctx); err != nil {
				// The drain budget expired with handlers still running;
				// those handlers may yet enqueue, so the queue cannot be
				// closed safely. The process is exiting anyway — leak
				// the workers instead of racing a send-on-closed panic.
				return
			}
		}
		// No handlers remain (callers of Handler() must stop their own
		// listener first); nothing can enqueue anymore, so closing the
		// queue lets the workers finish the jobs already admitted and
		// exit.
		close(s.jobs)
		done := make(chan struct{})
		go func() {
			s.workers.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
		// The workers are done writing through: persist the cache
		// manifest (advisory — costs and replay blobs for the next
		// lifetime's eviction ranking and bench warm replay), then close
		// a store New opened (an injected cfg.Store belongs to its
		// caller, but the manifest is still saved on its behalf because
		// only this server knows the replay metadata).
		if s.store != nil {
			s.metaMu.Lock()
			meta := s.replayMeta
			s.metaMu.Unlock()
			s.store.SaveManifest(func(key string) []byte { return meta[key] })
			if s.storeOwned {
				if cerr := s.store.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
	})
	return err
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"locsched/internal/store"
)

// errSaturated is the admission-control rejection: the job queue is full
// and the request was not buffered. Clients should honor Retry-After.
var errSaturated = errors.New("server: job queue saturated")

// resultHeader is the response header classifying how a keyed request
// was served: "cold" (this request's execution), "cached" (memory
// result cache), "disk" (persistent store, CRC-verified), or
// "coalesced" (attached to an identical in-flight execution). It is a
// header precisely so the four bodies stay byte-identical.
const resultHeader = "X-Locsched-Result"

// task pairs an admitted job with the pending call its waiters block on.
type task struct {
	job  *Job
	call *call
}

// Server is the serving daemon: HTTP handlers feeding a bounded job
// queue over a worker pool, fronted by a singleflight coalescer, a
// content-addressed in-memory result cache, and (optionally) the
// disk-backed persistent store beneath it. Build with New, serve with
// ListenAndServe/Serve or mount Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	planner Planner
	cache   *resultCache
	flight  *coalescer
	jobs    chan *task
	stats   counters
	started time.Time
	mux     *http.ServeMux

	// store is the persistent tier under the LRU (nil when disabled or
	// when opening it failed — storeErr holds why). storeOwned marks a
	// store opened by New, which Shutdown then closes; an injected
	// cfg.Store stays open for its owner.
	store      *store.Store
	storeErr   error
	storeOwned bool

	httpMu   sync.Mutex
	httpSrv  *http.Server
	draining chan struct{}
	workers  sync.WaitGroup
	stopOnce sync.Once
}

// New builds a Server with started workers. planner == nil uses the
// production experiment-backed planner. A configured-but-unusable store
// directory does not fail construction: the daemon serves memory-only
// and reports degraded, because a broken disk must cost warm starts,
// not availability.
func New(cfg Config, planner Planner) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if planner == nil {
		planner = newExperimentPlanner(cfg)
	}
	s := &Server{
		cfg:      cfg,
		planner:  planner,
		cache:    newResultCache(cfg.CacheEntries, cfg.CacheBytes),
		flight:   newCoalescer(),
		jobs:     make(chan *task, cfg.QueueDepth),
		started:  time.Now(),
		draining: make(chan struct{}),
	}
	switch {
	case cfg.Store != nil:
		s.store = cfg.Store
	case cfg.StoreDir != "":
		st, err := store.Open(cfg.StoreDir, store.Options{MaxBytes: cfg.StoreBytes})
		if err != nil {
			s.storeErr = err
		} else {
			s.store, s.storeOwned = st, true
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.keyedHandler("run"))
	s.mux.HandleFunc("/v1/figure", s.keyedHandler("figure"))
	s.mux.HandleFunc("/v1/analysis", s.keyedHandler("analysis"))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the server's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// worker drains the job queue: each task executes at most once, fills
// the result cache (and writes through to the persistent store) on
// success, and resolves its call so every waiter — leader and coalesced
// followers alike — receives the same bytes.
func (s *Server) worker() {
	defer s.workers.Done()
	for t := range s.jobs {
		body, err := runJob(t.job)
		s.stats.executions.Add(1)
		if err != nil {
			s.stats.failures.Add(1)
		} else {
			s.cache.put(t.job.Key, body)
			s.storePut(t.job.Key, body)
		}
		s.flight.complete(t.job.Key, t.call, body, err)
	}
}

// storePut writes a completed response through to the persistent store,
// best-effort: the store's own retry/backoff/breaker machinery absorbs
// failures, and a dropped write only costs a future warm start.
func (s *Server) storePut(key string, body []byte) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(key, body); err == nil {
		s.stats.diskWrites.Add(1)
	}
}

// storeGet consults the persistent tier under the memory cache. A hit
// is CRC-verified by the store and promoted into the LRU so repeats are
// served from memory.
func (s *Server) storeGet(key string) ([]byte, bool) {
	if s.store == nil {
		return nil, false
	}
	body, ok := s.store.Get(key)
	if !ok {
		return nil, false
	}
	s.stats.diskHits.Add(1)
	s.cache.put(key, body)
	return body, true
}

// storeDegraded reports whether a configured persistent store is
// currently unavailable: it failed to open, or its circuit breaker is
// not closed. The daemon keeps serving (memory + recompute); /healthz
// surfaces the state as "degraded".
func (s *Server) storeDegraded() bool {
	if s.storeErr != nil {
		return true
	}
	if s.store == nil {
		return false
	}
	return s.store.Stats().Breaker != store.BreakerClosed
}

// runJob executes a job, converting a panic into an execution error: a
// single malformed workload must cost its own request a 500, never the
// whole long-lived daemon (and its cache, and every other in-flight
// request).
func runJob(j *Job) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			body, err = nil, fmt.Errorf("server: execution panicked: %v", r)
		}
	}()
	return j.Run()
}

// keyedHandler builds the handler for one cacheable POST endpoint: plan
// → result cache → coalescer → bounded queue → wait with deadline.
func (s *Server) keyedHandler(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("server: %s requires POST", r.URL.Path))
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			s.stats.badInput.Add(1)
			status := http.StatusBadRequest
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				status = http.StatusRequestEntityTooLarge
			}
			s.writeError(w, status, fmt.Errorf("server: reading body: %w", err))
			return
		}
		job, err := s.planner.Plan(endpoint, body)
		if err != nil {
			s.stats.badInput.Add(1)
			s.writeError(w, http.StatusBadRequest, err)
			return
		}

		if cached, ok := s.cache.get(job.Key); ok {
			s.stats.cacheHits.Add(1)
			s.writeBody(w, "cached", cached)
			return
		}
		// Persistent tier: a warm-started daemon serves disk entries
		// (verified, then promoted into the LRU) instead of recomputing.
		if body, ok := s.storeGet(job.Key); ok {
			s.writeBody(w, "disk", body)
			return
		}

		c, leader := s.flight.join(job.Key)
		served := "coalesced"
		if leader {
			// Re-check the cache after winning leadership: an identical
			// request may have completed (cache.put, then coalescer
			// entry removed) between our miss above and the join, and
			// executing again would break the exactly-once guarantee.
			// Completing the call with the cached bytes also serves any
			// followers that attached to this generation.
			if cached, ok := s.cache.get(job.Key); ok {
				s.flight.complete(job.Key, c, cached, nil)
				s.stats.cacheHits.Add(1)
				s.writeBody(w, "cached", cached)
				return
			}
			served = "cold"
			select {
			case s.jobs <- &task{job: job, call: c}:
			default:
				// Admission control: the queue is full. The call must
				// still complete, or followers that joined between our
				// join and now would hang until their deadlines.
				s.flight.complete(job.Key, c, nil, errSaturated)
			}
		} else {
			s.stats.coalesced.Add(1)
		}

		timeout := s.cfg.RequestTimeout
		if job.Deadline > 0 && job.Deadline < timeout {
			timeout = job.Deadline
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		select {
		case <-c.done:
			switch {
			case errors.Is(c.err, errSaturated):
				s.stats.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				s.writeError(w, http.StatusTooManyRequests, c.err)
			case c.err != nil:
				s.writeError(w, http.StatusInternalServerError, c.err)
			default:
				s.writeBody(w, served, c.body)
			}
		case <-ctx.Done():
			// The execution (if any) continues and will populate the
			// result cache; only this waiter gives up. Timed-out
			// coalesced followers are counted separately — they paid a
			// 504 without ever owning an execution, which is invisible
			// in the aggregate timeout counter alone.
			s.stats.timeouts.Add(1)
			if !leader {
				s.stats.coalesceTimeouts.Add(1)
			}
			s.writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("server: request deadline exceeded after %v (result may be cached on retry)", timeout))
		}
	}
}

// writeBody sends canonical response bytes with the served-from class.
func (s *Server) writeBody(w http.ResponseWriter, served string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(resultHeader, served)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	// Error is the failure description.
	Error string `json:"error"`
}

// writeError sends a JSON error with the given status.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// handleHealthz reports liveness. A draining server answers 503 so load
// balancers stop routing to it while in-flight requests finish; a
// degraded server — its persistent store unavailable, serving
// memory-only — answers 200 with status "degraded", because it still
// serves correctly and must not be drained for a disk problem. Draining
// wins when both apply.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.storeDegraded() {
		status = "degraded"
	}
	select {
	case <-s.draining:
		status, code = "draining", http.StatusServiceUnavailable
	default:
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q}\n", status)
}

// handleStatsz serves the operational counters.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.snapshot())
}

// ListenAndServe serves on cfg.Addr until Shutdown; it returns
// http.ErrServerClosed after a graceful drain.
func (s *Server) ListenAndServe() error {
	srv := &http.Server{Addr: s.cfg.Addr, Handler: s.mux}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.ListenAndServe()
}

// Serve serves on an existing listener until Shutdown (used by the
// restart-warm bench harness, which needs an ephemeral port); it
// returns http.ErrServerClosed after a graceful drain.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.Serve(l)
}

// Shutdown drains the server gracefully: mark draining (healthz flips to
// 503), stop accepting connections, wait for in-flight handlers within
// ctx, then stop the workers after the queue empties. Safe to call once;
// later calls return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.stopOnce.Do(func() {
		close(s.draining)
		s.httpMu.Lock()
		srv := s.httpSrv
		s.httpMu.Unlock()
		if srv != nil {
			if err = srv.Shutdown(ctx); err != nil {
				// The drain budget expired with handlers still running;
				// those handlers may yet enqueue, so the queue cannot be
				// closed safely. The process is exiting anyway — leak
				// the workers instead of racing a send-on-closed panic.
				return
			}
		}
		// No handlers remain (callers of Handler() must stop their own
		// listener first); nothing can enqueue anymore, so closing the
		// queue lets the workers finish the jobs already admitted and
		// exit.
		close(s.jobs)
		done := make(chan struct{})
		go func() {
			s.workers.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
		}
		// The workers are done writing through; a store New opened is
		// closed here (an injected cfg.Store belongs to its caller).
		if s.store != nil && s.storeOwned {
			if cerr := s.store.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}
